package snaps

// One benchmark per table and figure of the paper's evaluation (Sec. 10).
// Each benchmark regenerates the corresponding artefact through
// internal/experiments at a reduced scale so `go test -bench=.` finishes in
// minutes; run cmd/experiments with -scale 0.25 (or higher) for the
// full-size tables.
//
// Additional micro-benchmarks cover the pipeline stages (blocking, graph
// construction, resolution, indexing, querying) and the ablation-relevant
// design choices listed in DESIGN.md §4.

import (
	"io"
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/experiments"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/store"
	"github.com/snaps/snaps/internal/strsim"
)

// benchOptions runs the experiment harness at benchmark scale.
func benchOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Scale = 0.08
	return opt
}

func BenchmarkTable1DataCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard, benchOptions())
	}
}

func BenchmarkFigure2FrequencyDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(io.Discard, benchOptions())
	}
}

func BenchmarkTable2DatasetCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard, benchOptions())
	}
}

func BenchmarkTable3Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard, benchOptions())
	}
}

func BenchmarkTable4LinkageQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, benchOptions())
	}
}

func BenchmarkTable5Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard, benchOptions())
	}
}

func BenchmarkTable6Scalability(b *testing.B) {
	opt := benchOptions()
	opt.Scale = 0.04
	for i := 0; i < b.N; i++ {
		experiments.Table6(io.Discard, opt)
	}
}

func BenchmarkTable7QueryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table7(io.Discard, benchOptions())
	}
}

func BenchmarkFigure7PedigreeRender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(io.Discard, benchOptions())
	}
}

func BenchmarkExtensionSensitivity(b *testing.B) {
	opt := benchOptions()
	opt.Scale = 0.05
	for i := 0; i < b.N; i++ {
		experiments.Sensitivity(io.Discard, opt)
	}
}

func BenchmarkExtensionCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Census(io.Discard, benchOptions())
	}
}

func BenchmarkExtensionBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Blocking(io.Discard, benchOptions())
	}
}

// --- Pipeline-stage micro-benchmarks ---

func benchDataset(b *testing.B, scale float64) *model.Dataset {
	b.Helper()
	return dataset.Generate(dataset.IOS().Scaled(scale)).Dataset
}

func BenchmarkStageGenerate(b *testing.B) {
	cfg := dataset.IOS().Scaled(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dataset.Generate(cfg)
	}
}

func BenchmarkStageBlocking(b *testing.B) {
	d := benchDataset(b, 0.1)
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	lsh := blocking.NewLSH(blocking.DefaultLSHConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsh.Pairs(d, ids)
	}
}

func BenchmarkStageGraphBuild(b *testing.B) {
	d := benchDataset(b, 0.1)
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depgraph.Build(d, depgraph.DefaultConfig(), cands)
	}
}

func BenchmarkStageResolve(b *testing.B) {
	d := benchDataset(b, 0.1)
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := depgraph.Build(d, depgraph.DefaultConfig(), cands)
		er.NewResolver(g, er.DefaultConfig()).Resolve()
	}
}

func BenchmarkStageIndexBuild(b *testing.B) {
	d := benchDataset(b, 0.1)
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(d, pr.Result.Store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(g, 0.5)
	}
}

func BenchmarkStageQuery(b *testing.B) {
	d := benchDataset(b, 0.1)
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(d, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	engine := query.NewEngine(g, k, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Search(query.Query{FirstName: "mary", Surname: "macdonald"})
	}
}

func BenchmarkStagePedigreeExtract(b *testing.B) {
	d := benchDataset(b, 0.1)
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(d, pr.Result.Store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Extract(pedigree.NodeID(i%len(g.Nodes)), 2)
	}
}

// --- Ablation benches for the design choices of DESIGN.md §4 ---

// BenchmarkAblationPropagationCost measures the runtime cost of PROP-A/C.
func BenchmarkAblationPropagationCost(b *testing.B) {
	for _, variant := range []struct {
		name string
		prop bool
	}{{"with-prop", true}, {"without-prop", false}} {
		b.Run(variant.name, func(b *testing.B) {
			d := benchDataset(b, 0.08)
			ids := make([]model.RecordID, len(d.Records))
			for i := range d.Records {
				ids[i] = d.Records[i].ID
			}
			cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
			cfg := er.DefaultConfig()
			cfg.Propagation = variant.prop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, _ := depgraph.Build(d, depgraph.DefaultConfig(), cands)
				er.NewResolver(g, cfg).Resolve()
			}
		})
	}
}

// BenchmarkAblationLSHBanding compares blocking configurations.
func BenchmarkAblationLSHBanding(b *testing.B) {
	d := benchDataset(b, 0.1)
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	for _, cfg := range []blocking.LSHConfig{
		{Bands: 8, Rows: 4, Seed: 0x5eed, MaxBlockSize: 400},
		{Bands: 16, Rows: 2, Seed: 0x5eed, MaxBlockSize: 400},
		{Bands: 4, Rows: 8, Seed: 0x5eed, MaxBlockSize: 400},
	} {
		name := "bands=" + itoa(cfg.Bands) + "/rows=" + itoa(cfg.Rows)
		b.Run(name, func(b *testing.B) {
			lsh := blocking.NewLSH(cfg)
			for i := 0; i < b.N; i++ {
				lsh.Pairs(d, ids)
			}
		})
	}
}

// BenchmarkStringSimilarity covers the comparison kernels.
func BenchmarkStringSimilarity(b *testing.B) {
	pairs := [][2]string{
		{"macdonald", "mcdonald"},
		{"catherine", "katherine"},
		{"mary ann", "maryanne"},
		{"portree", "portree"},
	}
	b.Run("jaro-winkler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			strsim.JaroWinkler(p[0], p[1])
		}
	})
	b.Run("jaccard-bigram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			strsim.Jaccard(p[0], p[1])
		}
	})
	b.Run("levenshtein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			strsim.Levenshtein(p[0], p[1])
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkConcurrentQueries measures query throughput with parallel
// clients against one engine, exercising the similarity index's
// read-mostly locking.
func BenchmarkConcurrentQueries(b *testing.B) {
	d := benchDataset(b, 0.1)
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(d, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	engine := query.NewEngine(g, k, s)
	var names [][2]string
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			names = append(names, [2]string{n.FirstNames[0], n.Surnames[0]})
		}
		if len(names) >= 64 {
			break
		}
	}
	if len(names) == 0 {
		b.Skip("no names")
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			nm := names[i%len(names)]
			engine.Search(query.Query{FirstName: nm[0], Surname: nm[1]})
			i++
		}
	})
}

// benchExtendBase builds the shared fixture for the FullRun/Extend pair: a
// resolved base data set plus a one-certificate delta already appended.
func benchExtendBase() (*model.Dataset, *er.EntityStore, model.RecordID) {
	base := dataset.Generate(dataset.IOS().Scaled(0.08)).Dataset
	st := er.Run(base, depgraph.DefaultConfig(), er.DefaultConfig()).Result.Store
	firstNew := model.RecordID(len(base.Records))
	certID := model.CertID(len(base.Certificates))
	base.Records = append(base.Records, model.Record{
		ID: firstNew, Cert: certID, Role: model.Dd, Gender: model.Male,
		First: model.Intern("torquil"), Sur: model.Intern("macsween"), Year: 1899,
		Truth: model.NoPerson,
	})
	base.Certificates = append(base.Certificates, model.Certificate{
		ID: certID, Type: model.Death, Year: 1899, Age: 40, Cause: "phthisis",
		Roles: map[model.Role]model.RecordID{model.Dd: firstNew},
	})
	return base, st, firstNew
}

// BenchmarkFullRun is the baseline for live ingestion: re-resolving the
// whole data set from scratch after one certificate arrives.
func BenchmarkFullRun(b *testing.B) {
	d, _, _ := benchExtendBase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	}
}

// BenchmarkExtend measures the incremental path the ingest pipeline takes
// per flush: restore the previous clustering over a cloned data set, then
// resolve only the pairs touching the new certificate. Compare against
// BenchmarkFullRun — the speedup is the point of the subsystem.
func BenchmarkExtend(b *testing.B) {
	d, st, firstNew := benchExtendBase()
	clusters := store.Snapshot{Dataset: d, Clusters: st.Clusters()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := clusters.Restore()
		b.StartTimer()
		er.Extend(d, fresh, firstNew, depgraph.DefaultConfig(), er.DefaultConfig())
	}
}

// BenchmarkBuildGraphStream compares the two ways blocking output reaches
// graph construction: materialising the full candidate slice and handing
// it to Build, versus streaming chunks from PairsChunked straight into
// BuildStream (the RunLSH path). Both produce byte-identical graphs (see
// TestBuildStreamMatchesBuild); the gap is the allocation and peak-memory
// cost of the intermediate slice.
func BenchmarkBuildGraphStream(b *testing.B) {
	d := dataset.Generate(dataset.IOS().Scaled(0.08)).Dataset
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	gcfg := depgraph.DefaultConfig()
	lcfg := blocking.DefaultLSHConfig()
	b.Run("materialised", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cands := blocking.NewLSH(lcfg).Pairs(d, ids)
			g, _ := depgraph.Build(d, gcfg, cands)
			if len(g.Nodes) == 0 {
				b.Fatal("empty graph")
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lsh := blocking.NewLSH(lcfg)
			g, _ := depgraph.BuildStream(d, gcfg, func(emit func(chunk []blocking.Candidate)) {
				lsh.PairsChunked(d, ids, emit)
			})
			if len(g.Nodes) == 0 {
				b.Fatal("empty graph")
			}
		}
	})
}

// BenchmarkOfflineRunWorkers runs the complete offline build — blocking,
// dependency graph, and component-partitioned resolution — serially and
// with one worker per core. The resolved clusters are identical for every
// worker setting (see the golden-equivalence tests in er and blocking);
// the gap between the two sub-benchmarks is the multi-core payoff.
func BenchmarkOfflineRunWorkers(b *testing.B) {
	d := dataset.Generate(dataset.IOS().Scaled(0.08)).Dataset
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=gomaxprocs", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			gcfg := depgraph.DefaultConfig()
			gcfg.Workers = bench.workers
			cfg := er.DefaultConfig()
			cfg.Workers = bench.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				er.Run(d, gcfg, cfg)
			}
		})
	}
}
