// Command experiments regenerates the tables and figures of the paper's
// evaluation section on the simulated data sets.
//
// Usage:
//
//	experiments -exp table4 [-scale 0.25]
//	experiments -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/snaps/snaps/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table7, figure2, figure7-8, memdiet, or all)")
	scale := flag.Float64("scale", 0.25, "workload scale factor relative to the full simulated data sets")
	workers := flag.Int("workers", 0, "worker goroutines for the offline build stages (0 = GOMAXPROCS, 1 = serial; results are identical)")
	certs := flag.Int("certs", 100000, "certificate count of the DS-scale tier (memdiet experiment only)")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Scale = *scale
	opt.Workers = *workers
	opt.TierCerts = *certs

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.All()
	}
	for _, id := range ids {
		t0 := time.Now()
		if !experiments.Run(os.Stdout, id, opt) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", id, experiments.All())
			os.Exit(2)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(t0).Seconds())
	}
}
