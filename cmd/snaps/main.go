// Command snaps runs the SNAPS family-pedigree-search pipeline end to end:
// it simulates (or loads) a vital-records data set, resolves entities with
// the unsupervised graph-based ER process, builds the pedigree graph and
// indexes, and either answers a single query, evaluates linkage quality, or
// serves the web interface.
//
// Usage:
//
//	snaps -dataset ios -serve :8080            # web interface
//	snaps -dataset ios -query "mary macdonald" # one-off query + pedigree
//	snaps -dataset kil -eval                   # linkage-quality report
//	snaps -dataset ios -anonymize -serve :8080 # anonymised deployment
//	snaps -dataset ios -save out.snaps         # persist resolved snapshot
//	snaps -load out.snaps -serve :8080         # serve without re-resolving
//	snaps -births b.csv -deaths d.csv -marriages m.csv -serve :8080
//	snaps -dataset ios -feedback fb.csv -eval  # apply expert corrections
//	snaps -load out.snaps -serve :8080 -ingest-journal wal.jsonl
//	                                           # serve with live ingestion
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/anonymize"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/feedback"
	"github.com/snaps/snaps/internal/geo"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/report"
	"github.com/snaps/snaps/internal/server"
	"github.com/snaps/snaps/internal/shard"
	"github.com/snaps/snaps/internal/store"
	"github.com/snaps/snaps/internal/vitalio"
)

// loadCSVs builds a data set from whichever certificate CSVs were provided.
func loadCSVs(births, deaths, marriages, census string) (*model.Dataset, error) {
	r := vitalio.NewReader("imported")
	read := func(path string, f func(src *os.File) error) error {
		if path == "" {
			return nil
		}
		src, err := os.Open(path)
		if err != nil {
			return err
		}
		defer src.Close()
		return f(src)
	}
	if err := read(births, func(src *os.File) error { return r.ReadBirths(src) }); err != nil {
		return nil, err
	}
	if err := read(deaths, func(src *os.File) error { return r.ReadDeaths(src) }); err != nil {
		return nil, err
	}
	if err := read(marriages, func(src *os.File) error { return r.ReadMarriages(src) }); err != nil {
		return nil, err
	}
	if err := read(census, func(src *os.File) error { return r.ReadCensus(src) }); err != nil {
		return nil, err
	}
	return r.Dataset(), nil
}

func main() {
	var (
		dsName  = flag.String("dataset", "ios", "data set: ios, kil, ds, or bhic")
		scale   = flag.Float64("scale", 0.25, "population scale factor")
		workers = flag.Int("workers", 0, "worker goroutines for the offline build stages: blocking, dependency graph, and component-partitioned resolve (0 = GOMAXPROCS, 1 = serial; results are identical)")
		anon    = flag.Bool("anonymize", false, "anonymise the data set before building indexes")
		serve   = flag.String("serve", "", "serve the web interface on this address (e.g. :8080)")
		queryNm = flag.String("query", "", "run one query: \"<first name> <surname>\"")
		doEval  = flag.Bool("eval", false, "evaluate linkage quality against ground truth")

		savePath = flag.String("save", "", "write the resolved snapshot to this file")
		loadPath = flag.String("load", "", "load a resolved snapshot instead of generating and resolving")

		birthsCSV    = flag.String("births", "", "load birth certificates from this CSV instead of simulating")
		deathsCSV    = flag.String("deaths", "", "load death certificates from this CSV")
		marriagesCSV = flag.String("marriages", "", "load marriage certificates from this CSV")
		censusCSV    = flag.String("census-csv", "", "load census households from this CSV")

		feedbackCSV = flag.String("feedback", "", "apply an expert feedback journal (CSV) after resolution")
		census      = flag.Bool("census", false, "include decennial census households in the simulated data set")
		reportPath  = flag.String("report", "", "write a Markdown linkage report to this file")

		ingestJournal = flag.String("ingest-journal", "", "journal live-ingested certificates to this WAL file (replayed on startup)")
		ingestBatch   = flag.Int("ingest-batch", 16, "flush ingested certificates after this many accumulate")
		ingestMaxAge  = flag.Duration("ingest-max-age", 2*time.Second, "flush a non-empty ingest batch after its oldest certificate waited this long")

		queryCache = flag.Int("query-cache", 4096, "cache up to this many ranked result lists per serving generation (0 disables; invalidated on every ingest snapshot swap)")
		queryStale = flag.Bool("query-stale", true, "serve the previous generation's cached ranking while a background refresh recomputes it after a snapshot swap (stale-while-revalidate)")
		shards     = flag.Int("shards", 1, "partition the serving tier into this many shards searched scatter-gather; an ingest flush re-indexes only touched shards (1 = single-shard legacy path; results are byte-identical for any value)")

		admitConcurrency    = flag.Int("admit-concurrency", 64, "weighted in-flight request budget: pedigree renders admit up to 50%% of it, ingest 75%%, searches 100%% — the load-shed ladder (0 disables admission control)")
		admitSearchRate     = flag.Float64("admit-search-rate", 0, "token-bucket rate limit for search requests, requests/second (0 = unlimited)")
		admitPedigreeRate   = flag.Float64("admit-pedigree-rate", 0, "token-bucket rate limit for pedigree renders, requests/second (0 = unlimited)")
		admitIngestRate     = flag.Float64("admit-ingest-rate", 0, "token-bucket rate limit for ingest submissions, requests/second (0 = unlimited)")
		admitBacklogRecords = flag.Int("admit-max-backlog-records", 4096, "shed ingest with 429 + Retry-After once this many certificates await a flush (0 = unbounded)")
		admitBacklogBytes   = flag.Int64("admit-max-backlog-bytes", 8<<20, "shed ingest with 429 + Retry-After once the unflushed backlog reaches this many encoded bytes (0 = unbounded)")

		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/ (metrics at /metrics are always on)")

		flightRecord   = flag.String("flight-record", "", "record sampled requests to this flight-recorder query log (replay with snapsload -replay)")
		flightSample   = flag.Int("flight-sample", 1, "record 1 in N requests into the flight log (1 = every request)")
		flightMaxBytes = flag.Int64("flight-max-bytes", 64<<20, "flight log size cap in bytes; further records are dropped and counted (0 = unbounded)")

		sloLatency       = flag.Duration("slo-latency", 250*time.Millisecond, "latency SLO: a success slower than this burns latency budget on /healthz")
		sloErrorBudget   = flag.Float64("slo-error-budget", 0.01, "tolerated 5xx fraction for /healthz burn rates")
		sloLatencyBudget = flag.Float64("slo-latency-budget", 0.05, "tolerated slow-success fraction for /healthz burn rates")

		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, or error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		slowQuery  = flag.Duration("slow-query", -1, "log any search at or above this duration with its full span tree (0 logs every search; negative disables)")
		traceDebug = flag.Bool("trace-debug", false, "mount GET /api/debug/traces serving the ring buffer of completed request traces")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.SetDefault(obs.NewLogger(os.Stderr, level, *logFormat))

	// One worker bound drives every parallel offline stage; the resolved
	// clusters are identical for any setting.
	gcfg := depgraph.DefaultConfig()
	gcfg.Workers = *workers
	rcfg := er.DefaultConfig()
	rcfg.Workers = *workers

	var (
		d        *model.Dataset
		entStore *er.EntityStore
	)
	switch {
	case *loadPath != "":
		snap, err := store.Load(*loadPath)
		if err != nil {
			fatal(err)
		}
		d = snap.Dataset
		entStore = snap.Restore()
		slog.Info("loaded snapshot", "path", *loadPath, "records", len(d.Records), "clusters", len(snap.Clusters))
	case *birthsCSV != "" || *deathsCSV != "" || *marriagesCSV != "" || *censusCSV != "":
		var err error
		if d, err = loadCSVs(*birthsCSV, *deathsCSV, *marriagesCSV, *censusCSV); err != nil {
			fatal(err)
		}
		geo.GeocodeDataset(d, geo.Skye())
		slog.Info("imported certificates", "certificates", len(d.Certificates), "records", len(d.Records))
	default:
		cfg, err := datasetConfig(*dsName)
		if err != nil {
			fatal(err)
		}
		cfg = cfg.Scaled(*scale)
		if *census {
			cfg = cfg.WithCensus()
		}
		slog.Info("generating population", "dataset", cfg.Name, "scale", *scale)
		d = dataset.Generate(cfg).Dataset
		slog.Info("generated data set", "certificates", len(d.Certificates), "records", len(d.Records))
	}

	if entStore == nil {
		slog.Info("resolving entities")
		pr := er.Run(d, gcfg, rcfg)
		slog.Info("resolved entities", "merged_pairs", pr.Result.MergedNodes, "took", pr.Total(),
			"atomic_nodes", len(pr.Graph.Atomics), "relational_nodes", len(pr.Graph.Nodes))
		entStore = pr.Result.Store
		if *reportPath != "" {
			f, err := os.Create(*reportPath)
			if err != nil {
				fatal(err)
			}
			report.Write(f, report.Input{Dataset: d, Pipeline: pr})
			if err := f.Close(); err != nil {
				fatal(err)
			}
			slog.Info("linkage report written", "path", *reportPath)
		}
	}

	if *feedbackCSV != "" {
		f, err := os.Open(*feedbackCSV)
		if err != nil {
			fatal(err)
		}
		journal, err := feedback.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		unlinked, linked := feedback.Apply(entStore, journal)
		slog.Info("applied feedback decisions", "decisions", journal.Len(),
			"unlinked", unlinked, "linked", linked, "violated", len(feedback.Violations(entStore, journal)))
	}

	if *savePath != "" {
		if err := store.Save(*savePath, store.FromResult(d, entStore)); err != nil {
			fatal(err)
		}
		slog.Info("snapshot saved", "path", *savePath)
	}

	if *doEval {
		for _, rp := range []model.RolePair{
			model.MakeRolePair(model.Bm, model.Bm),
			model.MakeRolePair(model.Bf, model.Bf),
			model.MakeRolePair(model.Bm, model.Dm),
			model.MakeRolePair(model.Bf, model.Df),
			model.MakeRolePair(model.Bb, model.Dd),
		} {
			q := eval.QualityOf(eval.Compare(entStore.MatchPairs(rp), d.TruePairs(rp)))
			fmt.Printf("%-8v %v\n", rp, q)
		}
	}

	if *anon {
		slog.Info("anonymising")
		anonD, _ := anonymize.Anonymize(d, anonymize.DefaultConfig())
		// Re-run the pipeline on the anonymised data so the served indexes
		// never contain sensitive values.
		d = anonD
		entStore = er.Run(d, gcfg, rcfg).Result.Store
	}

	g := pedigree.Build(d, entStore)
	slog.Info("built pedigree graph", "entities", len(g.Nodes))
	// -shards>1 partitions the serving tier by entity owner and searches it
	// scatter-gather; -shards=1 keeps the exact single-engine path. Either
	// way the serving bundle keeps the indexes so the first ingest flush can
	// patch them incrementally instead of falling back to a full rebuild.
	var (
		engine *query.Engine
		kidx   *index.Keyword
		sidx   *index.Similarity
		coord  *shard.Coordinator
	)
	if *shards > 1 {
		coord = shard.Partition(g, shard.Options{
			Shards:       *shards,
			SimThreshold: 0.5,
			Workers:      *workers,
			CacheEntries: *queryCache,
			StaleServe:   *queryStale,
		})
		slog.Info("partitioned serving tier", "shards", coord.NumShards())
	} else {
		kidx, sidx = index.Build(g, 0.5)
		engine = query.NewEngine(g, kidx, sidx)
	}

	if *queryNm != "" {
		if coord != nil {
			runQuery(coord, g, *queryNm)
		} else {
			runQuery(engine, g, *queryNm)
		}
	}
	if *serve != "" {
		var srv *server.Server
		if coord != nil {
			srv = server.NewSharded(coord)
		} else {
			srv = server.New(engine)
		}
		srv.EnableStats()
		srv.EnableFeedback()
		srv.EnableExplain()
		if *pprofFlag {
			srv.EnablePprof()
			slog.Info("pprof profiling enabled", "path", "/debug/pprof/")
		}

		// Request tracing: every request runs under a root span; slow
		// searches log their full span tree, and -trace-debug exposes the
		// ring buffer of completed traces.
		srv.Tracer().SetLogger(slog.Default())
		srv.Tracer().SetSlowQuery(*slowQuery, "search")
		if *traceDebug {
			srv.EnableTraceDebug()
			slog.Info("trace debug enabled", "path", "/api/debug/traces")
		}

		// Flight recorder: a sampled, bounded on-disk query log replayable
		// with snapsload -replay. SLO tracker: /healthz reports 1m/5m
		// latency- and error-budget burn rates over every response.
		if *flightRecord != "" {
			fr, err := obs.NewFlightRecorder(*flightRecord, *flightSample, *flightMaxBytes)
			if err != nil {
				fatal(err)
			}
			defer fr.Close()
			srv.EnableFlightRecorder(fr)
			slog.Info("flight recorder armed", "path", *flightRecord,
				"sample", *flightSample, "max_bytes", *flightMaxBytes)
		}
		srv.EnableSLO(obs.NewSLOTracker(*sloLatency, *sloErrorBudget, *sloLatencyBudget))

		// Live ingestion: new certificates POSTed to /api/ingest are
		// journalled, batch-resolved with er.Extend, and hot-swapped into
		// the serving snapshot without downtime.
		var (
			journal *ingest.Journal
			backlog []ingest.Certificate
		)
		if *ingestJournal != "" {
			var err error
			if journal, backlog, err = ingest.OpenJournal(*ingestJournal); err != nil {
				fatal(err)
			}
			if len(backlog) > 0 {
				slog.Info("replaying journalled certificates", "count", len(backlog), "path", *ingestJournal)
			}
		}
		icfg := ingest.DefaultConfig()
		icfg.BatchSize = *ingestBatch
		icfg.MaxAge = *ingestMaxAge
		icfg.QueryCache = *queryCache
		icfg.StaleServe = *queryStale
		icfg.Tracer = srv.Tracer()
		icfg.Graph = gcfg
		icfg.Resolver = rcfg
		sv := &ingest.Serving{Dataset: d, Store: entStore, Graph: g,
			Keyword: kidx, Similar: sidx, Engine: engine, Shards: coord}
		pipe, err := ingest.NewPipeline(sv, journal, backlog, icfg)
		if err != nil {
			fatal(err)
		}
		srv.EnableIngest(pipe)

		// Admission control: weighted concurrency limits with the
		// pedigree-before-search shed ladder, optional per-class rate
		// limits, and ingest backpressure reading the pipeline's backlog.
		if *admitConcurrency > 0 {
			acfg := admission.DefaultConfig()
			acfg.MaxConcurrency = *admitConcurrency
			acfg.Limits[admission.Search].Rate = *admitSearchRate
			acfg.Limits[admission.Pedigree].Rate = *admitPedigreeRate
			acfg.Limits[admission.Ingest].Rate = *admitIngestRate
			acfg.MaxBacklogRecords = *admitBacklogRecords
			acfg.MaxBacklogBytes = *admitBacklogBytes
			acfg.BacklogRetryAfter = icfg.MaxAge
			acfg.Backlog = pipe.Backlog
			if *shards > 1 {
				// Per-shard bound: twice the fair share of the global bound,
				// so routing skew has headroom but one hot shard still sheds
				// long before the global backlog average would notice it.
				acfg.ShardBacklog = pipe.HottestShardBacklog
				acfg.MaxShardBacklogRecords = perShardBound(*admitBacklogRecords, *shards)
				acfg.MaxShardBacklogBytes = perShardBound(*admitBacklogBytes, int64(*shards))
			}
			srv.EnableAdmission(admission.New(acfg))
		}
		srv.EnableHealth(pipe)

		slog.Info("serving", "addr", *serve, "shards", *shards,
			"ingest_batch", icfg.BatchSize,
			"ingest_max_age", icfg.MaxAge, "query_cache", *queryCache,
			"query_stale", *queryStale, "admit_concurrency", *admitConcurrency,
			"slow_query", *slowQuery, "trace_debug", *traceDebug)
		fatal(http.ListenAndServe(*serve, srv))
	}
	if *queryNm == "" && *serve == "" && !*doEval {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -serve, -query, or -eval")
		os.Exit(2)
	}
}

// fatal logs err at error level through the structured logger and exits.
func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}

func datasetConfig(name string) (dataset.Config, error) {
	switch strings.ToLower(name) {
	case "ios":
		return dataset.IOS(), nil
	case "kil":
		return dataset.KIL(), nil
	case "ds":
		return dataset.DS(), nil
	case "bhic":
		return dataset.BHIC(1900), nil
	}
	return dataset.Config{}, fmt.Errorf("unknown dataset %q (want ios, kil, ds, or bhic)", name)
}

// perShardBound derives a single-shard admission bound from a global one:
// twice the fair share (headroom for routing skew), capped at the global
// bound, floored at 1 so a configured bound never degenerates to unbounded.
func perShardBound[T int | int64](global, shards T) T {
	if global <= 0 || shards <= 1 {
		return global
	}
	b := 2 * global / shards
	if b < 1 {
		b = 1
	}
	if b > global {
		b = global
	}
	return b
}

// searcher is the part of the serving tier a one-off -query needs; both
// *query.Engine and *shard.Coordinator satisfy it.
type searcher interface {
	Search(query.Query) []query.Result
}

func runQuery(engine searcher, g *pedigree.Graph, nameQuery string) {
	// "first / surname" splits explicitly (needed for multi-token surnames
	// like "van den berg"); otherwise the last token is the surname.
	var first, sur string
	if i := strings.Index(nameQuery, "/"); i >= 0 {
		first = strings.TrimSpace(strings.ToLower(nameQuery[:i]))
		sur = strings.TrimSpace(strings.ToLower(nameQuery[i+1:]))
	} else {
		parts := strings.Fields(strings.ToLower(nameQuery))
		if len(parts) < 2 {
			fatal(fmt.Errorf("query must be %q or %q, got %q", "<first name> <surname>", "<first> / <surname>", nameQuery))
		}
		first = strings.Join(parts[:len(parts)-1], " ")
		sur = parts[len(parts)-1]
	}
	q := query.Query{FirstName: first, Surname: sur}
	results := engine.Search(q)
	if len(results) == 0 {
		fmt.Println("no matches")
		return
	}
	fmt.Printf("%-4s %-28s %-3s %-10s %-8s\n", "#", "name", "sex", "years", "score")
	for i, r := range results {
		n := g.Node(r.Entity)
		years := ""
		if n.MinYear != 0 {
			years = fmt.Sprintf("%d-%d", n.MinYear, n.MaxYear)
		}
		fmt.Printf("%-4d %-28s %-3s %-10s %7.2f%%\n",
			i+1, n.DisplayName(), n.Gender, years, r.Score)
	}
	ped := g.Extract(results[0].Entity, 2)
	fmt.Println()
	fmt.Print(g.RenderText(ped))
}
