// Command snapsgen exports a simulated vital-records data set as the three
// certificate CSV files, so the synthetic populations can be shared, loaded
// back with `snaps -births ... -deaths ... -marriages ...`, or used as test
// fixtures for other ER systems.
//
// Usage:
//
//	snapsgen -dataset ios -scale 0.25 -out ./data [-truth]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/vitalio"
)

func main() {
	var (
		dsName = flag.String("dataset", "ios", "data set: ios, kil, ds, or bhic")
		scale  = flag.Float64("scale", 0.25, "population scale factor")
		certs  = flag.Int("certs", 0, "when > 0, use the DS-scale direct-emission generator targeting this many certificates (ignores -dataset/-scale/-census)")
		outDir = flag.String("out", ".", "output directory")
		truth  = flag.Bool("truth", false, "include ground-truth person-id columns")
		census = flag.Bool("census", false, "include decennial census households and export them as a fourth CSV")
	)
	flag.Parse()

	var pop *dataset.Population
	if *certs > 0 {
		pop = dataset.GenerateScale(dataset.ScaleTier(*certs))
	} else {
		var cfg dataset.Config
		switch strings.ToLower(*dsName) {
		case "ios":
			cfg = dataset.IOS()
		case "kil":
			cfg = dataset.KIL()
		case "ds":
			cfg = dataset.DS()
		case "bhic":
			cfg = dataset.BHIC(1900)
		default:
			log.Fatalf("unknown dataset %q", *dsName)
		}
		cfg = cfg.Scaled(*scale)
		if *census {
			cfg = cfg.WithCensus()
		}
		pop = dataset.Generate(cfg)
	}
	cfg := pop.Config
	d := pop.Dataset
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	w := vitalio.NewWriter(d, *truth)
	writeFile := func(name string, f func(dst *os.File) error) {
		path := filepath.Join(*outDir, name)
		dst, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := f(dst); err != nil {
			dst.Close()
			log.Fatal(err)
		}
		if err := dst.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	writeFile(strings.ToLower(cfg.Name)+"_births.csv", func(dst *os.File) error { return w.WriteBirths(dst) })
	writeFile(strings.ToLower(cfg.Name)+"_deaths.csv", func(dst *os.File) error { return w.WriteDeaths(dst) })
	writeFile(strings.ToLower(cfg.Name)+"_marriages.csv", func(dst *os.File) error { return w.WriteMarriages(dst) })
	if *census {
		writeFile(strings.ToLower(cfg.Name)+"_census.csv", func(dst *os.File) error { return w.WriteCensus(dst) })
	}
	fmt.Printf("%d certificates, %d records, %d persons\n",
		len(d.Certificates), len(d.Records), len(pop.Persons))
}
