// Command snapsload is the SNAPS load harness: it replays deterministic
// traffic mixes against a server at a fixed open-loop arrival rate and
// writes BENCH_serve.json with per-route latency quantiles, throughput, and
// shed counts.
//
// By default it builds the full pipeline in-process (simulate -> resolve ->
// index -> serve with ingestion and admission control) and drives the
// handler directly, so the committed baseline measures server work without
// network noise. Pass -url to aim the same mixes at a live server instead.
//
// Usage:
//
//	snapsload                              # in-process, all three mixes
//	snapsload -rate 800 -duration 10s      # heavier pass
//	snapsload -mixes ingest-burst          # one mix only
//	snapsload -url http://localhost:8080   # against a live server
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/load"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/server"
	"github.com/snaps/snaps/internal/shard"
)

// Report is the schema of BENCH_serve.json.
type Report struct {
	Dataset      string            `json:"dataset"`
	Scale        float64           `json:"scale"`
	Entities     int               `json:"entities"`
	Shards       int               `json:"shards"`
	RateRPS      float64           `json:"rate_rps"`
	Duration     string            `json:"duration"`
	Seed         int64             `json:"seed"`
	Target       string            `json:"target"` // "in-process" or the URL
	Admission    *AdmissionConfig  `json:"admission,omitempty"`
	Mixes        []*load.MixReport `json:"mixes"`
	ShedCounters map[string]int64  `json:"shed_counters,omitempty"`
}

// AdmissionConfig records the admission knobs the run was measured under.
type AdmissionConfig struct {
	MaxConcurrency    int   `json:"max_concurrency"`
	MaxBacklogRecords int   `json:"max_backlog_records"`
	MaxBacklogBytes   int64 `json:"max_backlog_bytes"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snapsload:", err)
	os.Exit(1)
}

func main() {
	var (
		urlFlag  = flag.String("url", "", "base URL of a live server; empty runs the full pipeline in-process")
		dsName   = flag.String("dataset", "ios", "dataset to simulate for the in-process target (ios, kil)")
		scale    = flag.Float64("scale", 0.05, "dataset scale factor for the in-process target")
		rate     = flag.Float64("rate", 400, "open-loop arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "arrival window per mix")
		mixNames = flag.String("mixes", "read-heavy,mixed,ingest-burst", "comma-separated mixes to run")
		seed     = flag.Int64("seed", 1, "workload seed (same seed replays the same op sequence)")
		out      = flag.String("out", "BENCH_serve.json", "report output path; - for stdout")
		maxOut   = flag.Int("max-outstanding", 4096, "cap on concurrent in-flight requests")

		admitConcurrency    = flag.Int("admit-concurrency", 64, "in-process target: weighted concurrency budget (0 disables admission)")
		admitBacklogRecords = flag.Int("admit-max-backlog-records", 4096, "in-process target: shed ingest once this many records are unflushed")
		admitBacklogBytes   = flag.Int64("admit-max-backlog-bytes", 8<<20, "in-process target: shed ingest once this many bytes are unflushed")
		ingestBatch         = flag.Int("ingest-batch", 256, "in-process target: ingest flush batch size")
		shards              = flag.Int("shards", 1, "in-process target: partition the serving tier into this many scatter-gather shards (1 = single-shard path)")
	)
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	var mixes []load.Mix
	for _, name := range strings.Split(*mixNames, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := load.MixByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown mix %q (have: read-heavy, mixed, ingest-burst)", name))
		}
		mixes = append(mixes, m)
	}
	if len(mixes) == 0 {
		fatal(fmt.Errorf("no mixes selected"))
	}

	rep := &Report{
		Dataset: *dsName, Scale: *scale, RateRPS: *rate,
		Duration: duration.String(), Seed: *seed, Shards: *shards,
	}

	var (
		target target
		graph  *pedigree.Graph
	)
	if *urlFlag != "" {
		rep.Target = *urlFlag
		rep.Dataset, rep.Scale = "remote", 0
		// The workload still needs name pools: mine them from a locally
		// simulated graph at the requested scale. Matching the live
		// server's dataset is the operator's job.
		graph = buildGraph(*dsName, *scale)
		target = &load.HTTPTarget{Base: strings.TrimRight(*urlFlag, "/"),
			Client: &http.Client{Timeout: 30 * time.Second}}
	} else {
		rep.Target = "in-process"
		var srv *server.Server
		srv, graph = buildServer(*dsName, *scale, *ingestBatch, *shards,
			*admitConcurrency, *admitBacklogRecords, *admitBacklogBytes)
		if *admitConcurrency > 0 {
			rep.Admission = &AdmissionConfig{
				MaxConcurrency:    *admitConcurrency,
				MaxBacklogRecords: *admitBacklogRecords,
				MaxBacklogBytes:   *admitBacklogBytes,
			}
		}
		target = &load.HandlerTarget{Handler: srv}
	}
	rep.Entities = len(graph.Nodes)

	w, err := load.BuildWorkload(graph)
	if err != nil {
		fatal(err)
	}
	slog.Info("workload ready", "hot", len(w.Hot), "cold", len(w.Cold), "entities", w.Entities)

	for _, m := range mixes {
		slog.Info("running mix", "mix", m.Name, "rate", *rate, "duration", *duration)
		mr, err := load.Run(target, w, m, load.Config{
			Rate: *rate, Duration: *duration, MaxOutstanding: *maxOut, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		rep.Mixes = append(rep.Mixes, mr)
		printMix(mr)
	}
	rep.ShedCounters = shedCounters()

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	slog.Info("report written", "path", *out)
}

// target is load.Target; aliased locally to keep main readable.
type target = load.Target

// buildGraph runs simulate -> resolve -> pedigree.
func buildGraph(name string, scale float64) *pedigree.Graph {
	cfg, err := datasetConfig(name)
	if err != nil {
		fatal(err)
	}
	slog.Info("simulating", "dataset", name, "scale", scale)
	p := dataset.Generate(cfg.Scaled(scale))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	return pedigree.Build(p.Dataset, pr.Result.Store)
}

// buildServer stands up the full in-process serving stack: indexes, live
// ingestion (no journal — the harness measures serving, not fsync), and
// admission control, mirroring cmd/snaps -serve.
func buildServer(name string, scale float64, batch, shards, concurrency, maxRecords int, maxBytes int64) (*server.Server, *pedigree.Graph) {
	cfg, err := datasetConfig(name)
	if err != nil {
		fatal(err)
	}
	slog.Info("simulating", "dataset", name, "scale", scale)
	p := dataset.Generate(cfg.Scaled(scale))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)

	var (
		srv *server.Server
		sv  *ingest.Serving
	)
	if shards > 1 {
		coord := shard.Partition(g, shard.Options{Shards: shards, SimThreshold: 0.5})
		srv = server.NewSharded(coord)
		sv = &ingest.Serving{Dataset: p.Dataset, Store: pr.Result.Store, Graph: g,
			Shards: coord}
	} else {
		kidx, sidx := index.Build(g, 0.5)
		engine := query.NewEngine(g, kidx, sidx)
		srv = server.New(engine)
		sv = &ingest.Serving{Dataset: p.Dataset, Store: pr.Result.Store, Graph: g,
			Keyword: kidx, Similar: sidx, Engine: engine}
	}

	icfg := ingest.DefaultConfig()
	icfg.BatchSize = batch
	pipe, err := ingest.NewPipeline(sv, nil, nil, icfg)
	if err != nil {
		fatal(err)
	}
	srv.EnableIngest(pipe)

	if concurrency > 0 {
		acfg := admission.DefaultConfig()
		acfg.MaxConcurrency = concurrency
		acfg.MaxBacklogRecords = maxRecords
		acfg.MaxBacklogBytes = maxBytes
		acfg.BacklogRetryAfter = icfg.MaxAge
		acfg.Backlog = pipe.Backlog
		if shards > 1 {
			acfg.ShardBacklog = pipe.HottestShardBacklog
			if maxRecords > 0 {
				acfg.MaxShardBacklogRecords = max(1, 2*maxRecords/shards)
			}
			if maxBytes > 0 {
				acfg.MaxShardBacklogBytes = max(int64(1), 2*maxBytes/int64(shards))
			}
		}
		srv.EnableAdmission(admission.New(acfg))
	}
	srv.EnableHealth(pipe)
	slog.Info("in-process server ready", "entities", len(g.Nodes),
		"shards", shards, "admit_concurrency", concurrency)
	return srv, g
}

// shedCounters snapshots the admission counters so the report carries the
// server-side view of every shed decision (in-process target only; against
// a live server these read zero and are omitted).
func shedCounters() map[string]int64 {
	out := map[string]int64{}
	for _, cl := range []admission.Class{admission.Search, admission.Ingest, admission.Pedigree} {
		for _, reason := range []string{"concurrency", "rate", "backlog", "shard_backlog"} {
			name := "snaps_admission_shed_total{" +
				obs.Label("class", cl.String()) + "," + obs.Label("reason", reason) + "}"
			if v := obs.Default.Counter(name, "").Value(); v > 0 {
				out[cl.String()+"/"+reason] = v
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// datasetConfig maps a -dataset name to its simulation parameters.
func datasetConfig(name string) (dataset.Config, error) {
	switch strings.ToLower(name) {
	case "ios":
		return dataset.IOS(), nil
	case "kil":
		return dataset.KIL(), nil
	case "ds":
		return dataset.DS(), nil
	case "bhic":
		return dataset.BHIC(1900), nil
	}
	return dataset.Config{}, fmt.Errorf("unknown dataset %q (want ios, kil, ds, or bhic)", name)
}

func printMix(r *load.MixReport) {
	fmt.Printf("\nmix %s: offered %.0f rps, achieved %.0f rps, %d requests, %d dropped\n",
		r.Mix.Name, r.OfferedRate, r.AchievedRate, r.Requests, r.Dropped)
	fmt.Printf("  %-12s %8s %8s %6s %6s %9s %9s %9s %9s\n",
		"route", "count", "ok", "shed", "err", "p50ms", "p95ms", "p99ms", "maxms")
	for _, name := range r.RouteNames() {
		rt := r.Routes[name]
		fmt.Printf("  %-12s %8d %8d %6d %6d %9.3f %9.3f %9.3f %9.3f\n",
			name, rt.Count, rt.OK, rt.Shed, rt.Errors, rt.P50Ms, rt.P95Ms, rt.P99Ms, rt.MaxMs)
	}
}
