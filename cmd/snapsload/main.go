// Command snapsload is the SNAPS load harness: it replays deterministic
// traffic mixes against a server at a fixed open-loop arrival rate and
// writes BENCH_serve.json with per-route latency quantiles, throughput, and
// shed counts.
//
// By default it builds the full pipeline in-process (simulate -> resolve ->
// index -> serve with ingestion and admission control) and drives the
// handler directly, so the committed baseline measures server work without
// network noise. Pass -url to aim the same mixes at a live server instead.
//
// It is also the replay half of the flight recorder: -record writes a query
// log (server middleware, in-process target only) during the run, and
// -replay re-issues a recorded log — paced to the recorded arrivals or
// closed-loop at fixed concurrency — and diffs the latency distributions
// against the recorded ones.
//
// Usage:
//
//	snapsload                              # in-process, all three mixes
//	snapsload -rate 800 -duration 10s      # heavier pass
//	snapsload -mixes ingest-burst          # one mix only
//	snapsload -url http://localhost:8080   # against a live server
//	snapsload -record q.log                # record a query log while running
//	snapsload -replay q.log -closed-loop   # replay it, diff distributions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/load"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/server"
	"github.com/snaps/snaps/internal/shard"
)

// Report is the schema of BENCH_serve.json.
type Report struct {
	Dataset      string            `json:"dataset"`
	Scale        float64           `json:"scale"`
	Entities     int               `json:"entities"`
	Shards       int               `json:"shards"`
	RateRPS      float64           `json:"rate_rps"`
	Duration     string            `json:"duration"`
	Seed         int64             `json:"seed"`
	Target       string            `json:"target"` // "in-process" or the URL
	Admission    *AdmissionConfig  `json:"admission,omitempty"`
	Mixes        []*load.MixReport `json:"mixes,omitempty"`
	Replay       *ReplayResult     `json:"replay,omitempty"`
	ShedCounters map[string]int64  `json:"shed_counters,omitempty"`
}

// ReplayResult is the report section of one -replay run.
type ReplayResult struct {
	Log        string                 `json:"log"`
	Report     *load.ReplayReport     `json:"report"`
	Comparison *load.ReplayComparison `json:"comparison"`
}

// AdmissionConfig records the admission knobs the run was measured under.
type AdmissionConfig struct {
	MaxConcurrency    int   `json:"max_concurrency"`
	MaxBacklogRecords int   `json:"max_backlog_records"`
	MaxBacklogBytes   int64 `json:"max_backlog_bytes"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snapsload:", err)
	os.Exit(1)
}

func main() {
	var (
		urlFlag  = flag.String("url", "", "base URL of a live server; empty runs the full pipeline in-process")
		dsName   = flag.String("dataset", "ios", "dataset to simulate for the in-process target (ios, kil)")
		scale    = flag.Float64("scale", 0.05, "dataset scale factor for the in-process target")
		rate     = flag.Float64("rate", 400, "open-loop arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "arrival window per mix")
		mixNames = flag.String("mixes", "read-heavy,mixed,ingest-burst", "comma-separated mixes to run")
		seed     = flag.Int64("seed", 1, "workload seed (same seed replays the same op sequence)")
		out      = flag.String("out", "BENCH_serve.json", "report output path; - for stdout")
		maxOut   = flag.Int("max-outstanding", 4096, "cap on concurrent in-flight requests")

		admitConcurrency    = flag.Int("admit-concurrency", 64, "in-process target: weighted concurrency budget (0 disables admission)")
		admitBacklogRecords = flag.Int("admit-max-backlog-records", 4096, "in-process target: shed ingest once this many records are unflushed")
		admitBacklogBytes   = flag.Int64("admit-max-backlog-bytes", 8<<20, "in-process target: shed ingest once this many bytes are unflushed")
		ingestBatch         = flag.Int("ingest-batch", 256, "in-process target: ingest flush batch size")
		shards              = flag.Int("shards", 1, "in-process target: partition the serving tier into this many scatter-gather shards (1 = single-shard path)")

		record         = flag.String("record", "", "in-process target: write a flight-recorder query log to this path during the run")
		recordSample   = flag.Int("record-sample", 1, "record 1 in N requests (1 = every request)")
		recordMaxBytes = flag.Int64("record-max-bytes", 64<<20, "flight log size cap in bytes (0 = unbounded)")
		replay         = flag.String("replay", "", "replay this recorded flight log instead of the synthetic mixes")
		replaySpeed    = flag.Float64("replay-speed", 1, "paced replay time scale (2 = twice the recorded rate)")
		closedLoop     = flag.Bool("closed-loop", false, "replay at fixed concurrency instead of the recorded pacing")
		concurrency    = flag.Int("concurrency", 8, "closed-loop replay worker count")
	)
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	var mixes []load.Mix
	for _, name := range strings.Split(*mixNames, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := load.MixByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown mix %q (have: read-heavy, mixed, ingest-burst)", name))
		}
		mixes = append(mixes, m)
	}
	if len(mixes) == 0 {
		fatal(fmt.Errorf("no mixes selected"))
	}

	rep := &Report{
		Dataset: *dsName, Scale: *scale, RateRPS: *rate,
		Duration: duration.String(), Seed: *seed, Shards: *shards,
	}

	var (
		target target
		graph  *pedigree.Graph
	)
	if *urlFlag != "" {
		if *record != "" {
			fatal(fmt.Errorf("-record needs the in-process target: the flight recorder is server middleware, it cannot observe a remote server"))
		}
		rep.Target = *urlFlag
		rep.Dataset, rep.Scale = "remote", 0
		// The workload still needs name pools: mine them from a locally
		// simulated graph at the requested scale. Matching the live
		// server's dataset is the operator's job.
		graph = buildGraph(*dsName, *scale)
		target = &load.HTTPTarget{Base: strings.TrimRight(*urlFlag, "/"),
			Client: &http.Client{Timeout: 30 * time.Second}}
	} else {
		rep.Target = "in-process"
		var srv *server.Server
		srv, graph = buildServer(*dsName, *scale, *ingestBatch, *shards,
			*admitConcurrency, *admitBacklogRecords, *admitBacklogBytes)
		if *admitConcurrency > 0 {
			rep.Admission = &AdmissionConfig{
				MaxConcurrency:    *admitConcurrency,
				MaxBacklogRecords: *admitBacklogRecords,
				MaxBacklogBytes:   *admitBacklogBytes,
			}
		}
		if *record != "" {
			fr, err := obs.NewFlightRecorder(*record, *recordSample, *recordMaxBytes)
			if err != nil {
				fatal(err)
			}
			defer fr.Close()
			srv.EnableFlightRecorder(fr)
			slog.Info("flight recorder armed", "path", *record, "sample", *recordSample)
		}
		target = &load.HandlerTarget{Handler: srv}
	}
	rep.Entities = len(graph.Nodes)

	if *replay != "" {
		recs, err := obs.ReadFlightLog(*replay)
		if err != nil {
			fatal(err)
		}
		ops, skipped := load.OpsFromFlightLog(recs)
		slog.Info("replaying flight log", "path", *replay, "records", len(recs),
			"skipped", skipped, "closed_loop", *closedLoop)
		rr, err := load.Replay(target, ops, load.ReplayConfig{
			Speed: *replaySpeed, ClosedLoop: *closedLoop,
			Concurrency: *concurrency, MaxOutstanding: *maxOut,
		})
		if err != nil {
			fatal(err)
		}
		rr.Records, rr.Skipped = len(recs), skipped
		rep.Replay = &ReplayResult{
			Log: *replay, Report: rr, Comparison: load.CompareToLog(recs, rr),
		}
		printReplay(rep.Replay)
	} else {
		w, err := load.BuildWorkload(graph)
		if err != nil {
			fatal(err)
		}
		slog.Info("workload ready", "hot", len(w.Hot), "cold", len(w.Cold), "entities", w.Entities)

		for _, m := range mixes {
			slog.Info("running mix", "mix", m.Name, "rate", *rate, "duration", *duration)
			mr, err := load.Run(target, w, m, load.Config{
				Rate: *rate, Duration: *duration, MaxOutstanding: *maxOut, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			rep.Mixes = append(rep.Mixes, mr)
			printMix(mr)
		}
	}
	rep.ShedCounters = shedCounters()

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	slog.Info("report written", "path", *out)
}

// target is load.Target; aliased locally to keep main readable.
type target = load.Target

// buildGraph runs simulate -> resolve -> pedigree.
func buildGraph(name string, scale float64) *pedigree.Graph {
	cfg, err := datasetConfig(name)
	if err != nil {
		fatal(err)
	}
	slog.Info("simulating", "dataset", name, "scale", scale)
	p := dataset.Generate(cfg.Scaled(scale))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	return pedigree.Build(p.Dataset, pr.Result.Store)
}

// buildServer stands up the full in-process serving stack: indexes, live
// ingestion (no journal — the harness measures serving, not fsync), and
// admission control, mirroring cmd/snaps -serve.
func buildServer(name string, scale float64, batch, shards, concurrency, maxRecords int, maxBytes int64) (*server.Server, *pedigree.Graph) {
	cfg, err := datasetConfig(name)
	if err != nil {
		fatal(err)
	}
	slog.Info("simulating", "dataset", name, "scale", scale)
	p := dataset.Generate(cfg.Scaled(scale))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)

	var (
		srv *server.Server
		sv  *ingest.Serving
	)
	if shards > 1 {
		coord := shard.Partition(g, shard.Options{Shards: shards, SimThreshold: 0.5})
		srv = server.NewSharded(coord)
		sv = &ingest.Serving{Dataset: p.Dataset, Store: pr.Result.Store, Graph: g,
			Shards: coord}
	} else {
		kidx, sidx := index.Build(g, 0.5)
		engine := query.NewEngine(g, kidx, sidx)
		srv = server.New(engine)
		sv = &ingest.Serving{Dataset: p.Dataset, Store: pr.Result.Store, Graph: g,
			Keyword: kidx, Similar: sidx, Engine: engine}
	}

	icfg := ingest.DefaultConfig()
	icfg.BatchSize = batch
	pipe, err := ingest.NewPipeline(sv, nil, nil, icfg)
	if err != nil {
		fatal(err)
	}
	srv.EnableIngest(pipe)

	if concurrency > 0 {
		acfg := admission.DefaultConfig()
		acfg.MaxConcurrency = concurrency
		acfg.MaxBacklogRecords = maxRecords
		acfg.MaxBacklogBytes = maxBytes
		acfg.BacklogRetryAfter = icfg.MaxAge
		acfg.Backlog = pipe.Backlog
		if shards > 1 {
			acfg.ShardBacklog = pipe.HottestShardBacklog
			if maxRecords > 0 {
				acfg.MaxShardBacklogRecords = max(1, 2*maxRecords/shards)
			}
			if maxBytes > 0 {
				acfg.MaxShardBacklogBytes = max(int64(1), 2*maxBytes/int64(shards))
			}
		}
		srv.EnableAdmission(admission.New(acfg))
	}
	srv.EnableHealth(pipe)
	slog.Info("in-process server ready", "entities", len(g.Nodes),
		"shards", shards, "admit_concurrency", concurrency)
	return srv, g
}

// shedCounters snapshots the admission counters so the report carries the
// server-side view of every shed decision (in-process target only; against
// a live server these read zero and are omitted).
func shedCounters() map[string]int64 {
	out := map[string]int64{}
	for _, cl := range []admission.Class{admission.Search, admission.Ingest, admission.Pedigree} {
		for _, reason := range []string{"concurrency", "rate", "backlog", "shard_backlog"} {
			name := "snaps_admission_shed_total{" +
				obs.Label("class", cl.String()) + "," + obs.Label("reason", reason) + "}"
			if v := obs.Default.Counter(name, "").Value(); v > 0 {
				out[cl.String()+"/"+reason] = v
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// datasetConfig maps a -dataset name to its simulation parameters.
func datasetConfig(name string) (dataset.Config, error) {
	switch strings.ToLower(name) {
	case "ios":
		return dataset.IOS(), nil
	case "kil":
		return dataset.KIL(), nil
	case "ds":
		return dataset.DS(), nil
	case "bhic":
		return dataset.BHIC(1900), nil
	}
	return dataset.Config{}, fmt.Errorf("unknown dataset %q (want ios, kil, ds, or bhic)", name)
}

func printReplay(rr *ReplayResult) {
	r := rr.Report
	mode := "paced"
	if r.ClosedLoop {
		mode = "closed-loop"
	}
	fmt.Printf("\nreplay %s (%s): %d records, %d skipped, %d replayed, %d dropped in %.1fs\n",
		rr.Log, mode, r.Records, r.Skipped, r.Replayed, r.Dropped, r.DurationSec)
	fmt.Printf("  %-16s %8s %8s %9s %9s %10s %10s\n",
		"route", "recorded", "replayed", "p50ms", "p99ms", "Δp50ms", "Δp99ms")
	for _, name := range rr.Comparison.RouteNames() {
		c := rr.Comparison.Routes[name]
		fmt.Printf("  %-16s %8d %8d %9.3f %9.3f %+10.3f %+10.3f\n",
			name, c.Recorded.Count, c.Replayed.Count,
			c.Replayed.P50Ms, c.Replayed.P99Ms, c.P50DeltaMs, c.P99DeltaMs)
	}
}

func printMix(r *load.MixReport) {
	fmt.Printf("\nmix %s: offered %.0f rps, achieved %.0f rps, %d requests, %d dropped\n",
		r.Mix.Name, r.OfferedRate, r.AchievedRate, r.Requests, r.Dropped)
	fmt.Printf("  %-12s %8s %8s %6s %6s %9s %9s %9s %9s\n",
		"route", "count", "ok", "shed", "err", "p50ms", "p95ms", "p99ms", "maxms")
	for _, name := range r.RouteNames() {
		rt := r.Routes[name]
		fmt.Printf("  %-12s %8d %8d %6d %6d %9.3f %9.3f %9.3f %9.3f\n",
			name, rt.Count, rt.OK, rt.Shed, rt.Errors, rt.P50Ms, rt.P95Ms, rt.P99Ms, rt.MaxMs)
	}
}
