// Package snaps is a from-scratch Go reproduction of SNAPS — the
// unsupervised graph-based entity-resolution system for accurate and
// efficient family pedigree search of Kirielle et al. (EDBT 2022).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/snaps is the end-to-end CLI and web interface, cmd/experiments
// regenerates every table and figure of the paper's evaluation, and the
// benchmarks in bench_test.go wrap each experiment in a testing.B target.
package snaps
