// Ablation walkthrough: shows how each SNAPS technique (PROP, AMB, REL,
// REF) contributes to linkage quality on a small sample, mirroring Table 3
// of the paper at interactive speed.
package main

import (
	"fmt"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

func main() {
	pop := dataset.Generate(dataset.IOS().Scaled(0.12))
	d := pop.Dataset
	rps := []model.RolePair{
		model.MakeRolePair(model.Bm, model.Bm),
		model.MakeRolePair(model.Bf, model.Bf),
	}
	truth := map[model.PairKey]bool{}
	for _, rp := range rps {
		for k := range d.TruePairs(rp) {
			truth[k] = true
		}
	}

	variants := []struct {
		name string
		mod  func(*er.Config)
		why  string
	}{
		{"full SNAPS", func(c *er.Config) {}, "all techniques"},
		{"without PROP", func(c *er.Config) { c.Propagation = false },
			"no value/constraint propagation: changed surnames and addresses unlinkable"},
		{"without AMB", func(c *er.Config) { c.Ambiguity = false },
			"no disambiguation: common-name coincidences merge freely"},
		{"without REL", func(c *er.Config) { c.Relations = false },
			"no adaptive groups: one sibling pair vetoes a whole family"},
		{"without REF", func(c *er.Config) { c.Refinement = false },
			"no cluster refinement: wrong links persist in sparse clusters"},
	}

	fmt.Println("ablation on IOS sample, birth-parent links (Bp-Bp):")
	for _, v := range variants {
		cfg := er.DefaultConfig()
		v.mod(&cfg)
		pr := er.Run(d, depgraph.DefaultConfig(), cfg)
		pred := map[model.PairKey]bool{}
		for _, rp := range rps {
			for k := range pr.Result.Store.MatchPairs(rp) {
				pred[k] = true
			}
		}
		q := eval.QualityOf(eval.Compare(pred, truth))
		fmt.Printf("  %-14s %v\n                 (%s)\n", v.name, q, v.why)
	}
}
