// Anonymised deployment: the paper's Sec. 9 workflow. A sensitive data set
// is anonymised (public-corpus name mapping, global year shift, k-anonymous
// causes of death), the SNAPS pipeline is rebuilt on the anonymised data,
// and the same queries work — with no sensitive value ever served.
package main

import (
	"fmt"

	"github.com/snaps/snaps/internal/anonymize"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/server"
)

func main() {
	// The "sensitive" original.
	pop := dataset.Generate(dataset.IOS().Scaled(0.1))
	sensitive := pop.Dataset

	cfg := anonymize.DefaultConfig()
	anon, mapping := anonymize.Anonymize(sensitive, cfg)
	fmt.Printf("anonymised %d records; %d distinct names remapped; years shifted by %d\n",
		len(anon.Records), len(mapping), cfg.YearOffset)

	// Show a few mappings: similar sensitive names stay similar.
	fmt.Println("\nsample name mappings (sensitive -> public):")
	shown := 0
	for _, orig := range []string{"macdonald", "macdonld", "macleod", "mary", "marion"} {
		if repl, ok := mapping[orig]; ok {
			fmt.Printf("  %-12s -> %s\n", orig, repl)
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("  (sample names not present in this draw)")
	}

	// Causes of death: rare causes were generalised.
	rare := 0
	for i := range anon.Certificates {
		if anon.Certificates[i].Type == model.Death && anon.Certificates[i].Cause == "not known" {
			rare++
		}
	}
	fmt.Printf("\n%d death certificates carry the generalised cause \"not known\"\n", rare)

	// The full pipeline runs unchanged on the anonymised data.
	pr := er.Run(anon, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(anon, pr.Result.Store)
	engine := server.BuildIndexes(g, 0.5)
	fmt.Printf("\nrebuilt pipeline on anonymised data: %d entities\n", len(g.Nodes))

	// Query with a PUBLIC name (users of the demo site never see Scottish
	// names).
	var probe *pedigree.Node
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 && len(n.Records) >= 4 {
			probe = n
			break
		}
	}
	if probe == nil {
		fmt.Println("no suitable entity to demo")
		return
	}
	results := engine.Search(query.Query{FirstName: probe.FirstNames[0], Surname: probe.Surnames[0]})
	fmt.Printf("\nquery %q -> %d ranked entities; top match pedigree:\n\n",
		probe.FirstNames[0]+" "+probe.Surnames[0], len(results))
	ped := g.Extract(results[0].Entity, 2)
	fmt.Print(g.RenderText(ped))
}
