// Census integration and incremental resolution: the two future-work
// extensions of the paper in one walkthrough. Decennial census households
// are simulated alongside the vital records, entity resolution links
// household members to their certificates (recorded ages narrowing the
// temporal constraints), a newly "arrived" certificate is folded in
// incrementally, and the resulting pedigree is exported as Graphviz DOT.
package main

import (
	"fmt"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

func main() {
	cfg := dataset.IOS().Scaled(0.1).WithCensus()
	pop := dataset.Generate(cfg)
	d := pop.Dataset
	censuses := 0
	for i := range d.Certificates {
		if d.Certificates[i].Type == model.Census {
			censuses++
		}
	}
	fmt.Printf("simulated %d certificates including %d census households (%v)\n",
		len(d.Certificates), censuses, cfg.CensusYears)

	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	store := pr.Result.Store

	// How well do census heads link to birth parents?
	for _, rp := range []model.RolePair{
		model.MakeRolePair(model.Bm, model.Cm),
		model.MakeRolePair(model.Bf, model.Cf),
	} {
		q := eval.QualityOf(eval.Compare(store.MatchPairs(rp), d.TruePairs(rp)))
		fmt.Printf("  %v: %v\n", rp, q)
	}

	// A new death certificate "arrives" after the initial linkage: fold it
	// in incrementally. We fabricate it for a person who already has
	// records: the first census head with a known entity.
	var person *dataset.Person
	for i := range pop.Persons {
		p := &pop.Persons[i]
		if p.Gender == model.Male && p.Spouse != model.NoPerson && p.DeathYear == 0 && p.BirthYear < 1855 {
			person = p
			break
		}
	}
	if person == nil {
		fmt.Println("no suitable person for the incremental demo")
		return
	}
	firstNew := model.RecordID(len(d.Records))
	certID := model.CertID(len(d.Certificates))
	deathYear := 1902 // after the last census, so the death contradicts nothing
	spouse := pop.Person(person.Spouse)
	d.Records = append(d.Records,
		model.Record{
			ID: firstNew, Cert: certID, Role: model.Dd, Gender: model.Male,
			First: model.Intern(person.FirstName), Sur: model.Intern(person.Surname),
			Addr: model.Intern(person.Address), Year: deathYear, Truth: person.ID,
			BirthHint: person.BirthYear,
		},
		model.Record{
			ID: firstNew + 1, Cert: certID, Role: model.Ds, Gender: model.Female,
			First: model.Intern(spouse.FirstName), Sur: model.Intern(spouse.Surname),
			Addr: model.Intern(spouse.Address), Year: deathYear, Truth: spouse.ID,
		},
	)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: certID, Type: model.Death, Year: deathYear, Age: deathYear - person.BirthYear,
		Cause: "old age",
		Roles: map[model.Role]model.RecordID{
			model.Dd: firstNew, model.Ds: firstNew + 1,
		},
	})
	inc := er.Extend(d, store, firstNew, depgraph.DefaultConfig(), er.DefaultConfig())
	fmt.Printf("\nincremental run: %d candidates, %d merged nodes, %v total\n",
		inc.Candidates, inc.Result.MergedNodes, inc.Total())
	if e := store.EntityOf(firstNew); e != er.NoEntity {
		fmt.Printf("new death record joined an entity with %d records\n", len(store.Records(e)))
	} else {
		fmt.Println("new death record stayed a singleton (no confident link)")
	}

	// Export the person's pedigree as Graphviz DOT (pipe into `dot -Tpng`).
	g := pedigree.Build(d, store)
	if node, ok := g.NodeOfRecord(firstNew); ok {
		ped := g.Extract(node, 2)
		fmt.Printf("\n%s\n", g.RenderDot(ped))
	}
}
