// Pedigree search for clinical genetics: the motivating workload of the
// paper. Given a patient referred to a clinical genetics service, find
// their entity in the resolved vital records, extract the family pedigree,
// and summarise the causes of death among relatives — the raw material of a
// familial-cancer risk assessment.
package main

import (
	"fmt"
	"sort"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/server"
)

func main() {
	pop := dataset.Generate(dataset.IOS().Scaled(0.15))
	d := pop.Dataset
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(d, pr.Result.Store)
	engine := server.BuildIndexes(g, 0.5)

	// The genetics team searches for a patient by name and rough birth
	// period, exactly like the web form of Fig. 5.
	q := query.Query{
		FirstName: "catherine",
		Surname:   "mackinnon",
		Gender:    model.Female,
		YearFrom:  1861, YearTo: 1901,
	}
	results := engine.Search(q)
	if len(results) == 0 {
		fmt.Println("patient not found")
		return
	}
	patient := results[0].Entity
	n := g.Node(patient)
	fmt.Printf("patient: %s (records from %d-%d)\n\n", n.DisplayName(), n.MinYear, n.MaxYear)

	// Extract the two-generation pedigree and walk every member's death
	// certificate for causes of death.
	ped := g.Extract(patient, 2)
	fmt.Print(g.RenderText(ped))

	fmt.Println("\ncauses of death in the pedigree:")
	causes := map[string]int{}
	members := make([]pedigree.NodeID, 0, len(ped.Members))
	for id := range ped.Members {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, id := range members {
		for _, rid := range g.Node(id).Records {
			rec := d.Record(rid)
			if rec.Role != model.Dd {
				continue
			}
			cert := &d.Certificates[rec.Cert]
			if cert.Cause == "" {
				continue
			}
			causes[cert.Cause]++
			fmt.Printf("  %-26s died %d aged %-3d %s\n",
				g.Node(id).DisplayName(), cert.Year, cert.Age, cert.Cause)
		}
	}
	if len(causes) == 0 {
		fmt.Println("  (no death certificates among pedigree members)")
		return
	}

	// Flag recurring causes: the signal a geneticist looks for.
	fmt.Println("\nrecurring causes:")
	type cc struct {
		cause string
		n     int
	}
	var list []cc
	for c, n := range causes {
		list = append(list, cc{c, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].cause < list[j].cause
	})
	for _, x := range list {
		marker := ""
		if x.n > 1 {
			marker = "  <-- familial pattern candidate"
		}
		fmt.Printf("  %-30s x%d%s\n", x.cause, x.n, marker)
	}
}
