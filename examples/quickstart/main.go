// Quickstart: simulate a small historical population, resolve entities with
// SNAPS, build the pedigree graph and indexes, run one query, and print the
// top match's family pedigree.
package main

import (
	"fmt"
	"log"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
)

func main() {
	// 1. Data: a 1/10-scale Isle of Skye population, 1861-1901.
	pop := dataset.Generate(dataset.IOS().Scaled(0.1))
	d := pop.Dataset
	fmt.Printf("simulated %d certificates (%d person records)\n",
		len(d.Certificates), len(d.Records))

	// 2. Offline: unsupervised graph-based entity resolution.
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	fmt.Printf("resolved in %v: %d record links\n", pr.Total(), pr.Result.MergedNodes)

	// 3. Pedigree graph and search indexes.
	g := pedigree.Build(d, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	engine := query.NewEngine(g, k, s)
	fmt.Printf("pedigree graph: %d entities\n", len(g.Nodes))

	// 4. Online: query by name (misspellings are fine) and rank.
	results := engine.Search(query.Query{FirstName: "donald", Surname: "macleod"})
	if len(results) == 0 {
		log.Fatal("no results")
	}
	fmt.Println("\ntop matches for 'donald macleod':")
	for i, r := range results {
		if i >= 5 {
			break
		}
		n := g.Node(r.Entity)
		fmt.Printf("  %d. %-26s score %.1f%%\n", i+1, n.DisplayName(), r.Score)
	}

	// 5. Extract and render the top match's family pedigree (2 generations).
	ped := g.Extract(results[0].Entity, 2)
	fmt.Println()
	fmt.Print(g.RenderText(ped))
}
