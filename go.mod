module github.com/snaps/snaps

go 1.22
