package snaps

// Full-system integration test: one pass through everything a deployment
// does — simulate, resolve, evaluate, build the pedigree graph and indexes,
// query, extract and render a pedigree, export GEDCOM, persist and restore
// a snapshot, apply expert feedback, extend incrementally, and anonymise.

import (
	"bytes"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/anonymize"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/feedback"
	"github.com/snaps/snaps/internal/gedcom"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/store"
)

func TestFullSystemIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}

	// 1. Simulate and resolve.
	pop := dataset.Generate(dataset.IOS().Scaled(0.1).WithCensus())
	d := pop.Dataset
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	rp := model.MakeRolePair(model.Bm, model.Bm)
	q := eval.QualityOf(eval.Compare(pr.Result.Store.MatchPairs(rp), d.TruePairs(rp)))
	t.Logf("resolution quality (Bm-Bm): %v", q)
	if q.Precision < 85 || q.Recall < 70 {
		t.Fatalf("resolution quality too low for the rest of the flow: %v", q)
	}

	// 2. Pedigree graph, indexes, query.
	g := pedigree.Build(d, pr.Result.Store)
	k, sim := index.Build(g, 0.5)
	engine := query.NewEngine(g, k, sim)
	var probe *pedigree.Node
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.Records) >= 5 && len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			probe = n
			break
		}
	}
	if probe == nil {
		t.Fatal("no well-connected entity")
	}
	results := engine.Search(query.Query{FirstName: probe.FirstNames[0], Surname: probe.Surnames[0]})
	if len(results) == 0 {
		t.Fatal("no query results")
	}
	found := false
	for _, r := range results {
		if r.Entity == probe.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("probe entity not retrieved by its own name")
	}

	// 3. Extract, render, and export the pedigree.
	ped := g.Extract(probe.ID, 2)
	if len(ped.Members) < 2 {
		t.Fatal("pedigree has no relatives")
	}
	if txt := g.RenderText(ped); !strings.Contains(txt, probe.DisplayName()) {
		t.Fatal("text rendering lost the focus")
	}
	if dot := g.RenderDot(ped); !strings.HasPrefix(dot, "digraph pedigree {") {
		t.Fatal("bad dot rendering")
	}
	var ged bytes.Buffer
	if err := gedcom.ExportPedigree(&ged, g, ped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ged.String(), " INDI\n") {
		t.Fatal("gedcom export empty")
	}

	// 4. Persist, restore, and verify the clustering survives.
	var snapBuf bytes.Buffer
	if err := store.Write(&snapBuf, store.FromResult(d, pr.Result.Store)); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Read(&snapBuf)
	if err != nil {
		t.Fatal(err)
	}
	restored := snap.Restore()
	if len(restored.MatchPairs(rp)) != len(pr.Result.Store.MatchPairs(rp)) {
		t.Fatal("restored clustering differs")
	}

	// 5. Expert feedback round trip on the restored store.
	journal := feedback.NewJournal()
	recs := restored.Records(restored.EntityOf(probe.Records[0]))
	journal.Record(recs[0], recs[1], feedback.Reject)
	unlinked, _ := feedback.Apply(restored, journal)
	if unlinked != 1 {
		t.Fatalf("feedback rejection not applied: %d", unlinked)
	}
	if len(feedback.Violations(restored, journal)) != 0 {
		t.Fatal("feedback still violated after apply")
	}

	// 6. Incremental extension with a fresh death certificate.
	var person *dataset.Person
	for i := range pop.Persons {
		p := &pop.Persons[i]
		if p.DeathYear == 0 && p.Spouse != model.NoPerson && p.BirthYear < 1870 {
			person = p
			break
		}
	}
	if person != nil {
		firstNew := model.RecordID(len(d.Records))
		certID := model.CertID(len(d.Certificates))
		spouse := pop.Person(person.Spouse)
		d.Records = append(d.Records,
			model.Record{
				ID: firstNew, Cert: certID, Role: model.Dd, Gender: person.Gender,
				First: model.Intern(person.FirstName), Sur: model.Intern(person.Surname),
				Addr: model.Intern(person.Address), Year: 1902, Truth: person.ID,
				BirthHint: person.BirthYear,
			},
			model.Record{
				ID: firstNew + 1, Cert: certID, Role: model.Ds, Gender: spouse.Gender,
				First: model.Intern(spouse.FirstName), Sur: model.Intern(spouse.Surname),
				Addr: model.Intern(spouse.Address), Year: 1902, Truth: spouse.ID,
			},
		)
		d.Certificates = append(d.Certificates, model.Certificate{
			ID: certID, Type: model.Death, Year: 1902, Age: 1902 - person.BirthYear,
			Cause: "old age",
			Roles: map[model.Role]model.RecordID{model.Dd: firstNew, model.Ds: firstNew + 1},
		})
		er.Extend(d, pr.Result.Store, firstNew, depgraph.DefaultConfig(), er.DefaultConfig())
		// The extension must never corrupt the store's invariants.
		for _, e := range pr.Result.Store.Entities() {
			if len(pr.Result.Store.Records(e)) < 2 {
				t.Fatal("extension produced an undersized entity")
			}
		}
	}

	// 7. Anonymise and re-query with public names only.
	anonD, mapping := anonymize.Anonymize(d, anonymize.DefaultConfig())
	if len(mapping) == 0 {
		t.Fatal("empty anonymisation mapping")
	}
	anonPr := er.Run(anonD, depgraph.DefaultConfig(), er.DefaultConfig())
	anonG := pedigree.Build(anonD, anonPr.Result.Store)
	ak, asim := index.Build(anonG, 0.5)
	anonEngine := query.NewEngine(anonG, ak, asim)
	anonProbe := &anonG.Nodes[0]
	for i := range anonG.Nodes {
		n := &anonG.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			anonProbe = n
			break
		}
	}
	if rs := anonEngine.Search(query.Query{
		FirstName: anonProbe.FirstNames[0], Surname: anonProbe.Surnames[0],
	}); len(rs) == 0 {
		t.Fatal("anonymised deployment cannot answer queries")
	}
}
