// Package admission implements server-side load protection for the SNAPS
// serving tier: per-class weighted concurrency limits, token-bucket rate
// limiting, and ingest backpressure, combined into one admission decision
// per request.
//
// Requests are grouped into classes (search, pedigree render, ingest;
// /metrics and /healthz are exempt) and every class pays a weighted share
// of one global in-flight budget. The degradation ladder falls out of the
// per-class admission ceilings: pedigree renders may only use up to half
// the budget, ingest three quarters, searches all of it — so under a
// saturating burst pedigree requests are shed first, then ingest, then
// searches, while /metrics and /healthz always answer. Every decision is
// counted in the obs registry so the load harness (internal/load) can
// verify the ladder it induces.
//
// Admission never queues: a request over its ceiling is rejected
// immediately with a Retry-After hint rather than parked, because under
// open-loop traffic (real users, the load harness) queued requests only
// convert overload into latency collapse and memory growth.
package admission

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/snaps/snaps/internal/obs"
)

// Class buckets routes by cost and priority. The zero value is Exempt:
// never rate-limited, never counted against the in-flight budget.
type Class uint8

const (
	// Exempt requests (metrics, health, status, debug) are always admitted.
	Exempt Class = iota
	// Search is the cheap hot path: keyword search and explain.
	Search
	// Ingest is certificate submission; it also answers for journal
	// backlog backpressure.
	Ingest
	// Pedigree is the expensive graph-walk render path, first on the
	// degradation ladder.
	Pedigree

	// NumClasses sizes per-class tables.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Exempt:
		return "exempt"
	case Search:
		return "search"
	case Ingest:
		return "ingest"
	case Pedigree:
		return "pedigree"
	}
	return "class?"
}

// ClassLimits tunes one class.
type ClassLimits struct {
	// Weight is the in-flight budget units one request of this class
	// occupies while being served (pedigree renders cost more than
	// searches).
	Weight int
	// Fraction is the class's admission ceiling as a fraction of the
	// total budget: a request is admitted only while the weighted
	// in-flight total (plus its own weight) stays at or under
	// Fraction*MaxConcurrency. Lower fractions shed earlier — this
	// ordering is the degradation ladder.
	Fraction float64
	// Rate is the token-bucket refill rate in requests/second; 0 means
	// no rate limit for the class.
	Rate float64
	// Burst is the bucket depth; defaults to max(1, 2*Rate) when a rate
	// is set.
	Burst float64
}

// Config tunes the admission controller.
type Config struct {
	// MaxConcurrency is the global weighted in-flight budget. <= 0
	// disables concurrency limiting (rate limits and backpressure still
	// apply).
	MaxConcurrency int
	// Limits holds the per-class knobs, indexed by Class.
	Limits [NumClasses]ClassLimits
	// RetryAfter is the Retry-After hint for concurrency sheds.
	RetryAfter time.Duration
	// BacklogRetryAfter is the Retry-After hint for ingest backlog sheds;
	// callers set it to the ingest flush horizon (Config.MaxAge) so the
	// hint matches when capacity actually frees up.
	BacklogRetryAfter time.Duration
	// MaxBacklogRecords and MaxBacklogBytes bound the unflushed ingest
	// backlog: once Backlog() reports either at or above its bound, new
	// ingest requests are shed until a flush drains it. 0 disables the
	// respective bound.
	MaxBacklogRecords int
	MaxBacklogBytes   int64
	// Backlog reports the current unflushed ingest backlog (records,
	// bytes); nil disables backpressure. Wired to
	// ingest.Pipeline.Backlog.
	Backlog func() (records int, bytes int64)
	// MaxShardBacklogRecords and MaxShardBacklogBytes bound the hottest
	// single shard's unflushed backlog in a sharded serving tier, so one
	// hot partition sheds ingest before it can hide behind the global
	// average. 0 disables the respective bound.
	MaxShardBacklogRecords int
	MaxShardBacklogBytes   int64
	// ShardBacklog reports the hottest shard's backlog; nil disables
	// per-shard backpressure. Wired to
	// ingest.Pipeline.HottestShardBacklog.
	ShardBacklog func() (shard, records int, bytes int64)
}

// DefaultConfig returns the production defaults: a 64-unit budget with the
// pedigree-before-ingest-before-search degradation ladder, no per-class
// rate limits, and a 4096-record / 8 MiB ingest backlog bound.
func DefaultConfig() Config {
	cfg := Config{
		MaxConcurrency:    64,
		RetryAfter:        time.Second,
		BacklogRetryAfter: 2 * time.Second,
		MaxBacklogRecords: 4096,
		MaxBacklogBytes:   8 << 20,
	}
	cfg.Limits[Search] = ClassLimits{Weight: 1, Fraction: 1.0}
	cfg.Limits[Ingest] = ClassLimits{Weight: 2, Fraction: 0.75}
	cfg.Limits[Pedigree] = ClassLimits{Weight: 4, Fraction: 0.5}
	return cfg
}

// Decision is the outcome of one admission check.
type Decision struct {
	Admitted bool
	// Reason a request was shed: "concurrency", "rate", "backlog", or
	// "shard_backlog".
	Reason string
	// RetryAfter is the suggested client back-off; the HTTP layer rounds
	// it up to whole seconds for the Retry-After header.
	RetryAfter time.Duration
}

// Controller makes admission decisions. One controller fronts one server;
// all methods are safe for concurrent use.
type Controller struct {
	cfg      Config
	ceil     [NumClasses]int64 // weighted ceiling per class; 0 = unlimited
	buckets  [NumClasses]*bucket
	inflight atomic.Int64 // weighted units currently being served

	now func() time.Time // injectable for deterministic tests
}

// Admission metrics in the default registry, exposed at GET /metrics.
var (
	mInflight = obs.Default.Gauge("snaps_admission_inflight",
		"Weighted in-flight units currently admitted across all classes.")
)

func admittedCounter(c Class) *obs.Counter {
	return obs.Default.Counter(
		"snaps_admission_admitted_total{"+obs.Label("class", c.String())+"}",
		"Requests admitted, by class.")
}

func shedCounter(c Class, reason string) *obs.Counter {
	return obs.Default.Counter(
		"snaps_admission_shed_total{"+obs.Label("class", c.String())+","+obs.Label("reason", reason)+"}",
		"Requests shed (429), by class and reason.")
}

// mShedRetryAfter records the Retry-After hints attached to shed decisions,
// so a replayed log can be checked against the back-off the live run
// actually advertised.
var mShedRetryAfter = obs.Default.HistogramVec("snaps_admission_retry_after_seconds",
	"Retry-After hints attached to shed (429) decisions, by class.",
	obs.LatencyBuckets, "class")

// shed counts one rejection and returns its Decision.
func shedDecision(cl Class, reason string, retryAfter time.Duration) Decision {
	shedCounter(cl, reason).Inc()
	mShedRetryAfter.With(cl.String()).Observe(retryAfter.Seconds())
	return Decision{Reason: reason, RetryAfter: retryAfter}
}

// New returns a controller for the config.
func New(cfg Config) *Controller {
	c := &Controller{cfg: cfg, now: time.Now}
	if c.cfg.RetryAfter <= 0 {
		c.cfg.RetryAfter = time.Second
	}
	if c.cfg.BacklogRetryAfter <= 0 {
		c.cfg.BacklogRetryAfter = 2 * time.Second
	}
	for cl := Class(0); cl < NumClasses; cl++ {
		lim := cfg.Limits[cl]
		if cfg.MaxConcurrency > 0 && lim.Weight > 0 && lim.Fraction > 0 {
			ceil := int64(lim.Fraction * float64(cfg.MaxConcurrency))
			if ceil < int64(lim.Weight) {
				ceil = int64(lim.Weight) // never configure a class out entirely
			}
			c.ceil[cl] = ceil
		}
		if lim.Rate > 0 {
			burst := lim.Burst
			if burst <= 0 {
				burst = 2 * lim.Rate
			}
			if burst < 1 {
				burst = 1
			}
			c.buckets[cl] = &bucket{rate: lim.Rate, burst: burst}
		}
	}
	return c
}

var noRelease = func() {}

// Admit decides one request. The returned release function MUST be called
// exactly once when the request finishes (it is a no-op for shed and
// exempt requests, so callers can defer it unconditionally).
//
// Checks run cheapest-and-most-actionable first: ingest backlog (the
// memory-protection signal, with a flush-horizon Retry-After), then the
// class token bucket, then the weighted concurrency ceiling.
func (c *Controller) Admit(cl Class) (release func(), d Decision) {
	if cl == Exempt || cl >= NumClasses {
		return noRelease, Decision{Admitted: true}
	}
	if cl == Ingest && c.cfg.Backlog != nil {
		if over, _, _ := c.BacklogExceeded(); over {
			return noRelease, shedDecision(cl, "backlog", c.cfg.BacklogRetryAfter)
		}
	}
	if cl == Ingest && c.cfg.ShardBacklog != nil {
		if over, _, _, _ := c.ShardBacklogExceeded(); over {
			return noRelease, shedDecision(cl, "shard_backlog", c.cfg.BacklogRetryAfter)
		}
	}
	if b := c.buckets[cl]; b != nil {
		if ok, wait := b.take(c.now()); !ok {
			if wait < c.cfg.RetryAfter {
				wait = c.cfg.RetryAfter
			}
			return noRelease, shedDecision(cl, "rate", wait)
		}
	}
	w := int64(c.cfg.Limits[cl].Weight)
	if ceil := c.ceil[cl]; ceil > 0 {
		for {
			cur := c.inflight.Load()
			if cur+w > ceil {
				return noRelease, shedDecision(cl, "concurrency", c.cfg.RetryAfter)
			}
			if c.inflight.CompareAndSwap(cur, cur+w) {
				break
			}
		}
		mInflight.Set(c.inflight.Load())
		admittedCounter(cl).Inc()
		var once sync.Once
		return func() {
			once.Do(func() {
				mInflight.Set(c.inflight.Add(-w))
			})
		}, Decision{Admitted: true}
	}
	admittedCounter(cl).Inc()
	return noRelease, Decision{Admitted: true}
}

// Inflight returns the weighted in-flight total.
func (c *Controller) Inflight() int64 { return c.inflight.Load() }

// Shedding reports whether a new request of the class would currently be
// shed by the concurrency ceiling. Always false for Exempt and for
// unlimited classes.
func (c *Controller) Shedding(cl Class) bool {
	if cl == Exempt || cl >= NumClasses {
		return false
	}
	ceil := c.ceil[cl]
	if ceil <= 0 {
		return false
	}
	return c.inflight.Load()+int64(c.cfg.Limits[cl].Weight) > ceil
}

// BacklogExceeded reports whether the ingest backlog is over either bound,
// along with the observed backlog.
func (c *Controller) BacklogExceeded() (over bool, records int, bytes int64) {
	if c.cfg.Backlog == nil {
		return false, 0, 0
	}
	records, bytes = c.cfg.Backlog()
	if c.cfg.MaxBacklogRecords > 0 && records >= c.cfg.MaxBacklogRecords {
		over = true
	}
	if c.cfg.MaxBacklogBytes > 0 && bytes >= c.cfg.MaxBacklogBytes {
		over = true
	}
	return over, records, bytes
}

// ShardBacklogExceeded reports whether the hottest shard's backlog is over
// either per-shard bound, along with the shard and its observed backlog.
func (c *Controller) ShardBacklogExceeded() (over bool, shard, records int, bytes int64) {
	if c.cfg.ShardBacklog == nil {
		return false, 0, 0, 0
	}
	shard, records, bytes = c.cfg.ShardBacklog()
	if c.cfg.MaxShardBacklogRecords > 0 && records >= c.cfg.MaxShardBacklogRecords {
		over = true
	}
	if c.cfg.MaxShardBacklogBytes > 0 && bytes >= c.cfg.MaxShardBacklogBytes {
		over = true
	}
	return over, shard, records, bytes
}

// Overloaded reports whether the server is currently degrading: any class
// is being shed by its concurrency ceiling, or the ingest backlog (global
// or any single shard's) is over a bound. GET /healthz returns 503 while
// this holds, so a fronting load balancer (and the load harness) can
// detect overload and recovery.
func (c *Controller) Overloaded() bool {
	for cl := Search; cl < NumClasses; cl++ {
		if c.Shedding(cl) {
			return true
		}
	}
	if over, _, _ := c.BacklogExceeded(); over {
		return true
	}
	over, _, _, _ := c.ShardBacklogExceeded()
	return over
}

// bucket is a token bucket: refilled continuously at rate tokens/second up
// to burst, one token per admitted request.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token, reporting how long until one would be available
// when it cannot.
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = b.burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
