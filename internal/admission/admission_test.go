package admission

import (
	"sync"
	"testing"
	"time"
)

// admitN admits n requests of the class, failing the test on any shed, and
// returns the releases.
func admitN(t *testing.T, c *Controller, cl Class, n int) []func() {
	t.Helper()
	rels := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		rel, d := c.Admit(cl)
		if !d.Admitted {
			t.Fatalf("request %d of class %v shed (%s), want admitted", i, cl, d.Reason)
		}
		rels = append(rels, rel)
	}
	return rels
}

func TestExemptAlwaysAdmitted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrency = 1
	c := New(cfg)
	// Saturate with a search, then verify exempt still passes.
	admitN(t, c, Search, 1)
	for i := 0; i < 100; i++ {
		if _, d := c.Admit(Exempt); !d.Admitted {
			t.Fatalf("exempt request shed: %+v", d)
		}
	}
}

// TestDegradationLadder drives the weighted budget through the three
// regimes of the ladder: pedigree sheds first (above half the budget),
// then ingest (above three quarters), then search (full budget), and
// recovery reverses the order as releases drain.
func TestDegradationLadder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrency = 16 // ceilings: pedigree 8, ingest 12, search 16
	c := New(cfg)

	// Fill to 8 units with searches: pedigree (weight 4) no longer fits
	// under its ceiling of 8, but ingest and search still do.
	rels := admitN(t, c, Search, 8)
	if _, d := c.Admit(Pedigree); d.Admitted {
		t.Fatal("pedigree admitted above its ceiling")
	} else if d.Reason != "concurrency" {
		t.Fatalf("pedigree shed reason = %q, want concurrency", d.Reason)
	}
	if !c.Shedding(Pedigree) || c.Shedding(Search) || c.Shedding(Ingest) {
		t.Fatalf("shed state at 8 units: pedigree=%v search=%v ingest=%v",
			c.Shedding(Pedigree), c.Shedding(Search), c.Shedding(Ingest))
	}
	ingRel, d := c.Admit(Ingest) // 8+2 <= 12: still admitted
	if !d.Admitted {
		t.Fatalf("ingest shed at 10 units: %+v", d)
	}

	// Fill to 12: ingest now sheds too, search still admitted.
	rels = append(rels, admitN(t, c, Search, 2)...)
	if _, d := c.Admit(Ingest); d.Admitted {
		t.Fatal("ingest admitted above its ceiling")
	}
	rels = append(rels, admitN(t, c, Search, 4)...)

	// Full budget: search sheds last.
	if _, d := c.Admit(Search); d.Admitted {
		t.Fatal("search admitted above the full budget")
	} else if d.RetryAfter <= 0 {
		t.Fatalf("concurrency shed carries no Retry-After: %+v", d)
	}
	if got := c.Inflight(); got != 16 {
		t.Fatalf("inflight = %d, want 16", got)
	}
	if !c.Overloaded() {
		t.Fatal("controller not overloaded at full budget")
	}

	// Recovery: drain searches; pedigree is admitted again once the
	// weighted total leaves room under its ceiling.
	for _, rel := range rels {
		rel()
	}
	ingRel()
	if c.Overloaded() {
		t.Fatalf("still overloaded after drain (inflight=%d)", c.Inflight())
	}
	rel, d := c.Admit(Pedigree)
	if !d.Admitted {
		t.Fatalf("pedigree shed after recovery: %+v", d)
	}
	rel()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after full drain = %d, want 0", got)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrency = 8
	c := New(cfg)
	rel, _ := c.Admit(Search)
	rel()
	rel() // double release must not underflow the budget
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Limits[Search].Rate = 10 // 10 rps
	cfg.Limits[Search].Burst = 2
	c := New(cfg)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	// The burst admits two back-to-back requests; the third is shed with
	// a wait hint.
	for i := 0; i < 2; i++ {
		rel, d := c.Admit(Search)
		if !d.Admitted {
			t.Fatalf("burst request %d shed: %+v", i, d)
		}
		rel()
	}
	if _, d := c.Admit(Search); d.Admitted {
		t.Fatal("request over the bucket admitted")
	} else if d.Reason != "rate" || d.RetryAfter <= 0 {
		t.Fatalf("rate shed = %+v", d)
	}

	// 100ms refills one token at 10 rps.
	now = now.Add(100 * time.Millisecond)
	rel, d := c.Admit(Search)
	if !d.Admitted {
		t.Fatalf("request after refill shed: %+v", d)
	}
	rel()
}

func TestIngestBacklogBackpressure(t *testing.T) {
	var mu sync.Mutex
	records, bytes := 0, int64(0)
	cfg := DefaultConfig()
	cfg.MaxBacklogRecords = 100
	cfg.MaxBacklogBytes = 1 << 20
	cfg.BacklogRetryAfter = 3 * time.Second
	cfg.Backlog = func() (int, int64) {
		mu.Lock()
		defer mu.Unlock()
		return records, bytes
	}
	c := New(cfg)

	rel, d := c.Admit(Ingest)
	if !d.Admitted {
		t.Fatalf("ingest shed with empty backlog: %+v", d)
	}
	rel()

	set := func(r int, b int64) {
		mu.Lock()
		records, bytes = r, b
		mu.Unlock()
	}
	// Record bound.
	set(100, 0)
	if _, d := c.Admit(Ingest); d.Admitted {
		t.Fatal("ingest admitted over the record bound")
	} else if d.Reason != "backlog" || d.RetryAfter != 3*time.Second {
		t.Fatalf("backlog shed = %+v", d)
	}
	if !c.Overloaded() {
		t.Fatal("controller not overloaded with backlog over bound")
	}
	// Byte bound alone.
	set(1, 1<<20)
	if _, d := c.Admit(Ingest); d.Admitted {
		t.Fatal("ingest admitted over the byte bound")
	}
	// Backpressure only applies to ingest: searches unaffected.
	rel, d = c.Admit(Search)
	if !d.Admitted {
		t.Fatalf("search shed by ingest backlog: %+v", d)
	}
	rel()
	// Recovery after a flush drains the backlog.
	set(0, 0)
	rel, d = c.Admit(Ingest)
	if !d.Admitted {
		t.Fatalf("ingest shed after backlog drained: %+v", d)
	}
	rel()
}

// TestConcurrentAdmitRace hammers Admit/release from many goroutines; run
// under -race in CI. The invariant: inflight returns to zero and never
// exceeds the budget.
func TestConcurrentAdmitRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrency = 32
	c := New(cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(cl Class) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rel, d := c.Admit(cl)
				if d.Admitted {
					if got := c.Inflight(); got > 32 {
						t.Errorf("inflight %d exceeds budget", got)
						rel()
						return
					}
				}
				rel()
			}
		}([]Class{Search, Ingest, Pedigree, Search}[g%4])
	}
	wg.Wait()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

// TestShardBacklogBackpressure pins the per-shard ingest backpressure: one
// hot shard over its bound sheds ingest with the dedicated reason even
// while the global backlog average looks healthy, recovery follows the
// hottest shard, and searches are never affected.
func TestShardBacklogBackpressure(t *testing.T) {
	var mu sync.Mutex
	hotShard, hotRecords, hotBytes := 0, 0, int64(0)
	cfg := DefaultConfig()
	cfg.MaxBacklogRecords = 1000 // global bound far away: only the shard trips
	cfg.MaxShardBacklogRecords = 10
	cfg.MaxShardBacklogBytes = 1 << 10
	cfg.BacklogRetryAfter = 2 * time.Second
	cfg.Backlog = func() (int, int64) { return 12, 64 } // well under global bounds
	cfg.ShardBacklog = func() (int, int, int64) {
		mu.Lock()
		defer mu.Unlock()
		return hotShard, hotRecords, hotBytes
	}
	c := New(cfg)

	rel, d := c.Admit(Ingest)
	if !d.Admitted {
		t.Fatalf("ingest shed with cold shards: %+v", d)
	}
	rel()

	set := func(s, r int, b int64) {
		mu.Lock()
		hotShard, hotRecords, hotBytes = s, r, b
		mu.Unlock()
	}
	// Record bound on one shard: the global backlog (12 records) is far from
	// its own bound, so only the per-shard signal can shed here.
	set(3, 10, 64)
	if _, d := c.Admit(Ingest); d.Admitted {
		t.Fatal("ingest admitted with a shard over its record bound")
	} else if d.Reason != "shard_backlog" || d.RetryAfter != 2*time.Second {
		t.Fatalf("shard backlog shed = %+v", d)
	}
	if !c.Overloaded() {
		t.Fatal("controller not overloaded with a shard over bound")
	}
	if over, s, r, _ := c.ShardBacklogExceeded(); !over || s != 3 || r != 10 {
		t.Fatalf("ShardBacklogExceeded = (%v, %d, %d, _)", over, s, r)
	}
	// Byte bound alone.
	set(1, 2, 1<<10)
	if _, d := c.Admit(Ingest); d.Admitted {
		t.Fatal("ingest admitted with a shard over its byte bound")
	}
	// Searches are unaffected by ingest backpressure.
	rel, d = c.Admit(Search)
	if !d.Admitted {
		t.Fatalf("search shed by shard backlog: %+v", d)
	}
	rel()
	// Recovery once the hot shard drains.
	set(3, 0, 0)
	rel, d = c.Admit(Ingest)
	if !d.Admitted {
		t.Fatalf("ingest shed after hot shard drained: %+v", d)
	}
	rel()
	if c.Overloaded() {
		t.Fatal("controller still overloaded after the hot shard drained")
	}
}
