// Package anonymize implements the graph data anonymisation of Sec. 9 of
// the paper, which lets a SNAPS deployment expose a realistic but
// non-identifying version of a sensitive vital-records data set:
//
//   - Name mapping: female first names, male first names, and surnames are
//     clustered by string similarity in both the sensitive data set and a
//     public name corpus; each sensitive cluster is mapped to the public
//     cluster with the most similar intra-cluster structure, and every
//     sensitive name is replaced by a public one so that similarities
//     between names are approximately preserved.
//   - Year shifting: every year is moved by a global (secret) offset, so
//     temporal distances between vital events are preserved.
//   - Cause-of-death k-anonymity: causes occurring fewer than k times within
//     a gender × age stratum are replaced by the most similar frequent cause
//     (Jaccard similarity), or "not known" when none is similar, so rare and
//     potentially identifying causes disappear.
package anonymize

import (
	"sort"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/strsim"
)

// Config tunes the anonymiser.
type Config struct {
	// YearOffset is the global shift applied to every year. Deployments
	// keep it secret; tests pass a fixed value.
	YearOffset int
	// K is the k-anonymity threshold for causes of death (paper: 10).
	K int
	// ClusterThreshold is the minimum Jaro-Winkler similarity for a name to
	// join an existing name cluster.
	ClusterThreshold float64
	// Public name corpora. Defaults stand in for the US voter database the
	// paper uses.
	PublicFemale, PublicMale, PublicSurnames []string
}

// DefaultConfig returns the paper's parameters with the embedded public
// name pools.
func DefaultConfig() Config {
	return Config{
		YearOffset:       -37,
		K:                10,
		ClusterThreshold: 0.82,
		PublicFemale:     PublicFemaleNames,
		PublicMale:       PublicMaleNames,
		PublicSurnames:   PublicSurnames,
	}
}

// Anonymize returns a deep copy of the data set with names mapped to the
// public corpus, years shifted, and rare causes of death generalised. The
// original data set is not modified. The returned mapping reports the name
// substitutions for audit/testing (sensitive → public).
func Anonymize(d *model.Dataset, cfg Config) (*model.Dataset, map[string]string) {
	out := &model.Dataset{Name: d.Name + "-anon"}
	out.Records = append([]model.Record(nil), d.Records...)
	out.Certificates = make([]model.Certificate, len(d.Certificates))
	for i, c := range d.Certificates {
		cc := c
		cc.Roles = make(map[model.Role]model.RecordID, len(c.Roles))
		for r, id := range c.Roles {
			cc.Roles[r] = id
		}
		out.Certificates[i] = cc
	}

	mapping := buildNameMapping(d, cfg)
	for i := range out.Records {
		rec := &out.Records[i]
		if rec.First != 0 {
			rec.First = model.Intern(mapName(mapping, rec.FirstName()))
		}
		if rec.Sur != 0 {
			rec.Sur = model.Intern(mapName(mapping, rec.Surname()))
		}
		if rec.Year != 0 {
			rec.Year += cfg.YearOffset
		}
	}
	for i := range out.Certificates {
		if out.Certificates[i].Year != 0 {
			out.Certificates[i].Year += cfg.YearOffset
		}
	}
	anonymizeCauses(out, cfg)
	return out, mapping
}

func mapName(mapping map[string]string, name string) string {
	if v, ok := mapping[name]; ok {
		return v
	}
	return name
}

// nameCluster is a similarity cluster of names: a centre plus members.
type nameCluster struct {
	centre  string
	members []string
}

// clusterNames greedily clusters names (most frequent first) by similarity
// to existing cluster centres.
func clusterNames(names []string, freq map[string]int, threshold float64) []nameCluster {
	ordered := append([]string(nil), names...)
	sort.Slice(ordered, func(i, j int) bool {
		if freq[ordered[i]] != freq[ordered[j]] {
			return freq[ordered[i]] > freq[ordered[j]]
		}
		return ordered[i] < ordered[j]
	})
	var clusters []nameCluster
	for _, n := range ordered {
		placed := false
		for i := range clusters {
			if strsim.JaroWinkler(n, clusters[i].centre) >= threshold {
				clusters[i].members = append(clusters[i].members, n)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, nameCluster{centre: n, members: []string{n}})
		}
	}
	return clusters
}

// buildNameMapping clusters the sensitive names per name class, clusters
// the public corpus the same way, and maps rank-to-rank: the i-th largest
// sensitive cluster maps onto the i-th largest public cluster, member by
// member. Sensitive clusters larger than their public counterpart synthesise
// extra variants by suffixing the public centre, which preserves high
// intra-cluster similarity.
func buildNameMapping(d *model.Dataset, cfg Config) map[string]string {
	femFreq := map[string]int{}
	maleFreq := map[string]int{}
	surFreq := map[string]int{}
	for i := range d.Records {
		rec := &d.Records[i]
		g := rec.Gender
		if g == model.GenderUnknown {
			g = model.RoleGender(rec.Role)
		}
		if rec.First != 0 {
			switch g {
			case model.Female:
				femFreq[rec.FirstName()]++
			case model.Male:
				maleFreq[rec.FirstName()]++
			default:
				// Unknown gender names join the larger pool deterministically.
				femFreq[rec.FirstName()]++
			}
		}
		if rec.Sur != 0 {
			surFreq[rec.Surname()]++
		}
	}
	mapping := map[string]string{}
	mapClass(mapping, femFreq, cfg.PublicFemale, cfg.ClusterThreshold)
	mapClass(mapping, maleFreq, cfg.PublicMale, cfg.ClusterThreshold)
	mapClass(mapping, surFreq, cfg.PublicSurnames, cfg.ClusterThreshold)
	return mapping
}

func mapClass(mapping map[string]string, freq map[string]int, public []string, threshold float64) {
	if len(freq) == 0 || len(public) == 0 {
		return
	}
	names := make([]string, 0, len(freq))
	for n := range freq {
		if _, done := mapping[n]; !done {
			names = append(names, n)
		}
	}
	sensitive := clusterNames(names, freq, threshold)
	pubFreq := map[string]int{}
	for i, p := range public {
		pubFreq[p] = len(public) - i // corpus order encodes frequency rank
	}
	publicClusters := clusterNames(public, pubFreq, threshold)
	// Rank clusters by size (then centre) on both sides.
	rank := func(cs []nameCluster) {
		sort.Slice(cs, func(i, j int) bool {
			if len(cs[i].members) != len(cs[j].members) {
				return len(cs[i].members) > len(cs[j].members)
			}
			return cs[i].centre < cs[j].centre
		})
	}
	rank(sensitive)
	rank(publicClusters)
	for i, sc := range sensitive {
		pc := publicClusters[i%len(publicClusters)]
		for j, member := range sc.members {
			var repl string
			if j < len(pc.members) {
				repl = pc.members[j]
			} else {
				// Synthesise a similar variant of the public centre.
				repl = pc.centre + variantSuffix(j-len(pc.members))
			}
			// The corpora may overlap with the sensitive vocabulary; a name
			// must never map to itself, so fall back to a variant.
			if repl == member {
				repl = pc.centre + variantSuffix(len(sc.members)+j)
			}
			mapping[member] = repl
		}
	}
}

// variantSuffix produces short deterministic suffixes ("a", "b", ..., "aa").
func variantSuffix(i int) string {
	s := ""
	for {
		s = string(rune('a'+i%26)) + s
		i = i/26 - 1
		if i < 0 {
			break
		}
	}
	return s
}

// ageStratum buckets an age at death the way the paper does: young (<20),
// middle (20-40), old (40+). Unknown ages get their own stratum.
func ageStratum(age int) int {
	switch {
	case age < 0:
		return 3
	case age < 20:
		return 0
	case age < 40:
		return 1
	default:
		return 2
	}
}

// anonymizeCauses applies gender- and age-stratified k-anonymity to causes
// of death in place.
func anonymizeCauses(d *model.Dataset, cfg Config) {
	type stratum struct {
		gender model.Gender
		age    int
	}
	counts := map[stratum]map[string]int{}
	strOf := func(c *model.Certificate) (stratum, bool) {
		if c.Type != model.Death || c.Cause == "" {
			return stratum{}, false
		}
		rid, ok := c.Roles[model.Dd]
		if !ok {
			return stratum{}, false
		}
		g := d.Record(rid).Gender
		return stratum{gender: g, age: ageStratum(c.Age)}, true
	}
	for i := range d.Certificates {
		c := &d.Certificates[i]
		st, ok := strOf(c)
		if !ok {
			continue
		}
		if counts[st] == nil {
			counts[st] = map[string]int{}
		}
		counts[st][c.Cause]++
	}
	for i := range d.Certificates {
		c := &d.Certificates[i]
		st, ok := strOf(c)
		if !ok {
			continue
		}
		if counts[st][c.Cause] >= cfg.K {
			continue // already frequent in its stratum
		}
		// Find the most similar frequent cause within the stratum.
		best, bestSim := "", 0.0
		frequent := make([]string, 0, len(counts[st]))
		for cause, n := range counts[st] {
			if n >= cfg.K {
				frequent = append(frequent, cause)
			}
		}
		sort.Strings(frequent)
		for _, cause := range frequent {
			if s := strsim.Jaccard(c.Cause, cause); s > bestSim {
				best, bestSim = cause, s
			}
		}
		if best == "" || bestSim == 0 {
			best = "not known"
		}
		c.Cause = best
	}
}
