package anonymize

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/strsim"
)

func sample(t *testing.T) *model.Dataset {
	t.Helper()
	return dataset.Generate(dataset.IOS().Scaled(0.12)).Dataset
}

func TestAnonymizeDoesNotModifyOriginal(t *testing.T) {
	d := sample(t)
	before := append([]model.Record(nil), d.Records...)
	Anonymize(d, DefaultConfig())
	for i := range d.Records {
		if d.Records[i] != before[i] {
			t.Fatal("original data set modified")
		}
	}
}

func TestAnonymizeReplacesAllNames(t *testing.T) {
	d := sample(t)
	anon, mapping := Anonymize(d, DefaultConfig())
	if len(mapping) == 0 {
		t.Fatal("empty name mapping")
	}
	// The privacy property is that no name maps to itself: a record's
	// anonymised name must always differ from its sensitive original.
	// (A replacement may coincide with a *different* person's sensitive
	// name when the corpora overlap; that does not identify anyone.)
	for i := range anon.Records {
		orig, got := d.Records[i].FirstName(), anon.Records[i].FirstName()
		if orig != "" && got == orig {
			t.Fatalf("record %d: first name %q survived anonymisation", i, orig)
		}
		orig, got = d.Records[i].Surname(), anon.Records[i].Surname()
		if orig != "" && got == orig {
			t.Fatalf("record %d: surname %q survived anonymisation", i, orig)
		}
	}
}

func TestAnonymizeConsistentMapping(t *testing.T) {
	d := sample(t)
	anon, mapping := Anonymize(d, DefaultConfig())
	// The same sensitive value must always map to the same public value.
	for i := range d.Records {
		orig := d.Records[i].Surname()
		if orig == "" {
			continue
		}
		got := anon.Records[i].Surname()
		if want := mapping[orig]; got != want {
			t.Fatalf("record %d: surname %q mapped to %q, mapping says %q", i, orig, got, want)
		}
	}
}

func TestAnonymizeYearShift(t *testing.T) {
	d := sample(t)
	cfg := DefaultConfig()
	cfg.YearOffset = -37
	anon, _ := Anonymize(d, cfg)
	for i := range d.Records {
		if d.Records[i].Year == 0 {
			continue
		}
		if anon.Records[i].Year != d.Records[i].Year-37 {
			t.Fatalf("record %d: year %d -> %d, want offset -37", i, d.Records[i].Year, anon.Records[i].Year)
		}
	}
	// Temporal distances are preserved exactly.
	if len(d.Records) >= 2 {
		d0, d1 := d.Records[0].Year, d.Records[1].Year
		a0, a1 := anon.Records[0].Year, anon.Records[1].Year
		if d0 != 0 && d1 != 0 && (d1-d0) != (a1-a0) {
			t.Error("temporal distance not preserved")
		}
	}
}

func TestCauseKAnonymity(t *testing.T) {
	d := sample(t)
	cfg := DefaultConfig()
	cfg.K = 10
	anon, _ := Anonymize(d, cfg)
	// Every cause in the anonymised data must occur at least K times within
	// its gender-age stratum, or be "not known".
	type stratum struct {
		g model.Gender
		a int
	}
	counts := map[stratum]map[string]int{}
	for i := range anon.Certificates {
		c := &anon.Certificates[i]
		if c.Type != model.Death || c.Cause == "" {
			continue
		}
		rid := c.Roles[model.Dd]
		st := stratum{anon.Record(rid).Gender, ageStratum(c.Age)}
		if counts[st] == nil {
			counts[st] = map[string]int{}
		}
		counts[st][c.Cause]++
	}
	for st, m := range counts {
		for cause, n := range m {
			if cause == "not known" {
				continue
			}
			// A frequent original cause stays; a rare cause was replaced by
			// a frequent one, increasing its count. Counts below K can only
			// remain if the stratum had no frequent cause at all.
			if n < cfg.K {
				hasFrequent := false
				for _, cn := range m {
					if cn >= cfg.K {
						hasFrequent = true
					}
				}
				if hasFrequent {
					t.Errorf("stratum %+v: cause %q occurs %d < K=%d times", st, cause, n, cfg.K)
				}
			}
		}
	}
}

func TestNameMappingPreservesSimilarityStructure(t *testing.T) {
	d := sample(t)
	_, mapping := Anonymize(d, DefaultConfig())
	// Highly similar sensitive names should map into the same public
	// cluster, hence remain similar, in most cases. We check the aggregate:
	// among sensitive pairs with JW >= 0.92, at least half of the mapped
	// pairs keep JW >= 0.7.
	var names []string
	seen := map[string]bool{}
	for i := range d.Records {
		if v := d.Records[i].Surname(); v != "" && !seen[v] {
			seen[v] = true
			names = append(names, v)
		}
		if len(names) > 150 {
			break
		}
	}
	similarPairs, preserved := 0, 0
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if strsim.JaroWinkler(names[i], names[j]) < 0.92 {
				continue
			}
			similarPairs++
			ma, mb := mapping[names[i]], mapping[names[j]]
			if ma != "" && mb != "" && strsim.JaroWinkler(ma, mb) >= 0.7 {
				preserved++
			}
		}
	}
	if similarPairs == 0 {
		t.Skip("no similar surname pairs in sample")
	}
	if float64(preserved) < 0.5*float64(similarPairs) {
		t.Errorf("similarity structure preserved for %d/%d similar pairs; want >= 50%%", preserved, similarPairs)
	}
}

func TestClusterNames(t *testing.T) {
	freq := map[string]int{"macdonald": 100, "macdonld": 5, "smith": 50, "smyth": 8}
	clusters := clusterNames([]string{"macdonald", "macdonld", "smith", "smyth"}, freq, 0.85)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// Most frequent member is the centre.
	if clusters[0].centre != "macdonald" {
		t.Errorf("first cluster centre = %q", clusters[0].centre)
	}
}

func TestVariantSuffix(t *testing.T) {
	if variantSuffix(0) != "a" || variantSuffix(25) != "z" || variantSuffix(26) != "aa" {
		t.Errorf("variantSuffix sequence wrong: %q %q %q",
			variantSuffix(0), variantSuffix(25), variantSuffix(26))
	}
}

func TestAgeStratum(t *testing.T) {
	cases := map[int]int{-1: 3, 0: 0, 19: 0, 20: 1, 39: 1, 40: 2, 90: 2}
	for age, want := range cases {
		if got := ageStratum(age); got != want {
			t.Errorf("ageStratum(%d) = %d, want %d", age, got, want)
		}
	}
}

func TestAnonymizeDeterministic(t *testing.T) {
	d := sample(t)
	a1, m1 := Anonymize(d, DefaultConfig())
	a2, m2 := Anonymize(d, DefaultConfig())
	if len(m1) != len(m2) {
		t.Fatal("mapping sizes differ between runs")
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Fatalf("mapping for %q differs: %q vs %q", k, v, m2[k])
		}
	}
	for i := range a1.Records {
		if a1.Records[i] != a2.Records[i] {
			t.Fatal("anonymised records differ between runs")
		}
	}
}

func TestAnonymizedDataStillResolvable(t *testing.T) {
	// The headline promise of Sec. 9: the anonymised data keeps the
	// similarity structure, so the ER pipeline still works on it.
	d := sample(t)
	anon, _ := Anonymize(d, DefaultConfig())
	// Truth survives anonymisation (same person ids), so quality is
	// measurable.
	pr := er.Run(anon, depgraph.DefaultConfig(), er.DefaultConfig())
	rp := model.MakeRolePair(model.Bm, model.Bm)
	q := eval.QualityOf(eval.Compare(pr.Result.Store.MatchPairs(rp), anon.TruePairs(rp)))
	// The rank-based cluster mapping flattens name frequencies and maps
	// some distinct sensitive names onto similar public ones, so the
	// anonymised data is measurably harder than the original (the paper
	// offers it for training and demos, not benchmark replication). It
	// must remain clearly resolvable though.
	if q.Precision < 70 || q.Recall < 60 {
		t.Errorf("anonymised data lost too much structure: %v", q)
	}
}
