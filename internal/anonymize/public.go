package anonymize

// Embedded public name corpora standing in for the US voter database the
// paper maps sensitive names onto. Order encodes frequency rank (most
// common first).

// PublicFemaleNames is the public corpus of female first names.
var PublicFemaleNames = []string{
	"jessica", "ashley", "amanda", "brittany", "samantha", "taylor",
	"hannah", "alexis", "kayla", "madison", "sydney", "morgan", "paige",
	"chloe", "zoe", "mackenzie", "peyton", "savannah", "brooke", "autumn",
	"destiny", "faith", "hope", "skylar", "jasmine", "courtney", "whitney",
	"lindsay", "tiffany", "crystal", "amber", "heather", "melissa",
	"stephanie", "nicole", "danielle", "kristen", "lauren", "megan", "erin",
	"rachel", "rebecca", "sarah", "emily", "emma", "olivia", "sophia",
	"isabella", "mia", "charlotte", "amelia", "harper", "evelyn", "abigail",
	"ella", "scarlett", "grace", "lily", "aria", "layla", "nora", "hazel",
	"aurora", "violet",
}

// PublicMaleNames is the public corpus of male first names.
var PublicMaleNames = []string{
	"michael", "christopher", "matthew", "joshua", "tyler", "brandon",
	"austin", "cody", "ethan", "logan", "mason", "aiden", "carter",
	"wyatt", "hunter", "landon", "gavin", "chase", "blake", "cole",
	"dylan", "jordan", "ryan", "zachary", "nathan", "caleb", "connor",
	"trevor", "garrett", "dalton", "shane", "travis", "derek", "marcus",
	"brett", "kurt", "lance", "wade", "dale", "clint", "jacob", "william",
	"james", "benjamin", "lucas", "henry", "alexander", "sebastian",
	"jack", "owen", "daniel", "jackson", "levi", "isaac", "gabriel",
	"julian", "mateo", "anthony", "jaxon", "lincoln", "joseph", "luke",
	"samuel", "david",
}

// PublicSurnames is the public corpus of surnames.
var PublicSurnames = []string{
	"johnson", "williams", "jones", "garcia", "rodriguez", "martinez",
	"hernandez", "lopez", "gonzalez", "perez", "sanchez", "ramirez",
	"torres", "flores", "rivera", "gomez", "diaz", "cruz", "reyes",
	"morales", "ortiz", "gutierrez", "chavez", "ramos", "ruiz", "alvarez",
	"mendoza", "vasquez", "castillo", "jimenez", "moreno", "romero",
	"herrera", "medina", "aguilar", "vargas", "guzman", "mejia", "rojas",
	"salazar", "delgado", "pena", "rios", "silva", "vega", "soto",
	"carter", "parker", "bailey", "brooks", "price", "bennett", "wood",
	"barnes", "ross", "henderson", "coleman", "jenkins", "perry", "powell",
	"long", "patterson", "hughes", "washington", "butler", "simmons",
	"foster", "bryant", "alexander", "russell", "griffin", "hayes",
	"myers", "ford", "hamilton", "graham", "sullivan", "wallace", "woods",
	"cole", "west", "owens", "reynolds", "fisher", "ellis", "harrison",
	"gibson", "mcdonald", "duncan", "marshall", "gomes", "murray", "freeman",
	"wells", "webb", "simpson", "stevens", "tucker", "porter", "hunter",
	"hicks", "crawford", "hoover", "boyd", "mason", "whitaker", "kennedy",
	"warren", "dixon", "lambert", "reed", "burns", "gordon", "shaw",
	"holmes", "rice", "robertson", "hunt", "black", "daniels", "palmer",
}
