// Package baseline implements the three unsupervised ER baselines the paper
// compares SNAPS against (Sec. 10):
//
//   - Attr-Sim: traditional pairwise record linkage — classify each candidate
//     pair by a weighted attribute similarity threshold.
//   - Dep-Graph: a reference-reconciliation baseline in the style of Dong,
//     Halevy & Madhavan (2005) — propagates link decisions and applies the
//     same temporal and link constraints as SNAPS, but performs no
//     disambiguation, no adaptive group handling, and no cluster refinement.
//   - Rel-Cluster: a collective relational-clustering baseline in the style
//     of Bhattacharya & Getoor (2007) — iteratively merges clusters by a
//     combined attribute/relational similarity with ambiguity weighting, but
//     without propagation of changing attribute values, partial-match-group
//     handling, or refinement.
//
// The supervised Magellan-style baseline lives in package mlmatch.
package baseline

import (
	"math"
	"sort"

	"github.com/snaps/snaps/internal/constraint"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

// PairSim computes the weighted attribute similarity used by Attr-Sim and
// as the attribute component of Rel-Cluster: a weighted average over the
// attributes present on both records (first name 0.5, surname 0.3, address
// and occupation 0.1 each).
func PairSim(cfg depgraph.Config, a, b *model.Record) float64 {
	type w struct {
		attr   model.Attr
		weight float64
	}
	weights := [...]w{
		{model.FirstName, 0.5},
		{model.Surname, 0.3},
		{model.Address, 0.1},
		{model.Occupation, 0.1},
	}
	num, den := 0.0, 0.0
	for _, x := range weights {
		sim, ok := depgraph.CompareAttr(cfg, a, b, x.attr)
		if !ok {
			continue
		}
		num += x.weight * sim
		den += x.weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// AttrSim is the traditional pairwise-threshold baseline.
type AttrSim struct {
	// Threshold is the match threshold on the weighted pair similarity.
	Threshold float64
	// Graph configuration for the attribute comparison functions.
	Config depgraph.Config
}

// NewAttrSim returns the baseline with the customary 0.85 threshold.
func NewAttrSim() *AttrSim {
	return &AttrSim{Threshold: 0.85, Config: depgraph.DefaultConfig()}
}

// Match classifies candidate pairs and returns the matched pair set. No
// relationship information, constraints, or clustering is used — exactly
// the behaviour whose poor linkage quality Table 4 documents.
func (m *AttrSim) Match(d *model.Dataset, cands []Candidate) map[model.PairKey]bool {
	out := map[model.PairKey]bool{}
	for _, c := range cands {
		a, b := d.Record(c.A), d.Record(c.B)
		if PairSim(m.Config, a, b) >= m.Threshold {
			out[model.MakePairKey(c.A, c.B)] = true
		}
	}
	return out
}

// Candidate aliases the blocking candidate type so baseline users need not
// import blocking.
type Candidate struct {
	A, B model.RecordID
}

// DepGraph is the Dong-et-al.-style propagation baseline. It reuses the
// SNAPS dependency graph and entity store but merges relational nodes
// one-by-one in descending similarity order whenever the (propagated)
// strict attribute similarity reaches the threshold and the constraints
// hold. There is no disambiguation similarity, no group averaging, no
// drop-lowest iteration, and no refinement.
type DepGraph struct {
	Threshold float64
	Config    depgraph.Config
	// Iterations bounds the fixpoint loop of decision propagation.
	Iterations int
}

// NewDepGraph returns the baseline at the SNAPS merge threshold.
func NewDepGraph() *DepGraph {
	return &DepGraph{Threshold: 0.85, Config: depgraph.DefaultConfig(), Iterations: 3}
}

// Resolve runs the baseline and returns the resulting entity store.
func (m *DepGraph) Resolve(d *model.Dataset, g *depgraph.Graph) *er.EntityStore {
	store := er.NewEntityStore(d)
	val := constraint.NewValidator(d)

	type scored struct {
		id  depgraph.NodeID
		sim float64
	}
	merged := make([]bool, len(g.Nodes))
	for iter := 0; iter < m.Iterations; iter++ {
		var queue []scored
		for i := range g.Nodes {
			if merged[i] {
				continue
			}
			n := &g.Nodes[i]
			sim := m.nodeSim(d, g, store, n)
			if sim >= m.Threshold {
				queue = append(queue, scored{id: n.ID, sim: sim})
			}
		}
		if len(queue) == 0 {
			break
		}
		sort.Slice(queue, func(i, j int) bool {
			if queue[i].sim != queue[j].sim {
				return queue[i].sim > queue[j].sim
			}
			return queue[i].id < queue[j].id
		})
		progress := false
		for _, s := range queue {
			n := g.Node(s.id)
			if !val.PairOK(n.A, n.B) {
				continue
			}
			if !val.MergeOK(store.View(n.A), store.View(n.B)) {
				continue
			}
			store.Link(n.A, n.B)
			merged[s.id] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	return store
}

// nodeSim scores a node with strict category accounting (all present
// attributes count) plus value propagation through current entities, which
// is the Dong et al. contribution.
func (m *DepGraph) nodeSim(d *model.Dataset, g *depgraph.Graph, store *er.EntityStore, n *depgraph.RelationalNode) float64 {
	ra, rb := d.Record(n.A), d.Record(n.B)
	weights := map[model.AttrCategory]float64{model.Must: 0.5, model.Core: 0.3, model.Extra: 0.2}
	var sums, counts [3]float64
	for _, attr := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
		if _, present := depgraph.CompareAttr(m.Config, ra, rb, attr); !present {
			continue
		}
		cat := model.CategoryOf(attr)
		counts[cat]++
		best := 0.0
		for va := range valuesOr(store, n.A, attr, d) {
			for vb := range valuesOr(store, n.B, attr, d) {
				ta, tb := *ra, *rb
				setValue(&ta, attr, va)
				setValue(&tb, attr, vb)
				if attr == model.Address {
					ta.Lat, tb.Lat = 0, 0 // propagated values lose geocoding
				}
				if s, ok := depgraph.CompareAttr(m.Config, &ta, &tb, attr); ok && s > best {
					best = s
				}
			}
		}
		if best >= m.Config.AtomicThreshold {
			sums[cat] += best
		}
	}
	num, den := 0.0, 0.0
	for c := model.Must; c <= model.Extra; c++ {
		if counts[c] == 0 {
			continue
		}
		num += weights[c] * (sums[c] / counts[c])
		den += weights[c]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func valuesOr(store *er.EntityStore, id model.RecordID, attr model.Attr, d *model.Dataset) map[string]int {
	vals := store.Values(id, attr)
	if len(vals) == 0 {
		if v := d.Record(id).Value(attr); v != "" {
			return map[string]int{v: 1}
		}
	}
	return vals
}

func setValue(r *model.Record, attr model.Attr, v string) {
	switch attr {
	case model.FirstName:
		r.First = model.Intern(v)
	case model.Surname:
		r.Sur = model.Intern(v)
	case model.Address:
		r.Addr = model.Intern(v)
	case model.Occupation:
		r.Occ = model.Intern(v)
	}
}

// RelCluster is the Bhattacharya-Getoor-style collective clustering
// baseline: greedy agglomerative merging of record clusters by a convex
// combination of attribute similarity and relational (shared-neighbour)
// similarity, with an ambiguity-scaled attribute component. Cluster
// similarities are recomputed as clusters merge. No value propagation,
// no partial-match-group handling, no refinement.
type RelCluster struct {
	Threshold float64
	// Alpha weighs the relational component against the attribute one.
	Alpha  float64
	Config depgraph.Config
	// MaxRounds bounds the agglomeration loop.
	MaxRounds int
}

// NewRelCluster returns the baseline with the settings used in Table 4.
func NewRelCluster() *RelCluster {
	return &RelCluster{Threshold: 0.70, Alpha: 0.25, Config: depgraph.DefaultConfig(), MaxRounds: 6}
}

// Resolve runs the clustering and returns the entity store.
func (m *RelCluster) Resolve(d *model.Dataset, g *depgraph.Graph) *er.EntityStore {
	store := er.NewEntityStore(d)
	val := constraint.NewValidator(d)

	// Ambiguity weights per record: inverse document frequency of the name
	// combination (Bhattacharya & Getoor's ambiguity of attribute values).
	freq := map[string]int{}
	for i := range d.Records {
		freq[d.Records[i].FirstName()+"|"+d.Records[i].Surname()]++
	}
	o := float64(len(d.Records))
	amb := func(r *model.Record) float64 {
		f := float64(freq[r.FirstName()+"|"+r.Surname()])
		if f <= 0 || o < 2 {
			return 0
		}
		s := math.Log2(o/f) / math.Log2(o)
		if s < 0 {
			return 0
		}
		return s
	}

	// neighbours of a record: the other records on its certificate.
	neighbour := map[model.RecordID][]model.RecordID{}
	for ci := range d.Certificates {
		cert := &d.Certificates[ci]
		for _, a := range cert.Roles {
			for _, b := range cert.Roles {
				if a != b {
					neighbour[a] = append(neighbour[a], b)
				}
			}
		}
	}

	sim := func(n *depgraph.RelationalNode) float64 {
		ra, rb := d.Record(n.A), d.Record(n.B)
		attr := PairSim(m.Config, ra, rb)
		attr *= 0.75 + 0.25*(amb(ra)+amb(rb))/2 // ambiguity scaling
		// Relational component: fraction of neighbour records already in
		// shared entities.
		shared, total := 0, 0
		for _, na := range neighbour[n.A] {
			ea := store.EntityOf(na)
			if ea == er.NoEntity {
				continue
			}
			total++
			for _, nb := range neighbour[n.B] {
				if store.EntityOf(nb) == ea {
					shared++
					break
				}
			}
		}
		rel := 0.0
		if total > 0 {
			rel = float64(shared) / float64(total)
		}
		return (1-m.Alpha)*attr + m.Alpha*rel
	}

	for round := 0; round < m.MaxRounds; round++ {
		type scored struct {
			id depgraph.NodeID
			s  float64
		}
		var queue []scored
		for i := range g.Nodes {
			n := &g.Nodes[i]
			ea, eb := store.EntityOf(n.A), store.EntityOf(n.B)
			if ea != er.NoEntity && ea == eb {
				continue
			}
			if s := sim(n); s >= m.Threshold {
				queue = append(queue, scored{id: n.ID, s: s})
			}
		}
		if len(queue) == 0 {
			break
		}
		sort.Slice(queue, func(i, j int) bool {
			if queue[i].s != queue[j].s {
				return queue[i].s > queue[j].s
			}
			return queue[i].id < queue[j].id
		})
		progress := false
		for _, q := range queue {
			n := g.Node(q.id)
			if !val.PairOK(n.A, n.B) {
				continue
			}
			if !val.MergeOK(store.View(n.A), store.View(n.B)) {
				continue
			}
			store.Link(n.A, n.B)
			progress = true
		}
		if !progress {
			break
		}
	}
	return store
}
