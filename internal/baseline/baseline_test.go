package baseline

import (
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

// fixture builds a small IOS sample with blocking candidates and the
// dependency graph shared by the graph-based baselines.
type fixture struct {
	d     *model.Dataset
	cands []blocking.Candidate
	g     *depgraph.Graph
}

func newFixture(t *testing.T, scale float64) *fixture {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(scale))
	d := p.Dataset
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
	g, _ := depgraph.Build(d, depgraph.DefaultConfig(), cands)
	return &fixture{d: d, cands: cands, g: g}
}

func toBaselineCands(cands []blocking.Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{A: c.A, B: c.B}
	}
	return out
}

func quality(d *model.Dataset, pred map[model.PairKey]bool, rp model.RolePair) eval.Quality {
	return eval.QualityOf(eval.Compare(pred, d.TruePairs(rp)))
}

func TestPairSimBounds(t *testing.T) {
	cfg := depgraph.DefaultConfig()
	a := &model.Record{First: model.Intern("mary"), Sur: model.Intern("smith"), Addr: model.Intern("5 uig"), Occ: model.Intern("crofter")}
	b := &model.Record{First: model.Intern("mary"), Sur: model.Intern("smith"), Addr: model.Intern("5 uig"), Occ: model.Intern("crofter")}
	if s := PairSim(cfg, a, b); s != 1 {
		t.Errorf("identical records PairSim = %v, want 1", s)
	}
	c := &model.Record{First: model.Intern("zeb"), Sur: model.Intern("quirk")}
	if s := PairSim(cfg, a, c); s > 0.5 {
		t.Errorf("dissimilar records PairSim = %v, want low", s)
	}
	empty := &model.Record{}
	if s := PairSim(cfg, a, empty); s != 0 {
		t.Errorf("no comparable attributes PairSim = %v, want 0", s)
	}
}

func TestAttrSimHighRecallLowPrecision(t *testing.T) {
	f := newFixture(t, 0.12)
	rp := model.MakeRolePair(model.Bm, model.Bm)
	pred := NewAttrSim().Match(f.d, toBaselineCands(f.cands))
	// Restrict predictions to the scored role pair.
	filtered := map[model.PairKey]bool{}
	for k := range pred {
		a, b := k.Split()
		if model.MakeRolePair(f.d.Record(a).Role, f.d.Record(b).Role) == rp {
			filtered[k] = true
		}
	}
	q := quality(f.d, filtered, rp)
	if q.Recall < 60 {
		t.Errorf("Attr-Sim recall %.2f, want the paper's high-recall shape (>60)", q.Recall)
	}
	if q.Precision > 90 {
		t.Errorf("Attr-Sim precision %.2f; the paper's shape has it well below SNAPS (<90)", q.Precision)
	}
}

func TestDepGraphBaselineRuns(t *testing.T) {
	f := newFixture(t, 0.08)
	store := NewDepGraph().Resolve(f.d, f.g)
	rp := model.MakeRolePair(model.Bm, model.Bm)
	q := quality(f.d, store.MatchPairs(rp), rp)
	if q.Recall == 0 {
		t.Error("Dep-Graph baseline linked nothing")
	}
}

func TestRelClusterBaselineRuns(t *testing.T) {
	f := newFixture(t, 0.08)
	store := NewRelCluster().Resolve(f.d, f.g)
	rp := model.MakeRolePair(model.Bm, model.Bm)
	q := quality(f.d, store.MatchPairs(rp), rp)
	if q.Recall == 0 {
		t.Error("Rel-Cluster baseline linked nothing")
	}
}

// TestSNAPSBeatsBaselines asserts the headline shape of Table 4: SNAPS
// outperforms every unsupervised baseline on F*.
func TestSNAPSBeatsBaselines(t *testing.T) {
	f := newFixture(t, 0.25)
	rp := model.MakeRolePair(model.Bm, model.Bm)

	snaps := er.NewResolver(f.g, er.DefaultConfig()).Resolve()
	qSnaps := quality(f.d, snaps.Store.MatchPairs(rp), rp)

	// Rebuild the graph: the SNAPS resolver mutates node state.
	g2, _ := depgraph.Build(f.d, depgraph.DefaultConfig(), f.cands)
	qDep := quality(f.d, NewDepGraph().Resolve(f.d, g2).MatchPairs(rp), rp)
	g3, _ := depgraph.Build(f.d, depgraph.DefaultConfig(), f.cands)
	qRel := quality(f.d, NewRelCluster().Resolve(f.d, g3).MatchPairs(rp), rp)

	attrPred := NewAttrSim().Match(f.d, toBaselineCands(f.cands))
	filtered := map[model.PairKey]bool{}
	for k := range attrPred {
		a, b := k.Split()
		if model.MakeRolePair(f.d.Record(a).Role, f.d.Record(b).Role) == rp {
			filtered[k] = true
		}
	}
	qAttr := quality(f.d, filtered, rp)

	t.Logf("SNAPS %v | Attr-Sim %v | Dep-Graph %v | Rel-Cluster %v", qSnaps, qAttr, qDep, qRel)
	for name, q := range map[string]eval.Quality{
		"Attr-Sim": qAttr, "Dep-Graph": qDep, "Rel-Cluster": qRel,
	} {
		if qSnaps.FStar <= q.FStar {
			t.Errorf("SNAPS F*=%.2f should beat %s F*=%.2f", qSnaps.FStar, name, q.FStar)
		}
	}
}

func TestDepGraphDeterministic(t *testing.T) {
	f := newFixture(t, 0.05)
	g2, _ := depgraph.Build(f.d, depgraph.DefaultConfig(), f.cands)
	s1 := NewDepGraph().Resolve(f.d, f.g)
	s2 := NewDepGraph().Resolve(f.d, g2)
	rp := model.MakeRolePair(model.Bm, model.Bm)
	m1, m2 := s1.MatchPairs(rp), s2.MatchPairs(rp)
	if len(m1) != len(m2) {
		t.Fatalf("non-deterministic: %d vs %d pairs", len(m1), len(m2))
	}
}
