package blocking

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

// TestPairsShardedByteIdentical locks the sharded emitPairs to the serial
// one: the candidate list must be byte-identical — same pairs, same order —
// for every worker setting, because downstream dependency-graph node ids
// derive from candidate order.
func TestPairsShardedByteIdentical(t *testing.T) {
	d := dataset.Generate(dataset.IOS().Scaled(0.08)).Dataset
	ids := allIDs(d)
	base := func() []Candidate {
		cfg := DefaultLSHConfig()
		cfg.Workers = 1
		return NewLSH(cfg).Pairs(d, ids)
	}()
	if len(base) == 0 {
		t.Fatal("no candidates from serial blocking")
	}
	for _, w := range []int{2, 4, 7} {
		cfg := DefaultLSHConfig()
		cfg.Workers = w
		got := NewLSH(cfg).Pairs(d, ids)
		if len(got) != len(base) {
			t.Fatalf("workers=%d emitted %d pairs, serial emitted %d", w, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d pair %d = %v, serial = %v", w, i, got[i], base[i])
			}
		}
	}
}

// BenchmarkEmitPairs measures pair emission alone (blocks prebuilt), the
// stage the sharded dedup and output preallocation target.
func BenchmarkEmitPairs(b *testing.B) {
	d := dataset.Generate(dataset.IOS().Scaled(0.1)).Dataset
	ids := allIDs(d)
	cfg := DefaultLSHConfig()
	l := NewLSH(cfg)

	type recHashes struct{ full, surname []uint64 }
	hashes := make([]recHashes, len(ids))
	parallelRange(len(ids), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rec := d.Record(ids[i])
			hashes[i].full = l.bandHashes(nameKeySyms(rec.First, rec.Sur))
			if rec.Surname() != "" {
				hashes[i].surname = l.bandHashes(rec.Surname())
			}
		}
	})
	blocks := make(map[blockKey][]model.RecordID)
	for i, id := range ids {
		for band, h := range hashes[i].full {
			key := blockKey{band: band, hash: h}
			blocks[key] = append(blocks[key], id)
		}
		for band, h := range hashes[i].surname {
			key := blockKey{band: cfg.Bands + band, hash: h}
			blocks[key] = append(blocks[key], id)
		}
	}

	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=gomaxprocs", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := emitPairs(d, blocks, cfg.MaxBlockSize, nil, bench.workers)
				if len(out) == 0 {
					b.Fatal("no pairs emitted")
				}
			}
		})
	}
}
