// Package blocking reduces the ER comparison space. SNAPS uses locality
// sensitive hashing (LSH): each record's name string is shingled into
// character bigrams, a MinHash signature is computed, and the signature is
// split into bands; records whose band hashes collide land in the same
// block and are compared. Pairs of very dissimilar records are unlikely to
// collide in any band, so the quadratic comparison space shrinks to
// near-linear.
//
// A simple Soundex-based blocker is also provided as a deterministic
// cross-check for tests and for data sets too small to warrant LSH.
package blocking

import (
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/strsim"
)

// Candidate is a candidate record pair produced by a blocker.
type Candidate struct {
	A, B model.RecordID
}

// Blocker produces candidate record pairs from a data set.
type Blocker interface {
	// Pairs returns the deduplicated candidate pairs among the given
	// records. Pairs are canonical: A < B.
	Pairs(d *model.Dataset, ids []model.RecordID) []Candidate
}

// LSHConfig tunes the MinHash LSH blocker.
type LSHConfig struct {
	// Bands and Rows split the MinHash signature: signature length is
	// Bands*Rows. More bands with fewer rows each admits lower-similarity
	// pairs; the collision probability of a pair with Jaccard similarity s
	// is 1-(1-s^Rows)^Bands.
	Bands, Rows int
	// Seed seeds the per-position hash mixers so runs are reproducible.
	Seed uint64
	// MaxBlockSize caps a block: larger blocks (stop-word-like names) are
	// skipped to avoid quadratic blowup on very frequent values, mirroring
	// standard blocking practice. Zero means no cap.
	MaxBlockSize int
	// Workers bounds the concurrency of signature hashing and pair
	// emission; 0 uses GOMAXPROCS. Output is identical for every setting:
	// pair emission shards the sorted block keys and merges shard outputs
	// in order, reproducing the serial first-occurrence order exactly.
	Workers int
}

// DefaultLSHConfig returns the configuration used by SNAPS: 8 bands of 4
// rows, which admits pairs with bigram Jaccard similarity around 0.35-0.4
// with high probability.
func DefaultLSHConfig() LSHConfig {
	return LSHConfig{Bands: 8, Rows: 4, Seed: 0x5eed, MaxBlockSize: 400}
}

// ScaleLSHConfig returns the blocking profile for the DS-scale bench
// tiers (100k–10M certificates). The parish-scale default admits pairs
// down to bigram Jaccard ~0.35 — affordable at tens of thousands of
// records, but candidate density grows with corpus size (measured: 130
// pairs/record at 53k records, 207 at 266k) and the quadratic tail
// dominates the offline build. Six bands of six rows moves the admission
// threshold to ~0.7 and the tighter block cap bounds the per-record fan-
// out, the same selectivity-for-scale trade the paper makes to run BHIC
// windows (Table 6).
func ScaleLSHConfig() LSHConfig {
	return LSHConfig{Bands: 6, Rows: 6, Seed: 0x5eed, MaxBlockSize: 128}
}

// LSH is a MinHash locality-sensitive-hashing blocker over the
// concatenation of a record's first name and surname.
type LSH struct {
	cfg LSHConfig
	// mixers are per-position multiplicative constants for the signature.
	mixers []uint64
}

// NewLSH returns an LSH blocker with the given configuration.
func NewLSH(cfg LSHConfig) *LSH {
	if cfg.Bands <= 0 || cfg.Rows <= 0 {
		cfg = DefaultLSHConfig()
	}
	n := cfg.Bands * cfg.Rows
	mixers := make([]uint64, n)
	x := cfg.Seed | 1
	for i := range mixers {
		// splitmix64 step to derive independent odd multipliers.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		mixers[i] = (z ^ (z >> 31)) | 1
	}
	return &LSH{cfg: cfg, mixers: mixers}
}

// signature computes the MinHash signature of a record's name bigrams.
func (l *LSH) signature(name string) []uint64 {
	n := len(l.mixers)
	sig := make([]uint64, n)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	if len(name) < 2 {
		// Degenerate names hash as a single token so they still block
		// together rather than being silently dropped.
		h := fnvHash(name)
		for i := range sig {
			sig[i] = h * l.mixers[i]
		}
		return sig
	}
	for i := 0; i+2 <= len(name); i++ {
		h := fnvHash(name[i : i+2])
		for j := range sig {
			v := h * l.mixers[j]
			if v < sig[j] {
				sig[j] = v
			}
		}
	}
	return sig
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// blockKey identifies one band of one signature.
type blockKey struct {
	band int
	hash uint64
}

// Pairs implements Blocker. Records with the same band hash in any band are
// candidates; gender-incompatible pairs are filtered here already because no
// downstream step can ever link them.
//
// Two signature passes run: one over the full name (first name + surname)
// and one over the surname alone. The surname pass catches pairs whose
// first names differ — nicknamed re-recordings of one person, and the
// sibling pairs whose presence in node groups drives the REL technique.
func (l *LSH) Pairs(d *model.Dataset, ids []model.RecordID) []Candidate {
	// Band hashes are computed in parallel per record (the expensive part:
	// MinHash over all bigrams), then collected serially so block contents
	// stay in deterministic record order.
	type recHashes struct {
		full    []uint64 // one hash per band of the full-name signature
		surname []uint64 // nil when the record has no surname
	}
	hashes := make([]recHashes, len(ids))
	parallelRangeW(l.cfg.Workers, len(ids), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rec := d.Record(ids[i])
			hashes[i].full = l.bandHashes(nameKey(rec))
			if rec.Sur != 0 {
				hashes[i].surname = l.bandHashes(rec.Surname())
			}
		}
	})
	blocks := make(map[blockKey][]model.RecordID)
	for i, id := range ids {
		for b, h := range hashes[i].full {
			key := blockKey{band: b, hash: h}
			blocks[key] = append(blocks[key], id)
		}
		for b, h := range hashes[i].surname {
			key := blockKey{band: l.cfg.Bands + b, hash: h}
			blocks[key] = append(blocks[key], id)
		}
	}
	return emitPairs(d, blocks, l.cfg.MaxBlockSize, nil, l.cfg.Workers)
}

// PairsTouching blocks all records but emits only candidate pairs with at
// least one endpoint in focus — the incremental-resolution workload, where
// newly arrived records must be compared against the whole data set but
// existing pairs need not be revisited.
func (l *LSH) PairsTouching(d *model.Dataset, ids []model.RecordID, focus map[model.RecordID]bool) []Candidate {
	all := l.Pairs(d, ids)
	out := all[:0]
	for _, c := range all {
		if focus[c.A] || focus[c.B] {
			out = append(out, c)
		}
	}
	return out
}

// bandHashes computes the per-band hashes of a name's MinHash signature.
func (l *LSH) bandHashes(name string) []uint64 {
	sig := l.signature(name)
	out := make([]uint64, l.cfg.Bands)
	for b := 0; b < l.cfg.Bands; b++ {
		h := fnv.New64a()
		var buf [8]byte
		for r := 0; r < l.cfg.Rows; r++ {
			v := sig[b*l.cfg.Rows+r]
			for k := 0; k < 8; k++ {
				buf[k] = byte(v >> (8 * k))
			}
			h.Write(buf[:])
		}
		out[b] = h.Sum64()
	}
	return out
}

// parallelRange splits [0,n) into GOMAXPROCS chunks run concurrently.
func parallelRange(n int, fn func(lo, hi int)) { parallelRangeW(0, n, fn) }

// parallelRangeW is parallelRange with an explicit worker bound (0 means
// GOMAXPROCS).
func parallelRangeW(workers, n int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// nameKey is the blocking string of a record.
func nameKey(rec *model.Record) string { return rec.FirstName() + "|" + rec.Surname() }

// emitPairs deduplicates pair emission across blocks and applies the
// gender-compatibility filter. A non-nil keep filter restricts emission.
//
// The sorted block keys are split into contiguous shards balanced by
// pair-count, each shard emits with a local dedup map, and shard outputs
// are concatenated in shard order under a global first-wins dedup. Because
// shards are contiguous runs of the serial iteration order, the merged
// output reproduces the serial first-occurrence order byte for byte; the
// gender/certificate filters are pure pair predicates, so applying them
// before or after deduplication yields the same candidate list.
func emitPairs(d *model.Dataset, blocks map[blockKey][]model.RecordID, maxBlock int, keep func(a, b model.RecordID) bool, workers int) []Candidate {
	st := obs.StartStage("blocking.emit_pairs")
	defer st.Stop()

	// Deterministic iteration: sort keys, dropping capped blocks up front
	// and summing emittable pair counts for shard balancing and output
	// preallocation.
	keys := make([]blockKey, 0, len(blocks))
	for k, blk := range blocks {
		if maxBlock > 0 && len(blk) > maxBlock {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].band != keys[j].band {
			return keys[i].band < keys[j].band
		}
		return keys[i].hash < keys[j].hash
	})
	total := 0
	for _, k := range keys {
		n := len(blocks[k])
		total += n * (n - 1) / 2
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Sharding pays a second dedup pass at merge; a single shard skips it.
	if workers <= 1 || total < 1<<12 {
		return emitShard(d, blocks, keys, keep, total)
	}

	// Contiguous shards with roughly equal pair counts.
	type span struct{ lo, hi, pairs int }
	var spans []span
	target := (total + workers - 1) / workers
	cur := span{}
	for i, k := range keys {
		n := len(blocks[k])
		cur.pairs += n * (n - 1) / 2
		if cur.pairs >= target || i == len(keys)-1 {
			cur.hi = i + 1
			spans = append(spans, cur)
			cur = span{lo: i + 1}
		}
	}
	outs := make([][]Candidate, len(spans))
	parallelRangeW(workers, len(spans), func(lo, hi int) {
		for s := lo; s < hi; s++ {
			sp := spans[s]
			outs[s] = emitShard(d, blocks, keys[sp.lo:sp.hi], keep, sp.pairs)
		}
	})
	// Ordered merge with first-wins dedup across shards.
	emitted := 0
	for _, o := range outs {
		emitted += len(o)
	}
	seen := make(map[model.PairKey]bool, emitted)
	out := make([]Candidate, 0, emitted)
	for _, o := range outs {
		for _, c := range o {
			pk := model.MakePairKey(c.A, c.B)
			if seen[pk] {
				continue
			}
			seen[pk] = true
			out = append(out, c)
		}
	}
	return out
}

// emitShard emits the deduplicated, filtered pairs of one contiguous run of
// sorted block keys. pairHint is the worst-case pair count (every block
// visit distinct). Measured distinct-pair fractions of worst case run
// 0.18 on the parish-scale IOS profile and 0.41 on the DS-scale substrate
// (TestPairHintSizingAudit) — the denser the blocks, the more of the
// recurrence is same-pair-new-band and the higher the distinct fraction.
// Sizing to pairHint/4 splits that range: at most one map growth at the
// highest measured density, no over-allocation at the lowest.
func emitShard(d *model.Dataset, blocks map[blockKey][]model.RecordID, keys []blockKey, keep func(a, b model.RecordID) bool, pairHint int) []Candidate {
	seen := make(map[model.PairKey]bool, pairHint/4+16)
	out := make([]Candidate, 0, pairHint/8+16)
	for _, k := range keys {
		blk := blocks[k]
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				a, b := blk[i], blk[j]
				if b < a {
					a, b = b, a
				}
				if a == b {
					continue
				}
				if keep != nil && !keep(a, b) {
					continue
				}
				pk := model.MakePairKey(a, b)
				if seen[pk] {
					continue
				}
				seen[pk] = true
				ra, rb := d.Record(a), d.Record(b)
				if !GenderCompatible(ra, rb) {
					continue
				}
				if ra.Cert == rb.Cert {
					continue // two roles on one certificate are distinct people
				}
				out = append(out, Candidate{A: a, B: b})
			}
		}
	}
	return out
}

// GenderCompatible reports whether two records could refer to the same
// person as far as recorded or role-implied gender goes.
func GenderCompatible(a, b *model.Record) bool {
	ga, gb := effectiveGender(a), effectiveGender(b)
	if ga == model.GenderUnknown || gb == model.GenderUnknown {
		return true
	}
	return ga == gb
}

func effectiveGender(r *model.Record) model.Gender {
	if r.Gender != model.GenderUnknown {
		return r.Gender
	}
	return model.RoleGender(r.Role)
}

// Soundex blocks records by the Soundex codes of their first name and
// surname. It is exact for spelling variants that preserve the phonetic
// skeleton and serves as a baseline blocker and a test oracle.
type Soundex struct {
	// MaxBlockSize caps block sizes as in LSH. Zero means no cap.
	MaxBlockSize int
	// Encode maps a name to its phonetic code; tests may substitute a stub.
	Encode func(string) string
}

// Pairs implements Blocker.
func (s *Soundex) Pairs(d *model.Dataset, ids []model.RecordID) []Candidate {
	encode := s.Encode
	if encode == nil {
		encode = strsim.Soundex
	}
	blocks := make(map[blockKey][]model.RecordID)
	intern := map[string]uint64{}
	keyID := func(key string) uint64 {
		if v, ok := intern[key]; ok {
			return v
		}
		v := fnvHash(key)
		intern[key] = v
		return v
	}
	for _, id := range ids {
		rec := d.Record(id)
		k1 := encode(rec.FirstName()) + "/" + encode(rec.Surname())
		blocks[blockKey{band: 0, hash: keyID(k1)}] = append(blocks[blockKey{band: 0, hash: keyID(k1)}], id)
		// Second pass on surname alone tolerates first-name nicknames.
		k2 := encode(rec.Surname())
		blocks[blockKey{band: 1, hash: keyID(k2)}] = append(blocks[blockKey{band: 1, hash: keyID(k2)}], id)
	}
	return emitPairs(d, blocks, s.MaxBlockSize, nil, 0)
}
