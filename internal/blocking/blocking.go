// Package blocking reduces the ER comparison space. SNAPS uses locality
// sensitive hashing (LSH): each record's name string is shingled into
// character bigrams, a MinHash signature is computed, and the signature is
// split into bands; records whose band hashes collide land in the same
// block and are compared. Pairs of very dissimilar records are unlikely to
// collide in any band, so the quadratic comparison space shrinks to
// near-linear.
//
// A simple Soundex-based blocker is also provided as a deterministic
// cross-check for tests and for data sets too small to warrant LSH.
package blocking

import (
	"runtime"
	"sort"
	"sync"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/simcache"
	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// Candidate is a candidate record pair produced by a blocker.
type Candidate struct {
	A, B model.RecordID
}

// Blocker produces candidate record pairs from a data set.
type Blocker interface {
	// Pairs returns the deduplicated candidate pairs among the given
	// records. Pairs are canonical: A < B.
	Pairs(d *model.Dataset, ids []model.RecordID) []Candidate
}

// LSHConfig tunes the MinHash LSH blocker.
type LSHConfig struct {
	// Bands and Rows split the MinHash signature: signature length is
	// Bands*Rows. More bands with fewer rows each admits lower-similarity
	// pairs; the collision probability of a pair with Jaccard similarity s
	// is 1-(1-s^Rows)^Bands.
	Bands, Rows int
	// Seed seeds the per-position hash mixers so runs are reproducible.
	Seed uint64
	// MaxBlockSize caps a block: larger blocks (stop-word-like names) are
	// skipped to avoid quadratic blowup on very frequent values, mirroring
	// standard blocking practice. Zero means no cap.
	MaxBlockSize int
	// Workers bounds the concurrency of signature hashing and pair
	// emission; 0 uses GOMAXPROCS. Output is identical for every setting:
	// pair emission shards the sorted block keys and merges shard outputs
	// in order, reproducing the serial first-occurrence order exactly.
	Workers int
}

// DefaultLSHConfig returns the configuration used by SNAPS: 8 bands of 4
// rows, which admits pairs with bigram Jaccard similarity around 0.35-0.4
// with high probability.
func DefaultLSHConfig() LSHConfig {
	return LSHConfig{Bands: 8, Rows: 4, Seed: 0x5eed, MaxBlockSize: 400}
}

// ScaleLSHConfig returns the blocking profile for the DS-scale bench
// tiers (100k–10M certificates). The parish-scale default admits pairs
// down to bigram Jaccard ~0.35 — affordable at tens of thousands of
// records, but candidate density grows with corpus size (measured: 130
// pairs/record at 53k records, 207 at 266k) and the quadratic tail
// dominates the offline build. Six bands of six rows moves the admission
// threshold to ~0.7 and the tighter block cap bounds the per-record fan-
// out, the same selectivity-for-scale trade the paper makes to run BHIC
// windows (Table 6).
func ScaleLSHConfig() LSHConfig {
	return LSHConfig{Bands: 6, Rows: 6, Seed: 0x5eed, MaxBlockSize: 128}
}

// LSH is a MinHash locality-sensitive-hashing blocker over the
// concatenation of a record's first name and surname.
type LSH struct {
	cfg LSHConfig
	// mixers are per-position multiplicative constants for the signature.
	mixers []uint64
}

// NewLSH returns an LSH blocker with the given configuration.
func NewLSH(cfg LSHConfig) *LSH {
	if cfg.Bands <= 0 || cfg.Rows <= 0 {
		cfg = DefaultLSHConfig()
	}
	n := cfg.Bands * cfg.Rows
	mixers := make([]uint64, n)
	x := cfg.Seed | 1
	for i := range mixers {
		// splitmix64 step to derive independent odd multipliers.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		mixers[i] = (z ^ (z >> 31)) | 1
	}
	return &LSH{cfg: cfg, mixers: mixers}
}

// signature computes the MinHash signature of a record's name bigrams.
func (l *LSH) signature(name string) []uint64 {
	n := len(l.mixers)
	sig := make([]uint64, n)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	if len(name) < 2 {
		// Degenerate names hash as a single token so they still block
		// together rather than being silently dropped.
		h := fnvHash(name)
		for i := range sig {
			sig[i] = h * l.mixers[i]
		}
		return sig
	}
	for i := 0; i+2 <= len(name); i++ {
		h := fnvHash(name[i : i+2])
		for j := range sig {
			v := h * l.mixers[j]
			if v < sig[j] {
				sig[j] = v
			}
		}
	}
	return sig
}

// FNV-1a, inlined: hash/fnv's New64a allocates a hasher per call, and the
// signature loop hashes every bigram of every distinct name. The constants
// and the xor-then-multiply order match hash/fnv exactly (pinned by
// TestFNVHashMatchesStdlib).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvHash(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// blockKey identifies one band of one signature.
type blockKey struct {
	band int
	hash uint64
}

// Pairs implements Blocker. Records with the same band hash in any band are
// candidates; gender-incompatible pairs are filtered here already because no
// downstream step can ever link them.
//
// Two signature passes run: one over the full name (first name + surname)
// and one over the surname alone. The surname pass catches pairs whose
// first names differ — nicknamed re-recordings of one person, and the
// sibling pairs whose presence in node groups drives the REL technique.
func (l *LSH) Pairs(d *model.Dataset, ids []model.RecordID) []Candidate {
	var out []Candidate
	l.PairsChunked(d, ids, func(chunk []Candidate) {
		out = append(out, chunk...)
	})
	return out
}

// PairsChunked is Pairs with streamed output: candidate pairs are delivered
// in bounded chunks, in exactly the order Pairs would return them. Chunk
// slices are only valid during the emit call and are reused afterwards.
// Streaming bounds the blocking stage's memory to the block map plus one
// wave of shard outputs, instead of the full candidate slice.
func (l *LSH) PairsChunked(d *model.Dataset, ids []model.RecordID, emit func(chunk []Candidate)) {
	// MinHash signatures depend only on the name strings, and Zipf-shaped
	// name distributions make distinct (first, surname) pairs far rarer
	// than records, so signatures are keyed by the packed symbol pair and
	// computed once per distinct name (and once per distinct surname for
	// the second pass) rather than once per record.
	pairIdx := map[uint64]int32{}
	recPair := make([]int32, len(ids))
	var pairSyms [][2]model.Sym
	surIdx := map[model.Sym]int32{}
	recSur := make([]int32, len(ids))
	var surSyms []model.Sym
	for i, id := range ids {
		rec := d.Record(id)
		pk := uint64(rec.First)<<32 | uint64(rec.Sur)
		pi, ok := pairIdx[pk]
		if !ok {
			pi = int32(len(pairSyms))
			pairIdx[pk] = pi
			pairSyms = append(pairSyms, [2]model.Sym{rec.First, rec.Sur})
		}
		recPair[i] = pi
		recSur[i] = -1
		if rec.Sur != 0 {
			si, ok := surIdx[rec.Sur]
			if !ok {
				si = int32(len(surSyms))
				surIdx[rec.Sur] = si
				surSyms = append(surSyms, rec.Sur)
			}
			recSur[i] = si
		}
	}
	fullSigs := make([][]uint64, len(pairSyms))
	parallelRangeW(l.cfg.Workers, len(pairSyms), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fullSigs[i] = l.bandHashes(nameKeySyms(pairSyms[i][0], pairSyms[i][1]))
		}
	})
	surSigs := make([][]uint64, len(surSyms))
	parallelRangeW(l.cfg.Workers, len(surSyms), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			surSigs[i] = l.bandHashes(symbol.Str(surSyms[i]))
		}
	})
	// Block contents are collected serially in record order, exactly as
	// the per-record hashing produced them.
	blocks := make(map[blockKey][]model.RecordID)
	for i, id := range ids {
		for b, h := range fullSigs[recPair[i]] {
			key := blockKey{band: b, hash: h}
			blocks[key] = append(blocks[key], id)
		}
		if si := recSur[i]; si >= 0 {
			for b, h := range surSigs[si] {
				key := blockKey{band: l.cfg.Bands + b, hash: h}
				blocks[key] = append(blocks[key], id)
			}
		}
	}
	emitPairsChunked(d, blocks, l.cfg.MaxBlockSize, nil, l.cfg.Workers, emit)
}

// PairsTouching blocks all records but emits only candidate pairs with at
// least one endpoint in focus — the incremental-resolution workload, where
// newly arrived records must be compared against the whole data set but
// existing pairs need not be revisited.
func (l *LSH) PairsTouching(d *model.Dataset, ids []model.RecordID, focus map[model.RecordID]bool) []Candidate {
	var out []Candidate
	l.PairsTouchingChunked(d, ids, focus, func(chunk []Candidate) {
		out = append(out, chunk...)
	})
	return out
}

// PairsTouchingChunked is PairsTouching with streamed output; the focus
// filter is a pure pair predicate, so filtering each chunk yields the same
// candidate sequence as filtering the materialised list.
func (l *LSH) PairsTouchingChunked(d *model.Dataset, ids []model.RecordID, focus map[model.RecordID]bool, emit func(chunk []Candidate)) {
	l.PairsChunked(d, ids, func(chunk []Candidate) {
		w := 0
		for _, c := range chunk {
			if focus[c.A] || focus[c.B] {
				chunk[w] = c
				w++
			}
		}
		if w > 0 {
			emit(chunk[:w])
		}
	})
}

// bandHashes computes the per-band hashes of a name's MinHash signature,
// FNV-1a over each band's rows in little-endian byte order (byte-for-byte
// the hash/fnv writer it replaces).
func (l *LSH) bandHashes(name string) []uint64 {
	sig := l.signature(name)
	out := make([]uint64, l.cfg.Bands)
	for b := 0; b < l.cfg.Bands; b++ {
		h := uint64(fnvOffset64)
		for r := 0; r < l.cfg.Rows; r++ {
			v := sig[b*l.cfg.Rows+r]
			for k := 0; k < 8; k++ {
				h ^= v >> (8 * k) & 0xff
				h *= fnvPrime64
			}
		}
		out[b] = h
	}
	return out
}

// parallelRange splits [0,n) into GOMAXPROCS chunks run concurrently.
func parallelRange(n int, fn func(lo, hi int)) { parallelRangeW(0, n, fn) }

// parallelRangeW is parallelRange with an explicit worker bound (0 means
// GOMAXPROCS).
func parallelRangeW(workers, n int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// nameKeySyms is the blocking string of a (first name, surname) pair,
// built once per distinct pair instead of once per record.
func nameKeySyms(first, sur model.Sym) string {
	return symbol.Str(first) + "|" + symbol.Str(sur)
}

// pairChunkTarget bounds the pre-dedup pair count of one emitted span; the
// streamed consumer sees chunks of at most roughly this many candidates.
const pairChunkTarget = 1 << 16

// mix64 is the splitmix64 finaliser used to spread pair keys over the
// open-addressed dedup table.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pairSet is an open-addressed set of pair keys: the global first-wins
// dedup structure of the chunked emitter. Pair keys are canonical A<B, so
// B is nonzero and zero serves as the empty-slot sentinel. At DS scale it
// replaces a map[PairKey]bool holding tens of millions of entries with a
// flat uint64 table at under half the footprint and no per-entry overhead.
type pairSet struct {
	keys []uint64
	n    int
}

func newPairSet(hint int) *pairSet {
	size := 1024
	for size*7 < hint*10 {
		size <<= 1
	}
	return &pairSet{keys: make([]uint64, size)}
}

// add inserts k and reports whether it was absent.
func (s *pairSet) add(k uint64) bool {
	if 10*(s.n+1) >= 7*len(s.keys) {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	for i := mix64(k) & mask; ; i = (i + 1) & mask {
		switch s.keys[i] {
		case 0:
			s.keys[i] = k
			s.n++
			return true
		case k:
			return false
		}
	}
}

func (s *pairSet) grow() {
	old := s.keys
	s.keys = make([]uint64, 2*len(old))
	s.n = 0
	for _, k := range old {
		if k != 0 {
			s.add(k)
		}
	}
}

// reset empties the set, reallocating only when the existing table cannot
// hold hint entries below the load factor. Clearing in place (a memclr)
// lets one table serve every span a wave slot processes — at DS scale the
// per-span dedup previously churned gigabytes of short-lived maps, which
// set the GC pacing (and so the peak heap) of the whole offline build.
func (s *pairSet) reset(hint int) {
	size := 1024
	for size*7 < hint*10 {
		size <<= 1
	}
	if size > len(s.keys) {
		s.keys = make([]uint64, size)
	} else {
		clear(s.keys)
	}
	s.n = 0
}

// emitScratch is the reusable per-wave-slot state of emitPairsChunked: the
// span-local dedup table and the span output buffer. Both survive across
// waves; the output buffer may be handed to emit because the chunked
// contract says chunks are only read during the emit call.
type emitScratch struct {
	seen pairSet
	out  []Candidate
}

// emitPairs is the materialising adapter over emitPairsChunked, retained
// for the Soundex blocker and tests.
func emitPairs(d *model.Dataset, blocks map[blockKey][]model.RecordID, maxBlock int, keep func(a, b model.RecordID) bool, workers int) []Candidate {
	var out []Candidate
	emitPairsChunked(d, blocks, maxBlock, keep, workers, func(chunk []Candidate) {
		out = append(out, chunk...)
	})
	return out
}

// emitPairsChunked deduplicates pair emission across blocks and applies the
// gender-compatibility filter, delivering the candidates in bounded chunks.
// A non-nil keep filter restricts emission.
//
// The sorted block keys are split into contiguous spans of roughly
// pairChunkTarget pairs each; spans are emitted in waves of `workers` with
// a local dedup map per span, then merged serially in span order under the
// global first-wins pairSet and handed to emit. Because spans are
// contiguous runs of the serial iteration order, the merged stream
// reproduces the serial first-occurrence order byte for byte regardless of
// span size or worker count (the PR 5 ordering contract); the gender and
// certificate filters are pure pair predicates, so applying them before or
// after deduplication yields the same candidate sequence.
func emitPairsChunked(d *model.Dataset, blocks map[blockKey][]model.RecordID, maxBlock int, keep func(a, b model.RecordID) bool, workers int, emit func(chunk []Candidate)) {
	st := obs.StartStage("blocking.emit_pairs")
	defer st.Stop()

	// Deterministic iteration: sort keys, dropping capped blocks up front
	// and summing emittable pair counts for span sizing.
	keys := make([]blockKey, 0, len(blocks))
	for k, blk := range blocks {
		if maxBlock > 0 && len(blk) > maxBlock {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].band != keys[j].band {
			return keys[i].band < keys[j].band
		}
		return keys[i].hash < keys[j].hash
	})
	total := 0
	for _, k := range keys {
		n := len(blocks[k])
		total += n * (n - 1) / 2
	}
	if total == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Contiguous spans of roughly pairChunkTarget pre-dedup pairs.
	type span struct{ lo, hi, pairs int }
	var spans []span
	cur := span{}
	for i, k := range keys {
		n := len(blocks[k])
		cur.pairs += n * (n - 1) / 2
		if cur.pairs >= pairChunkTarget || i == len(keys)-1 {
			cur.hi = i + 1
			spans = append(spans, cur)
			cur = span{lo: i + 1}
		}
	}
	if len(spans) == 1 {
		// One span needs no cross-span dedup: its local table already
		// produced the serial first-occurrence order.
		var sc emitScratch
		if out := emitShard(d, blocks, keys, keep, total, &sc); len(out) > 0 {
			emit(out)
		}
		return
	}

	// One scratch per wave slot, reused for every wave: slot s of each wave
	// runs on one goroutine at a time and waves are serial, so reuse is
	// race-free, and the emit contract (chunks are only read during the
	// call) makes recycling the output buffers legal.
	seen := newPairSet(total/4 + 16)
	scratch := make([]emitScratch, min(workers, len(spans)))
	outs := make([][]Candidate, len(spans))
	for wave := 0; wave < len(spans); wave += workers {
		end := wave + workers
		if end > len(spans) {
			end = len(spans)
		}
		parallelRangeW(workers, end-wave, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				sp := spans[wave+s]
				outs[wave+s] = emitShard(d, blocks, keys[sp.lo:sp.hi], keep, sp.pairs, &scratch[s])
			}
		})
		// Ordered merge with global first-wins dedup, then hand the
		// surviving chunk to the consumer. The span buffer stays owned by
		// its scratch slot and is overwritten next wave.
		for s := wave; s < end; s++ {
			o := outs[s]
			outs[s] = nil
			w := 0
			for _, c := range o {
				if seen.add(uint64(model.MakePairKey(c.A, c.B))) {
					o[w] = c
					w++
				}
			}
			if w > 0 {
				emit(o[:w])
			}
		}
	}
}

// emitShard emits the deduplicated, filtered pairs of one contiguous run of
// sorted block keys into sc, whose dedup table and output buffer are reused
// across spans. pairHint is the worst-case pair count (every block visit
// distinct). Measured distinct-pair fractions of worst case run 0.18 on the
// parish-scale IOS profile and 0.41 on the DS-scale substrate
// (TestPairHintSizingAudit) — the denser the blocks, the more of the
// recurrence is same-pair-new-band and the higher the distinct fraction.
// Resetting to pairHint/4 splits that range: at most one table growth at
// the highest measured density, no over-allocation at the lowest — and
// after the first wave the table has reached working size, so steady state
// allocates nothing at all.
func emitShard(d *model.Dataset, blocks map[blockKey][]model.RecordID, keys []blockKey, keep func(a, b model.RecordID) bool, pairHint int, sc *emitScratch) []Candidate {
	sc.seen.reset(pairHint/4 + 16)
	out := sc.out[:0]
	for _, k := range keys {
		blk := blocks[k]
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				a, b := blk[i], blk[j]
				if b < a {
					a, b = b, a
				}
				if a == b {
					continue
				}
				if keep != nil && !keep(a, b) {
					continue
				}
				if !sc.seen.add(uint64(model.MakePairKey(a, b))) {
					continue
				}
				ra, rb := d.Record(a), d.Record(b)
				if !GenderCompatible(ra, rb) {
					continue
				}
				if ra.Cert == rb.Cert {
					continue // two roles on one certificate are distinct people
				}
				out = append(out, Candidate{A: a, B: b})
			}
		}
	}
	sc.out = out
	return out
}

// GenderCompatible reports whether two records could refer to the same
// person as far as recorded or role-implied gender goes.
func GenderCompatible(a, b *model.Record) bool {
	ga, gb := effectiveGender(a), effectiveGender(b)
	if ga == model.GenderUnknown || gb == model.GenderUnknown {
		return true
	}
	return ga == gb
}

func effectiveGender(r *model.Record) model.Gender {
	if r.Gender != model.GenderUnknown {
		return r.Gender
	}
	return model.RoleGender(r.Role)
}

// Soundex blocks records by the Soundex codes of their first name and
// surname. It is exact for spelling variants that preserve the phonetic
// skeleton and serves as a baseline blocker and a test oracle.
type Soundex struct {
	// MaxBlockSize caps block sizes as in LSH. Zero means no cap.
	MaxBlockSize int
	// Encode maps a name to its phonetic code; tests may substitute a stub.
	Encode func(string) string
}

// Pairs implements Blocker.
func (s *Soundex) Pairs(d *model.Dataset, ids []model.RecordID) []Candidate {
	encode := s.Encode
	if encode == nil {
		// Default to the per-symbol cached code: record values are
		// interned, so the phonetic encoding is a slab lookup.
		encode = func(v string) string {
			if id, ok := symbol.Lookup(v); ok {
				return simcache.Soundex(id)
			}
			return strsim.Soundex(v)
		}
	}
	blocks := make(map[blockKey][]model.RecordID)
	intern := map[string]uint64{}
	keyID := func(key string) uint64 {
		if v, ok := intern[key]; ok {
			return v
		}
		v := fnvHash(key)
		intern[key] = v
		return v
	}
	for _, id := range ids {
		rec := d.Record(id)
		k1 := encode(rec.FirstName()) + "/" + encode(rec.Surname())
		blocks[blockKey{band: 0, hash: keyID(k1)}] = append(blocks[blockKey{band: 0, hash: keyID(k1)}], id)
		// Second pass on surname alone tolerates first-name nicknames.
		k2 := encode(rec.Surname())
		blocks[blockKey{band: 1, hash: keyID(k2)}] = append(blocks[blockKey{band: 1, hash: keyID(k2)}], id)
	}
	return emitPairs(d, blocks, s.MaxBlockSize, nil, 0)
}
