package blocking

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

func testDataset(t *testing.T) *model.Dataset {
	t.Helper()
	return dataset.Generate(dataset.IOS().Scaled(0.08)).Dataset
}

func allIDs(d *model.Dataset) []model.RecordID {
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	return ids
}

func TestLSHPairsCanonicalAndDeduplicated(t *testing.T) {
	d := testDataset(t)
	l := NewLSH(DefaultLSHConfig())
	pairs := l.Pairs(d, allIDs(d))
	if len(pairs) == 0 {
		t.Fatal("LSH produced no candidate pairs")
	}
	seen := map[model.PairKey]bool{}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("non-canonical pair %v", p)
		}
		k := model.MakePairKey(p.A, p.B)
		if seen[k] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[k] = true
	}
}

func TestLSHFiltersGenderAndSameCert(t *testing.T) {
	d := testDataset(t)
	l := NewLSH(DefaultLSHConfig())
	for _, p := range l.Pairs(d, allIDs(d)) {
		a, b := d.Record(p.A), d.Record(p.B)
		if !GenderCompatible(a, b) {
			t.Fatalf("gender-incompatible pair %v-%v survived blocking", a.Role, b.Role)
		}
		if a.Cert == b.Cert {
			t.Fatalf("same-certificate pair survived blocking: cert %d", a.Cert)
		}
	}
}

func TestLSHRecallOnTrueMatches(t *testing.T) {
	d := testDataset(t)
	l := NewLSH(DefaultLSHConfig())
	cand := map[model.PairKey]bool{}
	for _, p := range l.Pairs(d, allIDs(d)) {
		cand[model.MakePairKey(p.A, p.B)] = true
	}
	rp := model.MakeRolePair(model.Bm, model.Bm)
	truth := d.TruePairs(rp)
	if len(truth) == 0 {
		t.Skip("no true pairs in sample")
	}
	hit := 0
	for k := range truth {
		if cand[k] {
			hit++
		}
	}
	recall := float64(hit) / float64(len(truth))
	if recall < 0.75 {
		t.Errorf("LSH pair recall on Bm-Bm truth = %.3f, want >= 0.75", recall)
	}
}

func TestLSHReductionRatio(t *testing.T) {
	d := testDataset(t)
	ids := allIDs(d)
	l := NewLSH(DefaultLSHConfig())
	pairs := l.Pairs(d, ids)
	n := len(ids)
	full := n * (n - 1) / 2
	if len(pairs) >= full/4 {
		t.Errorf("LSH blocked %d of %d possible pairs; expected at least 4x reduction", len(pairs), full)
	}
}

func TestLSHDeterministic(t *testing.T) {
	d := testDataset(t)
	l1 := NewLSH(DefaultLSHConfig())
	l2 := NewLSH(DefaultLSHConfig())
	p1 := l1.Pairs(d, allIDs(d))
	p2 := l2.Pairs(d, allIDs(d))
	if len(p1) != len(p2) {
		t.Fatalf("non-deterministic pair counts: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestLSHSimilarNamesCollide(t *testing.T) {
	d := &model.Dataset{Name: "tiny"}
	add := func(first, sur string, role model.Role, cert model.CertID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, First: model.Intern(first), Sur: model.Intern(sur),
			Gender: model.Female, Truth: model.NoPerson,
		})
		return id
	}
	a := add("mary", "macdonald", model.Bm, 0)
	b := add("mary", "macdonald", model.Bm, 1)
	c := add("mary", "mcdonald", model.Bm, 2)
	_ = add("zebedee", "quilliam", model.Bm, 3)
	l := NewLSH(DefaultLSHConfig())
	pairs := l.Pairs(d, allIDs(d))
	has := func(x, y model.RecordID) bool {
		for _, p := range pairs {
			if model.MakePairKey(p.A, p.B) == model.MakePairKey(x, y) {
				return true
			}
		}
		return false
	}
	if !has(a, b) {
		t.Error("identical names did not collide")
	}
	if !has(a, c) {
		t.Error("near-identical names (macdonald/mcdonald) did not collide")
	}
}

func TestLSHMaxBlockSizeSkipsLargeBlocks(t *testing.T) {
	d := &model.Dataset{Name: "tiny"}
	for i := 0; i < 20; i++ {
		d.Records = append(d.Records, model.Record{
			ID: model.RecordID(i), Cert: model.CertID(i), Role: model.Bm,
			First: model.Intern("mary"), Sur: model.Intern("smith"), Gender: model.Female,
		})
	}
	cfg := DefaultLSHConfig()
	cfg.MaxBlockSize = 5
	pairs := NewLSH(cfg).Pairs(d, allIDs(d))
	if len(pairs) != 0 {
		t.Errorf("expected oversized block to be skipped, got %d pairs", len(pairs))
	}
}

func TestSoundexBlocker(t *testing.T) {
	d := testDataset(t)
	s := &Soundex{MaxBlockSize: 2000}
	pairs := s.Pairs(d, allIDs(d))
	if len(pairs) == 0 {
		t.Fatal("Soundex blocker produced no pairs")
	}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("non-canonical pair %v", p)
		}
	}
}

func TestGenderCompatible(t *testing.T) {
	mk := func(g model.Gender, role model.Role) *model.Record {
		return &model.Record{Gender: g, Role: role}
	}
	cases := []struct {
		a, b *model.Record
		want bool
	}{
		{mk(model.Male, model.Bb), mk(model.Male, model.Dd), true},
		{mk(model.Male, model.Bb), mk(model.Female, model.Dd), false},
		{mk(model.GenderUnknown, model.Bm), mk(model.Male, model.Df), false}, // Bm implies female
		{mk(model.GenderUnknown, model.Bb), mk(model.Male, model.Dd), true},
		{mk(model.GenderUnknown, model.Bm), mk(model.GenderUnknown, model.Dm), true},
	}
	for i, c := range cases {
		if got := GenderCompatible(c.a, c.b); got != c.want {
			t.Errorf("case %d: GenderCompatible = %v, want %v", i, got, c.want)
		}
	}
}

func BenchmarkLSHPairs(b *testing.B) {
	d := dataset.Generate(dataset.IOS().Scaled(0.1)).Dataset
	ids := allIDs(d)
	l := NewLSH(DefaultLSHConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Pairs(d, ids)
	}
}
