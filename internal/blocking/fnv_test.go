package blocking

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// TestFNVHashMatchesStdlib pins the inlined FNV-1a to hash/fnv: the
// allocation-free loop replaced fnv.New64a on the signature hot path, and
// band hashes feed block keys, so any drift would silently reshuffle every
// block assignment.
func TestFNVHashMatchesStdlib(t *testing.T) {
	ref := func(s string) uint64 {
		h := fnv.New64a()
		h.Write([]byte(s))
		return h.Sum64()
	}
	fixed := []string{"", "a", "smith|john", "van den berg|", "jörg", "\x00\xff"}
	for _, s := range fixed {
		if got, want := fnvHash(s), ref(s); got != want {
			t.Errorf("fnvHash(%q) = %#x, hash/fnv = %#x", s, got, want)
		}
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(40))
		rng.Read(buf)
		s := string(buf)
		if got, want := fnvHash(s), ref(s); got != want {
			t.Fatalf("fnvHash(%q) = %#x, hash/fnv = %#x", s, got, want)
		}
	}
}
