package blocking

import (
	"os"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

// buildBlocks replicates the block-construction half of Pairs so emission
// can be measured and audited in isolation.
func buildBlocks(d *model.Dataset, ids []model.RecordID, cfg LSHConfig) map[blockKey][]model.RecordID {
	l := NewLSH(cfg)
	type recHashes struct{ full, surname []uint64 }
	hashes := make([]recHashes, len(ids))
	parallelRange(len(ids), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rec := d.Record(ids[i])
			hashes[i].full = l.bandHashes(nameKeySyms(rec.First, rec.Sur))
			if rec.Surname() != "" {
				hashes[i].surname = l.bandHashes(rec.Surname())
			}
		}
	})
	blocks := make(map[blockKey][]model.RecordID)
	for i, id := range ids {
		for band, h := range hashes[i].full {
			blocks[blockKey{band: band, hash: h}] = append(blocks[blockKey{band: band, hash: h}], id)
		}
		for band, h := range hashes[i].surname {
			key := blockKey{band: cfg.Bands + band, hash: h}
			blocks[key] = append(blocks[key], id)
		}
	}
	return blocks
}

// TestPairHintSizingAudit re-checks the emitShard map-sizing heuristic
// (seen sized to pairHint/4, output to pairHint/8) against both the
// parish-scale IOS profile and the DS-scale substrate. Measured distinct
// fractions of worst case: 0.18 (IOS), 0.41 (DS-scale) — the /4 sizing
// splits that range, costing at most one map growth at the top. This test
// pins the fraction below 0.5 so the sizing stays within one doubling; a
// failure means the data shape drifted and emitShard needs a new audit.
func TestPairHintSizingAudit(t *testing.T) {
	cases := []struct {
		name string
		data *model.Dataset
	}{
		{"ios", dataset.Generate(dataset.IOS().Scaled(0.2)).Dataset},
		{"ds-scale", dataset.GenerateScale(dataset.ScaleTier(5000)).Dataset},
	}
	cfg := DefaultLSHConfig()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ids := allIDs(tc.data)
			blocks := buildBlocks(tc.data, ids, cfg)
			worst := 0
			distinct := map[model.PairKey]bool{}
			for _, blk := range blocks {
				if cfg.MaxBlockSize > 0 && len(blk) > cfg.MaxBlockSize {
					continue
				}
				worst += len(blk) * (len(blk) - 1) / 2
				for i := 0; i < len(blk); i++ {
					for j := i + 1; j < len(blk); j++ {
						if blk[i] != blk[j] {
							distinct[model.MakePairKey(blk[i], blk[j])] = true
						}
					}
				}
			}
			if worst == 0 {
				t.Fatal("no blocks")
			}
			frac := float64(len(distinct)) / float64(worst)
			t.Logf("%s: worst-case=%d distinct=%d fraction=%.3f (hint sizes to 0.25)",
				tc.name, worst, len(distinct), frac)
			if frac > 0.5 {
				t.Errorf("distinct fraction %.3f is more than one doubling above the pairHint/4 sizing; revisit emitShard", frac)
			}
		})
	}
}

// BenchmarkEmitPairsScale measures pair emission on the DS-scale tiers.
// The tiers are minutes-long and allocate tens of gigabytes, so they only
// run when explicitly requested:
//
//	SNAPS_BENCH_SCALE=100k go test -bench EmitPairsScale -benchtime 1x ./internal/blocking
//	SNAPS_BENCH_SCALE=1M   go test -bench EmitPairsScale -benchtime 1x ./internal/blocking
//
// BENCH_offline.json carries the measured regression note.
func BenchmarkEmitPairsScale(b *testing.B) {
	want := os.Getenv("SNAPS_BENCH_SCALE")
	for _, tier := range []struct {
		name  string
		certs int
	}{
		{"100k", 100000},
		{"1M", 1000000},
	} {
		b.Run("scale="+tier.name, func(b *testing.B) {
			if want != tier.name {
				b.Skipf("set SNAPS_BENCH_SCALE=%s to run", tier.name)
			}
			d := dataset.GenerateScale(dataset.ScaleTier(tier.certs)).Dataset
			ids := allIDs(d)
			cfg := DefaultLSHConfig()
			blocks := buildBlocks(d, ids, cfg)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := emitPairs(d, blocks, cfg.MaxBlockSize, nil, cfg.Workers)
				if len(out) == 0 {
					b.Fatal("no pairs emitted")
				}
			}
		})
	}
}
