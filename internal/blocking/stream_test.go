package blocking

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

// TestPairsChunkedStreamEquivalence locks the streamed emitter to the
// materialised candidate list: concatenating the chunks must reproduce
// Pairs byte for byte (same pairs, same order), with no duplicate pair
// across chunk boundaries — the global first-wins dedup set spans spans.
// The DS-scale tier is sized to force a few dozen chunks so the
// cross-span path actually runs.
func TestPairsChunkedStreamEquivalence(t *testing.T) {
	d := dataset.GenerateScale(dataset.ScaleTier(3000)).Dataset
	ids := allIDs(d)
	for _, workers := range []int{1, 3} {
		cfg := ScaleLSHConfig()
		cfg.Workers = workers
		l := NewLSH(cfg)
		want := l.Pairs(d, ids)

		var streamed []Candidate
		chunks := 0
		seen := make(map[model.PairKey]bool, len(want))
		l.PairsChunked(d, ids, func(chunk []Candidate) {
			chunks++
			for _, c := range chunk {
				k := model.MakePairKey(c.A, c.B)
				if seen[k] {
					t.Fatalf("workers=%d: pair %v emitted twice across chunks", workers, c)
				}
				seen[k] = true
			}
			streamed = append(streamed, chunk...)
		})
		if chunks < 2 {
			t.Fatalf("workers=%d: got %d chunks, want several (tier too small to exercise streaming)", workers, chunks)
		}
		if len(streamed) != len(want) {
			t.Fatalf("workers=%d: streamed %d pairs, materialised %d", workers, len(streamed), len(want))
		}
		for i := range want {
			if streamed[i] != want[i] {
				t.Fatalf("workers=%d: pair %d = %v streamed, %v materialised", workers, i, streamed[i], want[i])
			}
		}
	}
}

// TestPairsTouchingChunkedStreamEquivalence is the same lock for the
// incremental (Extend) path's focus-filtered emitter.
func TestPairsTouchingChunkedStreamEquivalence(t *testing.T) {
	d := dataset.Generate(dataset.IOS().Scaled(0.08)).Dataset
	ids := allIDs(d)
	focus := map[model.RecordID]bool{}
	for id := model.RecordID(len(d.Records) * 3 / 4); int(id) < len(d.Records); id++ {
		focus[id] = true
	}
	cfg := DefaultLSHConfig()
	l := NewLSH(cfg)
	want := l.PairsTouching(d, ids, focus)
	if len(want) == 0 {
		t.Fatal("no touching pairs; focus window too small")
	}
	var streamed []Candidate
	l.PairsTouchingChunked(d, ids, focus, func(chunk []Candidate) {
		streamed = append(streamed, chunk...)
	})
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d pairs, materialised %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("pair %d = %v streamed, %v materialised", i, streamed[i], want[i])
		}
	}
}
