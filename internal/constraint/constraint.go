// Package constraint implements the temporal and link constraints that
// SNAPS propagates as negative evidence (technique PROP-C, Sec. 4.2.2 of
// the paper).
//
// Temporal constraints are encoded uniformly as role-implied birth-year
// intervals: every role bounds the age of its person at the certificate's
// event year (a birth baby is 0, a birth mother is between 15 and 55, ...),
// so a role occurrence at event year y confines the person's birth year to
// [y-maxAge, y-minAge]. Two records can refer to the same person only if
// their implied intervals intersect. This single rule subsumes the paper's
// examples (e.g. "a Bb becoming a Bm must be 15-55 years later").
//
// Link constraints are uniqueness caps: a person has exactly one birth and
// one death certificate, so an entity may contain at most one Bb and at
// most one Dd record, and at most one record from any single certificate.
// Finally, roles that require the person to be alive at the event cannot
// postdate the person's death record.
package constraint

import "github.com/snaps/snaps/internal/model"

// AgeBounds bounds the age of a role's person at the certificate event.
type AgeBounds struct {
	Min, Max int
}

// ageBounds per role. Mention roles (parents on death/marriage
// certificates) have wide bounds because the mentioned person may be long
// dead: only their child's existence constrains them.
var ageBounds = [model.NumRoles]AgeBounds{
	model.Bb: {0, 0},
	model.Bm: {15, 55},
	model.Bf: {15, 80},
	model.Dd: {0, 110},
	// The deceased's parents were at least 15 at the deceased's birth, which
	// is at most the event year; they may be dead, so no useful upper age.
	model.Dm: {15, 165}, // 110 (child's max age) + 55 (mother's max age at birth)
	model.Df: {15, 190},
	model.Ds: {15, 110},
	model.Mm: {15, 70},
	model.Mf: {15, 70},
	// Parents of bride/groom: child is >=15, parent was 15-80 at child's birth.
	model.Mmm: {30, 125},
	model.Mmf: {30, 150},
	model.Mfm: {30, 125},
	model.Mff: {30, 150},
	// Census household heads and their co-resident children.
	model.Cf:  {16, 100},
	model.Cm:  {16, 100},
	model.Cc1: {0, 35},
	model.Cc2: {0, 35},
	model.Cc3: {0, 35},
	model.Cc4: {0, 35},
	model.Cc5: {0, 35},
	model.Cc6: {0, 35},
}

// Bounds returns the age bounds for a role.
func Bounds(r model.Role) AgeBounds { return ageBounds[r] }

// birthHintSlack tolerates the rounding and mis-statement of recorded ages
// on death certificates and census schedules.
const birthHintSlack = 3

// BirthYearInterval returns the person's implied birth-year interval for a
// record: the role's age bounds at the event year, narrowed by the record's
// recorded-age hint when one exists. Records without a year return an
// unbounded interval.
func BirthYearInterval(rec *model.Record) (lo, hi int) {
	lo, hi = -1<<30, 1<<30
	if rec.Year != 0 {
		b := ageBounds[rec.Role]
		lo, hi = rec.Year-b.Max, rec.Year-b.Min
	}
	if rec.BirthHint != 0 {
		if h := rec.BirthHint - birthHintSlack; h > lo {
			lo = h
		}
		if h := rec.BirthHint + birthHintSlack; h < hi {
			hi = h
		}
	}
	return lo, hi
}

// mustBeAlive reports whether the role requires the person to be alive at
// the certificate's event.
func mustBeAlive(r model.Role) bool {
	switch r {
	case model.Bb, model.Bm, model.Dd, model.Mm, model.Mf,
		model.Cf, model.Cm, model.Cc1, model.Cc2, model.Cc3,
		model.Cc4, model.Cc5, model.Cc6:
		return true
	}
	// Bf can be posthumous (child born after the father's death); Ds may be
	// a predeceased spouse; parent mentions never require life.
	return false
}

// TemporalCompatible reports whether two records can refer to one person
// under the temporal constraints: their implied birth-year intervals must
// intersect, and an alive-role record may not postdate a death record.
func TemporalCompatible(a, b *model.Record) bool {
	alo, ahi := BirthYearInterval(a)
	blo, bhi := BirthYearInterval(b)
	if alo > bhi || blo > ahi {
		return false
	}
	// Death caps: nothing requiring life happens after the person's death.
	if a.Role == model.Dd && mustBeAlive(b.Role) && b.Year > a.Year {
		return false
	}
	if b.Role == model.Dd && mustBeAlive(a.Role) && a.Year > b.Year {
		return false
	}
	// A father can appear on a birth certificate at most one year after his
	// death (posthumous birth).
	if a.Role == model.Dd && b.Role == model.Bf && b.Year > a.Year+1 {
		return false
	}
	if b.Role == model.Dd && a.Role == model.Bf && a.Year > b.Year+1 {
		return false
	}
	// Birth floors: nothing happens before the person is born.
	if a.Role == model.Bb && b.Year != 0 && b.Year < a.Year {
		return false
	}
	if b.Role == model.Bb && a.Year != 0 && a.Year < b.Year {
		return false
	}
	return true
}

// uniqueRole reports whether a role may occur at most once per entity (a
// person has exactly one birth and one death certificate).
func uniqueRole(r model.Role) bool { return r == model.Bb || r == model.Dd }

// siblingWindowYears bounds the event-year gap of same-principal-role
// candidate pairs admitted into the dependency graph: two birth babies more
// than a generation apart cannot even be confusable siblings.
const siblingWindowYears = 30

// BuildOK is the graph-construction filter (the paper's "two filtering
// steps" of Sec. 4.1): impossible role types (same certificate, gender
// conflicts) and temporal constraints. Unlike PairOK it does NOT apply the
// link constraints: a pair of two birth babies (potential siblings) becomes
// a relational node — it can never merge, but its presence in a node group
// is exactly the partial-match-group situation the REL technique handles
// (Sec. 4.2.4).
func (v *Validator) BuildOK(a, b model.RecordID) bool {
	ra, rb := v.d.Record(a), v.d.Record(b)
	if ra.Cert == rb.Cert {
		return false
	}
	if !genderCompatible(ra, rb) {
		return false
	}
	if uniqueRole(ra.Role) && ra.Role == rb.Role {
		// Sibling hypothesis: admitted within a generation window.
		if ra.Year == 0 || rb.Year == 0 {
			return true
		}
		dy := ra.Year - rb.Year
		if dy < 0 {
			dy = -dy
		}
		return dy <= siblingWindowYears
	}
	return TemporalCompatible(ra, rb)
}

// EntityView is the minimal read interface the validator needs from an
// entity store: the records currently in an entity.
type EntityView interface {
	// Records returns the record ids in the entity. The slice must not be
	// modified.
	Records() []model.RecordID
}

// Validator checks link and temporal constraints against a data set.
type Validator struct {
	d *model.Dataset
}

// NewValidator returns a validator over the data set.
func NewValidator(d *model.Dataset) *Validator { return &Validator{d: d} }

// PairOK reports whether two records could possibly co-refer: different
// certificates, compatible gender, role uniqueness, temporal compatibility.
func (v *Validator) PairOK(a, b model.RecordID) bool {
	ra, rb := v.d.Record(a), v.d.Record(b)
	if ra.Cert == rb.Cert {
		return false
	}
	if uniqueRole(ra.Role) && ra.Role == rb.Role {
		return false
	}
	if !genderCompatible(ra, rb) {
		return false
	}
	return TemporalCompatible(ra, rb)
}

func genderCompatible(a, b *model.Record) bool {
	ga, gb := a.Gender, b.Gender
	if ga == model.GenderUnknown {
		ga = model.RoleGender(a.Role)
	}
	if gb == model.GenderUnknown {
		gb = model.RoleGender(b.Role)
	}
	return ga == model.GenderUnknown || gb == model.GenderUnknown || ga == gb
}

// MergeOK reports whether all cross-pairs between two entities satisfy the
// constraints, i.e. whether the two entities could be merged into one
// person (the paper's "apply constraints on every possible record pair
// between the entities"). The two views may be the same entity, in which
// case MergeOK reports true.
func (v *Validator) MergeOK(ea, eb EntityView) bool {
	ra, rb := ea.Records(), eb.Records()
	for _, a := range ra {
		for _, b := range rb {
			if a == b {
				return true // same entity
			}
			if !v.PairOK(a, b) {
				return false
			}
		}
	}
	return true
}
