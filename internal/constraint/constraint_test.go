package constraint

import (
	"testing"

	"github.com/snaps/snaps/internal/model"
)

func rec(id model.RecordID, role model.Role, year int, cert model.CertID) model.Record {
	return model.Record{ID: id, Role: role, Year: year, Cert: cert, Gender: model.RoleGender(role)}
}

func TestBirthYearInterval(t *testing.T) {
	r := rec(0, model.Bb, 1870, 0)
	lo, hi := BirthYearInterval(&r)
	if lo != 1870 || hi != 1870 {
		t.Errorf("Bb interval = [%d,%d], want [1870,1870]", lo, hi)
	}
	r = rec(1, model.Bm, 1870, 0)
	lo, hi = BirthYearInterval(&r)
	if lo != 1870-55 || hi != 1870-15 {
		t.Errorf("Bm interval = [%d,%d], want [1815,1855]", lo, hi)
	}
	r = rec(2, model.Bb, 0, 0)
	lo, hi = BirthYearInterval(&r)
	if lo >= hi || lo > -1000000 || hi < 1000000 {
		t.Errorf("missing year should be unbounded, got [%d,%d]", lo, hi)
	}
}

func TestTemporalCompatibleBbToBm(t *testing.T) {
	// The paper's example: a birth baby becoming a birth mother must be
	// 15-55 years later.
	baby := rec(0, model.Bb, 1870, 0)
	cases := []struct {
		motherYear int
		want       bool
	}{
		{1884, false}, // 14 years: too young
		{1885, true},  // 15 years: minimum
		{1900, true},
		{1925, true},  // 55 years: maximum
		{1926, false}, // 56 years: too old
		{1860, false}, // before her own birth
	}
	for _, c := range cases {
		mother := rec(1, model.Bm, c.motherYear, 1)
		if got := TemporalCompatible(&baby, &mother); got != c.want {
			t.Errorf("Bb(1870) vs Bm(%d) = %v, want %v", c.motherYear, got, c.want)
		}
		// Symmetry.
		if got := TemporalCompatible(&mother, &baby); got != c.want {
			t.Errorf("Bm(%d) vs Bb(1870) = %v, want %v (symmetric)", c.motherYear, got, c.want)
		}
	}
}

func TestTemporalDeathCaps(t *testing.T) {
	dd := rec(0, model.Dd, 1880, 0)
	// A marriage after death is impossible.
	mm := rec(1, model.Mm, 1885, 1)
	if TemporalCompatible(&dd, &mm) {
		t.Error("marriage 5 years after death should be incompatible")
	}
	// A birth mother record after death is impossible.
	bm := rec(2, model.Bm, 1881, 2)
	if TemporalCompatible(&dd, &bm) {
		t.Error("giving birth after death should be incompatible")
	}
	// A parent mention on a death certificate may postdate death.
	dm := rec(3, model.Dm, 1900, 3)
	if !TemporalCompatible(&dd, &dm) {
		t.Error("being mentioned as mother of a deceased after one's own death must be allowed")
	}
	// A posthumous father is allowed up to one year after death.
	bf := rec(4, model.Bf, 1881, 4)
	if !TemporalCompatible(&dd, &bf) {
		t.Error("posthumous father within a year should be allowed")
	}
	bfLate := rec(5, model.Bf, 1883, 5)
	if TemporalCompatible(&dd, &bfLate) {
		t.Error("father on a birth 3 years after death should be incompatible")
	}
}

func TestTemporalBirthFloor(t *testing.T) {
	bb := rec(0, model.Bb, 1870, 0)
	ds := rec(1, model.Ds, 1860, 1)
	if TemporalCompatible(&bb, &ds) {
		t.Error("appearing as a spouse before one's own birth should be incompatible")
	}
}

func TestPairOKUniqueRoles(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		rec(0, model.Bb, 1870, 0),
		rec(1, model.Bb, 1872, 1),
		rec(2, model.Dd, 1890, 2),
		rec(3, model.Dd, 1891, 3),
		rec(4, model.Bm, 1895, 4),
	}}
	v := NewValidator(d)
	if v.PairOK(0, 1) {
		t.Error("two Bb records can never be one person (one birth certificate each)")
	}
	if v.PairOK(2, 3) {
		t.Error("two Dd records can never be one person")
	}
	if !v.PairOK(0, 2) {
		t.Error("Bb(1870) and Dd(1890) should be compatible")
	}
}

func TestPairOKSameCert(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		rec(0, model.Bm, 1870, 7),
		rec(1, model.Bb, 1870, 7),
	}}
	d.Records[1].Gender = model.Female
	v := NewValidator(d)
	if v.PairOK(0, 1) {
		t.Error("two roles on the same certificate are different people")
	}
}

func TestPairOKGender(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		rec(0, model.Bm, 1870, 0), // implies female
		rec(1, model.Df, 1890, 1), // implies male
		rec(2, model.Dd, 1890, 2), // unknown gender
	}}
	v := NewValidator(d)
	if v.PairOK(0, 1) {
		t.Error("a mother cannot be a father")
	}
	if !v.PairOK(0, 2) {
		t.Error("a mother can be an unknown-gender deceased")
	}
}

type fakeEntity []model.RecordID

func (f fakeEntity) Records() []model.RecordID { return f }

func TestMergeOK(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		rec(0, model.Bb, 1870, 0),
		rec(1, model.Dd, 1890, 1),
		rec(2, model.Bb, 1875, 2),
		rec(3, model.Bm, 1895, 3),
	}}
	v := NewValidator(d)
	// Entities {0,1} and {3}: compatible (born 1870, died 1890? no: Bm 1895
	// after death 1890 -> incompatible).
	if v.MergeOK(fakeEntity{0, 1}, fakeEntity{3}) {
		t.Error("entity with death 1890 cannot merge with Bm record from 1895")
	}
	// Entities {0} and {3}: baby born 1870, mother in 1895 (age 25): fine.
	if !v.MergeOK(fakeEntity{0}, fakeEntity{3}) {
		t.Error("Bb 1870 + Bm 1895 should merge")
	}
	// Entities {0,1} and {2}: two birth records -> violation.
	if v.MergeOK(fakeEntity{0, 1}, fakeEntity{2}) {
		t.Error("two Bb records across entities must block the merge")
	}
}

func TestBoundsTable(t *testing.T) {
	for r := model.Role(0); r < model.NumRoles; r++ {
		b := Bounds(r)
		if b.Min < 0 || b.Max < b.Min {
			t.Errorf("role %v has invalid bounds %+v", r, b)
		}
	}
	if b := Bounds(model.Bb); b.Min != 0 || b.Max != 0 {
		t.Errorf("Bb bounds = %+v, want {0,0}", b)
	}
}

func TestBuildOKAdmitsSiblingWindow(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		rec(0, model.Bb, 1870, 0),
		rec(1, model.Bb, 1875, 1), // potential sibling: 5 years apart
		rec(2, model.Bb, 1905, 2), // 35 years apart: beyond the window
		rec(3, model.Dd, 1890, 3),
		rec(4, model.Dd, 1893, 4),
	}}
	v := NewValidator(d)
	if !v.BuildOK(0, 1) {
		t.Error("sibling-window Bb-Bb pair should enter the graph")
	}
	if v.BuildOK(0, 2) {
		t.Error("Bb-Bb pair a generation apart should be filtered")
	}
	if !v.BuildOK(3, 4) {
		t.Error("Dd-Dd pair within window should enter the graph")
	}
	// PairOK still forbids them from ever merging.
	if v.PairOK(0, 1) || v.PairOK(3, 4) {
		t.Error("unique-role pairs must never be mergeable")
	}
}

func TestBuildOKTemporalFilter(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		rec(0, model.Bb, 1870, 0),
		rec(1, model.Bm, 1880, 1), // a 10-year-old mother: impossible
	}}
	v := NewValidator(d)
	if v.BuildOK(0, 1) {
		t.Error("temporally impossible pair should be filtered at build")
	}
}

func TestBirthHintNarrowsInterval(t *testing.T) {
	// A deceased aged 40 in 1890 implies birth ~1850.
	r := rec(0, model.Dd, 1890, 0)
	r.BirthHint = 1850
	lo, hi := BirthYearInterval(&r)
	if lo != 1850-3 || hi != 1850+3 {
		t.Errorf("hinted interval = [%d,%d], want [1847,1853]", lo, hi)
	}
	// The hint cannot widen the role interval.
	r2 := rec(1, model.Bb, 1870, 1)
	r2.BirthHint = 1850 // contradictory hint
	lo, hi = BirthYearInterval(&r2)
	if lo > hi {
		// Contradiction yields an empty interval, which is correct: the
		// records disagree with themselves and match nothing.
		return
	}
	if lo < 1847 {
		t.Errorf("hint failed to narrow: [%d,%d]", lo, hi)
	}
}

func TestBirthHintSeparatesGenerations(t *testing.T) {
	// Census mother aged 30 in 1871 (born ~1841) versus a birth mother in
	// 1898: without the hint the intervals overlap; with it, a woman born
	// 1841 can still mother a child in 1898 at 57? No: Bm allows ages
	// 15-55, so born 1843-1883. The hinted census interval [1838,1844]
	// still overlaps [1843,1883] at 1843-1844, so this pair stays
	// *possible*; a younger hint must exclude it.
	cm := rec(0, model.Cm, 1871, 0)
	cm.BirthHint = 1841
	bm := rec(1, model.Bm, 1898, 1)
	if !TemporalCompatible(&cm, &bm) {
		t.Error("boundary case should remain compatible")
	}
	cm.BirthHint = 1851 // born 1851: aged 47 in 1898, still possible
	if !TemporalCompatible(&cm, &bm) {
		t.Error("mid case should be compatible")
	}
	bmLate := rec(2, model.Bm, 1925, 2)
	if TemporalCompatible(&cm, &bmLate) {
		t.Error("a woman born ~1851 cannot bear a child in 1925")
	}
}
