// Package dataset simulates historical vital-records populations with the
// documented characteristics of the restricted Scottish data sets the paper
// evaluates on (Isle of Skye, Kilmarnock, Digitising Scotland) and of the
// BHIC data set used for scalability.
//
// The simulator runs a simple demographic model — founder couples, yearly
// marriages, births, and deaths — and emits a birth, death, or marriage
// certificate for each event inside the observation window. Every person
// mention on a certificate becomes one model.Record carrying the person's
// ground-truth identity, so linkage quality can be scored exactly.
//
// A configurable error model corrupts the emitted records the way
// transcribed 19th-century certificates are corrupted: typographical edits,
// nickname substitution, missing values, address drift over time, and the
// systematic surname change of women at marriage. These are exactly the
// phenomena (changing QID values, ambiguity, partial match groups) the SNAPS
// techniques target, so the synthetic data exercises the same code paths as
// the real data.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/snaps/snaps/internal/geo"
	"github.com/snaps/snaps/internal/model"
)

// Config parameterises a simulated population.
type Config struct {
	// Name labels the data set ("IOS", "KIL", ...).
	Name string
	// Seed makes generation reproducible.
	Seed int64

	// StartYear..EndYear is the observation window: only events in this
	// range emit certificates. The simulation itself starts earlier so the
	// initial population has realistic age structure.
	StartYear, EndYear int

	// Founders is the number of founding couples alive at StartYear.
	Founders int

	// ZipfS is the skew of the Zipf name distribution; larger is more
	// skewed. IOS uses a heavier skew than KIL (Fig. 2 of the paper).
	ZipfS float64

	// Surnames and addresses pools for the region.
	Surnames  []string
	Addresses []string

	// MaleFirstNames, FemaleFirstNames, and Nicknames override the default
	// Scottish name pools; nil selects the defaults. BHIC uses Dutch pools.
	MaleFirstNames   []string
	FemaleFirstNames []string
	Nicknames        map[string][]string

	// Geocode maps addresses to coordinates; nil disables geocoding
	// (paper: only IOS is geocoded).
	Geocode map[string][2]float64

	// Error model.
	TypoRate     float64 // per-value probability of a typographical edit
	NicknameRate float64 // probability a first name appears as a variant
	MoveRate     float64 // yearly probability a family changes address
	// MissingRate is the per-attribute probability of a missing value.
	MissingRate map[model.Attr]float64

	// Demography.
	BirthRate    float64 // yearly probability a married couple has a child
	MarriageRate float64 // yearly probability an eligible single marries
	// DeathHazard scales the age-dependent death probability.
	DeathHazard float64

	// CensusYears lists decennial census years; in each, every household
	// inside the observation window is enumerated as a census certificate.
	// Empty disables the census extension.
	CensusYears []int
}

// WithCensus returns a copy of the configuration with decennial censuses
// every ten years from the first year at or after StartYear ending in 1.
func (c Config) WithCensus() Config {
	c.CensusYears = nil
	for y := c.StartYear; y <= c.EndYear; y++ {
		if y%10 == 1 {
			c.CensusYears = append(c.CensusYears, y)
		}
	}
	return c
}

// IOS returns a configuration mirroring the Isle of Skye data set: a small
// island population with very few distinct names (heavy skew), complete
// addresses (geocodable), and few missing first names.
func IOS() Config {
	return Config{
		Name: "IOS", Seed: 101,
		StartYear: 1861, EndYear: 1901,
		Founders: 420, ZipfS: 0.85,
		Surnames: skyeSurnamesExt, Addresses: skyeAddresses,
		Geocode:  skyeGeocode,
		TypoRate: 0.07, NicknameRate: 0.10, MoveRate: 0.03,
		MissingRate: map[model.Attr]float64{
			model.FirstName:  0.017,
			model.Surname:    0.0002,
			model.Address:    0.012,
			model.Occupation: 0.57,
		},
		BirthRate: 0.33, MarriageRate: 0.09, DeathHazard: 1.0,
	}
}

// KIL returns a configuration mirroring Kilmarnock: a larger industrial
// town, flatter name distribution, many missing addresses and occupations,
// no geocoding.
func KIL() Config {
	return Config{
		Name: "KIL", Seed: 202,
		StartYear: 1861, EndYear: 1901,
		Founders: 900, ZipfS: 0.60,
		Surnames: kilSurnamesExt, Addresses: kilmarnockAddresses,
		TypoRate: 0.09, NicknameRate: 0.12, MoveRate: 0.08,
		MissingRate: map[model.Attr]float64{
			model.FirstName:  0.005,
			model.Surname:    0.0001,
			model.Address:    0.25,
			model.Occupation: 0.71,
		},
		BirthRate: 0.34, MarriageRate: 0.10, DeathHazard: 1.0,
	}
}

// DS returns a reduced-scale configuration standing in for the full
// Digitising Scotland database, used only for Table 1 statistics. The real
// DS has ~8.3M deceased entities; we simulate at 1/400 scale with the same
// relative missing-value profile (occupation missing for ~58% of records).
func DS() Config {
	c := KIL()
	c.Name = "DS"
	c.Seed = 303
	c.StartYear, c.EndYear = 1855, 1973
	c.Founders = 2600
	c.ZipfS = 0.70
	c.Surnames = append(append([]string{}, kilSurnamesExt...), skyeSurnamesExt...)
	c.MissingRate = map[model.Attr]float64{
		model.FirstName:  0.007,
		model.Surname:    0.0009,
		model.Address:    0.0013,
		model.Occupation: 0.58,
	}
	return c
}

// BHIC returns a configuration for the scalability experiments (Table 6):
// the Brabant Historical Information Center civil certificates restricted to
// the window [startYear, 1935]. Scale grows as the window widens, exactly as
// in the paper. The founders count scales with window length so that graph
// size grows super-linearly with the window as in Table 6.
func BHIC(startYear int) Config {
	years := 1935 - startYear
	return Config{
		Name: fmt.Sprintf("BHIC-%d", startYear), Seed: int64(400 + startYear),
		StartYear: startYear, EndYear: 1935,
		Founders: 18 * years, ZipfS: 0.70,
		Surnames: dutchSurnames, Addresses: dutchPlaces,
		MaleFirstNames:   extendFirstNames(dutchMaleFirstNames),
		FemaleFirstNames: extendFirstNames(dutchFemaleFirstNames),
		Nicknames:        dutchNicknames,
		TypoRate:         0.08, NicknameRate: 0.10, MoveRate: 0.06,
		MissingRate: map[model.Attr]float64{
			model.FirstName:  0.01,
			model.Surname:    0.001,
			model.Address:    0.30,
			model.Occupation: 0.65,
		},
		BirthRate: 0.33, MarriageRate: 0.10, DeathHazard: 1.0,
	}
}

// Scaled returns a copy of cfg with the founder population multiplied by f,
// used by benchmarks to grow or shrink workloads.
func (c Config) Scaled(f float64) Config {
	c.Founders = int(float64(c.Founders) * f)
	if c.Founders < 4 {
		c.Founders = 4
	}
	return c
}

// Person is a ground-truth individual in the simulated population.
type Person struct {
	ID     model.PersonID
	Gender model.Gender

	FirstName     string
	MaidenSurname string // surname at birth
	Surname       string // current surname (changes for women at marriage)

	BirthYear int
	DeathYear int // 0 while alive

	Mother, Father, Spouse model.PersonID // NoPerson when unknown

	Address    string
	Occupation string

	// MarriageYear is the year of the person's (only) marriage, 0 if
	// unmarried.
	MarriageYear int
}

// Population is the result of a simulation: the ground-truth people and the
// extracted certificate records.
type Population struct {
	Config  Config
	Persons []Person
	Dataset *model.Dataset
}

// Person returns the ground-truth person with the given id.
func (p *Population) Person(id model.PersonID) *Person { return &p.Persons[id] }

// generator carries simulation state.
type generator struct {
	cfg Config
	rng *rand.Rand

	persons []Person
	dataset *model.Dataset

	maleZipf, femaleZipf, surnameZipf *zipfSampler
	addrZipf, occZipf, causeZipf      *zipfSampler

	// gazetteer geocodes emitted addresses when the config provides one.
	gazetteer *geo.Gazetteer

	// hintRng draws the recorded-age noise separately from the main
	// stream, so enabling hints does not reshuffle the population draw.
	hintRng *rand.Rand

	// families indexes married couples by the husband's id for the yearly
	// birth draw.
	couples []model.PersonID // husband ids
}

// Generate runs the simulation for cfg and returns the population.
func Generate(cfg Config) *Population {
	g := &generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		hintRng: rand.New(rand.NewSource(cfg.Seed ^ 0x5ea1)),
		dataset: &model.Dataset{
			Name: cfg.Name,
		},
	}
	if cfg.Geocode != nil {
		g.gazetteer = geo.NewGazetteer(cfg.Geocode)
		g.gazetteer.FuzzyThreshold = 0 // corrupted addresses stay ungeocoded
	}
	if g.cfg.MaleFirstNames == nil {
		g.cfg.MaleFirstNames = maleFirstNamesExt
	}
	if g.cfg.FemaleFirstNames == nil {
		g.cfg.FemaleFirstNames = femaleFirstNamesExt
	}
	if g.cfg.Nicknames == nil {
		g.cfg.Nicknames = nicknames
	}
	g.maleZipf = newZipf(g.rng, len(g.cfg.MaleFirstNames), cfg.ZipfS)
	g.femaleZipf = newZipf(g.rng, len(g.cfg.FemaleFirstNames), cfg.ZipfS)
	g.surnameZipf = newZipf(g.rng, len(cfg.Surnames), cfg.ZipfS)
	g.addrZipf = newZipf(g.rng, len(cfg.Addresses), 1.05)
	g.occZipf = newZipf(g.rng, len(occupations), 1.1)
	g.causeZipf = newZipf(g.rng, len(deathCauses), 1.15)

	g.seedFounders()
	for year := cfg.StartYear; year <= cfg.EndYear; year++ {
		g.stepYear(year)
	}
	return &Population{Config: cfg, Persons: g.persons, Dataset: g.dataset}
}

// zipfSampler draws Zipf-distributed indices in [0, n).
type zipfSampler struct {
	cdf []float64
	rng *rand.Rand
}

func newZipf(rng *rand.Rand, n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf, rng: rng}
}

func (z *zipfSampler) next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (g *generator) newPerson(gender model.Gender, birthYear int, mother, father model.PersonID, surname string) model.PersonID {
	id := model.PersonID(len(g.persons))
	var first string
	if gender == model.Male {
		first = g.cfg.MaleFirstNames[g.maleZipf.next()]
	} else {
		first = g.cfg.FemaleFirstNames[g.femaleZipf.next()]
	}
	addr := g.newAddress()
	if mother != model.NoPerson {
		addr = g.persons[mother].Address // children born at the family address
	}
	occ := ""
	if gender == model.Male {
		occ = occupations[g.occZipf.next()]
	} else if g.rng.Float64() < 0.35 {
		occ = occupations[g.occZipf.next()]
	}
	g.persons = append(g.persons, Person{
		ID: id, Gender: gender,
		FirstName: first, MaidenSurname: surname, Surname: surname,
		BirthYear: birthYear,
		Mother:    mother, Father: father, Spouse: model.NoPerson,
		Address: addr, Occupation: occ,
	})
	return id
}

// seedFounders creates the founding married couples with staggered ages so
// the initial population is demographically plausible.
func (g *generator) seedFounders() {
	for i := 0; i < g.cfg.Founders; i++ {
		hAge := 20 + g.rng.Intn(25)
		wAge := 18 + g.rng.Intn(22)
		hSurname := g.cfg.Surnames[g.surnameZipf.next()]
		wSurname := g.cfg.Surnames[g.surnameZipf.next()]
		h := g.newPerson(model.Male, g.cfg.StartYear-hAge, model.NoPerson, model.NoPerson, hSurname)
		w := g.newPerson(model.Female, g.cfg.StartYear-wAge, model.NoPerson, model.NoPerson, wSurname)
		my := g.cfg.StartYear - 1 - g.rng.Intn(5)
		g.marry(h, w, my, false)
	}
}

// marry links two persons, changes the wife's surname, moves the couple to a
// shared address, and (when emit is set) emits a marriage certificate.
func (g *generator) marry(h, w model.PersonID, year int, emit bool) {
	hp, wp := &g.persons[h], &g.persons[w]
	hp.Spouse, wp.Spouse = w, h
	hp.MarriageYear, wp.MarriageYear = year, year
	wp.Surname = hp.Surname
	wp.Address = hp.Address
	g.couples = append(g.couples, h)
	if emit {
		g.emitMarriage(h, w, year)
	}
}

// stepYear advances the simulation one year: marriages, births, deaths,
// address moves.
func (g *generator) stepYear(year int) {
	// Marriages among eligible singles.
	var singleM, singleF []model.PersonID
	for i := range g.persons {
		p := &g.persons[i]
		if p.DeathYear != 0 || p.Spouse != model.NoPerson {
			continue
		}
		age := year - p.BirthYear
		if age < 18 || age > 50 {
			continue
		}
		if p.Gender == model.Male {
			singleM = append(singleM, p.ID)
		} else {
			singleF = append(singleF, p.ID)
		}
	}
	g.rng.Shuffle(len(singleM), func(i, j int) { singleM[i], singleM[j] = singleM[j], singleM[i] })
	g.rng.Shuffle(len(singleF), func(i, j int) { singleF[i], singleF[j] = singleF[j], singleF[i] })
	n := len(singleM)
	if len(singleF) < n {
		n = len(singleF)
	}
	for i := 0; i < n; i++ {
		if g.rng.Float64() < g.cfg.MarriageRate*2 {
			g.marry(singleM[i], singleF[i], year, true)
		}
	}

	// Births to married couples with a fertile wife.
	for _, h := range g.couples {
		hp := &g.persons[h]
		if hp.DeathYear != 0 || hp.Spouse == model.NoPerson {
			continue
		}
		w := hp.Spouse
		wp := &g.persons[w]
		if wp.DeathYear != 0 {
			continue
		}
		wAge := year - wp.BirthYear
		if wAge < 16 || wAge > 45 {
			continue
		}
		if g.rng.Float64() < g.cfg.BirthRate {
			gender := model.Male
			if g.rng.Float64() < 0.49 {
				gender = model.Female
			}
			child := g.newPerson(gender, year, w, h, hp.Surname)
			g.emitBirth(child, year)
		}
	}

	// Deaths with a bathtub-shaped age hazard typical of the period: high
	// infant mortality, low adult mortality, rising sharply in old age.
	for i := range g.persons {
		p := &g.persons[i]
		if p.DeathYear != 0 {
			continue
		}
		age := year - p.BirthYear
		if age < 0 {
			continue
		}
		h := deathHazard(age) * g.cfg.DeathHazard
		if g.rng.Float64() < h {
			p.DeathYear = year
			g.emitDeath(p.ID, year)
		}
	}

	// Census enumeration.
	for _, cy := range g.cfg.CensusYears {
		if cy == year {
			g.emitCensus(year)
			break
		}
	}

	// Address drift: families occasionally move.
	for i := range g.persons {
		p := &g.persons[i]
		if p.DeathYear != 0 {
			continue
		}
		if g.rng.Float64() < g.cfg.MoveRate {
			p.Address = g.newAddress()
			if p.Spouse != model.NoPerson && g.persons[p.Spouse].DeathYear == 0 {
				g.persons[p.Spouse].Address = p.Address
			}
		}
	}
}

// newAddress draws a house address: a house number plus a Zipf-distributed
// street or township name, e.g. "7 portree". House numbers make address
// strings discriminate at household granularity, matching the curated
// address quality of the real IOS data (Table 1: max address frequency is a
// small fraction of the records).
func (g *generator) newAddress() string {
	street := g.cfg.Addresses[g.addrZipf.next()]
	return fmt.Sprintf("%d %s", 1+g.rng.Intn(40), street)
}

// deathHazard returns the yearly death probability at a given age.
func deathHazard(age int) float64 {
	switch {
	case age == 0:
		return 0.12
	case age < 5:
		return 0.03
	case age < 15:
		return 0.006
	case age < 40:
		return 0.008
	case age < 60:
		return 0.015
	case age < 75:
		return 0.05
	default:
		return 0.16
	}
}
