package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/snaps/snaps/internal/model"
)

func TestGenerateReproducible(t *testing.T) {
	a := Generate(IOS().Scaled(0.1))
	b := Generate(IOS().Scaled(0.1))
	if len(a.Persons) != len(b.Persons) || len(a.Dataset.Records) != len(b.Dataset.Records) {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			len(a.Persons), len(a.Dataset.Records), len(b.Persons), len(b.Dataset.Records))
	}
	for i := range a.Dataset.Records {
		if a.Dataset.Records[i] != b.Dataset.Records[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestGenerateScale(t *testing.T) {
	p := Generate(IOS().Scaled(0.25))
	if len(p.Dataset.Certificates) < 500 {
		t.Fatalf("expected at least 500 certificates, got %d", len(p.Dataset.Certificates))
	}
	if len(p.Dataset.Records) < 2*len(p.Dataset.Certificates) {
		t.Fatalf("expected >=2 records per certificate on average, got %d records for %d certs",
			len(p.Dataset.Records), len(p.Dataset.Certificates))
	}
}

func TestCertificateRolesConsistent(t *testing.T) {
	p := Generate(IOS().Scaled(0.1))
	d := p.Dataset
	for _, c := range d.Certificates {
		for role, rid := range c.Roles {
			rec := d.Record(rid)
			if rec.Role != role {
				t.Fatalf("cert %d: record %d has role %v, indexed as %v", c.ID, rid, rec.Role, role)
			}
			if rec.Cert != c.ID {
				t.Fatalf("cert %d: record %d points at cert %d", c.ID, rid, rec.Cert)
			}
			if role.CertType() != c.Type {
				t.Fatalf("cert %d of type %v carries role %v", c.ID, c.Type, role)
			}
		}
		switch c.Type {
		case model.Birth:
			if _, ok := c.Roles[model.Bb]; !ok {
				t.Fatalf("birth cert %d missing baby", c.ID)
			}
		case model.Death:
			if _, ok := c.Roles[model.Dd]; !ok {
				t.Fatalf("death cert %d missing deceased", c.ID)
			}
			if c.Cause == "" {
				t.Fatalf("death cert %d missing cause", c.ID)
			}
			if c.Age < 0 {
				t.Fatalf("death cert %d missing age", c.ID)
			}
		case model.Marriage:
			if _, ok := c.Roles[model.Mm]; !ok {
				t.Fatalf("marriage cert %d missing groom", c.ID)
			}
			if _, ok := c.Roles[model.Mf]; !ok {
				t.Fatalf("marriage cert %d missing bride", c.ID)
			}
		}
	}
}

func TestTruthRoleGenderConsistent(t *testing.T) {
	p := Generate(KIL().Scaled(0.05))
	for i := range p.Dataset.Records {
		rec := &p.Dataset.Records[i]
		if rec.Truth == model.NoPerson {
			t.Fatalf("record %d has no truth", rec.ID)
		}
		person := p.Person(rec.Truth)
		if rg := model.RoleGender(rec.Role); rg != model.GenderUnknown && rg != person.Gender {
			t.Fatalf("record %d: role %v implies gender %v but person is %v",
				rec.ID, rec.Role, rg, person.Gender)
		}
	}
}

func TestPersonLifecycleInvariants(t *testing.T) {
	p := Generate(IOS().Scaled(0.1))
	for i := range p.Persons {
		per := &p.Persons[i]
		if per.DeathYear != 0 && per.DeathYear < per.BirthYear {
			t.Fatalf("person %d dies (%d) before birth (%d)", per.ID, per.DeathYear, per.BirthYear)
		}
		if per.Mother != model.NoPerson {
			m := p.Person(per.Mother)
			age := per.BirthYear - m.BirthYear
			if age < 16 || age > 46 {
				t.Fatalf("person %d: mother aged %d at birth", per.ID, age)
			}
			if m.Gender != model.Female {
				t.Fatalf("person %d has male mother", per.ID)
			}
		}
		if per.Spouse != model.NoPerson {
			s := p.Person(per.Spouse)
			if s.Spouse != per.ID {
				t.Fatalf("asymmetric marriage %d <-> %d", per.ID, s.Spouse)
			}
			if s.Gender == per.Gender {
				t.Fatalf("same-gender marriage generated for %d in a period data set", per.ID)
			}
		}
	}
}

func TestMarriedWomenChangeSurname(t *testing.T) {
	p := Generate(IOS().Scaled(0.2))
	changed := 0
	for i := range p.Persons {
		per := &p.Persons[i]
		if per.Gender != model.Female || per.Spouse == model.NoPerson {
			continue
		}
		h := p.Person(per.Spouse)
		if per.Surname != h.Surname {
			t.Fatalf("married woman %d kept surname %q (husband %q)", per.ID, per.Surname, h.Surname)
		}
		if per.Surname != per.MaidenSurname {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no woman changed surname at marriage; error model missing its main QID change")
	}
}

func TestMissingValueRatesRoughlyMatch(t *testing.T) {
	cfg := KIL()
	p := Generate(cfg)
	st := ComputeStats(p.Dataset, model.Dd)
	total := st.Records
	if total < 500 {
		t.Fatalf("too few deceased records to test rates: %d", total)
	}
	occ := float64(st.PerAttr[model.Occupation].Missing) / float64(total)
	// Women often have no recorded occupation, so the observed missing rate
	// exceeds the sampling rate; it must be at least the configured rate.
	if occ < cfg.MissingRate[model.Occupation]*0.8 {
		t.Errorf("occupation missing rate %.2f below configured %.2f", occ, cfg.MissingRate[model.Occupation])
	}
	fn := float64(st.PerAttr[model.FirstName].Missing) / float64(total)
	if fn > cfg.MissingRate[model.FirstName]*3+0.01 {
		t.Errorf("first-name missing rate %.3f too high for configured %.3f", fn, cfg.MissingRate[model.FirstName])
	}
}

func TestNameSkewIOSHeavierThanKIL(t *testing.T) {
	ios := Generate(IOS())
	kil := Generate(KIL())
	sharePct := func(p *Population) float64 {
		top := TopValues(p.Dataset, model.FirstName, 1, model.Dd)
		ids := p.Dataset.RecordsByRole(model.Dd)
		if len(top) == 0 || len(ids) == 0 {
			t.Fatal("no deceased records")
		}
		return float64(top[0].Count) / float64(len(ids))
	}
	iosShare, kilShare := sharePct(ios), sharePct(kil)
	if iosShare <= kilShare {
		t.Errorf("IOS top-name share %.3f should exceed KIL %.3f (Fig. 2 skew)", iosShare, kilShare)
	}
	// The paper reports >8%% for the real IOS; the simulator's larger name
	// pool puts the head a little lower while keeping the skew shape.
	if iosShare < 0.03 {
		t.Errorf("IOS top first name covers only %.3f of records; want a heavy head (>3%%)", iosShare)
	}
}

func TestTopValuesSortedAndBounded(t *testing.T) {
	p := Generate(IOS().Scaled(0.2))
	top := TopValues(p.Dataset, model.Surname, 100, model.Dd)
	if len(top) == 0 {
		t.Fatal("no top values")
	}
	if len(top) > 100 {
		t.Fatalf("asked for 100, got %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("TopValues not sorted at %d: %v > %v", i, top[i], top[i-1])
		}
	}
}

func TestTruePairsSymmetricRolePair(t *testing.T) {
	p := Generate(IOS().Scaled(0.1))
	rp := model.MakeRolePair(model.Bm, model.Bm)
	pairs := p.Dataset.TruePairs(rp)
	for k := range pairs {
		a, b := k.Split()
		ra, rb := p.Dataset.Record(a), p.Dataset.Record(b)
		if ra.Truth != rb.Truth {
			t.Fatalf("true pair (%d,%d) refers to different persons", a, b)
		}
		if ra.Role != model.Bm || rb.Role != model.Bm {
			t.Fatalf("pair (%d,%d) has roles %v-%v, want Bm-Bm", a, b, ra.Role, rb.Role)
		}
	}
	if len(pairs) == 0 {
		t.Fatal("expected some Bm-Bm true pairs")
	}
}

func TestTruePairsMixedRolePair(t *testing.T) {
	p := Generate(IOS().Scaled(0.1))
	rp := model.MakeRolePair(model.Bb, model.Dd)
	pairs := p.Dataset.TruePairs(rp)
	if len(pairs) == 0 {
		t.Fatal("expected some Bb-Dd true pairs (babies who died in window)")
	}
	for k := range pairs {
		a, b := k.Split()
		ra, rb := p.Dataset.Record(a), p.Dataset.Record(b)
		if model.MakeRolePair(ra.Role, rb.Role) != rp {
			t.Fatalf("pair roles %v-%v, want Bb-Dd", ra.Role, rb.Role)
		}
	}
}

func TestBiasTruth(t *testing.T) {
	p := Generate(IOS().Scaled(0.1))
	pairs := p.Dataset.TruePairs(model.MakeRolePair(model.Bm, model.Bm))
	kept := BiasTruth(p.Dataset, pairs, 0.5)
	if len(kept) == 0 || len(kept) > len(pairs) {
		t.Fatalf("BiasTruth kept %d of %d", len(kept), len(pairs))
	}
	want := int(float64(len(pairs)) * 0.5)
	if len(kept) != want {
		t.Errorf("BiasTruth kept %d, want %d", len(kept), want)
	}
	for k := range kept {
		if !pairs[k] {
			t.Fatal("BiasTruth invented a pair")
		}
	}
	full := BiasTruth(p.Dataset, pairs, 1.0)
	if len(full) != len(pairs) {
		t.Errorf("keep=1 should retain all pairs: %d vs %d", len(full), len(pairs))
	}
}

func TestComputeStatsCountsAddUp(t *testing.T) {
	p := Generate(IOS().Scaled(0.1))
	st := ComputeStats(p.Dataset, model.Dd)
	for _, a := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
		as := st.PerAttr[a]
		if as.Missing < 0 || as.Missing > st.Records {
			t.Fatalf("%v: missing %d out of range (records %d)", a, as.Missing, st.Records)
		}
		if as.DistinctCount > 0 && (as.MinFreq < 1 || as.MaxFreq < as.MinFreq) {
			t.Fatalf("%v: bad freq stats %+v", a, as)
		}
		if as.DistinctCount > 0 {
			if as.AvgFreq < float64(as.MinFreq) || as.AvgFreq > float64(as.MaxFreq) {
				t.Fatalf("%v: avg %.2f outside [min,max]=[%d,%d]", a, as.AvgFreq, as.MinFreq, as.MaxFreq)
			}
		}
	}
}

func TestZipfSamplerDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := newZipf(rng, 50, 1.5)
	counts := make([]int, 50)
	for i := 0; i < 20000; i++ {
		counts[z.next()]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("Zipf head rank0=%d should dominate rank10=%d", counts[0], counts[10])
	}
	if counts[0] <= counts[49] {
		t.Errorf("Zipf head rank0=%d should dominate tail rank49=%d", counts[0], counts[49])
	}
}

func TestZipfSamplerInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := newZipf(rng, 7, 1.2)
		for i := 0; i < 100; i++ {
			v := z.next()
			if v < 0 || v >= 7 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(r.Int63())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTypoSingleEdit(t *testing.T) {
	g := &generator{cfg: IOS(), rng: rand.New(rand.NewSource(3))}
	for i := 0; i < 500; i++ {
		in := "macdonald"
		out := g.typo(in)
		d := editDistance(in, out)
		if d > 2 { // transposition counts as 2 under plain Levenshtein
			t.Fatalf("typo(%q) = %q, edit distance %d > 2", in, out, d)
		}
	}
}

func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			c := 1
			if a[i-1] == b[j-1] {
				c = 0
			}
			m := cur[j-1] + 1
			if prev[j]+1 < m {
				m = prev[j] + 1
			}
			if prev[j-1]+c < m {
				m = prev[j-1] + c
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func TestBHICScaleGrowsWithWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("BHIC generation is slow")
	}
	small := Generate(BHIC(1930).Scaled(0.2))
	large := Generate(BHIC(1920).Scaled(0.2))
	if len(large.Dataset.Records) <= len(small.Dataset.Records) {
		t.Errorf("wider BHIC window should produce more records: %d vs %d",
			len(large.Dataset.Records), len(small.Dataset.Records))
	}
}

func TestGeocodingOnlyIOS(t *testing.T) {
	ios := Generate(IOS().Scaled(0.05))
	kil := Generate(KIL().Scaled(0.05))
	iosGeo := 0
	for i := range ios.Dataset.Records {
		if ios.Dataset.Records[i].Lat != 0 {
			iosGeo++
		}
	}
	if iosGeo == 0 {
		t.Error("IOS records should be geocoded")
	}
	for i := range kil.Dataset.Records {
		if kil.Dataset.Records[i].Lat != 0 {
			t.Fatal("KIL records must not be geocoded")
		}
	}
}

func TestCensusEmission(t *testing.T) {
	cfg := IOS().Scaled(0.1).WithCensus()
	if len(cfg.CensusYears) == 0 {
		t.Fatal("WithCensus produced no census years")
	}
	for _, y := range cfg.CensusYears {
		if y%10 != 1 || y < cfg.StartYear || y > cfg.EndYear {
			t.Fatalf("bad census year %d", y)
		}
	}
	p := Generate(cfg)
	households := 0
	for i := range p.Dataset.Certificates {
		c := &p.Dataset.Certificates[i]
		if c.Type != model.Census {
			continue
		}
		households++
		// A household has at least one head.
		_, hasF := c.Roles[model.Cf]
		_, hasM := c.Roles[model.Cm]
		if !hasF && !hasM {
			t.Fatal("household without head")
		}
		// Children are alive at the census and belong to the wife.
		for _, cc := range model.CensusChildRoles {
			rid, ok := c.Roles[cc]
			if !ok {
				continue
			}
			child := p.Person(p.Dataset.Record(rid).Truth)
			if child.DeathYear != 0 && child.DeathYear < c.Year {
				t.Fatalf("dead child enumerated in census %d", c.Year)
			}
			if child.BirthYear > c.Year {
				t.Fatal("child enumerated before birth")
			}
		}
	}
	if households == 0 {
		t.Fatal("no census households emitted")
	}
	// Base config emits none.
	p2 := Generate(IOS().Scaled(0.1))
	for i := range p2.Dataset.Certificates {
		if p2.Dataset.Certificates[i].Type == model.Census {
			t.Fatal("census certificate without CensusYears")
		}
	}
}

func TestBHICUsesDutchProfile(t *testing.T) {
	p := Generate(BHIC(1920).Scaled(0.1))
	dutchFirst := map[string]bool{}
	for _, n := range dutchMaleFirstNames {
		dutchFirst[n] = true
	}
	for _, n := range dutchFemaleFirstNames {
		dutchFirst[n] = true
	}
	hits := 0
	for i := range p.Dataset.Records {
		rec := &p.Dataset.Records[i]
		if rec.FirstName() != "" && dutchFirst[rec.FirstName()] {
			hits++
		}
		if i > 500 {
			break
		}
	}
	if hits == 0 {
		t.Fatal("BHIC records carry no Dutch first names")
	}
	// Multi-token surnames with tussenvoegsels occur.
	multi := false
	for i := range p.Dataset.Records {
		if indexByte(p.Dataset.Records[i].Surname(), ' ') >= 0 {
			multi = true
			break
		}
	}
	if !multi {
		t.Error("BHIC should contain multi-token surnames")
	}
	// No geocoding for BHIC, matching the paper.
	for i := range p.Dataset.Records {
		if p.Dataset.Records[i].Lat != 0 {
			t.Fatal("BHIC records must not be geocoded")
		}
	}
}
