package dataset

import (
	"github.com/snaps/snaps/internal/model"
)

// emitBirth writes a birth certificate for the child born in the given
// year: records for the baby (Bb), mother (Bm), and father (Bf).
func (g *generator) emitBirth(child model.PersonID, year int) {
	cp := &g.persons[child]
	certID := model.CertID(len(g.dataset.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Birth, Year: year,
		Roles: map[model.Role]model.RecordID{}, Age: -1,
	}
	cert.Roles[model.Bb] = g.emitRecord(child, certID, model.Bb, year)
	if cp.Mother != model.NoPerson {
		cert.Roles[model.Bm] = g.emitRecord(cp.Mother, certID, model.Bm, year)
	}
	if cp.Father != model.NoPerson {
		cert.Roles[model.Bf] = g.emitRecord(cp.Father, certID, model.Bf, year)
	}
	g.dataset.Certificates = append(g.dataset.Certificates, cert)
}

// emitDeath writes a death certificate: the deceased (Dd), their parents
// (Dm, Df) as remembered by the informant, and the spouse (Ds) if married.
func (g *generator) emitDeath(dead model.PersonID, year int) {
	dp := &g.persons[dead]
	certID := model.CertID(len(g.dataset.Certificates))
	age := year - dp.BirthYear
	cert := model.Certificate{
		ID: certID, Type: model.Death, Year: year,
		Roles: map[model.Role]model.RecordID{},
		Cause: deathCauses[g.causeZipf.next()],
		Age:   age,
	}
	ddID := g.emitRecord(dead, certID, model.Dd, year)
	cert.Roles[model.Dd] = ddID
	g.setBirthHint(ddID, dp.BirthYear)
	// Parents appear on the death certificate whether or not they are still
	// alive; informant recall makes these mentions noisier (extra typo
	// chance applied inside emitRecord via the parent-role path).
	if dp.Mother != model.NoPerson {
		cert.Roles[model.Dm] = g.emitRecord(dp.Mother, certID, model.Dm, year)
	}
	if dp.Father != model.NoPerson {
		cert.Roles[model.Df] = g.emitRecord(dp.Father, certID, model.Df, year)
	}
	if dp.Spouse != model.NoPerson {
		cert.Roles[model.Ds] = g.emitRecord(dp.Spouse, certID, model.Ds, year)
	}
	g.dataset.Certificates = append(g.dataset.Certificates, cert)
}

// emitMarriage writes a marriage certificate: groom (Mm), bride (Mf), and
// the four parents. The bride's surname on the certificate is her maiden
// surname (she marries under it).
func (g *generator) emitMarriage(h, w model.PersonID, year int) {
	certID := model.CertID(len(g.dataset.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Marriage, Year: year,
		Roles: map[model.Role]model.RecordID{}, Age: -1,
	}
	cert.Roles[model.Mm] = g.emitRecord(h, certID, model.Mm, year)
	cert.Roles[model.Mf] = g.emitRecordWithSurname(w, certID, model.Mf, year, g.persons[w].MaidenSurname)
	hp, wp := &g.persons[h], &g.persons[w]
	if hp.Mother != model.NoPerson {
		cert.Roles[model.Mmm] = g.emitRecord(hp.Mother, certID, model.Mmm, year)
	}
	if hp.Father != model.NoPerson {
		cert.Roles[model.Mmf] = g.emitRecord(hp.Father, certID, model.Mmf, year)
	}
	if wp.Mother != model.NoPerson {
		cert.Roles[model.Mfm] = g.emitRecord(wp.Mother, certID, model.Mfm, year)
	}
	if wp.Father != model.NoPerson {
		cert.Roles[model.Mff] = g.emitRecord(wp.Father, certID, model.Mff, year)
	}
	g.dataset.Certificates = append(g.dataset.Certificates, cert)
}

// emitRecord extracts a role record for a person onto a certificate,
// applying the error model. The surname recorded is the person's current
// surname (married women appear under their married name except as brides).
func (g *generator) emitRecord(p model.PersonID, cert model.CertID, role model.Role, year int) model.RecordID {
	return g.emitRecordWithSurname(p, cert, role, year, g.persons[p].Surname)
}

func (g *generator) emitRecordWithSurname(p model.PersonID, cert model.CertID, role model.Role, year int, surname string) model.RecordID {
	pp := &g.persons[p]
	id := model.RecordID(len(g.dataset.Records))
	rec := model.Record{
		ID: id, Cert: cert, Role: role, Gender: pp.Gender,
		First: model.Intern(g.corruptName(pp.FirstName, true)),
		Sur:   model.Intern(g.corruptName(surname, false)),
		Addr:  model.Intern(pp.Address),
		Occ:   model.Intern(pp.Occupation),
		Year:  year,
		Truth: pp.ID,
	}
	// Missing values per attribute.
	if g.missing(model.FirstName) {
		rec.First = 0
	}
	if g.missing(model.Surname) {
		rec.Sur = 0
	}
	if g.missing(model.Address) {
		rec.Addr = 0
	}
	if g.missing(model.Occupation) {
		rec.Occ = 0
	}
	if rec.Addr != 0 && g.gazetteer != nil {
		if lat, lon, ok := g.gazetteer.Resolve(rec.Address()); ok {
			rec.Lat, rec.Lon = lat, lon
		}
	}
	g.dataset.Records = append(g.dataset.Records, rec)
	return id
}

// setBirthHint stores the birth year a recorded age implies, with the
// rounding and mis-statement noise typical of informant-supplied ages.
func (g *generator) setBirthHint(id model.RecordID, birthYear int) {
	hint := birthYear
	switch r := g.hintRng.Float64(); {
	case r < 0.05:
		hint += 2 - g.hintRng.Intn(5) // ±2
	case r < 0.35:
		hint += 1 - g.hintRng.Intn(3) // ±1
	}
	g.dataset.Records[id].BirthHint = hint
}

func (g *generator) missing(a model.Attr) bool {
	return g.rng.Float64() < g.cfg.MissingRate[a]
}

// corruptName applies the name error model: nickname substitution for first
// names, then possibly a typographical edit.
func (g *generator) corruptName(name string, isFirst bool) string {
	if name == "" {
		return ""
	}
	if isFirst && g.rng.Float64() < g.cfg.NicknameRate {
		// Double forenames take the variant on their first component.
		head, tail := name, ""
		if i := indexByte(name, ' '); i >= 0 {
			head, tail = name[:i], name[i:]
		}
		if vars, ok := g.cfg.Nicknames[head]; ok {
			name = vars[g.rng.Intn(len(vars))] + tail
		}
	}
	if g.rng.Float64() < g.cfg.TypoRate {
		name = g.typo(name)
	}
	return name
}

// typo applies one random edit: substitution, deletion, insertion, or
// transposition of adjacent characters.
func (g *generator) typo(s string) string {
	if len(s) < 2 {
		return s
	}
	b := []byte(s)
	switch g.rng.Intn(4) {
	case 0: // substitution
		i := g.rng.Intn(len(b))
		b[i] = byte('a' + g.rng.Intn(26))
	case 1: // deletion
		i := g.rng.Intn(len(b))
		b = append(b[:i], b[i+1:]...)
	case 2: // insertion
		i := g.rng.Intn(len(b) + 1)
		c := byte('a' + g.rng.Intn(26))
		b = append(b[:i], append([]byte{c}, b[i:]...)...)
	default: // transposition
		i := g.rng.Intn(len(b) - 1)
		b[i], b[i+1] = b[i+1], b[i]
	}
	return string(b)
}

// Stats summarises a data set the way Table 1 of the paper does: per-QID
// missing-value counts and value-frequency statistics over records of the
// given roles (the paper reports deceased people, role Dd).
type Stats struct {
	Records int
	PerAttr map[model.Attr]AttrStats
}

// AttrStats is one row of Table 1.
type AttrStats struct {
	Missing       int
	MinFreq       int
	AvgFreq       float64
	MaxFreq       int
	DistinctCount int
}

// ComputeStats derives Table 1 statistics for the records holding any of
// the given roles.
func ComputeStats(d *model.Dataset, roles ...model.Role) Stats {
	ids := d.RecordsByRole(roles...)
	s := Stats{Records: len(ids), PerAttr: map[model.Attr]AttrStats{}}
	for _, a := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
		freq := map[string]int{}
		missing := 0
		for _, id := range ids {
			v := d.Record(id).Value(a)
			if v == "" {
				missing++
				continue
			}
			freq[v]++
		}
		st := AttrStats{Missing: missing, DistinctCount: len(freq)}
		if len(freq) > 0 {
			st.MinFreq = 1 << 30
			total := 0
			for _, c := range freq {
				total += c
				if c < st.MinFreq {
					st.MinFreq = c
				}
				if c > st.MaxFreq {
					st.MaxFreq = c
				}
			}
			st.AvgFreq = float64(total) / float64(len(freq))
		}
		s.PerAttr[a] = st
	}
	return s
}

// TopValues returns the n most frequent values of the attribute among
// records with the given roles, with their counts, most frequent first.
// Ties break lexicographically for determinism. This regenerates the series
// of Figure 2.
func TopValues(d *model.Dataset, a model.Attr, n int, roles ...model.Role) []ValueCount {
	ids := d.RecordsByRole(roles...)
	freq := map[string]int{}
	for _, id := range ids {
		if v := d.Record(id).Value(a); v != "" {
			freq[v]++
		}
	}
	out := make([]ValueCount, 0, len(freq))
	for v, c := range freq {
		out = append(out, ValueCount{Value: v, Count: c})
	}
	sortValueCounts(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ValueCount pairs an attribute value with its record frequency.
type ValueCount struct {
	Value string
	Count int
}

func sortValueCounts(vc []ValueCount) {
	// Insertion-free stdlib sort with deterministic tie-break.
	sortSlice(vc, func(i, j int) bool {
		if vc[i].Count != vc[j].Count {
			return vc[i].Count > vc[j].Count
		}
		return vc[i].Value < vc[j].Value
	})
}

// BiasTruth simulates the paper's "incomplete and biased ground truth": it
// returns a copy of the true pair set for the role pair with the given
// fraction of pairs retained, preferring pairs whose records share a
// surname (the curators' sibling-finding bias). Determinism comes from the
// record ids, not a random source.
func BiasTruth(d *model.Dataset, pairs map[model.PairKey]bool, keep float64) map[model.PairKey]bool {
	if keep >= 1 {
		out := make(map[model.PairKey]bool, len(pairs))
		for k := range pairs {
			out[k] = true
		}
		return out
	}
	keys := make([]model.PairKey, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sortSlice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	target := int(float64(len(keys)) * keep)
	out := map[model.PairKey]bool{}
	// First pass: same-surname pairs (the bias).
	for _, k := range keys {
		if len(out) >= target {
			break
		}
		a, b := k.Split()
		if d.Record(a).Sur == d.Record(b).Sur {
			out[k] = true
		}
	}
	for _, k := range keys {
		if len(out) >= target {
			break
		}
		out[k] = true
	}
	return out
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// emitCensus enumerates every household at a census year: the married (or
// widowed) heads and their co-resident children — alive, unmarried, and
// young enough to live at home. Up to six children are recorded, eldest
// first, matching the fixed census child roles.
func (g *generator) emitCensus(year int) {
	// Children by mother for household assembly.
	childrenOf := map[model.PersonID][]model.PersonID{}
	for i := range g.persons {
		p := &g.persons[i]
		if p.Mother == model.NoPerson || p.DeathYear != 0 || p.Spouse != model.NoPerson {
			continue
		}
		age := year - p.BirthYear
		if age < 0 || age > 25 {
			continue
		}
		childrenOf[p.Mother] = append(childrenOf[p.Mother], p.ID)
	}
	for _, h := range g.couples {
		hp := &g.persons[h]
		if hp.Spouse == model.NoPerson {
			continue
		}
		w := hp.Spouse
		wp := &g.persons[w]
		hAlive := hp.DeathYear == 0 && hp.BirthYear < year
		wAlive := wp.DeathYear == 0 && wp.BirthYear < year
		if !hAlive && !wAlive {
			continue
		}
		certID := model.CertID(len(g.dataset.Certificates))
		cert := model.Certificate{
			ID: certID, Type: model.Census, Year: year,
			Roles: map[model.Role]model.RecordID{}, Age: -1,
		}
		if hAlive {
			id := g.emitRecord(h, certID, model.Cf, year)
			cert.Roles[model.Cf] = id
			g.setBirthHint(id, hp.BirthYear)
		}
		if wAlive {
			id := g.emitRecord(w, certID, model.Cm, year)
			cert.Roles[model.Cm] = id
			g.setBirthHint(id, wp.BirthYear)
		}
		kids := childrenOf[w]
		// Eldest first; the generator creates persons in birth order, so
		// ids are already ordered by birth year.
		for i, kid := range kids {
			if i >= len(model.CensusChildRoles) {
				break
			}
			role := model.CensusChildRoles[i]
			id := g.emitRecord(kid, certID, role, year)
			cert.Roles[role] = id
			g.setBirthHint(id, g.persons[kid].BirthYear)
		}
		g.dataset.Certificates = append(g.dataset.Certificates, cert)
	}
}
