package dataset

// Name pools used by the population simulator. They echo the onomastic
// profile of 19th-century Scottish vital records: a small pool of highly
// concentrated first names and clan surnames for the Isle of Skye, a larger
// and flatter pool for the town of Kilmarnock. Sampling is Zipf-distributed,
// so the head of each list dominates, reproducing the ambiguity structure of
// Table 1 and Figure 2 of the paper.

var maleFirstNames = []string{
	"john", "donald", "alexander", "william", "james", "angus", "malcolm",
	"duncan", "neil", "roderick", "murdo", "archibald", "hugh", "kenneth",
	"norman", "allan", "charles", "ewen", "finlay", "lachlan", "peter",
	"robert", "thomas", "george", "david", "andrew", "colin", "dougald",
	"hector", "martin", "samuel", "walter", "adam", "daniel", "edward",
	"francis", "gilbert", "henry", "matthew", "michael", "patrick", "ronald",
	"simon", "stewart", "torquil", "gavin", "bruce", "craig", "douglas",
	"fergus", "graham", "ian", "keith", "lewis", "magnus", "niall", "owen",
	"quintin", "ross", "scott", "tavish", "urquhart", "victor", "wallace",
}

var femaleFirstNames = []string{
	"mary", "margaret", "catherine", "ann", "christina", "janet", "isabella",
	"flora", "marion", "jessie", "effie", "rachel", "jane", "elizabeth",
	"sarah", "agnes", "helen", "grace", "euphemia", "johanna", "kate",
	"barbara", "betsy", "cirsty", "dolina", "ellen", "fanny", "georgina",
	"henrietta", "iona", "joan", "kirsty", "lilias", "mabel", "nancy",
	"oighrig", "peggy", "rebecca", "susan", "teenie", "una", "violet",
	"wilhelmina", "alice", "beatrice", "charlotte", "dorothy", "emily",
	"frances", "gertrude", "harriet", "ida", "jemima", "katherine", "lucy",
	"martha", "nellie", "olive", "phoebe", "rose", "sophia", "tabitha",
}

var skyeSurnames = []string{
	"macdonald", "macleod", "mackinnon", "maclean", "nicolson", "mackenzie",
	"campbell", "beaton", "macrae", "ross", "matheson", "stewart", "gillies",
	"macpherson", "robertson", "grant", "fraser", "murchison", "macaskill",
	"lamont", "macinnes", "macintyre", "maclure", "martin", "morrison",
	"munro", "shaw", "ferguson", "buchanan", "cameron", "chisholm",
	"macarthur", "macaulay", "maccallum", "maccrimmon", "macdougall",
	"macfarlane", "macgregor", "macintosh", "maciver", "mackay", "maclachlan",
	"macmillan", "macnab", "macneil", "macquarrie", "macqueen", "macsween",
	"mactavish", "macwilliam",
}

var kilmarnockSurnames = []string{
	"smith", "wilson", "brown", "thomson", "stewart", "campbell", "anderson",
	"scott", "murray", "taylor", "clark", "mitchell", "young", "paterson",
	"walker", "watson", "morrison", "miller", "fraser", "davidson", "gray",
	"hamilton", "johnston", "kerr", "hunter", "duncan", "ferguson", "allan",
	"bell", "black", "boyd", "burns", "craig", "crawford", "cunningham",
	"dickson", "donaldson", "douglas", "fleming", "forbes", "gibson",
	"gordon", "graham", "grant", "hay", "henderson", "hill", "hughes",
	"jackson", "kelly", "kennedy", "king", "lindsay", "maxwell", "mcculloch",
	"mcdonald", "mcewan", "mcfadyen", "mcgill", "mcintyre", "mckay",
	"mckenzie", "mclaren", "mclean", "mcmillan", "mcneil", "milne", "moore",
	"muir", "munro", "orr", "park", "quinn", "ramsay", "reid", "ritchie",
	"robertson", "russell", "shaw", "simpson", "sinclair", "sloan", "snedden",
	"somerville", "steel", "sutherland", "tait", "todd", "turnbull", "ure",
	"wallace", "weir", "white", "wright", "yuill",
}

var skyeAddresses = []string{
	"portree", "kilmore", "dunvegan", "uig", "staffin", "broadford",
	"elgol", "carbost", "struan", "edinbane", "kensaleyre", "glendale",
	"waternish", "sleat", "kyleakin", "torrin", "luib", "sconser",
	"braes", "penifiler", "achachork", "borve", "skeabost", "bernisdale",
	"treaslane", "flashader", "greshornish", "colbost", "milovaig",
	"husabost", "ramasaig", "orbost", "roskhill", "vatten", "harlosh",
	"caroy", "bracadale", "ullinish", "fiscavaig", "portnalong",
}

// skyeGeocode maps Skye addresses to approximate coordinates. Only the IOS
// data set is geocoded, matching the paper (addresses in KIL and BHIC were
// absent or of low quality).
var skyeGeocode = map[string][2]float64{
	"portree": {57.4125, -6.1964}, "kilmore": {57.24, -5.90},
	"dunvegan": {57.4353, -6.5835}, "uig": {57.5876, -6.3637},
	"staffin": {57.6278, -6.2078}, "broadford": {57.2425, -5.9125},
	"elgol": {57.1456, -6.1062}, "carbost": {57.3031, -6.3544},
	"struan": {57.3586, -6.4114}, "edinbane": {57.4664, -6.4267},
	"kensaleyre": {57.4822, -6.2850}, "glendale": {57.4453, -6.7014},
	"waternish": {57.5200, -6.6000}, "sleat": {57.1500, -5.9000},
	"kyleakin": {57.2708, -5.7403}, "torrin": {57.2100, -6.0300},
	"luib": {57.2700, -6.0400}, "sconser": {57.3100, -6.1100},
	"braes": {57.3700, -6.1400}, "penifiler": {57.3900, -6.1800},
	"achachork": {57.4300, -6.2100}, "borve": {57.4500, -6.2600},
	"skeabost": {57.4600, -6.3200}, "bernisdale": {57.4700, -6.3500},
	"treaslane": {57.4800, -6.3800}, "flashader": {57.4900, -6.4300},
	"greshornish": {57.5000, -6.4400}, "colbost": {57.4400, -6.6400},
	"milovaig": {57.4500, -6.7500}, "husabost": {57.4800, -6.6800},
	"ramasaig": {57.4200, -6.7500}, "orbost": {57.4000, -6.6200},
	"roskhill": {57.4200, -6.5800}, "vatten": {57.4100, -6.5600},
	"harlosh": {57.3900, -6.5400}, "caroy": {57.3800, -6.5000},
	"bracadale": {57.3600, -6.4500}, "ullinish": {57.3400, -6.4600},
	"fiscavaig": {57.3300, -6.4900}, "portnalong": {57.3400, -6.4200},
}

var kilmarnockAddresses = []string{
	"king street", "portland street", "titchfield street", "high street",
	"soulis street", "fore street", "cheapside", "sandbed street",
	"green street", "west langlands street", "dean street",
	"wellington street", "hill street", "douglas street", "nelson street",
	"robertson place", "queen street", "princes street", "john finnie street",
	"dundonald road", "london road", "irvine road", "glencairn square",
	"riccarton", "bonnyton", "beansburn", "townholm", "crookedholm",
	"hurlford", "grange street", "bank street", "st marnock street",
	"strand street", "waterloo street", "woodstock street", "union street",
	"boyd street", "clark street", "east netherton street", "low glencairn street",
	"mill lane", "old mill road", "new mill road", "mclelland drive",
	"armour street", "samson avenue", "gibson street", "fulton lane",
	"menford lane", "croft street", "garden street", "richardland road",
	"welbeck street", "yorke place", "seright square", "wards place",
	"paxton street", "holmes road", "gilmour street", "dalry road",
}

var occupations = []string{
	"agricultural labourer", "crofter", "fisherman", "farm servant",
	"domestic servant", "weaver", "carpet weaver", "shoemaker", "tailor",
	"mason", "carpenter", "blacksmith", "miner", "coal miner", "engine keeper",
	"railway porter", "grocer", "merchant", "teacher", "minister",
	"seaman", "boat builder", "shepherd", "gamekeeper", "dairymaid",
	"dressmaker", "seamstress", "spinner", "general labourer", "ploughman",
	"cattleman", "quarrier", "slater", "joiner", "cooper", "baker",
	"butcher", "flesher", "vintner", "innkeeper", "carter", "coachman",
	"gardener", "clerk", "bookkeeper", "iron moulder", "brass finisher",
	"boilermaker", "engineer", "mechanic", "printer", "bookbinder",
	"tobacco spinner", "wool sorter", "factory worker", "mill worker",
	"bonnet maker", "hosier", "draper", "hawker",
}

var deathCauses = []string{
	"phthisis", "consumption", "bronchitis", "pneumonia", "whooping cough",
	"measles", "scarlet fever", "typhus fever", "typhoid fever",
	"diphtheria", "croup", "smallpox", "cholera", "diarrhoea", "dysentery",
	"debility", "old age", "senile decay", "heart disease", "dropsy",
	"apoplexy", "paralysis", "convulsions", "teething", "premature birth",
	"marasmus", "atrophy", "cancer", "cancer of stomach", "cancer of breast",
	"tumour", "jaundice", "liver disease", "kidney disease", "brights disease",
	"rheumatic fever", "erysipelas", "influenza", "asthma", "pleurisy",
	"peritonitis", "gastritis", "enteritis", "meningitis", "hydrocephalus",
	"accidental drowning", "fracture of skull", "burns", "killed by fall",
	"crushed by cart", "childbirth", "puerperal fever", "not known",
}

// nicknames maps canonical first names to their common variants; the error
// model substitutes a variant with a configured probability, modelling
// informal recording (e.g. a baptismal "margaret" appearing as "peggy" on a
// later certificate).
var nicknames = map[string][]string{
	"margaret":     {"maggie", "peggy", "meg"},
	"mary":         {"may", "molly"},
	"catherine":    {"kate", "katie", "cathy"},
	"christina":    {"kirsty", "teenie", "chrissie"},
	"isabella":     {"bella", "isa", "ella"},
	"elizabeth":    {"betsy", "lizzie", "beth"},
	"euphemia":     {"effie", "phemie"},
	"janet":        {"jessie", "jenny"},
	"johanna":      {"hannah"},
	"wilhelmina":   {"mina", "willa"},
	"john":         {"jock", "jack"},
	"james":        {"jamie", "jim"},
	"alexander":    {"alick", "sandy", "alex"},
	"donald":       {"dan", "donny"},
	"william":      {"willie", "bill"},
	"robert":       {"rab", "bob", "bert"},
	"archibald":    {"archie", "baldie"},
	"alexanderina": {"ina"},
	"angus":        {"gus"},
	"duncan":       {"dunc"},
	"kenneth":      {"kenny"},
	"roderick":     {"rory"},
	"thomas":       {"tam", "tom"},
	"andrew":       {"andy", "drew"},
	"patrick":      {"pat", "paddy"},
	"david":        {"davie"},
	"george":       {"geordie", "dod"},
	"hugh":         {"hughie", "shug"},
}

// Extended pools. Nineteenth-century Scottish registers show a long tail of
// double forenames ("mary ann", "john angus") and patronymic surnames
// ("donaldson", "jamieson"). The extended pools add these as distinct tail
// values behind the common single names, giving the name-frequency profile
// of Table 1 (hundreds of distinct values, heavily skewed head).
var (
	maleFirstNamesExt   = extendFirstNames(maleFirstNames)
	femaleFirstNamesExt = extendFirstNames(femaleFirstNames)
	skyeSurnamesExt     = extendSurnames(skyeSurnames)
	kilSurnamesExt      = extendSurnames(kilmarnockSurnames)
)

// extendFirstNames appends double-forename combinations of the base names
// after the singles, so Zipf sampling keeps singles common and doubles rare.
func extendFirstNames(base []string) []string {
	out := append([]string{}, base...)
	n := len(base)
	for i := 0; i < n && len(out) < 520; i++ {
		for j := 0; j < n && len(out) < 520; j += 7 {
			if i == (i+j)%n {
				continue
			}
			out = append(out, base[i]+" "+base[(i+j)%n])
		}
	}
	return out
}

// extendSurnames merges the regional pool with patronymic "-son" forms of
// common male names and the other region's surnames as a rarer tail.
func extendSurnames(base []string) []string {
	out := append([]string{}, base...)
	for _, m := range maleFirstNames {
		out = append(out, m+"son")
	}
	other := kilmarnockSurnames
	if len(base) > 0 && base[0] == kilmarnockSurnames[0] {
		other = skyeSurnames
	}
	seen := map[string]bool{}
	for _, s := range out {
		seen[s] = true
	}
	for _, s := range other {
		if !seen[s] {
			out = append(out, s)
			seen[s] = true
		}
	}
	return out
}
