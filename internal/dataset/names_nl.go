package dataset

// Dutch name and place pools for the BHIC (North Brabant) configuration
// used by the scalability experiments. The civil registers of Brabant have
// their own onomastic profile: Latin-baptismal and Dutch vernacular first
// names, patronymic and toponymic surnames with tussenvoegsels, and
// Brabant municipalities as places.

var dutchMaleFirstNames = []string{
	"johannes", "petrus", "adrianus", "cornelis", "wilhelmus", "antonius",
	"henricus", "jacobus", "franciscus", "martinus", "lambertus", "gerardus",
	"theodorus", "nicolaas", "hendrik", "jan", "piet", "kees", "willem",
	"toon", "driek", "marinus", "christiaan", "josephus", "leonardus",
	"bernardus", "arnoldus", "gijsbertus", "hubertus", "paulus", "simon",
	"stephanus", "laurentius", "michiel", "dirk", "gerrit", "bart",
	"egidius", "walterus", "godefridus", "norbertus", "victor", "august",
	"eduardus", "ferdinand", "ludovicus", "mathijs", "quirinus", "rochus",
	"sebastiaan", "tiberius", "urbanus", "vincentius", "xaverius", "zacharias",
}

var dutchFemaleFirstNames = []string{
	"maria", "johanna", "adriana", "cornelia", "wilhelmina", "antonia",
	"henrica", "petronella", "francisca", "martina", "lamberta", "gerarda",
	"theodora", "anna", "catharina", "elisabeth", "hendrika", "jacoba",
	"mie", "jans", "drika", "helena", "christina", "josepha", "leonarda",
	"bernardina", "arnolda", "gijsberta", "huberta", "paulina", "geertruida",
	"stephana", "laurentia", "mechelina", "dirkje", "gerritje", "barbara",
	"aldegonda", "waltera", "godefrida", "norberta", "victoria", "augusta",
	"eduarda", "ferdinanda", "ludovica", "mathilda", "quirina", "rosalia",
	"sebastiana", "theresia", "ursula", "veronica", "walburga", "apollonia",
}

var dutchSurnames = []string{
	"van den berg", "de vries", "jansen", "van dijk", "bakker", "visser",
	"smulders", "van der heijden", "vermeulen", "van de ven", "smits",
	"peters", "hendriks", "van boxtel", "schellekens", "verhoeven",
	"van gestel", "de bruijn", "martens", "willems", "van rooij",
	"timmermans", "schoenmakers", "kuijpers", "van best", "aarts",
	"claessens", "damen", "evers", "franken", "geerts", "habraken",
	"ijpelaar", "joosten", "ketelaars", "leijten", "maas", "nouwens",
	"oomen", "pijnenburg", "quik", "roovers", "sanders", "teurlings",
	"uijtdewilligen", "verbakel", "wouters", "zeegers", "van asten",
	"van beek", "coppens", "van doorn", "engelen", "foolen", "goossens",
	"van hout", "van iersel", "jacobs", "knoops", "van laarhoven",
	"meijs", "van nunen", "van oirschot", "princen", "raaijmakers",
	"spijkers", "van tilburg", "uijens", "vugts", "van wanrooij",
}

var dutchPlaces = []string{
	"den bosch", "eindhoven", "tilburg", "breda", "helmond", "oss",
	"roosendaal", "bergen op zoom", "waalwijk", "uden", "veghel", "boxtel",
	"oisterwijk", "vught", "schijndel", "gemert", "deurne", "asten",
	"someren", "bladel", "eersel", "oirschot", "best", "son", "nuenen",
	"geldrop", "valkenswaard", "bergeijk", "hilvarenbeek", "goirle",
	"dongen", "rijen", "oosterhout", "made", "zevenbergen", "fijnaart",
	"steenbergen", "woensdrecht", "hoogerheide", "putte", "zundert",
	"rucphen", "etten", "prinsenbeek", "teteringen", "chaam", "alphen",
	"baarle", "reusel", "hapert", "duizel", "knegsel", "wintelre",
	"oerle", "zeelst", "meerveldhoven", "aalst", "waalre", "heeze",
	"leende", "maarheeze", "budel", "soerendonk", "gastel",
}

// dutchNicknames maps baptismal names to the vernacular forms the civil
// registers alternate between.
var dutchNicknames = map[string][]string{
	"johannes":   {"jan", "hannes", "jo"},
	"petrus":     {"piet", "peer"},
	"adrianus":   {"janus", "aad", "arie"},
	"cornelis":   {"kees", "cor", "nelis"},
	"wilhelmus":  {"willem", "wim"},
	"antonius":   {"toon", "anton", "teun"},
	"henricus":   {"hendrik", "driek", "hein"},
	"jacobus":    {"jaap", "koos", "sjaak"},
	"franciscus": {"frans", "cis"},
	"martinus":   {"tinus", "mart"},
	"gerardus":   {"gerrit", "sjra", "geert"},
	"theodorus":  {"dirk", "theo", "dorus"},
	"maria":      {"mie", "mieke", "marie"},
	"johanna":    {"jans", "jo", "anneke"},
	"adriana":    {"jaantje", "sjaan"},
	"cornelia":   {"kee", "neeltje", "cor"},
	"wilhelmina": {"mina", "wil"},
	"antonia":    {"tonia", "net"},
	"petronella": {"nel", "pieta"},
	"elisabeth":  {"bet", "lies", "betje"},
	"catharina":  {"kaat", "trien", "toos"},
	"henrica":    {"drika", "riek"},
}
