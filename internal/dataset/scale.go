package dataset

import (
	"fmt"
	"math/rand"

	"github.com/snaps/snaps/internal/model"
)

// This file holds the direct-emission generator behind the DS-scale bench
// tiers (100k–10M certificates). Config/Generate run a yearly demographic
// simulation whose per-year cost is proportional to everyone ever born, so
// it cannot reach millions of certificates in reasonable time. The scale
// generator instead emits complete households one at a time — marriage,
// births at one-to-three-year spacing, deaths inside the window — so cost
// is linear in the output and memory beyond the output is constant.
//
// The name substrate follows the simulation recipe of Herath & Roughan
// ("Simulating Name-like Vectors for Testing Large-scale Entity
// Resolution", PAPERS.md): the real regional pools seed the Zipf head so
// frequent values stay realistic (and nickname-able), and syllable-composed
// name-like strings fill the tail so a 10M-record corpus still has a
// plausible distinct-value count instead of recycling a few hundred names.
// Correlation comes from household structure (shared surnames and
// addresses, namesake children) and from villages whose surname draws are
// biased toward a community-local head, the way parish registers cluster.

// ScaleConfig parameterises the direct-emission generator.
type ScaleConfig struct {
	Name string
	Seed int64

	// TargetCerts stops emission once at least this many certificates
	// exist (the final household may overshoot by a handful).
	TargetCerts int

	// SurnameUniverse and GivenUniverse size the synthetic name pools.
	SurnameUniverse, GivenUniverse int

	// ZipfS skews the name draws, as in Config.
	ZipfS float64

	// StartYear..EndYear is the emission window.
	StartYear, EndYear int

	// NamesakeRate is the probability a child is named after the
	// same-gender parent (the Scottish naming tradition). It concentrates
	// given names within households, creating the within-family ambiguity
	// that stresses entity resolution.
	NamesakeRate float64

	// Villages partitions addresses into communities whose surname draws
	// rotate the Zipf head, so surnames correlate with addresses.
	Villages int

	// Error model, as in Config.
	TypoRate, NicknameRate float64
	MissingRate            map[model.Attr]float64
}

// ScaleTier returns the standard configuration for a bench tier of the
// given certificate count, with the DS missing-value profile.
func ScaleTier(certs int) ScaleConfig {
	return ScaleConfig{
		Name:            "DS-" + tierLabel(certs),
		Seed:            int64(9000 + certs%9973),
		TargetCerts:     certs,
		SurnameUniverse: 24000,
		GivenUniverse:   3600,
		ZipfS:           0.78,
		StartYear:       1855,
		EndYear:         1973,
		NamesakeRate:    0.28,
		Villages:        160,
		TypoRate:        0.08,
		NicknameRate:    0.10,
		MissingRate: map[model.Attr]float64{
			model.FirstName:  0.007,
			model.Surname:    0.0009,
			model.Address:    0.0013,
			model.Occupation: 0.58,
		},
	}
}

func tierLabel(certs int) string {
	switch {
	case certs >= 1000000 && certs%1000000 == 0:
		return fmt.Sprintf("%dM", certs/1000000)
	case certs >= 1000 && certs%1000 == 0:
		return fmt.Sprintf("%dk", certs/1000)
	}
	return fmt.Sprintf("%d", certs)
}

// GenerateScale emits a population of at least cfg.TargetCerts
// certificates. Output is deterministic for a given configuration.
func GenerateScale(cfg ScaleConfig) *Population {
	gcfg := Config{
		Name: cfg.Name, Seed: cfg.Seed,
		StartYear: cfg.StartYear, EndYear: cfg.EndYear,
		ZipfS:            cfg.ZipfS,
		Surnames:         syntheticSurnames(cfg.SurnameUniverse),
		Addresses:        syntheticStreets(cfg.Villages * streetsPerVillage),
		MaleFirstNames:   syntheticGivenNames(maleFirstNamesExt, cfg.GivenUniverse),
		FemaleFirstNames: syntheticGivenNames(femaleFirstNamesExt, cfg.GivenUniverse),
		Nicknames:        nicknames,
		TypoRate:         cfg.TypoRate, NicknameRate: cfg.NicknameRate,
		MissingRate: cfg.MissingRate,
	}
	g := &generator{
		cfg:     gcfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		hintRng: rand.New(rand.NewSource(cfg.Seed ^ 0x5ea1)),
		dataset: &model.Dataset{Name: cfg.Name},
	}
	g.maleZipf = newZipf(g.rng, len(gcfg.MaleFirstNames), cfg.ZipfS)
	g.femaleZipf = newZipf(g.rng, len(gcfg.FemaleFirstNames), cfg.ZipfS)
	g.surnameZipf = newZipf(g.rng, len(gcfg.Surnames), cfg.ZipfS)
	g.addrZipf = newZipf(g.rng, len(gcfg.Addresses), 1.05)
	g.occZipf = newZipf(g.rng, len(occupations), 1.1)
	g.causeZipf = newZipf(g.rng, len(deathCauses), 1.15)

	// Pre-size the output slabs; the household mix averages ~2.7 records
	// per certificate.
	g.dataset.Certificates = make([]model.Certificate, 0, cfg.TargetCerts+cfg.TargetCerts/64)
	g.dataset.Records = make([]model.Record, 0, cfg.TargetCerts*27/10)

	s := &scaleEmitter{generator: g, scfg: cfg}
	s.villageZipf = newZipf(g.rng, cfg.Villages, 1.0)
	for len(g.dataset.Certificates) < cfg.TargetCerts {
		s.emitHousehold()
	}
	return &Population{Config: gcfg, Persons: g.persons, Dataset: g.dataset}
}

// streetsPerVillage is the number of street names in one village's address
// block.
const streetsPerVillage = 12

// scaleEmitter drives the shared emit paths household by household.
type scaleEmitter struct {
	*generator
	scfg        ScaleConfig
	villageZipf *zipfSampler
}

// emitHousehold emits one complete family: the founding marriage, children
// at one-to-three-year spacing, and every death that falls inside the
// window. Certificates reference each other through the shared persons, so
// the household forms the same cross-certificate link structure (Bb-Dd,
// Bp-Dp, Mm-Bf, ...) the demographic simulation produces.
func (s *scaleEmitter) emitHousehold() {
	g := s.generator
	v := s.villageZipf.next()
	marriageYear := g.cfg.StartYear + g.rng.Intn(g.cfg.EndYear-g.cfg.StartYear-10)

	h := g.newPerson(model.Male, marriageYear-(21+g.rng.Intn(14)), model.NoPerson, model.NoPerson, s.villageSurname(v))
	w := g.newPerson(model.Female, marriageYear-(18+g.rng.Intn(12)), model.NoPerson, model.NoPerson, s.villageSurname(v))
	g.persons[h].Address = s.villageAddress(v)
	g.marry(h, w, marriageYear, true)

	members := []model.PersonID{h, w}
	year := marriageYear
	for i, n := 0, s.familySize(); i < n; i++ {
		year += 1 + g.rng.Intn(3)
		if year > g.cfg.EndYear {
			break
		}
		gender := model.Male
		if g.rng.Float64() < 0.49 {
			gender = model.Female
		}
		child := g.newPerson(gender, year, w, h, g.persons[h].Surname)
		s.applyNamesake(child, h, w)
		g.emitBirth(child, year)
		members = append(members, child)
	}

	for _, id := range members {
		p := &g.persons[id]
		dy := p.BirthYear + s.lifespan()
		if dy > p.BirthYear && dy >= g.cfg.StartYear && dy <= g.cfg.EndYear {
			p.DeathYear = dy
			g.emitDeath(id, dy)
		}
	}
}

// villageSurname draws a surname whose Zipf head is rotated per village:
// every village has its own handful of dominant families while the global
// tail stays shared.
func (s *scaleEmitter) villageSurname(v int) string {
	pool := s.generator.cfg.Surnames
	base := (v * 9973) % len(pool)
	return pool[(base+s.generator.surnameZipf.next())%len(pool)]
}

// villageAddress draws a house on one of the village's streets.
func (s *scaleEmitter) villageAddress(v int) string {
	streets := s.generator.cfg.Addresses
	idx := v*streetsPerVillage + s.generator.rng.Intn(streetsPerVillage)
	return fmt.Sprintf("%d %s", 1+s.generator.rng.Intn(60), streets[idx%len(streets)])
}

// applyNamesake renames a child after the same-gender parent with the
// configured probability.
func (s *scaleEmitter) applyNamesake(child, h, w model.PersonID) {
	g := s.generator
	if g.rng.Float64() >= s.scfg.NamesakeRate {
		return
	}
	cp := &g.persons[child]
	if cp.Gender == model.Male {
		cp.FirstName = g.persons[h].FirstName
	} else {
		cp.FirstName = g.persons[w].FirstName
	}
}

// familySize draws a geometric-ish child count with period-typical mean.
func (s *scaleEmitter) familySize() int {
	n := 0
	for n < 10 && s.generator.rng.Float64() < 0.78 {
		n++
	}
	return n
}

// lifespan draws age at death with the era's bathtub shape: high infant
// mortality, a long adult plateau, and an old-age mode.
func (s *scaleEmitter) lifespan() int {
	g := s.generator
	switch r := g.rng.Float64(); {
	case r < 0.12:
		return g.rng.Intn(2)
	case r < 0.20:
		return 2 + g.rng.Intn(13)
	case r < 0.45:
		return 15 + g.rng.Intn(40)
	default:
		return 55 + g.rng.Intn(35)
	}
}

// Syllable pools for composed name-like strings. Composition enumerates a
// mixed-radix index over the four slots, so every index below the product
// of the pool sizes yields a distinct string with no random search.
var (
	surPre = []string{"mac", "mc", "kil", "gil", "dal", "dun", "craig", "strath", "inver", "aber", "bal", "glen", "cal", "fin", "car", "loch", "blair", "kin", "pit"}
	surMid = []string{"", "a", "e", "o", "an", "ar", "en", "in", "on", "al", "el", "il", "ol", "ra", "ri", "ro", "na", "ne", "ni", "no", "la", "le", "li", "lo", "der", "ver"}
	surSuf = []string{"son", "ton", "ley", "well", "den", "der", "ert", "and", "ane", "och", "agh", "ie", "ay", "an", "mond", "ning", "more", "dale"}

	givenPre = []string{"al", "an", "ar", "be", "ca", "do", "ed", "el", "fi", "ge", "he", "is", "ja", "jo", "ke", "la", "ma", "ni", "ro", "wi"}
	givenMid = []string{"", "b", "d", "l", "ll", "m", "n", "nn", "r", "rr", "s", "ss", "t", "tt", "v"}
	givenSuf = []string{"a", "an", "as", "e", "el", "en", "ert", "et", "ia", "ie", "in", "ina", "is", "on", "us", "y"}
)

// composeNames appends mixed-radix syllable compositions to base until it
// holds n distinct entries (or the composition space is exhausted).
func composeNames(base []string, n int, pre, mid, suf []string) []string {
	out := append([]string{}, base...)
	seen := make(map[string]bool, n)
	for _, s := range out {
		seen[s] = true
	}
	limit := len(pre) * len(mid) * len(mid) * len(suf)
	for i := 0; len(out) < n && i < limit; i++ {
		s := pre[i%len(pre)] +
			mid[(i/len(pre))%len(mid)] +
			mid[(i/(len(pre)*len(mid)))%len(mid)] +
			suf[(i/(len(pre)*len(mid)*len(mid)))%len(suf)]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func syntheticSurnames(n int) []string {
	base := append(append([]string{}, skyeSurnamesExt...), kilSurnamesExt...)
	return composeNames(dedupe(base), n, surPre, surMid, surSuf)
}

func syntheticGivenNames(base []string, n int) []string {
	return composeNames(base, n, givenPre, givenMid, givenSuf)
}

// syntheticStreets composes street names for the village blocks, seeded
// with the real regional address pools.
func syntheticStreets(n int) []string {
	base := append(append([]string{}, skyeAddresses...), kilmarnockAddresses...)
	return composeNames(dedupe(base), n, surPre, surMid, surSuf)
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
