package dataset

import (
	"testing"

	"github.com/snaps/snaps/internal/model"
)

func TestGenerateScaleDeterministic(t *testing.T) {
	cfg := ScaleTier(3000)
	a := GenerateScale(cfg)
	b := GenerateScale(cfg)
	if len(a.Dataset.Records) != len(b.Dataset.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Dataset.Records), len(b.Dataset.Records))
	}
	if len(a.Dataset.Certificates) != len(b.Dataset.Certificates) {
		t.Fatalf("cert counts differ")
	}
	for i := range a.Dataset.Records {
		if a.Dataset.Records[i] != b.Dataset.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateScaleShape(t *testing.T) {
	target := 5000
	p := GenerateScale(ScaleTier(target))
	d := p.Dataset

	if len(d.Certificates) < target {
		t.Fatalf("only %d certificates for target %d", len(d.Certificates), target)
	}
	if len(d.Certificates) > target+64 {
		t.Fatalf("overshot target by %d certificates", len(d.Certificates)-target)
	}
	rpc := float64(len(d.Records)) / float64(len(d.Certificates))
	if rpc < 1.8 || rpc > 4 {
		t.Fatalf("records per certificate = %.2f, want household-like mix", rpc)
	}

	// The name substrate must have a long tail (no recycling a tiny pool)
	// and household correlation (children share the father's surname).
	surnames := map[string]int{}
	types := map[model.CertType]int{}
	for i := range d.Records {
		if s := d.Records[i].Surname(); s != "" {
			surnames[s]++
		}
	}
	for i := range d.Certificates {
		types[d.Certificates[i].Type]++
	}
	if len(surnames) < 500 {
		t.Fatalf("only %d distinct surnames at %d records", len(surnames), len(d.Records))
	}
	for _, ct := range []model.CertType{model.Birth, model.Death, model.Marriage} {
		if types[ct] == 0 {
			t.Fatalf("no certificates of type %v", ct)
		}
	}

	// Ground truth present: records carry person ids and persons link
	// children to parents.
	linked := 0
	for i := range p.Persons {
		if p.Persons[i].Mother != model.NoPerson {
			linked++
		}
	}
	if linked == 0 {
		t.Fatal("no parent-linked persons")
	}
	for i := range d.Records {
		if d.Records[i].Truth == model.NoPerson {
			t.Fatalf("record %d lacks ground truth", i)
		}
	}
}

func TestComposeNamesDistinct(t *testing.T) {
	names := composeNames(nil, 24000, surPre, surMid, surSuf)
	if len(names) != 24000 {
		t.Fatalf("got %d names, want 24000", len(names))
	}
	seen := map[string]bool{}
	for _, s := range names {
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
}
