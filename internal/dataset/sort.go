package dataset

import "sort"

// sortSlice is a tiny generic wrapper over sort.Slice providing a stable
// call site for the package's deterministic orderings.
func sortSlice[T any](s []T, less func(i, j int) bool) {
	sort.Slice(s, less)
}
