package depgraph

import (
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

// BenchmarkCompareAttrHot measures the per-candidate scoring loop the
// streamed build spends its atomic phase in: all four compared attributes
// of realistic candidate pairs, after the feature slab and the
// symbol-pair memo are warm. This is the steady-state cost of one
// candidate once Zipf-shaped repeats dominate — the allocs/op of this
// loop must stay 0.
func BenchmarkCompareAttrHot(b *testing.B) {
	d := dataset.Generate(dataset.IOS().Scaled(0.05)).Dataset
	cfg := DefaultConfig()
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, recordIDs(d))
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	// Warm the memo and the feature slab with one full pass.
	for _, c := range cands {
		ra, rb := d.Record(c.A), d.Record(c.B)
		for _, attr := range compareAttrs {
			CompareAttr(cfg, ra, rb, attr)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		ra, rb := d.Record(c.A), d.Record(c.B)
		for _, attr := range compareAttrs {
			CompareAttr(cfg, ra, rb, attr)
		}
	}
}

// BenchmarkJaroKernelCold measures NameSim through CompareAttr on
// never-memoised pairs by clearing nothing but cycling through distinct
// record pairs — dominated by memo misses plus the underlying kernels.
func BenchmarkCompareAttrColdish(b *testing.B) {
	d := dataset.Generate(dataset.IOS().Scaled(0.05)).Dataset
	cfg := DefaultConfig()
	recs := len(d.Records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra := d.Record(model.RecordID(i % recs))
		rb := d.Record(model.RecordID((i*7 + 13) % recs))
		for _, attr := range compareAttrs {
			CompareAttr(cfg, ra, rb, attr)
		}
	}
}
