// Package depgraph builds the dependency graph G_D of Sec. 4.1 of the
// paper: atomic nodes represent pairs of QID values with their string
// similarity, relational nodes represent candidate record pairs, and edges
// connect relational nodes whose underlying records are related by the same
// family relationship on both certificates.
//
// Relational nodes between one pair of certificates that are connected by
// relationship edges form a node group (e.g. the aligned (baby,deceased),
// (mother,mother), (father,father) pairs between a birth and a death
// certificate). Groups are the unit of bootstrapping and merging in the
// SNAPS ER process, because they carry the relationship evidence.
package depgraph

import (
	"runtime"
	"slices"
	"sync"
	"time"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/constraint"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/simcache"
	"github.com/snaps/snaps/internal/strsim"
)

// compareAttrs lists the attributes compared during graph construction.
var compareAttrs = []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation}

// parallelRange splits [0,n) into chunks and runs fn on each concurrently.
func parallelRange(workers, n int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AtomicKey identifies an atomic node: an attribute plus a canonical
// (ordered) pair of interned values. Keying by symbol ID instead of by the
// strings makes interning a pair of integer compares and a small-key map
// probe; the canonical order (ascending ID) differs from the old
// lexicographic order, but a canonical order only has to be consistent —
// the set of distinct keys, and therefore the graph, is unchanged.
type AtomicKey struct {
	Attr model.Attr
	A, B model.Sym
}

// MakeAtomicKey returns the canonical key for an attribute value pair.
func MakeAtomicKey(attr model.Attr, a, b model.Sym) AtomicKey {
	if b < a {
		a, b = b, a
	}
	return AtomicKey{Attr: attr, A: a, B: b}
}

// AtomicNode is a pair of QID values with their similarity.
type AtomicNode struct {
	Key AtomicKey
	Sim float64
}

// NodeID indexes a relational node within a Graph.
type NodeID int32

// RelationalNode is a candidate record pair.
type RelationalNode struct {
	ID   NodeID
	A, B model.RecordID
	// Atomic binds, per attribute, the atomic node currently supporting
	// this relational node; -1 when the attribute contributes no atomic
	// node (missing value or similarity below threshold).
	Atomic [model.NumAttrs]int32
	// Group is the node group this node belongs to.
	Group GroupID
	// Neighbours lists relational nodes connected by a shared family
	// relationship, labelled with that relationship.
	Neighbours []Neighbour
	// Merged is set once the ER process links the pair.
	Merged bool
}

// Neighbour is a relationship-labelled edge to another relational node.
type Neighbour struct {
	Node NodeID
	Rel  model.Relationship
}

// GroupID indexes a node group within a Graph.
type GroupID int32

// Group is a set of relational nodes between one certificate pair connected
// by relationship edges. Singleton groups contain one node.
type Group struct {
	ID    GroupID
	Nodes []NodeID
}

// Config tunes dependency-graph construction.
type Config struct {
	// AtomicThreshold is t_a: minimum similarity for a QID value pair to
	// become an atomic node (paper default 0.9).
	AtomicThreshold float64
	// GeoMaxKm converts geocoded address distance to similarity; used only
	// for records with coordinates.
	GeoMaxKm float64
	// Workers bounds the goroutines used for the similarity computations
	// of the atomic phase; 0 uses GOMAXPROCS. Results are deterministic
	// regardless of worker count.
	Workers int
}

// DefaultConfig returns the paper's parameters. GeoMaxKm is chosen so that
// houses in the same settlement score high but below the atomic threshold
// unless they are the same household.
func DefaultConfig() Config { return Config{AtomicThreshold: 0.9, GeoMaxKm: 5} }

// Graph is the dependency graph G_D.
type Graph struct {
	Dataset *model.Dataset
	Config  Config

	// Atomics stores the atomic nodes; AtomicIndex maps keys to indices.
	Atomics     []AtomicNode
	AtomicIndex map[AtomicKey]int32

	Nodes  []RelationalNode
	Groups []Group

	// pairIndex maps a record pair to its relational node.
	pairIndex map[model.PairKey]NodeID
}

// Node returns the relational node with the given id.
func (g *Graph) Node(id NodeID) *RelationalNode { return &g.Nodes[id] }

// Group returns the group with the given id.
func (g *Graph) Group(id GroupID) *Group { return &g.Groups[id] }

// NodeFor returns the relational node for a record pair, if any.
func (g *Graph) NodeFor(a, b model.RecordID) (NodeID, bool) {
	id, ok := g.pairIndex[model.MakePairKey(a, b)]
	return id, ok
}

// AtomicSim returns the similarity of the atomic node bound to the given
// attribute of a relational node, and whether one is bound.
func (g *Graph) AtomicSim(n *RelationalNode, attr model.Attr) (float64, bool) {
	idx := n.Atomic[attr]
	if idx < 0 {
		return 0, false
	}
	return g.Atomics[idx].Sim, true
}

// CompareAttr computes the similarity of two records' values for an
// attribute using the attribute-appropriate comparison function: Jaro-
// Winkler for names, geodesic or bigram-Jaccard similarity for addresses,
// token-Jaccard for occupations. It returns ok=false when either value is
// missing (missing values are no evidence, not negative evidence).
func CompareAttr(cfg Config, a, b *model.Record, attr model.Attr) (sim float64, ok bool) {
	switch attr {
	case model.FirstName:
		if a.First == 0 || b.First == 0 {
			return 0, false
		}
		// NameSim extends Jaro-Winkler with Monge-Elkan token matching so
		// transposed or partially recorded double forenames still compare.
		return simcache.NameSim(a.First, b.First), true
	case model.Surname:
		if a.Sur == 0 || b.Sur == 0 {
			return 0, false
		}
		// Token-aware comparison also handles multi-token surnames with
		// tussenvoegsels ("van den berg") in the BHIC data.
		return simcache.NameSim(a.Sur, b.Sur), true
	case model.Address:
		if a.Addr == 0 || b.Addr == 0 {
			return 0, false
		}
		if a.Lat != 0 && b.Lat != 0 {
			// Geocoded pairs compare by coordinates — a function of the
			// records, not of the value pair, so never memoised.
			return strsim.GeoSim(a.Lat, a.Lon, b.Lat, b.Lon, cfg.GeoMaxKm), true
		}
		// String-compared (geo-less) addresses are a pure function of the
		// value pair and ride the process-wide memo like the other
		// attributes (this used to be the one unmemoised string path).
		return simcache.Jaccard(a.Addr, b.Addr), true
	case model.Occupation:
		if a.Occ == 0 || b.Occ == 0 {
			return 0, false
		}
		return simcache.TokenJaccard(a.Occ, b.Occ), true
	}
	return 0, false
}

// AttrComparable reports whether both records carry a value for attr — the
// ok half of CompareAttr without the similarity math. The bootstrap
// scorer's strict category counting needs only presence.
func AttrComparable(a, b *model.Record, attr model.Attr) bool {
	return a.Sym(attr) != 0 && b.Sym(attr) != 0
}

// BuildStats reports the wall-clock time of the two graph-construction
// phases, matching the "Generate N_A time" and "Generate N_R time" columns
// of Table 6 of the paper, plus the number of candidate pairs scored.
type BuildStats struct {
	GenAtomic     time.Duration
	GenRelational time.Duration
	// Candidates counts the candidate pairs streamed through the build
	// (the sum of all chunk lengths).
	Candidates int
}

// GCRebaseMinCandidates gates the forced collections that re-base GC
// pacing between offline-build phases (the stream→materialise boundary in
// BuildStream, the graph→resolve boundary in er.RunLSH): builds that
// streamed at least this many candidate pairs are DS-scale offline builds
// where peak heap matters more than one GC pause; smaller builds (tests,
// incremental Extend flushes) skip it.
const GCRebaseMinCandidates = 1 << 22

// buildChunkSize bounds the candidate pairs scored per streamed chunk; the
// per-chunk scratch slabs (similarities, presence flags, atomic bindings)
// are sized by it and reused, so graph construction memory no longer grows
// with the total candidate count.
const buildChunkSize = 1 << 16

// Build constructs the dependency graph from blocking candidates. Candidate
// pairs must already be gender-filtered; Build additionally applies the
// constraint validator's pair filter (impossible role types and temporal
// constraints, the paper's "two filtering steps") and requires at least one
// supporting atomic node on a name attribute.
//
// Build is the materialised-slice adapter over BuildStream: the slice is
// fed through the same chunked engine, so both entry points share one
// (golden-tested) code path.
func Build(d *model.Dataset, cfg Config, cands []blocking.Candidate) (*Graph, BuildStats) {
	return BuildStream(d, cfg, func(emit func(chunk []blocking.Candidate)) {
		for lo := 0; lo < len(cands); lo += buildChunkSize {
			hi := lo + buildChunkSize
			if hi > len(cands) {
				hi = len(cands)
			}
			emit(cands[lo:hi])
		}
	})
}

// BuildStream constructs the dependency graph from a stream of candidate
// chunks. stream must call emit once per chunk, in order; chunk slices are
// only read during the emit call and may be reused by the producer.
//
// Each chunk is scored in parallel into fixed-size scratch, then interned
// serially. Because chunks arrive in the same order the candidates would
// occupy in one big slice, and both the atomic-node interning and the
// relational-node appending are serial per chunk, the first-occurrence
// orders — and therefore every node and group ID — are identical to the
// monolithic build at any chunk size and worker count. Atomic and
// relational nodes live in separate slices with independent ID spaces, so
// interleaving their construction across chunks cannot renumber anything.
func BuildStream(d *model.Dataset, cfg Config, stream func(emit func(chunk []blocking.Candidate))) (*Graph, BuildStats) {
	g := &Graph{
		Dataset:     d,
		Config:      cfg,
		AtomicIndex: map[AtomicKey]int32{},
		pairIndex:   map[model.PairKey]NodeID{},
	}
	var stats BuildStats
	v := constraint.NewValidator(d)

	// Chunk-sized scratch, reused across chunks.
	var (
		sims        [][model.NumAttrs]float64
		present     [][model.NumAttrs]bool
		atomicOf    [][model.NumAttrs]int32
		nameSupport []bool
	)

	// Surviving relational nodes are staged in fixed-size slabs and copied
	// into one exactly-sized g.Nodes slice after the stream ends. Growing a
	// multi-hundred-megabyte slice by appending reallocates ~5x its final
	// footprint cumulatively and transiently holds both the old and new
	// slab; the slab staging allocates each node's bytes twice total and
	// never overshoots. NodeIDs are positional, so staging order IS final
	// order.
	const nodeSlabShift = 14 // 16384 nodes (~1.5 MB) per slab
	var nodeSlabs [][]RelationalNode
	nodeCount := 0

	stream(func(chunk []blocking.Candidate) {
		n := len(chunk)
		if n == 0 {
			return
		}
		stats.Candidates += n
		if cap(sims) < n {
			sims = make([][model.NumAttrs]float64, n)
			present = make([][model.NumAttrs]bool, n)
			atomicOf = make([][model.NumAttrs]int32, n)
			nameSupport = make([]bool, n)
		}
		sims, present = sims[:n], present[:n]
		atomicOf, nameSupport = atomicOf[:n], nameSupport[:n]

		// Phase 1a: score the chunk in parallel. Similarities are pure
		// functions of the value pairs, memoised process-wide by symbol
		// pair (internal/simcache), so repeats across chunks, workers, and
		// Extend flushes are computed once.
		t0 := time.Now()
		parallelRange(cfg.Workers, n, func(lo, hi int) {
			for ci := lo; ci < hi; ci++ {
				c := chunk[ci]
				ra, rb := d.Record(c.A), d.Record(c.B)
				for _, attr := range compareAttrs {
					if s, ok := CompareAttr(cfg, ra, rb, attr); ok {
						sims[ci][attr] = s
						present[ci][attr] = true
					} else {
						present[ci][attr] = false
					}
				}
			}
		})
		// Phase 1b: intern atomic nodes serially, in candidate order (the
		// interning map is shared, and serial interning keeps node ids
		// deterministic).
		for ci := range chunk {
			c := chunk[ci]
			ra, rb := d.Record(c.A), d.Record(c.B)
			var atomic [model.NumAttrs]int32
			for i := range atomic {
				atomic[i] = -1
			}
			nameSupport[ci] = false
			for _, attr := range compareAttrs {
				if !present[ci][attr] || sims[ci][attr] < cfg.AtomicThreshold {
					continue
				}
				atomic[attr] = g.addAtomic(attr, ra.Sym(attr), rb.Sym(attr), sims[ci][attr])
				if attr == model.FirstName || attr == model.Surname {
					nameSupport[ci] = true
				}
			}
			atomicOf[ci] = atomic
		}
		stats.GenAtomic += time.Since(t0)

		// Phase 2 (per chunk): filter impossible role pairs and temporal
		// violations and append the surviving relational nodes. Both
		// predicates depend only on the pair itself, so filtering per
		// chunk equals filtering after full materialisation.
		t1 := time.Now()
		for ci := range chunk {
			c := chunk[ci]
			if !nameSupport[ci] || !v.BuildOK(c.A, c.B) {
				continue
			}
			id := NodeID(nodeCount)
			if si := nodeCount >> nodeSlabShift; si == len(nodeSlabs) {
				nodeSlabs = append(nodeSlabs, make([]RelationalNode, 0, 1<<nodeSlabShift))
			}
			si := nodeCount >> nodeSlabShift
			nodeSlabs[si] = append(nodeSlabs[si], RelationalNode{
				ID: id, A: c.A, B: c.B, Atomic: atomicOf[ci], Group: -1,
			})
			nodeCount++
			g.pairIndex[model.MakePairKey(c.A, c.B)] = id
		}
		stats.GenRelational += time.Since(t1)
	})

	// For DS-scale builds, re-base GC pacing on the post-stream live set
	// before the heaviest transient of the build (the node materialise
	// below briefly holds the staged slabs and the final slice at once):
	// the producer's blocking state and the chunk scratch just became
	// garbage, but with GOGC headroom the collector would otherwise sit on
	// them through the edge/group phases and let the heap peak near twice
	// the live set. One forced collection here costs well under a second
	// against a multi-minute build and is gated on candidate volume so
	// incremental Extend flushes never pay it.
	sims, present, atomicOf, nameSupport = nil, nil, nil, nil
	if stats.Candidates >= GCRebaseMinCandidates {
		runtime.GC()
	}

	// Materialise the staged nodes into one exactly-sized slice and drop
	// the slabs before the edge/group phases allocate.
	g.Nodes = make([]RelationalNode, 0, nodeCount)
	for i, slab := range nodeSlabs {
		g.Nodes = append(g.Nodes, slab...)
		nodeSlabs[i] = nil
	}
	nodeSlabs = nil

	// Relationship edges and groups need the complete node set.
	t2 := time.Now()
	g.connectRelationships()
	g.buildGroups()
	stats.GenRelational += time.Since(t2)
	return g, stats
}

// addAtomic interns an atomic node and returns its index.
func (g *Graph) addAtomic(attr model.Attr, a, b model.Sym, sim float64) int32 {
	key := MakeAtomicKey(attr, a, b)
	if idx, ok := g.AtomicIndex[key]; ok {
		return idx
	}
	idx := int32(len(g.Atomics))
	g.Atomics = append(g.Atomics, AtomicNode{Key: key, Sim: sim})
	g.AtomicIndex[key] = idx
	return idx
}

// connectRelationships adds an edge between relational nodes (a1,b1) and
// (a2,b2) when a1 and a2 are related on their certificate by the same
// relationship as b1 and b2 on theirs (e.g. both are motherOf the records
// of the other node).
func (g *Graph) connectRelationships() {
	d := g.Dataset
	// relTo[cert] maps a record to its relationship-labelled certificate
	// co-mentions: rel[from] = list of (to, rel).
	type relEdge struct {
		to  model.RecordID
		rel model.Relationship
	}
	relOf := map[model.RecordID][]relEdge{}
	for ci := range d.Certificates {
		cert := &d.Certificates[ci]
		for _, cr := range model.RelationsFor(cert.Type) {
			from, okF := cert.Roles[cr.From]
			to, okT := cert.Roles[cr.To]
			if !okF || !okT {
				continue
			}
			relOf[from] = append(relOf[from], relEdge{to: to, rel: cr.Rel})
		}
	}
	// Each node's neighbour list is written only by the worker owning that
	// node; relOf and pairIndex are read-only here, so the wiring loop
	// parallelises without synchronisation, and per-node dedup+sort keeps
	// the result independent of the worker count.
	parallelRange(g.Config.Workers, len(g.Nodes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := &g.Nodes[i]
			for _, ea := range relOf[n.A] {
				for _, eb := range relOf[n.B] {
					if ea.rel != eb.rel {
						continue
					}
					if other, ok := g.NodeFor(ea.to, eb.to); ok {
						n.Neighbours = append(n.Neighbours, Neighbour{Node: other, Rel: ea.rel})
					}
				}
			}
			if len(n.Neighbours) < 2 {
				continue
			}
			// Deduplicate and sort the neighbour list for determinism.
			// (slices.SortFunc, unlike sort.Slice, allocates no closure or
			// reflect swapper — this runs once per multi-neighbour node.)
			slices.SortFunc(n.Neighbours, func(a, b Neighbour) int {
				if a.Node != b.Node {
					return int(a.Node) - int(b.Node)
				}
				return int(a.Rel) - int(b.Rel)
			})
			out := n.Neighbours[:1]
			for _, nb := range n.Neighbours[1:] {
				if nb != out[len(out)-1] {
					out = append(out, nb)
				}
			}
			n.Neighbours = out
		}
	})
}

// buildGroups forms node groups as connected components over relationship
// edges, restricted to nodes between the same certificate pair so that a
// group corresponds to one hypothesis "these two certificates mention the
// same family".
func (g *Graph) buildGroups() {
	d := g.Dataset
	// Certificate pairs are pure per-node lookups; precompute them in
	// parallel so the serial component walk below only chases pointers.
	certPairs := make([][2]model.CertID, len(g.Nodes))
	parallelRange(g.Config.Workers, len(g.Nodes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := &g.Nodes[i]
			ca, cb := d.Record(n.A).Cert, d.Record(n.B).Cert
			if cb < ca {
				ca, cb = cb, ca
			}
			certPairs[i] = [2]model.CertID{ca, cb}
		}
	})
	// The component walk stays serial: group ids must be numbered by their
	// smallest member node id (the resolver's queue tie-break), which the
	// ascending scan guarantees for free. The walk itself is O(nodes+edges)
	// pointer chasing — negligible next to the similarity phases.
	//
	// Every node lands in exactly one group, so all member lists share one
	// arena sized len(Nodes): the backing array never reallocates, each
	// group's Nodes slice is a window into it, and the millions of
	// per-group slice allocations (most groups are singletons at DS scale)
	// collapse into one slab. Groups themselves stage in fixed-size slabs
	// and materialise exactly sized, like the relational nodes.
	visited := make([]bool, len(g.Nodes))
	memberArena := make([]NodeID, 0, len(g.Nodes))
	var stack []NodeID
	const groupSlabShift = 15 // 32768 groups (~1 MB) per slab
	var groupSlabs [][]Group
	groupCount := 0
	for i := range g.Nodes {
		if visited[i] {
			continue
		}
		gid := GroupID(groupCount)
		start := len(memberArena)
		stack = append(stack[:0], NodeID(i))
		visited[i] = true
		cp := certPairs[i]
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := &g.Nodes[id]
			n.Group = gid
			memberArena = append(memberArena, id)
			for _, nb := range n.Neighbours {
				if visited[nb.Node] {
					continue
				}
				if certPairs[nb.Node] != cp {
					continue
				}
				visited[nb.Node] = true
				stack = append(stack, nb.Node)
			}
		}
		members := memberArena[start:len(memberArena):len(memberArena)]
		slices.Sort(members)
		if si := groupCount >> groupSlabShift; si == len(groupSlabs) {
			groupSlabs = append(groupSlabs, make([]Group, 0, 1<<groupSlabShift))
		}
		groupSlabs[groupCount>>groupSlabShift] = append(groupSlabs[groupCount>>groupSlabShift], Group{ID: gid, Nodes: members})
		groupCount++
	}
	g.Groups = make([]Group, 0, groupCount)
	for i, slab := range groupSlabs {
		g.Groups = append(g.Groups, slab...)
		groupSlabs[i] = nil
	}
}
