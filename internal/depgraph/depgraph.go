// Package depgraph builds the dependency graph G_D of Sec. 4.1 of the
// paper: atomic nodes represent pairs of QID values with their string
// similarity, relational nodes represent candidate record pairs, and edges
// connect relational nodes whose underlying records are related by the same
// family relationship on both certificates.
//
// Relational nodes between one pair of certificates that are connected by
// relationship edges form a node group (e.g. the aligned (baby,deceased),
// (mother,mother), (father,father) pairs between a birth and a death
// certificate). Groups are the unit of bootstrapping and merging in the
// SNAPS ER process, because they carry the relationship evidence.
package depgraph

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/constraint"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/strsim"
)

// compareAttrs lists the attributes compared during graph construction.
var compareAttrs = []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation}

// parallelRange splits [0,n) into chunks and runs fn on each concurrently.
func parallelRange(workers, n int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AtomicKey identifies an atomic node: an attribute plus a canonical
// (ordered) pair of values.
type AtomicKey struct {
	Attr model.Attr
	A, B string
}

// MakeAtomicKey returns the canonical key for an attribute value pair.
func MakeAtomicKey(attr model.Attr, a, b string) AtomicKey {
	if b < a {
		a, b = b, a
	}
	return AtomicKey{Attr: attr, A: a, B: b}
}

// AtomicNode is a pair of QID values with their similarity.
type AtomicNode struct {
	Key AtomicKey
	Sim float64
}

// NodeID indexes a relational node within a Graph.
type NodeID int32

// RelationalNode is a candidate record pair.
type RelationalNode struct {
	ID   NodeID
	A, B model.RecordID
	// Atomic binds, per attribute, the atomic node currently supporting
	// this relational node; -1 when the attribute contributes no atomic
	// node (missing value or similarity below threshold).
	Atomic [model.NumAttrs]int32
	// Group is the node group this node belongs to.
	Group GroupID
	// Neighbours lists relational nodes connected by a shared family
	// relationship, labelled with that relationship.
	Neighbours []Neighbour
	// Merged is set once the ER process links the pair.
	Merged bool
}

// Neighbour is a relationship-labelled edge to another relational node.
type Neighbour struct {
	Node NodeID
	Rel  model.Relationship
}

// GroupID indexes a node group within a Graph.
type GroupID int32

// Group is a set of relational nodes between one certificate pair connected
// by relationship edges. Singleton groups contain one node.
type Group struct {
	ID    GroupID
	Nodes []NodeID
}

// Config tunes dependency-graph construction.
type Config struct {
	// AtomicThreshold is t_a: minimum similarity for a QID value pair to
	// become an atomic node (paper default 0.9).
	AtomicThreshold float64
	// GeoMaxKm converts geocoded address distance to similarity; used only
	// for records with coordinates.
	GeoMaxKm float64
	// Workers bounds the goroutines used for the similarity computations
	// of the atomic phase; 0 uses GOMAXPROCS. Results are deterministic
	// regardless of worker count.
	Workers int
}

// DefaultConfig returns the paper's parameters. GeoMaxKm is chosen so that
// houses in the same settlement score high but below the atomic threshold
// unless they are the same household.
func DefaultConfig() Config { return Config{AtomicThreshold: 0.9, GeoMaxKm: 5} }

// Graph is the dependency graph G_D.
type Graph struct {
	Dataset *model.Dataset
	Config  Config

	// Atomics stores the atomic nodes; AtomicIndex maps keys to indices.
	Atomics     []AtomicNode
	AtomicIndex map[AtomicKey]int32

	Nodes  []RelationalNode
	Groups []Group

	// pairIndex maps a record pair to its relational node.
	pairIndex map[model.PairKey]NodeID
}

// Node returns the relational node with the given id.
func (g *Graph) Node(id NodeID) *RelationalNode { return &g.Nodes[id] }

// Group returns the group with the given id.
func (g *Graph) Group(id GroupID) *Group { return &g.Groups[id] }

// NodeFor returns the relational node for a record pair, if any.
func (g *Graph) NodeFor(a, b model.RecordID) (NodeID, bool) {
	id, ok := g.pairIndex[model.MakePairKey(a, b)]
	return id, ok
}

// AtomicSim returns the similarity of the atomic node bound to the given
// attribute of a relational node, and whether one is bound.
func (g *Graph) AtomicSim(n *RelationalNode, attr model.Attr) (float64, bool) {
	idx := n.Atomic[attr]
	if idx < 0 {
		return 0, false
	}
	return g.Atomics[idx].Sim, true
}

// CompareAttr computes the similarity of two records' values for an
// attribute using the attribute-appropriate comparison function: Jaro-
// Winkler for names, geodesic or bigram-Jaccard similarity for addresses,
// token-Jaccard for occupations. It returns ok=false when either value is
// missing (missing values are no evidence, not negative evidence).
func CompareAttr(cfg Config, a, b *model.Record, attr model.Attr) (sim float64, ok bool) {
	switch attr {
	case model.FirstName:
		if a.First == 0 || b.First == 0 {
			return 0, false
		}
		// NameSim extends Jaro-Winkler with Monge-Elkan token matching so
		// transposed or partially recorded double forenames still compare.
		return strsim.NameSim(a.FirstName(), b.FirstName()), true
	case model.Surname:
		if a.Sur == 0 || b.Sur == 0 {
			return 0, false
		}
		// Token-aware comparison also handles multi-token surnames with
		// tussenvoegsels ("van den berg") in the BHIC data.
		return strsim.NameSim(a.Surname(), b.Surname()), true
	case model.Address:
		if a.Addr == 0 || b.Addr == 0 {
			return 0, false
		}
		if a.Lat != 0 && b.Lat != 0 {
			return strsim.GeoSim(a.Lat, a.Lon, b.Lat, b.Lon, cfg.GeoMaxKm), true
		}
		return strsim.Jaccard(a.Address(), b.Address()), true
	case model.Occupation:
		if a.Occ == 0 || b.Occ == 0 {
			return 0, false
		}
		return strsim.TokenJaccard(a.Occupation(), b.Occupation()), true
	}
	return 0, false
}

// BuildStats reports the wall-clock time of the two graph-construction
// phases, matching the "Generate N_A time" and "Generate N_R time" columns
// of Table 6 of the paper.
type BuildStats struct {
	GenAtomic     time.Duration
	GenRelational time.Duration
}

// Build constructs the dependency graph from blocking candidates. Candidate
// pairs must already be gender-filtered; Build additionally applies the
// constraint validator's pair filter (impossible role types and temporal
// constraints, the paper's "two filtering steps") and requires at least one
// supporting atomic node on a name attribute.
func Build(d *model.Dataset, cfg Config, cands []blocking.Candidate) (*Graph, BuildStats) {
	g := &Graph{
		Dataset:     d,
		Config:      cfg,
		AtomicIndex: map[AtomicKey]int32{},
		pairIndex:   map[model.PairKey]NodeID{},
	}
	var stats BuildStats

	// Phase 1: atomic nodes — compare QID value pairs in parallel, then
	// intern those at or above the threshold t_a serially (the interning
	// map is shared, and serial interning keeps node ids deterministic).
	t0 := time.Now()
	sims := make([][model.NumAttrs]float64, len(cands))
	present := make([][model.NumAttrs]bool, len(cands))
	parallelRange(cfg.Workers, len(cands), func(lo, hi int) {
		// Per-worker value-pair memo: candidate pairs repeat the same name
		// and occupation value pairs constantly (that repetition is why
		// atomic nodes are interned at all), and these comparisons are pure
		// functions of the two strings. Address is excluded — geocoded
		// records compare by coordinates, not by the address string alone.
		memo := make(map[AtomicKey]float64)
		for ci := lo; ci < hi; ci++ {
			c := cands[ci]
			ra, rb := d.Record(c.A), d.Record(c.B)
			for _, attr := range compareAttrs {
				if attr == model.Address {
					if s, ok := CompareAttr(cfg, ra, rb, attr); ok {
						sims[ci][attr] = s
						present[ci][attr] = true
					}
					continue
				}
				va, vb := ra.Value(attr), rb.Value(attr)
				if va == "" || vb == "" {
					continue
				}
				key := MakeAtomicKey(attr, va, vb)
				s, ok := memo[key]
				if !ok {
					s, _ = CompareAttr(cfg, ra, rb, attr)
					memo[key] = s
				}
				sims[ci][attr] = s
				present[ci][attr] = true
			}
		}
	})
	atomicOf := make([][model.NumAttrs]int32, len(cands))
	nameSupport := make([]bool, len(cands))
	for ci, c := range cands {
		ra, rb := d.Record(c.A), d.Record(c.B)
		var atomic [model.NumAttrs]int32
		for i := range atomic {
			atomic[i] = -1
		}
		for _, attr := range compareAttrs {
			if !present[ci][attr] || sims[ci][attr] < cfg.AtomicThreshold {
				continue
			}
			atomic[attr] = g.addAtomic(attr, ra.Value(attr), rb.Value(attr), sims[ci][attr])
			if attr == model.FirstName || attr == model.Surname {
				nameSupport[ci] = true
			}
		}
		atomicOf[ci] = atomic
	}
	stats.GenAtomic = time.Since(t0)

	// Phase 2: relational nodes — filter impossible role pairs and
	// temporal violations, then wire relationship edges and groups.
	t1 := time.Now()
	v := constraint.NewValidator(d)
	for ci, c := range cands {
		if !nameSupport[ci] || !v.BuildOK(c.A, c.B) {
			continue
		}
		id := NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, RelationalNode{
			ID: id, A: c.A, B: c.B, Atomic: atomicOf[ci], Group: -1,
		})
		g.pairIndex[model.MakePairKey(c.A, c.B)] = id
	}
	g.connectRelationships()
	g.buildGroups()
	stats.GenRelational = time.Since(t1)
	return g, stats
}

// addAtomic interns an atomic node and returns its index.
func (g *Graph) addAtomic(attr model.Attr, a, b string, sim float64) int32 {
	key := MakeAtomicKey(attr, a, b)
	if idx, ok := g.AtomicIndex[key]; ok {
		return idx
	}
	idx := int32(len(g.Atomics))
	g.Atomics = append(g.Atomics, AtomicNode{Key: key, Sim: sim})
	g.AtomicIndex[key] = idx
	return idx
}

// connectRelationships adds an edge between relational nodes (a1,b1) and
// (a2,b2) when a1 and a2 are related on their certificate by the same
// relationship as b1 and b2 on theirs (e.g. both are motherOf the records
// of the other node).
func (g *Graph) connectRelationships() {
	d := g.Dataset
	// relTo[cert] maps a record to its relationship-labelled certificate
	// co-mentions: rel[from] = list of (to, rel).
	type relEdge struct {
		to  model.RecordID
		rel model.Relationship
	}
	relOf := map[model.RecordID][]relEdge{}
	for ci := range d.Certificates {
		cert := &d.Certificates[ci]
		for _, cr := range model.RelationsFor(cert.Type) {
			from, okF := cert.Roles[cr.From]
			to, okT := cert.Roles[cr.To]
			if !okF || !okT {
				continue
			}
			relOf[from] = append(relOf[from], relEdge{to: to, rel: cr.Rel})
		}
	}
	// Each node's neighbour list is written only by the worker owning that
	// node; relOf and pairIndex are read-only here, so the wiring loop
	// parallelises without synchronisation, and per-node dedup+sort keeps
	// the result independent of the worker count.
	parallelRange(g.Config.Workers, len(g.Nodes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := &g.Nodes[i]
			for _, ea := range relOf[n.A] {
				for _, eb := range relOf[n.B] {
					if ea.rel != eb.rel {
						continue
					}
					if other, ok := g.NodeFor(ea.to, eb.to); ok {
						n.Neighbours = append(n.Neighbours, Neighbour{Node: other, Rel: ea.rel})
					}
				}
			}
			if len(n.Neighbours) < 2 {
				continue
			}
			// Deduplicate and sort the neighbour list for determinism.
			sort.Slice(n.Neighbours, func(a, b int) bool {
				if n.Neighbours[a].Node != n.Neighbours[b].Node {
					return n.Neighbours[a].Node < n.Neighbours[b].Node
				}
				return n.Neighbours[a].Rel < n.Neighbours[b].Rel
			})
			out := n.Neighbours[:1]
			for _, nb := range n.Neighbours[1:] {
				if nb != out[len(out)-1] {
					out = append(out, nb)
				}
			}
			n.Neighbours = out
		}
	})
}

// buildGroups forms node groups as connected components over relationship
// edges, restricted to nodes between the same certificate pair so that a
// group corresponds to one hypothesis "these two certificates mention the
// same family".
func (g *Graph) buildGroups() {
	d := g.Dataset
	// Certificate pairs are pure per-node lookups; precompute them in
	// parallel so the serial component walk below only chases pointers.
	certPairs := make([][2]model.CertID, len(g.Nodes))
	parallelRange(g.Config.Workers, len(g.Nodes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := &g.Nodes[i]
			ca, cb := d.Record(n.A).Cert, d.Record(n.B).Cert
			if cb < ca {
				ca, cb = cb, ca
			}
			certPairs[i] = [2]model.CertID{ca, cb}
		}
	})
	// The component walk stays serial: group ids must be numbered by their
	// smallest member node id (the resolver's queue tie-break), which the
	// ascending scan guarantees for free. The walk itself is O(nodes+edges)
	// pointer chasing — negligible next to the similarity phases.
	visited := make([]bool, len(g.Nodes))
	for i := range g.Nodes {
		if visited[i] {
			continue
		}
		gid := GroupID(len(g.Groups))
		var members []NodeID
		stack := []NodeID{NodeID(i)}
		visited[i] = true
		cp := certPairs[i]
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := &g.Nodes[id]
			n.Group = gid
			members = append(members, id)
			for _, nb := range n.Neighbours {
				if visited[nb.Node] {
					continue
				}
				if certPairs[nb.Node] != cp {
					continue
				}
				visited[nb.Node] = true
				stack = append(stack, nb.Node)
			}
		}
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		g.Groups = append(g.Groups, Group{ID: gid, Nodes: members})
	}
}
