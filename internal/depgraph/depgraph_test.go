package depgraph

import (
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/model"
)

// figure3Dataset reconstructs the running example of Figure 3 of the paper:
// a birth certificate (baby r0, mother r1, father r2) and a death
// certificate (deceased r3, mother r4, father r5, spouse r6) where the baby
// plausibly became the deceased.
func figure3Dataset() *model.Dataset {
	d := &model.Dataset{Name: "fig3"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: model.NoPerson,
		})
		return id
	}
	// Birth certificate, 1861.
	r0 := add(model.Bb, 0, "mary", "smith", 1861, model.Female)
	r1 := add(model.Bm, 0, "flora", "smith", 1861, model.Female)
	r2 := add(model.Bf, 0, "angus", "smith", 1861, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1861, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: r0, model.Bm: r1, model.Bf: r2},
	})
	// Death certificate, 1899: the baby died as "mary taylor" (married).
	r3 := add(model.Dd, 1, "mary", "taylor", 1899, model.Female)
	r4 := add(model.Dm, 1, "flora", "smith", 1899, model.Female)
	r5 := add(model.Df, 1, "angus", "smith", 1899, model.Male)
	r6 := add(model.Ds, 1, "donald", "taylor", 1899, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Death, Year: 1899, Age: 38, Cause: "phthisis",
		Roles: map[model.Role]model.RecordID{
			model.Dd: r3, model.Dm: r4, model.Df: r5, model.Ds: r6,
		},
	})
	return d
}

// allPairs emits every cross-certificate record pair as a candidate.
func allPairs(d *model.Dataset) []blocking.Candidate {
	var out []blocking.Candidate
	for i := range d.Records {
		for j := i + 1; j < len(d.Records); j++ {
			out = append(out, blocking.Candidate{A: d.Records[i].ID, B: d.Records[j].ID})
		}
	}
	return out
}

func TestBuildFigure3(t *testing.T) {
	d := figure3Dataset()
	g, _ := Build(d, DefaultConfig(), allPairs(d))

	// The aligned family nodes must exist: (Bb,Dd) on first name, (Bm,Dm),
	// (Bf,Df) exact.
	for _, want := range [][2]model.RecordID{{0, 3}, {1, 4}, {2, 5}} {
		if _, ok := g.NodeFor(want[0], want[1]); !ok {
			t.Errorf("expected relational node (%d,%d)", want[0], want[1])
		}
	}
	// Impossible alignments must not exist: baby as her own mother's spouse
	// etc. (r1 Bm, r6 Ds male) was gender/name filtered.
	if _, ok := g.NodeFor(1, 6); ok {
		t.Error("node (Bm, Ds-male) must be filtered")
	}
	// Same-certificate pairs never become nodes.
	if _, ok := g.NodeFor(0, 1); ok {
		t.Error("same-certificate pair must be filtered")
	}
}

func TestBuildGroupsFigure3(t *testing.T) {
	d := figure3Dataset()
	g, _ := Build(d, DefaultConfig(), allPairs(d))
	id03, ok := g.NodeFor(0, 3)
	if !ok {
		t.Fatal("missing node (0,3)")
	}
	id14, ok := g.NodeFor(1, 4)
	if !ok {
		t.Fatal("missing node (1,4)")
	}
	id25, ok := g.NodeFor(2, 5)
	if !ok {
		t.Fatal("missing node (2,5)")
	}
	n03 := g.Node(id03)
	if n03.Group != g.Node(id14).Group || n03.Group != g.Node(id25).Group {
		t.Errorf("family-aligned nodes should share a group: %d, %d, %d",
			n03.Group, g.Node(id14).Group, g.Node(id25).Group)
	}
	grp := g.Group(n03.Group)
	if len(grp.Nodes) < 3 {
		t.Errorf("group should contain the three aligned nodes, got %d", len(grp.Nodes))
	}
	// Relationship edges: (0,3) sees (1,4) as ChildOf (the baby/deceased is
	// the child of the mothers), and (1,4) sees (0,3) as MotherOf.
	hasEdge := func(n *RelationalNode, to NodeID, rel model.Relationship) bool {
		for _, nb := range n.Neighbours {
			if nb.Node == to && nb.Rel == rel {
				return true
			}
		}
		return false
	}
	if !hasEdge(n03, id14, model.ChildOf) {
		t.Error("missing ChildOf edge from (Bb,Dd) to (Bm,Dm)")
	}
	if !hasEdge(g.Node(id14), id03, model.MotherOf) {
		t.Error("missing MotherOf edge from (Bm,Dm) to (Bb,Dd)")
	}
	if !hasEdge(g.Node(id14), id25, model.SpouseOf) {
		t.Error("missing SpouseOf edge from (Bm,Dm) to (Bf,Df)")
	}
}

func TestAtomicNodesInterned(t *testing.T) {
	d := figure3Dataset()
	g, _ := Build(d, DefaultConfig(), allPairs(d))
	// (flora,flora) appears for both the (1,4) node; interning must not
	// duplicate keys.
	seen := map[AtomicKey]bool{}
	for _, a := range g.Atomics {
		if seen[a.Key] {
			t.Errorf("duplicate atomic node %+v", a.Key)
		}
		seen[a.Key] = true
		if a.Sim < g.Config.AtomicThreshold {
			t.Errorf("atomic node %+v below threshold: %v", a.Key, a.Sim)
		}
	}
}

func TestAtomicKeyCanonical(t *testing.T) {
	smith, taylor := model.Intern("smith"), model.Intern("taylor")
	a := MakeAtomicKey(model.Surname, smith, taylor)
	b := MakeAtomicKey(model.Surname, taylor, smith)
	if a != b {
		t.Errorf("atomic keys not canonical: %+v vs %+v", a, b)
	}
}

func TestCompareAttrMissing(t *testing.T) {
	cfg := DefaultConfig()
	a := &model.Record{First: model.Intern("mary")}
	b := &model.Record{First: model.Intern("")}
	if _, ok := CompareAttr(cfg, a, b, model.FirstName); ok {
		t.Error("missing value must report not-ok")
	}
	if s, ok := CompareAttr(cfg, a, a, model.FirstName); !ok || s != 1 {
		t.Errorf("identical names = (%v,%v), want (1,true)", s, ok)
	}
}

func TestCompareAttrGeocoded(t *testing.T) {
	cfg := DefaultConfig()
	a := &model.Record{Addr: model.Intern("5 portree"), Lat: 57.41, Lon: -6.19}
	b := &model.Record{Addr: model.Intern("7 uig"), Lat: 57.58, Lon: -6.36}
	s, ok := CompareAttr(cfg, a, b, model.Address)
	if !ok {
		t.Fatal("geocoded comparison should be ok")
	}
	if s != 0 {
		t.Errorf("villages ~20km apart with GeoMaxKm=5 should score 0, got %v", s)
	}
	c := &model.Record{Addr: model.Intern("5 portree"), Lat: 57.41, Lon: -6.19}
	if s, _ := CompareAttr(cfg, a, c, model.Address); s != 1 {
		t.Errorf("same location should score 1, got %v", s)
	}
}

func TestCompareAttrFallbackJaccard(t *testing.T) {
	cfg := DefaultConfig()
	a := &model.Record{Addr: model.Intern("5 king street")}
	b := &model.Record{Addr: model.Intern("5 king street")}
	if s, ok := CompareAttr(cfg, a, b, model.Address); !ok || s != 1 {
		t.Errorf("identical ungeocoded addresses = (%v,%v), want (1,true)", s, ok)
	}
}

func TestBuildRequiresNameSupport(t *testing.T) {
	d := &model.Dataset{Name: "tiny"}
	d.Records = []model.Record{
		{ID: 0, Cert: 0, Role: model.Bm, First: model.Intern("mary"), Sur: model.Intern("smith"), Year: 1870, Gender: model.Female},
		{ID: 1, Cert: 1, Role: model.Bm, First: model.Intern("ann"), Sur: model.Intern("brown"), Year: 1872, Gender: model.Female},
	}
	g, _ := Build(d, DefaultConfig(), []blocking.Candidate{{A: 0, B: 1}})
	if len(g.Nodes) != 0 {
		t.Errorf("pair with no similar name should produce no relational node, got %d", len(g.Nodes))
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	d := figure3Dataset()
	_, stats := Build(d, DefaultConfig(), allPairs(d))
	if stats.GenAtomic < 0 || stats.GenRelational < 0 {
		t.Error("negative phase timings")
	}
}

// TestSiblingNodesJoinGroups reproduces the partial-match-group structure of
// Sec. 4.2.4: two siblings' birth certificates yield a group containing the
// parent nodes AND the (unmergeable) sibling Bb-Bb node, whose low
// similarity is the negative evidence the REL technique handles.
func TestSiblingNodesJoinGroups(t *testing.T) {
	d := &model.Dataset{Name: "siblings"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: model.NoPerson,
		})
		return id
	}
	add(model.Bb, 0, "john", "macrae", 1870, model.Male)
	add(model.Bm, 0, "kirsty", "macrae", 1870, model.Female)
	add(model.Bf, 0, "hector", "macrae", 1870, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "angus", "macrae", 1873, model.Male)
	add(model.Bm, 1, "kirsty", "macrae", 1873, model.Female)
	add(model.Bf, 1, "hector", "macrae", 1873, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1873, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})

	g, _ := Build(d, DefaultConfig(), allPairs(d))
	sib, ok := g.NodeFor(0, 3)
	if !ok {
		t.Fatal("sibling Bb-Bb node missing from graph (surname support)")
	}
	mothers, ok := g.NodeFor(1, 4)
	if !ok {
		t.Fatal("mother node missing")
	}
	if g.Node(sib).Group != g.Node(mothers).Group {
		t.Error("sibling node should share the parents' group")
	}
	// The sibling node has no first-name atomic binding.
	if _, bound := g.AtomicSim(g.Node(sib), model.FirstName); bound {
		t.Error("different first names must not bind a Must atomic node")
	}
	if _, bound := g.AtomicSim(g.Node(sib), model.Surname); !bound {
		t.Error("shared surname should bind a Core atomic node")
	}
}
