package depgraph

import (
	"reflect"
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/model"
)

// graphsEqual compares every exported component two builds can disagree
// on: atomic nodes (values, similarities, interning order), relational
// nodes (ids, bindings, neighbours), and groups. Node and group IDs are
// positional, so slice equality IS id equality.
func graphsEqual(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if !reflect.DeepEqual(got.Atomics, want.Atomics) {
		t.Fatalf("%s: atomic nodes differ (%d vs %d)", label, len(got.Atomics), len(want.Atomics))
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Fatalf("%s: relational nodes differ (%d vs %d)", label, len(got.Nodes), len(want.Nodes))
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("%s: groups differ (%d vs %d)", label, len(got.Groups), len(want.Groups))
	}
}

// TestBuildStreamMatchesBuild locks the streamed build to the monolithic
// one: feeding the same candidates through BuildStream in chunks of any
// size — including pathological sizes of 1 and sizes that straddle the
// phase-2 filter — must produce an identical graph. This is the
// chunk-interleaving determinism argument of DESIGN.md §15 made
// executable.
func TestBuildStreamMatchesBuild(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	d := p.Dataset
	cfg := DefaultConfig()
	lsh := blocking.NewLSH(blocking.DefaultLSHConfig())
	cands := lsh.Pairs(d, recordIDs(d))
	if len(cands) < 100 {
		t.Fatalf("only %d candidates; dataset too small to exercise chunking", len(cands))
	}
	want, wantStats := Build(d, cfg, cands)

	for _, chunkSize := range []int{1, 7, 333, len(cands)/2 + 1, len(cands)} {
		g, stats := BuildStream(d, cfg, func(emit func(chunk []blocking.Candidate)) {
			for lo := 0; lo < len(cands); lo += chunkSize {
				hi := lo + chunkSize
				if hi > len(cands) {
					hi = len(cands)
				}
				emit(cands[lo:hi])
			}
		})
		graphsEqual(t, "chunkSize="+itoa(chunkSize), g, want)
		if stats.Candidates != wantStats.Candidates {
			t.Fatalf("chunkSize=%d: Candidates = %d, want %d", chunkSize, stats.Candidates, wantStats.Candidates)
		}
	}

	// Worker-count invariance on top of chunk-size invariance: the parallel
	// scoring inside a chunk must not reorder interning.
	for _, workers := range []int{2, 5} {
		wcfg := cfg
		wcfg.Workers = workers
		g, _ := Build(d, wcfg, cands)
		graphsEqual(t, "workers="+itoa(workers), g, want)
	}
}

// TestBuildStreamReusedChunkBuffer checks the documented producer
// contract: chunk slices are only read during emit, so a producer reusing
// one buffer for every chunk must still yield the monolithic graph.
func TestBuildStreamReusedChunkBuffer(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	d := p.Dataset
	cfg := DefaultConfig()
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, recordIDs(d))
	want, _ := Build(d, cfg, cands)

	buf := make([]blocking.Candidate, 0, 100)
	g, _ := BuildStream(d, cfg, func(emit func(chunk []blocking.Candidate)) {
		for lo := 0; lo < len(cands); lo += 100 {
			hi := lo + 100
			if hi > len(cands) {
				hi = len(cands)
			}
			buf = append(buf[:0], cands[lo:hi]...)
			emit(buf)
		}
	})
	graphsEqual(t, "reused buffer", g, want)
}

func recordIDs(d *model.Dataset) []model.RecordID {
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	return ids
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
