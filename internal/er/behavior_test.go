package er

import (
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/model"
)

// behaviourDataset builds two certificates with configurable fields so
// individual merge-phase rules can be exercised in isolation.
type certSpec struct {
	role       model.Role
	first, sur string
	addr       string
	year       int
	gender     model.Gender
	truth      model.PersonID
}

func buildCerts(t *testing.T, certs [][]certSpec, types []model.CertType) *model.Dataset {
	t.Helper()
	d := &model.Dataset{Name: "behaviour"}
	for ci, specs := range certs {
		cert := model.Certificate{
			ID: model.CertID(ci), Type: types[ci], Year: specs[0].year,
			Roles: map[model.Role]model.RecordID{}, Age: -1,
		}
		for _, sp := range specs {
			id := model.RecordID(len(d.Records))
			d.Records = append(d.Records, model.Record{
				ID: id, Cert: model.CertID(ci), Role: sp.role, Gender: sp.gender,
				First: model.Intern(sp.first), Sur: model.Intern(sp.sur), Addr: model.Intern(sp.addr),
				Year: sp.year, Truth: sp.truth,
			})
			cert.Roles[sp.role] = id
		}
		d.Certificates = append(d.Certificates, cert)
	}
	return d
}

// TestExtraYearWindowVetoesCloseMismatch: same names, different addresses.
// Two years apart the address disagreement is negative evidence and the
// pair group must not merge; twenty years apart it is stale and the names
// carry the decision.
func TestExtraYearWindowVetoesCloseMismatch(t *testing.T) {
	mk := func(year2 int) *model.Dataset {
		return buildCerts(t, [][]certSpec{
			{
				{model.Bb, "torquil", "macsween", "5 uig", 1870, model.Male, 1},
				{model.Bm, "oighrig", "macsween", "5 uig", 1870, model.Female, 2},
				{model.Bf, "ewen", "macsween", "5 uig", 1870, model.Male, 3},
			},
			{
				{model.Bb, "una", "macsween", "9 elgol", year2, model.Female, 4},
				{model.Bm, "oighrig", "macsween", "9 elgol", year2, model.Female, 5},
				{model.Bf, "ewen", "macsween", "9 elgol", year2, model.Male, 6},
			},
		}, []model.CertType{model.Birth, model.Birth})
	}

	// Close in time: different addresses are negative evidence. Bootstrap
	// is vetoed (strict scoring) and the merge phase scores the extras at
	// zero weight-with-presence, keeping the average below t_m... unless
	// the rare names carry it; with the disambiguation of a tiny |O| the
	// sd is high, so assert only the *relative* behaviour: the distant
	// pair must be at least as linked as the close one.
	close_ := resolve(mk(1872), DefaultConfig())
	far := resolve(mk(1895), DefaultConfig())
	linked := func(res *Result, a, b model.RecordID) bool {
		ea, eb := res.Store.EntityOf(a), res.Store.EntityOf(b)
		return ea != NoEntity && ea == eb
	}
	if linked(close_, 1, 4) && !linked(far, 1, 4) {
		t.Error("temporally distant address disagreement should never be stronger evidence than a close one")
	}
}

// TestMustGateBlocksDifferentFirstNames: identical surname and address must
// not link two records whose first names disagree.
func TestMustGateBlocksDifferentFirstNames(t *testing.T) {
	d := buildCerts(t, [][]certSpec{
		{
			{model.Bm, "kirsty", "macrae", "5 uig", 1870, model.Female, 1},
			{model.Bb, "john", "macrae", "5 uig", 1870, model.Male, 2},
		},
		{
			{model.Dm, "morag", "macrae", "5 uig", 1872, model.Female, 3},
			{model.Dd, "john", "macrae", "5 uig", 1872, model.Male, 2},
		},
	}, []model.CertType{model.Birth, model.Death})
	res := resolve(d, DefaultConfig())
	if e := res.Store.EntityOf(0); e != NoEntity && e == res.Store.EntityOf(2) {
		t.Error("kirsty and morag share surname and address but must not link (Must gate)")
	}
}

// TestMissingFirstNameNeverMergesInMergePhase: a record without a first
// name can only be linked through bootstrap-grade full-group agreement.
func TestMissingFirstNameNeverMergesAlone(t *testing.T) {
	d := buildCerts(t, [][]certSpec{
		{
			{model.Bm, "", "macsween", "5 uig", 1870, model.Female, 1},
		},
		{
			{model.Dm, "oighrig", "macsween", "9 elgol", 1890, model.Female, 1},
		},
	}, []model.CertType{model.Birth, model.Death})
	res := resolve(d, DefaultConfig())
	if e := res.Store.EntityOf(0); e != NoEntity && e == res.Store.EntityOf(1) {
		t.Error("surname-only agreement with a missing first name must not link")
	}
}

// TestBirthHintBlocksGenerationConfusion: a father and his same-named son
// both appear as Cf/Bf; the recorded census age must keep them apart.
func TestBirthHintBlocksGenerationConfusion(t *testing.T) {
	d := buildCerts(t, [][]certSpec{
		{
			// Census 1871: the FATHER, aged 50 (born ~1821).
			{model.Cf, "ewen", "macsween", "5 uig", 1871, model.Male, 1},
			{model.Cm, "oighrig", "macsween", "5 uig", 1871, model.Female, 2},
		},
		{
			// Birth 1895: the SON (born ~1850) as Bf with his own wife.
			{model.Bf, "ewen", "macsween", "5 uig", 1895, model.Male, 3},
			{model.Bm, "flora", "macsween", "5 uig", 1895, model.Female, 4},
			{model.Bb, "angus", "macsween", "5 uig", 1895, model.Male, 5},
		},
	}, []model.CertType{model.Census, model.Birth})
	d.Records[0].BirthHint = 1821
	d.Records[2].BirthHint = 1850 // implied by a marriage/census record elsewhere
	res := resolve(d, DefaultConfig())
	if e := res.Store.EntityOf(0); e != NoEntity && e == res.Store.EntityOf(2) {
		t.Error("recorded ages 29 years apart must keep father and same-named son apart")
	}
}

// TestBootstrapOrderPrefersStrongerNodes: when two alignments compete for
// one record, the exact-name alignment wins and the competing weaker
// alignment is vetoed by the link constraints.
func TestBootstrapOrderPrefersStrongerNodes(t *testing.T) {
	d := buildCerts(t, [][]certSpec{
		{
			{model.Bb, "torquil", "macsween", "5 uig", 1870, model.Male, 1},
			{model.Bm, "oighrig", "macsween", "5 uig", 1870, model.Female, 2},
			{model.Bf, "ewen", "macsween", "5 uig", 1870, model.Male, 3},
		},
		{
			// The baby died: Dd must align with Bb, not with the father.
			{model.Dd, "torquil", "macsween", "5 uig", 1874, model.Male, 1},
			{model.Dm, "oighrig", "macsween", "5 uig", 1874, model.Female, 2},
			{model.Df, "ewen", "macsween", "5 uig", 1874, model.Male, 3},
		},
	}, []model.CertType{model.Birth, model.Death})
	res := resolve(d, DefaultConfig())
	if e := res.Store.EntityOf(0); e == NoEntity || e != res.Store.EntityOf(3) {
		t.Error("baby should link to the deceased")
	}
	if e := res.Store.EntityOf(2); e == NoEntity || e != res.Store.EntityOf(5) {
		t.Error("father should link to the death-certificate father")
	}
	if e := res.Store.EntityOf(2); e == res.Store.EntityOf(3) {
		t.Error("father wrongly linked to the deceased baby")
	}
}

// TestPipelineCandidateFilterConsistency: every relational node built from
// LSH candidates satisfies the graph-construction filter.
func TestPipelineCandidateFilterConsistency(t *testing.T) {
	d := buildCerts(t, [][]certSpec{
		{
			{model.Bb, "torquil", "macsween", "5 uig", 1870, model.Male, 1},
			{model.Bm, "oighrig", "macsween", "5 uig", 1870, model.Female, 2},
		},
		{
			{model.Dd, "torquil", "macsween", "5 uig", 1874, model.Male, 1},
			{model.Dm, "oighrig", "macsween", "5 uig", 1874, model.Female, 2},
		},
	}, []model.CertType{model.Birth, model.Death})
	ids := []model.RecordID{0, 1, 2, 3}
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
	g, _ := depgraph.Build(d, depgraph.DefaultConfig(), cands)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		ra, rb := d.Record(n.A), d.Record(n.B)
		if ra.Cert == rb.Cert {
			t.Fatal("same-certificate node built")
		}
		if !blocking.GenderCompatible(ra, rb) {
			t.Fatal("gender-incompatible node built")
		}
	}
}
