package er

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/model"
)

// canonicalClusters renders a clustering as a canonical string: record ids
// sorted within each cluster, clusters sorted by their first id, singletons
// excluded (they carry no linkage decision).
func canonicalClusters(cl [][]model.RecordID) string {
	var parts []string
	for _, c := range cl {
		if len(c) < 2 {
			continue
		}
		ids := append([]model.RecordID(nil), c...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var sb strings.Builder
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", id)
		}
		parts = append(parts, sb.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// TestRunDeterministic is the golden determinism guard: er.Run on the same
// seeded data set must produce the identical cluster set every time, even
// though blocking and dependency-graph construction fan work out over
// parallel goroutines (depgraph.parallelRange). A nondeterministic merge
// order would silently change linkage results between runs — and make the
// live ingestion path's restore-and-extend cycle diverge from a fresh
// resolve.
func TestRunDeterministic(t *testing.T) {
	cfg := dataset.IOS().Scaled(0.04)
	run := func() string {
		p := dataset.Generate(cfg)
		pr := Run(p.Dataset, depgraph.DefaultConfig(), DefaultConfig())
		return canonicalClusters(pr.Result.Store.Clusters())
	}
	first := run()
	if first == "" {
		t.Fatal("no non-singleton clusters resolved; scale too small for the guard to bite")
	}
	for i := 0; i < 2; i++ {
		if again := run(); again != first {
			t.Fatalf("run %d produced a different cluster set (parallel stages are nondeterministic)\nfirst run:\n%s\nrun %d:\n%s",
				i+2, head(first, 20), i+2, head(again, 20))
		}
	}
}

// head returns the first n lines of s, for readable failure output.
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = append(lines[:n], "...")
	}
	return strings.Join(lines, "\n")
}
