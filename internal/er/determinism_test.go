package er

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/model"
)

// canonicalClusters renders a clustering as a canonical string: record ids
// sorted within each cluster, clusters sorted by their first id, singletons
// excluded (they carry no linkage decision).
func canonicalClusters(cl [][]model.RecordID) string {
	var parts []string
	for _, c := range cl {
		if len(c) < 2 {
			continue
		}
		ids := append([]model.RecordID(nil), c...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var sb strings.Builder
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", id)
		}
		parts = append(parts, sb.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// TestRunDeterministic is the golden determinism guard: er.Run on the same
// seeded data set must produce the identical cluster set every time, even
// though blocking and dependency-graph construction fan work out over
// parallel goroutines (depgraph.parallelRange). A nondeterministic merge
// order would silently change linkage results between runs — and make the
// live ingestion path's restore-and-extend cycle diverge from a fresh
// resolve.
func TestRunDeterministic(t *testing.T) {
	cfg := dataset.IOS().Scaled(0.04)
	run := func() string {
		p := dataset.Generate(cfg)
		pr := Run(p.Dataset, depgraph.DefaultConfig(), DefaultConfig())
		return canonicalClusters(pr.Result.Store.Clusters())
	}
	first := run()
	if first == "" {
		t.Fatal("no non-singleton clusters resolved; scale too small for the guard to bite")
	}
	for i := 0; i < 2; i++ {
		if again := run(); again != first {
			t.Fatalf("run %d produced a different cluster set (parallel stages are nondeterministic)\nfirst run:\n%s\nrun %d:\n%s",
				i+2, head(first, 20), i+2, head(again, 20))
		}
	}
}

// TestResolveParallelGoldenEquivalence locks the component-partitioned
// parallel resolver to the serial one: on the same data set, workers=1 and
// workers=GOMAXPROCS (plus a fixed workers=4 so the parallel path runs even
// on single-CPU hosts) must produce the identical cluster set. Entity
// enumeration order is allowed to differ — cluster contents are not.
func TestResolveParallelGoldenEquivalence(t *testing.T) {
	cfg := dataset.IOS().Scaled(0.04)
	p := dataset.Generate(cfg)
	run := func(workers int) (string, *Result) {
		d := p.Dataset.Clone()
		rcfg := DefaultConfig()
		rcfg.Workers = workers
		pr := Run(d, depgraph.DefaultConfig(), rcfg)
		return canonicalClusters(pr.Result.Store.Clusters()), pr.Result
	}
	serial, sres := run(1)
	if serial == "" {
		t.Fatal("no non-singleton clusters resolved; scale too small for the guard to bite")
	}
	for _, w := range []int{0, 4} {
		par, pres := run(w)
		if par != serial {
			t.Fatalf("workers=%d cluster set differs from serial\nserial:\n%s\nworkers=%d:\n%s",
				w, head(serial, 20), w, head(par, 20))
		}
		if w == 4 && pres.MergedNodes != sres.MergedNodes {
			t.Fatalf("workers=4 merged %d nodes, serial merged %d", pres.MergedNodes, sres.MergedNodes)
		}
	}
}

// TestExtendParallelGoldenEquivalence covers the ingest path: restoring a
// previous clustering and extending it with new records must yield the same
// clusters whether the resolve over the extension graph runs serially or
// component-parallel. This exercises seeding pre-existing entities into
// component stores.
func TestExtendParallelGoldenEquivalence(t *testing.T) {
	cfg := dataset.IOS().Scaled(0.04)
	p := dataset.Generate(cfg)
	base := Run(p.Dataset, depgraph.DefaultConfig(), DefaultConfig())
	clusters := base.Result.Store.Clusters()

	// Split off the final certificate's records as the "new" batch by
	// resolving a clone and re-extending: simply re-run Extend over the
	// full set with the restored clusters and an arbitrary cut point.
	firstNew := model.RecordID(len(p.Dataset.Records) * 9 / 10)
	run := func(workers int) string {
		d := p.Dataset.Clone()
		st := restoreForTest(d, clusters, firstNew)
		rcfg := DefaultConfig()
		rcfg.Workers = workers
		Extend(d, st, firstNew, depgraph.DefaultConfig(), rcfg)
		return canonicalClusters(st.Clusters())
	}
	serial := run(1)
	if par := run(4); par != serial {
		t.Fatalf("parallel Extend cluster set differs from serial\nserial:\n%s\nparallel:\n%s",
			head(serial, 20), head(par, 20))
	}
}

// restoreForTest rebuilds an EntityStore holding only the clusters made
// entirely of records below firstNew, as the ingest flush does when it
// restores the previous build's clustering before extending.
func restoreForTest(d *model.Dataset, clusters [][]model.RecordID, firstNew model.RecordID) *EntityStore {
	st := NewEntityStore(d)
	for _, c := range clusters {
		old := true
		for _, r := range c {
			if r >= firstNew {
				old = false
				break
			}
		}
		if !old {
			continue
		}
		for i := 1; i < len(c); i++ {
			for j := 0; j < i; j++ {
				st.Link(c[j], c[i])
			}
		}
	}
	return st
}

// head returns the first n lines of s, for readable failure output.
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = append(lines[:n], "...")
	}
	return strings.Join(lines, "\n")
}
