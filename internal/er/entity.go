// Package er implements the core contribution of the paper: the
// unsupervised graph-based entity-resolution process of SNAPS, consisting
// of bootstrapping and merging over a dependency graph with global
// propagation of QID values and constraints (PROP-A/PROP-C), ambiguity-
// aware similarity (AMB), adaptive leveraging of relationship structure
// (REL), and dynamic refinement of record clusters (REF).
package er

import (
	"sort"

	"github.com/snaps/snaps/internal/model"
)

// EntityID identifies a record cluster (an entity o ∈ O). Entities are
// created lazily: a record not yet linked to anything is its own implicit
// singleton entity.
type EntityID int32

// NoEntity marks records without an explicit entity.
const NoEntity EntityID = -1

// linkEdge records that the ER process linked two records of one entity
// (a merged relational node). It is the edge set of the entity's record
// graph used by the REF technique.
type linkEdge struct {
	a, b model.RecordID
}

// entity is one record cluster.
type entity struct {
	id      EntityID
	records []model.RecordID
	links   []linkEdge
	dead    bool
}

// EntityStore maintains the record clusters and their QID value sets.
// Unlike a union-find it supports unmerging (record removal and bridge
// splitting), which the REF technique requires.
type EntityStore struct {
	d        *model.Dataset
	entityOf []EntityID // per record; NoEntity when singleton/unassigned
	entities []entity
	// ver stamps each record's entity view: any mutation that changes the
	// record set visible from a record (Link, Unlink, bridge splits) bumps
	// the stamp of every affected record. The resolver's node-similarity
	// cache keys on these stamps, so a cached score stays valid exactly as
	// long as both records' views are unchanged.
	ver []uint32
}

// NewEntityStore returns an empty store over the data set.
func NewEntityStore(d *model.Dataset) *EntityStore {
	eo := make([]EntityID, len(d.Records))
	for i := range eo {
		eo[i] = NoEntity
	}
	return &EntityStore{d: d, entityOf: eo, ver: make([]uint32, len(d.Records))}
}

// newSharedStore wraps pre-allocated record tables: component resolvers of
// the parallel resolve share one entityOf and one ver slab (records are
// partitioned across components, so slots never contend) while keeping
// their own entity lists.
func newSharedStore(d *model.Dataset, entityOf []EntityID, ver []uint32) *EntityStore {
	return &EntityStore{d: d, entityOf: entityOf, ver: ver}
}

// bumpViews marks every record of an entity as having a changed view.
func (s *EntityStore) bumpViews(e EntityID) {
	for _, r := range s.entities[e].records {
		s.ver[r]++
	}
}

// seed installs an existing cluster (records plus link edges) as the next
// entity, used when the parallel resolve hands a component's share of a
// pre-populated store to its component resolver. The slices are owned by
// the store afterwards.
func (s *EntityStore) seed(records []model.RecordID, links []linkEdge) {
	id := EntityID(len(s.entities))
	s.entities = append(s.entities, entity{id: id, records: records, links: links})
	for _, r := range records {
		s.entityOf[r] = id
		s.ver[r]++
	}
}

// EntityOf returns the entity of a record, or NoEntity for unlinked
// records.
func (s *EntityStore) EntityOf(r model.RecordID) EntityID { return s.entityOf[r] }

// Grow extends the store's record table after new records were appended to
// its data set; the new records start unlinked. It is idempotent.
func (s *EntityStore) Grow() {
	for len(s.entityOf) < len(s.d.Records) {
		s.entityOf = append(s.entityOf, NoEntity)
	}
	for len(s.ver) < len(s.d.Records) {
		s.ver = append(s.ver, 0)
	}
}

// Records returns the record ids in an entity. The slice must not be
// modified.
func (s *EntityStore) Records(e EntityID) []model.RecordID { return s.entities[e].records }

// recordsView adapts an entity (or an implicit singleton) to the
// constraint.EntityView interface.
type recordsView []model.RecordID

// Records implements constraint.EntityView.
func (v recordsView) Records() []model.RecordID { return v }

// View returns the records a hypothetical entity containing r holds: the
// record's cluster, or just the record itself when unlinked.
func (s *EntityStore) View(r model.RecordID) recordsView {
	if e := s.entityOf[r]; e != NoEntity {
		return recordsView(s.entities[e].records)
	}
	return recordsView([]model.RecordID{r})
}

// Link merges the entities of two records (creating entities as needed) and
// records the link edge between them. It reports the resulting entity.
func (s *EntityStore) Link(a, b model.RecordID) EntityID {
	ea, eb := s.entityOf[a], s.entityOf[b]
	switch {
	case ea == NoEntity && eb == NoEntity:
		id := EntityID(len(s.entities))
		s.entities = append(s.entities, entity{id: id, records: []model.RecordID{a, b}})
		s.entityOf[a], s.entityOf[b] = id, id
		s.entities[id].links = append(s.entities[id].links, linkEdge{a, b})
		s.ver[a]++
		s.ver[b]++
		return id
	case ea == NoEntity:
		s.entityOf[a] = eb
		s.entities[eb].records = append(s.entities[eb].records, a)
		s.entities[eb].links = append(s.entities[eb].links, linkEdge{a, b})
		s.bumpViews(eb)
		return eb
	case eb == NoEntity:
		s.entityOf[b] = ea
		s.entities[ea].records = append(s.entities[ea].records, b)
		s.entities[ea].links = append(s.entities[ea].links, linkEdge{a, b})
		s.bumpViews(ea)
		return ea
	case ea == eb:
		// Only the link multigraph changes; the record view is untouched,
		// so similarity caches keyed on ver stay valid.
		s.entities[ea].links = append(s.entities[ea].links, linkEdge{a, b})
		return ea
	}
	// Merge the smaller entity into the larger.
	if len(s.entities[ea].records) < len(s.entities[eb].records) {
		ea, eb = eb, ea
	}
	dst, src := &s.entities[ea], &s.entities[eb]
	for _, r := range src.records {
		s.entityOf[r] = ea
	}
	dst.records = append(dst.records, src.records...)
	dst.links = append(dst.links, src.links...)
	dst.links = append(dst.links, linkEdge{a, b})
	src.records, src.links, src.dead = nil, nil, true
	s.bumpViews(ea)
	return ea
}

// Unlink removes a record from its entity, dropping its incident link
// edges. The record becomes unlinked (an implicit singleton). Entities
// reduced to one record are dissolved.
func (s *EntityStore) Unlink(r model.RecordID) {
	e := s.entityOf[r]
	if e == NoEntity {
		return
	}
	s.bumpViews(e) // every member's view shrinks, including r's
	ent := &s.entities[e]
	recs := ent.records[:0]
	for _, x := range ent.records {
		if x != r {
			recs = append(recs, x)
		}
	}
	ent.records = recs
	links := ent.links[:0]
	for _, l := range ent.links {
		if l.a != r && l.b != r {
			links = append(links, l)
		}
	}
	ent.links = links
	s.entityOf[r] = NoEntity
	if len(ent.records) == 1 {
		s.entityOf[ent.records[0]] = NoEntity
		ent.records, ent.links, ent.dead = nil, nil, true
	}
}

// replaceCluster rehomes a set of records (with the given internal links)
// into a fresh entity. Used by bridge splitting.
func (s *EntityStore) replaceCluster(records []model.RecordID, links []linkEdge) {
	if len(records) == 1 {
		s.entityOf[records[0]] = NoEntity
		s.ver[records[0]]++
		return
	}
	id := EntityID(len(s.entities))
	s.entities = append(s.entities, entity{id: id, records: records, links: links})
	for _, r := range records {
		s.entityOf[r] = id
		s.ver[r]++
	}
}

// Entities returns the ids of all live entities, sorted.
func (s *EntityStore) Entities() []EntityID {
	var out []EntityID
	for i := range s.entities {
		if !s.entities[i].dead && len(s.entities[i].records) > 0 {
			out = append(out, s.entities[i].id)
		}
	}
	return out
}

// Clusters returns the live record clusters as freshly allocated record-id
// slices, the persistable form of the clustering: internal link structure is
// dropped, so rebuilding a store from the clusters (store.Snapshot.Restore)
// yields cliques. Singleton (unlinked) records are not listed.
func (s *EntityStore) Clusters() [][]model.RecordID {
	out := make([][]model.RecordID, 0, len(s.entities))
	for i := range s.entities {
		if !s.entities[i].dead && len(s.entities[i].records) > 0 {
			out = append(out, append([]model.RecordID(nil), s.entities[i].records...))
		}
	}
	return out
}

// Values returns the distinct non-empty values (with counts) of an
// attribute across the records currently in the entity of r, including r
// itself when unlinked.
func (s *EntityStore) Values(r model.RecordID, attr model.Attr) map[string]int {
	out := map[string]int{}
	for _, id := range s.View(r) {
		if v := s.d.Record(id).Value(attr); v != "" {
			out[v]++
		}
	}
	return out
}

// ValueSyms is Values over interned symbols: the distinct non-empty value
// symbols (with counts) of an attribute across the entity of r. The
// resolver's propagation cache consumes this form so every downstream
// comparison stays symbol-native.
func (s *EntityStore) ValueSyms(r model.RecordID, attr model.Attr) map[model.Sym]int {
	out := map[model.Sym]int{}
	for _, id := range s.View(r) {
		if v := s.d.Record(id).Sym(attr); v != 0 {
			out[v]++
		}
	}
	return out
}

// MatchPairs returns every intra-entity record pair whose roles form the
// given role pair: the pairwise closure of the clustering, which is what
// precision/recall are scored on.
func (s *EntityStore) MatchPairs(rp model.RolePair) map[model.PairKey]bool {
	out := map[model.PairKey]bool{}
	for i := range s.entities {
		ent := &s.entities[i]
		if ent.dead {
			continue
		}
		for x := 0; x < len(ent.records); x++ {
			for y := x + 1; y < len(ent.records); y++ {
				a, b := ent.records[x], ent.records[y]
				ra, rb := s.d.Record(a), s.d.Record(b)
				if model.MakeRolePair(ra.Role, rb.Role) != rp {
					continue
				}
				out[model.MakePairKey(a, b)] = true
			}
		}
	}
	return out
}

// ClusterSizes returns the live cluster size distribution, sorted
// descending; useful for diagnostics and tests.
func (s *EntityStore) ClusterSizes() []int {
	var out []int
	for i := range s.entities {
		if !s.entities[i].dead && len(s.entities[i].records) > 0 {
			out = append(out, len(s.entities[i].records))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
