package er

import (
	"math/rand"
	"testing"

	"github.com/snaps/snaps/internal/model"
)

// TestEntityStoreRandomOpsInvariants drives the store with random link and
// unlink operations and checks the structural invariants after every step:
//
//   - entityOf and entity record lists agree exactly (bijection);
//   - no entity has fewer than two records;
//   - no record appears in two entities;
//   - link edges only reference records inside their entity.
func TestEntityStoreRandomOpsInvariants(t *testing.T) {
	const nRecords = 60
	d := tinyDataset(nRecords)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewEntityStore(d)
		for step := 0; step < 400; step++ {
			a := model.RecordID(rng.Intn(nRecords))
			b := model.RecordID(rng.Intn(nRecords))
			if rng.Intn(4) == 0 {
				s.Unlink(a)
			} else if a != b {
				s.Link(a, b)
			}
			checkInvariants(t, s, nRecords)
			if t.Failed() {
				t.Fatalf("invariant broken at seed %d step %d", seed, step)
			}
		}
	}
}

func checkInvariants(t *testing.T, s *EntityStore, nRecords int) {
	t.Helper()
	seen := map[model.RecordID]EntityID{}
	for _, e := range s.Entities() {
		recs := s.Records(e)
		if len(recs) < 2 {
			t.Errorf("entity %d has %d records", e, len(recs))
		}
		inEntity := map[model.RecordID]bool{}
		for _, r := range recs {
			if prev, dup := seen[r]; dup {
				t.Errorf("record %d in entities %d and %d", r, prev, e)
			}
			seen[r] = e
			inEntity[r] = true
			if s.EntityOf(r) != e {
				t.Errorf("record %d: EntityOf=%d but listed in %d", r, s.EntityOf(r), e)
			}
		}
		for _, l := range s.entities[e].links {
			if !inEntity[l.a] || !inEntity[l.b] {
				t.Errorf("entity %d: dangling link edge (%d,%d)", e, l.a, l.b)
			}
		}
	}
	// Records not in any entity must map to NoEntity.
	for r := 0; r < nRecords; r++ {
		id := model.RecordID(r)
		if _, ok := seen[id]; !ok && s.EntityOf(id) != NoEntity {
			t.Errorf("record %d maps to entity %d but is listed nowhere", r, s.EntityOf(id))
		}
	}
}

// TestRefineNeverInventsLinks checks that Refine only removes: the match
// pair set after refinement is a subset of the one before.
func TestRefineNeverInventsLinks(t *testing.T) {
	const nRecords = 40
	d := tinyDataset(nRecords)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		s := NewEntityStore(d)
		for i := 0; i < 80; i++ {
			a := model.RecordID(rng.Intn(nRecords))
			b := model.RecordID(rng.Intn(nRecords))
			if a != b {
				s.Link(a, b)
			}
		}
		rp := model.MakeRolePair(model.Bm, model.Bm)
		before := s.MatchPairs(rp)
		s.Refine(0.5, 10)
		checkInvariants(t, s, nRecords)
		after := s.MatchPairs(rp)
		for k := range after {
			if !before[k] {
				t.Fatalf("seed %d: refinement invented pair %v", seed, k)
			}
		}
	}
}

// TestLinkOrderIndependentMembership checks that the final entity
// membership (as a partition) does not depend on link order.
func TestLinkOrderIndependentMembership(t *testing.T) {
	const nRecords = 20
	d := tinyDataset(nRecords)
	links := [][2]model.RecordID{{0, 1}, {2, 3}, {1, 2}, {5, 6}, {6, 7}, {0, 3}}

	partition := func(order []int) map[model.RecordID]model.RecordID {
		s := NewEntityStore(d)
		for _, i := range order {
			s.Link(links[i][0], links[i][1])
		}
		// Canonical representative: smallest record id in the entity.
		rep := map[model.RecordID]model.RecordID{}
		for _, e := range s.Entities() {
			min := s.Records(e)[0]
			for _, r := range s.Records(e) {
				if r < min {
					min = r
				}
			}
			for _, r := range s.Records(e) {
				rep[r] = min
			}
		}
		return rep
	}
	base := partition([]int{0, 1, 2, 3, 4, 5})
	perm := partition([]int{5, 3, 1, 0, 4, 2})
	if len(base) != len(perm) {
		t.Fatalf("partition sizes differ: %d vs %d", len(base), len(perm))
	}
	for r, rep := range base {
		if perm[r] != rep {
			t.Fatalf("record %d: representative %d vs %d", r, rep, perm[r])
		}
	}
}
