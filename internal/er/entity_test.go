package er

import (
	"testing"

	"github.com/snaps/snaps/internal/model"
)

func tinyDataset(n int) *model.Dataset {
	d := &model.Dataset{Name: "tiny"}
	for i := 0; i < n; i++ {
		d.Records = append(d.Records, model.Record{
			ID: model.RecordID(i), Cert: model.CertID(i), Role: model.Bm,
			First: model.Intern("mary"), Sur: model.Intern("smith"), Year: 1870 + i,
			Gender: model.Female, Truth: model.NoPerson,
		})
	}
	return d
}

func TestEntityStoreLinkBasics(t *testing.T) {
	s := NewEntityStore(tinyDataset(4))
	if s.EntityOf(0) != NoEntity {
		t.Fatal("fresh record should be unlinked")
	}
	e := s.Link(0, 1)
	if s.EntityOf(0) != e || s.EntityOf(1) != e {
		t.Fatal("both records should join the new entity")
	}
	if got := len(s.Records(e)); got != 2 {
		t.Fatalf("entity has %d records, want 2", got)
	}
	// Linking into an existing entity.
	e2 := s.Link(1, 2)
	if e2 != e {
		t.Fatalf("expected extension of entity %d, got %d", e, e2)
	}
	if s.EntityOf(2) != e {
		t.Fatal("record 2 should join entity")
	}
}

func TestEntityStoreMergeTwoEntities(t *testing.T) {
	s := NewEntityStore(tinyDataset(6))
	ea := s.Link(0, 1)
	eb := s.Link(2, 3)
	if ea == eb {
		t.Fatal("distinct links should create distinct entities")
	}
	em := s.Link(1, 2)
	for _, r := range []model.RecordID{0, 1, 2, 3} {
		if s.EntityOf(r) != em {
			t.Fatalf("record %d not in merged entity", r)
		}
	}
	if got := len(s.Records(em)); got != 4 {
		t.Fatalf("merged entity has %d records, want 4", got)
	}
	live := s.Entities()
	if len(live) != 1 {
		t.Fatalf("expected 1 live entity, got %d", len(live))
	}
}

func TestEntityStoreSelfLinkAddsEdgeOnly(t *testing.T) {
	s := NewEntityStore(tinyDataset(3))
	e := s.Link(0, 1)
	s.Link(1, 2)
	before := len(s.Records(e))
	s.Link(0, 2) // already same entity
	if len(s.Records(e)) != before {
		t.Fatal("intra-entity link must not duplicate records")
	}
}

func TestEntityStoreUnlink(t *testing.T) {
	s := NewEntityStore(tinyDataset(4))
	e := s.Link(0, 1)
	s.Link(1, 2)
	s.Unlink(1)
	if s.EntityOf(1) != NoEntity {
		t.Fatal("unlinked record should have no entity")
	}
	recs := s.Records(e)
	if len(recs) != 2 {
		t.Fatalf("entity should retain 2 records, got %d", len(recs))
	}
	// Unlinking down to one record dissolves the entity.
	s.Unlink(0)
	if s.EntityOf(2) != NoEntity {
		t.Fatal("singleton remnant should be dissolved")
	}
	if len(s.Entities()) != 0 {
		t.Fatalf("expected no live entities, got %v", s.Entities())
	}
}

func TestEntityStoreValues(t *testing.T) {
	d := tinyDataset(3)
	d.Records[1].Sur = model.Intern("taylor")
	s := NewEntityStore(d)
	s.Link(0, 1)
	vals := s.Values(0, model.Surname)
	if vals["smith"] != 1 || vals["taylor"] != 1 {
		t.Fatalf("entity surname values = %v", vals)
	}
	// Unlinked record sees only its own value.
	vals = s.Values(2, model.Surname)
	if len(vals) != 1 || vals["smith"] != 1 {
		t.Fatalf("singleton values = %v", vals)
	}
}

func TestMatchPairsClosure(t *testing.T) {
	d := tinyDataset(3)
	s := NewEntityStore(d)
	s.Link(0, 1)
	s.Link(1, 2)
	pairs := s.MatchPairs(model.MakeRolePair(model.Bm, model.Bm))
	// Transitive closure: 3 records -> 3 pairs, including the unlinked
	// (0,2) pair.
	if len(pairs) != 3 {
		t.Fatalf("closure pairs = %d, want 3", len(pairs))
	}
	if !pairs[model.MakePairKey(0, 2)] {
		t.Fatal("closure must include the transitive pair (0,2)")
	}
}

func TestMatchPairsRoleFilter(t *testing.T) {
	d := tinyDataset(3)
	d.Records[2].Role = model.Dm
	s := NewEntityStore(d)
	s.Link(0, 1)
	s.Link(1, 2)
	bmbm := s.MatchPairs(model.MakeRolePair(model.Bm, model.Bm))
	if len(bmbm) != 1 {
		t.Fatalf("Bm-Bm pairs = %d, want 1", len(bmbm))
	}
	bmdm := s.MatchPairs(model.MakeRolePair(model.Bm, model.Dm))
	if len(bmdm) != 2 {
		t.Fatalf("Bm-Dm pairs = %d, want 2", len(bmdm))
	}
}

func TestClusterSizesSorted(t *testing.T) {
	s := NewEntityStore(tinyDataset(7))
	s.Link(0, 1)
	s.Link(1, 2)
	s.Link(3, 4)
	sizes := s.ClusterSizes()
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("cluster sizes = %v, want [3 2]", sizes)
	}
}
