package er

import (
	"testing"

	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/model"
)

// TestExtendLinksNewCertificate resolves a base data set, appends a new
// death certificate for a known family, and checks that Extend links the
// new records into the existing entities without disturbing them.
func TestExtendLinksNewCertificate(t *testing.T) {
	d := &model.Dataset{Name: "incremental"}
	add := func(role model.Role, cert model.CertID, first, sur, addr string, year int, g model.Gender, truth model.PersonID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern(addr), Year: year, Truth: truth,
		})
		return id
	}
	// Base: two birth certificates of one family.
	add(model.Bb, 0, "torquil", "macsween", "5 uig", 1870, model.Male, 1)
	add(model.Bm, 0, "flora", "macsween", "5 uig", 1870, model.Female, 2)
	add(model.Bf, 0, "ewen", "macsween", "5 uig", 1870, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "una", "macsween", "5 uig", 1872, model.Female, 4)
	add(model.Bm, 1, "flora", "macsween", "5 uig", 1872, model.Female, 2)
	add(model.Bf, 1, "ewen", "macsween", "5 uig", 1872, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})

	base := Run(d, depgraph.DefaultConfig(), DefaultConfig())
	store := base.Result.Store
	if e := store.EntityOf(1); e == NoEntity || e != store.EntityOf(4) {
		t.Fatal("base resolution should link the mothers")
	}
	motherEntity := store.EntityOf(1)
	baseMotherRecords := len(store.Records(motherEntity))

	// New: the death certificate of the first child.
	firstNew := model.RecordID(len(d.Records))
	add(model.Dd, 2, "torquil", "macsween", "5 uig", 1875, model.Male, 1)
	add(model.Dm, 2, "flora", "macsween", "5 uig", 1875, model.Female, 2)
	add(model.Df, 2, "ewen", "macsween", "5 uig", 1875, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 2, Type: model.Death, Year: 1875, Age: 5, Cause: "measles",
		Roles: map[model.Role]model.RecordID{model.Dd: firstNew, model.Dm: firstNew + 1, model.Df: firstNew + 2},
	})

	pr := Extend(d, store, firstNew, depgraph.DefaultConfig(), DefaultConfig())
	if pr.Result.Store != store {
		t.Fatal("Extend must resolve into the provided store")
	}
	// The new Dm record joins the mother's entity.
	if e := store.EntityOf(firstNew + 1); e != store.EntityOf(1) {
		t.Errorf("new Dm record in entity %d, want mother entity %d", e, store.EntityOf(1))
	}
	// The new Dd record joins the first baby's entity.
	if e := store.EntityOf(firstNew); e == NoEntity || e != store.EntityOf(0) {
		t.Errorf("new Dd record not linked to the baby: %d vs %d", e, store.EntityOf(0))
	}
	// The mother entity grew by exactly the one new record.
	if got := len(store.Records(store.EntityOf(1))); got != baseMotherRecords+1 {
		t.Errorf("mother entity has %d records, want %d", got, baseMotherRecords+1)
	}
}

// TestExtendOnlyBlocksNewPairs checks that the delta graph contains no
// node between two old records.
func TestExtendOnlyBlocksNewPairs(t *testing.T) {
	d := &model.Dataset{Name: "delta"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: model.NoPerson,
		})
		return id
	}
	for i := 0; i < 6; i++ {
		cid := model.CertID(i)
		rid := add(model.Bm, cid, "mary", "macrae", 1870+i, model.Female)
		d.Certificates = append(d.Certificates, model.Certificate{
			ID: cid, Type: model.Birth, Year: 1870 + i, Age: -1,
			Roles: map[model.Role]model.RecordID{model.Bm: rid},
		})
	}
	store := NewEntityStore(d)
	firstNew := model.RecordID(4)
	pr := Extend(d, store, firstNew, depgraph.DefaultConfig(), DefaultConfig())
	for i := range pr.Graph.Nodes {
		n := &pr.Graph.Nodes[i]
		if n.A < firstNew && n.B < firstNew {
			t.Fatalf("delta graph contains old-old node (%d,%d)", n.A, n.B)
		}
	}
}
