package er

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/snaps/snaps/internal/obs"
)

// effectiveWorkers resolves the Workers knob: 0 means GOMAXPROCS.
func (c Config) effectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// component is one independent unit of the partitioned resolve: the node
// groups of one connected component of the dependency graph, plus the
// pre-existing entities (the Extend path's restored clusters) that share
// records with them. Records never cross components, so the bootstrap and
// merge decisions of different components cannot influence each other.
type component struct {
	groups   []int32    // indices into g.Groups, ascending
	entities []EntityID // live entities of the parent store, in store order
	nodes    int        // relational node count, the load-balancing weight
}

// unionFind is a plain weighted-path-halving disjoint-set over record ids.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// partition splits the resolve into independent components. Records are
// unioned through (a) every proper node group — the group average couples
// all of a group's nodes, so they must resolve together — and (b) every
// pre-existing entity, whose value propagation and constraint checks span
// all of its records. Groups of fewer than two nodes never bootstrap or
// merge and are ignored. Components are numbered by their smallest record
// id, making the partition (and therefore the merged output) independent
// of worker scheduling.
func (r *Resolver) partition() []component {
	n := len(r.d.Records)
	uf := newUnionFind(n)
	relevant := make([]bool, n)
	for gi := range r.g.Groups {
		grp := &r.g.Groups[gi]
		if len(grp.Nodes) < 2 {
			continue
		}
		first := int32(r.g.Node(grp.Nodes[0]).A)
		for _, id := range grp.Nodes {
			node := r.g.Node(id)
			uf.union(first, int32(node.A))
			uf.union(first, int32(node.B))
		}
		relevant[uf.find(first)] = true
	}
	seeds := r.store.Entities()
	for _, e := range seeds {
		recs := r.store.Records(e)
		for _, rec := range recs[1:] {
			uf.union(int32(recs[0]), int32(rec))
		}
		relevant[uf.find(int32(recs[0]))] = true
	}
	// relevant was marked on roots that may have been merged under another
	// root since; re-anchor it before numbering.
	compIdx := make([]int32, n)
	for i := range compIdx {
		compIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		if relevant[i] {
			relevant[uf.find(int32(i))] = true
		}
	}
	count := int32(0)
	for i := 0; i < n; i++ {
		root := uf.find(int32(i))
		if relevant[root] && compIdx[root] == -1 {
			compIdx[root] = count
			count++
		}
	}
	comps := make([]component, count)
	for gi := range r.g.Groups {
		grp := &r.g.Groups[gi]
		if len(grp.Nodes) < 2 {
			continue
		}
		ci := compIdx[uf.find(int32(r.g.Node(grp.Nodes[0]).A))]
		comps[ci].groups = append(comps[ci].groups, int32(gi))
		comps[ci].nodes += len(grp.Nodes)
	}
	for _, e := range seeds {
		ci := compIdx[uf.find(int32(r.store.Records(e)[0]))]
		comps[ci].entities = append(comps[ci].entities, e)
	}
	return comps
}

// resolveParallel partitions the dependency graph into connected components
// and resolves them concurrently, then merges the per-component stores back
// into the resolver's store in component order. It returns nil when the
// graph has fewer than two components, signalling Resolve to run serially.
//
// Component resolvers share the parent's read-only state (graph, data set,
// validator, name frequencies) and, because components partition both the
// records and the relational nodes, can also share the entityOf/ver record
// slabs and the similarity/value cache slabs without synchronisation.
func (r *Resolver) resolveParallel(workers int) *Result {
	comps := r.partition()
	if len(comps) < 2 {
		return nil
	}
	st := obs.StartStage("resolve.components")

	// Hand each component its share of the pre-populated store. Seeding
	// rewrites the shared entityOf slab from parent entity ids to
	// component-local ids, so it must finish before workers start.
	subs := make([]*EntityStore, len(comps))
	for ci := range comps {
		sub := newSharedStore(r.d, r.store.entityOf, r.store.ver)
		for _, e := range comps[ci].entities {
			ent := &r.store.entities[e]
			sub.seed(ent.records, ent.links)
		}
		subs[ci] = sub
	}

	// Largest components first so a straggler starts early; results land in
	// per-component slots, so scheduling never affects the output.
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if comps[a].nodes != comps[b].nodes {
			return comps[a].nodes > comps[b].nodes
		}
		return a < b
	})
	if workers > len(comps) {
		workers = len(comps)
	}
	results := make([]*Result, len(comps))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(order) {
					return
				}
				ci := order[i]
				cr := &Resolver{
					cfg: r.cfg, g: r.g, d: r.d, store: subs[ci],
					val: r.val, nameFreq: r.nameFreq,
					simCache: r.simCache, valCache: r.valCache,
				}
				res := &Result{Store: subs[ci]}
				cr.resolveGroups(res, comps[ci].groups)
				results[ci] = res
			}
		}()
	}
	wg.Wait()

	// Merge: renumber every component's live entities into the parent store
	// in component order. Cluster contents are exactly what the serial
	// resolver produces; only the entity enumeration order differs.
	out := &Result{Store: r.store}
	r.store.entities = r.store.entities[:0]
	for ci := range comps {
		res := results[ci]
		out.MergedNodes += res.MergedNodes
		out.RefineRemoved += res.RefineRemoved
		out.RefineSplits += res.RefineSplits
		// Phase timings sum CPU time across components, the parallel
		// analogue of the serial wall-clock columns.
		out.Timings.Bootstrap += res.Timings.Bootstrap
		out.Timings.Merge += res.Timings.Merge
		out.Timings.Refine += res.Timings.Refine
		sub := subs[ci]
		for i := range sub.entities {
			ent := &sub.entities[i]
			if ent.dead || len(ent.records) == 0 {
				continue
			}
			id := EntityID(len(r.store.entities))
			r.store.entities = append(r.store.entities, entity{id: id, records: ent.records, links: ent.links})
			for _, rec := range ent.records {
				r.store.entityOf[rec] = id
			}
		}
	}
	st.Stop()
	obs.ObserveStage("bootstrap", out.Timings.Bootstrap)
	obs.ObserveStage("merge", out.Timings.Merge)
	obs.ObserveStage("refine", out.Timings.Refine)
	return out
}

// ComponentCount reports how many independent components the current graph
// and store partition into; exported for tests and diagnostics.
func (r *Resolver) ComponentCount() int { return len(r.partition()) }
