package er

import (
	"context"
	"runtime"
	"time"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
)

// PipelineResult bundles everything the offline component of SNAPS
// produces: the dependency graph, the resolved entities, and per-phase
// timings (the rows of Tables 5 and 6).
type PipelineResult struct {
	Graph  *depgraph.Graph
	Result *Result

	Blocking      time.Duration
	GenAtomic     time.Duration
	GenRelational time.Duration
	Candidates    int
}

// Total returns the full offline runtime.
func (p *PipelineResult) Total() time.Duration {
	return p.Blocking + p.GenAtomic + p.GenRelational +
		p.Result.Timings.Bootstrap + p.Result.Timings.Merge + p.Result.Timings.Refine
}

// Run executes the complete offline pipeline: LSH blocking, dependency-
// graph construction, and the SNAPS bootstrapping/merging/refinement
// process.
func Run(d *model.Dataset, gcfg depgraph.Config, cfg Config) *PipelineResult {
	return RunLSH(d, blocking.DefaultLSHConfig(), gcfg, cfg)
}

// RunLSH is Run under an explicit blocking profile. The DS-scale bench
// tiers pass blocking.ScaleLSHConfig(), whose tighter admission keeps
// candidate growth linear in the corpus; parish-scale callers should stay
// on Run. The profile's Workers field is overridden by gcfg.Workers so
// one knob bounds the whole build.
//
// Blocking streams into graph construction: candidate chunks are scored
// and interned as they are emitted, so the full candidate slice (and the
// per-candidate similarity slabs) never materialise. The chunked emitter
// preserves the serial first-occurrence pair order, so the graph — and
// everything downstream — is byte-identical to the materialised path.
// Blocking time is accounted as the producer-side wall clock minus the
// time spent inside the scoring consumer.
func RunLSH(d *model.Dataset, lcfg blocking.LSHConfig, gcfg depgraph.Config, cfg Config) *PipelineResult {
	lcfg.Workers = gcfg.Workers
	lsh := blocking.NewLSH(lcfg)
	ids := allRecordIDs(d)

	var prodTotal, inConsumer time.Duration
	g, stats := depgraph.BuildStream(d, gcfg, func(emit func(chunk []blocking.Candidate)) {
		t0 := time.Now()
		lsh.PairsChunked(d, ids, func(chunk []blocking.Candidate) {
			tc := time.Now()
			emit(chunk)
			inConsumer += time.Since(tc)
		})
		prodTotal = time.Since(t0)
	})
	blockTime := prodTotal - inConsumer
	obs.ObserveStage("blocking", blockTime)
	obs.ObserveStage("graph_atomic", stats.GenAtomic)
	obs.ObserveStage("graph_relational", stats.GenRelational)
	// DS-scale builds re-base GC pacing before resolution: the resolver's
	// first allocations otherwise ride a trigger inflated by build-phase
	// garbage, and the whole run's heap peak lands there. Gated like the
	// BuildStream boundary collection so parish-scale runs and tests skip
	// it.
	if stats.Candidates >= depgraph.GCRebaseMinCandidates {
		runtime.GC()
	}
	res := NewResolver(g, cfg).Resolve()
	return &PipelineResult{
		Graph: g, Result: res,
		Blocking:      blockTime,
		GenAtomic:     stats.GenAtomic,
		GenRelational: stats.GenRelational,
		Candidates:    stats.Candidates,
	}
}

func allRecordIDs(d *model.Dataset) []model.RecordID {
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	return ids
}

// Extend incrementally resolves newly appended records against an existing
// clustering: the data set must already contain the new records (ids at or
// after firstNew), and store holds the clusters of the earlier resolution.
// Only candidate pairs touching a new record are blocked, graphed, and
// merged; existing clusters participate through PROP-A value propagation
// and PROP-C constraints but their internal links are never revisited.
//
// This is the growth path for a live deployment: new registration quarters
// arrive, Extend folds them in, and the pedigree graph and indexes are
// rebuilt from the updated store.
func Extend(d *model.Dataset, store *EntityStore, firstNew model.RecordID, gcfg depgraph.Config, cfg Config) *PipelineResult {
	return ExtendContext(context.Background(), d, store, firstNew, gcfg, cfg)
}

// ExtendContext is Extend under the caller's trace: when the context
// carries a span (the ingest pipeline's flush trace), the incremental
// blocking, dependency-graph construction, and resolution phases each
// record a child span, attributed with the candidate-pair and new-record
// counts that drove their cost.
func ExtendContext(ctx context.Context, d *model.Dataset, store *EntityStore, firstNew model.RecordID, gcfg depgraph.Config, cfg Config) *PipelineResult {
	st := obs.StartStage("blocking")
	_, bsp := obs.StartSpan(ctx, "er.blocking")
	lcfg := blocking.DefaultLSHConfig()
	lcfg.Workers = gcfg.Workers
	lsh := blocking.NewLSH(lcfg)
	focus := make(map[model.RecordID]bool, len(d.Records)-int(firstNew))
	for id := firstNew; int(id) < len(d.Records); id++ {
		focus[id] = true
	}
	cands := lsh.PairsTouching(d, allRecordIDs(d), focus)
	bsp.SetAttr("new_records", int64(len(focus)))
	bsp.SetAttr("candidate_pairs", int64(len(cands)))
	bsp.End()
	blockTime := st.Stop()

	_, gsp := obs.StartSpan(ctx, "er.graph")
	g, stats := depgraph.Build(d, gcfg, cands)
	gsp.End()
	obs.ObserveStage("graph_atomic", stats.GenAtomic)
	obs.ObserveStage("graph_relational", stats.GenRelational)

	_, rsp := obs.StartSpan(ctx, "er.resolve")
	store.Grow()
	r := NewResolver(g, cfg)
	r.store = store
	res := r.Resolve()
	rsp.SetAttr("merged_nodes", int64(res.MergedNodes))
	rsp.End()
	return &PipelineResult{
		Graph: g, Result: res,
		Blocking:      blockTime,
		GenAtomic:     stats.GenAtomic,
		GenRelational: stats.GenRelational,
		Candidates:    len(cands),
	}
}
