package er

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

// TestQualityCheck logs headline quality; used during development to track
// regressions. It asserts only loose floors so seed drift does not flake.
func TestQualityCheck(t *testing.T) {
	d := dataset.Generate(dataset.IOS().Scaled(0.25)).Dataset
	pr := Run(d, depgraph.DefaultConfig(), DefaultConfig())
	pred := map[model.PairKey]bool{}
	truth := map[model.PairKey]bool{}
	for _, rp := range []model.RolePair{
		model.MakeRolePair(model.Bm, model.Bm),
		model.MakeRolePair(model.Bf, model.Bf),
	} {
		for k := range pr.Result.Store.MatchPairs(rp) {
			pred[k] = true
		}
		for k := range d.TruePairs(rp) {
			truth[k] = true
		}
	}
	q := eval.QualityOf(eval.Compare(pred, truth))
	t.Logf("IOS Bp-Bp: %v", q)
	if q.Precision < 88 || q.Recall < 80 {
		t.Errorf("quality floor breached: %v", q)
	}
}
