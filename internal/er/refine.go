package er

import (
	"sort"

	"github.com/snaps/snaps/internal/model"
)

// Refine implements the REF technique (Sec. 4.2.5): after each
// bootstrapping/merging step, record clusters are inspected with the graph
// measures of Randall et al. — loosely connected clusters (chains) are more
// likely to contain wrong links than densely connected ones (cliques).
//
// For clusters with more than tn records, the cluster is split at bridge
// edges. For clusters with at least three records whose link-graph density
// is below td, the record with the lowest degree is removed so it can
// relink correctly in the next iteration.
func (s *EntityStore) Refine(td float64, tn int) (removed, splits int) {
	// Snapshot entity ids first; refinement mutates the store.
	ids := s.Entities()
	for _, e := range ids {
		ent := &s.entities[e]
		if ent.dead || len(ent.records) < 3 {
			continue
		}
		if tn > 0 && len(ent.records) > tn {
			if s.splitByBridges(e) {
				splits++
				continue
			}
		}
		// Peel low-degree records until the cluster is dense enough:
		// loosely attached records are the likely wrong links.
		for len(ent.records) >= 3 {
			n := len(ent.records)
			d := 2 * float64(len(dedupLinks(ent.links))) / float64(n*(n-1))
			if d >= td {
				break
			}
			r, ok := lowestDegree(ent)
			if !ok {
				break
			}
			s.Unlink(r)
			removed++
			if ent.dead {
				break
			}
		}
	}
	return removed, splits
}

// dedupLinks returns the distinct undirected edges of an entity link list.
func dedupLinks(links []linkEdge) []linkEdge {
	seen := map[model.PairKey]bool{}
	out := links[:0:0]
	for _, l := range links {
		k := model.MakePairKey(l.a, l.b)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, l)
	}
	return out
}

// lowestDegree returns the record with the fewest incident link edges.
func lowestDegree(ent *entity) (model.RecordID, bool) {
	if len(ent.records) == 0 {
		return 0, false
	}
	deg := map[model.RecordID]int{}
	for _, r := range ent.records {
		deg[r] = 0
	}
	for _, l := range dedupLinks(ent.links) {
		deg[l.a]++
		deg[l.b]++
	}
	best := ent.records[0]
	for _, r := range ent.records[1:] {
		if deg[r] < deg[best] || (deg[r] == deg[best] && r < best) {
			best = r
		}
	}
	return best, true
}

// splitByBridges finds the bridges of the entity's link graph and, if any
// exist, removes them and rehomes the resulting connected components as
// separate entities. It reports whether a split happened.
func (s *EntityStore) splitByBridges(e EntityID) bool {
	ent := &s.entities[e]
	links := dedupLinks(ent.links)
	bridges := findBridges(ent.records, links)
	if len(bridges) == 0 {
		return false
	}
	isBridge := map[model.PairKey]bool{}
	for _, b := range bridges {
		isBridge[b] = true
	}
	var kept []linkEdge
	for _, l := range links {
		if !isBridge[model.MakePairKey(l.a, l.b)] {
			kept = append(kept, l)
		}
	}
	// Components over kept edges.
	adj := map[model.RecordID][]model.RecordID{}
	for _, l := range kept {
		adj[l.a] = append(adj[l.a], l.b)
		adj[l.b] = append(adj[l.b], l.a)
	}
	records := append([]model.RecordID(nil), ent.records...)
	sort.Slice(records, func(i, j int) bool { return records[i] < records[j] })
	comp := map[model.RecordID]int{}
	var comps [][]model.RecordID
	for _, r := range records {
		if _, ok := comp[r]; ok {
			continue
		}
		ci := len(comps)
		stack := []model.RecordID{r}
		comp[r] = ci
		var members []model.RecordID
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, x)
			for _, y := range adj[x] {
				if _, ok := comp[y]; !ok {
					comp[y] = ci
					stack = append(stack, y)
				}
			}
		}
		comps = append(comps, members)
	}
	// Kill the old entity and rehome each component.
	ent.records, ent.links, ent.dead = nil, nil, true
	edgesOf := make([][]linkEdge, len(comps))
	for _, l := range kept {
		ci := comp[l.a]
		edgesOf[ci] = append(edgesOf[ci], l)
	}
	for ci, members := range comps {
		s.replaceCluster(members, edgesOf[ci])
	}
	return true
}

// findBridges returns the bridge edges of an undirected graph via the
// classic Tarjan low-link DFS.
func findBridges(records []model.RecordID, links []linkEdge) []model.PairKey {
	adj := map[model.RecordID][]model.RecordID{}
	for _, l := range links {
		adj[l.a] = append(adj[l.a], l.b)
		adj[l.b] = append(adj[l.b], l.a)
	}
	disc := map[model.RecordID]int{}
	low := map[model.RecordID]int{}
	var bridges []model.PairKey
	timer := 0

	// Iterative DFS to avoid recursion depth limits on long chains.
	type frame struct {
		node, parent model.RecordID
		childIdx     int
	}
	for _, root := range records {
		if _, ok := disc[root]; ok {
			continue
		}
		stack := []frame{{node: root, parent: -1}}
		disc[root], low[root] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.childIdx < len(adj[f.node]) {
				child := adj[f.node][f.childIdx]
				f.childIdx++
				if child == f.parent {
					continue
				}
				if _, seen := disc[child]; seen {
					if disc[child] < low[f.node] {
						low[f.node] = disc[child]
					}
					continue
				}
				disc[child], low[child] = timer, timer
				timer++
				stack = append(stack, frame{node: child, parent: f.node})
				continue
			}
			stack = stack[:len(stack)-1]
			if f.parent != -1 {
				if low[f.node] < low[f.parent] {
					low[f.parent] = low[f.node]
				}
				if low[f.node] > disc[f.parent] {
					bridges = append(bridges, model.MakePairKey(f.parent, f.node))
				}
			}
		}
	}
	return bridges
}
