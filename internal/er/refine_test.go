package er

import (
	"testing"

	"github.com/snaps/snaps/internal/model"
)

func TestRefineRemovesChainTail(t *testing.T) {
	// A 5-record chain has density 2*4/(5*4) = 0.4; with td=0.5 the
	// low-degree endpoints are peeled until the cluster is dense enough.
	s := NewEntityStore(tinyDataset(5))
	for i := 0; i < 4; i++ {
		s.Link(model.RecordID(i), model.RecordID(i+1))
	}
	removed, _ := s.Refine(0.5, 100)
	if removed == 0 {
		t.Fatal("expected chain peeling to remove records")
	}
	for _, e := range s.Entities() {
		n := len(s.Records(e))
		if n >= 3 {
			ent := &s.entities[e]
			d := 2 * float64(len(dedupLinks(ent.links))) / float64(n*(n-1))
			if d < 0.5 {
				t.Fatalf("entity %d still sparse after refine: density %v", e, d)
			}
		}
	}
}

func TestRefineKeepsClique(t *testing.T) {
	s := NewEntityStore(tinyDataset(4))
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			s.Link(model.RecordID(i), model.RecordID(j))
		}
	}
	removed, splits := s.Refine(0.3, 15)
	if removed != 0 || splits != 0 {
		t.Fatalf("clique must survive refine, got removed=%d splits=%d", removed, splits)
	}
	if len(s.Entities()) != 1 || len(s.Records(s.Entities()[0])) != 4 {
		t.Fatal("clique entity should be intact")
	}
}

func TestRefineSplitsBridgedCluster(t *testing.T) {
	// Two 9-cliques joined by a single bridge: 18 records > tn=15 triggers
	// bridge splitting into the two cliques.
	s := NewEntityStore(tinyDataset(18))
	link := func(a, b int) { s.Link(model.RecordID(a), model.RecordID(b)) }
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			link(i, j)
			link(i+9, j+9)
		}
	}
	link(0, 9) // the bridge
	if len(s.Entities()) != 1 {
		t.Fatal("setup should produce one entity")
	}
	_, splits := s.Refine(0.3, 15)
	if splits != 1 {
		t.Fatalf("expected 1 bridge split, got %d", splits)
	}
	ents := s.Entities()
	if len(ents) != 2 {
		t.Fatalf("expected 2 entities after split, got %d", len(ents))
	}
	for _, e := range ents {
		if len(s.Records(e)) != 9 {
			t.Fatalf("expected 9-record components, got %d", len(s.Records(e)))
		}
	}
}

func TestRefineSmallClustersUntouched(t *testing.T) {
	s := NewEntityStore(tinyDataset(2))
	s.Link(0, 1)
	removed, splits := s.Refine(0.9, 15)
	if removed != 0 || splits != 0 {
		t.Fatal("two-record clusters are below the refine minimum")
	}
}

func TestFindBridges(t *testing.T) {
	// Triangle 0-1-2 plus pendant 2-3: only (2,3) is a bridge.
	links := []linkEdge{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	records := []model.RecordID{0, 1, 2, 3}
	bridges := findBridges(records, links)
	if len(bridges) != 1 {
		t.Fatalf("bridges = %v, want exactly one", bridges)
	}
	if bridges[0] != model.MakePairKey(2, 3) {
		t.Fatalf("bridge = %v, want (2,3)", bridges[0])
	}
}

func TestFindBridgesChain(t *testing.T) {
	// In a chain every edge is a bridge.
	links := []linkEdge{{0, 1}, {1, 2}, {2, 3}}
	bridges := findBridges([]model.RecordID{0, 1, 2, 3}, links)
	if len(bridges) != 3 {
		t.Fatalf("chain of 4 has 3 bridges, got %d", len(bridges))
	}
}

func TestFindBridgesCycleHasNone(t *testing.T) {
	links := []linkEdge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	bridges := findBridges([]model.RecordID{0, 1, 2, 3}, links)
	if len(bridges) != 0 {
		t.Fatalf("cycle has no bridges, got %v", bridges)
	}
}
