package er

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"github.com/snaps/snaps/internal/constraint"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/simcache"
	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// Config holds the SNAPS resolver parameters and the ablation switches used
// by Table 3 of the paper.
type Config struct {
	// BootstrapThreshold is t_b: minimum average atomic similarity of a node
	// group for bootstrap merging (paper: 0.95).
	BootstrapThreshold float64
	// MergeThreshold is t_m: minimum average node similarity for merging
	// (paper: 0.85).
	MergeThreshold float64
	// Gamma is γ in Eq. (3): weight of the atomic similarity versus the
	// disambiguation similarity (paper: 0.6).
	Gamma float64
	// WMust, WCore, WExtra weight the attribute categories in Eq. (1)
	// (paper example: 0.5/0.3/0.2).
	WMust, WCore, WExtra float64
	// DensityThreshold is t_d and BridgeSplitSize is t_n for the REF
	// technique (paper: 0.3 and 15).
	DensityThreshold float64
	BridgeSplitSize  int
	// Passes is the number of merge+refine passes; the second pass lets
	// records freed by REF relink (paper: iterative process).
	Passes int

	// Ablation switches (all true for full SNAPS).
	Propagation bool // PROP-A and PROP-C
	Ambiguity   bool // AMB
	Relations   bool // REL
	Refinement  bool // REF

	// MaxPropValues caps the entity value set considered during PROP-A so
	// pathological clusters cannot make propagation quadratic.
	MaxPropValues int

	// ExtraYearWindow bounds the temporal validity of Extra-attribute
	// disagreement: two records whose events lie within this many years and
	// whose addresses/occupations are both present but dissimilar receive
	// negative evidence; farther apart, the attribute may legitimately have
	// changed and contributes nothing.
	ExtraYearWindow int

	// Workers bounds the concurrency of the component-partitioned resolve:
	// 0 uses GOMAXPROCS, 1 forces the serial resolver. Groups in different
	// connected components of the dependency graph share no records, so
	// their merge decisions are independent and the parallel resolve
	// produces the same clusters as the serial one (entity enumeration
	// order differs; cluster contents do not).
	Workers int
}

// DefaultConfig returns the paper's published parameter values with every
// technique enabled.
func DefaultConfig() Config {
	return Config{
		BootstrapThreshold: 0.95,
		MergeThreshold:     0.85,
		Gamma:              0.6,
		WMust:              0.5, WCore: 0.3, WExtra: 0.2,
		DensityThreshold: 0.3,
		BridgeSplitSize:  15,
		Passes:           2,
		Propagation:      true, Ambiguity: true, Relations: true, Refinement: true,
		MaxPropValues:   6,
		ExtraYearWindow: 6,
	}
}

// Timings reports the wall-clock duration of each offline phase, matching
// the columns of Tables 5 and 6.
type Timings struct {
	Bootstrap time.Duration
	Merge     time.Duration
	Refine    time.Duration
}

// Result is the outcome of the resolution: the record clusters plus phase
// timings and counters.
type Result struct {
	Store   *EntityStore
	Timings Timings
	// MergedNodes counts relational nodes that were merged.
	MergedNodes int
	// RefineRemoved and RefineSplits count REF interventions.
	RefineRemoved int
	RefineSplits  int
}

// Resolver runs the SNAPS ER process over a dependency graph.
type Resolver struct {
	cfg   Config
	g     *depgraph.Graph
	d     *model.Dataset
	store *EntityStore
	val   *constraint.Validator

	// nameFreq counts records per (first name, surname, address) symbol
	// combination; the denominator of the disambiguation similarity in
	// Eq. (2). Keying by the symbol triple instead of a joined string
	// makes every lookup three integer compares and no allocation.
	nameFreq map[nameComboKey]int

	// simCache memoises nodeSim per relational node. A node's similarity is
	// a pure function of the current entity views of its two records, so a
	// cached score is valid while both records' store version stamps are
	// unchanged. The merge queue and the REL iteration re-score the same
	// nodes many times between store mutations, making this the hottest
	// cache in the offline build.
	simCache []nodeSimEntry
	// valCache memoises entityValues per record, invalidated by the same
	// version stamps: a record participates in many relational nodes, and
	// each re-score of any of them re-derives the same value lists.
	valCache []valuesEntry
}

// valuesEntry caches the propagated value lists of one record at store
// version ver. Values are interned symbols: every propagated value is some
// record's attribute, so it already has a symbol, and symbol lists feed
// the memoised similarity kernels without re-materialising strings.
type valuesEntry struct {
	ver   uint32
	valid [model.NumAttrs]bool
	vals  [model.NumAttrs][]model.Sym
}

// nodeSimEntry is one memoised node similarity, valid while the version
// stamps of the node's records still equal verA/verB.
type nodeSimEntry struct {
	verA, verB uint32
	sim        float64
	valid      bool
}

// NewResolver prepares a resolver for the graph.
func NewResolver(g *depgraph.Graph, cfg Config) *Resolver {
	r := &Resolver{
		cfg:      cfg,
		g:        g,
		d:        g.Dataset,
		store:    NewEntityStore(g.Dataset),
		val:      constraint.NewValidator(g.Dataset),
		nameFreq: map[nameComboKey]int{},
		simCache: make([]nodeSimEntry, len(g.Nodes)),
		valCache: make([]valuesEntry, len(g.Dataset.Records)),
	}
	for i := range r.d.Records {
		r.nameFreq[nameCombo(&r.d.Records[i])]++
	}
	return r
}

// nameComboKey is the symbol form of the "combination of several QID
// values" of Eq. (2): first name, surname, address.
type nameComboKey [3]model.Sym

// nameCombo is the combination whose frequency feeds the disambiguation
// similarity of Eq. (2). Two records of a rare full combination are very
// likely the same person; a frequent combination (a common name in a
// common place) needs relationship corroboration. Symbols are equal iff
// their strings are equal, so the triple keys the same partition the old
// joined string did.
func nameCombo(rec *model.Record) nameComboKey {
	return nameComboKey{rec.First, rec.Sur, rec.Addr}
}

// Resolve runs bootstrapping, merging, and refinement, and returns the
// resulting clusters. With Config.Workers allowing more than one worker the
// dependency graph is partitioned into connected components and resolved
// concurrently (see resolveParallel); otherwise the serial process runs.
func (r *Resolver) Resolve() *Result {
	if w := r.cfg.effectiveWorkers(); w > 1 {
		if res := r.resolveParallel(w); res != nil {
			return res
		}
	}
	res := &Result{Store: r.store}
	groups := make([]int32, len(r.g.Groups))
	for i := range groups {
		groups[i] = int32(i)
	}
	r.resolveGroups(res, groups)
	obs.ObserveStage("bootstrap", res.Timings.Bootstrap)
	obs.ObserveStage("merge", res.Timings.Merge)
	obs.ObserveStage("refine", res.Timings.Refine)
	return res
}

// resolveGroups runs the full bootstrap → refine → (merge+refine)×passes
// schedule restricted to the given node groups (indices into g.Groups,
// ascending), accumulating timings and counters into res. The serial
// resolver passes every group; component resolvers pass their partition.
func (r *Resolver) resolveGroups(res *Result, groups []int32) {
	t0 := time.Now()
	r.bootstrap(res, groups)
	res.Timings.Bootstrap += time.Since(t0)
	r.refine(res)

	refineBefore := res.Timings.Refine
	t1 := time.Now()
	passes := r.cfg.Passes
	if passes < 1 {
		passes = 1
	}
	for p := 0; p < passes; p++ {
		r.merge(res, groups)
		r.refine(res)
	}
	res.Timings.Merge += time.Since(t1) - (res.Timings.Refine - refineBefore)
}

// refine runs the REF technique when enabled.
func (r *Resolver) refine(res *Result) {
	if !r.cfg.Refinement {
		return
	}
	t := time.Now()
	rem, spl := r.store.Refine(r.cfg.DensityThreshold, r.cfg.BridgeSplitSize)
	res.Timings.Refine += time.Since(t)
	res.RefineRemoved += rem
	res.RefineSplits += spl
}

// bootstrap merges node groups whose average atomic similarity is at least
// t_b. Only proper groups (two or more nodes) are bootstrapped: groups
// carry relationship evidence that singleton pairs lack (Sec. 4.2.6).
func (r *Resolver) bootstrap(res *Result, groups []int32) {
	for _, gi := range groups {
		grp := &r.g.Groups[gi]
		if len(grp.Nodes) < 2 {
			continue
		}
		sum := 0.0
		for _, id := range grp.Nodes {
			sum += r.strictAtomicSim(r.g.Node(id))
		}
		if sum/float64(len(grp.Nodes)) < r.cfg.BootstrapThreshold {
			continue
		}
		ordered := append([]depgraph.NodeID(nil), grp.Nodes...)
		sort.Slice(ordered, func(i, j int) bool {
			si, sj := r.strictAtomicSim(r.g.Node(ordered[i])), r.strictAtomicSim(r.g.Node(ordered[j]))
			if si != sj {
				return si > sj
			}
			return ordered[i] < ordered[j]
		})
		for _, id := range ordered {
			n := r.g.Node(id)
			if r.linkable(n) {
				r.mergeNode(n, res)
			}
		}
	}
}

// merge processes node groups from a priority queue ordered by group size
// and then by average node similarity, applying PROP-C validation, PROP-A
// propagation, AMB similarity, and REL drop-lowest iteration (Sec. 4.2.6).
func (r *Resolver) merge(res *Result, groups []int32) {
	pq := r.buildQueue(groups)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(*queueItem)
		r.mergeGroup(item.nodes, res)
	}
}

// queueItem is a node group awaiting merging.
type queueItem struct {
	nodes []depgraph.NodeID
	size  int
	avg   float64
	gid   depgraph.GroupID
}

// groupQueue orders groups by size (desc), then average similarity (desc),
// then group id for determinism.
type groupQueue []*queueItem

func (q groupQueue) Len() int { return len(q) }
func (q groupQueue) Less(i, j int) bool {
	if q[i].size != q[j].size {
		return q[i].size > q[j].size
	}
	if q[i].avg != q[j].avg {
		return q[i].avg > q[j].avg
	}
	return q[i].gid < q[j].gid
}
func (q groupQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *groupQueue) Push(x any)   { *q = append(*q, x.(*queueItem)) }
func (q *groupQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func (r *Resolver) buildQueue(groups []int32) *groupQueue {
	q := &groupQueue{}
	for _, gi := range groups {
		grp := &r.g.Groups[gi]
		// Singleton groups carry no relationship evidence and are never
		// merged: an isolated record pair that matches only by name is
		// indistinguishable from a namesake coincidence.
		if len(grp.Nodes) < 2 {
			continue
		}
		var nodes []depgraph.NodeID
		sum := 0.0
		merged := 0
		for _, id := range grp.Nodes {
			n := r.g.Node(id)
			if n.Merged {
				merged++
			}
			nodes = append(nodes, id)
			// Priority uses the full node similarity so that groups of
			// unambiguous (rare-name) pairs are processed before ambiguous
			// ones, as the paper's disambiguation prioritisation requires.
			sum += r.nodeSim(n)
		}
		if merged == len(nodes) {
			continue
		}
		heap.Push(q, &queueItem{
			nodes: nodes, size: len(nodes),
			avg: sum / float64(len(nodes)), gid: grp.ID,
		})
	}
	return q
}

// mergeGroup runs the within-group iteration: validate constraints, refresh
// similarities under propagation, and either merge the surviving nodes when
// their average similarity reaches t_m or drop the weakest node and retry
// (the REL technique). Without REL the group gets a single all-or-nothing
// evaluation.
func (r *Resolver) mergeGroup(nodes []depgraph.NodeID, res *Result) {
	type scored struct {
		id  depgraph.NodeID
		sim float64
	}
	live := make([]scored, 0, len(nodes))
	for _, id := range nodes {
		live = append(live, scored{id: id})
	}
	for len(live) > 0 {
		// Validate constraints (PROP-C) and score (PROP-A + AMB). Removing
		// constraint-violating nodes from the group is part of the REL
		// technique; without REL they stay and drag the average down, which
		// is exactly the partial-match-group failure Table 3 ablates.
		valid := live[:0]
		for _, sc := range live {
			n := r.g.Node(sc.id)
			sc.sim = r.nodeSim(n)
			if n.Merged {
				// Already-linked nodes stay as supporting evidence for the
				// rest of their group.
				valid = append(valid, sc)
				continue
			}
			if !r.linkable(n) {
				if r.cfg.Relations {
					continue // REL: drop the violating node from the group
				}
				sc.sim = r.nodeSim(n)
			}
			valid = append(valid, sc)
		}
		live = valid
		if len(live) == 0 {
			return
		}
		sum := 0.0
		for _, sc := range live {
			sum += sc.sim
		}
		avg := sum / float64(len(live))
		// A group reduced to fewer than two nodes has lost its relationship
		// corroboration; such a lone pair only merges at bootstrap-level
		// confidence, where the disambiguation similarity alone certifies a
		// near-unique name.
		threshold := r.cfg.MergeThreshold
		if len(live) < 2 {
			threshold = r.cfg.BootstrapThreshold
		}
		if avg >= threshold {
			// Merge the strongest nodes first: when two alignments compete
			// for the same record (e.g. census children of a household),
			// the better one locks in and the link constraints then veto
			// the weaker conflicting alignment on revalidation.
			sort.Slice(live, func(i, j int) bool {
				if live[i].sim != live[j].sim {
					return live[i].sim > live[j].sim
				}
				return live[i].id < live[j].id
			})
			for _, sc := range live {
				n := r.g.Node(sc.id)
				if r.linkable(n) { // revalidate: earlier merges change entities
					r.mergeNode(n, res)
				}
			}
			return
		}
		if !r.cfg.Relations || len(live) <= 1 {
			// Without REL a low group average vetoes the whole group, which
			// is exactly the partial-match-group failure the paper ablates.
			return
		}
		// Drop the node with the lowest similarity and retry.
		lowest := 0
		for i := 1; i < len(live); i++ {
			if live[i].sim < live[lowest].sim {
				lowest = i
			}
		}
		live = append(live[:lowest], live[lowest+1:]...)
	}
}

// linkable checks the PROP-C constraints for a node: when propagation is
// enabled the full cross-product of the two records' current entities is
// validated; otherwise only the pair itself is (the graph build already
// filtered impossible pairs, so this is a cheap recheck).
func (r *Resolver) linkable(n *depgraph.RelationalNode) bool {
	if !r.val.PairOK(n.A, n.B) {
		return false
	}
	if !r.cfg.Propagation {
		return true
	}
	ea, eb := r.store.EntityOf(n.A), r.store.EntityOf(n.B)
	if ea != NoEntity && ea == eb {
		return true
	}
	return r.val.MergeOK(r.store.View(n.A), r.store.View(n.B))
}

// mergeNode links the node's records and marks it merged.
func (r *Resolver) mergeNode(n *depgraph.RelationalNode, res *Result) {
	if n.Merged {
		return
	}
	r.store.Link(n.A, n.B)
	n.Merged = true
	res.MergedNodes++
}

// extraDisagrees reports whether an unbound Extra attribute should count as
// negative evidence for a record pair: both values present and the two
// events close enough in time that the value should not have changed.
func (r *Resolver) extraDisagrees(ra, rb *model.Record, attr model.Attr) bool {
	if ra.Sym(attr) == 0 || rb.Sym(attr) == 0 {
		return false
	}
	dy := ra.Year - rb.Year
	if dy < 0 {
		dy = -dy
	}
	return dy <= r.cfg.ExtraYearWindow
}

// atomicSimOf computes the category-weighted atomic similarity s_a of
// Eq. (1) from the node's bound atomic nodes, without propagation. Bound
// atomic nodes contribute positively; name attributes without a bound node
// contribute nothing (the surname may legitimately have changed, which
// PROP-A handles); unbound Extra attributes count as negative evidence only
// when the two events are temporally close (see Config.ExtraYearWindow).
func (r *Resolver) atomicSimOf(n *depgraph.RelationalNode) float64 {
	ra, rb := r.d.Record(n.A), r.d.Record(n.B)
	var sums, counts [3]float64
	for _, attr := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
		cat := model.CategoryOf(attr)
		if sim, ok := r.g.AtomicSim(n, attr); ok {
			counts[cat]++
			sums[cat] += sim
			continue
		}
		if cat == model.Extra && r.extraDisagrees(ra, rb, attr) {
			counts[cat]++
		}
	}
	return r.combineCategories(sums, counts)
}

// combineCategories implements Eq. (1): a weighted average of the per-
// category mean similarities, dropping the weight of categories that have
// no comparable values.
func (r *Resolver) combineCategories(sums, counts [3]float64) float64 {
	weights := [3]float64{r.cfg.WMust, r.cfg.WCore, r.cfg.WExtra}
	num, den := 0.0, 0.0
	for c := 0; c < 3; c++ {
		if counts[c] == 0 {
			continue
		}
		num += weights[c] * (sums[c] / counts[c])
		den += weights[c]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// strictAtomicSim scores a node for bootstrapping: every attribute with
// values present on both records counts towards its category, so a
// dissimilar address or occupation (no atomic node) pulls the score down.
// Bootstrap links must be near-certain, so disagreement on any visible
// attribute vetoes them; the merge phase later revisits such pairs with
// disambiguation and propagation evidence.
func (r *Resolver) strictAtomicSim(n *depgraph.RelationalNode) float64 {
	ra, rb := r.d.Record(n.A), r.d.Record(n.B)
	var sums, counts [3]float64
	for _, attr := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
		// Only presence matters here: the category counting needs to know
		// the attribute is comparable, not its similarity.
		if !depgraph.AttrComparable(ra, rb, attr) {
			continue
		}
		cat := model.CategoryOf(attr)
		sim, bound := r.g.AtomicSim(n, attr)
		if !bound && cat == model.Extra && !r.extraDisagrees(ra, rb, attr) {
			continue // stale extra evidence: the value may have changed
		}
		counts[cat]++
		if bound {
			sums[cat] += sim
		}
	}
	return r.combineCategories(sums, counts)
}

// nodeSim computes the full node similarity s of Eq. (3): the convex
// combination of the (possibly propagated) atomic similarity s_a and the
// disambiguation similarity s_d. Ablating AMB sets γ=1.
//
// Must attributes are mandatory (Sec. 4.2.3): when both records carry a
// first name but no sufficiently similar pairing exists — not even through
// propagated entity values — the node scores zero.
func (r *Resolver) nodeSim(n *depgraph.RelationalNode) float64 {
	e := &r.simCache[n.ID]
	va, vb := r.store.ver[n.A], r.store.ver[n.B]
	if e.valid && e.verA == va && e.verB == vb {
		return e.sim
	}
	s := r.nodeSimUncached(n)
	*e = nodeSimEntry{verA: va, verB: vb, sim: s, valid: true}
	return s
}

// nodeSimUncached evaluates the similarity from scratch; see nodeSim.
func (r *Resolver) nodeSimUncached(n *depgraph.RelationalNode) float64 {
	if !r.mustOK(n) {
		return 0
	}
	var sa float64
	if r.cfg.Propagation {
		sa = r.propagatedSim(n)
	} else {
		sa = r.atomicSimOf(n)
	}
	if !r.cfg.Ambiguity {
		return sa
	}
	return r.cfg.Gamma*sa + (1-r.cfg.Gamma)*r.disambiguationSim(n)
}

// mustOK enforces the Must-attribute requirement: the first names must
// match (directly or via propagated entity values). A record with a missing
// first name can never satisfy the requirement in the merge phase — a
// surname-only agreement is far too weak to link on — so such nodes are
// merge-ineligible and can only be linked through the stricter bootstrap,
// where the whole family group must agree.
func (r *Resolver) mustOK(n *depgraph.RelationalNode) bool {
	ra, rb := r.d.Record(n.A), r.d.Record(n.B)
	if ra.First == 0 || rb.First == 0 {
		return false
	}
	if _, ok := r.g.AtomicSim(n, model.FirstName); ok {
		return true
	}
	if !r.cfg.Propagation {
		return false
	}
	for _, x := range r.entityValues(n.A, model.FirstName) {
		for _, y := range r.entityValues(n.B, model.FirstName) {
			if compareValues(r.g.Config, ra, rb, model.FirstName, x, y) >= r.g.Config.AtomicThreshold {
				return true
			}
		}
	}
	return false
}

// disambiguationSim implements Eq. (2): a normalised inverse-document-
// frequency of the records' name combinations. Frequent names yield low
// scores, rare names high scores.
func (r *Resolver) disambiguationSim(n *depgraph.RelationalNode) float64 {
	o := float64(len(r.d.Records))
	if o < 2 {
		return 0
	}
	fa := float64(r.nameFreq[nameCombo(r.d.Record(n.A))])
	fb := float64(r.nameFreq[nameCombo(r.d.Record(n.B))])
	if fa+fb <= 0 {
		return 0
	}
	s := math.Log2(o/(fa+fb)) / math.Log2(o)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// propagatedSim implements PROP-A: instead of the node's original atomic
// bindings, each attribute is scored by the best-matching value pair across
// the two records' current entity value sets, so a woman whose surname
// changed at marriage is compared through her entity's accumulated
// surnames. Only pairs reaching the atomic threshold t_a bind.
func (r *Resolver) propagatedSim(n *depgraph.RelationalNode) float64 {
	ra, rb := r.d.Record(n.A), r.d.Record(n.B)
	var sums, counts [3]float64
	for _, attr := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
		va := r.entityValues(n.A, attr)
		vb := r.entityValues(n.B, attr)
		if len(va) == 0 || len(vb) == 0 {
			continue
		}
		best := 0.0
		for _, x := range va {
			for _, y := range vb {
				s := compareValues(r.g.Config, ra, rb, attr, x, y)
				if s > best {
					best = s
				}
			}
		}
		// Only a value pair reaching the atomic threshold binds; below it
		// the category contributes no evidence, except for temporally
		// close Extra disagreement, which is negative evidence.
		cat := model.CategoryOf(attr)
		if best >= r.g.Config.AtomicThreshold {
			counts[cat]++
			sums[cat] += best
		} else if cat == model.Extra && r.extraDisagrees(ra, rb, attr) {
			counts[cat]++
		}
	}
	return r.combineCategories(sums, counts)
}

// entityValues returns up to MaxPropValues distinct values (as symbols) of
// the attribute across the record's entity, most frequent first, always
// including the record's own value. The result is cached against the
// record's store version stamp and must not be modified.
func (r *Resolver) entityValues(id model.RecordID, attr model.Attr) []model.Sym {
	e := &r.valCache[id]
	if ver := r.store.ver[id]; e.ver != ver {
		*e = valuesEntry{ver: ver}
	}
	if e.valid[attr] {
		return e.vals[attr]
	}
	vals := r.entityValuesUncached(id, attr)
	e.valid[attr] = true
	e.vals[attr] = vals
	return vals
}

func (r *Resolver) entityValuesUncached(id model.RecordID, attr model.Attr) []model.Sym {
	own := r.d.Record(id).Sym(attr)
	vals := r.store.ValueSyms(id, attr)
	if len(vals) == 0 {
		if own == 0 {
			return nil
		}
		return []model.Sym{own}
	}
	type vc struct {
		v model.Sym
		c int
	}
	list := make([]vc, 0, len(vals))
	for v, c := range vals {
		list = append(list, vc{v, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		// The tie-break stays lexicographic on the strings (not on symbol
		// IDs, whose order is interning order): the MaxPropValues cap cuts
		// this ordered list, so the tie-break is output-visible.
		return symbol.Str(list[i].v) < symbol.Str(list[j].v)
	})
	maxN := r.cfg.MaxPropValues
	if maxN <= 0 {
		maxN = 6
	}
	out := make([]model.Sym, 0, maxN+1)
	hasOwn := false
	for i := 0; i < len(list) && len(out) < maxN; i++ {
		out = append(out, list[i].v)
		if list[i].v == own {
			hasOwn = true
		}
	}
	if own != 0 && !hasOwn {
		out = append(out, own)
	}
	return out
}

// compareValues scores a propagated value pair with the attribute's
// comparison function, mirroring depgraph.CompareAttr on records carrying
// the substituted values x and y. Geocoded comparison only applies to the
// records' own addresses, so propagated address values fall back to bigram
// Jaccard. Values are symbols, so every string-pair comparison goes
// through the process-wide memoised kernels.
func compareValues(cfg depgraph.Config, ra, rb *model.Record, attr model.Attr, x, y model.Sym) float64 {
	if x == 0 || y == 0 {
		return 0
	}
	switch attr {
	case model.FirstName, model.Surname:
		return simcache.NameSim(x, y)
	case model.Address:
		if x == ra.Addr && y == rb.Addr && ra.Lat != 0 && rb.Lat != 0 {
			return strsim.GeoSim(ra.Lat, ra.Lon, rb.Lat, rb.Lon, cfg.GeoMaxKm)
		}
		return simcache.Jaccard(x, y)
	case model.Occupation:
		return simcache.TokenJaccard(x, y)
	}
	return 0
}
