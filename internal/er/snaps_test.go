package er

import (
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

// buildFamilyPair constructs two certificates describing the same family so
// that a clean three-node group exists: a birth (baby, mother, father) and a
// death of the baby with the same parents.
func buildFamilyPair(motherFirst1, motherFirst2 string) *model.Dataset {
	d := &model.Dataset{Name: "family"}
	add := func(role model.Role, cert model.CertID, first, sur, addr string, year int, g model.Gender, truth model.PersonID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern(addr), Year: year, Truth: truth,
		})
		return id
	}
	b0 := add(model.Bb, 0, "torquil", "macsween", "5 uig", 1870, model.Male, 1)
	b1 := add(model.Bm, 0, motherFirst1, "macsween", "5 uig", 1870, model.Female, 2)
	b2 := add(model.Bf, 0, "ewen", "macsween", "5 uig", 1870, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: b0, model.Bm: b1, model.Bf: b2},
	})
	d0 := add(model.Dd, 1, "torquil", "macsween", "5 uig", 1872, model.Male, 1)
	d1 := add(model.Dm, 1, motherFirst2, "macsween", "5 uig", 1872, model.Female, 2)
	d2 := add(model.Df, 1, "ewen", "macsween", "5 uig", 1872, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Death, Year: 1872, Age: 2, Cause: "measles",
		Roles: map[model.Role]model.RecordID{model.Dd: d0, model.Dm: d1, model.Df: d2},
	})
	return d
}

func allCands(d *model.Dataset) []blocking.Candidate {
	var out []blocking.Candidate
	for i := range d.Records {
		for j := i + 1; j < len(d.Records); j++ {
			a, b := d.Record(d.Records[i].ID), d.Record(d.Records[j].ID)
			if a.Cert == b.Cert || !blocking.GenderCompatible(a, b) {
				continue
			}
			out = append(out, blocking.Candidate{A: a.ID, B: b.ID})
		}
	}
	return out
}

func resolve(d *model.Dataset, cfg Config) *Result {
	g, _ := depgraph.Build(d, depgraph.DefaultConfig(), allCands(d))
	return NewResolver(g, cfg).Resolve()
}

func TestBootstrapMergesExactFamily(t *testing.T) {
	d := buildFamilyPair("flora", "flora")
	res := resolve(d, DefaultConfig())
	// All three aligned pairs should be linked.
	for _, want := range [][2]model.RecordID{{0, 3}, {1, 4}, {2, 5}} {
		ea, eb := res.Store.EntityOf(want[0]), res.Store.EntityOf(want[1])
		if ea == NoEntity || ea != eb {
			t.Errorf("records %d and %d should share an entity", want[0], want[1])
		}
	}
}

// TestPropagatedSimRebindsSurname unit-tests PROP-A with the example of
// Sec. 4.2.1: once a woman's entity carries both her maiden and married
// surnames, a node comparing records under the two names scores through the
// best-matching value pair instead of the original mismatch.
func TestPropagatedSimRebindsSurname(t *testing.T) {
	d := &model.Dataset{Name: "prop-unit"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: model.NoPerson,
		})
		return id
	}
	// r0: birth record under maiden name smith; r1: marriage record already
	// under the married name taylor; r2: death record under taylor with a
	// slightly misspelt first name, so the Must similarity is below 1 and a
	// propagated surname bind visibly raises the weighted average.
	r0 := add(model.Bb, 0, "mary", "smith", 1850, model.Female)
	r1 := add(model.Mf, 1, "mary", "taylor", 1875, model.Female)
	r2 := add(model.Dd, 2, "marry", "taylor", 1899, model.Female)
	_ = r1
	g, _ := depgraph.Build(d, depgraph.DefaultConfig(), []blocking.Candidate{
		{A: r0, B: r2},
	})
	nid, ok := g.NodeFor(r0, r2)
	if !ok {
		t.Fatal("missing node (r0,r2)")
	}
	r := NewResolver(g, DefaultConfig())
	n := g.Node(nid)
	before := r.propagatedSim(n)
	// Link r0 with the marriage record so mary's entity carries both
	// surnames, then the surname category binds through (taylor, taylor).
	r.store.Link(r0, r1)
	after := r.propagatedSim(n)
	if after <= before {
		t.Errorf("propagation should raise s_a once the entity carries the married surname: before=%v after=%v", before, after)
	}
	if _, bound := g.AtomicSim(n, model.Surname); bound {
		t.Fatal("test setup: the original surname pair must not bind")
	}
}

// TestSurnameChangeLinksEndToEnd runs the full pipeline on Mary's three
// certificates (birth, marriage, death) plus filler population, checking
// that her maiden-name and married-name records end in one entity.
func TestSurnameChangeLinksEndToEnd(t *testing.T) {
	d := &model.Dataset{Name: "prop"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender, truth model.PersonID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: truth,
		})
		return id
	}
	// Cert 0: Mary's birth as "mary smith" with parents.
	add(model.Bb, 0, "mary", "smith", 1850, model.Female, 1)
	add(model.Bm, 0, "flora", "smith", 1850, model.Female, 2)
	add(model.Bf, 0, "angus", "smith", 1850, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1850, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	// Cert 1: Mary's marriage: bride "mary smith" (maiden), groom taylor,
	// with her parents as bride's parents.
	add(model.Mm, 1, "donald", "taylor", 1875, model.Male, 4)
	add(model.Mf, 1, "mary", "smith", 1875, model.Female, 1)
	add(model.Mfm, 1, "flora", "smith", 1875, model.Female, 2)
	add(model.Mff, 1, "angus", "smith", 1875, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Marriage, Year: 1875, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Mm: 3, model.Mf: 4, model.Mfm: 5, model.Mff: 6},
	})
	// Cert 2: Mary's death as "mary taylor", spouse donald taylor.
	add(model.Dd, 2, "mary", "taylor", 1899, model.Female, 1)
	add(model.Dm, 2, "flora", "smith", 1899, model.Female, 2)
	add(model.Df, 2, "angus", "smith", 1899, model.Male, 3)
	add(model.Ds, 2, "donald", "taylor", 1899, model.Male, 4)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 2, Type: model.Death, Year: 1899, Age: 49, Cause: "old age",
		Roles: map[model.Role]model.RecordID{model.Dd: 7, model.Dm: 8, model.Df: 9, model.Ds: 10},
	})
	// Filler population with distinct names so that the disambiguation
	// similarity operates at a realistic |O|.
	for i := 0; i < 120; i++ {
		cid := model.CertID(len(d.Certificates))
		first := []string{"x", "y", "z", "q", "w"}[i%5] + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "ina"
		id := add(model.Bb, cid, first, "uniq"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26)), 1850+i%40, model.Female, model.PersonID(100+i))
		d.Certificates = append(d.Certificates, model.Certificate{
			ID: cid, Type: model.Birth, Year: 1850 + i%40, Age: -1,
			Roles: map[model.Role]model.RecordID{model.Bb: id},
		})
	}

	res := resolve(d, DefaultConfig())
	// The birth baby (0, "mary smith") and the deceased (7, "mary taylor")
	// should end in one entity: the marriage certificate bridges the
	// surname change.
	e0, e7 := res.Store.EntityOf(0), res.Store.EntityOf(7)
	if e0 == NoEntity || e0 != e7 {
		t.Errorf("surname-changed records not linked: entity(0)=%d entity(7)=%d", e0, e7)
	}
}

// TestPartialMatchGroup reproduces the REL example of Sec. 4.2.4: two
// siblings' birth certificates share parents but the babies are different
// people; the parent nodes must merge and the sibling node must not.
func TestPartialMatchGroup(t *testing.T) {
	d := &model.Dataset{Name: "siblings"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender, truth model.PersonID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: truth,
		})
		return id
	}
	// Two siblings both named after relatives with very similar names:
	// "john" and "john angus" (common historical practice after an infant
	// death, and the paper's partial-match group in miniature).
	add(model.Bb, 0, "john", "macrae", 1870, model.Male, 1)
	add(model.Bm, 0, "kirsty", "macrae", 1870, model.Female, 2)
	add(model.Bf, 0, "hector", "macrae", 1870, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "john", "macrae", 1873, model.Male, 4)
	add(model.Bm, 1, "kirsty", "macrae", 1873, model.Female, 2)
	add(model.Bf, 1, "hector", "macrae", 1873, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1873, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})

	res := resolve(d, DefaultConfig())
	// Parents must be linked.
	if e := res.Store.EntityOf(1); e == NoEntity || e != res.Store.EntityOf(4) {
		t.Error("mothers should be linked")
	}
	if e := res.Store.EntityOf(2); e == NoEntity || e != res.Store.EntityOf(5) {
		t.Error("fathers should be linked")
	}
	// The siblings (two Bb records) must never be linked: a person has one
	// birth certificate.
	if e := res.Store.EntityOf(0); e != NoEntity && e == res.Store.EntityOf(3) {
		t.Error("siblings wrongly linked")
	}
}

func TestAblationSwitchesChangeBehaviour(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.12))
	d := p.Dataset
	rp := model.MakeRolePair(model.Bm, model.Bm)
	truth := d.TruePairs(rp)
	run := func(mod func(*Config)) eval.Quality {
		cfg := DefaultConfig()
		mod(&cfg)
		pr := Run(d, depgraph.DefaultConfig(), cfg)
		return eval.QualityOf(eval.Compare(pr.Result.Store.MatchPairs(rp), truth))
	}
	full := run(func(c *Config) {})
	noRel := run(func(c *Config) { c.Relations = false })
	noAmb := run(func(c *Config) { c.Ambiguity = false })
	if full.FStar == 0 {
		t.Fatal("full config produced no quality")
	}
	// Without REL, partial-match groups veto merges: recall must drop.
	if noRel.Recall >= full.Recall {
		t.Errorf("removing REL should reduce recall: full R=%.2f, noREL R=%.2f", full.Recall, noRel.Recall)
	}
	// Without AMB, common-name coincidences are no longer suppressed:
	// precision must not rise.
	if noAmb.Precision > full.Precision {
		t.Errorf("removing AMB should not improve precision: full P=%.2f, noAMB P=%.2f",
			full.Precision, noAmb.Precision)
	}
}

func TestResolverDeterministic(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	r1 := Run(p.Dataset, depgraph.DefaultConfig(), DefaultConfig())
	r2 := Run(p.Dataset, depgraph.DefaultConfig(), DefaultConfig())
	rp := model.MakeRolePair(model.Bm, model.Bm)
	m1, m2 := r1.Result.Store.MatchPairs(rp), r2.Result.Store.MatchPairs(rp)
	if len(m1) != len(m2) {
		t.Fatalf("non-deterministic match counts: %d vs %d", len(m1), len(m2))
	}
	for k := range m1 {
		if !m2[k] {
			t.Fatal("match sets differ between identical runs")
		}
	}
}

func TestEndToEndQualityIOS(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.25))
	pr := Run(p.Dataset, depgraph.DefaultConfig(), DefaultConfig())
	rp := model.MakeRolePair(model.Bm, model.Bm)
	q := eval.QualityOf(eval.Compare(pr.Result.Store.MatchPairs(rp), p.Dataset.TruePairs(rp)))
	if q.Precision < 90 {
		t.Errorf("IOS Bm-Bm precision %.2f, want >= 90 (paper shape: ~99)", q.Precision)
	}
	if q.Recall < 70 {
		t.Errorf("IOS Bm-Bm recall %.2f, want >= 70 (paper shape: ~95)", q.Recall)
	}
}

func TestDisambiguationSimMonotone(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	d := p.Dataset
	g, _ := depgraph.Build(d, depgraph.DefaultConfig(), allCands(d)[:0])
	r := NewResolver(g, DefaultConfig())
	// Craft two nodes: one with a very common name combination, one rare.
	common, rare := -1, -1
	freq := map[nameComboKey]int{}
	for i := range d.Records {
		freq[nameCombo(&d.Records[i])]++
	}
	for i := range d.Records {
		f := freq[nameCombo(&d.Records[i])]
		if f > 20 && common < 0 {
			common = i
		}
		if f == 1 && rare < 0 {
			rare = i
		}
	}
	if common < 0 || rare < 0 {
		t.Skip("sample lacks required name frequencies")
	}
	nCommon := &depgraph.RelationalNode{A: model.RecordID(common), B: model.RecordID(common)}
	nRare := &depgraph.RelationalNode{A: model.RecordID(rare), B: model.RecordID(rare)}
	if r.disambiguationSim(nRare) <= r.disambiguationSim(nCommon) {
		t.Errorf("rare names must score higher disambiguation: rare=%v common=%v",
			r.disambiguationSim(nRare), r.disambiguationSim(nCommon))
	}
}

func TestMergedNodeCountsReported(t *testing.T) {
	d := buildFamilyPair("flora", "flora")
	res := resolve(d, DefaultConfig())
	if res.MergedNodes == 0 {
		t.Fatal("expected merged nodes to be counted")
	}
	if res.Timings.Bootstrap < 0 || res.Timings.Merge < 0 {
		t.Fatal("negative timings")
	}
}
