package eval

import (
	"math"

	"github.com/snaps/snaps/internal/model"
)

// Cluster-level measures complement the pairwise P/R/F*: they compare the
// produced record partition against the ground-truth partition directly,
// following the duplicate-detection clustering-evaluation literature the
// paper cites (Hassanzadeh et al., VLDB 2009).

// Partition maps each record to its cluster representative. Records absent
// from the map are implicit singletons.
type Partition map[model.RecordID]int

// PartitionFromClusters builds a partition from explicit record clusters.
func PartitionFromClusters(clusters [][]model.RecordID) Partition {
	p := Partition{}
	for i, c := range clusters {
		for _, r := range c {
			p[r] = i
		}
	}
	return p
}

// TruthPartition builds the ground-truth partition of a data set: records
// of one person share a cluster. Records without truth stay singletons.
func TruthPartition(d *model.Dataset) Partition {
	p := Partition{}
	for i := range d.Records {
		rec := &d.Records[i]
		if rec.Truth != model.NoPerson {
			p[rec.ID] = int(rec.Truth)
		}
	}
	return p
}

// ClusterMetrics summarises partition agreement.
type ClusterMetrics struct {
	// ClosestClusterF1 is the average F1 of each truth cluster against its
	// best-matching produced cluster ("closest cluster" measure).
	ClosestClusterF1 float64
	// ExactMatchFraction is the fraction of truth clusters reproduced
	// exactly.
	ExactMatchFraction float64
	// VariationOfInformation is the VI distance between the partitions in
	// bits (0 = identical); lower is better.
	VariationOfInformation float64
	// TruthClusters and ProducedClusters count non-singleton clusters.
	TruthClusters, ProducedClusters int
}

// CompareClusters scores a produced partition against the truth partition
// over the union of records either partition covers.
func CompareClusters(produced, truth Partition) ClusterMetrics {
	universe := map[model.RecordID]bool{}
	for r := range produced {
		universe[r] = true
	}
	for r := range truth {
		universe[r] = true
	}
	n := len(universe)
	var m ClusterMetrics
	if n == 0 {
		return m
	}

	prodSets := invert(produced, universe)
	truthSets := invert(truth, universe)
	m.ProducedClusters = countNonSingleton(prodSets)
	m.TruthClusters = countNonSingleton(truthSets)

	// Closest-cluster F1 and exact matches, averaged over truth clusters.
	sumF1 := 0.0
	exact := 0
	for _, ts := range truthSets {
		bestF1 := 0.0
		bestExact := false
		for _, ps := range prodSets {
			inter := intersectionSize(ts, ps)
			if inter == 0 {
				continue
			}
			p := float64(inter) / float64(len(ps))
			r := float64(inter) / float64(len(ts))
			f1 := 2 * p * r / (p + r)
			if f1 > bestF1 {
				bestF1 = f1
				bestExact = inter == len(ts) && inter == len(ps)
			}
		}
		sumF1 += bestF1
		if bestExact {
			exact++
		}
	}
	if len(truthSets) > 0 {
		m.ClosestClusterF1 = sumF1 / float64(len(truthSets))
		m.ExactMatchFraction = float64(exact) / float64(len(truthSets))
	}

	// Variation of information: VI = H(X) + H(Y) - 2I(X;Y).
	total := float64(n)
	hx, hy, mi := 0.0, 0.0, 0.0
	for _, ps := range prodSets {
		p := float64(len(ps)) / total
		hx -= p * math.Log2(p)
	}
	for _, ts := range truthSets {
		p := float64(len(ts)) / total
		hy -= p * math.Log2(p)
	}
	for _, ps := range prodSets {
		for _, ts := range truthSets {
			inter := intersectionSize(ps, ts)
			if inter == 0 {
				continue
			}
			pxy := float64(inter) / total
			px := float64(len(ps)) / total
			py := float64(len(ts)) / total
			mi += pxy * math.Log2(pxy/(px*py))
		}
	}
	m.VariationOfInformation = hx + hy - 2*mi
	if m.VariationOfInformation < 0 {
		m.VariationOfInformation = 0 // guard tiny negative float error
	}
	return m
}

// invert groups the universe's records by cluster id; uncovered records
// become singleton sets.
func invert(p Partition, universe map[model.RecordID]bool) []map[model.RecordID]bool {
	byID := map[int]map[model.RecordID]bool{}
	var singles []map[model.RecordID]bool
	for r := range universe {
		if id, ok := p[r]; ok {
			if byID[id] == nil {
				byID[id] = map[model.RecordID]bool{}
			}
			byID[id][r] = true
		} else {
			singles = append(singles, map[model.RecordID]bool{r: true})
		}
	}
	out := make([]map[model.RecordID]bool, 0, len(byID)+len(singles))
	for _, s := range byID {
		out = append(out, s)
	}
	return append(out, singles...)
}

func countNonSingleton(sets []map[model.RecordID]bool) int {
	n := 0
	for _, s := range sets {
		if len(s) > 1 {
			n++
		}
	}
	return n
}

func intersectionSize(a, b map[model.RecordID]bool) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for r := range a {
		if b[r] {
			n++
		}
	}
	return n
}

// BlockingMetrics are the standard blocking-quality measures of the survey
// the paper builds on (Papadakis et al. 2020): pair completeness (the
// fraction of true matching pairs surviving blocking) and reduction ratio
// (the fraction of the full comparison space eliminated).
type BlockingMetrics struct {
	PairCompleteness float64
	ReductionRatio   float64
	Candidates       int
}

// CompareBlocking scores candidate pairs against the truth pairs for a
// record universe of the given size.
func CompareBlocking(cands map[model.PairKey]bool, truth map[model.PairKey]bool, nRecords int) BlockingMetrics {
	m := BlockingMetrics{Candidates: len(cands)}
	if len(truth) > 0 {
		hit := 0
		for k := range truth {
			if cands[k] {
				hit++
			}
		}
		m.PairCompleteness = float64(hit) / float64(len(truth))
	}
	full := float64(nRecords) * float64(nRecords-1) / 2
	if full > 0 {
		m.ReductionRatio = 1 - float64(len(cands))/full
	}
	return m
}
