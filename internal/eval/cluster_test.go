package eval

import (
	"math"
	"testing"

	"github.com/snaps/snaps/internal/model"
)

func TestCompareClustersIdentical(t *testing.T) {
	clusters := [][]model.RecordID{{0, 1, 2}, {3, 4}}
	p := PartitionFromClusters(clusters)
	m := CompareClusters(p, p)
	if m.ClosestClusterF1 != 1 {
		t.Errorf("identical partitions F1 = %v, want 1", m.ClosestClusterF1)
	}
	if m.ExactMatchFraction != 1 {
		t.Errorf("exact fraction = %v, want 1", m.ExactMatchFraction)
	}
	if m.VariationOfInformation > 1e-9 {
		t.Errorf("VI = %v, want 0", m.VariationOfInformation)
	}
	if m.TruthClusters != 2 || m.ProducedClusters != 2 {
		t.Errorf("cluster counts %d/%d", m.TruthClusters, m.ProducedClusters)
	}
}

func TestCompareClustersSplit(t *testing.T) {
	truth := PartitionFromClusters([][]model.RecordID{{0, 1, 2, 3}})
	produced := PartitionFromClusters([][]model.RecordID{{0, 1}, {2, 3}})
	m := CompareClusters(produced, truth)
	// Best match covers half the truth cluster perfectly: P=1, R=0.5,
	// F1=2/3.
	if math.Abs(m.ClosestClusterF1-2.0/3.0) > 1e-9 {
		t.Errorf("split F1 = %v, want 2/3", m.ClosestClusterF1)
	}
	if m.ExactMatchFraction != 0 {
		t.Errorf("split exact = %v, want 0", m.ExactMatchFraction)
	}
	if m.VariationOfInformation <= 0 {
		t.Error("split partitions should have positive VI")
	}
}

func TestCompareClustersMerged(t *testing.T) {
	truth := PartitionFromClusters([][]model.RecordID{{0, 1}, {2, 3}})
	produced := PartitionFromClusters([][]model.RecordID{{0, 1, 2, 3}})
	m := CompareClusters(produced, truth)
	// Each truth cluster matches the big cluster with P=0.5, R=1, F1=2/3.
	if math.Abs(m.ClosestClusterF1-2.0/3.0) > 1e-9 {
		t.Errorf("merged F1 = %v, want 2/3", m.ClosestClusterF1)
	}
}

func TestCompareClustersSingletons(t *testing.T) {
	// Produced covers nothing: every record is a singleton on the produced
	// side; truth clusters find only fragments.
	truth := PartitionFromClusters([][]model.RecordID{{0, 1}})
	m := CompareClusters(Partition{}, truth)
	// Best match of {0,1} to a singleton: P=1, R=0.5 -> F1=2/3.
	if math.Abs(m.ClosestClusterF1-2.0/3.0) > 1e-9 {
		t.Errorf("singleton F1 = %v", m.ClosestClusterF1)
	}
	if m.ProducedClusters != 0 {
		t.Errorf("produced non-singletons = %d, want 0", m.ProducedClusters)
	}
}

func TestCompareClustersEmpty(t *testing.T) {
	m := CompareClusters(Partition{}, Partition{})
	if m.ClosestClusterF1 != 0 || m.VariationOfInformation != 0 {
		t.Error("empty comparison should be zero-valued")
	}
}

func TestTruthPartition(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		{ID: 0, Truth: 5}, {ID: 1, Truth: 5}, {ID: 2, Truth: 6},
		{ID: 3, Truth: model.NoPerson},
	}}
	p := TruthPartition(d)
	if p[0] != p[1] || p[0] == p[2] {
		t.Error("truth partition wrong")
	}
	if _, ok := p[3]; ok {
		t.Error("truthless record in partition")
	}
}

func TestVISymmetric(t *testing.T) {
	a := PartitionFromClusters([][]model.RecordID{{0, 1, 2}, {3, 4}})
	b := PartitionFromClusters([][]model.RecordID{{0, 1}, {2, 3, 4}})
	ab := CompareClusters(a, b).VariationOfInformation
	ba := CompareClusters(b, a).VariationOfInformation
	if math.Abs(ab-ba) > 1e-9 {
		t.Errorf("VI not symmetric: %v vs %v", ab, ba)
	}
}

func TestCompareBlocking(t *testing.T) {
	truth := map[model.PairKey]bool{
		model.MakePairKey(0, 1): true,
		model.MakePairKey(2, 3): true,
	}
	cands := map[model.PairKey]bool{
		model.MakePairKey(0, 1): true,
		model.MakePairKey(0, 2): true,
	}
	m := CompareBlocking(cands, truth, 10)
	if m.PairCompleteness != 0.5 {
		t.Errorf("PC = %v, want 0.5", m.PairCompleteness)
	}
	want := 1 - 2.0/45.0
	if math.Abs(m.ReductionRatio-want) > 1e-9 {
		t.Errorf("RR = %v, want %v", m.ReductionRatio, want)
	}
	if m.Candidates != 2 {
		t.Errorf("candidates = %d", m.Candidates)
	}
}

func TestCompareBlockingEdgeCases(t *testing.T) {
	m := CompareBlocking(nil, nil, 0)
	if m.PairCompleteness != 0 || m.ReductionRatio != 0 {
		t.Error("empty blocking comparison should be zero-valued")
	}
}
