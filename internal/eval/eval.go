// Package eval implements the linkage-quality measures used by the paper:
// precision, recall, and the F*-measure of Hand, Christen & Kirielle
// (2021), F* = TP/(TP+FP+FN), which is a monotonic transformation of the
// F-measure with a direct interpretation (the fraction of relevant
// decisions that are correct).
package eval

import (
	"fmt"
	"math"

	"github.com/snaps/snaps/internal/model"
)

// Confusion counts classification outcomes over record pairs.
type Confusion struct {
	TP, FP, FN int
}

// Compare scores a predicted pair set against a truth pair set.
func Compare(predicted, truth map[model.PairKey]bool) Confusion {
	var c Confusion
	for p := range predicted {
		if truth[p] {
			c.TP++
		} else {
			c.FP++
		}
	}
	for t := range truth {
		if !predicted[t] {
			c.FN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when nothing was classified as a
// match.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no true matches.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FStar returns TP/(TP+FP+FN), or 0 when the denominator is empty.
func (c Confusion) FStar() float64 {
	if c.TP+c.FP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP+c.FN)
}

// F1 returns the classic F-measure, provided for comparison even though the
// paper argues for F*.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Quality is one row of Tables 3 and 4: percentages.
type Quality struct {
	Precision, Recall, FStar float64
}

// QualityOf converts a confusion matrix to percentage measures.
func QualityOf(c Confusion) Quality {
	return Quality{
		Precision: 100 * c.Precision(),
		Recall:    100 * c.Recall(),
		FStar:     100 * c.FStar(),
	}
}

// String formats the quality as "P=.. R=.. F*=..".
func (q Quality) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F*=%.2f", q.Precision, q.Recall, q.FStar)
}

// MeanStd summarises a sample by mean and (population) standard deviation,
// used for the Magellan rows of Table 4.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
