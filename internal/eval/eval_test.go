package eval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/snaps/snaps/internal/model"
)

func TestCompare(t *testing.T) {
	truth := map[model.PairKey]bool{1: true, 2: true, 3: true}
	pred := map[model.PairKey]bool{2: true, 3: true, 4: true}
	c := Compare(pred, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v, want TP=2 FP=1 FN=1", c)
	}
}

func TestMeasuresKnownValues(t *testing.T) {
	c := Confusion{TP: 80, FP: 20, FN: 20}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("P = %v", got)
	}
	if got := c.Recall(); got != 0.8 {
		t.Errorf("R = %v", got)
	}
	if got := c.FStar(); math.Abs(got-80.0/120.0) > 1e-12 {
		t.Errorf("F* = %v", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("F1 = %v", got)
	}
}

func TestMeasuresEmpty(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.FStar() != 0 || c.F1() != 0 {
		t.Error("empty confusion should score 0 everywhere")
	}
}

// TestFStarMonotoneInF1 checks the published property: F* is a monotonic
// transformation of F1 (F* = F1/(2-F1)).
func TestFStarMonotoneInF1(t *testing.T) {
	f := func(tp, fp, fn int) bool {
		c := Confusion{TP: tp, FP: fp, FN: fn}
		f1 := c.F1()
		fstar := c.FStar()
		if tp == 0 {
			return fstar == 0
		}
		return math.Abs(fstar-f1/(2-f1)) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(v []reflect.Value, r *rand.Rand) {
		for i := range v {
			v[i] = reflect.ValueOf(r.Intn(1000))
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFStarNeverExceedsPR(t *testing.T) {
	f := func(tp, fp, fn int) bool {
		c := Confusion{TP: tp, FP: fp, FN: fn}
		return c.FStar() <= c.Precision()+1e-12 && c.FStar() <= c.Recall()+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Values: func(v []reflect.Value, r *rand.Rand) {
		for i := range v {
			v[i] = reflect.ValueOf(r.Intn(1000))
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQualityOfPercentages(t *testing.T) {
	q := QualityOf(Confusion{TP: 1, FP: 1, FN: 0})
	if q.Precision != 50 || q.Recall != 100 || q.FStar != 50 {
		t.Errorf("quality = %+v", q)
	}
	if q.String() == "" {
		t.Error("empty String")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Error("empty sample should be 0,0")
	}
}
