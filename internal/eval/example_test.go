package eval_test

import (
	"fmt"

	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

func ExampleCompare() {
	truth := map[model.PairKey]bool{
		model.MakePairKey(1, 2): true,
		model.MakePairKey(3, 4): true,
	}
	predicted := map[model.PairKey]bool{
		model.MakePairKey(1, 2): true, // true positive
		model.MakePairKey(5, 6): true, // false positive
	}
	c := eval.Compare(predicted, truth)
	fmt.Println(eval.QualityOf(c))
	// Output:
	// P=50.00 R=50.00 F*=33.33
}

func ExampleConfusion_FStar() {
	c := eval.Confusion{TP: 80, FP: 20, FN: 20}
	fmt.Printf("F1=%.3f F*=%.3f\n", c.F1(), c.FStar())
	// Output:
	// F1=0.800 F*=0.667
}

func ExampleCompareClusters() {
	truth := eval.PartitionFromClusters([][]model.RecordID{{0, 1, 2, 3}})
	produced := eval.PartitionFromClusters([][]model.RecordID{{0, 1}, {2, 3}})
	m := eval.CompareClusters(produced, truth)
	fmt.Printf("closest-cluster F1 = %.3f\n", m.ClosestClusterF1)
	// Output:
	// closest-cluster F1 = 0.667
}
