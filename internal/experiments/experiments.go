// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 10) on the simulated data sets. Each function prints the
// same rows/series the paper reports; cmd/experiments dispatches on
// experiment ids and bench_test.go at the repository root wraps each one in
// a benchmark.
//
// Absolute numbers differ from the paper (synthetic data, different
// hardware, Go instead of Python 2.7); the shapes — who wins, by roughly
// what factor, where the techniques matter — are the reproduction target.
// EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/snaps/snaps/internal/baseline"
	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/mlmatch"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/tuning"
)

// Options scales the experiment workloads; 1.0 runs the full simulated data
// sets, smaller values run faster approximations with the same shape.
type Options struct {
	Scale float64
	// TruthKeepBpDp models the paper's incomplete, inferred Bp-Dp ground
	// truth (Sec. 10 explains the quality drop on that role pair): the
	// fraction of true Bp-Dp pairs retained when scoring. 1.0 disables it.
	TruthKeepBpDpIOS float64
	TruthKeepBpDpKIL float64
	// Workers bounds the goroutines of the offline build stages (blocking,
	// dependency-graph construction, component-partitioned resolve); 0
	// uses GOMAXPROCS, 1 forces the serial paths. Results are identical
	// for every setting.
	Workers int
	// TierCerts is the certificate count of the DS-scale tier for the
	// memdiet experiment (not part of All(); the bench script sets it).
	TierCerts int
}

// graphConfig is the dependency-graph config under the options' worker
// bound (which Run also forwards to blocking).
func (o Options) graphConfig() depgraph.Config {
	cfg := depgraph.DefaultConfig()
	cfg.Workers = o.Workers
	return cfg
}

// erConfig is the resolver config under the options' worker bound.
func (o Options) erConfig() er.Config {
	cfg := er.DefaultConfig()
	cfg.Workers = o.Workers
	return cfg
}

// DefaultOptions mirror the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{Scale: 0.25, TruthKeepBpDpIOS: 0.87, TruthKeepBpDpKIL: 0.72, TierCerts: 100000}
}

// BpBp and BpDp are the evaluated role-pair groups of Tables 3 and 4:
// birth-parent to birth-parent links and birth-parent to death-parent
// links, each combining the mother and father role pairs.
var (
	BpBp = []model.RolePair{
		model.MakeRolePair(model.Bm, model.Bm),
		model.MakeRolePair(model.Bf, model.Bf),
	}
	BpDp = []model.RolePair{
		model.MakeRolePair(model.Bm, model.Dm),
		model.MakeRolePair(model.Bf, model.Df),
	}
)

// combinedTruth merges the truth pair sets of several role pairs.
func combinedTruth(d *model.Dataset, rps []model.RolePair) map[model.PairKey]bool {
	out := map[model.PairKey]bool{}
	for _, rp := range rps {
		for k := range d.TruePairs(rp) {
			out[k] = true
		}
	}
	return out
}

// combinedPred merges the predicted pair sets of several role pairs.
func combinedPred(store *er.EntityStore, rps []model.RolePair) map[model.PairKey]bool {
	out := map[model.PairKey]bool{}
	for _, rp := range rps {
		for k := range store.MatchPairs(rp) {
			out[k] = true
		}
	}
	return out
}

// filterRolePairs keeps only pair keys whose records form one of the role
// pairs.
func filterRolePairs(d *model.Dataset, pred map[model.PairKey]bool, rps []model.RolePair) map[model.PairKey]bool {
	want := map[model.RolePair]bool{}
	for _, rp := range rps {
		want[rp] = true
	}
	out := map[model.PairKey]bool{}
	for k := range pred {
		a, b := k.Split()
		if want[model.MakeRolePair(d.Record(a).Role, d.Record(b).Role)] {
			out[k] = true
		}
	}
	return out
}

// Table1 prints the data characteristics table: missing-value counts and
// QID value frequencies of deceased people in IOS, KIL, and the DS-scale
// sample.
func Table1(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 1: missing values and QID value frequencies (deceased people)")
	fmt.Fprintf(w, "%-8s %-12s %9s %7s %8s %8s\n", "Dataset", "QID", "Missing", "Min", "Avg", "Max")
	for _, cfg := range []dataset.Config{
		dataset.IOS().Scaled(opt.Scale),
		dataset.KIL().Scaled(opt.Scale),
		dataset.DS().Scaled(opt.Scale),
	} {
		p := dataset.Generate(cfg)
		st := dataset.ComputeStats(p.Dataset, model.Dd)
		label := fmt.Sprintf("%s (%d)", cfg.Name, st.Records)
		for _, a := range []model.Attr{model.FirstName, model.Surname, model.Address, model.Occupation} {
			as := st.PerAttr[a]
			fmt.Fprintf(w, "%-8s %-12s %9d %7d %8.1f %8d\n",
				label, a, as.Missing, as.MinFreq, as.AvgFreq, as.MaxFreq)
			label = ""
		}
	}
}

// Figure2 prints the frequency distributions of the 100 most common first
// names, surnames, and addresses of deceased people in IOS and KIL: the
// series behind Figure 2.
func Figure2(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Figure 2: frequency of the 100 most common values (deceased people)")
	for _, cfg := range []dataset.Config{dataset.IOS().Scaled(opt.Scale), dataset.KIL().Scaled(opt.Scale)} {
		p := dataset.Generate(cfg)
		total := len(p.Dataset.RecordsByRole(model.Dd))
		for _, a := range []model.Attr{model.FirstName, model.Surname, model.Address} {
			top := dataset.TopValues(p.Dataset, a, 100, model.Dd)
			fmt.Fprintf(w, "%s %s: ", cfg.Name, a)
			for i, vc := range top {
				if i >= 10 {
					break // head of the series; the full curve is the ranks below
				}
				fmt.Fprintf(w, "%s=%d ", vc.Value, vc.Count)
			}
			if len(top) > 0 {
				fmt.Fprintf(w, " | top1 share=%.2f%% distinct=%d", 100*float64(top[0].Count)/float64(total), len(top))
			}
			fmt.Fprintln(w)
			// The full rank-frequency series, printable as a curve.
			fmt.Fprintf(w, "%s %s series:", cfg.Name, a)
			for _, vc := range top {
				fmt.Fprintf(w, " %d", vc.Count)
			}
			fmt.Fprintln(w)
		}
	}
}

// Table2 prints the data set characteristics used by the evaluation: number
// of records per role group, candidate record pairs, and true matches for
// Bp-Bp and Bp-Dp on IOS and KIL.
func Table2(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 2: data set characteristics")
	fmt.Fprintf(w, "%-8s %-7s %10s %10s %12s %12s\n", "Dataset", "Pair", "Role-1", "Role-2", "Cand pairs", "True match")
	for _, cfg := range []dataset.Config{dataset.IOS().Scaled(opt.Scale), dataset.KIL().Scaled(opt.Scale)} {
		p := dataset.Generate(cfg)
		d := p.Dataset
		ids := allIDs(d)
		cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
		for _, grp := range []struct {
			name   string
			rps    []model.RolePair
			roles1 []model.Role
			roles2 []model.Role
		}{
			{"Bp-Bp", BpBp, []model.Role{model.Bm, model.Bf}, []model.Role{model.Bm, model.Bf}},
			{"Bp-Dp", BpDp, []model.Role{model.Bm, model.Bf}, []model.Role{model.Dm, model.Df}},
		} {
			want := map[model.RolePair]bool{}
			for _, rp := range grp.rps {
				want[rp] = true
			}
			nc := 0
			for _, c := range cands {
				if want[model.MakeRolePair(d.Record(c.A).Role, d.Record(c.B).Role)] {
					nc++
				}
			}
			truth := combinedTruth(d, grp.rps)
			fmt.Fprintf(w, "%-8s %-7s %10d %10d %12d %12d\n",
				cfg.Name, grp.name,
				len(d.RecordsByRole(grp.roles1...)), len(d.RecordsByRole(grp.roles2...)),
				nc, len(truth))
		}
	}
}

func allIDs(d *model.Dataset) []model.RecordID {
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	return ids
}

// runSNAPS executes the full pipeline with the given graph and resolver
// configs.
func runSNAPS(d *model.Dataset, gcfg depgraph.Config, cfg er.Config) *er.PipelineResult {
	return er.Run(d, gcfg, cfg)
}

// score evaluates a prediction against (possibly thinned) truth.
func score(d *model.Dataset, pred map[model.PairKey]bool, rps []model.RolePair, keep float64) eval.Quality {
	truth := combinedTruth(d, rps)
	if keep < 1 {
		truth = dataset.BiasTruth(d, truth, keep)
	}
	return eval.QualityOf(eval.Compare(filterRolePairs(d, pred, rps), truth))
}

// Table3 prints the ablation analysis on IOS: full SNAPS and each technique
// removed in turn, for Bp-Bp and Bp-Dp.
func Table3(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 3: ablation analysis on IOS")
	p := dataset.Generate(dataset.IOS().Scaled(opt.Scale))
	d := p.Dataset

	variants := []struct {
		name string
		mod  func(*er.Config)
	}{
		{"SNAPS", func(c *er.Config) {}},
		{"without PROP", func(c *er.Config) { c.Propagation = false }},
		{"without AMB", func(c *er.Config) { c.Ambiguity = false }},
		{"without REL", func(c *er.Config) { c.Relations = false }},
		{"without REF", func(c *er.Config) { c.Refinement = false }},
	}
	type row struct {
		name       string
		bpbp, bpdp eval.Quality
	}
	var rows []row
	for _, v := range variants {
		cfg := opt.erConfig()
		v.mod(&cfg)
		pr := runSNAPS(d, opt.graphConfig(), cfg)
		rows = append(rows, row{
			name: v.name,
			bpbp: score(d, combinedPred(pr.Result.Store, BpBp), BpBp, 1),
			bpdp: score(d, combinedPred(pr.Result.Store, BpDp), BpDp, opt.TruthKeepBpDpIOS),
		})
	}
	fmt.Fprintf(w, "%-14s | %-28s | %-28s\n", "Variant", "Bp-Bp (P R F*)", "Bp-Dp (P R F*)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s | %7.2f %7.2f %7.2f      | %7.2f %7.2f %7.2f\n",
			r.name, r.bpbp.Precision, r.bpbp.Recall, r.bpbp.FStar,
			r.bpdp.Precision, r.bpdp.Recall, r.bpdp.FStar)
	}
}

// Table4 prints the linkage-quality comparison of SNAPS against the four
// baselines on IOS and KIL for Bp-Bp and Bp-Dp.
func Table4(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 4: linkage quality of SNAPS versus baselines")
	for _, ds := range []struct {
		cfg  dataset.Config
		keep float64
	}{
		{dataset.IOS().Scaled(opt.Scale), opt.TruthKeepBpDpIOS},
		{dataset.KIL().Scaled(opt.Scale), opt.TruthKeepBpDpKIL},
	} {
		p := dataset.Generate(ds.cfg)
		d := p.Dataset
		ids := allIDs(d)
		cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)

		for _, grp := range []struct {
			name string
			rps  []model.RolePair
			keep float64
		}{
			{"Bp-Bp", BpBp, 1},
			{"Bp-Dp", BpDp, ds.keep},
		} {
			fmt.Fprintf(w, "%s (%s):\n", ds.cfg.Name, grp.name)

			pr := runSNAPS(d, opt.graphConfig(), opt.erConfig())
			q := score(d, combinedPred(pr.Result.Store, grp.rps), grp.rps, grp.keep)
			fmt.Fprintf(w, "  %-12s %v\n", "SNAPS", q)

			attr := baseline.NewAttrSim().Match(d, toBaselineCands(cands))
			q = score(d, attr, grp.rps, grp.keep)
			fmt.Fprintf(w, "  %-12s %v\n", "Attr-Sim", q)

			g, _ := depgraph.Build(d, opt.graphConfig(), cands)
			store := baseline.NewDepGraph().Resolve(d, g)
			q = score(d, combinedPred(store, grp.rps), grp.rps, grp.keep)
			fmt.Fprintf(w, "  %-12s %v\n", "Dep-Graph", q)

			g2, _ := depgraph.Build(d, opt.graphConfig(), cands)
			store = baseline.NewRelCluster().Resolve(d, g2)
			q = score(d, combinedPred(store, grp.rps), grp.rps, grp.keep)
			fmt.Fprintf(w, "  %-12s %v\n", "Rel-Cluster", q)

			mp, ms := magellan(d, cands, grp.rps)
			fmt.Fprintf(w, "  %-12s P=%.1f±%.1f R=%.1f±%.1f F*=%.1f±%.1f\n",
				"Magellan", mp[0], ms[0], mp[1], ms[1], mp[2], ms[2])
		}
	}
}

func toBaselineCands(cands []blocking.Candidate) []baseline.Candidate {
	out := make([]baseline.Candidate, len(cands))
	for i, c := range cands {
		out[i] = baseline.Candidate{A: c.A, B: c.B}
	}
	return out
}

// magellan runs the supervised baseline in the paper's two regimes across
// the four classifiers, returning means and standard deviations of P, R, F*.
func magellan(d *model.Dataset, cands []blocking.Candidate, rps []model.RolePair) (mean, std [3]float64) {
	pairs := make([][2]model.RecordID, len(cands))
	for i, c := range cands {
		pairs[i] = [2]model.RecordID{c.A, c.B}
	}
	train, test := mlmatch.SplitPairs(d, pairs, 0.5, 11)
	var testRP []mlmatch.LabelledPair
	for _, rp := range rps {
		testRP = append(testRP, mlmatch.FilterRolePair(d, test, rp)...)
	}
	var trainRP []mlmatch.LabelledPair
	for _, rp := range rps {
		trainRP = append(trainRP, mlmatch.FilterRolePair(d, train, rp)...)
	}
	var ps, rs, fs []float64
	for _, regime := range []mlmatch.Regime{mlmatch.RolePairSpecific, mlmatch.AllRolePairs} {
		trainSet := trainRP
		if regime == mlmatch.AllRolePairs {
			trainSet = train
		}
		examples := mlmatch.Examples(d, trainSet)
		for _, tr := range mlmatch.DefaultTrainers() {
			c := tr.Train(examples)
			pred := mlmatch.Predict(d, c, testRP)
			q := eval.QualityOf(eval.Compare(pred, mlmatch.TruthOf(testRP)))
			ps = append(ps, q.Precision)
			rs = append(rs, q.Recall)
			fs = append(fs, q.FStar)
		}
	}
	mean[0], std[0] = eval.MeanStd(ps)
	mean[1], std[1] = eval.MeanStd(rs)
	mean[2], std[2] = eval.MeanStd(fs)
	return mean, std
}

// Table5 prints offline runtimes of SNAPS and the baselines together with
// the dependency-graph sizes |N_A| and |N_R|.
func Table5(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 5: offline runtimes (seconds)")
	fmt.Fprintf(w, "%-8s %10s %10s %9s %9s %10s %12s %10s\n",
		"Dataset", "|N_A|", "|N_R|", "SNAPS", "Attr-Sim", "Dep-Graph", "Rel-Cluster", "Magellan")
	for _, cfg := range []dataset.Config{dataset.IOS().Scaled(opt.Scale), dataset.KIL().Scaled(opt.Scale)} {
		p := dataset.Generate(cfg)
		d := p.Dataset
		ids := allIDs(d)
		cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)

		pr := runSNAPS(d, opt.graphConfig(), opt.erConfig())
		snapsTime := pr.Total()

		// Baselines are timed through the shared Stage API, so the table's
		// numbers and the snaps_stage_seconds series agree by construction.
		st := obs.StartStage("baseline_attr_sim")
		baseline.NewAttrSim().Match(d, toBaselineCands(cands))
		attrTime := st.Stop()

		g, _ := depgraph.Build(d, opt.graphConfig(), cands)
		st = obs.StartStage("baseline_dep_graph")
		baseline.NewDepGraph().Resolve(d, g)
		depTime := st.Stop()

		g2, _ := depgraph.Build(d, opt.graphConfig(), cands)
		st = obs.StartStage("baseline_rel_cluster")
		baseline.NewRelCluster().Resolve(d, g2)
		relTime := st.Stop()

		st = obs.StartStage("baseline_magellan")
		magellan(d, cands, BpBp)
		magTime := st.Stop()

		fmt.Fprintf(w, "%-8s %10d %10d %9.2f %9.2f %10.2f %12.2f %10.2f\n",
			cfg.Name, len(pr.Graph.Atomics), len(pr.Graph.Nodes),
			snapsTime.Seconds(), attrTime.Seconds(), depTime.Seconds(),
			relTime.Seconds(), magTime.Seconds())
	}
}

// Table6 prints the scalability experiment: growing BHIC time windows,
// graph sizes, per-phase runtimes, and linkage time per node and edge.
func Table6(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 6: scalability on BHIC windows")
	fmt.Fprintf(w, "%-12s %10s %10s %9s %9s %10s %9s %11s %11s\n",
		"Period", "Nodes", "Edges", "GenNA(s)", "GenNR(s)", "Boot(s)", "Merge(s)", "ms/node", "ms/edge")
	for _, startYear := range []int{1900, 1890, 1880, 1870} {
		cfg := dataset.BHIC(startYear).Scaled(opt.Scale)
		p := dataset.Generate(cfg)
		d := p.Dataset
		pr := runSNAPS(d, opt.graphConfig(), opt.erConfig())

		nodes := len(pr.Graph.Atomics) + len(pr.Graph.Nodes)
		edges := 0
		for i := range pr.Graph.Nodes {
			edges += len(pr.Graph.Nodes[i].Neighbours)
		}
		edges /= 2
		linkage := pr.Result.Timings.Bootstrap + pr.Result.Timings.Merge
		msPerNode := float64(linkage.Milliseconds()) / float64(maxInt(nodes, 1))
		msPerEdge := float64(linkage.Milliseconds()) / float64(maxInt(edges, 1))
		fmt.Fprintf(w, "%-12s %10d %10d %9.2f %9.2f %10.2f %9.2f %11.4f %11.4f\n",
			fmt.Sprintf("%d-1935", startYear), nodes, edges,
			pr.GenAtomic.Seconds(), pr.GenRelational.Seconds(),
			pr.Result.Timings.Bootstrap.Seconds(), pr.Result.Timings.Merge.Seconds(),
			msPerNode, msPerEdge)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table7 prints the online latency distribution for querying and pedigree
// extraction over a workload of queries drawn from the data itself.
func Table7(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Table 7: query and pedigree extraction latency (seconds)")
	p := dataset.Generate(dataset.IOS().Scaled(opt.Scale))
	pr := runSNAPS(p.Dataset, opt.graphConfig(), opt.erConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	engine := query.NewEngine(g, k, s)

	var queryTimes, pedTimes []time.Duration
	n := 0
	for i := range g.Nodes {
		node := &g.Nodes[i]
		if len(node.FirstNames) == 0 || len(node.Surnames) == 0 {
			continue
		}
		n++
		if n > 200 {
			break
		}
		t0 := time.Now()
		results := engine.Search(query.Query{
			FirstName: node.FirstNames[0], Surname: node.Surnames[0],
		})
		queryTimes = append(queryTimes, time.Since(t0))
		if len(results) == 0 {
			continue
		}
		t0 = time.Now()
		g.Extract(results[0].Entity, 2)
		pedTimes = append(pedTimes, time.Since(t0))
	}
	printLatencies(w, "Querying", queryTimes)
	printLatencies(w, "Pedigree extraction", pedTimes)
}

func printLatencies(w io.Writer, label string, ts []time.Duration) {
	if len(ts) == 0 {
		fmt.Fprintf(w, "%-22s no samples\n", label)
		return
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var sum time.Duration
	for _, t := range ts {
		sum += t
	}
	fmt.Fprintf(w, "%-22s min=%.6f avg=%.6f median=%.6f max=%.6f (n=%d)\n",
		label,
		ts[0].Seconds(), (sum / time.Duration(len(ts))).Seconds(),
		ts[len(ts)/2].Seconds(), ts[len(ts)-1].Seconds(), len(ts))
}

// Figure7 renders an example family pedigree as text, standing in for the
// tree visualisations of Figs. 7-8.
func Figure7(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Figures 7-8: example family pedigree renderings")
	p := dataset.Generate(dataset.IOS().Scaled(opt.Scale))
	pr := runSNAPS(p.Dataset, opt.graphConfig(), opt.erConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	// Pick the best-connected entity for an interesting tree.
	best, bestEdges := pedigree.NodeID(0), -1
	for i := range g.Nodes {
		if len(g.Nodes[i].Edges) > bestEdges {
			best, bestEdges = g.Nodes[i].ID, len(g.Nodes[i].Edges)
		}
	}
	ped := g.Extract(best, 2)
	fmt.Fprint(w, g.RenderText(ped))
}

// Sensitivity sweeps the merge threshold t_m and the similarity weighting
// γ on IOS Bp-Bp, reproducing the parameter sensitivity analysis the paper
// publishes on the SNAPS web site.
func Sensitivity(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Parameter sensitivity on IOS (Bp-Bp)")
	p := dataset.Generate(dataset.IOS().Scaled(opt.Scale))
	d := p.Dataset

	fmt.Fprintln(w, "sweep of merge threshold t_m (γ=0.6):")
	for _, tm := range []float64{0.75, 0.80, 0.85, 0.90, 0.95} {
		cfg := opt.erConfig()
		cfg.MergeThreshold = tm
		pr := runSNAPS(d, opt.graphConfig(), cfg)
		q := score(d, combinedPred(pr.Result.Store, BpBp), BpBp, 1)
		fmt.Fprintf(w, "  t_m=%.2f  %v\n", tm, q)
	}
	fmt.Fprintln(w, "sweep of γ (t_m=0.85):")
	for _, gamma := range []float64{0.4, 0.5, 0.6, 0.7, 0.8, 1.0} {
		cfg := opt.erConfig()
		cfg.Gamma = gamma
		pr := runSNAPS(d, opt.graphConfig(), cfg)
		q := score(d, combinedPred(pr.Result.Store, BpBp), BpBp, 1)
		fmt.Fprintf(w, "  γ=%.2f    %v\n", gamma, q)
	}
}

// Census runs the census-integration extension (the paper's future work,
// Sec. 12): decennial household enumerations are added to the IOS data set
// and the quality of vital-to-census links is reported alongside the
// vital-only quality, showing how the extra relationship evidence affects
// the core role pairs.
func Census(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Census integration (future-work extension)")
	base := dataset.IOS().Scaled(opt.Scale)
	withCensus := base.WithCensus()

	for _, cfg := range []dataset.Config{base, withCensus} {
		p := dataset.Generate(cfg)
		d := p.Dataset
		label := "vital records only"
		if len(cfg.CensusYears) > 0 {
			label = fmt.Sprintf("with %d censuses", len(cfg.CensusYears))
		}
		pr := runSNAPS(d, opt.graphConfig(), opt.erConfig())
		fmt.Fprintf(w, "%s (%d records):\n", label, len(d.Records))
		q := score(d, combinedPred(pr.Result.Store, BpBp), BpBp, 1)
		fmt.Fprintf(w, "  %-28s %v\n", "Bp-Bp", q)
		if len(cfg.CensusYears) > 0 {
			censusPairs := []model.RolePair{
				model.MakeRolePair(model.Bm, model.Cm),
				model.MakeRolePair(model.Bf, model.Cf),
			}
			q = score(d, combinedPred(pr.Result.Store, censusPairs), censusPairs, 1)
			fmt.Fprintf(w, "  %-28s %v\n", "birth-parent to census-head", q)
			var childPairs []model.RolePair
			for _, cc := range model.CensusChildRoles {
				childPairs = append(childPairs, model.MakeRolePair(model.Bb, cc))
			}
			q = score(d, combinedPred(pr.Result.Store, childPairs), childPairs, 1)
			fmt.Fprintf(w, "  %-28s %v\n", "baby to census-child", q)
		}
	}
}

// Blocking reports the standard blocking-quality measures (pair
// completeness over the Bp-Bp truth, reduction ratio, candidate count) for
// several LSH configurations, grounding the banding choice of DESIGN.md §4.
func Blocking(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Blocking quality on IOS (Bp-Bp truth)")
	p := dataset.Generate(dataset.IOS().Scaled(opt.Scale))
	d := p.Dataset
	ids := allIDs(d)
	truth := combinedTruth(d, BpBp)
	fmt.Fprintf(w, "%-22s %12s %10s %10s\n", "Config", "Candidates", "PC", "RR")
	score := func(label string, cands []blocking.Candidate) {
		candSet := make(map[model.PairKey]bool, len(cands))
		for _, c := range cands {
			candSet[model.MakePairKey(c.A, c.B)] = true
		}
		m := eval.CompareBlocking(candSet, truth, len(ids))
		fmt.Fprintf(w, "%-22s %12d %10.4f %10.4f\n",
			label, m.Candidates, m.PairCompleteness, m.ReductionRatio)
	}
	for _, cfg := range []blocking.LSHConfig{
		{Bands: 4, Rows: 8, Seed: 0x5eed, MaxBlockSize: 400},
		{Bands: 8, Rows: 4, Seed: 0x5eed, MaxBlockSize: 400},
		{Bands: 16, Rows: 2, Seed: 0x5eed, MaxBlockSize: 400},
	} {
		score(fmt.Sprintf("lsh bands=%d rows=%d", cfg.Bands, cfg.Rows),
			blocking.NewLSH(cfg).Pairs(d, ids))
	}
	// The deterministic phonetic blocker as a point of comparison.
	score("soundex", (&blocking.Soundex{MaxBlockSize: 400}).Pairs(d, ids))
}

// Tuning runs the learned-match-weights extension (Sec. 7 future work):
// self-retrieval queries are sampled from the resolved IOS data, split into
// train and test halves, and coordinate descent over the ranking weights is
// compared against the hand-set defaults.
func Tuning(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Learned query-ranking weights (future-work extension)")
	p := dataset.Generate(dataset.IOS().Scaled(opt.Scale))
	pr := runSNAPS(p.Dataset, opt.graphConfig(), opt.erConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	engine := query.NewEngine(g, k, s)

	qs := tuning.SampleQueries(g, 400, 17)
	half := len(qs) / 2
	train, test := qs[:half], qs[half:]

	baseMRR, baseHit := tuning.Evaluate(engine, test, 1, 5)
	fmt.Fprintf(w, "hand-set weights:  MRR=%.4f hit@1=%.3f hit@5=%.3f\n",
		baseMRR, baseHit[1], baseHit[5])

	weights, trainMRR := tuning.Tune(engine, train, tuning.DefaultConfig())
	testMRR, testHit := tuning.Evaluate(engine, test, 1, 5)
	fmt.Fprintf(w, "learned weights:   MRR=%.4f hit@1=%.3f hit@5=%.3f (train MRR=%.4f)\n",
		testMRR, testHit[1], testHit[5], trainMRR)
	fmt.Fprintf(w, "weights: first=%.2f sur=%.2f gender=%.2f year=%.2f loc=%.2f\n",
		weights.FirstName, weights.Surname, weights.Gender, weights.Year, weights.Location)
}

// Stages prints the per-stage timing summary accumulated in the default
// metrics registry over every pipeline run of the process so far — the
// same snaps_stage_seconds series GET /metrics exposes, so the offline
// tables (5-6) and live scrapes share one timing source.
func Stages(w io.Writer, opt Options) {
	fmt.Fprintln(w, "Per-stage timings (snaps_stage_seconds)")
	obs.StageSummary(w)
}

// Run dispatches an experiment id to its implementation. It reports whether
// the id was recognised.
func Run(w io.Writer, id string, opt Options) bool {
	switch id {
	case "stages":
		Stages(w, opt)
		return true
	case "memdiet":
		Memdiet(w, opt.TierCerts, opt)
		return true
	case "sensitivity":
		Sensitivity(w, opt)
		return true
	case "tuning":
		Tuning(w, opt)
		return true
	case "census":
		Census(w, opt)
		return true
	case "blocking":
		Blocking(w, opt)
		return true
	case "table1":
		Table1(w, opt)
	case "figure2":
		Figure2(w, opt)
	case "table2":
		Table2(w, opt)
	case "table3":
		Table3(w, opt)
	case "table4":
		Table4(w, opt)
	case "table5":
		Table5(w, opt)
	case "table6":
		Table6(w, opt)
	case "table7":
		Table7(w, opt)
	case "figure7", "figure8", "figure7-8":
		Figure7(w, opt)
	default:
		return false
	}
	return true
}

// All lists the experiment ids in paper order, followed by the extension
// experiments (parameter sensitivity and census integration).
func All() []string {
	return []string{
		"table1", "figure2", "table2", "table3", "table4", "table5",
		"table6", "table7", "figure7-8", "sensitivity", "census",
		"blocking", "tuning", "stages",
	}
}
