package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps the experiment smoke tests fast.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.Scale = 0.05
	return opt
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			if !Run(&sb, id, tinyOptions()) {
				t.Fatalf("experiment %q not recognised", id)
			}
			if sb.Len() == 0 {
				t.Fatalf("experiment %q produced no output", id)
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	var sb strings.Builder
	if Run(&sb, "table99", DefaultOptions()) {
		t.Fatal("unknown id accepted")
	}
}

func TestSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var sb strings.Builder
	if !Run(&sb, "sensitivity", tinyOptions()) {
		t.Fatal("sensitivity not recognised")
	}
	if !strings.Contains(sb.String(), "t_m=0.85") {
		t.Error("sensitivity output missing default threshold row")
	}
}

func TestTable3ShapeSNAPSBeatsNoREL(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var sb strings.Builder
	Table3(&sb, Options{Scale: 0.1, TruthKeepBpDpIOS: 1, TruthKeepBpDpKIL: 1})
	out := sb.String()
	if !strings.Contains(out, "SNAPS") || !strings.Contains(out, "without REL") {
		t.Fatalf("unexpected table 3 output:\n%s", out)
	}
}

func TestCombinedTruthAndPredHelpers(t *testing.T) {
	// The helpers must union without duplicating keys.
	var sb strings.Builder
	Table2(&sb, Options{Scale: 0.04, TruthKeepBpDpIOS: 1, TruthKeepBpDpKIL: 1})
	if !strings.Contains(sb.String(), "Bp-Bp") || !strings.Contains(sb.String(), "Bp-Dp") {
		t.Fatal("table 2 missing role-pair rows")
	}
}
