package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/store"
	"github.com/snaps/snaps/internal/symbol"
)

// Memdiet runs one DS-scale bench tier end to end — generate, offline
// build, snapshot in both formats — and reports the memory-diet
// trajectory as a single JSON object. scripts/bench_offline.sh runs it at
// the 100k (CI) and 1M (local) tiers and folds the output into
// BENCH_offline.json.
//
// Two bytes-per-record figures are reported:
//
//   - record-plane: the record slab plus the amortised symbol table,
//     against a *measured* reconstruction of the pre-diet layout (a slab
//     of fat records holding four privately-copied strings each, the way
//     the old gob decoder materialised them). This is the pair the >= 2x
//     acceptance gate compares, because it isolates what the diet changed.
//   - full-footprint: store.FootprintBytes over everything the snapshot
//     holds (records, certificates, clusters, symbol table) against the
//     analytic pre-diet estimate. Certificates and clusters are untouched
//     by the diet and dilute this ratio; it is reported for honesty.
func Memdiet(w io.Writer, certs int, opt Options) {
	runtime.GC()
	heapBase := heapAllocBytes()
	watch := newHeapWatch()

	t0 := time.Now()
	pop := dataset.GenerateScale(dataset.ScaleTier(certs))
	genSec := time.Since(t0).Seconds()
	heapAfterGen := heapAllocBytes()

	t0 = time.Now()
	pr := er.RunLSH(pop.Dataset, blocking.ScaleLSHConfig(), opt.graphConfig(), opt.erConfig())
	buildSec := time.Since(t0).Seconds()
	heapAfterBuild := heapAllocBytes()
	heapPeak := watch.stop()

	snap := store.FromResult(pop.Dataset, pr.Result.Store)
	n := len(pop.Dataset.Records)

	post := store.FootprintBytes(snap.Dataset, snap.Clusters)
	pre := store.FootprintBytesPreDiet(snap.Dataset, snap.Clusters)
	recPost := int64(n)*64 + symbol.Bytes() + 16*int64(symbol.Len())
	recPre := measureFatSlab(pop.Dataset)

	var v01, v02 bytes.Buffer
	if err := store.WriteV01(&v01, snap); err != nil {
		fmt.Fprintf(w, `{"experiment":"memdiet","error":%q}`+"\n", err.Error())
		return
	}
	if err := store.Write(&v02, snap); err != nil {
		fmt.Fprintf(w, `{"experiment":"memdiet","error":%q}`+"\n", err.Error())
		return
	}
	loadV01 := timeSnapshotLoad(v01.Bytes())
	loadV02 := timeSnapshotLoad(v02.Bytes())

	fmt.Fprintf(w, `{"experiment":"memdiet","tier":%q,"certs":%d,"records":%d,"clusters":%d,`+
		`"gen_seconds":%.2f,"build_seconds":%.2f,`+
		`"record_bytes_per_record":%.1f,"record_bytes_per_record_pre_diet":%.1f,"record_plane_reduction_x":%.2f,`+
		`"footprint_bytes_per_record":%.1f,"footprint_bytes_per_record_pre_diet":%.1f,`+
		`"heap_base_bytes":%d,"heap_after_gen_bytes":%d,"heap_after_build_bytes":%d,"heap_peak_bytes":%d,`+
		`"snapshot_v01_bytes":%d,"snapshot_v02_bytes":%d,`+
		`"snapshot_v01_load_seconds":%.3f,"snapshot_v02_load_seconds":%.3f}`+"\n",
		dataset.ScaleTier(certs).Name, len(pop.Dataset.Certificates), n, len(snap.Clusters),
		genSec, buildSec,
		float64(recPost)/float64(n), float64(recPre)/float64(n), float64(recPre)/float64(recPost),
		float64(post)/float64(n), float64(pre)/float64(n),
		heapBase, heapAfterGen, heapAfterBuild, heapPeak,
		v01.Len(), v02.Len(),
		loadV01, loadV02)
}

func heapAllocBytes() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// heapWatch samples HeapAlloc in the background and keeps the maximum, so
// the peak inside a long build stage is visible rather than just the
// stage-boundary values.
type heapWatch struct {
	mu   sync.Mutex
	max  uint64
	quit chan struct{}
	done chan struct{}
}

func newHeapWatch() *heapWatch {
	h := &heapWatch{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-h.quit:
				return
			case <-t.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				h.mu.Lock()
				if m.HeapAlloc > h.max {
					h.max = m.HeapAlloc
				}
				h.mu.Unlock()
			}
		}
	}()
	return h
}

func (h *heapWatch) stop() uint64 {
	close(h.quit)
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// fatRecord is the pre-diet Record layout: inline string fields instead of
// symbol ids.
type fatRecord struct {
	ID     model.RecordID
	Cert   model.CertID
	Role   model.Role
	Gender model.Gender

	First, Sur, Addr, Occ string

	Year      int
	Lat, Lon  float64
	BirthHint int
	Truth     model.PersonID
}

// measureFatSlab materialises the data set's records in the pre-diet
// layout — each populated attribute a private heap string, as the old gob
// decoder produced — and returns the measured heap growth.
func measureFatSlab(d *model.Dataset) int64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	slab := make([]fatRecord, len(d.Records))
	for i := range d.Records {
		r := &d.Records[i]
		slab[i] = fatRecord{
			ID: r.ID, Cert: r.Cert, Role: r.Role, Gender: r.Gender,
			First: strings.Clone(r.FirstName()), Sur: strings.Clone(r.Surname()),
			Addr: strings.Clone(r.Address()), Occ: strings.Clone(r.Occupation()),
			Year: r.Year, Lat: r.Lat, Lon: r.Lon, BirthHint: r.BirthHint, Truth: r.Truth,
		}
	}
	runtime.ReadMemStats(&m1)
	grew := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	runtime.KeepAlive(slab)
	return grew
}

// timeSnapshotLoad reports the faster of two decode passes over the bytes.
func timeSnapshotLoad(data []byte) float64 {
	best := 0.0
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		if _, err := store.Read(bytes.NewReader(data)); err != nil {
			return -1
		}
		if s := time.Since(t0).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best
}
