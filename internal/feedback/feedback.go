// Package feedback implements the expert-in-the-loop extension sketched in
// the paper's future work (Sec. 12): domain experts reviewing generated
// family trees can confirm or reject individual links, and the resolver
// honours this feedback on the next run as must-link and cannot-link
// constraints.
//
// Feedback is stored as an append-only journal of decisions keyed by record
// pair, so later decisions override earlier ones and the journal can be
// persisted as a plain CSV.
package feedback

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

// Decision is an expert's verdict on a record pair.
type Decision uint8

// Decisions.
const (
	// Confirm asserts the two records refer to the same person.
	Confirm Decision = iota
	// Reject asserts they refer to different people.
	Reject
)

// String returns "confirm" or "reject".
func (d Decision) String() string {
	if d == Confirm {
		return "confirm"
	}
	return "reject"
}

// Journal is an ordered log of expert decisions.
type Journal struct {
	decisions map[model.PairKey]Decision
	order     []model.PairKey
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{decisions: map[model.PairKey]Decision{}}
}

// Record logs a decision for a pair; a later decision on the same pair
// replaces the earlier one.
func (j *Journal) Record(a, b model.RecordID, d Decision) {
	k := model.MakePairKey(a, b)
	if _, seen := j.decisions[k]; !seen {
		j.order = append(j.order, k)
	}
	j.decisions[k] = d
}

// Len returns the number of distinct decided pairs.
func (j *Journal) Len() int { return len(j.decisions) }

// Decision returns the current decision for a pair.
func (j *Journal) Decision(a, b model.RecordID) (Decision, bool) {
	d, ok := j.decisions[model.MakePairKey(a, b)]
	return d, ok
}

// MustLinks returns the confirmed pairs in decision order.
func (j *Journal) MustLinks() []model.PairKey { return j.filtered(Confirm) }

// CannotLinks returns the rejected pairs in decision order.
func (j *Journal) CannotLinks() []model.PairKey { return j.filtered(Reject) }

func (j *Journal) filtered(want Decision) []model.PairKey {
	var out []model.PairKey
	for _, k := range j.order {
		if j.decisions[k] == want {
			out = append(out, k)
		}
	}
	return out
}

// Save writes the journal as CSV (record_a,record_b,decision).
func (j *Journal) Save(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"record_a", "record_b", "decision"}); err != nil {
		return err
	}
	for _, k := range j.order {
		a, b := k.Split()
		if err := cw.Write([]string{
			strconv.Itoa(int(a)), strconv.Itoa(int(b)), j.decisions[k].String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Load reads a journal written by Save.
func Load(r io.Reader) (*Journal, error) {
	j := NewJournal()
	cr := csv.NewReader(r)
	first := true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return j, nil
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if row[0] == "record_a" {
				continue
			}
		}
		if len(row) != 3 {
			return nil, fmt.Errorf("feedback: row has %d fields, want 3", len(row))
		}
		a, err1 := strconv.Atoi(row[0])
		b, err2 := strconv.Atoi(row[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("feedback: bad record ids %q,%q", row[0], row[1])
		}
		var d Decision
		switch row[2] {
		case "confirm":
			d = Confirm
		case "reject":
			d = Reject
		default:
			return nil, fmt.Errorf("feedback: bad decision %q", row[2])
		}
		j.Record(model.RecordID(a), model.RecordID(b), d)
	}
}

// Apply enforces the journal on a resolved entity store:
//
//   - cannot-links: if two rejected records share an entity, the record with
//     the smaller id stays and the other is unlinked (it becomes a singleton
//     available to other entities on a future run);
//   - must-links: confirmed pairs are linked unconditionally.
//
// Must-links are applied after cannot-links so an expert confirmation wins
// over an inherited wrong link. It returns how many corrections changed the
// clustering.
func Apply(store *er.EntityStore, j *Journal) (unlinked, linked int) {
	for _, k := range j.CannotLinks() {
		a, b := k.Split()
		ea, eb := store.EntityOf(a), store.EntityOf(b)
		if ea == er.NoEntity || ea != eb {
			continue
		}
		store.Unlink(b)
		unlinked++
	}
	for _, k := range j.MustLinks() {
		a, b := k.Split()
		ea, eb := store.EntityOf(a), store.EntityOf(b)
		if ea != er.NoEntity && ea == eb {
			continue
		}
		store.Link(a, b)
		linked++
	}
	return unlinked, linked
}

// Violations reports journal decisions the clustering currently disagrees
// with, sorted by pair key: confirmed pairs in different entities and
// rejected pairs sharing one. It is the metric an active-learning loop
// would drive to zero.
func Violations(store *er.EntityStore, j *Journal) []model.PairKey {
	var out []model.PairKey
	for _, k := range j.order {
		a, b := k.Split()
		ea, eb := store.EntityOf(a), store.EntityOf(b)
		same := ea != er.NoEntity && ea == eb
		switch j.decisions[k] {
		case Confirm:
			if !same {
				out = append(out, k)
			}
		case Reject:
			if same {
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
