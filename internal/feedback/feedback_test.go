package feedback

import (
	"bytes"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

func tinyDataset(n int) *model.Dataset {
	d := &model.Dataset{Name: "tiny"}
	for i := 0; i < n; i++ {
		d.Records = append(d.Records, model.Record{
			ID: model.RecordID(i), Cert: model.CertID(i), Role: model.Bm,
			First: model.Intern("mary"), Sur: model.Intern("smith"), Year: 1870 + i,
			Gender: model.Female, Truth: model.NoPerson,
		})
	}
	return d
}

func TestJournalRecordAndOverride(t *testing.T) {
	j := NewJournal()
	j.Record(0, 1, Confirm)
	j.Record(1, 0, Reject) // same pair, later decision wins
	if j.Len() != 1 {
		t.Fatalf("len = %d, want 1", j.Len())
	}
	d, ok := j.Decision(0, 1)
	if !ok || d != Reject {
		t.Fatalf("decision = %v,%v, want Reject", d, ok)
	}
	if len(j.MustLinks()) != 0 || len(j.CannotLinks()) != 1 {
		t.Fatal("filtered views wrong after override")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	j := NewJournal()
	j.Record(0, 1, Confirm)
	j.Record(2, 3, Reject)
	j.Record(4, 5, Confirm)
	var buf bytes.Buffer
	if err := j.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d, want 3", got.Len())
	}
	if d, _ := got.Decision(2, 3); d != Reject {
		t.Fatal("decision lost in round trip")
	}
	if len(got.MustLinks()) != 2 {
		t.Fatal("must-links lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("record_a,record_b,decision\nx,1,confirm\n")); err == nil {
		t.Error("bad record id accepted")
	}
	if _, err := Load(strings.NewReader("0,1,maybe\n")); err == nil {
		t.Error("bad decision accepted")
	}
}

func TestApplyCannotLink(t *testing.T) {
	d := tinyDataset(4)
	store := er.NewEntityStore(d)
	store.Link(0, 1)
	store.Link(1, 2)

	j := NewJournal()
	j.Record(0, 2, Reject)
	unlinked, linked := Apply(store, j)
	if unlinked != 1 || linked != 0 {
		t.Fatalf("unlinked=%d linked=%d, want 1,0", unlinked, linked)
	}
	if e0, e2 := store.EntityOf(0), store.EntityOf(2); e0 != er.NoEntity && e0 == e2 {
		t.Fatal("rejected pair still shares an entity")
	}
}

func TestApplyMustLink(t *testing.T) {
	d := tinyDataset(4)
	store := er.NewEntityStore(d)
	j := NewJournal()
	j.Record(0, 3, Confirm)
	unlinked, linked := Apply(store, j)
	if unlinked != 0 || linked != 1 {
		t.Fatalf("unlinked=%d linked=%d, want 0,1", unlinked, linked)
	}
	if store.EntityOf(0) == er.NoEntity || store.EntityOf(0) != store.EntityOf(3) {
		t.Fatal("confirmed pair not linked")
	}
}

func TestApplyIdempotent(t *testing.T) {
	d := tinyDataset(4)
	store := er.NewEntityStore(d)
	j := NewJournal()
	j.Record(0, 1, Confirm)
	Apply(store, j)
	unlinked, linked := Apply(store, j)
	if unlinked != 0 || linked != 0 {
		t.Fatalf("second apply changed things: %d,%d", unlinked, linked)
	}
}

func TestViolations(t *testing.T) {
	d := tinyDataset(5)
	store := er.NewEntityStore(d)
	store.Link(0, 1)
	j := NewJournal()
	j.Record(0, 1, Reject)  // violated: they share an entity
	j.Record(2, 3, Confirm) // violated: not linked
	j.Record(0, 4, Reject)  // satisfied: not linked
	v := Violations(store, j)
	if len(v) != 2 {
		t.Fatalf("violations = %d, want 2", len(v))
	}
	Apply(store, j)
	if got := Violations(store, j); len(got) != 0 {
		t.Fatalf("violations after apply = %d, want 0", len(got))
	}
}

func TestDecisionString(t *testing.T) {
	if Confirm.String() != "confirm" || Reject.String() != "reject" {
		t.Error("decision strings wrong")
	}
}
