package gedcom

import (
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

// fixtureGraph builds a resolved two-birth family (parents shared, two
// children) as a pedigree graph.
func fixtureGraph(t *testing.T) *pedigree.Graph {
	t.Helper()
	d := &model.Dataset{Name: "gedcom"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Year: year, Truth: model.NoPerson,
		})
		return id
	}
	add(model.Bb, 0, "john", "macrae", 1870, model.Male)
	add(model.Bm, 0, "kirsty", "macrae", 1870, model.Female)
	add(model.Bf, 0, "hector", "macrae", 1870, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "flora", "macrae", 1872, model.Female)
	add(model.Bm, 1, "kirsty", "macrae", 1872, model.Female)
	add(model.Bf, 1, "hector", "macrae", 1872, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})
	store := er.NewEntityStore(d)
	store.Link(1, 4) // mothers
	store.Link(2, 5) // fathers
	return pedigree.Build(d, store)
}

func TestExportStructure(t *testing.T) {
	g := fixtureGraph(t)
	var sb strings.Builder
	if err := Export(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.HasPrefix(out, "0 HEAD\n") || !strings.HasSuffix(out, "0 TRLR\n") {
		t.Fatal("missing GEDCOM envelope")
	}
	if !strings.Contains(out, "2 VERS 5.5.1") {
		t.Error("missing version")
	}
	// Four individuals: mother, father, two children.
	if n := strings.Count(out, " INDI\n"); n != 4 {
		t.Errorf("INDI records = %d, want 4", n)
	}
	// One family with husband, wife, and two children.
	if n := strings.Count(out, " FAM\n"); n != 1 {
		t.Errorf("FAM records = %d, want 1", n)
	}
	if strings.Count(out, "1 CHIL ") != 2 {
		t.Error("family should list both children")
	}
	if !strings.Contains(out, "1 HUSB ") || !strings.Contains(out, "1 WIFE ") {
		t.Error("family missing spouses")
	}
	if !strings.Contains(out, "1 NAME kirsty /MACRAE/") {
		t.Error("missing formatted name")
	}
	if !strings.Contains(out, "1 SEX F") || !strings.Contains(out, "1 SEX M") {
		t.Error("missing sexes")
	}
	if !strings.Contains(out, "1 BIRT\n2 DATE 1870") {
		t.Error("missing birth event")
	}
}

func TestExportBackReferencesConsistent(t *testing.T) {
	g := fixtureGraph(t)
	var sb strings.Builder
	if err := Export(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Every FAMS/FAMC reference must point at an emitted family, and every
	// HUSB/WIFE/CHIL at an emitted individual.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue
		}
		switch fields[1] {
		case "FAMS", "FAMC":
			if !strings.Contains(out, "0 "+fields[2]+" FAM") {
				t.Errorf("dangling family reference %q", fields[2])
			}
		case "HUSB", "WIFE", "CHIL":
			if !strings.Contains(out, "0 "+fields[2]+" INDI") {
				t.Errorf("dangling individual reference %q", fields[2])
			}
		}
	}
}

func TestExportPedigreeSubset(t *testing.T) {
	g := fixtureGraph(t)
	// Focus on the mother, one generation: parents + children, but the
	// export covers only pedigree members.
	mother, _ := g.NodeOfRecord(1)
	p := g.Extract(mother, 1)
	var sb strings.Builder
	if err := ExportPedigree(&sb, g, p); err != nil {
		t.Fatal(err)
	}
	n := strings.Count(sb.String(), " INDI\n")
	if n != len(p.Members) {
		t.Errorf("INDI records = %d, want %d members", n, len(p.Members))
	}
}

func TestExportOnResolvedSample(t *testing.T) {
	pop := dataset.Generate(dataset.IOS().Scaled(0.05))
	pr := er.Run(pop.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(pop.Dataset, pr.Result.Store)
	var sb strings.Builder
	if err := Export(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, " INDI\n") != len(g.Nodes) {
		t.Errorf("expected one INDI per entity")
	}
	if !strings.Contains(out, " FAM\n") {
		t.Error("no families exported from a resolved sample")
	}
}
