// Package geo provides the geocoding substrate the paper's future work
// calls for: a gazetteer that resolves historical addresses ("7 portree")
// to coordinates, dataset-level geocoding for records loaded from CSV, and
// distance helpers for geographic query filtering.
package geo

import (
	"strings"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/strsim"
)

// Gazetteer maps settlement names to coordinates and resolves full house
// addresses to a per-address jittered location within the settlement, so
// distinct households geocode to distinct points.
type Gazetteer struct {
	places map[string][2]float64
	// JitterDeg is the maximum coordinate jitter applied per distinct
	// address string (~0.015° ≈ 1.5 km). Zero disables jitter.
	JitterDeg float64
	// FuzzyThreshold enables approximate settlement matching: an unknown
	// settlement resolves to the most similar gazetteer entry at or above
	// this Jaro-Winkler similarity. Zero disables fuzzy matching.
	FuzzyThreshold float64
}

// NewGazetteer returns a gazetteer over the given places.
func NewGazetteer(places map[string][2]float64) *Gazetteer {
	cp := make(map[string][2]float64, len(places))
	for k, v := range places {
		cp[strings.ToLower(k)] = v
	}
	return &Gazetteer{places: cp, JitterDeg: 0.015, FuzzyThreshold: 0.92}
}

// Len returns the number of gazetteer entries.
func (g *Gazetteer) Len() int { return len(g.places) }

// Resolve geocodes a full address. The settlement is the address text
// after the leading house number, if any. It reports ok=false when the
// settlement is unknown (even fuzzily).
func (g *Gazetteer) Resolve(address string) (lat, lon float64, ok bool) {
	addr := strings.ToLower(strings.TrimSpace(address))
	if addr == "" {
		return 0, 0, false
	}
	settlement := addr
	if i := strings.IndexByte(addr, ' '); i > 0 && isNumber(addr[:i]) {
		settlement = addr[i+1:]
	}
	ll, found := g.places[settlement]
	if !found && g.FuzzyThreshold > 0 {
		best := g.FuzzyThreshold
		for name, coords := range g.places {
			if s := strsim.JaroWinkler(settlement, name); s >= best {
				best, ll, found = s, coords, true
			}
		}
	}
	if !found {
		return 0, 0, false
	}
	lat, lon = ll[0], ll[1]
	if g.JitterDeg > 0 {
		h := hash64(addr)
		lat += (float64(h&0xffff)/65535 - 0.5) * 2 * g.JitterDeg
		lon += (float64((h>>16)&0xffff)/65535 - 0.5) * 2 * g.JitterDeg
	}
	return lat, lon, true
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// GeocodeDataset fills the Lat/Lon of every record whose address the
// gazetteer resolves, returning how many records were geocoded. Records
// with existing coordinates are left untouched.
func GeocodeDataset(d *model.Dataset, g *Gazetteer) int {
	n := 0
	for i := range d.Records {
		rec := &d.Records[i]
		if rec.Addr == 0 || rec.Lat != 0 || rec.Lon != 0 {
			continue
		}
		if lat, lon, ok := g.Resolve(rec.Address()); ok {
			rec.Lat, rec.Lon = lat, lon
			n++
		}
	}
	return n
}

// DistanceKm returns the haversine distance between two points.
func DistanceKm(lat1, lon1, lat2, lon2 float64) float64 {
	return strsim.GeoDistanceKm(lat1, lon1, lat2, lon2)
}

// Skye returns the built-in Isle of Skye gazetteer used by the simulator
// and the examples.
func Skye() *Gazetteer { return NewGazetteer(skyePlaces) }

var skyePlaces = map[string][2]float64{
	"portree": {57.4125, -6.1964}, "kilmore": {57.24, -5.90},
	"dunvegan": {57.4353, -6.5835}, "uig": {57.5876, -6.3637},
	"staffin": {57.6278, -6.2078}, "broadford": {57.2425, -5.9125},
	"elgol": {57.1456, -6.1062}, "carbost": {57.3031, -6.3544},
	"struan": {57.3586, -6.4114}, "edinbane": {57.4664, -6.4267},
	"kensaleyre": {57.4822, -6.2850}, "glendale": {57.4453, -6.7014},
	"waternish": {57.5200, -6.6000}, "sleat": {57.1500, -5.9000},
	"kyleakin": {57.2708, -5.7403}, "torrin": {57.2100, -6.0300},
	"luib": {57.2700, -6.0400}, "sconser": {57.3100, -6.1100},
	"braes": {57.3700, -6.1400}, "penifiler": {57.3900, -6.1800},
	"achachork": {57.4300, -6.2100}, "borve": {57.4500, -6.2600},
	"skeabost": {57.4600, -6.3200}, "bernisdale": {57.4700, -6.3500},
	"treaslane": {57.4800, -6.3800}, "flashader": {57.4900, -6.4300},
	"greshornish": {57.5000, -6.4400}, "colbost": {57.4400, -6.6400},
	"milovaig": {57.4500, -6.7500}, "husabost": {57.4800, -6.6800},
	"ramasaig": {57.4200, -6.7500}, "orbost": {57.4000, -6.6200},
	"roskhill": {57.4200, -6.5800}, "vatten": {57.4100, -6.5600},
	"harlosh": {57.3900, -6.5400}, "caroy": {57.3800, -6.5000},
	"bracadale": {57.3600, -6.4500}, "ullinish": {57.3400, -6.4600},
	"fiscavaig": {57.3300, -6.4900}, "portnalong": {57.3400, -6.4200},
}
