package geo

import (
	"testing"

	"github.com/snaps/snaps/internal/model"
)

func TestResolveExact(t *testing.T) {
	g := Skye()
	lat, lon, ok := g.Resolve("portree")
	if !ok {
		t.Fatal("portree not resolved")
	}
	if lat < 57.3 || lat > 57.5 || lon > -6.0 || lon < -6.4 {
		t.Errorf("portree at (%v,%v), expected near (57.41,-6.20)", lat, lon)
	}
}

func TestResolveHouseNumber(t *testing.T) {
	g := Skye()
	lat1, lon1, ok1 := g.Resolve("5 portree")
	lat2, lon2, ok2 := g.Resolve("7 portree")
	if !ok1 || !ok2 {
		t.Fatal("house addresses not resolved")
	}
	if lat1 == lat2 && lon1 == lon2 {
		t.Error("distinct houses should jitter to distinct points")
	}
	if DistanceKm(lat1, lon1, lat2, lon2) > 6 {
		t.Error("houses in one settlement should stay within a few km")
	}
	// Resolution is deterministic.
	lat1b, lon1b, _ := g.Resolve("5 portree")
	if lat1 != lat1b || lon1 != lon1b {
		t.Error("resolution not deterministic")
	}
}

func TestResolveFuzzy(t *testing.T) {
	g := Skye()
	if _, _, ok := g.Resolve("3 portre"); !ok {
		t.Error("misspelt settlement should resolve fuzzily")
	}
	if _, _, ok := g.Resolve("9 llanfairpwll"); ok {
		t.Error("unknown settlement resolved")
	}
	if _, _, ok := g.Resolve(""); ok {
		t.Error("empty address resolved")
	}
}

func TestResolveCaseInsensitive(t *testing.T) {
	g := Skye()
	if _, _, ok := g.Resolve("12 Portree"); !ok {
		t.Error("capitalised address should resolve")
	}
}

func TestGeocodeDataset(t *testing.T) {
	d := &model.Dataset{Records: []model.Record{
		{ID: 0, Addr: model.Intern("5 portree")},
		{ID: 1, Addr: model.Intern("unknown place")},
		{ID: 2, Addr: model.Intern("")},
		{ID: 3, Addr: model.Intern("7 uig"), Lat: 1, Lon: 1}, // pre-geocoded: untouched
	}}
	n := GeocodeDataset(d, Skye())
	if n != 1 {
		t.Fatalf("geocoded %d records, want 1", n)
	}
	if d.Records[0].Lat == 0 {
		t.Error("record 0 not geocoded")
	}
	if d.Records[1].Lat != 0 {
		t.Error("unknown address geocoded")
	}
	if d.Records[3].Lat != 1 {
		t.Error("pre-geocoded record modified")
	}
}

func TestDistanceKm(t *testing.T) {
	if d := DistanceKm(57.41, -6.20, 57.41, -6.20); d != 0 {
		t.Errorf("distance to self = %v", d)
	}
	d := DistanceKm(57.4125, -6.1964, 57.5876, -6.3637) // Portree - Uig
	if d < 15 || d > 30 {
		t.Errorf("Portree-Uig = %v km, expected ~22", d)
	}
}

func TestIsNumber(t *testing.T) {
	if !isNumber("42") || isNumber("4a") || isNumber("") {
		t.Error("isNumber misbehaves")
	}
}
