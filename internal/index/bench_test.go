package index

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/pedigree"
)

// BenchmarkIndexRebuild measures the full keyword + similarity index build
// over a resolved graph — the `rebuild_indexes` span that dominates every
// live-ingest flush. The name-similarity precompute is the hot part.
func BenchmarkIndexRebuild(b *testing.B) {
	p := dataset.Generate(dataset.IOS().Scaled(0.1))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, 0.5)
	}
}
