// Package index implements the two offline index structures of Sec. 6 of
// the paper: the keyword index K, mapping QID values (first names,
// surnames, gender, locations) to entity identifiers in the pedigree
// graph, and the similarity-aware index S, which precomputes Jaro-Winkler
// similarities between all pairs of indexed string values that share at
// least one bigram and reach the threshold s_t.
//
// At query time, a value not found in K is compared against the values
// sharing a bigram with it, and the discovered similar values are added to
// S to speed up future queries of the same value (Sec. 7). The memo is
// striped across hash-keyed shards so concurrent lookups contend only on
// values landing in the same stripe, and concurrent first lookups of the
// same unknown value compute its similarity list once (the others wait for
// the leader) instead of racing through duplicate bigram scans.
//
// Event years are deliberately NOT materialised as string postings: an
// entity's year span is an interval check against pedigree.Node.MinYear/
// MaxYear at query time, so the index no longer stores one posting entry
// per (entity, year) pair across the whole span. YearPostingEntries
// reports how many entries the old scheme would have held.
package index

import (
	"runtime"
	"sort"
	"sync"

	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/simcache"
	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// Memoisation metrics of the similarity-aware index: a miss is a
// query-time probe that had to scan the bigram postings and compute
// similarities before being stored (Sec. 7's lazy extension of S); an
// inflight wait is a concurrent probe of the same value that reused the
// leader's computation instead of duplicating it.
var (
	mMemoHits = obs.Default.Counter("snaps_index_memo_hits_total",
		"Similarity lookups answered from the memoised index S.")
	mMemoMisses = obs.Default.Counter("snaps_index_memo_misses_total",
		"Similarity lookups that computed and memoised a new value.")
	mMemoWaits = obs.Default.Counter("snaps_index_memo_inflight_waits_total",
		"Similarity lookups that waited for a concurrent computation of the same value.")
)

// Field enumerates the searchable QID fields of the keyword index.
type Field uint8

// Searchable fields.
const (
	FieldFirstName Field = iota
	FieldSurname
	FieldLocation
	FieldGender
	FieldYear
	NumFields
)

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldFirstName:
		return "first_name"
	case FieldSurname:
		return "surname"
	case FieldLocation:
		return "location"
	case FieldGender:
		return "gender"
	case FieldYear:
		return "year"
	}
	return "field?"
}

// SimilarValue pairs an indexed value with its similarity to a probe.
type SimilarValue struct {
	Value string
	Sim   float64
}

// Keyword is the keyword index K. Posting lists are stored delta+varint
// compressed (see postings.go); lists are immutable once stored, so
// incremental updates share them across generations by reference.
type Keyword struct {
	// postings[field][value] lists the entity nodes carrying the value.
	postings [NumFields]map[string]postingList
}

// memoShards stripes the similarity memo; must be a power of two. 32
// stripes keep lock contention negligible at GOMAXPROCS-scale query
// concurrency without bloating the struct.
const memoShards = 32

// memoShard is one stripe of the memo: its own lock, its slice of the
// memoised lists, and the in-flight computations being deduplicated.
type memoShard struct {
	mu       sync.RWMutex
	sims     map[string][]SimilarValue
	inflight map[string]*memoCall
}

// memoCall is one leader computation concurrent probes of the same value
// wait on. out is written before wg.Done, so waiters reading it after
// wg.Wait observe the completed list.
type memoCall struct {
	wg  sync.WaitGroup
	out []SimilarValue
}

// Similarity is the similarity-aware index S: for every known string value
// of a field it stores the other values with similarity >= threshold. It
// memoises query-time extensions, so lookups after the first are O(1).
type Similarity struct {
	threshold float64
	// shards[field][stripe] holds the memoised lists of values hashing to
	// the stripe (exact value included, first).
	shards [NumFields][memoShards]memoShard
	// bigramPost[field][bigram] lists the symbol ids of values containing
	// the bigram, delta+varint compressed in ascending id order. Bigrams
	// are keyed by their packed integer form (strsim.BigramID) rather than
	// two-byte strings, so probing never hashes string keys.
	// Read-only after Build — scanned without locks.
	bigramPost [NumFields]map[strsim.BigramID]symList
}

// shardOf stripes a value by FNV-1a hash.
func shardOf(value string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(value); i++ {
		h ^= uint32(value[i])
		h *= 16777619
	}
	return h & (memoShards - 1)
}

func (s *Similarity) shard(f Field, value string) *memoShard {
	return &s.shards[f][shardOf(value)]
}

// Build constructs both indexes from a pedigree graph. simThreshold is s_t
// (paper: 0.5). Precomputation covers first names and surnames (the
// mandatory query fields) and runs across GOMAXPROCS workers with
// deterministic output; locations are extended lazily at query time.
func Build(g *pedigree.Graph, simThreshold float64) (*Keyword, *Similarity) {
	return BuildSubset(g, nil, simThreshold)
}

// BuildSubset constructs both indexes over the subset of g's nodes
// accepted by keep (nil keeps every node, making it exactly Build). The
// serving-tier shards (internal/shard) use it to give each shard an index
// over only the entities it owns: per-value posting lists are the global
// lists filtered to kept nodes, and every similarity list is computed over
// the shard's own value universe, so a value's list on a shard is the
// global list filtered to values the shard indexes — order preserved,
// similarities identical.
func BuildSubset(g *pedigree.Graph, keep func(pedigree.NodeID) bool, simThreshold float64) (*Keyword, *Similarity) {
	defer obs.StartStage("index_build").Stop()
	// Postings accumulate uncompressed and are compressed in one pass once
	// sorted and deduplicated.
	var raw [NumFields]map[string][]pedigree.NodeID
	for f := Field(0); f < NumFields; f++ {
		raw[f] = map[string][]pedigree.NodeID{}
	}
	s := &Similarity{threshold: simThreshold}
	for f := Field(0); f < NumFields; f++ {
		for i := range s.shards[f] {
			s.shards[f][i].sims = map[string][]SimilarValue{}
			s.shards[f][i].inflight = map[string]*memoCall{}
		}
		s.bigramPost[f] = map[strsim.BigramID]symList{}
	}

	add := func(f Field, v string, id pedigree.NodeID) {
		raw[f][v] = append(raw[f][v], id)
	}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if keep != nil && !keep(n.ID) {
			continue
		}
		for _, v := range n.FirstNames {
			add(FieldFirstName, v, n.ID)
		}
		for _, v := range n.Surnames {
			add(FieldSurname, v, n.ID)
		}
		for _, v := range n.Locations {
			add(FieldLocation, v, n.ID)
		}
		if n.Gender.String() != "?" {
			add(FieldGender, n.Gender.String(), n.ID)
		}
		// Years are matched by interval against Node.MinYear/MaxYear at
		// query time; no per-year postings are stored.
	}
	k := &Keyword{}
	for f := Field(0); f < NumFields; f++ {
		k.postings[f] = make(map[string]postingList, len(raw[f]))
		for v, ids := range raw[f] {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			// Deduplicate.
			out := ids[:0]
			var last pedigree.NodeID = -1
			for _, id := range ids {
				if id != last {
					out = append(out, id)
					last = id
				}
			}
			k.postings[f][v] = encodePostings(out)
		}
	}

	// Bigram postings for all string fields, as sorted symbol-id lists.
	// Every indexed value is an interned record attribute, so Intern here
	// is a map hit, not an insert, and the value's bigram signature comes
	// straight from the per-symbol feature slab.
	for _, f := range []Field{FieldFirstName, FieldSurname, FieldLocation} {
		bgRaw := map[strsim.BigramID][]symbol.ID{}
		for v := range k.postings[f] {
			id := symbol.Intern(v)
			for _, bg := range simcache.Feat(id).Bigrams {
				bgRaw[bg] = append(bgRaw[bg], id)
			}
		}
		for bg, ids := range bgRaw {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			s.bigramPost[f][bg] = encodeSyms(ids)
		}
	}
	// Precompute similarities for the name fields, fanning the
	// per-value computations (the dominant cost of every ingest
	// rebuild_indexes flush) across all cores. Each value's list depends
	// only on the read-only bigram postings, so output is deterministic
	// regardless of scheduling.
	precompute := obs.StartStage("index_build_sims")
	for _, f := range []Field{FieldFirstName, FieldSurname} {
		vals := make([]string, 0, len(k.postings[f]))
		for v := range k.postings[f] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		outs := make([][]SimilarValue, len(vals))
		parallelRange(len(vals), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				outs[i] = s.computeSimilar(f, vals[i])
			}
		})
		for i, v := range vals {
			s.shard(f, v).sims[v] = outs[i]
		}
	}
	precompute.Stop()
	return k, s
}

// parallelRange splits [0,n) into GOMAXPROCS chunks run concurrently (the
// same pattern as blocking's candidate-pair fan-out).
func parallelRange(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Lookup returns the entities carrying the exact value in the field,
// decoded from the compressed posting list into a fresh slice. Callers
// must treat the result as read-only (the historical contract); the query
// hot path avoids the decode allocation entirely via Postings.
func (k *Keyword) Lookup(f Field, value string) []pedigree.NodeID {
	return k.postings[f][value].decode()
}

// LookupCopy returns a private copy of the postings for the value, safe to
// mutate or retain across index rebuilds.
func (k *Keyword) LookupCopy(f Field, value string) []pedigree.NodeID {
	return k.postings[f][value].decode()
}

// Postings returns an allocation-free iterator over the value's posting
// list, in ascending node-id order. The iterator reads the immutable
// compressed bytes, so it stays valid across concurrent index updates.
func (k *Keyword) Postings(f Field, value string) PostingIter {
	return k.postings[f][value].iter()
}

// Values returns the number of distinct values indexed for the field.
func (k *Keyword) Values(f Field) int { return len(k.postings[f]) }

// PostingStats describes the keyword index's footprint for one field.
type PostingStats struct {
	// Values is the number of distinct indexed values.
	Values int
	// Entries is the total number of posting-list entries.
	Entries int
	// Bytes approximates the heap footprint: value string bytes plus the
	// compressed posting bytes plus map/slice headers.
	Bytes int
}

// Stats reports the field's posting footprint; the year-index shrink is
// measured against it (see YearPostingEntries).
func (k *Keyword) Stats(f Field) PostingStats {
	st := PostingStats{Values: len(k.postings[f])}
	for v, pl := range k.postings[f] {
		st.Entries += pl.len()
		st.Bytes += len(v) + len(pl.data) + 48 // string bytes + compressed postings + header overhead
	}
	return st
}

// YearPostingEntries reports how many posting entries the retired
// string-keyed year index would have stored for the graph: one per
// (entity, year) pair across each entity's MinYear..MaxYear span. The
// interval check replaced all of them with zero index state.
func YearPostingEntries(g *pedigree.Graph) int {
	entries := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.MinYear != 0 && n.MaxYear >= n.MinYear {
			entries += n.MaxYear - n.MinYear + 1
		}
	}
	return entries
}

// Similar returns the indexed values of the field similar to the probe,
// most similar first, including the probe itself when indexed. Results are
// memoised in S: the first query for an unknown value computes similarities
// against all bigram-sharing values and stores them (Sec. 7). Concurrent
// first queries of the same value compute once; the rest wait for the
// leader. The returned slice is shared and read-only.
func (s *Similarity) Similar(f Field, value string) []SimilarValue {
	sh := s.shard(f, value)
	sh.mu.RLock()
	out, ok := sh.sims[value]
	sh.mu.RUnlock()
	if ok {
		mMemoHits.Inc()
		return out
	}

	sh.mu.Lock()
	if out, ok := sh.sims[value]; ok { // memoised while we upgraded the lock
		sh.mu.Unlock()
		mMemoHits.Inc()
		return out
	}
	if c, ok := sh.inflight[value]; ok { // a leader is already computing
		sh.mu.Unlock()
		c.wg.Wait()
		mMemoWaits.Inc()
		return c.out
	}
	c := &memoCall{}
	c.wg.Add(1)
	sh.inflight[value] = c
	sh.mu.Unlock()

	mMemoMisses.Inc()
	out = s.computeSimilar(f, value)

	sh.mu.Lock()
	sh.sims[value] = out
	delete(sh.inflight, value)
	sh.mu.Unlock()
	c.out = out
	c.wg.Done()
	return out
}

// Memoised reports whether a similarity list for the value is already
// stored in S, without computing or storing one. The query engine uses it
// to attribute memo hits to the trace span of the lookup.
func (s *Similarity) Memoised(f Field, value string) bool {
	sh := s.shard(f, value)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.sims[value]
	return ok
}

// computeSimilar scans the bigram postings for candidate values and keeps
// those with Jaro-Winkler similarity at or above the threshold. bigramPost
// is immutable after Build, so no lock is held while computing.
//
// A probe that is already an interned symbol (every indexed value, and any
// query value matching one) is scored through the symbol-native simcache
// kernels, reusing cached features and the process-wide memo. Arbitrary
// query strings are NEVER interned here — an attacker-controlled query
// stream must not grow the symbol table — so unknown probes fall back to
// the plain string kernels, which compute identical scores.
func (s *Similarity) computeSimilar(f Field, value string) []SimilarValue {
	probe, interned := symbol.Lookup(value)
	var bgBuf [64]strsim.BigramID
	var bgs []strsim.BigramID
	if interned {
		bgs = simcache.Feat(probe).Bigrams
	} else {
		bgs = strsim.AppendBigramIDs(bgBuf[:0], value)
	}
	cand := map[symbol.ID]bool{}
	for _, bg := range bgs {
		for it := s.bigramPost[f][bg].iter(); ; {
			id, ok := it.next()
			if !ok {
				break
			}
			cand[id] = true
		}
	}
	out := make([]SimilarValue, 0, len(cand))
	for id := range cand {
		v := symbol.Str(id)
		var sim float64
		if interned {
			sim = simcache.NameSim(probe, id)
		} else {
			sim = strsim.NameSim(value, v)
		}
		if sim >= s.threshold {
			out = append(out, SimilarValue{Value: v, Sim: sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Size reports the number of memoised similarity lists for a field.
func (s *Similarity) Size(f Field) int {
	n := 0
	for i := range s.shards[f] {
		sh := &s.shards[f][i]
		sh.mu.RLock()
		n += len(sh.sims)
		sh.mu.RUnlock()
	}
	return n
}
