// Package index implements the two offline index structures of Sec. 6 of
// the paper: the keyword index K, mapping QID values (first names,
// surnames, gender, event years, locations) to entity identifiers in the
// pedigree graph, and the similarity-aware index S, which precomputes
// Jaro-Winkler similarities between all pairs of indexed string values that
// share at least one bigram and reach the threshold s_t.
//
// At query time, a value not found in K is compared against the values
// sharing a bigram with it, and the discovered similar values are added to
// S to speed up future queries of the same value (Sec. 7).
package index

import (
	"sort"
	"strconv"
	"sync"

	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/strsim"
)

// Memoisation metrics of the similarity-aware index: a miss is a
// query-time probe that had to scan the bigram postings and compute
// similarities before being stored (Sec. 7's lazy extension of S).
var (
	mMemoHits = obs.Default.Counter("snaps_index_memo_hits_total",
		"Similarity lookups answered from the memoised index S.")
	mMemoMisses = obs.Default.Counter("snaps_index_memo_misses_total",
		"Similarity lookups that computed and memoised a new value.")
)

// Field enumerates the searchable QID fields of the keyword index.
type Field uint8

// Searchable fields.
const (
	FieldFirstName Field = iota
	FieldSurname
	FieldLocation
	FieldGender
	FieldYear
	NumFields
)

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldFirstName:
		return "first_name"
	case FieldSurname:
		return "surname"
	case FieldLocation:
		return "location"
	case FieldGender:
		return "gender"
	case FieldYear:
		return "year"
	}
	return "field?"
}

// SimilarValue pairs an indexed value with its similarity to a probe.
type SimilarValue struct {
	Value string
	Sim   float64
}

// Keyword is the keyword index K.
type Keyword struct {
	// postings[field][value] lists the entity nodes carrying the value.
	postings [NumFields]map[string][]pedigree.NodeID
}

// Similarity is the similarity-aware index S: for every known string value
// of a field it stores the other values with similarity >= threshold. It
// memoises query-time extensions, so lookups after the first are O(1).
type Similarity struct {
	mu        sync.RWMutex
	threshold float64
	// sims[field][value] lists similar values (including exact value
	// first).
	sims [NumFields]map[string][]SimilarValue
	// bigramPost[field][bigram] lists values containing the bigram.
	bigramPost [NumFields]map[string][]string
}

// Build constructs both indexes from a pedigree graph. simThreshold is s_t
// (paper: 0.5). Precomputation covers first names and surnames (the
// mandatory query fields); locations are extended lazily at query time.
func Build(g *pedigree.Graph, simThreshold float64) (*Keyword, *Similarity) {
	defer obs.StartStage("index_build").Stop()
	k := &Keyword{}
	for f := Field(0); f < NumFields; f++ {
		k.postings[f] = map[string][]pedigree.NodeID{}
	}
	s := &Similarity{threshold: simThreshold}
	for f := Field(0); f < NumFields; f++ {
		s.sims[f] = map[string][]SimilarValue{}
		s.bigramPost[f] = map[string][]string{}
	}

	for i := range g.Nodes {
		n := &g.Nodes[i]
		for _, v := range n.FirstNames {
			k.add(FieldFirstName, v, n.ID)
		}
		for _, v := range n.Surnames {
			k.add(FieldSurname, v, n.ID)
		}
		for _, v := range n.Locations {
			k.add(FieldLocation, v, n.ID)
		}
		if n.Gender.String() != "?" {
			k.add(FieldGender, n.Gender.String(), n.ID)
		}
		for y := n.MinYear; y != 0 && y <= n.MaxYear; y++ {
			k.add(FieldYear, strconv.Itoa(y), n.ID)
		}
	}
	k.sortPostings()

	// Bigram postings for all string fields.
	for _, f := range []Field{FieldFirstName, FieldSurname, FieldLocation} {
		for v := range k.postings[f] {
			for _, bg := range strsim.BigramSet(v) {
				s.bigramPost[f][bg] = append(s.bigramPost[f][bg], v)
			}
		}
		for bg := range s.bigramPost[f] {
			sort.Strings(s.bigramPost[f][bg])
		}
	}
	// Precompute similarities for the name fields.
	for _, f := range []Field{FieldFirstName, FieldSurname} {
		for v := range k.postings[f] {
			s.sims[f][v] = s.computeSimilar(f, v)
		}
	}
	return k, s
}

func (k *Keyword) add(f Field, value string, id pedigree.NodeID) {
	k.postings[f][value] = append(k.postings[f][value], id)
}

func (k *Keyword) sortPostings() {
	for f := range k.postings {
		for v, ids := range k.postings[f] {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			// Deduplicate.
			out := ids[:0]
			var last pedigree.NodeID = -1
			for _, id := range ids {
				if id != last {
					out = append(out, id)
					last = id
				}
			}
			k.postings[f][v] = out
		}
	}
}

// Lookup returns the entities carrying the exact value in the field.
func (k *Keyword) Lookup(f Field, value string) []pedigree.NodeID {
	return k.postings[f][value]
}

// Values returns the number of distinct values indexed for the field.
func (k *Keyword) Values(f Field) int { return len(k.postings[f]) }

// Similar returns the indexed values of the field similar to the probe,
// most similar first, including the probe itself when indexed. Results are
// memoised in S: the first query for an unknown value computes similarities
// against all bigram-sharing values and stores them (Sec. 7).
func (s *Similarity) Similar(f Field, value string) []SimilarValue {
	s.mu.RLock()
	if out, ok := s.sims[f][value]; ok {
		s.mu.RUnlock()
		mMemoHits.Inc()
		return out
	}
	s.mu.RUnlock()
	mMemoMisses.Inc()
	out := s.computeSimilar(f, value)
	s.mu.Lock()
	s.sims[f][value] = out
	s.mu.Unlock()
	return out
}

// Memoised reports whether a similarity list for the value is already
// stored in S, without computing or storing one. The query engine uses it
// to attribute memo hits to the trace span of the lookup.
func (s *Similarity) Memoised(f Field, value string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sims[f][value]
	return ok
}

// computeSimilar scans the bigram postings for candidate values and keeps
// those with Jaro-Winkler similarity at or above the threshold.
func (s *Similarity) computeSimilar(f Field, value string) []SimilarValue {
	cand := map[string]bool{}
	for _, bg := range strsim.BigramSet(value) {
		for _, v := range s.bigramPost[f][bg] {
			cand[v] = true
		}
	}
	out := make([]SimilarValue, 0, len(cand))
	for v := range cand {
		sim := strsim.NameSim(value, v)
		if sim >= s.threshold {
			out = append(out, SimilarValue{Value: v, Sim: sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Size reports the number of memoised similarity lists for a field.
func (s *Similarity) Size(f Field) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sims[f])
}
