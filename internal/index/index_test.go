package index

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/pedigree"
)

func builtIndexes(t *testing.T) (*pedigree.Graph, *Keyword, *Similarity) {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.06))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := Build(g, 0.5)
	return g, k, s
}

func TestKeywordLookupConsistent(t *testing.T) {
	g, k, _ := builtIndexes(t)
	if k.Values(FieldFirstName) == 0 || k.Values(FieldSurname) == 0 {
		t.Fatal("empty keyword index")
	}
	// Every entity must be findable under each of its first names.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		for _, fn := range n.FirstNames {
			found := false
			for _, id := range k.Lookup(FieldFirstName, fn) {
				if id == n.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("entity %d missing from posting of its first name %q", n.ID, fn)
			}
		}
	}
}

func TestKeywordPostingsSortedDeduped(t *testing.T) {
	_, k, _ := builtIndexes(t)
	for f := Field(0); f < NumFields; f++ {
		for v, pl := range k.postings[f] {
			ids := pl.decode()
			if len(ids) != pl.len() {
				t.Fatalf("postings for %v=%q decode to %d entries, header says %d", f, v, len(ids), pl.len())
			}
			for i := 1; i < len(ids); i++ {
				if ids[i] <= ids[i-1] {
					t.Fatalf("postings for %v=%q not sorted/deduped", f, v)
				}
			}
		}
	}
}

func TestSimilarIncludesSelfFirst(t *testing.T) {
	_, k, s := builtIndexes(t)
	var name string
	for v := range k.postings[FieldSurname] {
		name = v
		break
	}
	sims := s.Similar(FieldSurname, name)
	if len(sims) == 0 {
		t.Fatal("no similar values for an indexed name")
	}
	if sims[0].Value != name || sims[0].Sim != 1 {
		t.Errorf("self should rank first with sim 1, got %+v", sims[0])
	}
	for i := 1; i < len(sims); i++ {
		if sims[i].Sim > sims[i-1].Sim {
			t.Fatal("similar values not sorted by similarity")
		}
		if sims[i].Sim < 0.5 {
			t.Fatalf("similarity %v below threshold retained", sims[i].Sim)
		}
	}
}

func TestSimilarUnknownValueMemoised(t *testing.T) {
	_, _, s := builtIndexes(t)
	before := s.Size(FieldFirstName)
	out1 := s.Similar(FieldFirstName, "zzyzxq")
	after := s.Size(FieldFirstName)
	if after != before+1 {
		t.Errorf("unknown probe should be memoised: %d -> %d", before, after)
	}
	out2 := s.Similar(FieldFirstName, "zzyzxq")
	if len(out1) != len(out2) {
		t.Error("memoised result differs")
	}
}

func TestSimilarFindsMisspellings(t *testing.T) {
	_, k, s := builtIndexes(t)
	// Pick a reasonably long surname from the index and misspell it.
	var name string
	for v := range k.postings[FieldSurname] {
		if len(v) >= 8 {
			name = v
			break
		}
	}
	if name == "" {
		t.Skip("no long surname in sample")
	}
	misspelt := name[:len(name)-1] + "x"
	found := false
	for _, sv := range s.Similar(FieldSurname, misspelt) {
		if sv.Value == name {
			found = true
		}
	}
	if !found {
		t.Errorf("misspelling %q did not retrieve %q", misspelt, name)
	}
}

func TestFieldString(t *testing.T) {
	names := map[Field]string{
		FieldFirstName: "first_name", FieldSurname: "surname",
		FieldLocation: "location", FieldGender: "gender", FieldYear: "year",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("Field(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestSimilarConcurrentAccess(t *testing.T) {
	_, _, s := builtIndexes(t)
	// Hammer the memoising index from many goroutines with a mix of known
	// and unknown probes; the race detector validates the locking.
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			probes := []string{"macdonald", "mcdonald", "zzznovel", "smith", "smyth"}
			for i := 0; i < 50; i++ {
				p := probes[(i+g)%len(probes)]
				if i%3 == 0 {
					p = p + string(rune('a'+g))
				}
				s.Similar(FieldSurname, p)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
