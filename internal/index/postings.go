// Delta + varint compressed posting lists.
//
// Both index structures are dominated by posting lists: the keyword index
// maps every QID value to the (sorted) entity nodes carrying it, and the
// similarity index maps every bigram to the (sorted) values containing it.
// Stored as []NodeID / []string those lists cost 4-16 bytes per entry plus
// a slice header per list; at DS scale the entries number in the tens of
// millions. Sorted integer lists compress extremely well as varint-coded
// gaps — frequent values have dense, small deltas — so both list kinds are
// stored as a byte stream of uvarint deltas and decoded on read.
//
// Encoded lists are immutable: copy-on-write sharing between index
// generations (index.Update) is a struct copy aliasing the same byte
// slice. The query hot path iterates postings without allocating via
// PostingIter; Lookup/LookupCopy decode into a fresh slice, which keeps
// their documented contracts (read-only view / private copy) intact.
package index

import (
	"encoding/binary"

	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/symbol"
)

// postingList is a compressed, sorted list of entity node ids. The zero
// value is the empty list.
type postingList struct {
	n    int32
	data []byte
}

// encodePostings compresses a sorted (ascending, possibly with repeats)
// id list. The first id is stored as a delta from -1 so that id 0 still
// yields a positive gap.
func encodePostings(ids []pedigree.NodeID) postingList {
	if len(ids) == 0 {
		return postingList{}
	}
	var buf [binary.MaxVarintLen64]byte
	data := make([]byte, 0, len(ids)) // dense lists average ~1 byte/entry
	prev := int64(-1)
	for _, id := range ids {
		k := binary.PutUvarint(buf[:], uint64(int64(id)-prev))
		data = append(data, buf[:k]...)
		prev = int64(id)
	}
	return postingList{n: int32(len(ids)), data: data}
}

// len returns the number of entries.
func (p postingList) len() int { return int(p.n) }

// decode returns the entries as a fresh slice (nil when empty).
func (p postingList) decode() []pedigree.NodeID {
	if p.n == 0 {
		return nil
	}
	out := make([]pedigree.NodeID, 0, p.n)
	prev := int64(-1)
	for i := 0; i < len(p.data); {
		d, k := binary.Uvarint(p.data[i:])
		i += k
		prev += int64(d)
		out = append(out, pedigree.NodeID(prev))
	}
	return out
}

// PostingIter walks a compressed posting list without allocating. The
// zero value is an exhausted iterator.
type PostingIter struct {
	data []byte
	pos  int
	prev int64
}

// iter returns an iterator positioned before the first entry.
func (p postingList) iter() PostingIter {
	return PostingIter{data: p.data, prev: -1}
}

// Next returns the next id, or ok=false when the list is exhausted.
func (it *PostingIter) Next() (pedigree.NodeID, bool) {
	if it.pos >= len(it.data) {
		return 0, false
	}
	d, k := binary.Uvarint(it.data[it.pos:])
	it.pos += k
	it.prev += int64(d)
	return pedigree.NodeID(it.prev), true
}

// symList is a compressed, sorted list of interned-string ids — the
// bigram postings of the similarity index. Sixteen bytes of string header
// per entry collapse to the varint gap between symbol ids.
type symList struct {
	n    int32
	data []byte
}

// encodeSyms compresses a sorted (ascending, strictly increasing) symbol
// id list.
func encodeSyms(ids []symbol.ID) symList {
	if len(ids) == 0 {
		return symList{}
	}
	var buf [binary.MaxVarintLen64]byte
	data := make([]byte, 0, len(ids))
	prev := int64(-1)
	for _, id := range ids {
		k := binary.PutUvarint(buf[:], uint64(int64(id)-prev))
		data = append(data, buf[:k]...)
		prev = int64(id)
	}
	return symList{n: int32(len(ids)), data: data}
}

func (p symList) len() int { return int(p.n) }

// symIter walks a compressed symbol list without allocating.
type symIter struct {
	data []byte
	pos  int
	prev int64
}

func (p symList) iter() symIter {
	return symIter{data: p.data, prev: -1}
}

func (it *symIter) next() (symbol.ID, bool) {
	if it.pos >= len(it.data) {
		return 0, false
	}
	d, k := binary.Uvarint(it.data[it.pos:])
	it.pos += k
	it.prev += int64(d)
	return symbol.ID(it.prev), true
}
