package index

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/snaps/snaps/internal/pedigree"
)

// TestBuildDeterministic proves the parallel name-similarity precompute
// yields the same index as a serial build: every memoised list must be
// identical across two independent builds.
func TestBuildDeterministic(t *testing.T) {
	g, _, s1 := builtIndexes(t)
	_, s2 := Build(g, 0.5)
	for _, f := range []Field{FieldFirstName, FieldSurname} {
		if s1.Size(f) != s2.Size(f) {
			t.Fatalf("field %v: memo sizes differ: %d vs %d", f, s1.Size(f), s2.Size(f))
		}
		for i := range s1.shards[f] {
			sh := &s1.shards[f][i]
			for v, want := range sh.sims {
				got := s2.shard(f, v).sims[v]
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("field %v value %q: precomputed lists differ:\n%v\nvs\n%v", f, v, want, got)
				}
			}
		}
	}
}

// TestSimilarSingleflight hammers one unknown value from many goroutines:
// all of them must receive the identical (shared) list, and the miss
// counter must move by far less than the goroutine count, proving the
// concurrent computations were deduplicated onto one leader.
func TestSimilarSingleflight(t *testing.T) {
	_, _, s := builtIndexes(t)
	const goroutines = 32
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		outs  [goroutines][]SimilarValue
	)
	var before = mMemoMisses.Value()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			outs[g] = s.Similar(FieldSurname, "zqvxsingleflight")
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(outs[0], outs[g]) {
			t.Fatalf("goroutine %d received a different list", g)
		}
	}
	// The value lands in one shard: exactly one computation can win the
	// leader slot at a time, so misses can only grow by a handful (the
	// goroutines that arrived after the leader finished hit the memo).
	if got := mMemoMisses.Value() - before; got > 3 {
		t.Errorf("expected ~1 computation for %d concurrent probes, misses grew by %d", goroutines, got)
	}
	if !s.Memoised(FieldSurname, "zqvxsingleflight") {
		t.Error("probe not memoised after the stampede")
	}
}

// TestSimilarShardedConcurrentMix drives hits, misses, and same-value
// stampedes across shards under the race detector.
func TestSimilarShardedConcurrentMix(t *testing.T) {
	_, k, s := builtIndexes(t)
	var known string
	for v := range k.postings[FieldSurname] {
		known = v
		break
	}
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			probes := []string{known, "zzstampede", "macdonald", "zqnovel" + string(rune('a'+g%4))}
			for i := 0; i < 60; i++ {
				out := s.Similar(FieldSurname, probes[(i+g)%len(probes)])
				total.Add(int64(len(out)))
			}
		}(g)
	}
	wg.Wait()
	if s.Size(FieldSurname) == 0 {
		t.Fatal("memo empty after concurrent mix")
	}
}

// TestLookupCopyProtectsIndex mutates a LookupCopy result and verifies the
// index postings are untouched; it also documents that the plain Lookup
// contract is read-only sharing.
func TestLookupCopyProtectsIndex(t *testing.T) {
	_, k, _ := builtIndexes(t)
	var value string
	for v, ids := range k.postings[FieldSurname] {
		if ids.len() > 0 {
			value = v
			break
		}
	}
	if value == "" {
		t.Skip("no populated posting")
	}
	cp := k.LookupCopy(FieldSurname, value)
	want := append([]pedigree.NodeID(nil), cp...)
	for i := range cp {
		cp[i] = -999 // hostile caller scribbles over the slice
	}
	got := k.Lookup(FieldSurname, value)
	if len(got) != len(want) {
		t.Fatalf("posting length changed after mutating a copy")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("posting %d corrupted: got %d, want %d", i, got[i], want[i])
		}
	}
	if k.LookupCopy(FieldSurname, "zq-absent-value") != nil {
		t.Error("LookupCopy of an absent value should be nil")
	}
}

// TestYearIndexShrunk verifies the year field stores no postings at all —
// queries use the MinYear/MaxYear interval check — and measures the
// entries the retired per-(entity, year) scheme would have held.
func TestYearIndexShrunk(t *testing.T) {
	g, k, _ := builtIndexes(t)
	st := k.Stats(FieldYear)
	if st.Values != 0 || st.Entries != 0 {
		t.Fatalf("year field still holds postings: %+v", st)
	}
	retired := YearPostingEntries(g)
	if retired == 0 {
		t.Skip("graph has no year spans to measure")
	}
	// Every retired entry was a NodeID plus its share of a map entry and
	// a year-string key; ~4 bytes of payload per entry is the floor.
	t.Logf("year index shrink: %d posting entries (>= %d bytes) replaced by the interval check",
		retired, 4*retired)
	nameEntries := k.Stats(FieldFirstName).Entries + k.Stats(FieldSurname).Entries
	if retired < nameEntries/10 {
		t.Logf("note: retired year entries (%d) small relative to name entries (%d) at this scale",
			retired, nameEntries)
	}
}
