package index

import (
	"reflect"
	"testing"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

// recordOwner partitions nodes the way the serving shards do: a pure
// function of the node's record set (here: lowest record id mod n), so a
// clean node keeps its owner across generations and every node that moves
// between subsets is necessarily dirty.
func recordOwner(g *pedigree.Graph, id pedigree.NodeID, n int) int {
	recs := g.Node(id).Records
	if len(recs) == 0 {
		return 0
	}
	min := recs[0]
	for _, r := range recs[1:] {
		if r < min {
			min = r
		}
	}
	return int(min) % n
}

func keepFor(g *pedigree.Graph, shard, n int) func(pedigree.NodeID) bool {
	return func(id pedigree.NodeID) bool { return recordOwner(g, id, n) == shard }
}

// TestBuildSubsetPartitionsGlobal: for several partition counts, each
// subset's postings must be exactly the global postings filtered to kept
// nodes, and the union across subsets must reproduce the global index —
// no entity lost, duplicated, or misfiled.
func TestBuildSubsetPartitionsGlobal(t *testing.T) {
	g, k, _ := builtIndexes(t)
	for _, n := range []int{2, 4, 7} {
		union := map[Field]map[string][]pedigree.NodeID{}
		for f := Field(0); f < NumFields; f++ {
			union[f] = map[string][]pedigree.NodeID{}
		}
		for shard := 0; shard < n; shard++ {
			keep := keepFor(g, shard, n)
			sk, _ := BuildSubset(g, keep, 0.5)
			for f := Field(0); f < NumFields; f++ {
				for v, pl := range sk.postings[f] {
					ids := pl.decode()
					for _, id := range ids {
						if !keep(id) {
							t.Fatalf("n=%d shard %d field %v value %q: posting holds foreign node %d",
								n, shard, f, v, id)
						}
					}
					union[f][v] = append(union[f][v], ids...)
				}
			}
		}
		// Subset postings are sorted and the subsets are disjoint, so the
		// concatenated union sorted once must equal the global postings.
		for f := Field(0); f < NumFields; f++ {
			if len(union[f]) != len(k.postings[f]) {
				t.Fatalf("n=%d field %v: union has %d values, global %d",
					n, f, len(union[f]), len(k.postings[f]))
			}
			for v, wantPL := range k.postings[f] {
				want := wantPL.decode()
				got := append([]pedigree.NodeID(nil), union[f][v]...)
				sortNodeIDs(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d field %v value %q: union %v, global %v", n, f, v, got, want)
				}
			}
		}
	}
}

func sortNodeIDs(ids []pedigree.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// TestBuildSubsetSimilarityIsFilteredGlobal pins the float-determinism
// contract the scatter-gather merge depends on: a shard's similarity list
// for any value it indexes is the GLOBAL list filtered to values the shard
// indexes — same order, bit-identical similarities — because both are
// computed by the same pure function of the value pair.
func TestBuildSubsetSimilarityIsFilteredGlobal(t *testing.T) {
	g, _, s := builtIndexes(t)
	const n = 4
	for shard := 0; shard < n; shard++ {
		sk, ss := BuildSubset(g, keepFor(g, shard, n), 0.5)
		for _, f := range []Field{FieldFirstName, FieldSurname} {
			checked := 0
			for v := range sk.postings[f] {
				got := ss.Similar(f, v)
				var want []SimilarValue
				for _, sv := range s.Similar(f, v) {
					if sk.postings[f][sv.Value].len() > 0 {
						want = append(want, sv)
					}
				}
				if !sameSimilar(got, want) {
					t.Fatalf("shard %d field %v value %q:\nshard list  %v\nfiltered global %v",
						shard, f, v, got, want)
				}
				checked++
				if checked >= 50 {
					break
				}
			}
			if checked == 0 {
				t.Fatalf("shard %d field %v: no values to check", shard, f)
			}
		}
	}
}

// TestUpdateSubsetEquivalentToBuildSubset grows a generation the way an
// ingest flush does and asserts, per partition, that patching the previous
// subset indexes (UpdateSubset) answers Lookup and Similar identically to
// a from-scratch BuildSubset of the new graph.
func TestUpdateSubsetEquivalentToBuildSubset(t *testing.T) {
	prevG, newG, _, _ := buildGenerations(t, 0.05)
	const n = 4
	incremental := 0
	for shard := 0; shard < n; shard++ {
		prevK, prevS := BuildSubset(prevG, keepFor(prevG, shard, n), 0.5)
		gotK, gotS, st := UpdateSubset(newG, keepFor(newG, shard, n), prevG, prevK, prevS, 0.5)
		wantK, wantS := BuildSubset(newG, keepFor(newG, shard, n), 0.5)
		if st.Incremental {
			incremental++
		}

		for f := Field(0); f < NumFields; f++ {
			if len(gotK.postings[f]) != len(wantK.postings[f]) {
				t.Fatalf("shard %d field %v: %d values incremental, %d fresh (stats %+v)",
					shard, f, len(gotK.postings[f]), len(wantK.postings[f]), st)
			}
			for v, wantPL := range wantK.postings[f] {
				want := wantPL.decode()
				if got := gotK.Lookup(f, v); !reflect.DeepEqual(got, want) {
					t.Fatalf("shard %d field %v value %q: incremental postings %v, fresh %v",
						shard, f, v, got, want)
				}
			}
		}
		for _, f := range []Field{FieldFirstName, FieldSurname} {
			for v := range wantK.postings[f] {
				if got, want := gotS.Similar(f, v), wantS.Similar(f, v); !sameSimilar(got, want) {
					t.Fatalf("shard %d field %v value %q: incremental similar %v, fresh %v",
						shard, f, v, got, want)
				}
			}
			// Probe values neither generation indexed: the lazy path must
			// agree too.
			for _, probe := range []string{"zqprobe", "quixwor"} {
				if got, want := gotS.Similar(f, probe), wantS.Similar(f, probe); !sameSimilar(got, want) {
					t.Fatalf("shard %d field %v probe %q: incremental similar %v, fresh %v",
						shard, f, probe, got, want)
				}
			}
		}
	}
	// The growth batch is small relative to the base data set, so at least
	// one partition must have taken the incremental path (the equivalence
	// above would be vacuous if every shard silently fell back to Build).
	if incremental == 0 {
		t.Fatal("no partition took the incremental path")
	}
}

// TestClassifyMatchesSubsetClassification pins the exported Classify
// against the keep-filtered classification the shards derive from it: a
// node skipped by keep must never influence the kept nodes' dirty flags or
// the old->new mapping of kept previous nodes.
func TestClassifyMatchesSubsetClassification(t *testing.T) {
	prevG, newG, _, _ := buildGenerations(t, 0.03)
	oldToNew, isDirty, dirty := Classify(newG, prevG)
	if dirty == 0 {
		t.Fatal("growth produced no dirty nodes")
	}
	if len(oldToNew) != len(prevG.Nodes) || len(isDirty) != len(newG.Nodes) {
		t.Fatalf("classification sized %d/%d, graphs %d/%d",
			len(oldToNew), len(isDirty), len(prevG.Nodes), len(newG.Nodes))
	}
	prevRecs := model.RecordID(len(prevG.Dataset.Records))
	for i := range newG.Nodes {
		n := &newG.Nodes[i]
		for _, r := range n.Records {
			if r >= prevRecs && !isDirty[i] {
				t.Fatalf("node %d carries new record %d but is not dirty", i, r)
			}
		}
	}
	for j, nid := range oldToNew {
		if nid < 0 {
			continue
		}
		if isDirty[nid] {
			t.Fatalf("prev node %d maps to dirty node %d", j, nid)
		}
		if len(prevG.Nodes[j].Records) != len(newG.Node(nid).Records) {
			t.Fatalf("prev node %d mapped to node %d with a different record set", j, nid)
		}
	}
}
