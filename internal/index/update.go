// Incremental index maintenance for live-ingest flushes.
//
// A flush extends the previous resolution with one small batch of records,
// so most pedigree nodes carry exactly the record set they carried in the
// previous generation — and therefore exactly the same aggregated values.
// Update exploits that: instead of rebuilding K and S from scratch (the
// dominant cost of every flush is recomputing name-similarity lists), it
// translates the previous keyword postings through an old→new node-id map,
// reindexes only the nodes whose clusters changed, and patches the
// similarity index around the handful of indexed values that appeared or
// disappeared. Everything untouched is shared by reference with the
// previous generation, which keeps serving concurrently: shared posting
// lists, similarity lists, and bigram lists are never mutated in place.
package index

import (
	"sort"

	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/simcache"
	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

var (
	mIncremental = obs.Default.Counter("snaps_index_incremental_total",
		"Index updates satisfied by patching the previous generation's indexes.")
	mFullRebuild = obs.Default.Counter("snaps_index_full_rebuild_total",
		"Index updates that fell back to a full rebuild.")
)

// MaxDirtyFraction bounds the incremental path: when more than this
// fraction of the pedigree nodes changed cluster membership since the
// previous build, patching the indexes approaches the cost of rebuilding
// them and Update falls back to a full Build.
const MaxDirtyFraction = 0.25

// UpdateStats reports how an index update was satisfied.
type UpdateStats struct {
	// Incremental is true when the previous indexes were patched; false
	// when a full Build ran, with Reason saying why.
	Incremental bool
	Reason      string
	// TotalNodes and DirtyNodes size the update: dirty nodes are the
	// pedigree nodes whose record set has no identical counterpart in the
	// previous graph and therefore had to be reindexed.
	TotalNodes int
	DirtyNodes int
	// AddedValues and RemovedValues count distinct indexed string values
	// that appeared or disappeared across the similarity fields.
	AddedValues   int
	RemovedValues int
	// ReusedSimLists, PatchedSimLists, and DroppedSimLists count memoised
	// similarity lists carried over by reference, copied with added/removed
	// entries merged in, and invalidated for lazy recompute (non-indexed
	// probe values whose candidate set changed), respectively.
	ReusedSimLists  int
	PatchedSimLists int
	DroppedSimLists int
}

// simFields are the string fields covered by the similarity index S.
var simFields = []Field{FieldFirstName, FieldSurname, FieldLocation}

// Update builds the indexes for g by patching the previous generation's
// indexes where their contents are provably unchanged. prevG, prevK, and
// prevS are the graph and indexes of the generation still being served;
// they are read (under the memo locks where required) but never mutated.
// The returned indexes answer Lookup and Similar identically to a fresh
// Build(g, simThreshold).
//
// Update falls back to a full Build — and says so in the returned stats —
// when there is no previous generation, the similarity threshold changed,
// or too many nodes are dirty for patching to pay off.
func Update(g, prevG *pedigree.Graph, prevK *Keyword, prevS *Similarity, simThreshold float64) (*Keyword, *Similarity, UpdateStats) {
	return UpdateSubset(g, nil, prevG, prevK, prevS, simThreshold)
}

// UpdateSubset is Update restricted to the nodes of g accepted by keep
// (nil keeps every node). prevK and prevS must be the previous
// generation's indexes over the SAME subset — for the serving shards that
// holds structurally: the owning shard of an entity is a pure function of
// its record set, so a node whose record set is unchanged (clean) is owned
// by the same shard in both generations, and every node that moved in or
// out of the subset is dirty and gets reindexed (moved in) or dropped by
// posting translation (moved out). The returned indexes answer Lookup and
// Similar identically to a fresh BuildSubset(g, keep, simThreshold).
func UpdateSubset(g *pedigree.Graph, keep func(pedigree.NodeID) bool, prevG *pedigree.Graph, prevK *Keyword, prevS *Similarity, simThreshold float64) (*Keyword, *Similarity, UpdateStats) {
	if prevG == nil || prevK == nil || prevS == nil {
		return fullRebuild(g, keep, simThreshold, "no previous index")
	}
	if prevS.threshold != simThreshold {
		return fullRebuild(g, keep, simThreshold, "similarity threshold changed")
	}
	oldToNew, isDirty, dirtyCount, total := classifyNodes(g, prevG, keep)
	if total == 0 || float64(dirtyCount) > MaxDirtyFraction*float64(total) {
		return fullRebuild(g, keep, simThreshold, "dirty fraction above threshold")
	}
	defer obs.StartStage("index.update").Stop()
	mIncremental.Inc()
	stats := UpdateStats{
		Incremental: true,
		TotalNodes:  total,
		DirtyNodes:  dirtyCount,
	}

	k := updateKeyword(g, prevK, oldToNew, isDirty)
	s := updateSimilarity(k, prevK, prevS, simThreshold, &stats)
	return k, s, stats
}

func fullRebuild(g *pedigree.Graph, keep func(pedigree.NodeID) bool, simThreshold float64, reason string) (*Keyword, *Similarity, UpdateStats) {
	mFullRebuild.Inc()
	k, s := BuildSubset(g, keep, simThreshold)
	return k, s, UpdateStats{Reason: reason, TotalNodes: len(g.Nodes)}
}

// Classify exposes the clean/dirty classification of g's nodes against the
// previous graph: oldToNew maps each previous node to its clean
// counterpart in g (-1 when its cluster changed or it disappeared), and
// isDirty marks the nodes of g that have no identical previous record set.
// The shard coordinator uses it to decide which partitions a flush
// actually touched.
func Classify(g, prevG *pedigree.Graph) (oldToNew []pedigree.NodeID, isDirty []bool, dirtyCount int) {
	oldToNew, isDirty, dirtyCount, _ = classifyNodes(g, prevG, nil)
	return oldToNew, isDirty, dirtyCount
}

// classifyNodes matches each node of g against the previous graph. A node
// is clean when its record set is exactly the record set of one previous
// node: aggregation is a pure function of the record set (records are
// append-only across generations), so a clean node carries byte-identical
// indexed values and only its NodeID may have changed. oldToNew maps each
// previous node to its clean counterpart (-1 when its cluster changed).
// Nodes rejected by keep (nil keeps all) are skipped entirely: not
// classified, not counted in total, and never mapped into oldToNew.
func classifyNodes(g, prevG *pedigree.Graph, keep func(pedigree.NodeID) bool) (oldToNew []pedigree.NodeID, isDirty []bool, dirtyCount, total int) {
	oldToNew = make([]pedigree.NodeID, len(prevG.Nodes))
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	isDirty = make([]bool, len(g.Nodes))
	prevRecs := model.RecordID(len(prevG.Dataset.Records))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if keep != nil && !keep(n.ID) {
			continue
		}
		total++
		old := pedigree.NodeID(-1)
		clean := len(n.Records) > 0
		for j, r := range n.Records {
			if r >= prevRecs {
				clean = false
				break
			}
			o, ok := prevG.NodeOfRecord(r)
			if !ok {
				clean = false
				break
			}
			if j == 0 {
				old = o
			} else if o != old {
				clean = false
				break
			}
		}
		// Same count plus containment means the sets are equal (records
		// appear in exactly one node per graph).
		if clean && len(prevG.Node(old).Records) != len(n.Records) {
			clean = false
		}
		if clean {
			oldToNew[old] = n.ID
		} else {
			isDirty[i] = true
			dirtyCount++
		}
	}
	return oldToNew, isDirty, dirtyCount, total
}

// fieldValue keys a posting list across the per-field maps.
type fieldValue struct {
	f Field
	v string
}

// updateKeyword translates the previous postings through oldToNew and
// reindexes the dirty nodes. Compressed lists whose ids are unchanged are
// shared with the previous index (the encoded bytes are immutable); any
// list that is translated, filtered, or appended to is decoded into a
// working slice, edited, sorted, and re-encoded fresh.
func updateKeyword(g *pedigree.Graph, prevK *Keyword, oldToNew []pedigree.NodeID, isDirty []bool) *Keyword {
	k := &Keyword{}
	// touched holds the decoded working lists of every value being edited;
	// they are re-encoded into k at the end.
	touched := map[fieldValue][]pedigree.NodeID{}
	for f := Field(0); f < NumFields; f++ {
		k.postings[f] = make(map[string]postingList, len(prevK.postings[f]))
		for v, pl := range prevK.postings[f] {
			out, shared := translatePostings(pl, oldToNew)
			if shared {
				k.postings[f][v] = pl
				continue
			}
			if len(out) == 0 {
				continue // value disappeared with its dirty nodes
			}
			touched[fieldValue{f, v}] = out
		}
	}

	add := func(f Field, v string, id pedigree.NodeID) {
		key := fieldValue{f, v}
		ids, ok := touched[key]
		if !ok {
			// First edit of a carried-over (or absent) list: decode it so
			// the shared encoded bytes are never appended to.
			ids = k.postings[f][v].decode()
		}
		touched[key] = append(ids, id)
	}
	for i := range g.Nodes {
		if !isDirty[i] {
			continue
		}
		n := &g.Nodes[i]
		for _, v := range n.FirstNames {
			add(FieldFirstName, v, n.ID)
		}
		for _, v := range n.Surnames {
			add(FieldSurname, v, n.ID)
		}
		for _, v := range n.Locations {
			add(FieldLocation, v, n.ID)
		}
		if gd := n.Gender.String(); gd != "?" {
			add(FieldGender, gd, n.ID)
		}
	}

	for key, ids := range touched {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		k.postings[key.f][key.v] = encodePostings(ids)
	}
	return k
}

// translatePostings maps a compressed posting list through oldToNew,
// dropping ids of previous nodes that no longer have a clean counterpart.
// When the mapping is the identity for every id the encoded list can be
// shared as-is; otherwise the decoded, translated (possibly unsorted)
// list is returned for further edits.
func translatePostings(pl postingList, oldToNew []pedigree.NodeID) ([]pedigree.NodeID, bool) {
	shared := true
	for it := pl.iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		if oldToNew[id] != id {
			shared = false
			break
		}
	}
	if shared {
		return nil, true
	}
	out := make([]pedigree.NodeID, 0, pl.len())
	for it := pl.iter(); ; {
		id, ok := it.Next()
		if !ok {
			break
		}
		if nid := oldToNew[id]; nid >= 0 {
			out = append(out, nid)
		}
	}
	return out, false
}

// simPatch collects the edits one carried-over similarity list needs:
// entries for values that just became indexed, entries of values that left
// the index.
type simPatch struct {
	add []SimilarValue
	rem map[string]bool
}

// simBefore is the similarity-list order: similarity descending, value
// ascending (the comparator of computeSimilar).
func simBefore(x, y SimilarValue) bool {
	if x.Sim != y.Sim {
		return x.Sim > y.Sim
	}
	return x.Value < y.Value
}

// applyPatch merges a sorted similarity list with a patch into a fresh,
// sorted list; the input list (shared with the previous generation) is not
// modified.
func applyPatch(list []SimilarValue, p *simPatch) []SimilarValue {
	sort.Slice(p.add, func(i, j int) bool { return simBefore(p.add[i], p.add[j]) })
	out := make([]SimilarValue, 0, len(list)+len(p.add))
	i, j := 0, 0
	for i < len(list) || j < len(p.add) {
		if i >= len(list) || (j < len(p.add) && simBefore(p.add[j], list[i])) {
			out = append(out, p.add[j])
			j++
			continue
		}
		if p.rem == nil || !p.rem[list[i].Value] {
			out = append(out, list[i])
		}
		i++
	}
	return out
}

// updateSimilarity patches S around the indexed-value diff. S is entirely
// value-keyed — node ids never appear in it — so a memoised similarity
// list changes only when a value similar to it (which therefore shares a
// bigram with it) was added to or removed from the index. The edits are
// driven from the diff side: each added value's candidate scan says
// exactly which existing lists gain an entry, each removed value's scan
// (over the previous bigram postings) says which lists lose one. Every
// untouched list — precomputed or query-extended — is carried over by
// reference; patched lists are fresh copies; only memoised lists of
// NON-indexed probe values whose candidate set may have changed are
// dropped for lazy recompute (the diff scans cannot see probes).
func updateSimilarity(k, prevK *Keyword, prevS *Similarity, simThreshold float64, stats *UpdateStats) *Similarity {
	s := &Similarity{threshold: simThreshold}
	for f := Field(0); f < NumFields; f++ {
		for i := range s.shards[f] {
			s.shards[f][i].sims = map[string][]SimilarValue{}
			s.shards[f][i].inflight = map[string]*memoCall{}
		}
		s.bigramPost[f] = map[strsim.BigramID]symList{}
	}

	for _, f := range simFields {
		added, removed := valueDiff(k.postings[f], prevK.postings[f])
		stats.AddedValues += len(added)
		stats.RemovedValues += len(removed)
		removedSet := make(map[string]bool, len(removed))
		removedIDs := make(map[symbol.ID]bool, len(removed))
		for _, v := range removed {
			removedSet[v] = true
			removedIDs[symbol.Intern(v)] = true
		}
		// Diff values are (or were) indexed, hence interned; their bigram
		// signatures come from the feature slab.
		changed := map[strsim.BigramID]bool{}
		for _, v := range added {
			for _, bg := range simcache.Feat(symbol.Intern(v)).Bigrams {
				changed[bg] = true
			}
		}
		for _, v := range removed {
			for _, bg := range simcache.Feat(symbol.Intern(v)).Bigrams {
				changed[bg] = true
			}
		}

		// Bigram postings, copy-on-write: lists touched by the diff are
		// decoded and rebuilt (removed values filtered out, added values
		// appended, re-sorted, re-encoded); the rest share the previous
		// generation's immutable encoded bytes.
		bp := make(map[strsim.BigramID]symList, len(prevS.bigramPost[f]))
		work := map[strsim.BigramID][]symbol.ID{}
		for bg, vals := range prevS.bigramPost[f] {
			if !changed[bg] {
				bp[bg] = vals
				continue
			}
			out := make([]symbol.ID, 0, vals.len()+1)
			for it := vals.iter(); ; {
				id, ok := it.next()
				if !ok {
					break
				}
				if !removedIDs[id] {
					out = append(out, id)
				}
			}
			work[bg] = out
		}
		for _, a := range added {
			aid := symbol.Intern(a)
			for _, bg := range simcache.Feat(aid).Bigrams {
				work[bg] = append(work[bg], aid)
			}
		}
		for bg, ids := range work {
			if len(ids) == 0 {
				continue // bigram disappeared with its values
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			bp[bg] = encodeSyms(ids)
		}
		s.bigramPost[f] = bp

		// Compute the added values' own lists against the patched bigram
		// postings (they see each other and every surviving value), and
		// derive from each scan the patch every existing indexed value's
		// list needs: a's candidates with sim >= threshold are exactly the
		// lists a belongs in, with the same (symmetric) similarity.
		addedSet := make(map[string]bool, len(added))
		for _, a := range added {
			addedSet[a] = true
		}
		patches := map[string]*simPatch{}
		getPatch := func(v string) *simPatch {
			p := patches[v]
			if p == nil {
				p = &simPatch{}
				patches[v] = p
			}
			return p
		}
		addedLists := make([][]SimilarValue, len(added))
		parallelRange(len(added), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				addedLists[i] = s.computeSimilar(f, added[i])
			}
		})
		for i, a := range added {
			for _, sv := range addedLists[i] {
				if sv.Value == a || addedSet[sv.Value] {
					continue // fresh lists are already complete
				}
				getPatch(sv.Value).add = append(getPatch(sv.Value).add, SimilarValue{Value: a, Sim: sv.Sim})
			}
		}
		// A removed value's list entries all shared a bigram with it, so a
		// scan of the PREVIOUS bigram postings finds every list it may
		// appear in.
		for _, r := range removed {
			cand := map[symbol.ID]bool{}
			for _, bg := range simcache.Feat(symbol.Intern(r)).Bigrams {
				for it := prevS.bigramPost[f][bg].iter(); ; {
					id, ok := it.next()
					if !ok {
						break
					}
					cand[id] = true
				}
			}
			for id := range cand {
				v := symbol.Str(id)
				if v == r || removedSet[v] || addedSet[v] {
					continue
				}
				p := getPatch(v)
				if p.rem == nil {
					p.rem = map[string]bool{}
				}
				p.rem[r] = true
			}
		}

		// Carry the previous generation's memo over: by reference when
		// untouched, patched into a fresh copy when the diff reaches it.
		// The previous index is still serving queries and memoising new
		// probes, so its shards are read under their locks.
		for i := range prevS.shards[f] {
			psh := &prevS.shards[f][i]
			nsh := &s.shards[f][i]
			psh.mu.RLock()
			for v, list := range psh.sims {
				if removedSet[v] || addedSet[v] {
					stats.DroppedSimLists++
					continue
				}
				pch := patches[v]
				if pch == nil {
					// No edits found via the index-side scans — but a
					// NON-indexed probe's list is invisible to them, so it
					// is dropped (lazily recomputed) if its candidate set
					// may have changed.
					if k.postings[f][v].len() == 0 && touchesChanged(v, changed) {
						stats.DroppedSimLists++
						continue
					}
					nsh.sims[v] = list
					stats.ReusedSimLists++
					continue
				}
				nsh.sims[v] = applyPatch(list, pch)
				stats.PatchedSimLists++
			}
			psh.mu.RUnlock()
		}
		for i, a := range added {
			s.shard(f, a).sims[a] = addedLists[i]
		}
	}

	// Safety net preserving Build's precompute invariant for the name
	// fields: any indexed value that somehow has no memoised list (e.g. it
	// was never memoised in the previous generation) is computed now, off
	// the query path.
	precompute := obs.StartStage("index_update_sims")
	for _, f := range []Field{FieldFirstName, FieldSurname} {
		var need []string
		for v := range k.postings[f] {
			if _, ok := s.shard(f, v).sims[v]; !ok {
				need = append(need, v)
			}
		}
		sort.Strings(need)
		outs := make([][]SimilarValue, len(need))
		parallelRange(len(need), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				outs[i] = s.computeSimilar(f, need[i])
			}
		})
		for i, v := range need {
			s.shard(f, v).sims[v] = outs[i]
		}
	}
	precompute.Stop()
	return s
}

// valueDiff returns the values present only in cur (added) and only in
// prev (removed), sorted.
func valueDiff(cur, prev map[string]postingList) (added, removed []string) {
	for v := range cur {
		if _, ok := prev[v]; !ok {
			added = append(added, v)
		}
	}
	for v := range prev {
		if _, ok := cur[v]; !ok {
			removed = append(removed, v)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// touchesChanged reports whether any bigram of v is in the changed set,
// i.e. whether v's similarity candidates may have changed. v may be a
// non-indexed probe value, so it is looked up (never interned) and falls
// back to computing bigram ids on the stack when unknown.
func touchesChanged(v string, changed map[strsim.BigramID]bool) bool {
	if len(changed) == 0 {
		return false
	}
	var bgBuf [64]strsim.BigramID
	var bgs []strsim.BigramID
	if id, ok := symbol.Lookup(v); ok {
		bgs = simcache.Feat(id).Bigrams
	} else {
		bgs = strsim.AppendBigramIDs(bgBuf[:0], v)
	}
	for _, bg := range bgs {
		if changed[bg] {
			return true
		}
	}
	return false
}
