package index

import (
	"sort"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/store"
	"github.com/snaps/snaps/internal/strsim"
	"github.com/snaps/snaps/internal/symbol"
)

// appendBirthCert appends a synthetic birth certificate to the data set the
// way the ingest pipeline's Apply does: one record per role, names already
// normalised, deterministic record ids.
func appendBirthCert(d *model.Dataset, baby, father, mother [2]string, year int) {
	certID := model.CertID(len(d.Certificates))
	cert := model.Certificate{
		ID: certID, Type: model.Birth, Year: year,
		Roles: map[model.Role]model.RecordID{}, Age: -1,
	}
	add := func(role model.Role, name [2]string, g model.Gender) {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: certID, Role: role, Gender: g,
			First: model.Intern(name[0]), Sur: model.Intern(name[1]),
			Year: year, Truth: model.NoPerson,
		})
		cert.Roles[role] = id
	}
	add(model.Bb, baby, model.Male)
	add(model.Bm, mother, model.Female)
	add(model.Bf, father, model.Male)
	d.Certificates = append(d.Certificates, cert)
}

// buildGenerations resolves a base data set into a served generation, then
// produces the next generation the way an ingest flush does: clone, append
// a small batch of certificates (some reusing existing names so clusters
// change, some introducing values never indexed before), restore the
// previous clustering, and er.Extend over the new records.
func buildGenerations(tb testing.TB, scale float64) (prevG, newG *pedigree.Graph, prevK *Keyword, prevS *Similarity) {
	tb.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(scale))
	d := p.Dataset
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	prevG = pedigree.Build(d, pr.Result.Store)
	prevK, prevS = Build(prevG, 0.5)

	newD := d.Clone()
	firstNew := model.RecordID(len(newD.Records))
	// Reuse names already in the data set so the new records merge into
	// existing clusters (dirtying their nodes) ...
	r0, r1 := &d.Records[0], &d.Records[len(d.Records)/2]
	appendBirthCert(newD,
		[2]string{r0.FirstName(), r0.Surname()},
		[2]string{r1.FirstName(), r1.Surname()},
		[2]string{r1.FirstName(), r0.Surname()}, 1890)
	// ... and introduce names no generation has seen, so the similarity
	// index has genuinely new values to fold in.
	appendBirthCert(newD,
		[2]string{"zebedee", "quixworth"},
		[2]string{"barnabus", "quixworth"},
		[2]string{"philomena", "quixworth"}, 1891)

	snap := store.Snapshot{Dataset: newD, Clusters: pr.Result.Store.Clusters()}
	newStore := snap.Restore()
	er.Extend(newD, newStore, firstNew, depgraph.DefaultConfig(), er.DefaultConfig())
	newG = pedigree.Build(newD, newStore)
	return prevG, newG, prevK, prevS
}

func sameSimilar(a, b []SimilarValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestUpdateEquivalence is the structural golden guard for incremental
// index maintenance: Update must answer every Lookup and Similar exactly
// like a fresh Build over the new generation — same posting lists, same
// similarity lists, for indexed values and query-time probes alike.
func TestUpdateEquivalence(t *testing.T) {
	prevG, newG, prevK, prevS := buildGenerations(t, 0.06)

	// Warm the previous generation's memo with query-time probes, so the
	// carry-over path handles lazily memoised lists, not just precomputed
	// ones.
	probes := []struct {
		f Field
		v string
	}{
		{FieldSurname, "quixwor"}, // near the new surname: must be invalidated
		{FieldFirstName, "zzzz-not-a-name"},
		{FieldLocation, "edinburgh"},
	}
	for _, p := range probes {
		prevS.Similar(p.f, p.v)
	}

	fullK, fullS := Build(newG, 0.5)
	updK, updS, st := Update(newG, prevG, prevK, prevS, 0.5)

	if !st.Incremental {
		t.Fatalf("update fell back to full rebuild: %s", st.Reason)
	}
	if st.DirtyNodes == 0 {
		t.Fatal("no dirty nodes; the scenario did not change any cluster")
	}
	if st.AddedValues == 0 {
		t.Fatal("no added values; the new surname was not detected")
	}
	if st.ReusedSimLists == 0 {
		t.Fatal("no similarity lists reused; the incremental path did no sharing")
	}

	// Keyword index: identical value sets and posting lists per field.
	for f := Field(0); f < NumFields; f++ {
		if got, want := updK.Values(f), fullK.Values(f); got != want {
			t.Fatalf("field %v: %d values, full rebuild has %d", f, got, want)
		}
		for v, wantPL := range fullK.postings[f] {
			got, want := updK.Lookup(f, v), wantPL.decode()
			if len(got) != len(want) {
				t.Fatalf("field %v value %q: postings %v, full rebuild %v", f, v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("field %v value %q: postings %v, full rebuild %v", f, v, got, want)
				}
			}
		}
	}

	// Similarity index: identical lists for every indexed value of the
	// name fields (covers shared, recomputed, and added values) and for
	// the warmed probes (covers dropped-and-lazily-recomputed lists).
	for _, f := range []Field{FieldFirstName, FieldSurname} {
		for v := range fullK.postings[f] {
			if got, want := updS.Similar(f, v), fullS.Similar(f, v); !sameSimilar(got, want) {
				t.Fatalf("field %v value %q: Similar = %v, full rebuild = %v", f, v, got, want)
			}
		}
	}
	for _, p := range probes {
		if got, want := updS.Similar(p.f, p.v), fullS.Similar(p.f, p.v); !sameSimilar(got, want) {
			t.Fatalf("probe %v %q: Similar = %v, full rebuild = %v", p.f, p.v, got, want)
		}
	}
}

// TestUpdateFallbacks locks the conditions under which Update refuses the
// incremental path and runs a full Build instead.
func TestUpdateFallbacks(t *testing.T) {
	prevG, newG, prevK, prevS := buildGenerations(t, 0.04)

	if _, _, st := Update(newG, nil, nil, nil, 0.5); st.Incremental {
		t.Fatal("nil previous generation must force a full rebuild")
	}
	if _, _, st := Update(newG, prevG, prevK, prevS, 0.7); st.Incremental {
		t.Fatal("threshold change must force a full rebuild")
	}
	// A full rebuild still produces working indexes.
	k, s, st := Update(newG, nil, nil, nil, 0.5)
	if st.Reason == "" || k == nil || s == nil {
		t.Fatalf("fallback returned no reason or nil indexes: %+v", st)
	}
}

// TestUpdateSimilarityRemovesValues exercises the removal path directly:
// record sets are append-only in production so indexed values in practice
// only appear, but Update must stay correct if a value vanishes (e.g. a
// future compaction). A removed value must leave the bigram postings and
// every similarity list that contained it.
func TestUpdateSimilarityRemovesValues(t *testing.T) {
	mk := func(vals ...string) *Keyword {
		k := &Keyword{}
		for f := Field(0); f < NumFields; f++ {
			k.postings[f] = map[string]postingList{}
		}
		for i, v := range vals {
			k.postings[FieldSurname][v] = encodePostings([]pedigree.NodeID{pedigree.NodeID(i)})
		}
		return k
	}
	prevK := mk("anna", "annie", "bert")
	prevS := &Similarity{threshold: 0.5}
	for f := Field(0); f < NumFields; f++ {
		for i := range prevS.shards[f] {
			prevS.shards[f][i].sims = map[string][]SimilarValue{}
			prevS.shards[f][i].inflight = map[string]*memoCall{}
		}
		prevS.bigramPost[f] = map[strsim.BigramID]symList{}
	}
	bgRaw := map[strsim.BigramID][]symbol.ID{}
	for v := range prevK.postings[FieldSurname] {
		id := symbol.Intern(v)
		for _, bg := range strsim.AppendBigramIDs(nil, v) {
			bgRaw[bg] = append(bgRaw[bg], id)
		}
	}
	for bg, ids := range bgRaw {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		prevS.bigramPost[FieldSurname][bg] = encodeSyms(ids)
	}
	for v := range prevK.postings[FieldSurname] {
		prevS.shard(FieldSurname, v).sims[v] = prevS.computeSimilar(FieldSurname, v)
	}
	if list := prevS.Similar(FieldSurname, "anna"); len(list) < 2 {
		t.Fatalf("precondition: anna should be similar to annie, got %v", list)
	}

	newK := mk("anna", "bert") // "annie" removed
	var st UpdateStats
	s := updateSimilarity(newK, prevK, prevS, 0.5, &st)
	if st.RemovedValues != 1 {
		t.Fatalf("RemovedValues = %d, want 1", st.RemovedValues)
	}
	for bg, vals := range s.bigramPost[FieldSurname] {
		for it := vals.iter(); ; {
			id, ok := it.next()
			if !ok {
				break
			}
			if symbol.Str(id) == "annie" {
				t.Fatalf("bigram %q still lists removed value annie", bg)
			}
		}
	}
	for _, v := range s.Similar(FieldSurname, "anna") {
		if v.Value == "annie" {
			t.Fatal("similarity list for anna still contains removed value annie")
		}
	}
}

// BenchmarkIndexUpdate compares one flush's index maintenance cost: a full
// Build of the new generation vs the incremental Update from the previous
// one. The gap is the low-latency-flush headline of BENCH_offline.json.
func BenchmarkIndexUpdate(b *testing.B) {
	prevG, newG, prevK, prevS := buildGenerations(b, 0.1)
	b.Run("full_rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Build(newG, 0.5)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _, st := Update(newG, prevG, prevK, prevS, 0.5)
			if !st.Incremental {
				b.Fatalf("fell back to full rebuild: %s", st.Reason)
			}
		}
	})
}
