// Package ingest implements the live ingestion subsystem: new vital-event
// certificates are accepted while the server keeps answering queries. A
// submitted certificate is journalled to an append-only WAL, buffered in a
// batch, and folded into the resolved data set by a background worker that
// runs the incremental er.Extend pass and rebuilds the pedigree graph and
// the query indexes off the hot path. The rebuilt bundle (data set, entity
// store, graph, engine) is published with an RCU-style atomic pointer swap,
// so in-flight queries keep their consistent snapshot and new queries see
// the updated one — readers never block on a rebuild and never observe a
// half-built index.
package ingest

import (
	"fmt"
	"strings"

	"github.com/snaps/snaps/internal/model"
)

// Person is one role occurrence on a submitted certificate.
type Person struct {
	FirstName string `json:"first_name"`
	Surname   string `json:"surname"`
	// Gender is "m" or "f"; it is only consulted for roles whose gender the
	// role code does not already fix (babies, deceased persons, spouses).
	Gender string `json:"gender,omitempty"`
}

// Certificate is the wire format of one ingested certificate. Roles maps
// the paper's role codes (Bb, Bm, Bf, Dd, Dm, Df, Ds, Mm, Mf, Mmm, Mmf,
// Mfm, Mff, and the census roles) to the persons occupying them; only roles
// belonging to the certificate type are accepted, and the principal role
// (the baby, the deceased, or both spouses) is mandatory.
type Certificate struct {
	// Type is "birth", "death", "marriage", or "census".
	Type string `json:"type"`
	// Year of the vital event.
	Year int `json:"year"`
	// Address recorded on the certificate, shared by its roles.
	Address string `json:"address,omitempty"`
	// Age at death (death certificates); implies a birth-year hint.
	Age int `json:"age,omitempty"`
	// Cause of death (death certificates).
	Cause string `json:"cause,omitempty"`
	// Occupation of the certificate's principal earner.
	Occupation string `json:"occupation,omitempty"`

	Roles map[string]Person `json:"roles"`
}

// certType parses the type field.
func (c *Certificate) certType() (model.CertType, error) {
	switch strings.ToLower(strings.TrimSpace(c.Type)) {
	case "birth", "b":
		return model.Birth, nil
	case "death", "d":
		return model.Death, nil
	case "marriage", "m":
		return model.Marriage, nil
	case "census", "c":
		return model.Census, nil
	}
	return 0, fmt.Errorf("ingest: unknown certificate type %q", c.Type)
}

// roleByCode resolves a role code like "Bb" case-insensitively.
func roleByCode(code string) (model.Role, bool) {
	for r := model.Role(0); r < model.NumRoles; r++ {
		if strings.EqualFold(r.String(), code) {
			return r, true
		}
	}
	return 0, false
}

// principalsFor lists the roles at least one of which must be present, and
// whether all of them are required.
func principalsFor(t model.CertType) (roles []model.Role, all bool) {
	switch t {
	case model.Birth:
		return []model.Role{model.Bb}, true
	case model.Death:
		return []model.Role{model.Dd}, true
	case model.Marriage:
		return []model.Role{model.Mm, model.Mf}, true
	default: // Census: any head present suffices.
		return []model.Role{model.Cf, model.Cm}, false
	}
}

// Validate rejects certificates that cannot be applied: unknown types or
// role codes, roles from a different certificate type, nameless persons,
// and missing principal roles.
func (c *Certificate) Validate() error {
	t, err := c.certType()
	if err != nil {
		return err
	}
	if len(c.Roles) == 0 {
		return fmt.Errorf("ingest: certificate has no roles")
	}
	present := map[model.Role]bool{}
	for code, p := range c.Roles {
		role, ok := roleByCode(code)
		if !ok {
			return fmt.Errorf("ingest: unknown role code %q", code)
		}
		if role.CertType() != t {
			return fmt.Errorf("ingest: role %v does not belong on a %s certificate", role, c.Type)
		}
		if present[role] {
			return fmt.Errorf("ingest: role %v given twice", role)
		}
		present[role] = true
		if strings.TrimSpace(p.FirstName) == "" && strings.TrimSpace(p.Surname) == "" {
			return fmt.Errorf("ingest: role %v has neither first name nor surname", role)
		}
	}
	principals, all := principalsFor(t)
	any := false
	for _, r := range principals {
		if present[r] {
			any = true
		} else if all {
			return fmt.Errorf("ingest: %s certificate missing principal role %v", c.Type, r)
		}
	}
	if !any {
		return fmt.Errorf("ingest: %s certificate missing a principal role", c.Type)
	}
	return nil
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func parseGender(s string) model.Gender {
	switch norm(s) {
	case "m", "male":
		return model.Male
	case "f", "female":
		return model.Female
	}
	return model.GenderUnknown
}

// Apply appends the certificate's records to the data set, following the
// extraction conventions of internal/vitalio: names are normalised to lower
// case, parent roles on death certificates carry no address (the address
// belongs to the deceased's household), and a recorded age at death implies
// a birth-year hint on the deceased's record. It returns the id of the
// first record appended. The certificate must have passed Validate.
func Apply(d *model.Dataset, c *Certificate) (model.RecordID, error) {
	t, err := c.certType()
	if err != nil {
		return 0, err
	}
	certID := model.CertID(len(d.Certificates))
	cert := model.Certificate{
		ID: certID, Type: t, Year: c.Year,
		Roles: make(map[model.Role]model.RecordID, len(c.Roles)),
		Age:   -1,
	}
	if t == model.Death {
		cert.Cause = norm(c.Cause)
		if c.Age > 0 {
			cert.Age = c.Age
		}
	}
	firstNew := model.RecordID(len(d.Records))

	// Iterate roles in the fixed model.Role order so record ids are
	// deterministic regardless of JSON map iteration order.
	for role := model.Role(0); role < model.NumRoles; role++ {
		p, ok := rolePerson(c.Roles, role)
		if !ok {
			continue
		}
		gender := model.RoleGender(role)
		if gender == model.GenderUnknown {
			gender = parseGender(p.Gender)
		}
		addr := norm(c.Address)
		if t == model.Death && (role == model.Dm || role == model.Df) {
			addr = ""
		}
		occ := ""
		if (t == model.Birth && role == model.Bf) || (t == model.Death && role == model.Dd) {
			occ = norm(c.Occupation)
		}
		id := model.RecordID(len(d.Records))
		rec := model.Record{
			ID: id, Cert: certID, Role: role, Gender: gender,
			First: model.Intern(norm(p.FirstName)), Sur: model.Intern(norm(p.Surname)),
			Addr: model.Intern(addr), Occ: model.Intern(occ),
			Year: c.Year, Truth: model.NoPerson,
		}
		if t == model.Death && role == model.Dd && cert.Age >= 0 && c.Year != 0 {
			rec.BirthHint = c.Year - cert.Age
		}
		d.Records = append(d.Records, rec)
		cert.Roles[role] = id
	}
	d.Certificates = append(d.Certificates, cert)
	return firstNew, nil
}

// rolePerson finds the person for a role under any casing of its code.
func rolePerson(roles map[string]Person, role model.Role) (Person, bool) {
	if p, ok := roles[role.String()]; ok {
		return p, true
	}
	for code, p := range roles {
		if strings.EqualFold(code, role.String()) {
			return p, true
		}
	}
	return Person{}, false
}
