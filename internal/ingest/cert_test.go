package ingest

import (
	"testing"

	"github.com/snaps/snaps/internal/model"
)

// familyDataset builds the small two-birth-certificate family of the
// er.Extend tests: Torquil MacSween (b. 1870) and Una MacSween (b. 1872)
// with shared parents Flora and Ewen at 5 Uig.
func familyDataset() *model.Dataset {
	d := &model.Dataset{Name: "ingest-family"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender, truth model.PersonID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern("5 uig"), Year: year, Truth: truth,
		})
		return id
	}
	add(model.Bb, 0, "torquil", "macsween", 1870, model.Male, 1)
	add(model.Bm, 0, "flora", "macsween", 1870, model.Female, 2)
	add(model.Bf, 0, "ewen", "macsween", 1870, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "una", "macsween", 1872, model.Female, 4)
	add(model.Bm, 1, "flora", "macsween", 1872, model.Female, 2)
	add(model.Bf, 1, "ewen", "macsween", 1872, model.Male, 3)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})
	return d
}

// torquilDeath is the death certificate that should merge into the family.
func torquilDeath() *Certificate {
	return &Certificate{
		Type: "death", Year: 1875, Age: 5, Cause: "Measles", Address: "5 Uig",
		Roles: map[string]Person{
			"Dd": {FirstName: "Torquil", Surname: "MacSween", Gender: "m"},
			"Dm": {FirstName: "Flora", Surname: "MacSween"},
			"Df": {FirstName: "Ewen", Surname: "MacSween"},
		},
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cert Certificate
		ok   bool
	}{
		{"valid death", *torquilDeath(), true},
		{"valid birth", Certificate{Type: "birth", Year: 1880, Roles: map[string]Person{
			"Bb": {FirstName: "norman", Surname: "macsween"},
		}}, true},
		{"case-insensitive role code", Certificate{Type: "birth", Year: 1880, Roles: map[string]Person{
			"bb": {FirstName: "norman", Surname: "macsween"},
		}}, true},
		{"unknown type", Certificate{Type: "baptism", Roles: map[string]Person{
			"Bb": {FirstName: "a", Surname: "b"},
		}}, false},
		{"no roles", Certificate{Type: "birth"}, false},
		{"unknown role", Certificate{Type: "birth", Roles: map[string]Person{
			"Zz": {FirstName: "a", Surname: "b"},
		}}, false},
		{"role from wrong type", Certificate{Type: "birth", Roles: map[string]Person{
			"Dd": {FirstName: "a", Surname: "b"},
		}}, false},
		{"missing principal", Certificate{Type: "birth", Roles: map[string]Person{
			"Bm": {FirstName: "a", Surname: "b"},
		}}, false},
		{"nameless person", Certificate{Type: "birth", Roles: map[string]Person{
			"Bb": {Gender: "m"},
		}}, false},
		{"marriage needs both spouses", Certificate{Type: "marriage", Roles: map[string]Person{
			"Mm": {FirstName: "a", Surname: "b"},
		}}, false},
	}
	for _, tc := range cases {
		err := tc.cert.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestApply(t *testing.T) {
	d := familyDataset()
	before := len(d.Records)
	c := torquilDeath()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	firstNew, err := Apply(d, c)
	if err != nil {
		t.Fatal(err)
	}
	if firstNew != model.RecordID(before) {
		t.Errorf("firstNew = %d, want %d", firstNew, before)
	}
	if len(d.Records) != before+3 {
		t.Fatalf("appended %d records, want 3", len(d.Records)-before)
	}
	cert := d.Certificates[len(d.Certificates)-1]
	if cert.Type != model.Death || cert.Year != 1875 || cert.Age != 5 || cert.Cause != "measles" {
		t.Errorf("bad certificate: %+v", cert)
	}
	dd := d.Record(cert.Roles[model.Dd])
	if dd.FirstName() != "torquil" || dd.Surname() != "macsween" {
		t.Errorf("names not normalised: %q %q", dd.FirstName(), dd.Surname())
	}
	if dd.Gender != model.Male {
		t.Errorf("deceased gender = %v", dd.Gender)
	}
	if dd.Address() != "5 uig" {
		t.Errorf("deceased address = %q", dd.Address())
	}
	if dd.BirthHint != 1870 {
		t.Errorf("BirthHint = %d, want 1870 (year-age)", dd.BirthHint)
	}
	// Death-certificate parents carry no address (vitalio convention).
	dm := d.Record(cert.Roles[model.Dm])
	if dm.Address() != "" {
		t.Errorf("death mother address = %q, want empty", dm.Address())
	}
	if dm.Gender != model.Female {
		t.Errorf("role-implied gender ignored: %v", dm.Gender)
	}
	// Records ids are dense and in role order.
	for i, want := range []model.Role{model.Dd, model.Dm, model.Df} {
		if got := d.Records[before+i].Role; got != want {
			t.Errorf("record %d role %v, want %v", before+i, got, want)
		}
	}
}
