package ingest

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/query"
)

// generatedPipeline builds a pipeline over a generated data set, large
// enough that incremental index maintenance has real sharing to do.
func generatedPipeline(t *testing.T, scale float64, cfg Config) *Pipeline {
	t.Helper()
	d := dataset.Generate(dataset.IOS().Scaled(scale)).Dataset
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	p, err := NewPipeline(NewServing(d, pr.Result.Store, 0.5), nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// birthCert builds a submittable birth certificate for three names.
func birthCert(baby, father, mother [2]string, year int) *Certificate {
	return &Certificate{
		Type: "birth", Year: year, Address: "7 test lane",
		Roles: map[string]Person{
			"Bb": {FirstName: baby[0], Surname: baby[1], Gender: "m"},
			"Bf": {FirstName: father[0], Surname: father[1]},
			"Bm": {FirstName: mother[0], Surname: mother[1]},
		},
	}
}

// sampleQueries picks (first name, surname) pairs spread across the served
// graph, plus probes for never-indexed and newly indexed values.
func sampleQueries(sv *Serving, extra ...[2]string) []query.Query {
	var qs []query.Query
	step := len(sv.Graph.Nodes)/24 + 1
	for i := 0; i < len(sv.Graph.Nodes); i += step {
		n := &sv.Graph.Nodes[i]
		if len(n.FirstNames) == 0 || len(n.Surnames) == 0 {
			continue
		}
		qs = append(qs, query.Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0]})
	}
	for _, e := range extra {
		qs = append(qs, query.Query{FirstName: e[0], Surname: e[1]})
	}
	return qs
}

// TestFlushIncrementalIndexGoldenEquivalence is the flush-level golden
// guard: generations published through index.Update must rank queries
// byte-identically to a from-scratch rebuild of the same generation, across
// several chained incremental flushes.
func TestFlushIncrementalIndexGoldenEquivalence(t *testing.T) {
	p := generatedPipeline(t, 0.05, manualConfig())
	defer p.Close()
	incr := obs.Default.Counter("snaps_index_incremental_total", "")
	before := incr.Value()

	d := p.Serving().Dataset
	r0, r1 := &d.Records[0], &d.Records[len(d.Records)/2]
	rounds := [][]*Certificate{
		{ // merges into existing clusters, plus a brand-new surname
			birthCert([2]string{r0.FirstName(), r0.Surname()},
				[2]string{r1.FirstName(), r1.Surname()},
				[2]string{r1.FirstName(), r0.Surname()}, 1890),
			birthCert([2]string{"zebedee", "quixworth"},
				[2]string{"barnabus", "quixworth"},
				[2]string{"philomena", "quixworth"}, 1891),
		},
		{ // second flush patches the first incremental generation
			birthCert([2]string{"zebedee", "quixworth"},
				[2]string{"barnabus", "quixworth"},
				[2]string{r0.FirstName(), r0.Surname()}, 1893),
		},
	}
	for round, batch := range rounds {
		for _, c := range batch {
			if err := p.Submit(c); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}

		sv := p.Serving()
		// A from-scratch rebuild over the same data set and clustering is
		// the ground truth the incremental indexes must reproduce.
		full := NewServing(sv.Dataset, sv.Store, p.cfg.SimThreshold)
		qs := sampleQueries(sv,
			[2]string{"zebedee", "quixworth"},
			[2]string{"zebedee", "quixwor"}, // typo probe: lazy memo path
			[2]string{"nosuchname", "nosuchsurname"})
		for _, q := range qs {
			got := sv.Engine.Search(q)
			want := full.Engine.Search(q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d query %+v: incremental results %v, full rebuild %v",
					round, q, got, want)
			}
		}
	}
	if gained := incr.Value() - before; gained < int64(len(rounds)) {
		t.Fatalf("incremental index updates = %d, want >= %d (flushes fell back to full rebuilds)",
			gained, len(rounds))
	}
}

// TestConcurrentSearchesDuringIncrementalFlushes races query-time memo
// writes on the still-serving generation against index.Update's carry-over
// reads of the same shards (plus the usual serve-during-swap traffic),
// under the race detector. Searchers deliberately probe unseen values so
// the previous generation's similarity memo keeps growing while Update
// copies it.
func TestConcurrentSearchesDuringIncrementalFlushes(t *testing.T) {
	p := generatedPipeline(t, 0.03, manualConfig())
	defer p.Close()

	sv0 := p.Serving()
	probes := sampleQueries(sv0)
	if len(probes) == 0 {
		t.Fatal("no sample queries")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := probes[(i+w)%len(probes)]
				// Mutate the probe so misses keep extending the memo of
				// whichever generation the searcher holds.
				q.FirstName = fmt.Sprintf("%s%d", q.FirstName, i%7)
				p.Serving().Engine.Search(q)
				sv0.Engine.Search(q) // the generation Update reads from
			}
		}(w)
	}

	d := sv0.Dataset
	for round := 0; round < 4; round++ {
		r := &d.Records[(round*31)%len(d.Records)]
		c := birthCert(
			[2]string{r.FirstName(), r.Surname()},
			[2]string{"fintan", fmt.Sprintf("newname%d", round)},
			[2]string{"maeve", r.Surname()}, 1880+round)
		if err := p.Submit(c); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The final generation still answers exactly like a fresh rebuild.
	sv := p.Serving()
	full := NewServing(sv.Dataset, sv.Store, p.cfg.SimThreshold)
	for _, q := range sampleQueries(sv)[:5] {
		if got, want := sv.Engine.Search(q), full.Engine.Search(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %+v: incremental results %v, full rebuild %v", q, got, want)
		}
	}
}
