package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"github.com/snaps/snaps/internal/obs"
)

// Journal metrics in the default registry.
var (
	mJournalAppends = obs.Default.Counter("snaps_ingest_journal_appends_total",
		"Certificates durably appended (written and fsynced) to the WAL.")
	mJournalReplayed = obs.Default.Counter("snaps_ingest_journal_replayed_total",
		"Certificates replayed from the WAL on startup.")
	mJournalBytes = obs.Default.Gauge("snaps_ingest_journal_bytes",
		"Durable size of the ingestion WAL in bytes (header plus acknowledged entries).")
	mJournalEntries = obs.Default.Gauge("snaps_ingest_journal_entries",
		"Certificates durably recorded in the ingestion WAL.")
)

// journalMagic is the header line of an ingestion journal, following the
// versioned-magic-header discipline of internal/store: unknown versions are
// rejected instead of misinterpreted.
const journalMagic = "SNAPSWALv01"

// Journal is the append-only write-ahead log of ingested certificates: one
// JSON-encoded certificate per line after the magic header. A certificate
// is journalled (and fsynced) before it is acknowledged, so accepted
// submissions survive a crash and are replayed into the pipeline on the
// next startup.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries int
	size    int64 // bytes of durable journal content (header + intact lines)
}

// OpenJournal opens (or creates) the journal at path and replays its
// entries. A torn final line — the signature of a crash mid-append — is
// truncated away; corruption anywhere else is an error. The returned
// certificates are the ones accepted since the journal was created; the
// caller re-applies them before serving.
func OpenJournal(path string) (*Journal, []Certificate, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, path: path}
	if info.Size() == 0 {
		if _, err := f.WriteString(journalMagic + "\n"); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.size = int64(len(journalMagic) + 1)
		j.publishGauges()
		return j, nil, nil
	}
	replayed, err := j.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, replayed, nil
}

// replay reads the journal from the start, validates the header, decodes
// every complete line, and truncates a torn tail.
func (j *Journal) replay() ([]Certificate, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r := bufio.NewReader(j.f)
	header, err := r.ReadString('\n')
	if err != nil || header != journalMagic+"\n" {
		return nil, fmt.Errorf("ingest: %s: bad journal header %q (want %q)",
			j.path, strings.TrimSuffix(header, "\n"), journalMagic)
	}
	var out []Certificate
	good := int64(len(header)) // offset past the last intact line
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF && len(line) == 0 {
			break
		}
		torn := err == io.EOF // no trailing newline: interrupted append
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("ingest: %s: reading journal: %w", j.path, err)
		}
		var c Certificate
		if decErr := json.Unmarshal(bytes.TrimSuffix(line, []byte("\n")), &c); decErr != nil || c.Validate() != nil {
			if torn {
				break // drop the torn tail below
			}
			return nil, fmt.Errorf("ingest: %s: corrupt journal entry %d", j.path, len(out)+1)
		}
		if torn {
			// A decodable line without newline still counts as torn: the
			// append was not completed, so it was never acknowledged.
			break
		}
		out = append(out, c)
		good += int64(len(line))
	}
	if err := j.f.Truncate(good); err != nil {
		return nil, err
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return nil, err
	}
	j.entries = len(out)
	j.size = good
	mJournalReplayed.Add(int64(len(out)))
	j.publishGauges()
	return out, nil
}

// publishGauges mirrors the journal's durable size into the obs gauges, so
// admission thresholds, /metrics alerts, and the status JSON all read one
// source of truth. Caller holds mu (or is the only reference).
func (j *Journal) publishGauges() {
	mJournalBytes.Set(j.size)
	mJournalEntries.Set(int64(j.entries))
}

// Append journals one certificate durably: the entry is written and synced
// before Append returns.
func (j *Journal) Append(c *Certificate) error {
	buf, err := json.Marshal(c)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.entries++
	j.size += int64(len(buf))
	mJournalAppends.Inc()
	j.publishGauges()
	return nil
}

// Len returns the number of journalled certificates.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entries
}

// Size returns the journal's durable size in bytes (magic header plus
// every acknowledged entry), without touching the filesystem.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
