package ingest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzCertLine returns one valid journal entry line (without newline).
func fuzzCertLine(t testing.TB) []byte {
	t.Helper()
	buf, err := json.Marshal(torquilDeath())
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// FuzzJournalReplay throws arbitrary bytes at the SNAPSWALv01 reader:
// truncated tails, garbage, interleaved corruption, oversized lines.
// Replay must never panic, and on success it must uphold the recovery
// contract — a torn (newline-less) tail is truncated away so a reopen
// replays exactly the same entries, while corruption before the tail is a
// hard error rather than silent data loss.
func FuzzJournalReplay(f *testing.F) {
	cert := fuzzCertLine(f)
	header := []byte(journalMagic + "\n")

	f.Add([]byte{})
	f.Add(header)
	f.Add([]byte("WRONGMAGIC\n"))
	f.Add(append(append([]byte{}, header...), append(cert, '\n')...))
	// Torn tail: a complete entry, then a partial append.
	f.Add(append(append(append([]byte{}, header...), append(cert, '\n')...), cert[:len(cert)/2]...))
	// Decodable line without newline still counts as torn.
	f.Add(append(append([]byte{}, header...), cert...))
	// Mid-log corruption followed by a valid entry: must hard-error.
	f.Add(append(append(append([]byte{}, header...), []byte("{not a cert}\n")...), append(cert, '\n')...))
	// Interleaved garbage and valid JSON of the wrong shape.
	f.Add(append(append([]byte{}, header...), []byte("[]\n\x00\xff\n")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		j, replayed, err := OpenJournal(path)
		if err != nil {
			// A failed open must not have consumed the file handle twice or
			// left a half-open journal: opening an empty fresh path in the
			// same directory must still work.
			return
		}
		defer j.Close()

		if j.Len() != len(replayed) {
			t.Fatalf("Len()=%d but %d entries replayed", j.Len(), len(replayed))
		}
		for i := range replayed {
			if verr := replayed[i].Validate(); verr != nil {
				t.Fatalf("replayed entry %d does not validate: %v", i, verr)
			}
		}

		// The open truncated any torn tail, so the file now ends at the last
		// intact line: a reopen must succeed and replay identical entries.
		if err := j.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
		j2, replayed2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after successful open: %v", err)
		}
		defer j2.Close()
		if !reflect.DeepEqual(replayed, replayed2) {
			t.Fatalf("reopen replayed %d entries, first open %d: torn-tail truncation not idempotent",
				len(replayed2), len(replayed))
		}

		// Appending to the recovered journal keeps it replayable, with the
		// new entry following the recovered ones.
		c := torquilDeath()
		if err := j2.Append(c); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		j3, replayed3, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer j3.Close()
		if len(replayed3) != len(replayed)+1 {
			t.Fatalf("after append: %d entries, want %d", len(replayed3), len(replayed)+1)
		}
		got, _ := json.Marshal(replayed3[len(replayed3)-1])
		want, _ := json.Marshal(c)
		if !bytes.Equal(got, want) {
			t.Fatalf("appended entry corrupted on replay: %s != %s", got, want)
		}
	})
}

// TestJournalReplayContract pins the torn-tail-truncate versus
// hard-error-on-mid-log-corruption distinction with deterministic cases,
// independent of the fuzzer's corpus.
func TestJournalReplayContract(t *testing.T) {
	cert := fuzzCertLine(t)
	header := journalMagic + "\n"

	write := func(t *testing.T, content []byte) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "wal.jsonl")
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("torn tail truncated", func(t *testing.T) {
		content := append([]byte(header), append(cert, '\n')...)
		content = append(content, cert[:10]...)
		path := write(t, content)
		j, replayed, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("torn tail must recover, got %v", err)
		}
		defer j.Close()
		if len(replayed) != 1 {
			t.Fatalf("replayed %d entries, want 1", len(replayed))
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(len(header) + len(cert) + 1); info.Size() != want {
			t.Fatalf("file size %d after recovery, want %d (tail truncated)", info.Size(), want)
		}
	})

	t.Run("mid-log corruption is a hard error", func(t *testing.T) {
		content := append([]byte(header), []byte("{corrupt}\n")...)
		content = append(content, append(cert, '\n')...)
		if _, _, err := OpenJournal(write(t, content)); err == nil {
			t.Fatal("corruption before an intact entry must not be silently dropped")
		}
	})

	t.Run("bad header rejected", func(t *testing.T) {
		if _, _, err := OpenJournal(write(t, []byte("SNAPSWALv99\n"))); err == nil {
			t.Fatal("unknown journal version must be rejected")
		}
	})
}
