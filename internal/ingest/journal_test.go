package ingest

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(replayed))
	}
	if err := j.Append(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	second := torquilDeath()
	second.Roles["Dd"] = Person{FirstName: "Una", Surname: "MacSween", Gender: "f"}
	if err := j.Append(second); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("Len = %d, want 2", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 2 || j2.Len() != 2 {
		t.Fatalf("replayed %d entries (Len %d), want 2", len(replayed), j2.Len())
	}
	if replayed[0].Roles["Dd"].FirstName != "Torquil" || replayed[1].Roles["Dd"].FirstName != "Una" {
		t.Errorf("entries out of order or corrupted: %+v", replayed)
	}
	// Appending after a replay keeps the journal consistent.
	if err := j2.Append(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 3 {
		t.Fatalf("Len after append = %d, want 3", j2.Len())
	}
}

func TestJournalRejectsBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	if err := os.WriteFile(path, []byte("NOTAWAL\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("bad magic header accepted")
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial entry without newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"death","year":18`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be recovered, got %v", err)
	}
	if len(replayed) != 1 {
		t.Fatalf("replayed %d entries, want 1 (torn tail dropped)", len(replayed))
	}
	// The journal is usable again after recovery.
	if err := j2.Append(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, replayed, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d entries after recovery+append, want 2", len(replayed))
	}
}

func TestJournalRejectsCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(torquilDeath())
	j.Close()
	// Corrupt a complete (newline-terminated) entry in the middle.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("garbage line\n")
	f.Close()
	f, _ = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("{\"type\":\"death\"")
	f.Close()
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt non-final entry accepted")
	}
}
