package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/shard"
	"github.com/snaps/snaps/internal/store"
)

// Pipeline metrics in the default registry, exposed at GET /metrics.
var (
	mAccepted = obs.Default.Counter("snaps_ingest_accepted_total",
		"Certificates accepted (validated and journalled) by the ingest pipeline.")
	mApplied = obs.Default.Counter("snaps_ingest_applied_total",
		"Certificates folded into a published serving generation.")
	mFlushes = obs.Default.Counter("snaps_ingest_flushes_total",
		"Completed batch flushes (incremental re-resolution + index rebuild).")
	mSwaps = obs.Default.Counter("snaps_ingest_snapshot_swaps_total",
		"Serving-bundle pointer swaps publishing a new generation.")
	mQueueDepth = obs.Default.Gauge("snaps_ingest_queue_depth",
		"Accepted certificates waiting for the next batch flush.")
	mBacklogBytes = obs.Default.Gauge("snaps_ingest_backlog_bytes",
		"Encoded bytes of accepted certificates waiting for the next batch flush. Admission backpressure bounds this.")
	mFlushSeconds = obs.Default.Histogram("snaps_ingest_flush_seconds",
		"Wall-clock duration of one batch flush.", obs.DefBuckets)
	mFlushStageSeconds = obs.Default.HistogramVec("snaps_ingest_flush_stage_seconds",
		"Duration of one flush pipeline stage (apply_batch, restore_clusters, er_extend, rebuild_indexes, snapshot_swap).",
		obs.LatencyBuckets, "stage")
	mResolvedRecords = obs.Default.Counter("snaps_ingest_resolved_records_total",
		"Records re-resolved incrementally by er.Extend during flushes.")
	mCandidatePairs = obs.Default.Counter("snaps_ingest_candidate_pairs_total",
		"Candidate record pairs re-examined by er.Extend during flushes.")
)

// Serving bundles everything the online component answers queries from:
// the data set, its resolved entity store, the pedigree graph, and the
// query engine with its indexes. A bundle is immutable once published —
// rebuilds produce a fresh bundle over a cloned data set and publish it
// with an atomic pointer swap, so concurrent readers always see a
// consistent generation.
type Serving struct {
	Dataset *model.Dataset
	Store   *er.EntityStore
	Graph   *pedigree.Graph
	Engine  *query.Engine
	// Keyword and Similar are the engine's indexes, kept on the bundle so
	// the next flush can patch them incrementally (index.Update) instead
	// of rebuilding from scratch.
	Keyword *index.Keyword
	Similar *index.Similarity
	// Shards, when non-nil, replaces the single Engine/Keyword/Similar
	// serving path with a sharded one: the coordinator owns N per-shard
	// index/engine/cache bundles over the (still global) graph and answers
	// searches by scatter-gather. Engine, Keyword, and Similar are nil in
	// sharded bundles; flushes advance the coordinator per-partition
	// instead of patching one global index.
	Shards *shard.Coordinator
	// Generation counts published snapshots, starting at 0 for the
	// initial bundle and incrementing on every flush. The query result
	// cache keys on it, so rankings computed against a superseded
	// snapshot are never served after a swap.
	Generation uint64
}

// NewServing builds the initial serving bundle from a resolved data set.
func NewServing(d *model.Dataset, st *er.EntityStore, simThreshold float64) *Serving {
	g := pedigree.Build(d, st)
	k, sim := index.Build(g, simThreshold)
	return &Serving{Dataset: d, Store: st, Graph: g,
		Keyword: k, Similar: sim, Engine: query.NewEngine(g, k, sim)}
}

// NewShardedServing builds the initial serving bundle partitioned into
// opts.Shards serving shards. The graph and entity resolution stay global;
// only the serving-tier indexes, engines, and caches are per-shard. The
// per-shard result caches are created here from opts (Config.QueryCache
// and Config.StaleServe are ignored by the pipeline for sharded bundles).
func NewShardedServing(d *model.Dataset, st *er.EntityStore, opts shard.Options) *Serving {
	g := pedigree.Build(d, st)
	return &Serving{Dataset: d, Store: st, Graph: g,
		Shards: shard.Partition(g, opts)}
}

// Config tunes the ingestion pipeline.
type Config struct {
	// BatchSize flushes the pending batch when it reaches this many
	// certificates (default 16).
	BatchSize int
	// MaxAge flushes a non-empty batch once its oldest certificate has
	// waited this long (default 2s).
	MaxAge time.Duration
	// SimThreshold is the similarity-index threshold s_t used when the
	// indexes are rebuilt (default 0.5).
	SimThreshold float64
	// QueryCache bounds the generation-keyed LRU of ranked search
	// results shared across serving generations; 0 disables caching.
	QueryCache int
	// StaleServe enables stale-while-revalidate on the result cache:
	// after a snapshot swap, entries of the immediately superseded
	// generation keep answering (at most one flush old) while background
	// singleflight refreshes recompute them under the new generation —
	// instead of every hot query stampeding into a synchronous recompute
	// the moment the generation bumps. No effect when QueryCache is 0.
	StaleServe bool
	// Graph and Resolver configure the incremental er.Extend pass.
	Graph    depgraph.Config
	Resolver er.Config
	// Tracer, when set, records one trace per batch flush (journal apply,
	// cluster restore, er.Extend, index rebuild, snapshot swap as child
	// spans) and parents journal-append spans under request traces passed
	// to SubmitContext. Nil disables tracing.
	Tracer *obs.Tracer
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		BatchSize:    16,
		MaxAge:       2 * time.Second,
		SimThreshold: 0.5,
		StaleServe:   true,
		Graph:        depgraph.DefaultConfig(),
		Resolver:     er.DefaultConfig(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.MaxAge <= 0 {
		c.MaxAge = d.MaxAge
	}
	if c.SimThreshold <= 0 {
		c.SimThreshold = d.SimThreshold
	}
	return c
}

// Status is the snapshot returned by GET /api/ingest/status.
type Status struct {
	// Pending is the number of accepted certificates not yet resolved;
	// PendingBytes is their encoded size — the unflushed backlog that
	// admission backpressure bounds.
	Pending      int   `json:"pending"`
	PendingBytes int64 `json:"pending_bytes"`
	// Accepted and Applied count certificates over the pipeline's lifetime.
	Accepted int `json:"accepted"`
	Applied  int `json:"applied"`
	// Flushes counts completed batch rebuilds; LastFlushMillis is the wall
	// time of the most recent one (journal replay included), and
	// LastFlushAt the wall-clock instant it completed (zero before the
	// first flush).
	Flushes         int       `json:"flushes"`
	LastFlushMillis int64     `json:"last_flush_millis"`
	LastFlushAt     time.Time `json:"last_flush_at"`
	// Records and Entities describe the currently served generation;
	// Generation is its snapshot counter (0 = the initial bundle).
	Records    int    `json:"records"`
	Entities   int    `json:"entities"`
	Generation uint64 `json:"generation"`
	// JournalPath, JournalEntries, and JournalBytes describe the WAL
	// ("" / 0 when disabled).
	JournalPath    string `json:"journal_path,omitempty"`
	JournalEntries int    `json:"journal_entries,omitempty"`
	JournalBytes   int64  `json:"journal_bytes,omitempty"`
	// Shards and ShardBacklog describe the sharded serving tier: the
	// partition count and the per-shard unflushed backlog (absent for
	// single-shard pipelines). The per-shard breakdown is what keeps one
	// hot shard from hiding behind the global average.
	Shards       int            `json:"shards,omitempty"`
	ShardBacklog []ShardBacklog `json:"shard_backlog,omitempty"`
	// LastError reports the most recent rebuild failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// ShardBacklog is one shard's share of the unflushed ingest backlog.
type ShardBacklog struct {
	Shard        int    `json:"shard"`
	Pending      int    `json:"pending"`
	PendingBytes int64  `json:"pending_bytes"`
	Generation   uint64 `json:"generation"`
}

// Pipeline accepts certificates, journals them, and folds them into the
// serving bundle in batches on a background worker. The serving side is
// wait-free: Serving() is a single atomic load.
type Pipeline struct {
	cfg     Config
	journal *Journal // nil when journalling is disabled

	serving atomic.Pointer[Serving]

	mu           sync.Mutex
	pending      []Certificate
	pendingBytes int64 // encoded size of pending, the backpressure signal
	// shardPending splits the backlog by destination shard (len = shard
	// count; nil for single-shard pipelines). Routed at Submit via
	// RouteCert, zeroed when a flush drains the batch.
	shardPending []shardPending
	oldestAt     time.Time
	accepted     int
	applied      int
	flushes      int
	lastDur      time.Duration
	lastAt       time.Time
	lastErr      string
	swapFns      []func(*Serving)

	// build state, owned by the worker goroutine (and by flushLocked
	// callers holding buildMu): the data set and store the next generation
	// grows from, plus the generation counter of the last published
	// bundle and the result cache shared across generations (nil when
	// disabled).
	buildMu    sync.Mutex
	buildD     *model.Dataset
	buildStore *er.EntityStore
	generation uint64
	cache      *query.ResultCache

	// nshards is the serving partition count (1 for single-shard
	// bundles); shardGauges are the pre-created per-shard backlog series.
	nshards     int
	shardGauges []shardBacklogGauges

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// shardPending is one shard's unflushed backlog share, guarded by p.mu.
type shardPending struct {
	records int
	bytes   int64
}

// shardBacklogGauges are one shard's backlog metric series.
type shardBacklogGauges struct {
	records *obs.Gauge
	bytes   *obs.Gauge
}

func backlogGaugesFor(s int) shardBacklogGauges {
	l := obs.Label("shard", fmt.Sprintf("%d", s))
	return shardBacklogGauges{
		records: obs.Default.Gauge("snaps_shard_backlog_records{"+l+"}",
			"Accepted certificates routed to the shard, waiting for the next flush."),
		bytes: obs.Default.Gauge("snaps_shard_backlog_bytes{"+l+"}",
			"Encoded bytes of the shard's unflushed backlog."),
	}
}

// RouteCert returns the shard an accepted certificate's backlog is
// accounted to: the route of its principal person's normalised name key
// (the baby, the deceased, the groom — the first principal role present in
// model.Role order). The normalisation matches Apply, so the certificate's
// principal record lands on a node this key routes to unless resolution
// merges it into an entity anchored elsewhere — good enough for backlog
// accounting, which only needs a stable, deterministic assignment.
func RouteCert(c *Certificate, shards int) int {
	if shards <= 1 {
		return 0
	}
	if t, err := c.certType(); err == nil {
		principals, _ := principalsFor(t)
		for _, r := range principals {
			if p, ok := rolePerson(c.Roles, r); ok {
				return shard.Route(norm(p.FirstName), norm(p.Surname), shards)
			}
		}
	}
	// Unvalidated or principal-less certificate: fall back to the first
	// role present in the fixed model.Role order.
	for role := model.Role(0); role < model.NumRoles; role++ {
		if p, ok := rolePerson(c.Roles, role); ok {
			return shard.Route(norm(p.FirstName), norm(p.Surname), shards)
		}
	}
	return 0
}

// NewPipeline starts a pipeline over an initial serving bundle. The
// pipeline takes ownership of the bundle's data set and entity store: the
// caller must not mutate them afterwards. backlog holds journal entries
// replayed by OpenJournal; they are applied synchronously (as one batch)
// before NewPipeline returns, so the served generation reflects every
// certificate accepted before the last shutdown.
func NewPipeline(sv *Serving, jr *Journal, backlog []Certificate, cfg Config) (*Pipeline, error) {
	p := &Pipeline{
		cfg:        cfg.withDefaults(),
		journal:    jr,
		buildD:     sv.Dataset,
		buildStore: sv.Store,
		nshards:    1,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	// The pipeline owns the bundle: stamp it as generation 0 and attach
	// the result caches so the initial engines cache too.
	sv.Generation = 0
	if sv.Shards != nil {
		// Sharded bundle: the coordinator already wired per-shard caches
		// and generations (shard.Partition); the pipeline only tracks the
		// per-shard backlog split. Config.QueryCache/StaleServe are the
		// coordinator's concern (shard.Options), not ours.
		p.nshards = sv.Shards.NumShards()
		p.shardPending = make([]shardPending, p.nshards)
		p.shardGauges = make([]shardBacklogGauges, p.nshards)
		for s := 0; s < p.nshards; s++ {
			p.shardGauges[s] = backlogGaugesFor(s)
		}
	} else {
		p.cache = query.NewResultCache(cfg.QueryCache)
		sv.Engine.Generation = 0
		sv.Engine.Cache = p.cache
		if p.cfg.StaleServe {
			p.cache.EnableStaleServe()
			sv.Engine.StaleServe = p.cache != nil
		}
	}
	p.serving.Store(sv)
	if len(backlog) > 0 {
		p.mu.Lock()
		p.pending = append(p.pending, backlog...)
		p.accepted += len(backlog)
		for i := range backlog {
			p.accountShardLocked(&backlog[i], 0)
		}
		p.mu.Unlock()
		if err := p.Flush(); err != nil {
			return nil, fmt.Errorf("ingest: replaying journal: %w", err)
		}
	}
	go p.run()
	return p, nil
}

// accountShardLocked adds one accepted certificate to its shard's backlog
// share. Caller holds p.mu. No-op for single-shard pipelines.
func (p *Pipeline) accountShardLocked(c *Certificate, bytes int64) {
	if p.nshards <= 1 {
		return
	}
	s := RouteCert(c, p.nshards)
	p.shardPending[s].records++
	p.shardPending[s].bytes += bytes
	p.shardGauges[s].records.Set(int64(p.shardPending[s].records))
	p.shardGauges[s].bytes.Set(p.shardPending[s].bytes)
}

// clearShardPendingLocked zeroes the per-shard backlog split after a flush
// drains the batch. Caller holds p.mu.
func (p *Pipeline) clearShardPendingLocked() {
	for s := range p.shardPending {
		p.shardPending[s] = shardPending{}
		p.shardGauges[s].records.Set(0)
		p.shardGauges[s].bytes.Set(0)
	}
}

// Serving returns the current immutable serving bundle.
func (p *Pipeline) Serving() *Serving { return p.serving.Load() }

// OnSwap registers a callback invoked (from the worker goroutine) after
// each new generation is published. Used by the HTTP server to retarget
// its engine pointer.
func (p *Pipeline) OnSwap(fn func(*Serving)) {
	p.mu.Lock()
	p.swapFns = append(p.swapFns, fn)
	p.mu.Unlock()
}

// Submit validates, journals, and enqueues one certificate. It returns
// once the certificate is durable (journalled) and scheduled; resolution
// happens asynchronously within one batch flush.
func (p *Pipeline) Submit(c *Certificate) error {
	return p.SubmitContext(context.Background(), c)
}

// SubmitContext is Submit under the caller's trace: the durable journal
// append — the only blocking I/O on the submission path — records a child
// span when the context carries one, so slow fsyncs show up attributed in
// request traces.
func (p *Pipeline) SubmitContext(ctx context.Context, c *Certificate) error {
	if err := c.Validate(); err != nil {
		return err
	}
	// Size the certificate once for the backlog-bytes signal admission
	// backpressure watches; the journal encodes identically.
	enc, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("ingest: encoding certificate: %w", err)
	}
	if p.journal != nil {
		_, jsp := obs.StartSpan(ctx, "journal.append")
		err := p.journal.Append(c)
		jsp.End()
		if err != nil {
			return fmt.Errorf("ingest: journalling certificate: %w", err)
		}
	}
	p.mu.Lock()
	if len(p.pending) == 0 {
		p.oldestAt = time.Now()
	}
	p.pending = append(p.pending, *c)
	p.pendingBytes += int64(len(enc)) + 1 // +1 for the journal's newline
	p.accountShardLocked(c, int64(len(enc))+1)
	p.accepted++
	full := len(p.pending) >= p.cfg.BatchSize
	mAccepted.Inc()
	mQueueDepth.Set(int64(len(p.pending)))
	mBacklogBytes.Set(p.pendingBytes)
	p.mu.Unlock()
	if full {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Flush synchronously applies every pending certificate and publishes the
// resulting generation. It is safe to call concurrently with Submit and
// with the background worker.
func (p *Pipeline) Flush() error {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	return p.flushLocked()
}

// Pending reports the number of accepted, not yet applied certificates.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Backlog reports the unflushed backlog: accepted certificates (and their
// encoded bytes) waiting for the next batch flush. This is the one source
// of truth admission backpressure, the obs gauges, and /healthz all read —
// once it passes the configured bounds, new submissions are shed with 429
// instead of growing the queue without limit.
func (p *Pipeline) Backlog() (records int, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending), p.pendingBytes
}

// ShardBacklog reports the unflushed backlog split by destination shard
// (nil for single-shard pipelines). Shard generations are stamped from the
// currently served coordinator.
func (p *Pipeline) ShardBacklog() []ShardBacklog {
	if p.nshards <= 1 {
		return nil
	}
	sv := p.Serving()
	p.mu.Lock()
	out := make([]ShardBacklog, p.nshards)
	for s := range out {
		out[s] = ShardBacklog{Shard: s,
			Pending: p.shardPending[s].records, PendingBytes: p.shardPending[s].bytes}
	}
	p.mu.Unlock()
	if sv.Shards != nil {
		for _, sh := range sv.Shards.Shards() {
			out[sh.ID].Generation = sh.Generation
		}
	}
	return out
}

// HottestShardBacklog reports the shard with the largest unflushed record
// backlog (ties to the lowest shard id) — the signal per-shard admission
// backpressure watches, so one hot shard cannot hide behind the global
// average. Single-shard pipelines report shard 0 with the global backlog.
func (p *Pipeline) HottestShardBacklog() (shardID, records int, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nshards <= 1 {
		return 0, len(p.pending), p.pendingBytes
	}
	records, bytes = p.shardPending[0].records, p.shardPending[0].bytes
	for s := 1; s < p.nshards; s++ {
		if p.shardPending[s].records > records ||
			(p.shardPending[s].records == records && p.shardPending[s].bytes > bytes) {
			shardID, records, bytes = s, p.shardPending[s].records, p.shardPending[s].bytes
		}
	}
	return shardID, records, bytes
}

// Status returns a snapshot of the pipeline's counters and the served
// generation's size.
func (p *Pipeline) Status() Status {
	sv := p.Serving()
	p.mu.Lock()
	st := Status{
		Pending:         len(p.pending),
		PendingBytes:    p.pendingBytes,
		Accepted:        p.accepted,
		Applied:         p.applied,
		Flushes:         p.flushes,
		LastFlushMillis: p.lastDur.Milliseconds(),
		LastFlushAt:     p.lastAt,
		LastError:       p.lastErr,
	}
	p.mu.Unlock()
	st.Records = len(sv.Dataset.Records)
	st.Entities = len(sv.Graph.Nodes)
	st.Generation = sv.Generation
	if p.nshards > 1 {
		st.Shards = p.nshards
		st.ShardBacklog = p.ShardBacklog()
	}
	if p.journal != nil {
		st.JournalPath = p.journal.Path()
		st.JournalEntries = p.journal.Len()
		st.JournalBytes = p.journal.Size()
	}
	return st
}

// Close stops the worker, applies any remaining batch, and closes the
// journal.
func (p *Pipeline) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	err := p.Flush()
	if p.journal != nil {
		if cerr := p.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// run is the background worker: it flushes when a batch fills (kick) or
// when the oldest pending certificate exceeds MaxAge.
func (p *Pipeline) run() {
	defer close(p.done)
	tick := time.NewTicker(p.tickInterval())
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			p.Flush()
		case <-tick.C:
			p.mu.Lock()
			due := len(p.pending) > 0 && time.Since(p.oldestAt) >= p.cfg.MaxAge
			p.mu.Unlock()
			if due {
				p.Flush()
			}
		}
	}
}

// tickInterval samples the age check a few times per MaxAge window.
func (p *Pipeline) tickInterval() time.Duration {
	iv := p.cfg.MaxAge / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// flushLocked rebuilds the serving bundle from the pending batch. Caller
// holds buildMu. The rebuild never touches the published generation: it
// clones the data set, restores the clustering over the clone, extends it
// with the new records, and rebuilds graph and indexes before the single
// atomic swap.
func (p *Pipeline) flushLocked() error {
	p.mu.Lock()
	batch := p.pending
	p.pending = nil
	p.pendingBytes = 0
	p.clearShardPendingLocked()
	mQueueDepth.Set(0)
	mBacklogBytes.Set(0)
	p.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	start := time.Now()
	ctx, root := p.cfg.Tracer.StartRoot(context.Background(), "ingest.flush", "")
	root.SetAttr("batch", int64(len(batch)))

	stageT := time.Now()
	stageDone := func(stage string) {
		now := time.Now()
		mFlushStageSeconds.With(stage).ObserveDuration(now.Sub(stageT))
		stageT = now
	}

	_, asp := obs.StartSpan(ctx, "apply_batch")
	newD := p.buildD.Clone()
	firstNew := model.RecordID(len(newD.Records))
	for i := range batch {
		if _, err := Apply(newD, &batch[i]); err != nil {
			// Validate ran at Submit (and during journal replay), so this
			// is unreachable short of a bug; surface it rather than panic.
			p.mu.Lock()
			p.lastErr = err.Error()
			p.mu.Unlock()
			asp.End()
			root.End()
			return err
		}
	}
	asp.End()
	stageDone("apply_batch")

	// Restore the previous clustering over the cloned data set as cliques
	// (the persistence semantics of internal/store), then fold the new
	// records in incrementally.
	_, csp := obs.StartSpan(ctx, "restore_clusters")
	snap := store.Snapshot{Dataset: newD, Clusters: p.buildStore.Clusters()}
	newStore := snap.Restore()
	csp.End()
	stageDone("restore_clusters")

	ectx, esp := obs.StartSpan(ctx, "er.extend")
	epr := er.ExtendContext(ectx, newD, newStore, firstNew, p.cfg.Graph, p.cfg.Resolver)
	esp.SetAttr("candidate_pairs", int64(epr.Candidates))
	esp.End()
	stageDone("er_extend")

	// Rebuild the pedigree graph, then maintain the indexes incrementally
	// against the still-serving generation. Single-shard bundles patch the
	// one global index pair (index.Update); sharded bundles advance the
	// coordinator, which classifies the new graph once, rebuilds only the
	// partitions the batch touched (index.UpdateSubset per shard), and
	// reuses every untouched shard — indexes, engine, cache, and
	// shard-local generation — by reference.
	_, isp := obs.StartSpan(ctx, "rebuild_indexes")
	prev := p.serving.Load()
	newG := pedigree.Build(newD, newStore)
	gen := p.generation + 1
	var sv *Serving
	incremental := false
	dirty := 0
	if prev.Shards != nil {
		coord, ast := prev.Shards.Advance(newG, gen)
		sv = &Serving{Dataset: newD, Store: newStore, Graph: newG, Shards: coord}
		incremental = ast.Reused > 0
		dirty = ast.DirtyNodes
		isp.SetAttr("dirty_entities", int64(ast.DirtyNodes))
		isp.SetAttr("shards_touched", int64(ast.Touched))
		isp.SetAttr("shards_reused", int64(ast.Reused))
	} else {
		k, sim, ist := index.Update(newG, prev.Graph, prev.Keyword, prev.Similar, p.cfg.SimThreshold)
		sv = &Serving{Dataset: newD, Store: newStore, Graph: newG,
			Keyword: k, Similar: sim, Engine: query.NewEngine(newG, k, sim)}
		incremental = ist.Incremental
		dirty = ist.DirtyNodes
		isp.SetAttr("dirty_entities", int64(ist.DirtyNodes))
		if ist.Incremental {
			isp.SetAttr("incremental", 1)
		} else {
			isp.SetAttr("incremental", 0)
		}
	}
	isp.End()
	stageDone("rebuild_indexes")

	_, wsp := obs.StartSpan(ctx, "snapshot_swap")
	sv.Generation = gen
	if sv.Engine != nil {
		sv.Engine.Generation = gen
		sv.Engine.Cache = p.cache
		sv.Engine.StaleServe = p.cfg.StaleServe && p.cache != nil
	}
	p.buildD, p.buildStore = newD, newStore
	p.generation = gen
	p.serving.Store(sv)
	// Rankings cached against older generations can no longer be served
	// (the cache keys on the generation); free them eagerly. Sharded
	// bundles invalidate per shard inside Advance, keyed by shard-local
	// generations, so untouched shards keep their warm caches.
	if p.cache != nil {
		p.cache.Invalidate(gen)
	}

	mApplied.Add(int64(len(batch)))
	mFlushes.Inc()
	mSwaps.Inc()
	mFlushSeconds.ObserveDuration(time.Since(start))
	mResolvedRecords.Add(int64(len(newD.Records)) - int64(firstNew))
	mCandidatePairs.Add(int64(epr.Candidates))

	p.mu.Lock()
	p.applied += len(batch)
	p.flushes++
	p.lastDur = time.Since(start)
	p.lastAt = time.Now()
	p.lastErr = ""
	fns := append([]func(*Serving){}, p.swapFns...)
	p.mu.Unlock()
	for _, fn := range fns {
		fn(sv)
	}
	wsp.End()
	stageDone("snapshot_swap")
	root.End()

	slog.LogAttrs(ctx, slog.LevelDebug, "ingest flush published",
		slog.Int("batch", len(batch)),
		slog.Int("records", len(newD.Records)),
		slog.Int("entities", len(sv.Graph.Nodes)),
		slog.Int("candidate_pairs", epr.Candidates),
		slog.Bool("incremental_index", incremental),
		slog.Int("dirty_entities", dirty),
		slog.Duration("took", time.Since(start)),
	)
	return nil
}
