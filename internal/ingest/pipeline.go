package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/store"
)

// Pipeline metrics in the default registry, exposed at GET /metrics.
var (
	mAccepted = obs.Default.Counter("snaps_ingest_accepted_total",
		"Certificates accepted (validated and journalled) by the ingest pipeline.")
	mApplied = obs.Default.Counter("snaps_ingest_applied_total",
		"Certificates folded into a published serving generation.")
	mFlushes = obs.Default.Counter("snaps_ingest_flushes_total",
		"Completed batch flushes (incremental re-resolution + index rebuild).")
	mSwaps = obs.Default.Counter("snaps_ingest_snapshot_swaps_total",
		"Serving-bundle pointer swaps publishing a new generation.")
	mQueueDepth = obs.Default.Gauge("snaps_ingest_queue_depth",
		"Accepted certificates waiting for the next batch flush.")
	mBacklogBytes = obs.Default.Gauge("snaps_ingest_backlog_bytes",
		"Encoded bytes of accepted certificates waiting for the next batch flush. Admission backpressure bounds this.")
	mFlushSeconds = obs.Default.Histogram("snaps_ingest_flush_seconds",
		"Wall-clock duration of one batch flush.", obs.DefBuckets)
	mResolvedRecords = obs.Default.Counter("snaps_ingest_resolved_records_total",
		"Records re-resolved incrementally by er.Extend during flushes.")
	mCandidatePairs = obs.Default.Counter("snaps_ingest_candidate_pairs_total",
		"Candidate record pairs re-examined by er.Extend during flushes.")
)

// Serving bundles everything the online component answers queries from:
// the data set, its resolved entity store, the pedigree graph, and the
// query engine with its indexes. A bundle is immutable once published —
// rebuilds produce a fresh bundle over a cloned data set and publish it
// with an atomic pointer swap, so concurrent readers always see a
// consistent generation.
type Serving struct {
	Dataset *model.Dataset
	Store   *er.EntityStore
	Graph   *pedigree.Graph
	Engine  *query.Engine
	// Keyword and Similar are the engine's indexes, kept on the bundle so
	// the next flush can patch them incrementally (index.Update) instead
	// of rebuilding from scratch.
	Keyword *index.Keyword
	Similar *index.Similarity
	// Generation counts published snapshots, starting at 0 for the
	// initial bundle and incrementing on every flush. The query result
	// cache keys on it, so rankings computed against a superseded
	// snapshot are never served after a swap.
	Generation uint64
}

// NewServing builds the initial serving bundle from a resolved data set.
func NewServing(d *model.Dataset, st *er.EntityStore, simThreshold float64) *Serving {
	g := pedigree.Build(d, st)
	k, sim := index.Build(g, simThreshold)
	return &Serving{Dataset: d, Store: st, Graph: g,
		Keyword: k, Similar: sim, Engine: query.NewEngine(g, k, sim)}
}

// Config tunes the ingestion pipeline.
type Config struct {
	// BatchSize flushes the pending batch when it reaches this many
	// certificates (default 16).
	BatchSize int
	// MaxAge flushes a non-empty batch once its oldest certificate has
	// waited this long (default 2s).
	MaxAge time.Duration
	// SimThreshold is the similarity-index threshold s_t used when the
	// indexes are rebuilt (default 0.5).
	SimThreshold float64
	// QueryCache bounds the generation-keyed LRU of ranked search
	// results shared across serving generations; 0 disables caching.
	QueryCache int
	// StaleServe enables stale-while-revalidate on the result cache:
	// after a snapshot swap, entries of the immediately superseded
	// generation keep answering (at most one flush old) while background
	// singleflight refreshes recompute them under the new generation —
	// instead of every hot query stampeding into a synchronous recompute
	// the moment the generation bumps. No effect when QueryCache is 0.
	StaleServe bool
	// Graph and Resolver configure the incremental er.Extend pass.
	Graph    depgraph.Config
	Resolver er.Config
	// Tracer, when set, records one trace per batch flush (journal apply,
	// cluster restore, er.Extend, index rebuild, snapshot swap as child
	// spans) and parents journal-append spans under request traces passed
	// to SubmitContext. Nil disables tracing.
	Tracer *obs.Tracer
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		BatchSize:    16,
		MaxAge:       2 * time.Second,
		SimThreshold: 0.5,
		StaleServe:   true,
		Graph:        depgraph.DefaultConfig(),
		Resolver:     er.DefaultConfig(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.MaxAge <= 0 {
		c.MaxAge = d.MaxAge
	}
	if c.SimThreshold <= 0 {
		c.SimThreshold = d.SimThreshold
	}
	return c
}

// Status is the snapshot returned by GET /api/ingest/status.
type Status struct {
	// Pending is the number of accepted certificates not yet resolved;
	// PendingBytes is their encoded size — the unflushed backlog that
	// admission backpressure bounds.
	Pending      int   `json:"pending"`
	PendingBytes int64 `json:"pending_bytes"`
	// Accepted and Applied count certificates over the pipeline's lifetime.
	Accepted int `json:"accepted"`
	Applied  int `json:"applied"`
	// Flushes counts completed batch rebuilds; LastFlushMillis is the wall
	// time of the most recent one (journal replay included), and
	// LastFlushAt the wall-clock instant it completed (zero before the
	// first flush).
	Flushes         int       `json:"flushes"`
	LastFlushMillis int64     `json:"last_flush_millis"`
	LastFlushAt     time.Time `json:"last_flush_at"`
	// Records and Entities describe the currently served generation;
	// Generation is its snapshot counter (0 = the initial bundle).
	Records    int    `json:"records"`
	Entities   int    `json:"entities"`
	Generation uint64 `json:"generation"`
	// JournalPath, JournalEntries, and JournalBytes describe the WAL
	// ("" / 0 when disabled).
	JournalPath    string `json:"journal_path,omitempty"`
	JournalEntries int    `json:"journal_entries,omitempty"`
	JournalBytes   int64  `json:"journal_bytes,omitempty"`
	// LastError reports the most recent rebuild failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// Pipeline accepts certificates, journals them, and folds them into the
// serving bundle in batches on a background worker. The serving side is
// wait-free: Serving() is a single atomic load.
type Pipeline struct {
	cfg     Config
	journal *Journal // nil when journalling is disabled

	serving atomic.Pointer[Serving]

	mu           sync.Mutex
	pending      []Certificate
	pendingBytes int64 // encoded size of pending, the backpressure signal
	oldestAt     time.Time
	accepted     int
	applied  int
	flushes  int
	lastDur  time.Duration
	lastAt   time.Time
	lastErr  string
	swapFns  []func(*Serving)

	// build state, owned by the worker goroutine (and by flushLocked
	// callers holding buildMu): the data set and store the next generation
	// grows from, plus the generation counter of the last published
	// bundle and the result cache shared across generations (nil when
	// disabled).
	buildMu    sync.Mutex
	buildD     *model.Dataset
	buildStore *er.EntityStore
	generation uint64
	cache      *query.ResultCache

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewPipeline starts a pipeline over an initial serving bundle. The
// pipeline takes ownership of the bundle's data set and entity store: the
// caller must not mutate them afterwards. backlog holds journal entries
// replayed by OpenJournal; they are applied synchronously (as one batch)
// before NewPipeline returns, so the served generation reflects every
// certificate accepted before the last shutdown.
func NewPipeline(sv *Serving, jr *Journal, backlog []Certificate, cfg Config) (*Pipeline, error) {
	p := &Pipeline{
		cfg:        cfg.withDefaults(),
		journal:    jr,
		buildD:     sv.Dataset,
		buildStore: sv.Store,
		cache:      query.NewResultCache(cfg.QueryCache),
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	// The pipeline owns the bundle: stamp it as generation 0 and attach
	// the shared result cache so the initial engine caches too.
	sv.Generation = 0
	sv.Engine.Generation = 0
	sv.Engine.Cache = p.cache
	if p.cfg.StaleServe {
		p.cache.EnableStaleServe()
		sv.Engine.StaleServe = p.cache != nil
	}
	p.serving.Store(sv)
	if len(backlog) > 0 {
		p.mu.Lock()
		p.pending = append(p.pending, backlog...)
		p.accepted += len(backlog)
		p.mu.Unlock()
		if err := p.Flush(); err != nil {
			return nil, fmt.Errorf("ingest: replaying journal: %w", err)
		}
	}
	go p.run()
	return p, nil
}

// Serving returns the current immutable serving bundle.
func (p *Pipeline) Serving() *Serving { return p.serving.Load() }

// OnSwap registers a callback invoked (from the worker goroutine) after
// each new generation is published. Used by the HTTP server to retarget
// its engine pointer.
func (p *Pipeline) OnSwap(fn func(*Serving)) {
	p.mu.Lock()
	p.swapFns = append(p.swapFns, fn)
	p.mu.Unlock()
}

// Submit validates, journals, and enqueues one certificate. It returns
// once the certificate is durable (journalled) and scheduled; resolution
// happens asynchronously within one batch flush.
func (p *Pipeline) Submit(c *Certificate) error {
	return p.SubmitContext(context.Background(), c)
}

// SubmitContext is Submit under the caller's trace: the durable journal
// append — the only blocking I/O on the submission path — records a child
// span when the context carries one, so slow fsyncs show up attributed in
// request traces.
func (p *Pipeline) SubmitContext(ctx context.Context, c *Certificate) error {
	if err := c.Validate(); err != nil {
		return err
	}
	// Size the certificate once for the backlog-bytes signal admission
	// backpressure watches; the journal encodes identically.
	enc, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("ingest: encoding certificate: %w", err)
	}
	if p.journal != nil {
		_, jsp := obs.StartSpan(ctx, "journal.append")
		err := p.journal.Append(c)
		jsp.End()
		if err != nil {
			return fmt.Errorf("ingest: journalling certificate: %w", err)
		}
	}
	p.mu.Lock()
	if len(p.pending) == 0 {
		p.oldestAt = time.Now()
	}
	p.pending = append(p.pending, *c)
	p.pendingBytes += int64(len(enc)) + 1 // +1 for the journal's newline
	p.accepted++
	full := len(p.pending) >= p.cfg.BatchSize
	mAccepted.Inc()
	mQueueDepth.Set(int64(len(p.pending)))
	mBacklogBytes.Set(p.pendingBytes)
	p.mu.Unlock()
	if full {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Flush synchronously applies every pending certificate and publishes the
// resulting generation. It is safe to call concurrently with Submit and
// with the background worker.
func (p *Pipeline) Flush() error {
	p.buildMu.Lock()
	defer p.buildMu.Unlock()
	return p.flushLocked()
}

// Pending reports the number of accepted, not yet applied certificates.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Backlog reports the unflushed backlog: accepted certificates (and their
// encoded bytes) waiting for the next batch flush. This is the one source
// of truth admission backpressure, the obs gauges, and /healthz all read —
// once it passes the configured bounds, new submissions are shed with 429
// instead of growing the queue without limit.
func (p *Pipeline) Backlog() (records int, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending), p.pendingBytes
}

// Status returns a snapshot of the pipeline's counters and the served
// generation's size.
func (p *Pipeline) Status() Status {
	sv := p.Serving()
	p.mu.Lock()
	st := Status{
		Pending:         len(p.pending),
		PendingBytes:    p.pendingBytes,
		Accepted:        p.accepted,
		Applied:         p.applied,
		Flushes:         p.flushes,
		LastFlushMillis: p.lastDur.Milliseconds(),
		LastFlushAt:     p.lastAt,
		LastError:       p.lastErr,
	}
	p.mu.Unlock()
	st.Records = len(sv.Dataset.Records)
	st.Entities = len(sv.Graph.Nodes)
	st.Generation = sv.Generation
	if p.journal != nil {
		st.JournalPath = p.journal.Path()
		st.JournalEntries = p.journal.Len()
		st.JournalBytes = p.journal.Size()
	}
	return st
}

// Close stops the worker, applies any remaining batch, and closes the
// journal.
func (p *Pipeline) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	err := p.Flush()
	if p.journal != nil {
		if cerr := p.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// run is the background worker: it flushes when a batch fills (kick) or
// when the oldest pending certificate exceeds MaxAge.
func (p *Pipeline) run() {
	defer close(p.done)
	tick := time.NewTicker(p.tickInterval())
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			p.Flush()
		case <-tick.C:
			p.mu.Lock()
			due := len(p.pending) > 0 && time.Since(p.oldestAt) >= p.cfg.MaxAge
			p.mu.Unlock()
			if due {
				p.Flush()
			}
		}
	}
}

// tickInterval samples the age check a few times per MaxAge window.
func (p *Pipeline) tickInterval() time.Duration {
	iv := p.cfg.MaxAge / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// flushLocked rebuilds the serving bundle from the pending batch. Caller
// holds buildMu. The rebuild never touches the published generation: it
// clones the data set, restores the clustering over the clone, extends it
// with the new records, and rebuilds graph and indexes before the single
// atomic swap.
func (p *Pipeline) flushLocked() error {
	p.mu.Lock()
	batch := p.pending
	p.pending = nil
	p.pendingBytes = 0
	mQueueDepth.Set(0)
	mBacklogBytes.Set(0)
	p.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	start := time.Now()
	ctx, root := p.cfg.Tracer.StartRoot(context.Background(), "ingest.flush", "")
	root.SetAttr("batch", int64(len(batch)))

	_, asp := obs.StartSpan(ctx, "apply_batch")
	newD := p.buildD.Clone()
	firstNew := model.RecordID(len(newD.Records))
	for i := range batch {
		if _, err := Apply(newD, &batch[i]); err != nil {
			// Validate ran at Submit (and during journal replay), so this
			// is unreachable short of a bug; surface it rather than panic.
			p.mu.Lock()
			p.lastErr = err.Error()
			p.mu.Unlock()
			asp.End()
			root.End()
			return err
		}
	}
	asp.End()

	// Restore the previous clustering over the cloned data set as cliques
	// (the persistence semantics of internal/store), then fold the new
	// records in incrementally.
	_, csp := obs.StartSpan(ctx, "restore_clusters")
	snap := store.Snapshot{Dataset: newD, Clusters: p.buildStore.Clusters()}
	newStore := snap.Restore()
	csp.End()

	ectx, esp := obs.StartSpan(ctx, "er.extend")
	epr := er.ExtendContext(ectx, newD, newStore, firstNew, p.cfg.Graph, p.cfg.Resolver)
	esp.SetAttr("candidate_pairs", int64(epr.Candidates))
	esp.End()

	// Rebuild the pedigree graph, then maintain the indexes incrementally
	// against the still-serving generation: untouched postings and
	// similarity lists are shared by reference, only entities whose
	// clusters changed are reindexed. index.Update falls back to a full
	// build on structural changes (and says so in its stats).
	_, isp := obs.StartSpan(ctx, "rebuild_indexes")
	prev := p.serving.Load()
	newG := pedigree.Build(newD, newStore)
	k, sim, ist := index.Update(newG, prev.Graph, prev.Keyword, prev.Similar, p.cfg.SimThreshold)
	sv := &Serving{Dataset: newD, Store: newStore, Graph: newG,
		Keyword: k, Similar: sim, Engine: query.NewEngine(newG, k, sim)}
	isp.SetAttr("dirty_entities", int64(ist.DirtyNodes))
	if ist.Incremental {
		isp.SetAttr("incremental", 1)
	} else {
		isp.SetAttr("incremental", 0)
	}
	isp.End()

	_, wsp := obs.StartSpan(ctx, "snapshot_swap")
	gen := p.generation + 1
	sv.Generation = gen
	sv.Engine.Generation = gen
	sv.Engine.Cache = p.cache
	sv.Engine.StaleServe = p.cfg.StaleServe && p.cache != nil
	p.buildD, p.buildStore = newD, newStore
	p.generation = gen
	p.serving.Store(sv)
	// Rankings cached against older generations can no longer be served
	// (the cache keys on the generation); free them eagerly.
	if p.cache != nil {
		p.cache.Invalidate(gen)
	}

	mApplied.Add(int64(len(batch)))
	mFlushes.Inc()
	mSwaps.Inc()
	mFlushSeconds.ObserveDuration(time.Since(start))
	mResolvedRecords.Add(int64(len(newD.Records)) - int64(firstNew))
	mCandidatePairs.Add(int64(epr.Candidates))

	p.mu.Lock()
	p.applied += len(batch)
	p.flushes++
	p.lastDur = time.Since(start)
	p.lastAt = time.Now()
	p.lastErr = ""
	fns := append([]func(*Serving){}, p.swapFns...)
	p.mu.Unlock()
	for _, fn := range fns {
		fn(sv)
	}
	wsp.End()
	root.End()

	slog.LogAttrs(ctx, slog.LevelDebug, "ingest flush published",
		slog.Int("batch", len(batch)),
		slog.Int("records", len(newD.Records)),
		slog.Int("entities", len(sv.Graph.Nodes)),
		slog.Int("candidate_pairs", epr.Candidates),
		slog.Bool("incremental_index", ist.Incremental),
		slog.Int("dirty_entities", ist.DirtyNodes),
		slog.Duration("took", time.Since(start)),
	)
	return nil
}
