package ingest

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/query"
)

// manualConfig disables the automatic triggers so tests control flushes.
func manualConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchSize = 1 << 20
	cfg.MaxAge = time.Hour
	return cfg
}

func familyPipeline(t *testing.T, jr *Journal, backlog []Certificate, cfg Config) *Pipeline {
	t.Helper()
	d := familyDataset()
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	p, err := NewPipeline(NewServing(d, pr.Result.Store, 0.5), jr, backlog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// searchOne returns the top result for a first name + surname.
func searchOne(sv *Serving, first, sur string) (query.Result, bool) {
	res := sv.Engine.Search(query.Query{FirstName: first, Surname: sur})
	if len(res) == 0 {
		return query.Result{}, false
	}
	return res[0], true
}

func TestPipelineFlushMergesIntoExistingEntity(t *testing.T) {
	p := familyPipeline(t, nil, nil, manualConfig())
	defer p.Close()
	old := p.Serving()
	oldRecords := len(old.Dataset.Records)

	if err := p.Submit(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", p.Pending())
	}
	if p.Serving() != old {
		t.Fatal("serving bundle swapped before any flush")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	sv := p.Serving()
	if sv == old {
		t.Fatal("flush did not publish a new generation")
	}
	if got := len(sv.Dataset.Records); got != oldRecords+3 {
		t.Fatalf("new generation has %d records, want %d", got, oldRecords+3)
	}
	res, ok := searchOne(sv, "torquil", "macsween")
	if !ok {
		t.Fatal("torquil not found in new generation")
	}
	n := sv.Graph.Node(res.Entity)
	if n.BirthYear != 1870 || n.DeathYear != 1875 {
		t.Errorf("entity years %d-%d, want 1870-1875 (death cert not merged)",
			n.BirthYear, n.DeathYear)
	}
	if len(n.Records) < 2 {
		t.Errorf("entity has %d records, want the birth and death records merged", len(n.Records))
	}

	// RCU: the old generation is untouched and still answers queries.
	if len(old.Dataset.Records) != oldRecords {
		t.Fatalf("old generation mutated: %d records", len(old.Dataset.Records))
	}
	oldRes, ok := searchOne(old, "torquil", "macsween")
	if !ok {
		t.Fatal("old generation stopped answering")
	}
	if old.Graph.Node(oldRes.Entity).DeathYear != 0 {
		t.Error("old generation sees the new certificate")
	}

	st := p.Status()
	if st.Applied != 1 || st.Flushes != 1 || st.Pending != 0 {
		t.Errorf("status %+v", st)
	}
}

func TestPipelineBatchSizeTriggersFlush(t *testing.T) {
	cfg := manualConfig()
	cfg.BatchSize = 2
	p := familyPipeline(t, nil, nil, cfg)
	defer p.Close()
	old := p.Serving()

	p.Submit(torquilDeath())
	birth := &Certificate{
		Type: "birth", Year: 1876, Address: "5 uig",
		Roles: map[string]Person{
			"Bb": {FirstName: "norman", Surname: "macsween", Gender: "m"},
			"Bm": {FirstName: "flora", Surname: "macsween"},
			"Bf": {FirstName: "ewen", Surname: "macsween"},
		},
	}
	p.Submit(birth)

	deadline := time.Now().Add(10 * time.Second)
	for p.Serving() == old && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sv := p.Serving()
	if sv == old {
		t.Fatal("full batch did not flush within deadline")
	}
	if _, ok := searchOne(sv, "norman", "macsween"); !ok {
		t.Error("ingested-only entity not searchable")
	}
}

func TestPipelineMaxAgeTriggersFlush(t *testing.T) {
	cfg := manualConfig()
	cfg.MaxAge = 30 * time.Millisecond
	p := familyPipeline(t, nil, nil, cfg)
	defer p.Close()
	old := p.Serving()

	p.Submit(torquilDeath())
	deadline := time.Now().Add(10 * time.Second)
	for p.Serving() == old && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Serving() == old {
		t.Fatal("aged batch did not flush within deadline")
	}
}

func TestPipelineJournalReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	jr, backlog, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p := familyPipeline(t, jr, backlog, manualConfig())
	if err := p.Submit(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	// Crash before the batch is applied: the journal is the only trace.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	jr2, backlog2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog2) != 1 {
		t.Fatalf("replayed %d certificates, want 1", len(backlog2))
	}
	p2 := familyPipeline(t, jr2, backlog2, manualConfig())
	defer p2.Close()
	sv := p2.Serving()
	res, ok := searchOne(sv, "torquil", "macsween")
	if !ok {
		t.Fatal("torquil not found after replay")
	}
	if sv.Graph.Node(res.Entity).DeathYear != 1875 {
		t.Error("journalled certificate not applied on startup")
	}
}

// TestPipelineConcurrentSubmitSearchFlush hammers the swap path: searches
// race submissions and flushes under the race detector.
func TestPipelineConcurrentSubmitSearchFlush(t *testing.T) {
	cfg := manualConfig()
	cfg.BatchSize = 2
	cfg.MaxAge = 10 * time.Millisecond
	p := familyPipeline(t, nil, nil, cfg)
	defer p.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sv := p.Serving()
				sv.Engine.Search(query.Query{FirstName: "torquil", Surname: "macsween"})
				sv.Engine.Search(query.Query{FirstName: "flora", Surname: "macsween"})
			}
		}()
	}
	names := []string{"angus", "donald", "norman", "murdo", "kenneth", "roderick"}
	for _, nm := range names {
		c := &Certificate{
			Type: "birth", Year: 1880, Address: "5 uig",
			Roles: map[string]Person{
				"Bb": {FirstName: nm, Surname: "macsween", Gender: "m"},
				"Bm": {FirstName: "flora", Surname: "macsween"},
			},
		}
		if err := p.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	sv := p.Serving()
	for _, nm := range names {
		if _, ok := searchOne(sv, nm, "macsween"); !ok {
			t.Errorf("%s not searchable after flushes", nm)
		}
	}
	if st := p.Status(); st.Applied != len(names) {
		t.Errorf("applied %d, want %d", st.Applied, len(names))
	}
}
