package ingest

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/shard"
)

// generatedShardedPipeline builds a pipeline serving through an n-shard
// coordinator.
func generatedShardedPipeline(t *testing.T, scale float64, nshards int, cfg Config) *Pipeline {
	t.Helper()
	d := dataset.Generate(dataset.IOS().Scaled(scale)).Dataset
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	sv := NewShardedServing(d, pr.Result.Store,
		shard.Options{Shards: nshards, SimThreshold: 0.5, CacheEntries: 128})
	p, err := NewPipeline(sv, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRouteCertPrecedence pins the routing contract: a certificate routes
// by its principal role's name (the baby of a birth), the route is
// deterministic and in range, and one shard collapses everything to 0.
func TestRouteCertPrecedence(t *testing.T) {
	c := birthCert([2]string{"Mary ", "MacDonald"}, [2]string{"john", "smith"}, [2]string{"anne", "smith"}, 1880)
	if got := RouteCert(c, 1); got != 0 {
		t.Fatalf("RouteCert(_, 1) = %d, want 0", got)
	}
	for _, n := range []int{2, 4, 7} {
		got := RouteCert(c, n)
		// The baby is the birth certificate's principal; names are
		// normalised the same way Apply normalises them before indexing.
		want := shard.Route("mary", "macdonald", n)
		if got != want {
			t.Fatalf("n=%d: RouteCert = %d, baby routes to %d", n, got, want)
		}
		if again := RouteCert(c, n); again != got {
			t.Fatalf("n=%d: RouteCert unstable: %d then %d", n, got, again)
		}
	}
}

// TestShardedPipelineBacklogAccounting submits certificates with known
// routes and asserts the per-shard backlog split is exact — per-shard
// record counts matching RouteCert, byte totals summing to the global
// backlog, the hottest shard correctly identified — then drains it with a
// flush and checks the new generation answers through the coordinator.
func TestShardedPipelineBacklogAccounting(t *testing.T) {
	const nshards = 4
	p := generatedShardedPipeline(t, 0.03, nshards, manualConfig())
	defer p.Close()

	sv0 := p.Serving()
	if sv0.Shards == nil || sv0.Engine != nil {
		t.Fatalf("sharded bundle misconfigured: Shards=%v Engine=%v", sv0.Shards, sv0.Engine)
	}

	certs := []*Certificate{
		birthCert([2]string{"zebedee", "quixworth"}, [2]string{"barnabus", "quixworth"},
			[2]string{"philomena", "quixworth"}, 1890),
		birthCert([2]string{"tormod", "beathan"}, [2]string{"iain", "beathan"},
			[2]string{"peigi", "beathan"}, 1891),
		birthCert([2]string{"oighrig", "ruadh"}, [2]string{"calum", "ruadh"},
			[2]string{"mairead", "ruadh"}, 1892),
		birthCert([2]string{"zebedee", "quixworth"}, [2]string{"barnabus", "quixworth"},
			[2]string{"philomena", "quixworth"}, 1893),
	}
	wantRecords := make([]int, nshards)
	for _, c := range certs {
		wantRecords[RouteCert(c, nshards)]++
		if err := p.Submit(c); err != nil {
			t.Fatal(err)
		}
	}

	bl := p.ShardBacklog()
	if len(bl) != nshards {
		t.Fatalf("ShardBacklog reports %d shards, want %d", len(bl), nshards)
	}
	gotPending, gotBytes := p.Backlog()
	sumRecords, sumBytes := 0, int64(0)
	for s, b := range bl {
		if b.Shard != s {
			t.Fatalf("shard %d reported as %d", s, b.Shard)
		}
		if b.Pending != wantRecords[s] {
			t.Fatalf("shard %d backlog = %d records, want %d", s, b.Pending, wantRecords[s])
		}
		if (b.Pending == 0) != (b.PendingBytes == 0) {
			t.Fatalf("shard %d: %d records but %d bytes", s, b.Pending, b.PendingBytes)
		}
		sumRecords += b.Pending
		sumBytes += b.PendingBytes
	}
	if sumRecords != gotPending || sumBytes != gotBytes {
		t.Fatalf("per-shard split (%d records, %d bytes) does not sum to global backlog (%d, %d)",
			sumRecords, sumBytes, gotPending, gotBytes)
	}

	// The hottest shard is the arg-max of the split.
	hotShard, hotRecords, _ := p.HottestShardBacklog()
	for s, b := range bl {
		if b.Pending > hotRecords {
			t.Fatalf("shard %d backlog %d exceeds reported hottest %d (shard %d)",
				s, b.Pending, hotRecords, hotShard)
		}
	}
	if bl[hotShard].Pending != hotRecords {
		t.Fatalf("hottest shard %d reported %d records, split says %d",
			hotShard, hotRecords, bl[hotShard].Pending)
	}

	st := p.Status()
	if st.Shards != nshards || len(st.ShardBacklog) != nshards {
		t.Fatalf("Status shards = %d / %d entries, want %d", st.Shards, len(st.ShardBacklog), nshards)
	}

	// Drain: the flush zeroes the split and publishes a coordinator that
	// answers for the new names.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for s, b := range p.ShardBacklog() {
		if b.Pending != 0 || b.PendingBytes != 0 {
			t.Fatalf("shard %d backlog not drained by flush: %+v", s, b)
		}
	}
	if _, r, b := p.HottestShardBacklog(); r != 0 || b != 0 {
		t.Fatalf("hottest backlog after flush = %d records %d bytes", r, b)
	}
	sv := p.Serving()
	if sv.Generation != sv0.Generation+1 {
		t.Fatalf("generation %d -> %d, want +1", sv0.Generation, sv.Generation)
	}
	res := sv.Shards.Search(query.Query{FirstName: "zebedee", Surname: "quixworth"})
	found := false
	for _, r := range res {
		for _, fn := range sv.Graph.Node(r.Entity).FirstNames {
			if fn == "zebedee" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("flushed generation does not answer for the ingested certificate")
	}
}

// TestSingleShardPipelineHasNoShardSplit pins the legacy path: a pipeline
// over an engine bundle reports no per-shard state, and
// HottestShardBacklog degrades to the global backlog.
func TestSingleShardPipelineHasNoShardSplit(t *testing.T) {
	p := generatedPipeline(t, 0.02, manualConfig())
	defer p.Close()
	if bl := p.ShardBacklog(); bl != nil {
		t.Fatalf("single-shard pipeline reports shard backlog %+v", bl)
	}
	if st := p.Status(); st.Shards != 0 || st.ShardBacklog != nil {
		t.Fatalf("single-shard status carries shard fields: %+v", st)
	}
	if err := p.Submit(birthCert([2]string{"a", "b"}, [2]string{"c", "d"}, [2]string{"e", "f"}, 1880)); err != nil {
		t.Fatal(err)
	}
	records, bytes := p.Backlog()
	s, r, b := p.HottestShardBacklog()
	if s != 0 || r != records || b != bytes {
		t.Fatalf("single-shard hottest = (%d, %d, %d), want (0, %d, %d)", s, r, b, records, bytes)
	}
}
