package ingest

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStatusReportsJournalBytesAndFlushTime covers the status fields the
// operators dashboard on: the journal's size in bytes and the wall-clock
// time of the last completed flush.
func TestStatusReportsJournalBytesAndFlushTime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intake.wal")
	jr, backlog, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 0 {
		t.Fatalf("fresh journal replayed %d certificates", len(backlog))
	}
	p := familyPipeline(t, jr, backlog, manualConfig())
	defer p.Close()

	st := p.Status()
	if st.JournalBytes <= 0 {
		t.Fatalf("fresh journal reports %d bytes, want the header", st.JournalBytes)
	}
	headerBytes := st.JournalBytes
	if !st.LastFlushAt.IsZero() {
		t.Errorf("last flush time %v before any flush, want zero", st.LastFlushAt)
	}

	before := time.Now()
	if err := p.Submit(torquilDeath()); err != nil {
		t.Fatal(err)
	}
	st = p.Status()
	if st.JournalBytes <= headerBytes {
		t.Errorf("journal bytes %d after an append, want > header (%d)", st.JournalBytes, headerBytes)
	}
	// The reported size mirrors the durable file.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalBytes != fi.Size() {
		t.Errorf("status reports %d journal bytes, file holds %d", st.JournalBytes, fi.Size())
	}

	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	st = p.Status()
	if st.LastFlushAt.IsZero() {
		t.Fatal("last flush time still zero after a completed flush")
	}
	if st.LastFlushAt.Before(before) || st.LastFlushAt.After(time.Now()) {
		t.Errorf("last flush time %v outside the flush window", st.LastFlushAt)
	}

	// An empty flush (nothing pending) must not advance the timestamp.
	prev := st.LastFlushAt
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := p.Status().LastFlushAt; !got.Equal(prev) {
		t.Errorf("empty flush moved the timestamp: %v -> %v", prev, got)
	}
}

// TestStatusWithoutJournal: a journal-less pipeline reports zero bytes
// rather than inventing a size.
func TestStatusWithoutJournal(t *testing.T) {
	p := familyPipeline(t, nil, nil, manualConfig())
	defer p.Close()
	if st := p.Status(); st.JournalBytes != 0 {
		t.Errorf("journal-less pipeline reports %d journal bytes", st.JournalBytes)
	}
}
