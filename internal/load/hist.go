package load

import (
	"math"
	"sync/atomic"
	"time"
)

// Latency histogram with HDR-style logarithmic buckets: bucket i covers
// [histMin*growth^i, histMin*growth^(i+1)), so relative error is bounded by
// the growth factor (~5%) at every magnitude from 1µs to over a minute —
// the property that matters for tail quantiles, where linear buckets either
// blur the tail or explode in count. Recording is two atomic adds and one
// CAS loop, so concurrent request goroutines share one histogram without a
// lock on the measurement path.

const (
	histMinNs  = float64(time.Microsecond)
	histGrowth = 1.05
	// histBuckets spans 1µs..>60s: ln(6e7)/ln(1.05) ≈ 368.
	histBuckets = 370
)

var logGrowth = math.Log(histGrowth)

// Histogram records durations concurrently and answers quantile queries.
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

func bucketOf(d time.Duration) int {
	ns := float64(d)
	if ns < histMinNs {
		return 0
	}
	b := int(math.Log(ns/histMinNs) / logGrowth)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded duration exactly (not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the arithmetic mean of recorded durations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns the q-th quantile (q in [0,1]) as the geometric midpoint
// of the bucket holding the q-th observation — the estimate with bounded
// relative error under logarithmic bucketing. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			lo := histMinNs * math.Pow(histGrowth, float64(i))
			return time.Duration(lo * math.Sqrt(histGrowth))
		}
	}
	return h.Max()
}
