// Package load is the deterministic open-loop load harness for the SNAPS
// serving tier. It replays configurable traffic mixes — hot-name searches,
// long-tail searches, pedigree extractions, ingest bursts — against a live
// HTTP server or an in-process handler, at a fixed arrival rate that does
// NOT slow down when the server does. Open-loop generation is the honest
// way to measure an overloaded server: a closed loop (fire, wait, fire)
// self-throttles exactly when the interesting behaviour starts, hiding both
// the latency tail and the shedding the admission controller exists to
// perform. Latencies land in per-route log-bucketed histograms
// (internal/load.Histogram); cmd/snapsload turns the reports into the
// committed BENCH_serve.json.
package load

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Target answers one operation and reports the HTTP status code.
type Target interface {
	Do(op Op) (status int, err error)
}

// HTTPTarget replays against a live server over the network.
type HTTPTarget struct {
	Base   string // e.g. "http://localhost:8080"
	Client *http.Client
}

func (t *HTTPTarget) Do(op Op) (int, error) {
	c := t.Client
	if c == nil {
		c = http.DefaultClient
	}
	var resp *http.Response
	var err error
	switch op.Kind {
	case OpIngest:
		resp, err = c.Post(t.Base+"/api/ingest", "application/json",
			strings.NewReader(string(op.Body)))
	default:
		resp, err = c.Get(t.Base + opPath(op))
	}
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// HandlerTarget replays against an http.Handler in-process — no sockets, no
// kernel, so the measured latency is the server's own work plus admission.
// This is what scripts/bench_serve.sh uses: it removes network noise from
// the committed baseline and runs anywhere (CI included).
type HandlerTarget struct {
	Handler http.Handler
}

func (t *HandlerTarget) Do(op Op) (int, error) {
	var req *http.Request
	if op.Kind == OpIngest {
		req = httptest.NewRequest("POST", "/api/ingest", strings.NewReader(string(op.Body)))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest("GET", opPath(op), nil)
	}
	w := httptest.NewRecorder()
	t.Handler.ServeHTTP(w, req)
	return w.Code, nil
}

// opPath renders the GET path for a search or pedigree op.
func opPath(op Op) string {
	switch op.Kind {
	case OpPedigree:
		return "/api/pedigree?id=" + strconv.Itoa(op.Entity)
	default:
		return "/api/search?first_name=" + url.QueryEscape(op.First) +
			"&surname=" + url.QueryEscape(op.Surname)
	}
}

// Config tunes one Run.
type Config struct {
	// Rate is the arrival rate in requests/second.
	Rate float64
	// Duration is how long to generate arrivals for; the run then drains
	// outstanding requests before reporting.
	Duration time.Duration
	// MaxOutstanding caps concurrent in-flight requests from the
	// generator side; arrivals past the cap are counted as Dropped rather
	// than launched, bounding generator memory when the server stalls
	// entirely. 0 means 4096.
	MaxOutstanding int
	// Seed makes the op sequence reproducible.
	Seed int64
}

// RouteStats accumulates one route's outcomes during a run.
type RouteStats struct {
	Count  int64
	OK     int64 // 2xx
	Shed   int64 // 429 — admission rejections
	Errors int64 // transport errors and non-2xx/429 statuses
	Hist   Histogram
}

// record classifies one completed request into the stats. Safe for
// concurrent use (counters are atomic, the histogram is lock-free).
func (st *RouteStats) record(status int, err error, lat time.Duration) {
	st.Hist.Observe(lat)
	atomicAdd(&st.Count)
	switch {
	case err != nil:
		atomicAdd(&st.Errors)
	case status == http.StatusTooManyRequests:
		atomicAdd(&st.Shed)
	case status >= 200 && status < 300:
		atomicAdd(&st.OK)
	default:
		atomicAdd(&st.Errors)
	}
}

// report summarises the stats into the JSON-ready shape.
func (st *RouteStats) report() RouteReport {
	return RouteReport{
		Count: st.Count, OK: st.OK, Shed: st.Shed, Errors: st.Errors,
		P50Ms:  ms(st.Hist.Quantile(0.50)),
		P95Ms:  ms(st.Hist.Quantile(0.95)),
		P99Ms:  ms(st.Hist.Quantile(0.99)),
		MaxMs:  ms(st.Hist.Max()),
		MeanMs: ms(st.Hist.Mean()),
	}
}

// RouteReport is the JSON-ready summary of one route in one mix.
type RouteReport struct {
	Count  int64   `json:"count"`
	OK     int64   `json:"ok"`
	Shed   int64   `json:"shed"`
	Errors int64   `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// MixReport is the result of one Run.
type MixReport struct {
	Mix          Mix                    `json:"mix"`
	OfferedRate  float64                `json:"offered_rate_rps"`
	AchievedRate float64                `json:"achieved_rate_rps"`
	DurationSec  float64                `json:"duration_sec"`
	Requests     int64                  `json:"requests"`
	Dropped      int64                  `json:"dropped"`
	Routes       map[string]RouteReport `json:"routes"`
}

// Run replays one mix against the target. Arrivals follow the open-loop
// schedule: request i is due at start + i/rate, independent of how many
// earlier requests have completed — lateness in the server widens the
// outstanding window instead of stretching the schedule.
func Run(target Target, w *Workload, m Mix, cfg Config) (*MixReport, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: duration must be positive")
	}
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 4096
	}
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	ops := w.Ops(m, n, cfg.Seed)

	stats := map[string]*RouteStats{}
	for k := OpSearchHot; k <= OpIngest; k++ {
		stats[k.Route()] = &RouteStats{}
	}
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, maxOut)
		dropped int64 // only the arrival loop writes this
	)

	start := time.Now()
	for i, op := range ops {
		due := start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			// Outstanding window full: the server is so far behind that
			// launching more requests measures the generator, not the
			// server. Count and move on — the schedule does not stretch.
			dropped++
			continue
		}
		wg.Add(1)
		go func(op Op) {
			defer wg.Done()
			defer func() { <-sem }()
			st := stats[op.Kind.Route()]
			t0 := time.Now()
			status, err := target.Do(op)
			st.record(status, err, time.Since(t0))
		}(op)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &MixReport{
		Mix:         m,
		OfferedRate: cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Dropped:     dropped,
		Routes:      map[string]RouteReport{},
	}
	for route, st := range stats {
		if st.Count == 0 {
			continue
		}
		rep.Requests += st.Count
		rep.Routes[route] = st.report()
	}
	if elapsed > 0 {
		rep.AchievedRate = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}

// RouteNames returns the routes of a report in stable order for printing.
func (r *MixReport) RouteNames() []string {
	names := make([]string, 0, len(r.Routes))
	for name := range r.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// atomicAdd increments a RouteStats field shared across request goroutines.
func atomicAdd(p *int64) { atomic.AddInt64(p, 1) }
