package load

import (
	"fmt"
	"math"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/pedigree"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly: quantiles must land within the ~5% relative
	// error the bucket growth factor guarantees.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("max = %v, want exactly 1s (max is not bucketed)", h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(float64(got-tc.want)) / float64(tc.want); rel > 0.06 {
			t.Errorf("q%.2f = %v, want %v ±6%%", tc.q, got, tc.want)
		}
	}
	if m := h.Mean(); m < 495*time.Millisecond || m > 506*time.Millisecond {
		t.Errorf("mean = %v, want ~500.5ms", m)
	}
}

func TestHistogramEmptyAndExtremes(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(0)               // below the first bucket
	h.Observe(5 * time.Minute) // beyond the last bucket
	h.Observe(-time.Second)    // clamped to zero
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 5*time.Minute {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Quantile(1.0) < 60*time.Second {
		t.Fatalf("q100 = %v, want the overflow bucket (>= 60s)", h.Quantile(1.0))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func testGraph(t *testing.T) *pedigree.Graph {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.03))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	return pedigree.Build(p.Dataset, pr.Result.Store)
}

func TestWorkloadDeterministicAndMixed(t *testing.T) {
	g := testGraph(t)
	w, err := BuildWorkload(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hot) == 0 || len(w.Cold) == 0 || w.Entities == 0 {
		t.Fatalf("workload pools empty: hot=%d cold=%d entities=%d",
			len(w.Hot), len(w.Cold), w.Entities)
	}
	// The hot pool is the head of the surname distribution, the cold pool
	// its tail — they must not overlap.
	hot := map[string]bool{}
	for _, p := range w.Hot {
		hot[p.Surname] = true
	}
	for _, p := range w.Cold {
		if hot[p.Surname] {
			t.Fatalf("surname %q in both hot and cold pools", p.Surname)
		}
	}

	mix, _ := MixByName("mixed")
	a := w.Ops(mix, 2000, 42)
	b := w.Ops(mix, 2000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different op sequences")
	}
	c := w.Ops(mix, 2000, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical op sequences")
	}

	// Kind frequencies track the mix probabilities.
	var counts [4]int
	for _, op := range a {
		counts[op.Kind]++
	}
	for kind, want := range map[OpKind]float64{
		OpSearchHot: mix.SearchHot, OpSearchCold: mix.SearchCold,
		OpPedigree: mix.Pedigree, OpIngest: mix.Ingest,
	} {
		got := float64(counts[kind]) / float64(len(a))
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s fraction = %.3f, want %.2f ±0.05", kind.Route(), got, want)
		}
	}
	// Ingest bodies are unique (distinct child names) and valid targets.
	for i, op := range a {
		if op.Kind == OpIngest && len(op.Body) == 0 {
			t.Fatalf("op %d: ingest without body", i)
		}
		if op.Kind == OpPedigree && (op.Entity < 0 || op.Entity >= w.Entities) {
			t.Fatalf("op %d: entity %d out of range", i, op.Entity)
		}
	}
}

// stubTarget answers instantly with a canned status per kind, counting ops.
type stubTarget struct {
	mu     sync.Mutex
	status map[OpKind]int
	seen   map[OpKind]int
}

func (s *stubTarget) Do(op Op) (int, error) {
	s.mu.Lock()
	s.seen[op.Kind]++
	st := s.status[op.Kind]
	s.mu.Unlock()
	if st == 0 {
		st = http.StatusOK
	}
	return st, nil
}

func TestRunnerOpenLoopReport(t *testing.T) {
	g := testGraph(t)
	w, err := BuildWorkload(g)
	if err != nil {
		t.Fatal(err)
	}
	// Pedigree shed, everything else fine — the report must separate the
	// outcomes per route.
	tgt := &stubTarget{
		status: map[OpKind]int{OpPedigree: http.StatusTooManyRequests},
		seen:   map[OpKind]int{},
	}
	mix, _ := MixByName("mixed")
	rep, err := Run(tgt, w, mix, Config{Rate: 2000, Duration: 250 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 400 {
		t.Fatalf("requests = %d, want ~500 at 2000 rps for 250ms", rep.Requests)
	}
	ped, ok := rep.Routes["pedigree"]
	if !ok {
		t.Fatal("no pedigree route in report")
	}
	if ped.Shed != ped.Count || ped.OK != 0 {
		t.Fatalf("pedigree: %d/%d shed, want all", ped.Shed, ped.Count)
	}
	for _, route := range []string{"search_hot", "search_cold", "ingest"} {
		r, ok := rep.Routes[route]
		if !ok {
			t.Fatalf("no %s route in report", route)
		}
		if r.OK != r.Count || r.Shed != 0 || r.Errors != 0 {
			t.Fatalf("%s: %+v, want all OK", route, r)
		}
		if r.P99Ms < r.P50Ms {
			t.Fatalf("%s: p99 %.3fms < p50 %.3fms", route, r.P99Ms, r.P50Ms)
		}
	}
	if rep.AchievedRate < 0.5*rep.OfferedRate {
		t.Fatalf("achieved %.0f rps of %.0f offered against an instant stub",
			rep.AchievedRate, rep.OfferedRate)
	}
}

// blockedTarget never completes until released — drives the outstanding cap.
type blockedTarget struct{ release chan struct{} }

func (b *blockedTarget) Do(Op) (int, error) {
	<-b.release
	return http.StatusOK, nil
}

func TestRunnerBoundsOutstanding(t *testing.T) {
	g := testGraph(t)
	w, err := BuildWorkload(g)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &blockedTarget{release: make(chan struct{})}
	done := make(chan *MixReport, 1)
	go func() {
		rep, err := Run(tgt, w, Mixes()[0], Config{
			Rate: 5000, Duration: 100 * time.Millisecond, MaxOutstanding: 16, Seed: 1,
		})
		if err != nil {
			panic(fmt.Sprint("run: ", err))
		}
		done <- rep
	}()
	// Let the arrival schedule finish (stalled server), then release.
	time.Sleep(300 * time.Millisecond)
	close(tgt.release)
	rep := <-done
	if rep.Requests != 16 {
		t.Fatalf("launched %d requests, want exactly the outstanding cap 16", rep.Requests)
	}
	if rep.Dropped == 0 {
		t.Fatal("no arrivals dropped despite a fully stalled target")
	}
	if rep.Requests+rep.Dropped < 400 {
		t.Fatalf("schedule generated %d arrivals, want ~500", rep.Requests+rep.Dropped)
	}
}
