package load

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/snaps/snaps/internal/obs"
)

// This file is the replay half of the flight recorder: it turns a recorded
// query log (obs.FlightRecord) back into load ops and re-issues them, either
// paced to the recorded arrival offsets (open-loop, optionally time-scaled)
// or closed-loop at fixed concurrency — the comparison mode. Recorded real
// traffic beats the synthetic mixes for finding skew: the synthetic
// generator draws names independently per op, while a real log carries the
// bursts, repeats, and hot keys production actually produced.

// replayableRoutes maps a recorded mux route to the op that re-issues it.
// Routes outside the map (HTML views, explain) are skipped and counted.
var replayableRoutes = map[string]OpKind{
	"/api/search":   OpSearchHot, // kind only picks the request shape; the label is the route
	"/api/pedigree": OpPedigree,
	"/api/ingest":   OpIngest,
}

// OpsFromFlightLog converts a flight log into replayable ops, preserving
// recorded arrival offsets and route labels. The second return value is the
// number of records skipped because their route has no replayable request
// shape.
func OpsFromFlightLog(recs []obs.FlightRecord) (ops []Op, skipped int) {
	for _, r := range recs {
		kind, ok := replayableRoutes[r.Route]
		if !ok {
			skipped++
			continue
		}
		op := Op{Kind: kind, Route: r.Route, DueUs: r.OffsetUs}
		switch kind {
		case OpPedigree:
			op.Entity, _ = strconv.Atoi(r.Entity)
		case OpIngest:
			op.Body = []byte(r.Body)
		default:
			op.First, op.Surname = r.First, r.Surname
		}
		ops = append(ops, op)
	}
	return ops, skipped
}

// ReplayConfig tunes one Replay.
type ReplayConfig struct {
	// Speed scales the recorded pacing: 1 replays in real time, 2 at twice
	// the recorded rate, 0 means 1. Ignored in closed-loop mode.
	Speed float64
	// ClosedLoop switches from recorded pacing to fixed-concurrency
	// replay: Concurrency workers each fire their next op as soon as the
	// previous one completes. This measures the server's capacity on the
	// recorded op sequence rather than reproducing the recorded schedule.
	ClosedLoop bool
	// Concurrency is the closed-loop worker count; 0 means 8.
	Concurrency int
	// MaxOutstanding caps in-flight requests in paced mode (as in Run); 0
	// means 4096.
	MaxOutstanding int
}

// ReplayReport is the result of one Replay.
type ReplayReport struct {
	Records     int                    `json:"records"`  // records read from the log
	Skipped     int                    `json:"skipped"`  // non-replayable routes
	Replayed    int64                  `json:"replayed"` // ops actually issued
	Dropped     int64                  `json:"dropped"`  // paced mode: outstanding window full
	ClosedLoop  bool                   `json:"closed_loop"`
	Speed       float64                `json:"speed,omitempty"`
	DurationSec float64                `json:"duration_sec"`
	Routes      map[string]RouteReport `json:"routes"`
}

// Replay re-issues the ops against the target. Stats are keyed by the
// recorded route pattern, so a replay's per-route counts are directly
// comparable with the log they came from.
func Replay(target Target, ops []Op, cfg ReplayConfig) (*ReplayReport, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("load: nothing to replay")
	}
	stats := map[string]*RouteStats{}
	for i := range ops {
		if r := ops[i].routeLabel(); stats[r] == nil {
			stats[r] = &RouteStats{}
		}
	}
	rep := &ReplayReport{ClosedLoop: cfg.ClosedLoop, Routes: map[string]RouteReport{}}

	start := time.Now()
	if cfg.ClosedLoop {
		workers := cfg.Concurrency
		if workers <= 0 {
			workers = 8
		}
		if workers > len(ops) {
			workers = len(ops)
		}
		var next int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if int(i) >= len(ops) {
						return
					}
					replayOne(target, &ops[i], stats)
				}
			}()
		}
		wg.Wait()
	} else {
		speed := cfg.Speed
		if speed <= 0 {
			speed = 1
		}
		rep.Speed = speed
		maxOut := cfg.MaxOutstanding
		if maxOut <= 0 {
			maxOut = 4096
		}
		sem := make(chan struct{}, maxOut)
		var wg sync.WaitGroup
		base := ops[0].DueUs
		for i := range ops {
			due := start.Add(time.Duration(float64(ops[i].DueUs-base)/speed) * time.Microsecond)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			select {
			case sem <- struct{}{}:
			default:
				rep.Dropped++
				continue
			}
			wg.Add(1)
			go func(op *Op) {
				defer wg.Done()
				defer func() { <-sem }()
				replayOne(target, op, stats)
			}(&ops[i])
		}
		wg.Wait()
	}
	rep.DurationSec = time.Since(start).Seconds()

	for route, st := range stats {
		if st.Count == 0 {
			continue
		}
		rep.Replayed += st.Count
		rep.Routes[route] = st.report()
	}
	return rep, nil
}

func replayOne(target Target, op *Op, stats map[string]*RouteStats) {
	st := stats[op.routeLabel()]
	t0 := time.Now()
	status, err := target.Do(*op)
	st.record(status, err, time.Since(t0))
}

// RouteComparison sets one route's recorded outcomes against its replayed
// ones.
type RouteComparison struct {
	Recorded RouteReport `json:"recorded"`
	Replayed RouteReport `json:"replayed"`
	// Deltas are replayed minus recorded, in ms: positive means the replay
	// ran slower than the recorded traffic did live.
	P50DeltaMs float64 `json:"p50_delta_ms"`
	P99DeltaMs float64 `json:"p99_delta_ms"`
}

// ReplayComparison diffs a replay against the log it came from, per route.
type ReplayComparison struct {
	Records int                        `json:"records"`
	Skipped int                        `json:"skipped"`
	Routes  map[string]RouteComparison `json:"routes"`
}

// CompareToLog summarises the recorded outcomes per route and diffs the
// replay's distributions against them.
func CompareToLog(recs []obs.FlightRecord, rep *ReplayReport) *ReplayComparison {
	recorded := map[string]*RouteStats{}
	for _, r := range recs {
		st := recorded[r.Route]
		if st == nil {
			st = &RouteStats{}
			recorded[r.Route] = st
		}
		var err error
		st.record(r.Status, err, time.Duration(r.LatencyUs)*time.Microsecond)
	}
	cmp := &ReplayComparison{
		Records: len(recs),
		Skipped: rep.Skipped,
		Routes:  map[string]RouteComparison{},
	}
	for route, st := range recorded {
		rc := RouteComparison{Recorded: st.report()}
		if rr, ok := rep.Routes[route]; ok {
			rc.Replayed = rr
			rc.P50DeltaMs = rr.P50Ms - rc.Recorded.P50Ms
			rc.P99DeltaMs = rr.P99Ms - rc.Recorded.P99Ms
		}
		cmp.Routes[route] = rc
	}
	return cmp
}

// RouteNames returns the comparison's routes in stable order for printing.
func (c *ReplayComparison) RouteNames() []string {
	names := make([]string, 0, len(c.Routes))
	for name := range c.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RouteNames returns the replay report's routes in stable order.
func (r *ReplayReport) RouteNames() []string {
	names := make([]string, 0, len(r.Routes))
	for name := range r.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
