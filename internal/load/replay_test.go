package load

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/obs"
)

// countingHandler serves the three replayable routes and counts what it
// saw, including query parameters and bodies, so a replay round-trip can
// assert the recorded traffic was reproduced faithfully.
type countingHandler struct {
	mu       sync.Mutex
	routes   map[string]int
	searches []string // "first/surname" per search
	bodies   []string // ingest bodies
}

func newCountingHandler() *countingHandler {
	return &countingHandler{routes: map[string]int{}}
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case strings.HasPrefix(r.URL.Path, "/api/search"):
		h.routes["/api/search"]++
		h.searches = append(h.searches,
			r.URL.Query().Get("first_name")+"/"+r.URL.Query().Get("surname"))
	case strings.HasPrefix(r.URL.Path, "/api/pedigree"):
		h.routes["/api/pedigree"]++
	case strings.HasPrefix(r.URL.Path, "/api/ingest"):
		h.routes["/api/ingest"]++
		b, _ := io.ReadAll(r.Body)
		h.bodies = append(h.bodies, string(b))
		w.WriteHeader(http.StatusAccepted)
		return
	default:
		http.NotFound(w, r)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// writeTestLog records a small mixed log and returns its records.
func writeTestLog(t *testing.T) []obs.FlightRecord {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flight.log")
	fr, err := obs.NewFlightRecorder(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []obs.FlightRecord{
		{Route: "/api/search", First: "maria", Surname: "silva", Status: 200, LatencyUs: 100},
		{Route: "/api/search", First: "joao", Surname: "santos", Status: 200, LatencyUs: 150},
		{Route: "/api/pedigree", Entity: "7", Status: 200, LatencyUs: 800},
		{Route: "/api/ingest", Body: `{"records":[]}`, Status: 202, LatencyUs: 60},
		{Route: "/api/explain", First: "x", Surname: "y", Status: 200, LatencyUs: 40}, // not replayable
		{Route: "/api/search", First: "ana", Surname: "costa", Status: 200, LatencyUs: 90},
	}
	for i, r := range recs {
		fr.Sampled()
		fr.Record(r, int64(1e9)+int64(i)*2000) // 2ms apart
	}
	fr.Close()
	got, err := obs.ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestOpsFromFlightLog(t *testing.T) {
	recs := writeTestLog(t)
	ops, skipped := OpsFromFlightLog(recs)
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (/api/explain)", skipped)
	}
	if len(ops) != 5 {
		t.Fatalf("ops = %d, want 5", len(ops))
	}
	if ops[0].First != "maria" || ops[0].Surname != "silva" || ops[0].Route != "/api/search" {
		t.Errorf("search op = %+v", ops[0])
	}
	if ops[2].Entity != 7 {
		t.Errorf("pedigree entity = %d, want 7", ops[2].Entity)
	}
	if string(ops[3].Body) != `{"records":[]}` {
		t.Errorf("ingest body = %q", ops[3].Body)
	}
	// Arrival offsets are preserved and monotone.
	for i := 1; i < len(ops); i++ {
		if ops[i].DueUs <= ops[i-1].DueUs {
			t.Errorf("DueUs not monotone at %d: %d then %d", i, ops[i-1].DueUs, ops[i].DueUs)
		}
	}
}

// TestReplayRoundTrip is the acceptance path: record a log, replay it
// closed-loop, and require the per-route op counts to match the log.
func TestReplayRoundTrip(t *testing.T) {
	recs := writeTestLog(t)
	ops, _ := OpsFromFlightLog(recs)
	h := newCountingHandler()

	rep, err := Replay(&HandlerTarget{Handler: h}, ops, ReplayConfig{ClosedLoop: true, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != int64(len(ops)) {
		t.Fatalf("replayed %d, want %d", rep.Replayed, len(ops))
	}

	// Per-route counts in the report match both the log and what the
	// handler actually served.
	wantRoutes := map[string]int64{"/api/search": 3, "/api/pedigree": 1, "/api/ingest": 1}
	for route, want := range wantRoutes {
		rr, ok := rep.Routes[route]
		if !ok || rr.Count != want {
			t.Errorf("report route %s count = %+v, want %d", route, rr, want)
		}
		if got := int64(h.routes[route]); got != want {
			t.Errorf("handler served %s %d times, want %d", route, got, want)
		}
	}
	if rep.Routes["/api/search"].OK != 3 || rep.Routes["/api/ingest"].OK != 1 {
		t.Errorf("OK counts wrong: %+v", rep.Routes)
	}

	// The replay carried the recorded parameters, not synthetic ones.
	got := map[string]bool{}
	for _, s := range h.searches {
		got[s] = true
	}
	for _, want := range []string{"maria/silva", "joao/santos", "ana/costa"} {
		if !got[want] {
			t.Errorf("search %s not replayed (saw %v)", want, h.searches)
		}
	}
	if len(h.bodies) != 1 || h.bodies[0] != `{"records":[]}` {
		t.Errorf("ingest bodies = %v", h.bodies)
	}
}

func TestReplayPaced(t *testing.T) {
	recs := writeTestLog(t)
	ops, _ := OpsFromFlightLog(recs)
	h := newCountingHandler()

	start := time.Now()
	rep, err := Replay(&HandlerTarget{Handler: h}, ops, ReplayConfig{Speed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClosedLoop {
		t.Fatal("paced replay reported closed-loop")
	}
	if rep.Replayed != int64(len(ops)) || rep.Dropped != 0 {
		t.Fatalf("replayed %d dropped %d, want %d/0", rep.Replayed, rep.Dropped, len(ops))
	}
	// Recorded span is 10ms (5 replayable ops, first at 0, last at 10ms);
	// at speed 2 the replay should take at least half that.
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Errorf("paced replay finished in %v — pacing not applied", el)
	}
}

func TestCompareToLog(t *testing.T) {
	recs := writeTestLog(t)
	ops, skipped := OpsFromFlightLog(recs)
	h := newCountingHandler()
	rep, err := Replay(&HandlerTarget{Handler: h}, ops, ReplayConfig{ClosedLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	rep.Skipped = skipped

	cmp := CompareToLog(recs, rep)
	if cmp.Records != len(recs) || cmp.Skipped != 1 {
		t.Fatalf("comparison header = %+v", cmp)
	}
	sc, ok := cmp.Routes["/api/search"]
	if !ok {
		t.Fatal("no /api/search comparison")
	}
	if sc.Recorded.Count != 3 || sc.Replayed.Count != 3 {
		t.Errorf("search comparison counts = %d/%d, want 3/3", sc.Recorded.Count, sc.Replayed.Count)
	}
	// Recorded latencies come from the log (100/150/90 µs): the p50 must
	// land near 100µs = 0.1ms.
	if sc.Recorded.P50Ms <= 0 || sc.Recorded.P50Ms > 1 {
		t.Errorf("recorded p50 = %vms, want ~0.1ms", sc.Recorded.P50Ms)
	}
	// The non-replayable route still shows its recorded side.
	ec, ok := cmp.Routes["/api/explain"]
	if !ok || ec.Recorded.Count != 1 || ec.Replayed.Count != 0 {
		t.Errorf("explain comparison = %+v", ec)
	}
	// Stable route ordering for printing.
	names := cmp.RouteNames()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("RouteNames not sorted: %v", names)
		}
	}
}

func TestReplayEmpty(t *testing.T) {
	if _, err := Replay(&HandlerTarget{Handler: newCountingHandler()}, nil, ReplayConfig{}); err == nil {
		t.Fatal("empty replay accepted")
	}
}
