package load

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/snaps/snaps/internal/pedigree"
)

// Workload holds the queryable material mined from a pedigree graph: the
// hot head and the cold tail of the name distribution, plus the entity
// count for pedigree extractions. Real traffic is Zipfian — a few surnames
// dominate — so replaying only popular names would measure the result
// cache, and replaying only rare ones would measure nothing real. The two
// pools let a Mix dial the ratio explicitly.
type Workload struct {
	// Hot is the head of the name distribution: (first name, surname)
	// pairs whose surname is among the most frequent in the graph. Hot
	// searches hit the same few postings lists and the result cache.
	Hot []NamePair
	// Cold is the long tail: pairs whose surname occurs at most twice.
	// Cold searches are cache-hostile and exercise the full blocking and
	// scoring path.
	Cold []NamePair
	// Entities is the number of graph nodes; pedigree ops extract a
	// uniformly random entity id in [0, Entities).
	Entities int
}

// NamePair is one searchable (first name, surname) combination present in
// the graph.
type NamePair struct {
	First   string
	Surname string
}

// OpKind is the type of one replayed operation.
type OpKind uint8

const (
	OpSearchHot OpKind = iota
	OpSearchCold
	OpPedigree
	OpIngest
)

// Route is the per-route label used in reports and histograms.
func (k OpKind) Route() string {
	switch k {
	case OpSearchHot:
		return "search_hot"
	case OpSearchCold:
		return "search_cold"
	case OpPedigree:
		return "pedigree"
	case OpIngest:
		return "ingest"
	}
	return "op?"
}

// Op is one pre-generated operation. Search ops carry the name pair,
// pedigree ops the entity id, ingest ops the certificate JSON body.
type Op struct {
	Kind    OpKind
	First   string
	Surname string
	Entity  int
	Body    []byte
	// Route, when non-empty, overrides Kind.Route() as the reporting label.
	// Replayed flight-log ops keep their recorded mux pattern here so a
	// replay report's per-route counts line up with the recorded log.
	Route string
	// DueUs is the op's recorded arrival offset in µs since the first
	// record; Replay's paced mode reproduces it. Synthetic ops leave it 0
	// and take their schedule from the configured rate.
	DueUs int64
}

// routeLabel is the label the op's outcomes are reported under.
func (op *Op) routeLabel() string {
	if op.Route != "" {
		return op.Route
	}
	return op.Kind.Route()
}

// BuildWorkload mines the graph for the hot and cold name pools.
func BuildWorkload(g *pedigree.Graph) (*Workload, error) {
	freq := map[string]int{}
	for i := range g.Nodes {
		for _, s := range g.Nodes[i].Surnames {
			freq[s]++
		}
	}
	if len(freq) == 0 {
		return nil, fmt.Errorf("graph has no surnames to build a workload from")
	}
	// Hot = the dozen most frequent surnames; every (first, surname) pair
	// of an entity bearing one is a hot query.
	type sf struct {
		s string
		n int
	}
	ranked := make([]sf, 0, len(freq))
	for s, n := range freq {
		ranked = append(ranked, sf{s, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].s < ranked[j].s
	})
	hotSet := map[string]bool{}
	for i := 0; i < len(ranked) && i < 12; i++ {
		hotSet[ranked[i].s] = true
	}

	w := &Workload{Entities: len(g.Nodes)}
	seen := map[NamePair]bool{}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.FirstNames) == 0 || len(n.Surnames) == 0 {
			continue
		}
		p := NamePair{First: n.FirstNames[0], Surname: n.Surnames[0]}
		if seen[p] {
			continue
		}
		seen[p] = true
		switch {
		case hotSet[p.Surname] && len(w.Hot) < 64:
			w.Hot = append(w.Hot, p)
		case freq[p.Surname] <= 2 && len(w.Cold) < 512:
			w.Cold = append(w.Cold, p)
		}
	}
	if len(w.Hot) == 0 {
		return nil, fmt.Errorf("no hot name pairs found")
	}
	if len(w.Cold) == 0 {
		// Tiny graphs may have no tail; fall back to the hot pool so cold
		// ops still resolve to real queries.
		w.Cold = w.Hot
	}
	return w, nil
}

// Mix is one traffic composition: per-kind probabilities (normalised over
// their sum) replayed at a fixed open-loop arrival rate.
type Mix struct {
	Name       string  `json:"name"`
	SearchHot  float64 `json:"search_hot"`
	SearchCold float64 `json:"search_cold"`
	Pedigree   float64 `json:"pedigree"`
	Ingest     float64 `json:"ingest"`
}

// Mixes returns the three standard compositions benchmarked in
// BENCH_serve.json: the read-heavy steady state, a mixed day with renders
// and a trickle of ingest, and an ingest burst that drives the backlog into
// backpressure.
func Mixes() []Mix {
	return []Mix{
		{Name: "read-heavy", SearchHot: 0.70, SearchCold: 0.25, Pedigree: 0.05},
		{Name: "mixed", SearchHot: 0.40, SearchCold: 0.25, Pedigree: 0.20, Ingest: 0.15},
		{Name: "ingest-burst", SearchHot: 0.20, SearchCold: 0.10, Pedigree: 0.05, Ingest: 0.65},
	}
}

// MixByName finds a standard mix.
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Ops pre-generates n operations for the mix, deterministically from the
// seed: generation happens before the clock starts so op construction never
// steals time from the arrival schedule, and two runs with the same seed
// replay the identical sequence.
func (w *Workload) Ops(m Mix, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	total := m.SearchHot + m.SearchCold + m.Pedigree + m.Ingest
	if total <= 0 {
		total, m.SearchHot = 1, 1
	}
	ops := make([]Op, n)
	for i := range ops {
		r := rng.Float64() * total
		switch {
		case r < m.SearchHot:
			p := w.Hot[rng.Intn(len(w.Hot))]
			ops[i] = Op{Kind: OpSearchHot, First: p.First, Surname: p.Surname}
		case r < m.SearchHot+m.SearchCold:
			p := w.Cold[rng.Intn(len(w.Cold))]
			ops[i] = Op{Kind: OpSearchCold, First: p.First, Surname: p.Surname}
		case r < m.SearchHot+m.SearchCold+m.Pedigree:
			ops[i] = Op{Kind: OpPedigree, Entity: rng.Intn(w.Entities)}
		default:
			// Synthetic birth: a unique child name under a hot surname, so
			// the certificate links into the existing graph when flushed.
			p := w.Hot[rng.Intn(len(w.Hot))]
			body := fmt.Sprintf(`{"type":"birth","year":%d,"address":"loadgen croft",`+
				`"roles":{"Bb":{"first_name":"loadgen%d","surname":%q,"gender":"m"},`+
				`"Bm":{"first_name":%q,"surname":%q}}}`,
				1850+rng.Intn(50), i, p.Surname, p.First, p.Surname)
			ops[i] = Op{Kind: OpIngest, Body: []byte(body)}
		}
	}
	return ops
}
