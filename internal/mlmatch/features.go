// Package mlmatch is the supervised entity-matching baseline standing in
// for Magellan in Table 4 of the paper. Magellan itself is a Python
// toolkit; what the paper uses from it is four standard classifiers
// (an SVM, a random forest, a logistic regression, and a decision tree)
// trained on pairwise similarity features. This package implements those
// four classifier families from scratch on the Go standard library, plus
// the feature extraction, training-regime handling (role-pair-specific
// versus all-role-pairs training data), and evaluation plumbing.
package mlmatch

import (
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/strsim"
)

// NumFeatures is the dimensionality of the pairwise feature vector.
const NumFeatures = 12

// FeatureNames documents the feature vector layout.
var FeatureNames = [NumFeatures]string{
	"first_jw", "first_exact", "surname_jw", "surname_exact",
	"address_jaccard", "address_exact", "occupation_jaccard",
	"year_sim", "year_diff_norm", "gender_match", "first_missing", "addr_missing",
}

// Features extracts the pairwise similarity feature vector used by every
// classifier.
func Features(a, b *model.Record) [NumFeatures]float64 {
	var f [NumFeatures]float64
	if a.FirstName() != "" && b.FirstName() != "" {
		f[0] = strsim.JaroWinkler(a.FirstName(), b.FirstName())
		if a.FirstName() == b.FirstName() {
			f[1] = 1
		}
	} else {
		f[10] = 1
	}
	if a.Surname() != "" && b.Surname() != "" {
		f[2] = strsim.JaroWinkler(a.Surname(), b.Surname())
		if a.Surname() == b.Surname() {
			f[3] = 1
		}
	}
	if a.Address() != "" && b.Address() != "" {
		f[4] = strsim.Jaccard(a.Address(), b.Address())
		if a.Address() == b.Address() {
			f[5] = 1
		}
	} else {
		f[11] = 1
	}
	if a.Occupation() != "" && b.Occupation() != "" {
		f[6] = strsim.TokenJaccard(a.Occupation(), b.Occupation())
	}
	f[7] = strsim.YearSim(a.Year, b.Year, 40)
	dy := a.Year - b.Year
	if dy < 0 {
		dy = -dy
	}
	f[8] = float64(dy) / 100
	if f[8] > 1 {
		f[8] = 1
	}
	ga, gb := a.Gender, b.Gender
	if ga == model.GenderUnknown {
		ga = model.RoleGender(a.Role)
	}
	if gb == model.GenderUnknown {
		gb = model.RoleGender(b.Role)
	}
	if ga != model.GenderUnknown && ga == gb {
		f[9] = 1
	}
	return f
}

// Example is one labelled training pair.
type Example struct {
	X [NumFeatures]float64
	Y bool // true = match
}

// Classifier is a trained binary matcher over pair feature vectors.
type Classifier interface {
	// Name identifies the classifier family ("svm", "rf", "logreg", "dt").
	Name() string
	// Predict reports whether the feature vector is classified a match.
	Predict(x [NumFeatures]float64) bool
}

// Trainer fits a classifier on labelled examples.
type Trainer interface {
	Train(examples []Example) Classifier
}
