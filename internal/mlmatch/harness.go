package mlmatch

import (
	"math/rand"
	"sort"

	"github.com/snaps/snaps/internal/model"
)

// Regime selects how training data is assembled, mirroring the paper's two
// Magellan settings (Sec. 10).
type Regime uint8

// Training regimes.
const (
	// RolePairSpecific trains on labelled pairs of the evaluated role pair
	// only — the setting where Magellan can beat SNAPS but which requires
	// per-role-pair ground truth.
	RolePairSpecific Regime = iota
	// AllRolePairs trains on labelled pairs of every role pair — the
	// realistic setting with incomplete ground truth, where quality drops.
	AllRolePairs
)

// String returns "specific" or "all".
func (r Regime) String() string {
	if r == RolePairSpecific {
		return "specific"
	}
	return "all"
}

// LabelledPair is a candidate pair with its ground-truth label.
type LabelledPair struct {
	A, B model.RecordID
	Y    bool
}

// SplitPairs partitions candidate pairs into train and test sets with the
// given train fraction, deterministically by seed. Labels come from record
// ground truth.
func SplitPairs(d *model.Dataset, cands [][2]model.RecordID, trainFrac float64, seed int64) (train, test []LabelledPair) {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]LabelledPair, 0, len(cands))
	for _, c := range cands {
		a, b := d.Record(c[0]), d.Record(c[1])
		y := a.Truth != model.NoPerson && a.Truth == b.Truth
		pairs = append(pairs, LabelledPair{A: c[0], B: c[1], Y: y})
	}
	sort.Slice(pairs, func(i, j int) bool {
		return model.MakePairKey(pairs[i].A, pairs[i].B) < model.MakePairKey(pairs[j].A, pairs[j].B)
	})
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	cut := int(float64(len(pairs)) * trainFrac)
	return pairs[:cut], pairs[cut:]
}

// Examples converts labelled pairs to feature examples.
func Examples(d *model.Dataset, pairs []LabelledPair) []Example {
	out := make([]Example, len(pairs))
	for i, p := range pairs {
		out[i] = Example{X: Features(d.Record(p.A), d.Record(p.B)), Y: p.Y}
	}
	return out
}

// Predict classifies candidate pairs with a trained classifier and returns
// the predicted match pair set.
func Predict(d *model.Dataset, c Classifier, pairs []LabelledPair) map[model.PairKey]bool {
	out := map[model.PairKey]bool{}
	for _, p := range pairs {
		if c.Predict(Features(d.Record(p.A), d.Record(p.B))) {
			out[model.MakePairKey(p.A, p.B)] = true
		}
	}
	return out
}

// TruthOf extracts the truth pair set of labelled pairs (for scoring the
// classifier on exactly the pairs it saw).
func TruthOf(pairs []LabelledPair) map[model.PairKey]bool {
	out := map[model.PairKey]bool{}
	for _, p := range pairs {
		if p.Y {
			out[model.MakePairKey(p.A, p.B)] = true
		}
	}
	return out
}

// DefaultTrainers returns the four classifier families the paper averages
// over: SVM, random forest, logistic regression, decision tree.
func DefaultTrainers() []Trainer {
	return []Trainer{
		NewLinearSVM(),
		NewRandomForest(),
		NewLogisticRegression(),
		NewDecisionTree(),
	}
}

// FilterRolePair keeps only the labelled pairs with the given role pair.
func FilterRolePair(d *model.Dataset, pairs []LabelledPair, rp model.RolePair) []LabelledPair {
	var out []LabelledPair
	for _, p := range pairs {
		if model.MakeRolePair(d.Record(p.A).Role, d.Record(p.B).Role) == rp {
			out = append(out, p)
		}
	}
	return out
}
