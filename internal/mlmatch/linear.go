package mlmatch

import (
	"math"
	"math/rand"
)

// linearModel is a weight vector plus bias shared by the logistic
// regression and linear SVM.
type linearModel struct {
	name string
	w    [NumFeatures]float64
	b    float64
}

func (m *linearModel) Name() string { return m.name }

func (m *linearModel) score(x [NumFeatures]float64) float64 {
	s := m.b
	for i := range x {
		s += m.w[i] * x[i]
	}
	return s
}

// Predict implements Classifier.
func (m *linearModel) Predict(x [NumFeatures]float64) bool { return m.score(x) > 0 }

// LogisticRegression trains a binary logistic-regression matcher with
// mini-batch SGD and L2 regularisation.
type LogisticRegression struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
}

// NewLogisticRegression returns sensible defaults for pairwise matching.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{Epochs: 60, LearningRate: 0.3, L2: 1e-4, Seed: 1}
}

// Train implements Trainer.
func (t *LogisticRegression) Train(examples []Example) Classifier {
	m := &linearModel{name: "logreg"}
	if len(examples) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(t.Seed))
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	// Class weighting compensates the heavy non-match majority.
	pos := 0
	for _, e := range examples {
		if e.Y {
			pos++
		}
	}
	posW, negW := 1.0, 1.0
	if pos > 0 && pos < len(examples) {
		posW = float64(len(examples)) / (2 * float64(pos))
		negW = float64(len(examples)) / (2 * float64(len(examples)-pos))
	}
	for epoch := 0; epoch < t.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := t.LearningRate / (1 + 0.05*float64(epoch))
		for _, i := range idx {
			e := &examples[i]
			y := 0.0
			weight := negW
			if e.Y {
				y = 1
				weight = posW
			}
			p := sigmoid(m.score(e.X))
			g := weight * (p - y)
			for j := range m.w {
				m.w[j] -= lr * (g*e.X[j] + t.L2*m.w[j])
			}
			m.b -= lr * g
		}
	}
	return m
}

func sigmoid(z float64) float64 {
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// LinearSVM trains a linear soft-margin SVM with the Pegasos-style
// subgradient method on the hinge loss.
type LinearSVM struct {
	Epochs int
	Lambda float64
	Seed   int64
}

// NewLinearSVM returns sensible defaults for pairwise matching.
func NewLinearSVM() *LinearSVM { return &LinearSVM{Epochs: 60, Lambda: 1e-4, Seed: 2} }

// Train implements Trainer.
func (t *LinearSVM) Train(examples []Example) Classifier {
	m := &linearModel{name: "svm"}
	if len(examples) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(t.Seed))
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	pos := 0
	for _, e := range examples {
		if e.Y {
			pos++
		}
	}
	posW, negW := 1.0, 1.0
	if pos > 0 && pos < len(examples) {
		posW = float64(len(examples)) / (2 * float64(pos))
		negW = float64(len(examples)) / (2 * float64(len(examples)-pos))
	}
	step := 0
	for epoch := 0; epoch < t.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			step++
			e := &examples[i]
			y := -1.0
			weight := negW
			if e.Y {
				y = 1
				weight = posW
			}
			lr := 1 / (t.Lambda * float64(step))
			if lr > 10 {
				lr = 10
			}
			margin := y * m.score(e.X)
			for j := range m.w {
				m.w[j] *= 1 - lr*t.Lambda
			}
			if margin < 1 {
				for j := range m.w {
					m.w[j] += lr * weight * y * e.X[j]
				}
				m.b += lr * weight * y * 0.1
			}
		}
	}
	return m
}
