package mlmatch

import (
	"testing"

	"github.com/snaps/snaps/internal/blocking"
	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

func TestFeaturesBasics(t *testing.T) {
	a := &model.Record{First: model.Intern("mary"), Sur: model.Intern("smith"), Addr: model.Intern("5 uig"),
		Occ: model.Intern("crofter"), Year: 1870, Gender: model.Female}
	b := &model.Record{First: model.Intern("mary"), Sur: model.Intern("smith"), Addr: model.Intern("5 uig"),
		Occ: model.Intern("crofter"), Year: 1870, Gender: model.Female}
	f := Features(a, b)
	for _, i := range []int{0, 1, 2, 3, 4, 5, 6, 7, 9} {
		if f[i] != 1 {
			t.Errorf("feature %s = %v, want 1 for identical records", FeatureNames[i], f[i])
		}
	}
	if f[8] != 0 {
		t.Errorf("year diff = %v, want 0", f[8])
	}
	c := &model.Record{Year: 1880, Gender: model.Male}
	fc := Features(a, c)
	if fc[10] != 1 || fc[11] != 1 {
		t.Error("missing-value indicator features should fire")
	}
	if fc[9] != 0 {
		t.Error("gender mismatch should zero the gender feature")
	}
}

// separableExamples builds a trivially separable training set: matches have
// high name similarity, non-matches low.
func separableExamples(n int) []Example {
	var out []Example
	for i := 0; i < n; i++ {
		var pos, neg Example
		pos.Y = true
		pos.X[0], pos.X[2], pos.X[7] = 0.95+0.05*float64(i%2), 0.9, 0.8
		neg.X[0], neg.X[2], neg.X[7] = 0.3, 0.4, 0.2
		out = append(out, pos, neg)
	}
	return out
}

func TestAllClassifiersLearnSeparableData(t *testing.T) {
	examples := separableExamples(100)
	var match, nomatch [NumFeatures]float64
	match[0], match[2], match[7] = 0.97, 0.92, 0.75
	nomatch[0], nomatch[2], nomatch[7] = 0.25, 0.35, 0.1
	for _, tr := range DefaultTrainers() {
		c := tr.Train(examples)
		if !c.Predict(match) {
			t.Errorf("%s: failed to classify an obvious match", c.Name())
		}
		if c.Predict(nomatch) {
			t.Errorf("%s: classified an obvious non-match as match", c.Name())
		}
	}
}

func TestClassifiersHandleEmptyTraining(t *testing.T) {
	for _, tr := range DefaultTrainers() {
		c := tr.Train(nil)
		var x [NumFeatures]float64
		_ = c.Predict(x) // must not panic
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	var ex []Example
	for i := 0; i < 10; i++ {
		var e Example
		e.Y = true
		e.X[0] = 1
		ex = append(ex, e)
	}
	c := NewDecisionTree().Train(ex)
	var x [NumFeatures]float64
	x[0] = 1
	if !c.Predict(x) {
		t.Error("pure positive training set should predict positive")
	}
}

func TestEndToEndMagellanStyle(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.1))
	d := p.Dataset
	ids := make([]model.RecordID, len(d.Records))
	for i := range d.Records {
		ids[i] = d.Records[i].ID
	}
	cands := blocking.NewLSH(blocking.DefaultLSHConfig()).Pairs(d, ids)
	pairs := make([][2]model.RecordID, len(cands))
	for i, c := range cands {
		pairs[i] = [2]model.RecordID{c.A, c.B}
	}
	train, test := SplitPairs(d, pairs, 0.5, 7)
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}

	rp := model.MakeRolePair(model.Bm, model.Bm)
	trainRP := FilterRolePair(d, train, rp)
	testRP := FilterRolePair(d, test, rp)
	if len(trainRP) == 0 || len(testRP) == 0 {
		t.Skip("sample too small for role-pair split")
	}

	var fstars []float64
	for _, tr := range DefaultTrainers() {
		c := tr.Train(Examples(d, trainRP))
		pred := Predict(d, c, testRP)
		q := eval.QualityOf(eval.Compare(pred, TruthOf(testRP)))
		fstars = append(fstars, q.FStar)
		t.Logf("%s (specific): %v", c.Name(), q)
	}
	mean, std := eval.MeanStd(fstars)
	if mean < 40 {
		t.Errorf("mean specific-regime F* = %.2f ± %.2f, expected a competent classifier (>40)", mean, std)
	}

	// The all-role-pairs regime trains on everything; quality on the
	// specific role pair is usually noisier (the paper's second setting).
	for _, tr := range DefaultTrainers() {
		c := tr.Train(Examples(d, train))
		pred := Predict(d, c, testRP)
		q := eval.QualityOf(eval.Compare(pred, TruthOf(testRP)))
		t.Logf("%s (all): %v", c.Name(), q)
		if q.FStar < 0 || q.FStar > 100 {
			t.Errorf("%s: F* out of range", c.Name())
		}
	}
}

func TestSplitPairsDeterministic(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.05))
	d := p.Dataset
	var pairs [][2]model.RecordID
	for i := 0; i+1 < len(d.Records) && i < 500; i += 2 {
		pairs = append(pairs, [2]model.RecordID{d.Records[i].ID, d.Records[i+1].ID})
	}
	tr1, te1 := SplitPairs(d, pairs, 0.6, 42)
	tr2, te2 := SplitPairs(d, pairs, 0.6, 42)
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Fatal("split sizes differ across runs")
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatal("split contents differ across runs")
		}
	}
}

func TestRegimeString(t *testing.T) {
	if RolePairSpecific.String() != "specific" || AllRolePairs.String() != "all" {
		t.Error("regime strings wrong")
	}
}
