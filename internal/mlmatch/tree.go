package mlmatch

import (
	"math/rand"
	"sort"
)

// treeNode is one node of a CART decision tree.
type treeNode struct {
	// leaf fields
	isLeaf bool
	label  bool
	// split fields
	feature     int
	threshold   float64
	left, right *treeNode
}

// DecisionTreeModel is a trained CART classifier.
type DecisionTreeModel struct {
	root *treeNode
	name string
}

// Name implements Classifier.
func (m *DecisionTreeModel) Name() string { return m.name }

// Predict implements Classifier.
func (m *DecisionTreeModel) Predict(x [NumFeatures]float64) bool {
	n := m.root
	for n != nil && !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return false
	}
	return n.label
}

// DecisionTree trains a CART tree with Gini impurity.
type DecisionTree struct {
	MaxDepth    int
	MinLeafSize int
	// FeatureSubset, when positive, restricts each split to a random subset
	// of features (used by the random forest).
	FeatureSubset int
	Seed          int64
}

// NewDecisionTree returns defaults suitable for pair matching.
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{MaxDepth: 8, MinLeafSize: 4, Seed: 3}
}

// Train implements Trainer.
func (t *DecisionTree) Train(examples []Example) Classifier {
	rng := rand.New(rand.NewSource(t.Seed))
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	root := t.grow(examples, idx, 0, rng)
	return &DecisionTreeModel{root: root, name: "dt"}
}

func (t *DecisionTree) grow(ex []Example, idx []int, depth int, rng *rand.Rand) *treeNode {
	pos := 0
	for _, i := range idx {
		if ex[i].Y {
			pos++
		}
	}
	majority := pos*2 >= len(idx)
	if depth >= t.MaxDepth || len(idx) <= t.MinLeafSize || pos == 0 || pos == len(idx) {
		return &treeNode{isLeaf: true, label: majority}
	}
	feat, thr, ok := t.bestSplit(ex, idx, rng)
	if !ok {
		return &treeNode{isLeaf: true, label: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if ex[i].X[feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{isLeaf: true, label: majority}
	}
	return &treeNode{
		feature: feat, threshold: thr,
		left:  t.grow(ex, li, depth+1, rng),
		right: t.grow(ex, ri, depth+1, rng),
	}
}

// bestSplit finds the (feature, threshold) pair minimising weighted Gini
// impurity over candidate thresholds at value midpoints.
func (t *DecisionTree) bestSplit(ex []Example, idx []int, rng *rand.Rand) (int, float64, bool) {
	features := make([]int, NumFeatures)
	for i := range features {
		features[i] = i
	}
	if t.FeatureSubset > 0 && t.FeatureSubset < NumFeatures {
		rng.Shuffle(len(features), func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.FeatureSubset]
	}
	bestGini := 2.0
	bestFeat, bestThr := -1, 0.0
	type fv struct {
		v float64
		y bool
	}
	for _, f := range features {
		vals := make([]fv, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, fv{ex[i].X[f], ex[i].Y})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		totalPos := 0
		for _, v := range vals {
			if v.y {
				totalPos++
			}
		}
		leftPos, leftN := 0, 0
		for k := 0; k < len(vals)-1; k++ {
			if vals[k].y {
				leftPos++
			}
			leftN++
			if vals[k].v == vals[k+1].v {
				continue
			}
			rightPos := totalPos - leftPos
			rightN := len(vals) - leftN
			g := weightedGini(leftPos, leftN, rightPos, rightN)
			if g < bestGini {
				bestGini = g
				bestFeat = f
				bestThr = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	return bestFeat, bestThr, bestFeat >= 0
}

func weightedGini(lp, ln, rp, rn int) float64 {
	gini := func(p, n int) float64 {
		if n == 0 {
			return 0
		}
		q := float64(p) / float64(n)
		return 2 * q * (1 - q)
	}
	total := float64(ln + rn)
	return float64(ln)/total*gini(lp, ln) + float64(rn)/total*gini(rp, rn)
}

// RandomForestModel is a majority-vote ensemble of CART trees.
type RandomForestModel struct {
	trees []*DecisionTreeModel
}

// Name implements Classifier.
func (m *RandomForestModel) Name() string { return "rf" }

// Predict implements Classifier.
func (m *RandomForestModel) Predict(x [NumFeatures]float64) bool {
	votes := 0
	for _, t := range m.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return votes*2 > len(m.trees)
}

// RandomForest trains a bagged ensemble of feature-subsampled trees.
type RandomForest struct {
	Trees    int
	MaxDepth int
	Seed     int64
}

// NewRandomForest returns defaults suitable for pair matching.
func NewRandomForest() *RandomForest { return &RandomForest{Trees: 15, MaxDepth: 8, Seed: 4} }

// Train implements Trainer.
func (t *RandomForest) Train(examples []Example) Classifier {
	m := &RandomForestModel{}
	if len(examples) == 0 {
		return m
	}
	rng := rand.New(rand.NewSource(t.Seed))
	for k := 0; k < t.Trees; k++ {
		// Bootstrap sample.
		sample := make([]Example, len(examples))
		for i := range sample {
			sample[i] = examples[rng.Intn(len(examples))]
		}
		dt := &DecisionTree{
			MaxDepth: t.MaxDepth, MinLeafSize: 3,
			FeatureSubset: 4, Seed: rng.Int63(),
		}
		m.trees = append(m.trees, dt.Train(sample).(*DecisionTreeModel))
	}
	return m
}
