// Package model defines the record, certificate, and role vocabulary shared
// by every stage of the SNAPS pipeline.
//
// A certificate (birth, death, or marriage) mentions several people, each in
// a distinct role: a birth certificate names the baby and its parents, a
// death certificate names the deceased, their parents, and possibly a
// spouse, and a marriage certificate names the bride, the groom, and their
// parents. SNAPS extracts one Record per role occurrence; entity resolution
// then clusters records that refer to the same real-world person.
package model

import (
	"fmt"

	"github.com/snaps/snaps/internal/symbol"
)

// CertType identifies the kind of vital-event certificate a record was
// extracted from.
type CertType uint8

// Certificate kinds. Census is the household-snapshot extension the paper
// lists as future work (Sec. 12); a census "certificate" is one household
// entry of a decennial enumeration.
const (
	Birth CertType = iota
	Death
	Marriage
	Census
)

// String returns the conventional single-letter abbreviation used by the
// paper (B, D, M) plus C for census households.
func (c CertType) String() string {
	switch c {
	case Birth:
		return "B"
	case Death:
		return "D"
	case Marriage:
		return "M"
	case Census:
		return "C"
	}
	return fmt.Sprintf("CertType(%d)", uint8(c))
}

// Role identifies the function a person fulfils on a certificate. The
// two-letter codes follow the paper: the first letter is the certificate
// type, the second the role on it.
type Role uint8

// Roles on birth (B*), death (D*), and marriage (M*) certificates.
const (
	// Birth certificate roles.
	Bb Role = iota // baby
	Bm             // mother of the baby
	Bf             // father of the baby

	// Death certificate roles.
	Dd // deceased person
	Dm // mother of the deceased
	Df // father of the deceased
	Ds // spouse of the deceased (optional)

	// Marriage certificate roles.
	Mm  // groom (marriage male)
	Mf  // bride (marriage female)
	Mmm // groom's mother
	Mmf // groom's father
	Mfm // bride's mother
	Mff // bride's father

	// Census household roles: the male and female household heads and up
	// to six enumerated children. Distinct child roles keep the role→record
	// map of a certificate one-to-one.
	Cf  // census father (male head)
	Cm  // census mother (wife or female head)
	Cc1 // census children, eldest first
	Cc2
	Cc3
	Cc4
	Cc5
	Cc6

	// NumRoles is the number of distinct roles.
	NumRoles
)

var roleNames = [NumRoles]string{
	Bb: "Bb", Bm: "Bm", Bf: "Bf",
	Dd: "Dd", Dm: "Dm", Df: "Df", Ds: "Ds",
	Mm: "Mm", Mf: "Mf", Mmm: "Mmm", Mmf: "Mmf", Mfm: "Mfm", Mff: "Mff",
	Cf: "Cf", Cm: "Cm",
	Cc1: "Cc1", Cc2: "Cc2", Cc3: "Cc3", Cc4: "Cc4", Cc5: "Cc5", Cc6: "Cc6",
}

// CensusChildRoles lists the census child roles in order.
var CensusChildRoles = []Role{Cc1, Cc2, Cc3, Cc4, Cc5, Cc6}

// IsCensusChild reports whether the role is one of the enumerated census
// children.
func (r Role) IsCensusChild() bool { return r >= Cc1 && r <= Cc6 }

// String returns the paper's role code, e.g. "Bb" for a birth baby.
func (r Role) String() string {
	if r < NumRoles {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// CertType reports which certificate kind a role belongs to.
func (r Role) CertType() CertType {
	switch r {
	case Bb, Bm, Bf:
		return Birth
	case Dd, Dm, Df, Ds:
		return Death
	case Mm, Mf, Mmm, Mmf, Mfm, Mff:
		return Marriage
	default:
		return Census
	}
}

// IsParent reports whether the role is a parent role on its certificate.
func (r Role) IsParent() bool {
	switch r {
	case Bm, Bf, Dm, Df, Mmm, Mmf, Mfm, Mff, Cm, Cf:
		return true
	}
	return false
}

// IsPrincipal reports whether the role is the principal subject of its
// certificate (the baby, the deceased, the bride, or the groom).
func (r Role) IsPrincipal() bool {
	switch r {
	case Bb, Dd, Mm, Mf:
		return true
	}
	return false
}

// Gender is the recorded gender of a person on a certificate.
type Gender uint8

// Genders. Unknown is used where the certificate does not determine it.
const (
	GenderUnknown Gender = iota
	Male
	Female
)

// String returns "m", "f", or "?".
func (g Gender) String() string {
	switch g {
	case Male:
		return "m"
	case Female:
		return "f"
	}
	return "?"
}

// RoleGender returns the gender implied by a role, or GenderUnknown when the
// role does not fix it (babies and deceased persons can be either).
func RoleGender(r Role) Gender {
	switch r {
	case Bm, Dm, Mf, Mmm, Mfm, Cm:
		return Female
	case Bf, Df, Mm, Mmf, Mff, Cf:
		return Male
	}
	return GenderUnknown
}

// RecordID uniquely identifies a role occurrence (one Record).
type RecordID int32

// CertID uniquely identifies a certificate.
type CertID int32

// PersonID identifies a ground-truth person in simulated data. It is -1 for
// records whose true identity is unknown.
type PersonID int32

// NoPerson marks a record without ground-truth identity.
const NoPerson PersonID = -1

// Attr enumerates the quasi-identifier (QID) attributes compared by the ER
// process.
type Attr uint8

// QID attributes.
const (
	FirstName Attr = iota
	Surname
	Address
	Occupation
	EventYear // year of the vital event the certificate records
	NumAttrs
)

var attrNames = [NumAttrs]string{
	FirstName: "first_name", Surname: "surname", Address: "address",
	Occupation: "occupation", EventYear: "event_year",
}

// String returns the snake_case attribute name.
func (a Attr) String() string {
	if a < NumAttrs {
		return attrNames[a]
	}
	return fmt.Sprintf("Attr(%d)", uint8(a))
}

// AttrCategory classifies an attribute's importance for the ER process
// (Sec. 4.2.3 of the paper): Must attributes need high similarity, Core
// attributes may differ more, Extra attributes only add evidence.
type AttrCategory uint8

// Attribute categories.
const (
	Must AttrCategory = iota
	Core
	Extra
)

// String returns "must", "core", or "extra".
func (c AttrCategory) String() string {
	switch c {
	case Must:
		return "must"
	case Core:
		return "core"
	}
	return "extra"
}

// CategoryOf returns the default category assignment used by SNAPS: first
// names are Must (complete and stable), surnames are Core (can change at
// marriage), addresses and occupations are Extra (often missing, unstable).
func CategoryOf(a Attr) AttrCategory {
	switch a {
	case FirstName:
		return Must
	case Surname:
		return Core
	default:
		return Extra
	}
}

// Sym aliases the global symbol-table ID so packages constructing records
// need not import internal/symbol separately.
type Sym = symbol.ID

// Intern interns a string attribute value into the global symbol table and
// returns its ID ("" interns to the zero ID).
func Intern(s string) Sym { return symbol.Intern(s) }

// Record is a single occurrence of an individual on a certificate.
//
// The four string QID attributes are integer-coded: each field holds a
// symbol-table ID (internal/symbol) instead of a string, so a record costs
// 16 bytes of attribute state regardless of value length and duplicate
// values across records share one set of backing bytes. Read them through
// FirstName()/Surname()/Address()/Occupation() or Value(); compare for
// exact equality directly on the IDs.
type Record struct {
	ID     RecordID
	Cert   CertID
	Role   Role
	Gender Gender

	First Sym // first (given) name
	Sur   Sym // surname
	Addr  Sym // address
	Occ   Sym // occupation

	// Year is the year of the vital event (birth, death, or marriage) the
	// certificate records, not necessarily the person's birth year.
	Year int

	// Lat, Lon geocode the address when geocoding is available (IOS data
	// set); both are zero when unavailable.
	Lat, Lon float64

	// BirthHint is the person's birth year implied by a recorded age
	// (death certificates record age at death, census enumerations record
	// age); 0 when no age was recorded. It is a hint, not a fact: recorded
	// ages are rounded and mis-stated, so constraints apply it with slack.
	BirthHint int

	// Truth is the ground-truth person this record refers to, or NoPerson.
	Truth PersonID
}

// FirstName resolves the record's first name through the symbol table.
func (r *Record) FirstName() string { return symbol.Str(r.First) }

// Surname resolves the record's surname through the symbol table.
func (r *Record) Surname() string { return symbol.Str(r.Sur) }

// Address resolves the record's address through the symbol table.
func (r *Record) Address() string { return symbol.Str(r.Addr) }

// Occupation resolves the record's occupation through the symbol table.
func (r *Record) Occupation() string { return symbol.Str(r.Occ) }

// Sym returns the record's symbol ID for a string QID attribute (None for
// EventYear, which has no interned representation).
func (r *Record) Sym(a Attr) Sym {
	switch a {
	case FirstName:
		return r.First
	case Surname:
		return r.Sur
	case Address:
		return r.Addr
	case Occupation:
		return r.Occ
	}
	return symbol.None
}

// Value returns the record's value for a string QID attribute, or the
// decimal year for EventYear. Missing values are empty strings.
func (r *Record) Value(a Attr) string {
	switch a {
	case FirstName:
		return symbol.Str(r.First)
	case Surname:
		return symbol.Str(r.Sur)
	case Address:
		return symbol.Str(r.Addr)
	case Occupation:
		return symbol.Str(r.Occ)
	case EventYear:
		if r.Year == 0 {
			return ""
		}
		return fmt.Sprintf("%d", r.Year)
	}
	return ""
}

// Certificate groups the records extracted from one certificate. Absent
// roles (e.g. an unmarried deceased's spouse) have RecordID -1.
type Certificate struct {
	ID   CertID
	Type CertType
	Year int
	// Roles maps every role present on the certificate to its record.
	Roles map[Role]RecordID
	// Cause is the cause of death for death certificates (used by the
	// anonymisation step), empty otherwise.
	Cause string
	// Age is the deceased person's recorded age at death on death
	// certificates, -1 when absent.
	Age int
}

// Relationship labels an edge between two roles on the same certificate or
// between two entities in the pedigree graph.
type Relationship uint8

// Relationship kinds, following the paper: motherOf, fatherOf, spouseOf,
// childOf.
const (
	MotherOf Relationship = iota
	FatherOf
	SpouseOf
	ChildOf
	NumRelationships
)

var relNames = [NumRelationships]string{
	MotherOf: "Mof", FatherOf: "Fof", SpouseOf: "Sof", ChildOf: "Cof",
}

// String returns the paper's abbreviation (Mof, Fof, Sof, Cof).
func (rel Relationship) String() string {
	if rel < NumRelationships {
		return relNames[rel]
	}
	return fmt.Sprintf("Relationship(%d)", uint8(rel))
}

// Inverse returns the relationship seen from the other endpoint: the inverse
// of motherOf/fatherOf is childOf; spouseOf is symmetric; the inverse of
// childOf is reported as MotherOf-or-FatherOf and must be refined by the
// caller using the parent's gender, so Inverse returns SpouseOf for SpouseOf,
// ChildOf for the two parent relations, and panics for ChildOf, which has no
// unique inverse.
func (rel Relationship) Inverse(parentGender Gender) Relationship {
	switch rel {
	case MotherOf, FatherOf:
		return ChildOf
	case SpouseOf:
		return SpouseOf
	case ChildOf:
		if parentGender == Female {
			return MotherOf
		}
		return FatherOf
	}
	panic("model: invalid relationship")
}

// CertRelations lists, for a certificate type, the directed relationships
// among roles on a single certificate. The tuple (From, To, Rel) means
// "From is Rel of To" (e.g. Bm is MotherOf Bb).
type CertRelation struct {
	From, To Role
	Rel      Relationship
}

// RelationsFor returns the intra-certificate relationships for a certificate
// type. The returned slice must not be modified.
func RelationsFor(t CertType) []CertRelation {
	switch t {
	case Birth:
		return birthRelations
	case Death:
		return deathRelations
	case Marriage:
		return marriageRelations
	case Census:
		return censusRelations
	}
	return nil
}

var (
	birthRelations = []CertRelation{
		{Bm, Bb, MotherOf},
		{Bf, Bb, FatherOf},
		{Bb, Bm, ChildOf},
		{Bb, Bf, ChildOf},
		{Bm, Bf, SpouseOf},
		{Bf, Bm, SpouseOf},
	}
	deathRelations = []CertRelation{
		{Dm, Dd, MotherOf},
		{Df, Dd, FatherOf},
		{Dd, Dm, ChildOf},
		{Dd, Df, ChildOf},
		{Dm, Df, SpouseOf},
		{Df, Dm, SpouseOf},
		{Ds, Dd, SpouseOf},
		{Dd, Ds, SpouseOf},
	}
	censusRelations   = buildCensusRelations()
	marriageRelations = []CertRelation{
		{Mm, Mf, SpouseOf},
		{Mf, Mm, SpouseOf},
		{Mmm, Mm, MotherOf},
		{Mmf, Mm, FatherOf},
		{Mfm, Mf, MotherOf},
		{Mff, Mf, FatherOf},
		{Mm, Mmm, ChildOf},
		{Mm, Mmf, ChildOf},
		{Mf, Mfm, ChildOf},
		{Mf, Mff, ChildOf},
		{Mmm, Mmf, SpouseOf},
		{Mmf, Mmm, SpouseOf},
		{Mfm, Mff, SpouseOf},
		{Mff, Mfm, SpouseOf},
	}
)

// buildCensusRelations expands the head-spouse-children relations over the
// six child slots.
func buildCensusRelations() []CertRelation {
	rels := []CertRelation{
		{Cm, Cf, SpouseOf},
		{Cf, Cm, SpouseOf},
	}
	for _, cc := range CensusChildRoles {
		rels = append(rels,
			CertRelation{Cm, cc, MotherOf},
			CertRelation{Cf, cc, FatherOf},
			CertRelation{cc, Cm, ChildOf},
			CertRelation{cc, Cf, ChildOf},
		)
	}
	return rels
}

// RolePair is an unordered pair of roles used to classify candidate links
// (e.g. Bb-Dd: a baby linking to a deceased person). The smaller role is
// stored first so pairs compare regardless of argument order.
type RolePair struct {
	A, B Role
}

// MakeRolePair returns the canonical (ordered) role pair for two roles.
func MakeRolePair(a, b Role) RolePair {
	if b < a {
		a, b = b, a
	}
	return RolePair{a, b}
}

// String returns e.g. "Bb-Dd".
func (p RolePair) String() string { return p.A.String() + "-" + p.B.String() }

// Dataset is a fully extracted data set: certificates and their role
// records, plus optional ground truth.
type Dataset struct {
	Name         string
	Certificates []Certificate
	Records      []Record
}

// Record returns the record with the given id. IDs are dense indices into
// the Records slice.
func (d *Dataset) Record(id RecordID) *Record { return &d.Records[id] }

// Clone returns a copy of the data set whose Records and Certificates
// slices are independent of d, so records and certificates can be appended
// to the clone while readers keep using d. Certificate role maps are shared:
// they are never mutated after a certificate is created, so sharing them is
// safe and keeps cloning O(records) rather than O(records + roles).
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		Name:         d.Name,
		Certificates: append([]Certificate(nil), d.Certificates...),
		Records:      append([]Record(nil), d.Records...),
	}
}

// RecordsByRole returns the ids of all records holding any of the given
// roles.
func (d *Dataset) RecordsByRole(roles ...Role) []RecordID {
	want := [NumRoles]bool{}
	for _, r := range roles {
		want[r] = true
	}
	var out []RecordID
	for i := range d.Records {
		if want[d.Records[i].Role] {
			out = append(out, d.Records[i].ID)
		}
	}
	return out
}

// TruePairs returns the set of ground-truth matching record pairs restricted
// to the given role pair, keyed by canonical PairKey. Records without truth
// are skipped.
func (d *Dataset) TruePairs(rp RolePair) map[PairKey]bool {
	byPerson := map[PersonID][]RecordID{}
	for i := range d.Records {
		rec := &d.Records[i]
		if rec.Truth == NoPerson {
			continue
		}
		if rec.Role == rp.A || rec.Role == rp.B {
			byPerson[rec.Truth] = append(byPerson[rec.Truth], rec.ID)
		}
	}
	out := map[PairKey]bool{}
	for _, ids := range byPerson {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := d.Records[ids[i]], d.Records[ids[j]]
				if MakeRolePair(a.Role, b.Role) != rp {
					continue
				}
				out[MakePairKey(ids[i], ids[j])] = true
			}
		}
	}
	return out
}

// PairKey canonically identifies an unordered record pair.
type PairKey uint64

// MakePairKey returns the canonical key for an unordered record pair.
func MakePairKey(a, b RecordID) PairKey {
	if b < a {
		a, b = b, a
	}
	return PairKey(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

// Split returns the two record ids of a pair key (smaller first).
func (k PairKey) Split() (RecordID, RecordID) {
	return RecordID(k >> 32), RecordID(k & 0xffffffff)
}
