package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoleStringAndCertType(t *testing.T) {
	cases := map[Role]struct {
		s string
		c CertType
	}{
		Bb: {"Bb", Birth}, Bm: {"Bm", Birth}, Bf: {"Bf", Birth},
		Dd: {"Dd", Death}, Dm: {"Dm", Death}, Df: {"Df", Death}, Ds: {"Ds", Death},
		Mm: {"Mm", Marriage}, Mf: {"Mf", Marriage},
		Mmm: {"Mmm", Marriage}, Mmf: {"Mmf", Marriage},
		Mfm: {"Mfm", Marriage}, Mff: {"Mff", Marriage},
	}
	for r, want := range cases {
		if r.String() != want.s {
			t.Errorf("Role %d String = %q, want %q", r, r.String(), want.s)
		}
		if r.CertType() != want.c {
			t.Errorf("Role %v CertType = %v, want %v", r, r.CertType(), want.c)
		}
	}
}

func TestRoleClassification(t *testing.T) {
	parents := []Role{Bm, Bf, Dm, Df, Mmm, Mmf, Mfm, Mff}
	principals := []Role{Bb, Dd, Mm, Mf}
	for _, r := range parents {
		if !r.IsParent() {
			t.Errorf("%v should be a parent role", r)
		}
		if r.IsPrincipal() {
			t.Errorf("%v should not be principal", r)
		}
	}
	for _, r := range principals {
		if !r.IsPrincipal() {
			t.Errorf("%v should be principal", r)
		}
	}
	if Ds.IsParent() || Ds.IsPrincipal() {
		t.Error("Ds is neither parent nor principal")
	}
}

func TestRoleGender(t *testing.T) {
	females := []Role{Bm, Dm, Mf, Mmm, Mfm}
	males := []Role{Bf, Df, Mm, Mmf, Mff}
	neutral := []Role{Bb, Dd, Ds}
	for _, r := range females {
		if RoleGender(r) != Female {
			t.Errorf("%v should imply female", r)
		}
	}
	for _, r := range males {
		if RoleGender(r) != Male {
			t.Errorf("%v should imply male", r)
		}
	}
	for _, r := range neutral {
		if RoleGender(r) != GenderUnknown {
			t.Errorf("%v should imply no gender", r)
		}
	}
}

func TestRelationshipInverse(t *testing.T) {
	if MotherOf.Inverse(Female) != ChildOf || FatherOf.Inverse(Male) != ChildOf {
		t.Error("parent relations invert to ChildOf")
	}
	if SpouseOf.Inverse(Male) != SpouseOf {
		t.Error("SpouseOf is symmetric")
	}
	if ChildOf.Inverse(Female) != MotherOf || ChildOf.Inverse(Male) != FatherOf {
		t.Error("ChildOf inverts by parent gender")
	}
}

func TestRelationsForClosedUnderInverse(t *testing.T) {
	// Every MotherOf/FatherOf relation on a certificate must have the
	// corresponding ChildOf back-relation, and SpouseOf must be symmetric.
	for _, ct := range []CertType{Birth, Death, Marriage} {
		rels := RelationsFor(ct)
		has := func(from, to Role, rel Relationship) bool {
			for _, r := range rels {
				if r.From == from && r.To == to && r.Rel == rel {
					return true
				}
			}
			return false
		}
		for _, r := range rels {
			switch r.Rel {
			case MotherOf, FatherOf:
				if !has(r.To, r.From, ChildOf) {
					t.Errorf("%v: %v-%v lacks ChildOf inverse", ct, r.From, r.To)
				}
			case SpouseOf:
				if !has(r.To, r.From, SpouseOf) {
					t.Errorf("%v: SpouseOf %v-%v not symmetric", ct, r.From, r.To)
				}
			}
		}
	}
}

func TestMakeRolePairCanonical(t *testing.T) {
	if MakeRolePair(Dd, Bb) != MakeRolePair(Bb, Dd) {
		t.Error("role pairs not canonical")
	}
	if MakeRolePair(Bb, Dd).String() != "Bb-Dd" {
		t.Errorf("String = %q", MakeRolePair(Bb, Dd).String())
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(a, b int32) bool {
		ra, rb := RecordID(a&0x7fffffff), RecordID(b&0x7fffffff)
		k := MakePairKey(ra, rb)
		x, y := k.Split()
		lo, hi := ra, rb
		if hi < lo {
			lo, hi = hi, lo
		}
		return x == lo && y == hi
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Int31())
		v[1] = reflect.ValueOf(r.Int31())
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRecordValue(t *testing.T) {
	r := Record{First: Intern("mary"), Sur: Intern("smith"), Addr: Intern("5 uig"),
		Occ: Intern("crofter"), Year: 1870}
	cases := map[Attr]string{
		FirstName: "mary", Surname: "smith", Address: "5 uig",
		Occupation: "crofter", EventYear: "1870",
	}
	for a, want := range cases {
		if got := r.Value(a); got != want {
			t.Errorf("Value(%v) = %q, want %q", a, got, want)
		}
	}
	empty := Record{}
	if empty.Value(EventYear) != "" {
		t.Error("zero year should be empty")
	}
}

func TestCategoryOf(t *testing.T) {
	if CategoryOf(FirstName) != Must || CategoryOf(Surname) != Core ||
		CategoryOf(Address) != Extra || CategoryOf(Occupation) != Extra {
		t.Error("default attribute categories wrong")
	}
}

func TestDatasetRecordsByRole(t *testing.T) {
	d := Dataset{Records: []Record{
		{ID: 0, Role: Bb}, {ID: 1, Role: Bm}, {ID: 2, Role: Dd}, {ID: 3, Role: Bm},
	}}
	got := d.RecordsByRole(Bm)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("RecordsByRole(Bm) = %v", got)
	}
	both := d.RecordsByRole(Bb, Dd)
	if len(both) != 2 {
		t.Errorf("RecordsByRole(Bb,Dd) = %v", both)
	}
}

func TestTruePairs(t *testing.T) {
	d := Dataset{Records: []Record{
		{ID: 0, Role: Bm, Truth: 7},
		{ID: 1, Role: Bm, Truth: 7},
		{ID: 2, Role: Bm, Truth: 8},
		{ID: 3, Role: Dm, Truth: 7},
		{ID: 4, Role: Bm, Truth: NoPerson},
	}}
	bmbm := d.TruePairs(MakeRolePair(Bm, Bm))
	if len(bmbm) != 1 || !bmbm[MakePairKey(0, 1)] {
		t.Errorf("Bm-Bm pairs = %v", bmbm)
	}
	bmdm := d.TruePairs(MakeRolePair(Bm, Dm))
	if len(bmdm) != 2 {
		t.Errorf("Bm-Dm pairs = %v, want (0,3) and (1,3)", bmdm)
	}
}

func TestGenderString(t *testing.T) {
	if Male.String() != "m" || Female.String() != "f" || GenderUnknown.String() != "?" {
		t.Error("gender strings wrong")
	}
}

func TestCertTypeString(t *testing.T) {
	if Birth.String() != "B" || Death.String() != "D" || Marriage.String() != "M" {
		t.Error("cert type strings wrong")
	}
}

func TestCensusRoles(t *testing.T) {
	if Census.String() != "C" {
		t.Error("census cert type string")
	}
	for _, r := range []Role{Cf, Cm, Cc1, Cc6} {
		if r.CertType() != Census {
			t.Errorf("%v should belong to Census", r)
		}
	}
	if RoleGender(Cf) != Male || RoleGender(Cm) != Female || RoleGender(Cc1) != GenderUnknown {
		t.Error("census role genders wrong")
	}
	if !Cf.IsParent() || !Cm.IsParent() || Cc1.IsParent() {
		t.Error("census parent classification wrong")
	}
	for i, cc := range CensusChildRoles {
		if !cc.IsCensusChild() {
			t.Errorf("child role %d not classified as census child", i)
		}
	}
	if Cf.IsCensusChild() || Bb.IsCensusChild() {
		t.Error("non-child roles classified as census children")
	}
}

func TestCensusRelations(t *testing.T) {
	rels := RelationsFor(Census)
	if len(rels) != 2+4*len(CensusChildRoles) {
		t.Fatalf("census relations = %d, want %d", len(rels), 2+4*len(CensusChildRoles))
	}
	// Heads are spouses both ways.
	foundSpouse := 0
	for _, r := range rels {
		if r.Rel == SpouseOf {
			foundSpouse++
		}
	}
	if foundSpouse != 2 {
		t.Errorf("census spouse relations = %d, want 2", foundSpouse)
	}
}
