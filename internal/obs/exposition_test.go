package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file is the repo's stand-in for promtool check-metrics: a real
// parser for the two exposition formats we emit, run over a fully
// populated registry. It enforces the grammar a scraper relies on —
// HELP/TYPE ordering, contiguous families, label-value escaping, monotone
// cumulative histogram buckets, exemplar syntax — rather than spot-checking
// substrings.

// expoSample is one parsed non-comment line.
type expoSample struct {
	name     string // sample name incl. suffixes (_bucket, _total, ...)
	labels   map[string]string
	value    float64
	exemplar string // raw exemplar clause after " # ", "" if none
}

// expoFamily groups one family's header and samples, in output order.
type expoFamily struct {
	name    string // name from HELP/TYPE
	help    bool
	typ     string
	samples []expoSample
}

// parseExpo validates the whole document line by line and returns the
// families in order. openMetrics toggles the stricter OM checks (exemplars
// allowed, `# EOF` required).
func parseExpo(t *testing.T, doc string, openMetrics bool) []*expoFamily {
	t.Helper()
	lines := strings.Split(doc, "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		t.Fatal("exposition does not end with a newline")
	}
	lines = lines[:len(lines)-1]

	if openMetrics {
		if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
			t.Fatal("OpenMetrics exposition does not end with # EOF")
		}
		lines = lines[:len(lines)-1]
	}

	var fams []*expoFamily
	byName := map[string]*expoFamily{}
	var cur *expoFamily
	pendingHelp := "" // HELP seen, TYPE not yet

	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendingHelp != "" {
				t.Fatalf("two HELP lines in a row (second for %q)", line)
			}
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("HELP line without text: %q", line)
			}
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := fields[0], fields[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown TYPE %q in %q", typ, line)
			}
			if pendingHelp != "" && pendingHelp != name {
				t.Fatalf("HELP for %q immediately before TYPE for %q", pendingHelp, name)
			}
			if byName[name] != nil {
				t.Fatalf("family %q appears twice — families must be contiguous", name)
			}
			cur = &expoFamily{name: name, help: pendingHelp != "", typ: typ}
			pendingHelp = ""
			fams = append(fams, cur)
			byName[name] = cur
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line %q", line)
		default:
			if pendingHelp != "" {
				t.Fatalf("HELP for %q not followed by TYPE", pendingHelp)
			}
			s := parseSampleLine(t, line)
			if s.exemplar != "" && !openMetrics {
				t.Fatalf("exemplar in 0.0.4 exposition: %q", line)
			}
			if cur == nil || !sampleBelongs(cur, s.name, openMetrics) {
				t.Fatalf("sample %q outside its family header (current family %v)", line, cur)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	if pendingHelp != "" {
		t.Fatalf("trailing HELP for %q without TYPE", pendingHelp)
	}
	return fams
}

// sampleBelongs reports whether a sample name is legal under the family
// header: the bare name, histogram suffixes for histogram families, and —
// in OpenMetrics — the `_total` suffix for counter families.
func sampleBelongs(f *expoFamily, sample string, openMetrics bool) bool {
	if f.typ == "histogram" {
		switch sample {
		case f.name + "_bucket", f.name + "_sum", f.name + "_count":
			return true
		}
		return false
	}
	if openMetrics && f.typ == "counter" {
		return sample == f.name+"_total"
	}
	return sample == f.name
}

// parseSampleLine parses `name{labels} value` with an optional
// ` # {labels} value ts` exemplar clause, validating label escaping.
func parseSampleLine(t *testing.T, line string) expoSample {
	t.Helper()
	s := expoSample{labels: map[string]string{}}
	rest := line

	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		t.Fatalf("sample line without value: %q", line)
	}
	s.name = rest[:i]
	if !validFamily(s.name) {
		t.Fatalf("invalid sample name %q in %q", s.name, line)
	}
	if rest[i] == '{' {
		var ok bool
		rest, ok = parseLabelSet(t, rest[i+1:], s.labels, line)
		if !ok || !strings.HasPrefix(rest, " ") {
			t.Fatalf("malformed label set in %q", line)
		}
		rest = rest[1:]
	} else {
		rest = rest[i+1:]
	}

	valueStr := rest
	if j := strings.Index(rest, " # "); j >= 0 {
		valueStr, s.exemplar = rest[:j], rest[j+3:]
		validateExemplar(t, s.exemplar, line)
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		t.Fatalf("unparseable value %q in %q: %v", valueStr, line, err)
	}
	s.value = v
	return s
}

// parseLabelSet consumes `name="value",...}` from rest (the '{' already
// eaten), unescaping values into out. Returns the remainder after '}'.
func parseLabelSet(t *testing.T, rest string, out map[string]string, line string) (string, bool) {
	t.Helper()
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			return rest, false
		}
		name := rest[:eq]
		if !validFamily(name) {
			t.Fatalf("invalid label name %q in %q", name, line)
		}
		rest = rest[eq+2:]
		var val strings.Builder
		for {
			if rest == "" {
				return rest, false
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\n' {
				t.Fatalf("raw newline inside label value in %q", line)
			}
			if c == '\\' {
				if len(rest) < 2 {
					return rest, false
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("illegal escape \\%c in %q", rest[1], line)
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		out[name] = val.String()
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], true
		}
		return rest, false
	}
}

// validateExemplar checks the OpenMetrics exemplar grammar:
// {trace_id="..."} value timestamp.
func validateExemplar(t *testing.T, ex, line string) {
	t.Helper()
	if !strings.HasPrefix(ex, "{") {
		t.Fatalf("exemplar without label set in %q", line)
	}
	labels := map[string]string{}
	rest, ok := parseLabelSet(t, ex[1:], labels, line)
	if !ok {
		t.Fatalf("malformed exemplar labels in %q", line)
	}
	if labels["trace_id"] == "" {
		t.Fatalf("exemplar lacks trace_id in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		t.Fatalf("exemplar wants `value timestamp`, got %q in %q", rest, line)
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			t.Fatalf("unparseable exemplar field %q in %q", f, line)
		}
	}
}

// populate builds a registry exercising every metric kind, labeled vecs,
// escaping-hostile label values, and exemplars.
func populate(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("conf_plain_total", "A plain counter.").Add(7)
	r.Gauge("conf_depth", "An int gauge.").Set(3)
	r.FloatGauge("conf_ratio", "A float gauge.").Set(0.25)

	cv := r.CounterVec("conf_requests_total", "A labeled counter.", "route", "code")
	cv.With("/api/search", "2xx").Add(5)
	cv.With("/api/search", "4xx").Inc()
	cv.With(`we"ird\pa`+"\n"+`th`, "5xx").Inc() // escaping-hostile value

	hv := r.HistogramVec("conf_latency_seconds", "A labeled histogram.", LatencyBuckets, "route")
	h := hv.With("/api/search")
	h.ObserveExemplar(3e-6, "0123456789abcdef")
	h.ObserveExemplar(100e-6, "fedcba9876543210")
	h.Observe(250) // above the last bound: +Inf bucket

	r.Histogram("conf_linear_seconds", "An unlabelled linear histogram.", DefBuckets).Observe(0.2)
	return r
}

func renderedDocs(t *testing.T) (classic, om string) {
	t.Helper()
	r := populate(t)
	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	return a.String(), b.String()
}

func TestExpositionConformance(t *testing.T) {
	classic, om := renderedDocs(t)

	for _, tc := range []struct {
		mode string
		doc  string
		open bool
	}{{"text-0.0.4", classic, false}, {"openmetrics-1.0", om, true}} {
		t.Run(tc.mode, func(t *testing.T) {
			fams := parseExpo(t, tc.doc, tc.open)
			byName := map[string]*expoFamily{}
			for _, f := range fams {
				byName[f.name] = f
				if !f.help {
					t.Errorf("family %s has no HELP line", f.name)
				}
			}

			counterFam := "conf_requests_total"
			if tc.open {
				counterFam = "conf_requests" // OM strips _total in HELP/TYPE
				if byName["conf_requests_total"] != nil {
					t.Error("OpenMetrics kept _total on the counter family header")
				}
			}
			cf := byName[counterFam]
			if cf == nil || cf.typ != "counter" {
				t.Fatalf("counter family %s missing or mistyped: %+v", counterFam, cf)
			}

			// Label escaping round-trips the hostile value.
			found := false
			for _, s := range cf.samples {
				if s.labels["route"] == `we"ird\pa`+"\n"+`th` {
					found = true
					if s.value != 1 {
						t.Errorf("escaped series value = %v, want 1", s.value)
					}
				}
			}
			if !found {
				t.Error("escaping-hostile label value did not round-trip")
			}

			// Histogram invariants: buckets cumulative and monotone, +Inf
			// present, sum/count consistent with the family.
			hf := byName["conf_latency_seconds"]
			if hf == nil || hf.typ != "histogram" {
				t.Fatalf("histogram family missing or mistyped: %+v", hf)
			}
			checkHistogram(t, hf, "/api/search", 3)

			// Exemplars: present on the OM bucket lines that received
			// sampled observations, absent from classic text.
			exemplars := 0
			for _, s := range hf.samples {
				if s.exemplar != "" {
					if s.name != hf.name+"_bucket" {
						t.Errorf("exemplar on non-bucket sample %s", s.name)
					}
					exemplars++
				}
			}
			if tc.open && exemplars < 2 {
				t.Errorf("OpenMetrics exposition has %d exemplars, want >= 2", exemplars)
			}
			if !tc.open && exemplars != 0 {
				t.Errorf("classic exposition has %d exemplars, want 0", exemplars)
			}
		})
	}
}

// checkHistogram verifies cumulative monotonicity and the bucket/sum/count
// relationship for one label set of a histogram family.
func checkHistogram(t *testing.T, f *expoFamily, route string, wantCount float64) {
	t.Helper()
	prev := math.Inf(-1)
	var infVal, countVal float64
	var sawInf, sawCount bool
	for _, s := range f.samples {
		if s.labels["route"] != route && !(route == "" && len(s.labels) == 0) {
			continue
		}
		switch s.name {
		case f.name + "_bucket":
			le := s.labels["le"]
			if le == "" {
				t.Fatalf("bucket sample without le label: %+v", s)
			}
			if s.value < prev {
				t.Fatalf("bucket le=%s value %v below previous %v — not cumulative", le, s.value, prev)
			}
			prev = s.value
			if le == "+Inf" {
				infVal, sawInf = s.value, true
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("unparseable le bound %q", le)
			}
		case f.name + "_count":
			countVal, sawCount = s.value, true
		}
	}
	if !sawInf || !sawCount {
		t.Fatalf("histogram %s{route=%q} missing +Inf bucket or count", f.name, route)
	}
	if infVal != countVal {
		t.Errorf("+Inf bucket %v != count %v", infVal, countVal)
	}
	if countVal != wantCount {
		t.Errorf("count = %v, want %v", countVal, wantCount)
	}
}

// TestExpositionBucketOrdering pins that le bounds appear in ascending
// order within one label set — scrapers binary-search on that.
func TestExpositionBucketOrdering(t *testing.T) {
	_, om := renderedDocs(t)
	prev := -1.0
	for _, line := range strings.Split(om, "\n") {
		if !strings.HasPrefix(line, "conf_latency_seconds_bucket") {
			continue
		}
		s := parseSampleLine(t, line)
		le := s.labels["le"]
		if le == "+Inf" {
			prev = math.Inf(1)
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le %q", le)
		}
		if b <= prev {
			t.Fatalf("le bounds out of order: %v after %v", b, prev)
		}
		prev = b
	}
	if prev != math.Inf(1) {
		t.Fatal("+Inf bucket is not last")
	}
}

// TestExemplarTimestampRecent pins the exemplar timestamp is unix seconds,
// not nanos or millis.
func TestExemplarTimestampRecent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ts_seconds", "h", LatencyBuckets)
	h.ObserveExemplar(1e-6, "abc")
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.Contains(line, " # ") {
			continue
		}
		fields := strings.Fields(line[strings.Index(line, " # ")+3:])
		ts, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		now := float64(time.Now().UnixNano()) / 1e9
		if math.Abs(now-ts) > 60 {
			t.Fatalf("exemplar timestamp %v not within a minute of now %v — wrong unit?", ts, now)
		}
		return
	}
	t.Fatal("no exemplar emitted")
}
