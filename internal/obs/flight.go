package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
	"sync"
)

// Flight-recorder metrics in the default registry.
var (
	mFlightRecords = Default.Counter("snaps_flight_records_total",
		"Requests written to the flight recorder.")
	mFlightSampledOut = Default.Counter("snaps_flight_sampled_out_total",
		"Requests skipped by the flight recorder's sampling ratio.")
	mFlightDroppedBytes = Default.Counter("snaps_flight_dropped_bytes_total",
		"Requests dropped because the flight log reached its size cap.")
	mFlightErrors = Default.Counter("snaps_flight_errors_total",
		"Requests dropped because a flight-log write failed.")
	mFlightBytes = Default.Gauge("snaps_flight_bytes",
		"Current size of the flight log in bytes (header plus records).")
)

// flightMagic is the header line of a flight log, following the same
// versioned-magic-header discipline as the ingestion WAL (SNAPSWALv01):
// unknown versions are rejected instead of misinterpreted.
const flightMagic = "SNAPSFLTv01"

// FlightRecord is one recorded request: everything replay needs to re-issue
// it (route, query parameters, body) plus the outcome telemetry a
// comparison wants (status, latency, generation, cache and shed outcomes).
// Offsets are relative to the first record so a replay can reproduce the
// recorded pacing without keeping absolute wall-clock times on disk.
type FlightRecord struct {
	OffsetUs int64  `json:"t_us"`          // µs since the first record
	Route    string `json:"route"`         // mux pattern, e.g. /api/search
	Key      string `json:"key,omitempty"` // FNV-64a of the query identity, for grouping

	// Replayable request payload. The corpus the queries address is already
	// pseudonymized upstream, so the parameters themselves are the
	// anonymized form; Key adds a stable grouping handle.
	First   string `json:"first,omitempty"`
	Surname string `json:"surname,omitempty"`
	Entity  string `json:"entity,omitempty"`
	Body    string `json:"body,omitempty"` // ingest request body, capped by the middleware

	Status     int    `json:"status"`
	Generation uint64 `json:"gen,omitempty"`
	LatencyUs  int64  `json:"lat_us"`
	Cache      string `json:"cache,omitempty"` // hit | stale | miss ("" when not a cached route)
	TraceID    string `json:"trace,omitempty"`

	// Admission outcome, present when the request was shed (status 429/503).
	Shed       string  `json:"shed,omitempty"`       // shed reason
	ShedClass  string  `json:"shed_class,omitempty"` // admission class
	RetryAfter float64 `json:"retry_after,omitempty"`
}

// QueryKey returns the FNV-64a hex digest of a query identity — a stable,
// non-reversible grouping handle for flight records.
func QueryKey(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FlightRecorder is a sampled, size-bounded on-disk request log: one JSON
// record per line after the magic header, same framing and torn-tail
// discipline as the ingestion WAL. Writes are best-effort — a full or
// failing log drops records and counts them, never the request — and cheap
// enough to sit in server middleware (no fsync; this is telemetry, not
// durability).
type FlightRecorder struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	sample   int   // record 1 in sample requests (1 = all)
	maxBytes int64 // size cap; 0 = unbounded
	size     int64
	seq      uint64 // admitted-request counter driving the sampling cadence
	baseUs   int64  // absolute µs timestamp of the first record
}

// NewFlightRecorder creates (truncating) a flight log at path. sample
// records 1 in n requests (values < 1 mean every request); maxBytes caps
// the log size (0 = unbounded), past which records are dropped and counted.
func NewFlightRecorder(path string, sample int, maxBytes int64) (*FlightRecorder, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(flightMagic + "\n"); err != nil {
		f.Close()
		return nil, err
	}
	if sample < 1 {
		sample = 1
	}
	r := &FlightRecorder{f: f, path: path, sample: sample, maxBytes: maxBytes,
		size: int64(len(flightMagic) + 1)}
	mFlightBytes.Set(r.size)
	return r, nil
}

// Sampled reports whether the next request should be recorded, advancing
// the sampling cadence. Callers ask before assembling a record so skipped
// requests pay nothing (and so exemplar capture can share the decision).
func (r *FlightRecorder) Sampled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	if r.seq%uint64(r.sample) != 1 && r.sample > 1 {
		mFlightSampledOut.Inc()
		return false
	}
	return true
}

// Record appends one record. nowUs is the absolute time of the request in
// µs; the recorder rebases it onto the first record's timestamp.
func (r *FlightRecorder) Record(rec FlightRecord, nowUs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return
	}
	if r.baseUs == 0 {
		r.baseUs = nowUs
	}
	rec.OffsetUs = nowUs - r.baseUs
	buf, err := json.Marshal(rec)
	if err != nil {
		mFlightErrors.Inc()
		return
	}
	buf = append(buf, '\n')
	if r.maxBytes > 0 && r.size+int64(len(buf)) > r.maxBytes {
		mFlightDroppedBytes.Inc()
		return
	}
	if _, err := r.f.Write(buf); err != nil {
		mFlightErrors.Inc()
		return
	}
	r.size += int64(len(buf))
	mFlightRecords.Inc()
	mFlightBytes.Set(r.size)
}

// Path returns the flight log's file path.
func (r *FlightRecorder) Path() string { return r.path }

// Close closes the underlying file; later Records are silently dropped.
func (r *FlightRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// ReadFlightLog decodes a flight log. A torn final line — the signature of
// a crash mid-append — is dropped silently, mirroring the WAL reader;
// corruption anywhere else is an error.
func ReadFlightLog(path string) ([]FlightRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	header, err := r.ReadString('\n')
	if err != nil || header != flightMagic+"\n" {
		return nil, fmt.Errorf("obs: %s: bad flight-log header %q (want %q)",
			path, strings.TrimSuffix(header, "\n"), flightMagic)
	}
	var out []FlightRecord
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF && len(line) == 0 {
			break
		}
		torn := err == io.EOF
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("obs: %s: reading flight log: %w", path, err)
		}
		var rec FlightRecord
		if decErr := json.Unmarshal(bytes.TrimSuffix(line, []byte("\n")), &rec); decErr != nil {
			if torn {
				break
			}
			return nil, fmt.Errorf("obs: %s: corrupt flight record %d", path, len(out)+1)
		}
		if torn {
			break
		}
		out = append(out, rec)
	}
	return out, nil
}
