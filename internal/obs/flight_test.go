package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFlightRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.log")
	fr, err := NewFlightRecorder(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []FlightRecord{
		{Route: "/api/search", First: "maria", Surname: "silva",
			Key:    QueryKey("/api/search", "maria", "silva"),
			Status: 200, Generation: 4, LatencyUs: 120, Cache: "hit", TraceID: "abc123"},
		{Route: "/api/pedigree", Entity: "42", Status: 200, LatencyUs: 900},
		{Route: "/api/ingest", Body: `{"records":[]}`, Status: 202, LatencyUs: 50},
		{Route: "/api/search", Status: 429, Shed: "rate", ShedClass: "search", RetryAfter: 0.5},
	}
	base := int64(1_000_000_000)
	for i, r := range recs {
		if !fr.Sampled() {
			t.Fatalf("record %d sampled out at sample=1", i)
		}
		fr.Record(r, base+int64(i)*1000)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	// Offsets are rebased onto the first record.
	for i, r := range got {
		if want := int64(i) * 1000; r.OffsetUs != want {
			t.Errorf("record %d offset %d, want %d", i, r.OffsetUs, want)
		}
	}
	if got[0].First != "maria" || got[0].Cache != "hit" || got[0].Generation != 4 || got[0].TraceID != "abc123" {
		t.Errorf("search record did not round-trip: %+v", got[0])
	}
	if got[2].Body != `{"records":[]}` {
		t.Errorf("ingest body did not round-trip: %q", got[2].Body)
	}
	if got[3].Shed != "rate" || got[3].ShedClass != "search" || got[3].RetryAfter != 0.5 {
		t.Errorf("shed record did not round-trip: %+v", got[3])
	}
}

func TestFlightRecorderSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.log")
	fr, err := NewFlightRecorder(path, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	recorded := 0
	for i := 0; i < 9; i++ {
		if fr.Sampled() {
			recorded++
			fr.Record(FlightRecord{Route: "/api/search", Status: 200}, int64(i+1)*1e6)
		}
	}
	fr.Close()
	if recorded != 3 {
		t.Fatalf("sample=3 recorded %d of 9, want 3", recorded)
	}
	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("log holds %d records, want 3", len(got))
	}
}

func TestFlightRecorderSizeCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.log")
	// Room for the header plus roughly one small record.
	fr, err := NewFlightRecorder(path, 1, 96)
	if err != nil {
		t.Fatal(err)
	}
	before := mFlightDroppedBytes.Value()
	for i := 0; i < 5; i++ {
		fr.Sampled()
		fr.Record(FlightRecord{Route: "/api/search", Status: 200}, int64(i+1)*1e6)
	}
	fr.Close()
	dropped := mFlightDroppedBytes.Value() - before
	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got)+int(dropped) != 5 {
		t.Fatalf("records %d + dropped %d != 5", len(got), dropped)
	}
	if dropped == 0 {
		t.Fatal("size cap never dropped a record")
	}
	if len(got) == 0 {
		t.Fatal("size cap dropped everything — cap too tight for even one record")
	}
}

func TestReadFlightLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.log")
	fr, err := NewFlightRecorder(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fr.Sampled()
	fr.Record(FlightRecord{Route: "/api/search", Status: 200}, 1e6)
	fr.Close()

	// Simulate a crash mid-append: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t_us":12,"route":"/api/sea`)
	f.Close()

	got, err := ReadFlightLog(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got error %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records, want 1 (torn tail dropped)", len(got))
	}
}

func TestReadFlightLogBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.log")
	if err := os.WriteFile(path, []byte("NOTAFLIGHTLOG\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightLog(path); err == nil {
		t.Fatal("bad magic header accepted")
	}
}

func TestReadFlightLogMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.log")
	content := flightMagic + "\n" +
		`{"t_us":0,"route":"/api/search","status":200,"lat_us":10}` + "\n" +
		`not json at all` + "\n" +
		`{"t_us":5,"route":"/api/search","status":200,"lat_us":10}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightLog(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestQueryKeyStability(t *testing.T) {
	a := QueryKey("/api/search", "maria", "silva")
	if b := QueryKey("/api/search", "maria", "silva"); b != a {
		t.Fatal("QueryKey not deterministic")
	}
	if QueryKey("/api/search", "marias", "ilva") == a {
		t.Fatal("QueryKey ignores part boundaries")
	}
	if len(a) != 16 {
		t.Fatalf("QueryKey length %d, want 16 hex chars", len(a))
	}
}
