package obs

import (
	"fmt"
	"strings"
	"sync"
)

// This file holds the labeled metric families ("vecs") of the telemetry
// layer: a HistogramVec or CounterVec owns one metric family plus a fixed,
// ordered set of label NAMES, and hands out the per-label-VALUE series
// lazily. Two properties make them safe on serving hot paths:
//
//   - the fast path is one RLock + one map hit, no label-string rendering;
//   - cardinality is bounded twice over — label names are fixed at
//     construction (callers pass only values drawn from bounded sets: mux
//     route patterns, status classes, shard ids), and the series count is
//     hard-capped. Past the cap, observations land in a shared unexported
//     overflow sink and snaps_obs_dropped_labels_total counts the refusal,
//     so a label-cardinality bug degrades into one counter instead of an
//     unbounded registry.

// DefMaxSeries is the default per-vec series cap. Routes (~15) × status
// classes (4) and shard counts (< 100) sit far below it; anything
// approaching it is a cardinality leak, not a workload.
const DefMaxSeries = 256

// mDroppedLabels counts label sets refused by a vec's series cap.
var mDroppedLabels = Default.Counter("snaps_obs_dropped_labels_total",
	"Label sets refused by a metric vec's series cap; their observations land in an unexported overflow sink.")

// vec is the shared machinery of HistogramVec and CounterVec.
type vec struct {
	reg    *Registry
	family string
	help   string
	names  []string
	max    int

	mu     sync.RWMutex
	series map[string]any
}

// key joins label values with a separator that Label would escape, so two
// distinct value tuples can never collide.
func vecKey(values []string) string { return strings.Join(values, "\x1f") }

func (v *vec) renderLabels(values []string) string {
	if len(values) != len(v.names) {
		panic(fmt.Sprintf("obs: vec %s wants %d label values, got %d",
			v.family, len(v.names), len(values)))
	}
	parts := make([]string, len(values))
	for i, val := range values {
		parts[i] = Label(v.names[i], val)
	}
	return strings.Join(parts, ",")
}

// lookup returns the series for the label values, creating it with mk
// (which registers it) unless the cap is hit, in which case it returns nil
// after counting the drop.
func (v *vec) lookup(values []string, mk func(labels string) any) any {
	k := vecKey(values)
	v.mu.RLock()
	s, ok := v.series[k]
	v.mu.RUnlock()
	if ok {
		return s
	}
	labels := v.renderLabels(values) // panics on arity mismatch before taking the lock
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok = v.series[k]; ok {
		return s
	}
	if len(v.series) >= v.max {
		mDroppedLabels.Inc()
		return nil
	}
	s = mk(labels)
	v.series[k] = s
	return s
}

// HistogramVec is a family of histograms keyed by a bounded label set.
type HistogramVec struct {
	vec
	buckets  []float64
	overflow *Histogram // shared sink for capped label sets; not registered
}

// HistogramVec returns the labeled histogram family registered under
// family, creating it on first use. labelNames fixes the label schema;
// With hands out the per-value series. The series count is capped at
// DefMaxSeries (tune with MaxSeries before first use).
func (r *Registry) HistogramVec(family, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs at least one label name")
	}
	if !validFamily(family) {
		panic(fmt.Sprintf("obs: invalid metric family name %q", family))
	}
	return &HistogramVec{
		vec: vec{reg: r, family: family, help: help,
			names: append([]string(nil), labelNames...),
			max:   DefMaxSeries, series: map[string]any{}},
		buckets:  buckets,
		overflow: newHistogram(buckets),
	}
}

// MaxSeries overrides the series cap; call before the first With.
func (v *HistogramVec) MaxSeries(n int) *HistogramVec {
	if n > 0 {
		v.max = n
	}
	return v
}

// With returns the histogram for the label values (in labelNames order),
// creating and registering it on first use. Past the series cap it returns
// the shared overflow sink — observations still aggregate locally but the
// series never reaches the exposition — and counts the drop.
func (v *HistogramVec) With(values ...string) *Histogram {
	s := v.lookup(values, func(labels string) any {
		return v.reg.Histogram(v.family+"{"+labels+"}", v.help, v.buckets)
	})
	if s == nil {
		return v.overflow
	}
	return s.(*Histogram)
}

// CounterVec is a family of counters keyed by a bounded label set.
type CounterVec struct {
	vec
	overflow *Counter
}

// CounterVec returns the labeled counter family registered under family,
// creating it on first use; same schema and cap rules as HistogramVec.
func (r *Registry) CounterVec(family, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("obs: CounterVec needs at least one label name")
	}
	if !validFamily(family) {
		panic(fmt.Sprintf("obs: invalid metric family name %q", family))
	}
	return &CounterVec{
		vec: vec{reg: r, family: family, help: help,
			names: append([]string(nil), labelNames...),
			max:   DefMaxSeries, series: map[string]any{}},
		overflow: &Counter{},
	}
}

// MaxSeries overrides the series cap; call before the first With.
func (v *CounterVec) MaxSeries(n int) *CounterVec {
	if n > 0 {
		v.max = n
	}
	return v
}

// With returns the counter for the label values, creating and registering
// it on first use; past the cap it returns the shared overflow sink and
// counts the drop.
func (v *CounterVec) With(values ...string) *Counter {
	s := v.lookup(values, func(labels string) any {
		return v.reg.Counter(v.family+"{"+labels+"}", v.help)
	})
	if s == nil {
		return v.overflow
	}
	return s.(*Counter)
}
