package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 2, 5)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6, 16e-6}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { LogBuckets(0, 2, 5) },
		func() { LogBuckets(1e-6, 1, 5) },
		func() { LogBuckets(1e-6, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("LogBuckets accepted invalid arguments")
				}
			}()
			bad()
		}()
	}
}

// Log-spaced layouts must interpolate quantiles geometrically — the same
// bounded-relative-error math as internal/load's HDR histogram — while
// linear layouts (DefBuckets) keep Prometheus-style linear interpolation.
func TestQuantileGeometricOnLogBuckets(t *testing.T) {
	h := newHistogram(LogBuckets(1e-6, 2, 27))
	if h.growth == 0 {
		t.Fatal("log-spaced layout not detected")
	}
	// All observations land in the bucket (64µs, 128µs]; the median must be
	// the geometric midpoint of the bucket, not the arithmetic one.
	for i := 0; i < 100; i++ {
		h.Observe(100e-6)
	}
	got := h.Quantile(0.5)
	want := 64e-6 * math.Pow(2, 0.5) // lo * (hi/lo)^0.5
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("geometric median = %g, want %g", got, want)
	}

	// DefBuckets are not constant-ratio: they must stay linear.
	if lh := newHistogram(DefBuckets); lh.growth != 0 {
		t.Errorf("DefBuckets detected as log-spaced (growth %g)", lh.growth)
	}
	if lh := newHistogram(CountBuckets); lh.growth != 0 {
		t.Errorf("CountBuckets detected as log-spaced (growth %g)", lh.growth)
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := newHistogram(LogBuckets(1e-6, 2, 10))
	h.ObserveExemplar(3e-6, "deadbeef00000001")
	h.ObserveExemplar(5e-6, "") // untraced: no exemplar
	i := 2                      // 3e-6 lands in (2e-6, 4e-6]
	ex := h.BucketExemplar(i)
	if ex == nil || ex.TraceID != "deadbeef00000001" || ex.Value != 3e-6 {
		t.Fatalf("bucket exemplar = %+v", ex)
	}
	// Latest-wins within a bucket.
	h.ObserveExemplar(3.5e-6, "deadbeef00000002")
	if ex := h.BucketExemplar(i); ex == nil || ex.TraceID != "deadbeef00000002" {
		t.Fatalf("exemplar not overwritten: %+v", ex)
	}
	if ex := h.BucketExemplar(99); ex != nil {
		t.Fatalf("out-of-range bucket returned exemplar %+v", ex)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_seconds", "help", LogBuckets(1e-6, 2, 8), "route", "code")

	a := v.With("/api/search", "2xx")
	if b := v.With("/api/search", "2xx"); b != a {
		t.Fatal("same label values returned a different histogram")
	}
	if c := v.With("/api/search", "4xx"); c == a {
		t.Fatal("different label values shared a histogram")
	}
	a.ObserveDuration(3 * time.Microsecond)

	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `test_seconds_count{route="/api/search",code="2xx"} 1`) {
		t.Fatalf("labeled series missing from exposition:\n%s", out.String())
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("arity mismatch did not panic")
			}
		}()
		v.With("only-one")
	}()
}

func TestVecSeriesCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("capped_total", "help", "k").MaxSeries(2)
	before := mDroppedLabels.Value()

	v.With("a").Inc()
	v.With("b").Inc()
	over := v.With("c") // past the cap: overflow sink
	over.Inc()
	if got := mDroppedLabels.Value() - before; got != 1 {
		t.Fatalf("dropped-labels counter delta = %d, want 1", got)
	}
	if v.With("c") != over {
		t.Fatal("overflow sink not shared across capped label sets")
	}
	if mDroppedLabels.Value()-before != 2 {
		t.Fatal("second capped lookup not counted")
	}

	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `capped_total{k="a"} 1`) || !strings.Contains(s, `capped_total{k="b"} 1`) {
		t.Fatalf("registered series missing:\n%s", s)
	}
	if strings.Contains(s, `k="c"`) {
		t.Fatalf("capped series leaked into the exposition:\n%s", s)
	}
}

func TestHistogramVecCapSharesOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("h_seconds", "help", DefBuckets, "k").MaxSeries(1)
	v.With("a").Observe(0.1)
	o1, o2 := v.With("b"), v.With("c")
	if o1 != o2 {
		t.Fatal("overflow histograms differ")
	}
	o1.Observe(0.2)
	if o2.Count() != 1 {
		t.Fatal("overflow sink did not aggregate")
	}
}
