// Package obs is the dependency-free observability layer of SNAPS: atomic
// counters, gauges, and fixed-bucket latency histograms collected in a
// named registry with Prometheus-style text exposition, plus the Stage
// timer API the offline pipeline and the experiment harness share so the
// paper's per-stage runtime tables (Sec. 10, Tables 5-6) and the live
// /metrics endpoint report from one timing source.
//
// On top of the aggregate metrics sit the request-scoped primitives: a
// context-propagated span tracer with a ring buffer of completed traces
// (trace.go) and a log/slog-based structured logger whose records carry
// the trace ID of the context they were emitted under (obslog.go), so one
// slow query can be decomposed span by span after the fact.
//
// Metrics are cheap enough for hot paths — an observation is one or two
// atomic adds — and the package deliberately has no third-party
// dependencies and no HTTP surface of its own; internal/server mounts the
// exposition.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64, for values that are not whole
// numbers (accumulated GC pause seconds).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond query path up to multi-second offline stages.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// LogBuckets returns n log-spaced upper bounds min, min*growth,
// min*growth^2, ... — the exposition-friendly cousin of internal/load's
// HDR histogram: relative error is bounded by the growth factor at every
// magnitude, instead of the lowest linear bucket swallowing the whole
// sub-millisecond range.
func LogBuckets(min, growth float64, n int) []float64 {
	if min <= 0 || growth <= 1 || n < 1 {
		panic("obs: LogBuckets wants min > 0, growth > 1, n >= 1")
	}
	out := make([]float64, n)
	b := min
	for i := range out {
		out[i] = b
		b *= growth
	}
	return out
}

// LatencyBuckets are the serving-tier latency buckets: log-spaced by
// factor 2 from 1µs to ~67s, so the 11µs hot-path search and a 2s
// overloaded scatter resolve with the same ~41% worst-case relative error
// instead of both collapsing into coarse linear edges. Histograms built
// over them interpolate quantiles geometrically (see Quantile).
var LatencyBuckets = LogBuckets(1e-6, 2, 27)

// CountBuckets are buckets for size-like observations (candidate counts,
// batch sizes) rather than durations.
var CountBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts. The
// bounds are inclusive upper bounds in ascending order; observations above
// the last bound land in an implicit +Inf bucket. Each bucket additionally
// keeps one optional exemplar — the trace ID and exact value of the latest
// sampled observation that landed in it — so a tail-bucket count on
// /metrics links directly to a span tree in /api/debug/traces.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	// growth is the constant ratio between consecutive bounds when the
	// layout is log-spaced (LogBuckets), 0 for linear layouts; Quantile
	// interpolates geometrically when it is set.
	growth    float64
	exemplars []atomic.Pointer[Exemplar] // aligned with buckets
}

// Exemplar is one sampled observation attached to a histogram bucket, in
// the OpenMetrics sense: the exact value, the trace it belongs to, and
// when it was recorded.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// newHistogram copies and sorts the bounds so callers can share bucket
// slices safely, and detects a log-spaced layout (constant bound ratio) so
// quantile interpolation can match it.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{
		bounds:    bs,
		buckets:   make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
	if len(bs) >= 3 && bs[0] > 0 {
		g := bs[1] / bs[0]
		logSpaced := true
		for i := 2; i < len(bs); i++ {
			if r := bs[i] / bs[i-1]; math.Abs(r-g) > 1e-9*g {
				logSpaced = false
				break
			}
		}
		if logSpaced {
			h.growth = g
		}
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le is inclusive)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty (the
// request was sampled into a trace), attaches it as the bucket's exemplar.
// Latest-wins per bucket: a p99 spike keeps overwriting the tail bucket's
// exemplar with fresher slow traces while fast traffic stays in the low
// buckets, so the exemplar a scrape sees for the tail IS a slow trace.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
}

// BucketExemplar returns bucket i's exemplar (i == len(bounds) is +Inf),
// nil when none was recorded.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationExemplar records a duration in seconds with a trace-ID
// exemplar (no-op exemplar when traceID is empty).
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by interpolation within
// the bucket containing the target rank. Linear layouts (DefBuckets)
// interpolate linearly — the same estimate Prometheus's
// histogram_quantile produces. Log-spaced layouts (LogBuckets,
// LatencyBuckets) interpolate geometrically, lo*(hi/lo)^frac, the estimate
// with bounded relative error under logarithmic bucketing — consistent
// with internal/load's HDR histogram, whose geometric bucket midpoint is
// exactly the frac=0.5 case. Observations in the +Inf bucket clamp to the
// largest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			hi := h.bounds[i]
			if h.growth > 0 {
				// Log layout: bucket 0 spans (bounds[0]/growth, bounds[0]]
				// just as every later bucket spans one growth factor.
				lo := hi / h.growth
				if i > 0 {
					lo = h.bounds[i-1]
				}
				return lo * math.Pow(hi/lo, frac)
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns the cumulative bucket counts aligned with bounds plus
// the +Inf total, for exposition.
func (h *Histogram) snapshot() (cum []int64, total int64) {
	cum = make([]int64, len(h.bounds))
	running := int64(0)
	for i := range h.bounds {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, running + h.buckets[len(h.bounds)].Load()
}
