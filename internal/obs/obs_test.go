package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if math.Abs(h.Sum()-118.5) > 1e-9 {
		t.Fatalf("sum = %g, want 118.5", h.Sum())
	}
	// p50: rank 4 lands in the (2,4] bucket (cum: 2,3,6).
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %g, want within (2,4]", q)
	}
	// The +Inf observation clamps quantiles to the largest finite bound.
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %g, want clamp to 8", q)
	}
	// Out-of-range q values clamp instead of panicking.
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Fatalf("negative quantile %g != zero quantile %g", q, h.Quantile(0))
	}
	if q := h.Quantile(2); q != 8 {
		t.Fatalf("quantile(2) = %g, want 8", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(DefBuckets)
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	if h.Sum() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram sum/count = %g/%d", h.Sum(), h.Count())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 || math.Abs(h.Sum()-0.25) > 1e-9 {
		t.Fatalf("duration observation: count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestHistogramBoundsSortedAndCopied(t *testing.T) {
	bounds := []float64{4, 1, 2}
	h := newHistogram(bounds)
	bounds[0] = 99 // caller's slice must not alias the histogram's
	h.Observe(3)
	if q := h.Quantile(1); q <= 2 || q > 4 {
		t.Fatalf("quantile over unsorted input bounds = %g, want within (2,4]", q)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("snaps_test_total", "help one")
	b := r.Counter("snaps_test_total", "help ignored")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters out of sync")
	}
	if g1, g2 := r.Gauge("snaps_g", ""), r.Gauge("snaps_g", ""); g1 != g2 {
		t.Fatal("same name should return the same gauge")
	}
	if h1, h2 := r.Histogram("snaps_h", "", DefBuckets), r.Histogram("snaps_h", "", DefBuckets); h1 != h2 {
		t.Fatal("same name should return the same histogram")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("snaps_test_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge lookup of a counter name should panic")
		}
	}()
	r.Gauge("snaps_test_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "9leading_digit", "has space", "bad{unclosed", "bad-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("route", "a\"b\\c\nd")
	want := `route="a\"b\\c\nd"`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
}

// lineRE matches one sample line of the text exposition format.
var lineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+]?[0-9.eE+]+$`)

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("snaps_a_total", "Total As.").Add(3)
	r.Counter(`snaps_a_total{`+Label("kind", "x")+`}`, "Total As.").Add(2)
	r.Gauge("snaps_depth", "Queue depth.").Set(7)
	h := r.Histogram("snaps_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE snaps_a_total counter",
		"# HELP snaps_a_total Total As.",
		"snaps_a_total 3",
		`snaps_a_total{kind="x"} 2`,
		"# TYPE snaps_depth gauge",
		"snaps_depth 7",
		"# TYPE snaps_lat_seconds histogram",
		`snaps_lat_seconds_bucket{le="0.1"} 1`,
		`snaps_lat_seconds_bucket{le="1"} 2`,
		`snaps_lat_seconds_bucket{le="+Inf"} 3`,
		"snaps_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with several labelled series.
	if n := strings.Count(out, "# TYPE snaps_a_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
	// Every sample line parses.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

func TestStageTimerRecordsIntoDefaultRegistry(t *testing.T) {
	st := StartStage("obs_test_stage")
	time.Sleep(time.Millisecond)
	d := st.Stop()
	if d <= 0 {
		t.Fatalf("stage duration = %v", d)
	}
	h := StageHistogram("obs_test_stage")
	if h.Count() == 0 {
		t.Fatal("stage observation not recorded")
	}
	if math.Abs(h.Sum()-d.Seconds()) > 1e-6 && h.Count() == 1 {
		t.Fatalf("stage sum %g != stopped duration %g", h.Sum(), d.Seconds())
	}

	ObserveStage("obs_test_stage", 2*time.Millisecond)
	if h.Count() < 2 {
		t.Fatal("ObserveStage did not record")
	}

	var sb strings.Builder
	StageSummary(&sb)
	if !strings.Contains(sb.String(), "obs_test_stage") {
		t.Fatalf("stage summary missing stage:\n%s", sb.String())
	}
}

func TestStageLabelValue(t *testing.T) {
	if got := stageLabelValue(`stage="blocking"`); got != "blocking" {
		t.Fatalf("stageLabelValue = %q", got)
	}
	if got := stageLabelValue(`other="x"`); got != `other="x"` {
		t.Fatalf("non-stage label should pass through, got %q", got)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snaps_conc_seconds", "", DefBuckets)
	c := r.Counter("snaps_conc_total", "")
	g := r.Gauge("snaps_conc_depth", "")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%10) / 100)
				c.Inc()
				g.Add(1)
				// Concurrent registration of the same names must be safe.
				r.Counter("snaps_conc_total", "").Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 2*workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), 2*workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	wantSum := 0.0
	for i := 0; i < per; i++ {
		wantSum += float64(i%10) / 100
	}
	wantSum *= workers
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}
