package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// This file is the structured-logging half of the observability layer: a
// log/slog handler factory with a text/JSON switch and a wrapper that
// stamps every record emitted with a traced context with its trace_id, so
// log lines and GET /api/debug/traces entries correlate by one ID.

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the SNAPS logger: format "json" selects the JSON
// handler, anything else the text handler, both wrapped so records logged
// with a traced context carry a trace_id attribute.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(traceHandler{h})
}

// traceHandler decorates another handler, adding the context's trace ID to
// every record it passes through.
type traceHandler struct {
	inner slog.Handler
}

func (h traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceIDFromContext(ctx); id != "" {
		r.AddAttrs(slog.String("trace_id", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{h.inner.WithGroup(name)}
}
