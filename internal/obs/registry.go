package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates the metric types a registry can hold.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	floatGaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, floatGaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "kind?"
}

// entry is one registered time series: a metric family name, an optional
// label set, and the metric itself.
type entry struct {
	family string
	labels string // rendered label pairs without braces, "" when unlabelled
	help   string
	kind   kind

	counter    *Counter
	gauge      *Gauge
	floatGauge *FloatGauge
	histogram  *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Series names may carry a label set in the name itself,
// e.g. `snaps_http_requests_total{route="/api/search",code="2xx"}`; series
// of the same family share one HELP/TYPE header in the exposition.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Default is the process-wide registry every SNAPS component registers
// into; internal/server exposes it at GET /metrics.
var Default = NewRegistry()

// splitName separates a series name into family and label set. The family
// must look like a Prometheus metric name; the label part, when present,
// is kept verbatim (callers construct it with Label).
func splitName(name string) (family, labels string) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			panic(fmt.Sprintf("obs: malformed series name %q", name))
		}
		family, labels = name[:i], name[i+1:len(name)-1]
	}
	if !validFamily(family) {
		panic(fmt.Sprintf("obs: invalid metric family name %q", family))
	}
	return family, labels
}

func validFamily(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// Label renders one label pair for inclusion in a series name, escaping
// backslashes, quotes, and newlines in the value.
func Label(name, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return name + `="` + r.Replace(value) + `"`
}

// lookup returns the entry for name, creating it with mk when absent, and
// panics when the existing entry has a different kind — mixing kinds under
// one name is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, k kind, mk func(*entry)) *entry {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.entries[name]; e == nil {
			family, labels := splitName(name)
			e = &entry{family: family, labels: labels, help: help, kind: k}
			mk(e)
			r.entries[name] = e
		}
		r.mu.Unlock()
	}
	if e.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, e.kind, k))
	}
	return e
}

// Counter returns the counter registered under name, creating it on first
// use. help is retained from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, counterKind, func(e *entry) { e.counter = &Counter{} }).counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, gaugeKind, func(e *entry) { e.gauge = &Gauge{} }).gauge
}

// FloatGauge returns the float-valued gauge registered under name,
// creating it on first use.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.lookup(name, help, floatGaugeKind, func(e *entry) { e.floatGauge = &FloatGauge{} }).floatGauge
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (seconds for latencies) on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, histogramKind, func(e *entry) { e.histogram = newHistogram(buckets) }).histogram
}

// WriteText renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by family then label set, with
// one HELP/TYPE header per family. Exemplars are omitted — they are not
// part of the 0.0.4 grammar; scrape with WriteOpenMetrics to see them.
func (r *Registry) WriteText(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text
// format: counter families drop their `_total` suffix in HELP/TYPE (the
// samples keep it), histogram buckets carry their trace-ID exemplars
// (`# {trace_id="..."} value timestamp`), and the output ends with the
// mandatory `# EOF` terminator. Serve it under content type
// `application/openmetrics-text; version=1.0.0`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

// openMetricsFamily is the metric-family name OpenMetrics wants in
// HELP/TYPE lines: counters are named without the `_total` sample suffix.
func openMetricsFamily(e *entry) string {
	if e.kind == counterKind {
		return strings.TrimSuffix(e.family, "_total")
	}
	return e.family
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].family != entries[j].family {
			return entries[i].family < entries[j].family
		}
		return entries[i].labels < entries[j].labels
	})

	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, e := range entries {
		if e.family != prevFamily {
			fam := e.family
			if openMetrics {
				fam = openMetricsFamily(e)
			}
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, e.kind)
			prevFamily = e.family
		}
		switch e.kind {
		case counterKind:
			fmt.Fprintf(bw, "%s %d\n", series(e.family, e.labels), e.counter.Value())
		case gaugeKind:
			fmt.Fprintf(bw, "%s %d\n", series(e.family, e.labels), e.gauge.Value())
		case floatGaugeKind:
			fmt.Fprintf(bw, "%s %s\n", series(e.family, e.labels), formatFloat(e.floatGauge.Value()))
		case histogramKind:
			h := e.histogram
			cum, total := h.snapshot()
			for i, bound := range h.bounds {
				le := Label("le", formatFloat(bound))
				fmt.Fprintf(bw, "%s %d", series(e.family+"_bucket", join(e.labels, le)), cum[i])
				if openMetrics {
					writeExemplar(bw, h.BucketExemplar(i))
				}
				bw.WriteByte('\n')
			}
			fmt.Fprintf(bw, "%s %d", series(e.family+"_bucket", join(e.labels, `le="+Inf"`)), total)
			if openMetrics {
				writeExemplar(bw, h.BucketExemplar(len(h.bounds)))
			}
			bw.WriteByte('\n')
			fmt.Fprintf(bw, "%s %s\n", series(e.family+"_sum", e.labels), formatFloat(h.Sum()))
			fmt.Fprintf(bw, "%s %d\n", series(e.family+"_count", e.labels), total)
		}
	}
	if openMetrics {
		fmt.Fprint(bw, "# EOF\n")
	}
	return bw.Flush()
}

// writeExemplar appends one OpenMetrics exemplar clause to the current
// bucket line: ` # {trace_id="..."} value timestamp`. No-op for nil.
func writeExemplar(bw *bufio.Writer, ex *Exemplar) {
	if ex == nil {
		return
	}
	fmt.Fprintf(bw, " # {%s} %s %s",
		Label("trace_id", ex.TraceID),
		formatFloat(ex.Value),
		strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64))
}

func series(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

func join(labels, more string) string {
	if labels == "" {
		return more
	}
	return labels + "," + more
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// each calls fn for every registered series of the family, sorted by label
// set; used by the stage summary.
func (r *Registry) each(family string, fn func(labels string, e *entry)) {
	r.mu.RLock()
	var matched []*entry
	for _, e := range r.entries {
		if e.family == family {
			matched = append(matched, e)
		}
	}
	r.mu.RUnlock()
	sort.Slice(matched, func(i, j int) bool { return matched[i].labels < matched[j].labels })
	for _, e := range matched {
		fn(e.labels, e)
	}
}
