package obs

import (
	"runtime"
	"runtime/debug"
)

// Go runtime gauges, refreshed by SampleRuntime immediately before each
// /metrics exposition so scrapes always see current values without a
// background sampler goroutine.
const (
	goroutinesName = "snaps_goroutines"
	heapAllocName  = "snaps_heap_alloc_bytes"
	gcPauseName    = "snaps_gc_pause_seconds_total"
	buildInfoName  = "snaps_build_info"
)

// buildInfoSeries is the labelled build-info series name, computed once at
// init: the label values are process constants.
var buildInfoSeries = func() string {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return buildInfoName + "{" + Label("go_version", runtime.Version()) + "," + Label("version", version) + "}"
}()

// SampleRuntime refreshes the Go runtime gauges in the registry: live
// goroutines, heap bytes in use, and accumulated GC stop-the-world pause
// seconds, plus a constant snaps_build_info series labelled with the Go
// toolchain and module versions. The server's /metrics handler calls it on
// every scrape; ReadMemStats is a brief stop-the-world, acceptable at
// scrape cadence but not on request paths.
func SampleRuntime(r *Registry) {
	r.Gauge(goroutinesName,
		"Live goroutines, sampled at scrape time.").Set(int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(heapAllocName,
		"Bytes of allocated heap objects, sampled at scrape time.").Set(int64(ms.HeapAlloc))
	r.FloatGauge(gcPauseName,
		"Cumulative GC stop-the-world pause seconds since process start.").Set(float64(ms.PauseTotalNs) / 1e9)

	r.Gauge(buildInfoSeries,
		"Constant 1, labelled with the Go toolchain and module versions.").Set(1)
}
