package obs

import (
	"strings"
	"testing"
)

func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, name := range []string{goroutinesName, heapAllocName, gcPauseName} {
		if !strings.Contains(text, "# TYPE "+name+" gauge") {
			t.Errorf("%s missing gauge TYPE line", name)
		}
	}
	if !strings.Contains(text, buildInfoName+"{") {
		t.Errorf("%s series missing labels:\n%s", buildInfoName, text)
	}
	if !strings.Contains(text, `go_version="go`) {
		t.Error("build info missing go_version label")
	}

	// Goroutines and heap bytes are necessarily positive in a live process.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, goroutinesName+" 0") || strings.HasPrefix(line, heapAllocName+" 0") {
			t.Errorf("implausible zero sample: %q", line)
		}
	}

	// Resampling must update in place, not duplicate series.
	SampleRuntime(r)
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b2.String(), "# TYPE "+goroutinesName+" "); got != 1 {
		t.Errorf("%d TYPE lines for %s after resample, want 1", got, goroutinesName)
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("snaps_test_seconds_total", "help")
	g.Set(0.125)
	if v := g.Value(); v != 0.125 {
		t.Fatalf("Value = %v, want 0.125", v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "snaps_test_seconds_total 0.125") {
		t.Errorf("float gauge not rendered:\n%s", b.String())
	}
	if r.FloatGauge("snaps_test_seconds_total", "help") != g {
		t.Error("re-registration returned a different gauge")
	}
}
