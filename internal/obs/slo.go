package obs

import (
	"sync"
	"time"
)

// SLOTracker tracks request outcomes against a latency/error SLO in a
// per-second ring buffer and reports multi-window burn rates, the
// Google-SRE-workbook alerting shape: burn = (bad fraction over window) /
// (budget fraction). Burn 1.0 spends the budget exactly at the sustainable
// rate; 14.4 over both a short and a long window is the classic page-now
// threshold. Two windows (1m/5m) keep the signal both fast (short window
// sees a spike immediately) and de-flapped (long window must agree).
type SLOTracker struct {
	latencySLO    time.Duration // a 2xx slower than this is "slow"
	errorBudget   float64       // tolerated 5xx fraction, e.g. 0.01
	latencyBudget float64       // tolerated slow-2xx fraction, e.g. 0.05
	now           func() time.Time

	mu    sync.Mutex
	slots [sloSlots]sloSlot
}

// sloSlots covers the longest window (5m) with headroom.
const sloSlots = 512

type sloSlot struct {
	sec    int64 // unix second this slot currently holds, 0 = empty
	total  int64
	errors int64 // 5xx responses
	slow   int64 // non-5xx responses over the latency SLO
}

// NewSLOTracker builds a tracker. Non-positive arguments fall back to the
// defaults: 250ms latency SLO, 1% error budget, 5% latency budget.
func NewSLOTracker(latencySLO time.Duration, errorBudget, latencyBudget float64) *SLOTracker {
	if latencySLO <= 0 {
		latencySLO = 250 * time.Millisecond
	}
	if errorBudget <= 0 {
		errorBudget = 0.01
	}
	if latencyBudget <= 0 {
		latencyBudget = 0.05
	}
	return &SLOTracker{
		latencySLO:    latencySLO,
		errorBudget:   errorBudget,
		latencyBudget: latencyBudget,
		now:           time.Now,
	}
}

// LatencySLO returns the latency threshold the tracker judges against.
func (t *SLOTracker) LatencySLO() time.Duration { return t.latencySLO }

// Observe records one finished request.
func (t *SLOTracker) Observe(status int, d time.Duration) {
	sec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.slots[sec%sloSlots]
	if s.sec != sec {
		*s = sloSlot{sec: sec}
	}
	s.total++
	if status >= 500 {
		s.errors++
	} else if d > t.latencySLO {
		s.slow++
	}
}

// Burn is one window's budget-burn snapshot.
type Burn struct {
	Window      string  `json:"window"`
	Total       int64   `json:"total"`
	Errors      int64   `json:"errors"`
	Slow        int64   `json:"slow"`
	ErrorBurn   float64 `json:"error_burn"`   // error fraction / error budget
	LatencyBurn float64 `json:"latency_burn"` // slow fraction / latency budget
}

// Windows returns the burn snapshots for the 1m and 5m windows ending now.
// With no traffic in a window both burns are 0 — silence does not spend
// budget.
func (t *SLOTracker) Windows() []Burn {
	sec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	return []Burn{t.burnLocked("1m", sec, 60), t.burnLocked("5m", sec, 300)}
}

func (t *SLOTracker) burnLocked(name string, nowSec int64, span int64) Burn {
	b := Burn{Window: name}
	// The current second is still filling; read the span ending at the
	// previous full second plus whatever the live second holds so far.
	for sec := nowSec - span + 1; sec <= nowSec; sec++ {
		s := &t.slots[sec%sloSlots]
		if s.sec != sec {
			continue
		}
		b.Total += s.total
		b.Errors += s.errors
		b.Slow += s.slow
	}
	if b.Total > 0 {
		b.ErrorBurn = float64(b.Errors) / float64(b.Total) / t.errorBudget
		b.LatencyBurn = float64(b.Slow) / float64(b.Total) / t.latencyBudget
	}
	return b
}
