package obs

import (
	"testing"
	"time"
)

// fakeClock drives an SLOTracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker() (*SLOTracker, *fakeClock) {
	tr := NewSLOTracker(250*time.Millisecond, 0.01, 0.05)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tr.now = clk.now
	return tr, clk
}

func TestSLOTrackerDefaults(t *testing.T) {
	tr := NewSLOTracker(0, 0, 0)
	if tr.LatencySLO() != 250*time.Millisecond {
		t.Errorf("default latency SLO = %v", tr.LatencySLO())
	}
	if tr.errorBudget != 0.01 || tr.latencyBudget != 0.05 {
		t.Errorf("default budgets = %v/%v", tr.errorBudget, tr.latencyBudget)
	}
}

func TestSLOTrackerBurnMath(t *testing.T) {
	tr, _ := newTestTracker()

	// 100 requests in the current second: 2 errors, 10 slow, 88 good.
	for i := 0; i < 88; i++ {
		tr.Observe(200, 10*time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		tr.Observe(500, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(200, 400*time.Millisecond)
	}

	ws := tr.Windows()
	if len(ws) != 2 || ws[0].Window != "1m" || ws[1].Window != "5m" {
		t.Fatalf("windows = %+v", ws)
	}
	for _, w := range ws {
		if w.Total != 100 || w.Errors != 2 || w.Slow != 10 {
			t.Errorf("%s counts = %+v", w.Window, w)
		}
		// 2% errors over a 1% budget → burn 2; 10% slow over 5% → burn 2.
		if !closeTo(w.ErrorBurn, 2) || !closeTo(w.LatencyBurn, 2) {
			t.Errorf("%s burns = %v/%v, want 2/2", w.Window, w.ErrorBurn, w.LatencyBurn)
		}
	}

	// A shed 429 is not an error and, being non-5xx, is judged on latency.
	tr.Observe(429, time.Millisecond)
	ws = tr.Windows()
	if ws[0].Errors != 2 || ws[0].Total != 101 {
		t.Errorf("429 miscounted: %+v", ws[0])
	}
}

func TestSLOTrackerWindowExpiry(t *testing.T) {
	tr, clk := newTestTracker()
	for i := 0; i < 60; i++ {
		tr.Observe(500, time.Millisecond)
	}

	// 90 seconds later the spike is out of the 1m window but inside 5m.
	clk.advance(90 * time.Second)
	ws := tr.Windows()
	if ws[0].Total != 0 || ws[0].ErrorBurn != 0 {
		t.Errorf("1m window still sees the spike: %+v", ws[0])
	}
	if ws[1].Total != 60 || ws[1].Errors != 60 {
		t.Errorf("5m window lost the spike: %+v", ws[1])
	}

	// Past 5 minutes everything ages out; no traffic means zero burn.
	clk.advance(5 * time.Minute)
	for _, w := range tr.Windows() {
		if w.Total != 0 || w.ErrorBurn != 0 || w.LatencyBurn != 0 {
			t.Errorf("%s window did not age out: %+v", w.Window, w)
		}
	}
}

func TestSLOTrackerRingReuse(t *testing.T) {
	tr, clk := newTestTracker()
	// Write a slot, then come back to the same ring index sloSlots seconds
	// later: the stale slot must be overwritten, not accumulated.
	tr.Observe(500, time.Millisecond)
	clk.advance(sloSlots * time.Second)
	tr.Observe(200, time.Millisecond)
	ws := tr.Windows()
	if ws[0].Total != 1 || ws[0].Errors != 0 {
		t.Errorf("stale ring slot leaked into the window: %+v", ws[0])
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
