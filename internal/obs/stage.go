package obs

import (
	"fmt"
	"io"
	"time"
)

// stageFamily is the shared histogram family for pipeline stage timings:
// one labelled series per stage (blocking, graph construction, bootstrap,
// merge, refine, indexing, ...), so the offline pipeline, the ingest
// flush path, and the experiment harness all report through one source.
const stageFamily = "snaps_stage_seconds"

const stageHelp = "Wall-clock duration of one named pipeline stage."

// StageHistogram returns the latency histogram of one named stage in the
// default registry.
func StageHistogram(name string) *Histogram {
	return Default.Histogram(stageFamily+"{"+Label("stage", name)+"}", stageHelp, DefBuckets)
}

// Stage is a running timer for one named pipeline stage.
type Stage struct {
	h     *Histogram
	start time.Time
}

// StartStage begins timing a named stage.
func StartStage(name string) *Stage {
	return &Stage{h: StageHistogram(name), start: time.Now()}
}

// Stop records the elapsed time into the stage's histogram and returns it,
// so callers that also report the duration (er.PipelineResult, the
// experiment tables) measure exactly what the metrics show.
func (s *Stage) Stop() time.Duration {
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	return d
}

// ObserveStage records an externally measured duration for a stage —
// the path for code that already carries its own timings (depgraph build
// statistics, the resolver's phase breakdown).
func ObserveStage(name string, d time.Duration) {
	StageHistogram(name).ObserveDuration(d)
}

// StageSummary prints one line per recorded stage — observation count,
// total seconds, and the p50/p95/p99 latency estimates — in label order.
// cmd/experiments uses it to print the per-stage breakdown behind the
// runtime tables.
func StageSummary(w io.Writer) {
	fmt.Fprintf(w, "%-28s %8s %12s %10s %10s %10s\n",
		"stage", "count", "total(s)", "p50(s)", "p95(s)", "p99(s)")
	Default.each(stageFamily, func(labels string, e *entry) {
		h := e.histogram
		if h == nil || h.Count() == 0 {
			return
		}
		fmt.Fprintf(w, "%-28s %8d %12.4f %10.4f %10.4f %10.4f\n",
			stageLabelValue(labels), h.Count(), h.Sum(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	})
}

// stageLabelValue extracts the stage name back out of the rendered label
// set produced by StageHistogram.
func stageLabelValue(labels string) string {
	const pre, post = `stage="`, `"`
	if len(labels) > len(pre)+len(post) && labels[:len(pre)] == pre && labels[len(labels)-1] == '"' {
		return labels[len(pre) : len(labels)-1]
	}
	return labels
}
