package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: a
// dependency-free span tracer. A Tracer mints one trace per root operation
// (an HTTP request, an ingest flush), spans nest through context.Context,
// and completed traces land in a fixed-size ring buffer the server exposes
// at GET /api/debug/traces. Traces named by the slow-query configuration
// additionally emit one structured log record with their full span tree,
// so a slow search is explainable after the fact without a profiler
// attached.
//
// Everything is nil-safe: StartSpan on a context without a trace returns a
// nil *Span whose methods are no-ops, so hot paths carry zero branches for
// the untraced case beyond one pointer test inside each method.

// Attr is one key/value annotation on a span. Values are restricted to
// what the JSON debug endpoint renders losslessly.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"` // string, int64, or float64
}

// Span is one timed operation inside a trace. A span is created by
// StartSpan (or Tracer.StartRoot), annotated with SetAttr, and completed
// exactly once with End; ending the root span finalises the whole trace.
type Span struct {
	tr     *activeTrace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
	dur   time.Duration
}

// activeTrace is the shared state of one in-flight trace: every span holds
// a pointer to it and appends itself on End.
type activeTrace struct {
	tracer *Tracer
	id     string
	start  time.Time
	root   *Span
	nextID atomic.Uint64

	mu   sync.Mutex
	done []*Span
}

// spanKey carries the current span through a context.
type spanKey struct{}

// spanFromContext returns the innermost span of the context, nil when the
// context carries no trace.
func spanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceIDFromContext returns the trace ID the context belongs to, "" when
// untraced. Handlers use it to echo X-Request-ID and to stamp responses.
func TraceIDFromContext(ctx context.Context) string {
	if s := spanFromContext(ctx); s != nil {
		return s.tr.id
	}
	return ""
}

// FinishedSpanAttr scans the context's in-flight trace for the most
// recently finished span with the given name and returns its value for the
// attribute key. Middleware uses it after the handler has returned — child
// spans have ended and sit in the trace's done list — to lift handler-level
// facts (cache outcome, shard ids) into request-level telemetry without
// plumbing new return values through every layer. Returns (nil, false) on
// an untraced context or when no finished span carries the attribute.
func FinishedSpanAttr(ctx context.Context, name, key string) (any, bool) {
	s := spanFromContext(ctx)
	if s == nil {
		return nil, false
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := len(tr.done) - 1; i >= 0; i-- {
		d := tr.done[i]
		if d.name != name {
			continue
		}
		d.mu.Lock()
		for j := len(d.attrs) - 1; j >= 0; j-- {
			if d.attrs[j].Key == key {
				v := d.attrs[j].Value
				d.mu.Unlock()
				return v, true
			}
		}
		d.mu.Unlock()
	}
	return nil, false
}

// StartSpan begins a child span of the context's current span. When the
// context carries no trace it returns the context unchanged and a nil span
// whose methods are no-ops, so callers never branch on tracing being
// enabled.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := spanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tr:     parent.tr,
		id:     parent.tr.nextID.Add(1),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr annotates the span with an integer attribute (candidate counts,
// batch sizes, memo hits). No-op on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// SetAttrStr annotates the span with a string attribute. No-op on a nil
// span.
func (s *Span) SetAttrStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// End completes the span, recording its duration into the trace. Ending
// the root span finalises the trace: its snapshot enters the tracer's ring
// buffer and, when the slow-query check fires, one structured log record
// is emitted. End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()

	t := s.tr
	t.mu.Lock()
	t.done = append(t.done, s)
	t.mu.Unlock()
	if s == t.root {
		t.tracer.finish(t)
	}
}

// SpanSnapshot is one completed span in a finished trace, in the JSON
// shape GET /api/debug/traces serves. Offsets and durations are in
// microseconds: fine enough for sub-millisecond query stages, stable to
// diff in tests.
type SpanSnapshot struct {
	ID          uint64 `json:"id"`
	Parent      uint64 `json:"parent,omitempty"` // 0 = root (no parent)
	Name        string `json:"name"`
	StartUs     int64  `json:"start_us"` // offset from trace start
	DurationUs  int64  `json:"duration_us"`
	Attrs       []Attr `json:"attrs,omitempty"`
	durationRaw time.Duration
}

// TraceSnapshot is one finished trace: the root operation plus every
// completed span, ordered by start offset (parents before children).
type TraceSnapshot struct {
	TraceID    string         `json:"trace_id"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationUs int64          `json:"duration_us"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpansNamed returns the snapshot's spans with the given name.
func (t *TraceSnapshot) SpansNamed(name string) []SpanSnapshot {
	var out []SpanSnapshot
	for _, s := range t.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the spans whose parent is the given span ID.
func (t *TraceSnapshot) Children(id uint64) []SpanSnapshot {
	var out []SpanSnapshot
	for _, s := range t.Spans {
		if s.Parent == id && s.ID != id {
			out = append(out, s)
		}
	}
	return out
}

// Tracer mints traces, keeps the ring buffer of completed ones, and runs
// the slow-query check. The zero Tracer is not usable; construct with
// NewTracer. A nil *Tracer is safe: StartRoot degrades to a no-op.
type Tracer struct {
	mu       sync.Mutex
	ring     []*TraceSnapshot
	next     int
	filled   bool
	slow     time.Duration // < 0: disabled; >= 0: log spans at or above
	slowSpan string        // span name the threshold applies to
	logger   *slog.Logger  // nil: slog.Default() at emit time
}

// NewTracer returns a tracer keeping the last ringSize completed traces
// (default 256 when ringSize <= 0). Slow-query logging starts disabled;
// enable it with SetSlowQuery.
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	return &Tracer{ring: make([]*TraceSnapshot, ringSize), slow: -1}
}

// SetSlowQuery configures the slow-query log: any completed trace
// containing a span named spanName with duration at or above threshold
// emits exactly one structured log record carrying the trace ID and the
// full span tree. A zero threshold logs every such trace; a negative one
// disables the check.
func (t *Tracer) SetSlowQuery(threshold time.Duration, spanName string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow, t.slowSpan = threshold, spanName
	t.mu.Unlock()
}

// SetLogger directs slow-query records to l instead of slog.Default().
func (t *Tracer) SetLogger(l *slog.Logger) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.logger = l
	t.mu.Unlock()
}

// newTraceID returns a 16-hex-digit random trace ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed ID rather than panicking in a request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// maxTraceIDLen bounds caller-supplied trace IDs (X-Request-ID headers) so
// a hostile client cannot balloon the ring buffer.
const maxTraceIDLen = 64

// sanitizeTraceID accepts a caller-supplied ID, dropping control
// characters and truncating to maxTraceIDLen; "" asks for a generated ID.
func sanitizeTraceID(id string) string {
	if len(id) > maxTraceIDLen {
		id = id[:maxTraceIDLen]
	}
	for _, r := range id {
		if r < 0x20 || r == 0x7f {
			return ""
		}
	}
	return id
}

// StartRoot begins a new trace with a root span of the given name. traceID
// "" generates a fresh ID; a caller-supplied one (the X-Request-ID header)
// is sanitised and honoured so distributed callers can correlate. The
// returned context carries the root span for StartSpan. On a nil tracer it
// returns the context unchanged and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name, traceID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID = sanitizeTraceID(traceID); traceID == "" {
		traceID = newTraceID()
	}
	tr := &activeTrace{tracer: t, id: traceID, start: time.Now()}
	root := &Span{tr: tr, id: tr.nextID.Add(1), name: name, start: tr.start}
	tr.root = root
	return context.WithValue(ctx, spanKey{}, root), root
}

// finish snapshots a completed trace into the ring buffer and runs the
// slow-query check.
func (t *Tracer) finish(tr *activeTrace) {
	tr.mu.Lock()
	spans := make([]SpanSnapshot, 0, len(tr.done))
	for _, s := range tr.done {
		s.mu.Lock()
		snap := SpanSnapshot{
			ID:          s.id,
			Parent:      s.parent,
			Name:        s.name,
			StartUs:     s.start.Sub(tr.start).Microseconds(),
			DurationUs:  s.dur.Microseconds(),
			Attrs:       append([]Attr(nil), s.attrs...),
			durationRaw: s.dur,
		}
		s.mu.Unlock()
		spans = append(spans, snap)
	}
	tr.mu.Unlock()
	// done holds End order (parents after children); present start order
	// instead, root first, ties broken by creation ID.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUs != spans[j].StartUs {
			return spans[i].StartUs < spans[j].StartUs
		}
		return spans[i].ID < spans[j].ID
	})
	snap := &TraceSnapshot{
		TraceID:    tr.id,
		Name:       tr.root.name,
		Start:      tr.start,
		DurationUs: tr.root.dur.Microseconds(),
		Spans:      spans,
	}

	t.mu.Lock()
	t.ring[t.next] = snap
	t.next++
	if t.next == len(t.ring) {
		t.next, t.filled = 0, true
	}
	slow, slowSpan, logger := t.slow, t.slowSpan, t.logger
	t.mu.Unlock()

	if slow < 0 || slowSpan == "" {
		return
	}
	for _, s := range snap.Spans {
		if s.Name != slowSpan || s.durationRaw < slow {
			continue
		}
		if logger == nil {
			logger = slog.Default()
		}
		logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
			slog.String("trace_id", snap.TraceID),
			slog.String("root", snap.Name),
			slog.String("span", s.Name),
			slog.Int64("span_duration_us", s.DurationUs),
			slog.Int64("trace_duration_us", snap.DurationUs),
			slog.Int64("threshold_us", slow.Microseconds()),
			slog.Any("spans", snap.Spans),
		)
		return // exactly one record per trace
	}
}

// Traces returns the completed traces in the ring, most recent first.
func (t *Tracer) Traces() []*TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = len(t.ring)
	}
	out := make([]*TraceSnapshot, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Trace returns the completed trace with the given ID, nil when it has
// been evicted or never finished.
func (t *Tracer) Trace(id string) *TraceSnapshot {
	for _, tr := range t.Traces() {
		if tr.TraceID == id {
			return tr
		}
	}
	return nil
}
