package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeSnapshot(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartRoot(context.Background(), "GET /api/search", "req-42")
	if got := TraceIDFromContext(ctx); got != "req-42" {
		t.Fatalf("TraceIDFromContext = %q, want req-42", got)
	}

	sctx, search := StartSpan(ctx, "search")
	_, blocking := StartSpan(sctx, "blocking")
	blocking.SetAttr("memo_hits", 2)
	blocking.End()
	_, rank := StartSpan(sctx, "rank")
	rank.SetAttrStr("note", "trimmed")
	rank.End()
	search.End()
	root.End()

	snap := tr.Trace("req-42")
	if snap == nil {
		t.Fatal("finished trace not in ring")
	}
	if snap.Name != "GET /api/search" {
		t.Errorf("root name %q", snap.Name)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	// Start order: root first.
	if snap.Spans[0].Name != "GET /api/search" || snap.Spans[0].Parent != 0 {
		t.Errorf("first span %+v is not the root", snap.Spans[0])
	}
	searches := snap.SpansNamed("search")
	if len(searches) != 1 || searches[0].Parent != snap.Spans[0].ID {
		t.Fatalf("search span not parented under root: %+v", searches)
	}
	kids := snap.Children(searches[0].ID)
	if len(kids) != 2 || kids[0].Name != "blocking" || kids[1].Name != "rank" {
		t.Fatalf("search children = %+v", kids)
	}
	if len(kids[0].Attrs) != 1 || kids[0].Attrs[0].Key != "memo_hits" {
		t.Errorf("blocking attrs = %+v", kids[0].Attrs)
	}
	// Child durations fit inside their parents.
	if kids[0].DurationUs+kids[1].DurationUs > searches[0].DurationUs+1 {
		t.Errorf("children (%d + %d us) exceed search span (%d us)",
			kids[0].DurationUs, kids[1].DurationUs, searches[0].DurationUs)
	}
	if searches[0].DurationUs > snap.DurationUs+1 {
		t.Errorf("search span (%d us) exceeds trace (%d us)", searches[0].DurationUs, snap.DurationUs)
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "search")
	if ctx2 != ctx {
		t.Error("untraced StartSpan changed the context")
	}
	if sp != nil {
		t.Fatal("untraced StartSpan returned a live span")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	sp.End()
	if TraceIDFromContext(ctx) != "" {
		t.Error("untraced context has a trace ID")
	}

	var tr *Tracer
	ctx3, root := tr.StartRoot(ctx, "x", "")
	if ctx3 != ctx || root != nil {
		t.Error("nil tracer StartRoot is not a no-op")
	}
	tr.SetSlowQuery(0, "search")
	tr.SetLogger(nil)
	if tr.Traces() != nil {
		t.Error("nil tracer has traces")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for _, id := range []string{"a", "b", "c"} {
		_, root := tr.StartRoot(context.Background(), "op", id)
		root.End()
	}
	got := tr.Traces()
	if len(got) != 2 || got[0].TraceID != "c" || got[1].TraceID != "b" {
		ids := make([]string, len(got))
		for i, s := range got {
			ids[i] = s.TraceID
		}
		t.Fatalf("ring holds %v, want [c b]", ids)
	}
	if tr.Trace("a") != nil {
		t.Error("evicted trace still found")
	}
}

func TestGeneratedAndSanitisedTraceIDs(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartRoot(context.Background(), "op", "")
	id := TraceIDFromContext(ctx)
	if len(id) != 16 {
		t.Errorf("generated trace ID %q, want 16 hex chars", id)
	}
	root.End()

	ctx, root = tr.StartRoot(context.Background(), "op", "evil\nheader")
	if got := TraceIDFromContext(ctx); strings.ContainsAny(got, "\n\r") || got == "" {
		t.Errorf("control characters survived sanitisation: %q", got)
	}
	root.End()

	long := strings.Repeat("x", 200)
	ctx, root = tr.StartRoot(context.Background(), "op", long)
	if got := TraceIDFromContext(ctx); len(got) != maxTraceIDLen {
		t.Errorf("oversized trace ID kept %d chars, want %d", len(got), maxTraceIDLen)
	}
	root.End()
}

// slowTrace runs one trace holding a "search" span that sleeps briefly.
func slowTrace(tr *Tracer, id string) {
	ctx, root := tr.StartRoot(context.Background(), "GET /api/search", id)
	_, search := StartSpan(ctx, "search")
	time.Sleep(time.Millisecond)
	search.End()
	root.End()
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.SetLogger(NewLogger(&buf, 0, "json"))
	tr.SetSlowQuery(0, "search") // zero threshold: log every search

	slowTrace(tr, "slow-1")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d slow-query records, want exactly 1:\n%s", len(lines), buf.String())
	}
	var rec struct {
		Msg     string `json:"msg"`
		TraceID string `json:"trace_id"`
		Spans   []any  `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-query record is not JSON: %v", err)
	}
	if rec.Msg != "slow query" || rec.TraceID != "slow-1" || len(rec.Spans) < 2 {
		t.Fatalf("unexpected slow-query record: %+v", rec)
	}

	// A trace without a search span stays silent.
	buf.Reset()
	_, root := tr.StartRoot(context.Background(), "GET /metrics", "m-1")
	root.End()
	if buf.Len() != 0 {
		t.Fatalf("non-search trace logged: %s", buf.String())
	}

	// A negative threshold disables the check entirely.
	buf.Reset()
	tr.SetSlowQuery(-1, "search")
	slowTrace(tr, "slow-2")
	if buf.Len() != 0 {
		t.Fatalf("disabled slow-query check still logged: %s", buf.String())
	}

	// An unreachably high threshold filters fast searches out.
	buf.Reset()
	tr.SetSlowQuery(time.Hour, "search")
	slowTrace(tr, "slow-3")
	if buf.Len() != 0 {
		t.Fatalf("fast search logged as slow: %s", buf.String())
	}
}

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, 0, "json")
	tr := NewTracer(8)
	ctx, root := tr.StartRoot(context.Background(), "op", "corr-7")
	logger.InfoContext(ctx, "inside the trace")
	root.End()
	logger.InfoContext(context.Background(), "outside")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"trace_id":"corr-7"`) {
		t.Errorf("traced record lacks trace_id: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("untraced record has trace_id: %s", lines[1])
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "": "INFO", "WARN": "WARN", "warning": "WARN", "Error": "ERROR",
	} {
		lvl, err := ParseLevel(s)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", s, err)
		}
		if lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", s, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(4)
	_, root := tr.StartRoot(context.Background(), "op", "once")
	root.End()
	root.End() // must not finalise (and ring) the trace twice
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("double End recorded %d traces, want 1", got)
	}
}
