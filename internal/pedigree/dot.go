package pedigree

import (
	"fmt"
	"sort"
	"strings"

	"github.com/snaps/snaps/internal/model"
)

// RenderDot renders an extracted pedigree as a Graphviz DOT digraph, the
// graphical analogue of the family trees in Figs. 7-8 of the paper: one box
// per entity (colour-coded by gender, labelled with name and lifespan),
// solid arrows for parenthood, dashed edges for marriages, and a double
// border on the focus entity.
func (g *Graph) RenderDot(p *Pedigree) string {
	var b strings.Builder
	b.WriteString("digraph pedigree {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")

	members := make([]NodeID, 0, len(p.Members))
	for id := range p.Members {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	for _, id := range members {
		n := g.Node(id)
		color := "lightgray"
		switch n.Gender {
		case model.Female:
			color = "mistyrose"
		case model.Male:
			color = "lightblue"
		}
		peripheries := 1
		if id == p.Focus {
			peripheries = 2
		}
		label := n.DisplayName()
		if span := lifespan(n); span != "" {
			label += "\\n" + span
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", fillcolor=%s, peripheries=%d];\n",
			id, escapeDot(label), color, peripheries)
	}

	// Parenthood arrows (parent -> child) and marriage edges; childOf edges
	// duplicate the parenthood information and are skipped.
	seenMarriage := map[[2]NodeID]bool{}
	for _, e := range p.Edges {
		switch e.Rel {
		case model.MotherOf, model.FatherOf:
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		case model.SpouseOf:
			a, c := e.From, e.To
			if c < a {
				a, c = c, a
			}
			if seenMarriage[[2]NodeID{a, c}] {
				continue
			}
			seenMarriage[[2]NodeID{a, c}] = true
			fmt.Fprintf(&b, "  n%d -> n%d [dir=none, style=dashed, constraint=false];\n", a, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	// Preserve the explicit line break inserted by the caller.
	s = strings.ReplaceAll(s, `\\n`, `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
