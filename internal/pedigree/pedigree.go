// Package pedigree builds the pedigree graph G_P of Sec. 5 of the paper
// (Algorithm 1) from the resolved entities, and extracts and renders family
// pedigrees (family trees) around a chosen entity.
//
// Nodes of the pedigree graph are entities; edges carry the relationships
// motherOf, fatherOf, spouseOf, and childOf derived from co-mentions on
// certificates. Each node also aggregates the QID values of its records so
// that the keyword index and the query ranker can operate on entities.
package pedigree

import (
	"fmt"
	"sort"
	"strings"

	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
)

// EntityID aliases the resolver's entity id inside the pedigree graph. The
// pedigree graph densifies ids, so it keeps its own node indices.
type NodeID int32

// Node is one entity in the pedigree graph with its aggregated QID values.
type Node struct {
	ID      NodeID
	Records []model.RecordID

	// Aggregated values (distinct, most frequent first).
	FirstNames []string
	Surnames   []string
	Locations  []string
	Gender     model.Gender

	// BirthYear and DeathYear when known from Bb/Dd records, else 0.
	BirthYear, DeathYear int
	// YearRange spans all event years of the entity's records.
	MinYear, MaxYear int

	// Lat, Lon is the centroid of the entity's geocoded records; HasGeo
	// reports whether any record was geocoded.
	Lat, Lon float64
	HasGeo   bool

	// Edges to related entities.
	Edges []Edge
}

// Edge is a relationship between two entities.
type Edge struct {
	To  NodeID
	Rel model.Relationship
}

// Graph is the pedigree graph G_P.
type Graph struct {
	Dataset *model.Dataset
	Nodes   []Node

	// nodeOf maps a record to its pedigree node, -1 when the record's
	// entity was a singleton that was not materialised.
	nodeOf []NodeID
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

// NodeOfRecord returns the pedigree node containing the record, if any.
func (g *Graph) NodeOfRecord(r model.RecordID) (NodeID, bool) {
	id := g.nodeOf[r]
	return id, id >= 0
}

// Build implements Algorithm 1: it creates a node per resolved entity
// (singleton records included, so every individual is searchable), then
// adds relationship edges between entities whose records co-occur on a
// certificate with that relationship.
func Build(d *model.Dataset, store *er.EntityStore) *Graph {
	defer obs.StartStage("pedigree_build").Stop()
	g := &Graph{Dataset: d, nodeOf: make([]NodeID, len(d.Records))}
	for i := range g.nodeOf {
		g.nodeOf[i] = -1
	}

	// Lines 2-6: one node per entity. Singleton (unlinked) records become
	// single-record entities so their people remain searchable.
	addNode := func(records []model.RecordID) {
		id := NodeID(len(g.Nodes))
		n := Node{ID: id, Records: append([]model.RecordID(nil), records...)}
		for _, r := range records {
			g.nodeOf[r] = id
		}
		g.Nodes = append(g.Nodes, n)
	}
	for _, e := range store.Entities() {
		addNode(store.Records(e))
	}
	for i := range d.Records {
		if g.nodeOf[i] == -1 {
			addNode([]model.RecordID{d.Records[i].ID})
		}
	}
	for i := range g.Nodes {
		g.aggregate(&g.Nodes[i])
	}

	// Lines 7-15: edges from certificate co-mentions.
	type edgeKey struct {
		from, to NodeID
		rel      model.Relationship
	}
	seen := map[edgeKey]bool{}
	for ci := range d.Certificates {
		cert := &d.Certificates[ci]
		for _, cr := range model.RelationsFor(cert.Type) {
			fromRec, okF := cert.Roles[cr.From]
			toRec, okT := cert.Roles[cr.To]
			if !okF || !okT {
				continue
			}
			from, to := g.nodeOf[fromRec], g.nodeOf[toRec]
			if from < 0 || to < 0 || from == to {
				continue
			}
			k := edgeKey{from, to, cr.Rel}
			if seen[k] {
				continue
			}
			seen[k] = true
			g.Nodes[from].Edges = append(g.Nodes[from].Edges, Edge{To: to, Rel: cr.Rel})
		}
	}
	for i := range g.Nodes {
		es := g.Nodes[i].Edges
		sort.Slice(es, func(a, b int) bool {
			if es[a].To != es[b].To {
				return es[a].To < es[b].To
			}
			return es[a].Rel < es[b].Rel
		})
	}
	return g
}

// aggregate fills a node's value summaries from its records.
func (g *Graph) aggregate(n *Node) {
	first := map[string]int{}
	sur := map[string]int{}
	loc := map[string]int{}
	n.MinYear, n.MaxYear = 1<<30, 0
	geoCount := 0
	for _, rid := range n.Records {
		rec := g.Dataset.Record(rid)
		if rec.Lat != 0 || rec.Lon != 0 {
			n.Lat += rec.Lat
			n.Lon += rec.Lon
			geoCount++
		}
		if rec.First != 0 {
			first[rec.FirstName()]++
		}
		if rec.Sur != 0 {
			sur[rec.Surname()]++
		}
		if rec.Addr != 0 {
			loc[rec.Address()]++
		}
		if rec.Gender != model.GenderUnknown {
			n.Gender = rec.Gender
		} else if rg := model.RoleGender(rec.Role); rg != model.GenderUnknown && n.Gender == model.GenderUnknown {
			n.Gender = rg
		}
		if rec.Year != 0 {
			if rec.Year < n.MinYear {
				n.MinYear = rec.Year
			}
			if rec.Year > n.MaxYear {
				n.MaxYear = rec.Year
			}
		}
		switch rec.Role {
		case model.Bb:
			n.BirthYear = rec.Year
		case model.Dd:
			n.DeathYear = rec.Year
		}
	}
	if n.MinYear == 1<<30 {
		n.MinYear = 0
	}
	if geoCount > 0 {
		n.Lat /= float64(geoCount)
		n.Lon /= float64(geoCount)
		n.HasGeo = true
	}
	n.FirstNames = rankValues(first)
	n.Surnames = rankValues(sur)
	n.Locations = rankValues(loc)
}

func rankValues(m map[string]int) []string {
	type vc struct {
		v string
		c int
	}
	list := make([]vc, 0, len(m))
	for v, c := range m {
		list = append(list, vc{v, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].v < list[j].v
	})
	out := make([]string, len(list))
	for i, x := range list {
		out[i] = x.v
	}
	return out
}

// DisplayName returns the node's most frequent first name and surname.
func (n *Node) DisplayName() string {
	f, s := "?", "?"
	if len(n.FirstNames) > 0 {
		f = n.FirstNames[0]
	}
	if len(n.Surnames) > 0 {
		s = n.Surnames[0]
	}
	return f + " " + s
}

// Pedigree is an extracted family tree around a focus entity.
type Pedigree struct {
	Focus NodeID
	// Members maps each included entity to its hop distance from the focus
	// (0 for the focus itself).
	Members map[NodeID]int
	// Edges are the relationship edges among included entities.
	Edges []PedigreeEdge
}

// PedigreeEdge is one relationship inside an extracted pedigree.
type PedigreeEdge struct {
	From, To NodeID
	Rel      model.Relationship
}

// Extract returns the family pedigree of the focus entity up to g
// generations (hops) away, following mother/father/spouse/child edges in
// both directions (Sec. 8; the paper uses g=2).
func (g *Graph) Extract(focus NodeID, generations int) *Pedigree {
	p := &Pedigree{Focus: focus, Members: map[NodeID]int{focus: 0}}
	// Undirected adjacency for traversal: an edge in either direction
	// connects the two entities.
	frontier := []NodeID{focus}
	for hop := 1; hop <= generations; hop++ {
		var next []NodeID
		for _, id := range frontier {
			for _, nb := range g.neighbours(id) {
				if _, ok := p.Members[nb]; ok {
					continue
				}
				p.Members[nb] = hop
				next = append(next, nb)
			}
		}
		frontier = next
	}
	seen := map[PedigreeEdge]bool{}
	for id := range p.Members {
		for _, e := range g.Nodes[id].Edges {
			if _, ok := p.Members[e.To]; !ok {
				continue
			}
			pe := PedigreeEdge{From: id, To: e.To, Rel: e.Rel}
			if !seen[pe] {
				seen[pe] = true
				p.Edges = append(p.Edges, pe)
			}
		}
	}
	sort.Slice(p.Edges, func(i, j int) bool {
		if p.Edges[i].From != p.Edges[j].From {
			return p.Edges[i].From < p.Edges[j].From
		}
		if p.Edges[i].To != p.Edges[j].To {
			return p.Edges[i].To < p.Edges[j].To
		}
		return p.Edges[i].Rel < p.Edges[j].Rel
	})
	return p
}

// neighbours returns the distinct entities connected to id by any
// relationship edge in either direction.
func (g *Graph) neighbours(id NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, e := range g.Nodes[id].Edges {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	// Reverse edges: scan is avoided by the symmetric construction —
	// motherOf/fatherOf always pair with childOf and spouseOf with
	// spouseOf, so forward edges suffice.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenderText renders a pedigree as an indented text tree rooted at the
// focus entity: ancestors above (parents, grandparents), descendants below,
// gender marked like the web interface's colours (Figs. 7-8).
func (g *Graph) RenderText(p *Pedigree) string {
	var b strings.Builder
	focus := g.Node(p.Focus)
	fmt.Fprintf(&b, "Family pedigree of %s %s\n", focus.DisplayName(), lifespan(focus))

	parents := g.related(p, p.Focus, model.MotherOf, model.FatherOf)
	for _, pid := range parents {
		pn := g.Node(pid)
		fmt.Fprintf(&b, "  parent: %s (%s) %s\n", pn.DisplayName(), pn.Gender, lifespan(pn))
		for _, gp := range g.related(p, pid, model.MotherOf, model.FatherOf) {
			gn := g.Node(gp)
			fmt.Fprintf(&b, "    grandparent: %s (%s) %s\n", gn.DisplayName(), gn.Gender, lifespan(gn))
		}
	}
	for _, sid := range g.related(p, p.Focus, model.SpouseOf) {
		sn := g.Node(sid)
		fmt.Fprintf(&b, "  spouse: %s (%s) %s\n", sn.DisplayName(), sn.Gender, lifespan(sn))
	}
	for _, cid := range g.children(p, p.Focus) {
		cn := g.Node(cid)
		fmt.Fprintf(&b, "  child: %s (%s) %s\n", cn.DisplayName(), cn.Gender, lifespan(cn))
		for _, gc := range g.children(p, cid) {
			gn := g.Node(gc)
			fmt.Fprintf(&b, "    grandchild: %s (%s) %s\n", gn.DisplayName(), gn.Gender, lifespan(gn))
		}
	}
	return b.String()
}

// related returns pedigree members that point at id with any of the given
// relationships (e.g. MotherOf/FatherOf edges incoming to id identify the
// parents).
func (g *Graph) related(p *Pedigree, id NodeID, rels ...model.Relationship) []NodeID {
	want := map[model.Relationship]bool{}
	for _, r := range rels {
		want[r] = true
	}
	var out []NodeID
	for member := range p.Members {
		for _, e := range g.Nodes[member].Edges {
			if e.To == id && want[e.Rel] {
				out = append(out, member)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// children returns pedigree members that id points at with MotherOf or
// FatherOf edges.
func (g *Graph) children(p *Pedigree, id NodeID) []NodeID {
	var out []NodeID
	for _, e := range g.Nodes[id].Edges {
		if e.Rel != model.MotherOf && e.Rel != model.FatherOf {
			continue
		}
		if _, ok := p.Members[e.To]; ok {
			out = append(out, e.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Deduplicate (several certificates can witness the same parenthood).
	out = dedupNodeIDs(out)
	return out
}

func dedupNodeIDs(ids []NodeID) []NodeID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

func lifespan(n *Node) string {
	switch {
	case n.BirthYear != 0 && n.DeathYear != 0:
		return fmt.Sprintf("(%d-%d)", n.BirthYear, n.DeathYear)
	case n.BirthYear != 0:
		return fmt.Sprintf("(b. %d)", n.BirthYear)
	case n.DeathYear != 0:
		return fmt.Sprintf("(d. %d)", n.DeathYear)
	}
	return ""
}
