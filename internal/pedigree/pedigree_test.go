package pedigree

import (
	"fmt"
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

// familyFixture builds a tiny resolved world: mother, father, and two
// children (one of whom died), with the parents' records linked into
// entities.
func familyFixture(t *testing.T) (*model.Dataset, *er.EntityStore) {
	t.Helper()
	d := &model.Dataset{Name: "fixture"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender, truth model.PersonID) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern("5 uig"), Year: year, Truth: truth,
		})
		return id
	}
	// Birth of child A, 1870.
	a := add(model.Bb, 0, "john", "macrae", 1870, model.Male, 10)
	m1 := add(model.Bm, 0, "kirsty", "macrae", 1870, model.Female, 11)
	f1 := add(model.Bf, 0, "hector", "macrae", 1870, model.Male, 12)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: a, model.Bm: m1, model.Bf: f1},
	})
	// Birth of child B, 1872.
	b := add(model.Bb, 1, "flora", "macrae", 1872, model.Female, 13)
	m2 := add(model.Bm, 1, "kirsty", "macrae", 1872, model.Female, 11)
	f2 := add(model.Bf, 1, "hector", "macrae", 1872, model.Male, 12)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: b, model.Bm: m2, model.Bf: f2},
	})
	// Death of child A, 1874.
	dd := add(model.Dd, 2, "john", "macrae", 1874, model.Male, 10)
	m3 := add(model.Dm, 2, "kirsty", "macrae", 1874, model.Female, 11)
	f3 := add(model.Df, 2, "hector", "macrae", 1874, model.Male, 12)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 2, Type: model.Death, Year: 1874, Age: 4, Cause: "measles",
		Roles: map[model.Role]model.RecordID{model.Dd: dd, model.Dm: m3, model.Df: f3},
	})

	store := er.NewEntityStore(d)
	store.Link(m1, m2)
	store.Link(m2, m3)
	store.Link(f1, f2)
	store.Link(f2, f3)
	store.Link(a, dd)
	return d, store
}

func TestBuildNodesAndSingletons(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	// Entities: mother, father, child A; singleton: child B (one record).
	if len(g.Nodes) != 4 {
		t.Fatalf("pedigree nodes = %d, want 4", len(g.Nodes))
	}
	for i := range d.Records {
		if _, ok := g.NodeOfRecord(d.Records[i].ID); !ok {
			t.Fatalf("record %d not mapped to a pedigree node", i)
		}
	}
}

func TestNodeAggregation(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	n, _ := g.NodeOfRecord(0) // child A
	node := g.Node(n)
	if node.DisplayName() != "john macrae" {
		t.Errorf("display name = %q", node.DisplayName())
	}
	if node.BirthYear != 1870 || node.DeathYear != 1874 {
		t.Errorf("lifespan = %d-%d, want 1870-1874", node.BirthYear, node.DeathYear)
	}
	if node.Gender != model.Male {
		t.Errorf("gender = %v", node.Gender)
	}
	if node.MinYear != 1870 || node.MaxYear != 1874 {
		t.Errorf("year range = %d..%d", node.MinYear, node.MaxYear)
	}
}

func TestEdgesFollowCertRelations(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	mother, _ := g.NodeOfRecord(1)
	childA, _ := g.NodeOfRecord(0)
	hasEdge := false
	for _, e := range g.Node(mother).Edges {
		if e.To == childA && e.Rel == model.MotherOf {
			hasEdge = true
		}
	}
	if !hasEdge {
		t.Error("missing MotherOf edge from mother entity to child A entity")
	}
}

func TestExtractTwoGenerations(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	childA, _ := g.NodeOfRecord(0)
	p := g.Extract(childA, 2)
	// Child A's pedigree: parents at hop 1, sibling at hop 2 (via parents).
	if p.Members[childA] != 0 {
		t.Error("focus must be hop 0")
	}
	mother, _ := g.NodeOfRecord(1)
	if p.Members[mother] != 1 {
		t.Errorf("mother at hop %d, want 1", p.Members[mother])
	}
	childB, _ := g.NodeOfRecord(3)
	if p.Members[childB] != 2 {
		t.Errorf("sibling at hop %d, want 2", p.Members[childB])
	}
	if len(p.Edges) == 0 {
		t.Error("pedigree should include relationship edges")
	}
}

func TestExtractOneGenerationExcludesSibling(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	childA, _ := g.NodeOfRecord(0)
	p := g.Extract(childA, 1)
	childB, _ := g.NodeOfRecord(3)
	if _, ok := p.Members[childB]; ok {
		t.Error("sibling is two hops away and must be excluded at g=1")
	}
}

func TestRenderText(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	mother, _ := g.NodeOfRecord(1)
	p := g.Extract(mother, 2)
	text := g.RenderText(p)
	if !strings.Contains(text, "kirsty macrae") {
		t.Errorf("render missing focus name:\n%s", text)
	}
	if !strings.Contains(text, "child: john macrae") {
		t.Errorf("render missing child:\n%s", text)
	}
	if !strings.Contains(text, "child: flora macrae") {
		t.Errorf("render missing second child:\n%s", text)
	}
	if !strings.Contains(text, "(1870-1874)") {
		t.Errorf("render missing lifespan:\n%s", text)
	}
}

func TestRenderParentsAndSpouse(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	childA, _ := g.NodeOfRecord(0)
	p := g.Extract(childA, 2)
	text := g.RenderText(p)
	if !strings.Contains(text, "parent: kirsty macrae (f)") {
		t.Errorf("render missing mother as parent:\n%s", text)
	}
	if !strings.Contains(text, "parent: hector macrae (m)") {
		t.Errorf("render missing father as parent:\n%s", text)
	}
}

func TestBuildOnResolvedSample(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.06))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := Build(p.Dataset, pr.Result.Store)
	if len(g.Nodes) == 0 {
		t.Fatal("no pedigree nodes")
	}
	// Every record is reachable.
	for i := range p.Dataset.Records {
		if _, ok := g.NodeOfRecord(p.Dataset.Records[i].ID); !ok {
			t.Fatalf("record %d unmapped", i)
		}
	}
	// Edges must reference valid nodes.
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Edges {
			if int(e.To) < 0 || int(e.To) >= len(g.Nodes) {
				t.Fatalf("edge to invalid node %d", e.To)
			}
		}
	}
	// Extraction terminates and stays bounded on a real sample.
	pdg := g.Extract(0, 2)
	if len(pdg.Members) < 1 {
		t.Fatal("empty pedigree")
	}
}

func TestRenderDot(t *testing.T) {
	d, store := familyFixture(t)
	g := Build(d, store)
	mother, _ := g.NodeOfRecord(1)
	p := g.Extract(mother, 2)
	dot := g.RenderDot(p)
	if !strings.HasPrefix(dot, "digraph pedigree {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed dot output:\n%s", dot)
	}
	if !strings.Contains(dot, "kirsty macrae") {
		t.Error("dot missing focus label")
	}
	if !strings.Contains(dot, "peripheries=2") {
		t.Error("dot missing focus highlight")
	}
	if !strings.Contains(dot, "mistyrose") || !strings.Contains(dot, "lightblue") {
		t.Error("dot missing gender colours")
	}
	if !strings.Contains(dot, "->") {
		t.Error("dot missing edges")
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Error("dot missing marriage edge")
	}
	// Every member node is declared exactly once.
	for id := range p.Members {
		decl := fmt.Sprintf("\n  n%d [label=", id)
		if strings.Count(dot, decl) != 1 {
			t.Errorf("node %d declared %d times", id, strings.Count(dot, decl))
		}
	}
}
