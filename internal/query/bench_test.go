package query

import (
	"strconv"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/pedigree"
)

// benchEngine builds one engine at benchmark scale, shared per benchmark.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.1))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	return NewEngine(g, k, s)
}

// hotQuery returns the query with the most candidates the data set can
// produce: the most frequent first name paired with the most frequent
// surname (IOS-style name skew, where the top name covers >8% of records).
func hotQuery(e *Engine) Query {
	firstCount := map[string]int{}
	surCount := map[string]int{}
	for i := range e.Graph.Nodes {
		n := &e.Graph.Nodes[i]
		for _, v := range n.FirstNames {
			firstCount[v]++
		}
		for _, v := range n.Surnames {
			surCount[v]++
		}
	}
	top := func(m map[string]int) string {
		best, bestN := "", -1
		for v, n := range m {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		return best
	}
	return Query{FirstName: top(firstCount), Surname: top(surCount)}
}

// BenchmarkSearchHotName measures the accumulator + ranking hot path on a
// popular-name query (similarity memo warm): the per-search overhead a
// skewed workload pays on every request.
func BenchmarkSearchHotName(b *testing.B) {
	e := benchEngine(b)
	q := hotQuery(e)
	e.Search(q) // warm the similarity memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q)
	}
}

// BenchmarkSearchColdName measures the memo-miss path: every iteration
// probes a surname never seen before, forcing a bigram-postings scan and
// similarity computation before ranking.
func BenchmarkSearchColdName(b *testing.B) {
	e := benchEngine(b)
	q := hotQuery(e)
	sur := q.Surname
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Surname = sur + strconv.Itoa(i)
		e.Search(q)
	}
}
