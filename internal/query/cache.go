package query

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"github.com/snaps/snaps/internal/obs"
)

// Result-cache metrics in the default registry, exposed at GET /metrics.
var (
	mCacheHits = obs.Default.Counter("snaps_query_cache_hits_total",
		"Searches answered from the generation-keyed result cache.")
	mCacheMisses = obs.Default.Counter("snaps_query_cache_misses_total",
		"Searches that missed the result cache and ran the full engine.")
	mCacheEvictions = obs.Default.Counter("snaps_query_cache_evictions_total",
		"Result-cache entries dropped (LRU pressure or superseded generation).")
	mCacheEntries = obs.Default.Gauge("snaps_query_cache_entries",
		"Result-cache entries currently resident.")
	mCacheStaleServes = obs.Default.Counter("snaps_query_cache_stale_serves_total",
		"Searches served from a previous generation's entry while a refresh ran.")
	mCacheRefreshes = obs.Default.Counter("snaps_query_cache_refreshes_total",
		"Background refreshes that replaced a stale-served entry with the current generation's ranking.")
)

// ResultCache is a size-bounded LRU of ranked result lists, keyed by
// (serving generation, normalised query). The live-ingestion pipeline
// shares one cache across snapshot swaps and bumps the generation on every
// swap, so entries written against a superseded snapshot can never be
// served again; Invalidate drops them eagerly rather than waiting for LRU
// pressure. Cached slices are shared with callers and are read-only by
// contract (Engine.Search documents the same).
type ResultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[resultKey]*list.Element

	// staleWindow is how many generations behind the current one entries
	// are retained for stale-while-revalidate serving: 0 (the default) is
	// the strict mode — Invalidate drops everything below the new
	// generation; 1 keeps the immediately superseded generation so a
	// flush-driven generation bump never stampedes the engine.
	staleWindow uint64
	// refreshing singleflights background refreshes: at most one
	// goroutine recomputes a given (generation, key) while stale serves
	// continue.
	refreshing map[resultKey]struct{}
}

type resultKey struct {
	gen uint64
	q   string
}

type cacheEntry struct {
	key     resultKey
	results []Result
}

// NewResultCache returns a cache bounded to capacity entries, or nil when
// capacity <= 0 (a nil cache disables caching on the engine).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		return nil
	}
	return &ResultCache{cap: capacity, ll: list.New(), items: map[resultKey]*list.Element{},
		refreshing: map[resultKey]struct{}{}}
}

// EnableStaleServe switches the cache into stale-while-revalidate mode:
// Invalidate retains the immediately superseded generation's entries so
// engines with StaleServe set can serve them while a background refresh
// recomputes the ranking under the new generation. Nil-safe.
func (c *ResultCache) EnableStaleServe() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.staleWindow = 1
	c.mu.Unlock()
}

// GetStale returns the ranking cached for the query under the generation
// immediately preceding gen, when the cache keeps one (EnableStaleServe).
func (c *ResultCache) GetStale(gen uint64, key string) ([]Result, bool) {
	if gen == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.staleWindow == 0 {
		return nil, false
	}
	el, ok := c.items[resultKey{gen - 1, key}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

// beginRefresh claims the right to refresh (gen, key); the claimant must
// call endRefresh when done. A second caller while a refresh is in flight
// gets false and serves stale without spawning another recompute.
func (c *ResultCache) beginRefresh(gen uint64, key string) bool {
	k := resultKey{gen, key}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, inflight := c.refreshing[k]; inflight {
		return false
	}
	c.refreshing[k] = struct{}{}
	return true
}

func (c *ResultCache) endRefresh(gen uint64, key string) {
	c.mu.Lock()
	delete(c.refreshing, resultKey{gen, key})
	c.mu.Unlock()
}

// Get returns the cached ranking for the query under the given generation.
func (c *ResultCache) Get(gen uint64, key string) ([]Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[resultKey{gen, key}]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	return el.Value.(*cacheEntry).results, true
}

// Put stores a ranking under (generation, key), evicting the least
// recently used entry when the cache is full.
func (c *ResultCache) Put(gen uint64, key string, results []Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := resultKey{gen, key}
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).results = results
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, results: results})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		mCacheEvictions.Inc()
	}
	mCacheEntries.Set(int64(c.ll.Len()))
}

// Invalidate evicts every entry too old to serve once gen is current: in
// strict mode (the default) everything below gen, in stale-while-revalidate
// mode everything older than the staleWindow generations kept for stale
// serving. The ingest pipeline calls it after each snapshot swap so
// superseded rankings free their memory promptly instead of aging out.
func (c *ResultCache) Invalidate(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.gen+c.staleWindow < gen {
			c.ll.Remove(el)
			delete(c.items, e.key)
			mCacheEvictions.Inc()
		}
		el = next
	}
	mCacheEntries.Set(int64(c.ll.Len()))
}

// Len reports the number of resident entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey canonicalises a query (plus the weights and result-list bound
// that shape its ranking) into a cache key. Engines of different
// generations never share entries — the generation is the other half of
// the composite key.
func cacheKey(q Query, w Weights, topM int) string {
	var b strings.Builder
	b.Grow(len(q.FirstName) + len(q.Surname) + len(q.Location) + 64)
	b.WriteString(q.FirstName)
	b.WriteByte(0)
	b.WriteString(q.Surname)
	b.WriteByte(0)
	b.WriteString(q.Location)
	b.WriteByte(0)
	var num [24]byte
	writeInt := func(v int64) {
		b.Write(strconv.AppendInt(num[:0], v, 10))
		b.WriteByte(0)
	}
	writeFloat := func(v float64) {
		b.Write(strconv.AppendFloat(num[:0], v, 'g', -1, 64))
		b.WriteByte(0)
	}
	writeInt(int64(q.Gender))
	writeInt(int64(q.YearFrom))
	writeInt(int64(q.YearTo))
	writeInt(int64(q.CertType))
	if q.HasCertType {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	writeFloat(q.CenterLat)
	writeFloat(q.CenterLon)
	writeFloat(q.RadiusKm)
	writeFloat(w.FirstName)
	writeFloat(w.Surname)
	writeFloat(w.Gender)
	writeFloat(w.Year)
	writeFloat(w.Location)
	writeInt(int64(topM))
	return b.String()
}
