// External test closing the loop of the query hot-path overhaul: pooled
// accumulator state, the sharded similarity memo, and the generation-keyed
// result cache are hammered concurrently while the ingest pipeline flushes
// and hot-swaps serving snapshots underneath. Run under -race in CI.
package query_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/query"
)

// genCert is the certificate ingested to mark generation step i: the child
// name is unique per step, so searching it tells exactly which generations
// can see it.
func genCert(i int) *ingest.Certificate {
	return &ingest.Certificate{
		Type: "birth", Year: 1870 + i%40, Address: "staffin",
		Roles: map[string]ingest.Person{
			"Bb": {FirstName: fmt.Sprintf("ruaraidh%d", i), Surname: "nicolson", Gender: "m"},
			"Bm": {FirstName: "peigi", Surname: "nicolson"},
			"Bf": {FirstName: "iain", Surname: "nicolson"},
		},
	}
}

// TestCacheStressNoStaleGenerations runs concurrent Search traffic — cache
// hits (repeated hot query), cache misses (per-goroutine unique queries),
// and memo-shard stampedes (all goroutines probing the same never-seen
// surname) — while the ingest pipeline flushes and swaps snapshots. After
// every swap the test asserts the freshly served generation finds the
// certificate ingested for it, even though the identical query string was
// cached (empty) against earlier generations: a result cache that ignored
// generations would serve the stale empty ranking.
func TestCacheStressNoStaleGenerations(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.03))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	sv := ingest.NewServing(p.Dataset, pr.Result.Store, 0.5)

	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1000 // flush only when the test says so
	cfg.QueryCache = 256
	// This test pins the strict invalidation mode: after a swap no request
	// may see a superseded ranking, not even once. The production default
	// (StaleServe) deliberately relaxes this by exactly one generation —
	// TestStaleWhileRevalidate covers that contract.
	cfg.StaleServe = false
	pipe, err := ingest.NewPipeline(sv, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	var hotFirst, hotSur string
	for i := range sv.Graph.Nodes {
		n := &sv.Graph.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			hotFirst, hotSur = n.FirstNames[0], n.Surnames[0]
			break
		}
	}
	if hotFirst == "" {
		t.Fatal("no searchable entity")
	}

	const steps = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Hot searchers: the same query on whatever generation is current —
	// cache misses on the first probe of each generation, hits after.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng := pipe.Serving().Engine
				eng.Search(query.Query{FirstName: hotFirst, Surname: hotSur})
			}
		}()
	}
	// Cold searchers: per-iteration unique surnames — result-cache misses
	// plus similarity-memo misses; every goroutine also probes one shared
	// novel surname to stampede a single memo shard concurrently.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng := pipe.Serving().Engine
				eng.Search(query.Query{FirstName: hotFirst,
					Surname: fmt.Sprintf("%s%d_%d", hotSur, g, i)})
				eng.Search(query.Query{FirstName: hotFirst, Surname: "zzstampede"})
			}
		}(g)
	}

	// hasMarker reports whether any returned entity carries the marker
	// first name in the given serving bundle. The query also retrieves
	// pre-existing entities by surname alone, so presence of the marker
	// entity — not result count — is the generation signal.
	hasMarker := func(sv *ingest.Serving, res []query.Result, first string) bool {
		for _, r := range res {
			for _, fn := range sv.Graph.Node(r.Entity).FirstNames {
				if fn == first {
					return true
				}
			}
		}
		return false
	}

	// Driver: ingest one marker certificate per step, flush (publishing a
	// new generation), and assert the new generation serves it. The same
	// query was issued — and its marker-less ranking cached — against the
	// previous generation first, so a cache that ignored generations
	// would keep serving the stale ranking.
	for i := 0; i < steps; i++ {
		first := fmt.Sprintf("ruaraidh%d", i)
		markerQ := query.Query{FirstName: first, Surname: "nicolson"}

		before := pipe.Serving()
		// Two searches: a cache miss, then a hit of the stale-to-be entry.
		for pass := 0; pass < 2; pass++ {
			if hasMarker(before, before.Engine.Search(markerQ), first) {
				t.Fatalf("step %d pass %d: marker entity visible before ingesting it", i, pass)
			}
		}

		if err := pipe.Submit(genCert(i)); err != nil {
			t.Fatalf("step %d: submit: %v", i, err)
		}
		if err := pipe.Flush(); err != nil {
			t.Fatalf("step %d: flush: %v", i, err)
		}

		after := pipe.Serving()
		if after.Generation != before.Generation+1 {
			t.Fatalf("step %d: generation %d -> %d, want +1", i, before.Generation, after.Generation)
		}
		// Repeat to cover both the cache-miss and cache-hit path of the
		// new generation.
		for pass := 0; pass < 2; pass++ {
			if !hasMarker(after, after.Engine.Search(markerQ), first) {
				t.Fatalf("step %d pass %d: generation %d served a stale ranking without its own certificate",
					i, pass, after.Generation)
			}
		}
		// The superseded generation still answers consistently for
		// in-flight readers holding the old bundle.
		if hasMarker(before, before.Engine.Search(markerQ), first) {
			t.Fatalf("step %d: old generation suddenly sees the new certificate", i)
		}
	}
	close(stop)
	wg.Wait()

	st := pipe.Status()
	if st.Generation != steps {
		t.Fatalf("status generation = %d, want %d", st.Generation, steps)
	}
}
