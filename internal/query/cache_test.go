package query

import (
	"testing"

	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/pedigree"
)

func fakeResults(n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{Entity: pedigree.NodeID(i), Score: float64(100 - i),
			Matched: map[index.Field]bool{index.FieldFirstName: true}}
	}
	return out
}

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put(1, "a", fakeResults(1))
	c.Put(1, "b", fakeResults(2))
	if _, ok := c.Get(1, "a"); !ok {
		t.Fatal("a evicted below capacity")
	}
	// "a" is now most recently used; inserting "c" must evict "b".
	c.Put(1, "c", fakeResults(3))
	if _, ok := c.Get(1, "b"); ok {
		t.Fatal("LRU entry b not evicted")
	}
	if _, ok := c.Get(1, "a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheGenerationKeying(t *testing.T) {
	c := NewResultCache(8)
	c.Put(1, "q", fakeResults(5))
	if _, ok := c.Get(2, "q"); ok {
		t.Fatal("entry of generation 1 served under generation 2")
	}
	if res, ok := c.Get(1, "q"); !ok || len(res) != 5 {
		t.Fatal("entry lost under its own generation")
	}
	c.Put(2, "q", fakeResults(3))
	if res, ok := c.Get(2, "q"); !ok || len(res) != 3 {
		t.Fatal("generation 2 entry not independently stored")
	}
	c.Invalidate(2)
	if _, ok := c.Get(1, "q"); ok {
		t.Fatal("Invalidate left a superseded-generation entry behind")
	}
	if _, ok := c.Get(2, "q"); !ok {
		t.Fatal("Invalidate dropped a current-generation entry")
	}
}

func TestNewResultCacheDisabled(t *testing.T) {
	if NewResultCache(0) != nil || NewResultCache(-3) != nil {
		t.Fatal("capacity <= 0 must return a nil (disabled) cache")
	}
}

func TestCacheKeyDistinguishesQueries(t *testing.T) {
	w := DefaultWeights()
	base := Query{FirstName: "mary", Surname: "macdonald"}
	variants := []Query{
		{FirstName: "mary", Surname: "macdonal\x00d"}, // separator injection
		{FirstName: "marymacdonald"},
		{FirstName: "mary", Surname: "macdonald", YearFrom: 1850},
		{FirstName: "mary", Surname: "macdonald", YearTo: 1850},
		{FirstName: "mary", Surname: "macdonald", HasCertType: true},
		{FirstName: "mary", Surname: "macdonald", RadiusKm: 5},
	}
	bk := cacheKey(base, w, 20)
	for i, v := range variants {
		if cacheKey(v, w, 20) == bk {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
	if cacheKey(base, w, 20) != bk {
		t.Fatal("cache key not deterministic")
	}
	if cacheKey(base, w, 3) == bk {
		t.Fatal("TopM not part of the key")
	}
	w2 := w
	w2.Surname = 0.2
	if cacheKey(base, w2, 20) == bk {
		t.Fatal("weights not part of the key")
	}
}
