package query

import (
	"math"
	"testing"

	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

// fullQueryFor builds a query exercising every scored field against the
// node's own values, so the location-similarity path is guaranteed to fire.
func fullQueryFor(e *Engine, n *pedigree.Node) (Query, bool) {
	if len(n.FirstNames) == 0 || len(n.Surnames) == 0 ||
		n.Gender == model.GenderUnknown || n.MinYear == 0 || len(n.Locations) == 0 {
		return Query{}, false
	}
	certType := model.Birth
	if len(n.Records) > 0 {
		certType = e.Graph.Dataset.Record(n.Records[0]).Role.CertType()
	}
	return Query{
		FirstName: n.FirstNames[0],
		Surname:   n.Surnames[0],
		Gender:    n.Gender,
		YearFrom:  n.MinYear,
		YearTo:    n.MaxYear,
		Location:  n.Locations[0],
		CertType:  certType, HasCertType: true,
	}, true
}

// TestExplainBreakdownSumsToSearchScore runs a query with every scored
// field populated — including a location match (similarity path) and a
// cert-type restriction — and asserts, for each returned entity, that the
// per-field contributions of Explain sum to exactly the score Search
// assigned that entity.
func TestExplainBreakdownSumsToSearchScore(t *testing.T) {
	e := builtEngine(t)
	var q Query
	ok := false
	for i := range e.Graph.Nodes {
		if q, ok = fullQueryFor(e, &e.Graph.Nodes[i]); ok {
			break
		}
	}
	if !ok {
		t.Skip("no entity with names, gender, years, and a location")
	}

	results := e.Search(q)
	if len(results) == 0 {
		t.Fatal("full query returned no results")
	}
	// The query enables every scored field, so its weight sum is fixed.
	w := e.Weights
	weightSum := w.FirstName + w.Surname + w.Gender + w.Year + w.Location

	sawLocation := false
	for _, r := range results {
		ex := e.Explain(q, r.Entity)

		var contribSum float64
		for _, f := range ex.Fields {
			contribSum += f.Contribution
			if math.Abs(f.Contribution-f.Weight*f.Similarity) > 1e-12 {
				t.Errorf("entity %d field %v: contribution %v != weight %v x similarity %v",
					r.Entity, f.Field, f.Contribution, f.Weight, f.Similarity)
			}
			if f.Field == index.FieldLocation {
				sawLocation = true
				if f.QueryValue != q.Location {
					t.Errorf("location explanation for query value %q, want %q", f.QueryValue, q.Location)
				}
				if f.Similarity <= 0 || f.Similarity > 1 {
					t.Errorf("location similarity %v out of (0,1]", f.Similarity)
				}
			}
		}
		if got := 100 * contribSum / weightSum; math.Abs(got-ex.Score) > 1e-9 {
			t.Errorf("entity %d: field contributions sum to %v, Explain.Score is %v", r.Entity, got, ex.Score)
		}
		if math.Abs(ex.Score-r.Score) > 1e-9 {
			t.Errorf("entity %d: Explain score %v != Search score %v", r.Entity, ex.Score, r.Score)
		}
		// The cert-type restriction filtered this result set: every entity
		// Search returned must carry a record of the queried type.
		has := false
		for _, rid := range e.Graph.Node(r.Entity).Records {
			if e.Graph.Dataset.Record(rid).Role.CertType() == q.CertType {
				has = true
				break
			}
		}
		if !has {
			t.Errorf("entity %d survived the cert-type filter without a %v record", r.Entity, q.CertType)
		}
	}
	if !sawLocation {
		t.Error("no result explained a location contribution despite querying a held location")
	}
}

// TestExplainApproximateLocation exercises the location-similarity path
// with a misspelt location: the contribution must scale by similarity < 1.
func TestExplainApproximateLocation(t *testing.T) {
	e := builtEngine(t)
	var n *pedigree.Node
	for i := range e.Graph.Nodes {
		cand := &e.Graph.Nodes[i]
		if len(cand.FirstNames) > 0 && len(cand.Surnames) > 0 && len(cand.Locations) > 0 &&
			len(cand.Locations[0]) >= 6 {
			n = cand
			break
		}
	}
	if n == nil {
		t.Skip("no entity with a long-enough location")
	}
	loc := n.Locations[0]
	misspelt := loc[:len(loc)-1] + "x"
	q := Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0], Location: misspelt}

	ex := e.Explain(q, n.ID)
	for _, f := range ex.Fields {
		if f.Field != index.FieldLocation {
			continue
		}
		if f.Exact {
			t.Error("misspelt location explained as exact")
		}
		if f.Similarity >= 1 || f.Similarity <= 0 {
			t.Errorf("approximate location similarity %v, want in (0,1)", f.Similarity)
		}
		if math.Abs(f.Contribution-e.Weights.Location*f.Similarity) > 1e-12 {
			t.Errorf("approximate location contribution %v not scaled by similarity", f.Contribution)
		}
		// And Search agrees with the degraded score.
		for _, r := range e.Search(q) {
			if r.Entity == n.ID && math.Abs(ex.Score-r.Score) > 1e-9 {
				t.Errorf("Explain %v != Search %v on approximate location", ex.Score, r.Score)
			}
		}
		return
	}
	// The similarity index may not cover the misspelling at all; that is a
	// legitimate no-contribution outcome, not a failure — but the entity
	// must then score identically in Search.
	for _, r := range e.Search(q) {
		if r.Entity == n.ID && math.Abs(ex.Score-r.Score) > 1e-9 {
			t.Errorf("Explain %v != Search %v with unmatched location", ex.Score, r.Score)
		}
	}
}
