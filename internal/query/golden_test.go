package query

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/strsim"
)

// referenceSearch is the historical engine — per-candidate pointer map,
// Matched maps for every candidate, full sort, trim — kept verbatim as the
// golden oracle: the slab + heap engine must produce byte-identical ranked
// output for any query.
func referenceSearch(e *Engine, q Query) []Result {
	lookupName := func(f index.Field, value string) []index.SimilarValue {
		if value == "" {
			return nil
		}
		return e.Similar.Similar(f, value)
	}
	firstVals := lookupName(index.FieldFirstName, q.FirstName)
	surVals := lookupName(index.FieldSurname, q.Surname)

	m := map[pedigree.NodeID]*accum{}
	weightSum := e.Weights.FirstName + e.Weights.Surname
	refAccumulate := func(f index.Field, value string, similar []index.SimilarValue, weight float64) {
		if value == "" {
			return
		}
		for _, sv := range similar {
			exact := sv.Value == value
			contribution := weight * sv.Sim
			for _, id := range e.Keyword.Lookup(f, sv.Value) {
				a := m[id]
				if a == nil {
					a = &accum{}
					m[id] = a
				}
				if contribution > a.contrib[f] {
					a.contrib[f] = contribution
					a.matched[f] = exact
				}
				a.hasField[f] = true
			}
		}
	}
	refAccumulate(index.FieldFirstName, q.FirstName, firstVals, e.Weights.FirstName)
	refAccumulate(index.FieldSurname, q.Surname, surVals, e.Weights.Surname)

	if q.Gender != model.GenderUnknown {
		weightSum += e.Weights.Gender
		for id, a := range m {
			if e.Graph.Node(id).Gender == q.Gender {
				a.contrib[index.FieldGender] = e.Weights.Gender
				a.matched[index.FieldGender] = true
				a.hasField[index.FieldGender] = true
			}
		}
	}
	if q.YearFrom != 0 || q.YearTo != 0 {
		weightSum += e.Weights.Year
		from, to := q.YearFrom, q.YearTo
		if from == 0 {
			from = -1 << 30
		}
		if to == 0 {
			to = 1 << 30
		}
		for id, a := range m {
			n := e.Graph.Node(id)
			if n.MinYear != 0 && n.MinYear <= to && n.MaxYear >= from {
				a.contrib[index.FieldYear] = e.Weights.Year
				a.matched[index.FieldYear] = true
				a.hasField[index.FieldYear] = true
			}
		}
	}
	if q.Location != "" {
		weightSum += e.Weights.Location
		for id, a := range m {
			if sim, exact, ok := e.bestLocation(id, q.Location); ok {
				a.contrib[index.FieldLocation] = e.Weights.Location * sim
				a.matched[index.FieldLocation] = exact
				a.hasField[index.FieldLocation] = true
			}
		}
	}
	if q.HasCertType {
		for id, a := range m {
			if !e.hasCertType(id, q.CertType) {
				a.excluded = true
			}
		}
	}
	if q.RadiusKm > 0 {
		for id, a := range m {
			n := e.Graph.Node(id)
			if n.HasGeo && strsim.GeoDistanceKm(q.CenterLat, q.CenterLon, n.Lat, n.Lon) > q.RadiusKm {
				a.excluded = true
			}
		}
	}

	results := make([]Result, 0, len(m))
	for id, a := range m {
		if a.excluded {
			continue
		}
		matched := map[index.Field]bool{}
		for f := index.Field(0); f < index.NumFields; f++ {
			if a.hasField[f] {
				matched[f] = a.matched[f]
			}
		}
		results = append(results, Result{
			Entity:  id,
			Score:   100 * a.score() / weightSum,
			Matched: matched,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Entity < results[j].Entity
	})
	if e.TopM > 0 && len(results) > e.TopM {
		results = results[:e.TopM]
	}
	return results
}

// goldenQueries builds a query set spanning every engine code path: hot
// and misspelt names, gender/year/location refinement, cert-type and geo
// exclusion, and their combinations.
func goldenQueries(e *Engine) []Query {
	var qs []Query
	seen := 0
	for i := range e.Graph.Nodes {
		n := &e.Graph.Nodes[i]
		if len(n.FirstNames) == 0 || len(n.Surnames) == 0 {
			continue
		}
		first, sur := n.FirstNames[0], n.Surnames[0]
		qs = append(qs, Query{FirstName: first, Surname: sur})
		qs = append(qs, Query{FirstName: first, Surname: sur, Gender: model.Female})
		if n.MinYear != 0 {
			qs = append(qs, Query{FirstName: first, Surname: sur,
				YearFrom: n.MinYear - 2, YearTo: n.MinYear + 2})
		}
		if len(n.Locations) > 0 {
			qs = append(qs, Query{FirstName: first, Surname: sur, Location: n.Locations[0]})
		}
		qs = append(qs, Query{FirstName: first, Surname: sur,
			CertType: model.Birth, HasCertType: true})
		if n.HasGeo {
			qs = append(qs, Query{FirstName: first, Surname: sur,
				CenterLat: n.Lat, CenterLon: n.Lon, RadiusKm: 10})
		}
		if len(sur) >= 5 {
			qs = append(qs, Query{FirstName: first, Surname: sur[:len(sur)-1] + "x"})
		}
		seen++
		if seen >= 12 {
			break
		}
	}
	return qs
}

// render serialises a result list into the byte-comparable golden form.
func render(results []Result) string {
	out := ""
	for _, r := range results {
		out += fmt.Sprintf("%d %.17g", r.Entity, r.Score)
		for f := index.Field(0); f < index.NumFields; f++ {
			if exact, ok := r.Matched[f]; ok {
				out += fmt.Sprintf(" %v=%v", f, exact)
			}
		}
		out += "\n"
	}
	return out
}

// TestSearchGoldenEquivalence proves the slab accumulator + top-m heap
// engine returns byte-identical ranked output to the historical map + full
// sort engine, over a query set covering every scoring path, at several
// result-list bounds, and on both the cached and uncached paths.
func TestSearchGoldenEquivalence(t *testing.T) {
	e := builtEngine(t)
	qs := goldenQueries(e)
	if len(qs) == 0 {
		t.Skip("no searchable entities")
	}
	for _, topM := range []int{20, 3, 1, 0} {
		e.TopM = topM
		e.Cache = nil
		for qi, q := range qs {
			want := render(referenceSearch(e, q))
			got := render(e.Search(q))
			if got != want {
				t.Fatalf("topM=%d query %d (%+v):\nreference:\n%s\nengine:\n%s",
					topM, qi, q, want, got)
			}
			// Repeat to exercise the recycled (pooled) state.
			if again := render(e.Search(q)); again != want {
				t.Fatalf("topM=%d query %d: pooled re-search diverged:\n%s\nvs\n%s",
					topM, qi, want, again)
			}
		}
	}

	// Cached path: first search fills the cache, second must serve the
	// identical ranking from it.
	e.TopM = 20
	e.Cache = NewResultCache(128)
	e.Generation = 7
	for qi, q := range qs {
		want := render(referenceSearch(e, q))
		first := render(e.Search(q))
		second := render(e.Search(q))
		if first != want || second != want {
			t.Fatalf("cached query %d (%+v): miss/hit diverged from reference", qi, q)
		}
	}
	if e.Cache.Len() == 0 {
		t.Fatal("cache stayed empty across searches")
	}
}

// TestSearchResultsDeepEqual double-checks structural equality (maps
// included) between reference and engine on the default configuration.
func TestSearchResultsDeepEqual(t *testing.T) {
	e := builtEngine(t)
	qs := goldenQueries(e)
	if len(qs) == 0 {
		t.Skip("no searchable entities")
	}
	for qi, q := range qs {
		want := referenceSearch(e, q)
		got := e.Search(q)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d (%+v): results differ\nwant %+v\ngot  %+v", qi, q, want, got)
		}
	}
}
