// This file is an external test (package query_test) so it can close the
// loop the production server runs: internal/ingest hot-swapping serving
// bundles that internal/query reads through an atomic pointer, while
// internal/server scrapes every metric the three packages record.
package query_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/query"
	"github.com/snaps/snaps/internal/server"
)

// raceCert builds the i-th distinct birth certificate for the hammer.
func raceCert(i int) *ingest.Certificate {
	return &ingest.Certificate{
		Type: "birth", Year: 1880 + i%30, Address: fmt.Sprintf("%d uig", i%7),
		Roles: map[string]ingest.Person{
			"Bb": {FirstName: fmt.Sprintf("tormod%d", i), Surname: "macleod", Gender: "m"},
			"Bm": {FirstName: "mairi", Surname: "macleod"},
			"Bf": {FirstName: "norman", Surname: "macleod"},
		},
	}
}

// TestConcurrentSearchFlushAndScrape hammers, under -race, the full
// concurrent surface the observability layer touches: Engine.Search on
// whatever generation the atomic.Pointer currently serves, ingest flushes
// swapping in new generations mid-read, and GET /metrics scrapes reading
// every counter and histogram the other goroutines are writing.
func TestConcurrentSearchFlushAndScrape(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.03))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	sv := ingest.NewServing(p.Dataset, pr.Result.Store, 0.5)

	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 4
	pipe, err := ingest.NewPipeline(sv, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	srv := server.New(sv.Engine)
	srv.EnableIngest(pipe)

	// A name guaranteed to stay resolvable across generations.
	var first, sur string
	for i := range sv.Graph.Nodes {
		n := &sv.Graph.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			first, sur = n.FirstNames[0], n.Surnames[0]
			break
		}
	}
	if first == "" {
		t.Fatal("no searchable entity in the generated graph")
	}

	var wg sync.WaitGroup

	// Searchers: half query the engine directly off the serving pointer
	// (exercising the swap-during-read path), half go through the HTTP
	// handler so the request middleware is hammered too.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if g%2 == 0 {
					engine := pipe.Serving().Engine
					engine.Search(query.Query{FirstName: first, Surname: sur})
					continue
				}
				target := "/api/search?first_name=" + url.QueryEscape(first) +
					"&surname=" + url.QueryEscape(sur)
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
				if w.Code != http.StatusOK {
					t.Errorf("search status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}(g)
	}

	// Submitters: enqueue certificates and force flushes, so generations
	// swap while the searchers read.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				if err := pipe.Submit(raceCert(g*100 + i)); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%4 == 3 {
					if err := pipe.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// Scrapers: read the whole registry while everyone else writes it.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
				if w.Code != http.StatusOK {
					t.Errorf("metrics status %d", w.Code)
					return
				}
				if !strings.Contains(w.Body.String(), "snaps_query_searches_total") {
					t.Error("metrics scrape missing snaps_query_searches_total")
					return
				}
			}
		}()
	}

	wg.Wait()

	// The swapped-in generation must serve the ingested certificates.
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	results := pipe.Serving().Engine.Search(query.Query{FirstName: "tormod1", Surname: "macleod"})
	if len(results) == 0 {
		t.Fatal("ingested certificate not searchable after final flush")
	}

	// After a search and an ingest flush the scrape must show all three
	// headline metrics nonzero (the ISSUE's acceptance criterion).
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		"snaps_http_requests_total{", "snaps_ingest_flush_seconds_count ",
		"snaps_query_searches_total ", "snaps_ingest_snapshot_swaps_total ",
	} {
		line := ""
		for _, l := range strings.Split(body, "\n") {
			if strings.HasPrefix(l, want) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("metrics scrape missing %q series", want)
		}
		if strings.HasSuffix(line, " 0") {
			t.Fatalf("metric %q is zero after search + flush: %s", want, line)
		}
	}
}
