// Package query implements the online query processing and ranking of
// Sec. 7 of the paper: a query with a mandatory first name and surname, an
// optional gender, year (or year range), and location is matched against
// the keyword index (exactly and approximately through the similarity-aware
// index), scored into an accumulator, and the top-m entities are returned
// ranked by their normalised match scores.
//
// The serving path is allocation-free in the steady state: candidates score
// into a pooled dense accumulator slab addressed through a reusable
// NodeID→slot table (epoch-reset, so recycling is O(1)), and ranking uses
// bounded top-m heap selection instead of sorting every candidate. Ranked
// output is byte-identical to the naive map + full-sort engine; the golden
// tests guard that equivalence.
package query

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/strsim"
)

// Engine metrics in the default registry, exposed at GET /metrics.
var (
	mSearches = obs.Default.Counter("snaps_query_searches_total",
		"Search queries answered by the ranking engine.")
	mSearchSeconds = obs.Default.Histogram("snaps_query_search_seconds",
		"End-to-end Search latency.", obs.DefBuckets)
	mCandidates = obs.Default.Histogram("snaps_query_candidates",
		"Entities entering the score accumulator per search.", obs.CountBuckets)
)

// Query is a user search request. FirstName and Surname are mandatory; the
// rest are optional (zero values mean "any").
type Query struct {
	FirstName string
	Surname   string
	Gender    model.Gender
	// YearFrom/YearTo bound the event year; zero means unbounded.
	YearFrom, YearTo int
	Location         string
	// CertType restricts results to entities with a record of this kind:
	// the web form's "search birth or death records" radio button.
	CertType model.CertType
	// HasCertType enables the CertType restriction.
	HasCertType bool

	// CenterLat, CenterLon, RadiusKm restrict results to entities whose
	// geocoded centroid lies within the radius — the geographic search
	// region of the paper's future work. RadiusKm <= 0 disables the
	// filter; entities without geocoded records are never excluded by it.
	CenterLat, CenterLon float64
	RadiusKm             float64
}

// Weights are the per-field match weights w_a of the ranking score s_r.
// Names dominate; year, gender, and location refine.
type Weights struct {
	FirstName, Surname, Gender, Year, Location float64
}

// DefaultWeights returns the weights used by the SNAPS web interface.
func DefaultWeights() Weights {
	return Weights{FirstName: 0.35, Surname: 0.35, Gender: 0.08, Year: 0.12, Location: 0.10}
}

// Result is one ranked entity.
type Result struct {
	Entity pedigree.NodeID
	// Score is the normalised match score in percent (100 = exact match on
	// every provided field).
	Score float64
	// Matched records which query fields matched exactly (true) or only
	// approximately (false); fields absent from the map did not match.
	Matched map[index.Field]bool
}

// Engine answers queries against the indexes and the pedigree graph.
type Engine struct {
	Graph   *pedigree.Graph
	Keyword *index.Keyword
	Similar *index.Similarity
	Weights Weights
	TopM    int

	// Cache, when non-nil, memoises ranked result lists under
	// (Generation, normalised query). The live-ingestion pipeline shares
	// one cache across generations and bumps Generation on every
	// snapshot swap, so entries of superseded generations can never be
	// served. Cached result slices are shared between callers and must be
	// treated as read-only (the HTTP layer only reads them).
	Cache *ResultCache
	// Generation identifies the serving snapshot this engine belongs to.
	Generation uint64
	// StaleServe enables stale-while-revalidate on the cache: a miss
	// under the current generation that finds the same query cached under
	// the previous one serves that entry immediately and refreshes the
	// ranking in a background singleflight, so a flush-driven generation
	// bump never stampedes hot queries into synchronous recomputes. The
	// cache must have EnableStaleServe set (the ingest pipeline wires
	// both together).
	StaleServe bool

	// pool recycles per-search accumulator state. Nil (engines built with
	// a struct literal rather than NewEngine) falls back to allocating
	// fresh state per search.
	pool *sync.Pool
}

// NewEngine wires an engine with default weights and the paper's result
// list size.
func NewEngine(g *pedigree.Graph, k *index.Keyword, s *index.Similarity) *Engine {
	return &Engine{Graph: g, Keyword: k, Similar: s, Weights: DefaultWeights(), TopM: 20,
		pool: &sync.Pool{}}
}

// accumulator entry per candidate entity: the best weighted contribution
// per query field, plus whether that contribution was an exact match.
type accum struct {
	contrib  [index.NumFields]float64
	matched  [index.NumFields]bool
	hasField [index.NumFields]bool
	excluded bool
}

func (a *accum) score() float64 {
	s := 0.0
	for _, c := range a.contrib {
		s += c
	}
	return s
}

// searchState is the pooled per-search scratch: a dense accumulator slab
// plus the NodeID→slot table addressing it. The table is epoch-marked, so
// recycling it for the next search is a single counter increment instead
// of an O(nodes) clear.
type searchState struct {
	slot  []int32  // NodeID → index into ids/slab, valid iff mark[id] == epoch
	mark  []uint32 // epoch stamp per NodeID
	epoch uint32
	ids   []pedigree.NodeID // candidate NodeIDs in first-touch order
	slab  []accum           // accumulator per candidate, parallel to ids
	heap  []rankEntry       // top-m selection scratch
}

// getState fetches (or sizes) a search state for one search.
func (e *Engine) getState() *searchState {
	var st *searchState
	if e.pool != nil {
		st, _ = e.pool.Get().(*searchState)
	}
	if st == nil {
		st = &searchState{}
	}
	if n := len(e.Graph.Nodes); len(st.slot) < n {
		st.slot = make([]int32, n)
		st.mark = make([]uint32, n)
		st.epoch = 0
	}
	st.epoch++
	if st.epoch == 0 { // wrapped: invalidate all marks once
		for i := range st.mark {
			st.mark[i] = 0
		}
		st.epoch = 1
	}
	st.ids = st.ids[:0]
	st.slab = st.slab[:0]
	st.heap = st.heap[:0]
	return st
}

func (e *Engine) putState(st *searchState) {
	if e.pool != nil {
		e.pool.Put(st)
	}
}

// Search runs the query and returns the top-m ranked entities. Entities
// enter the accumulator only through a name match (exact or approximate, on
// first name and/or surname); gender, year, and location only adjust scores
// of accumulated entities, never add new ones (Sec. 7).
//
// The returned slice and its Matched maps may be shared with the result
// cache; callers must not mutate them.
func (e *Engine) Search(q Query) []Result {
	return e.SearchContext(context.Background(), q)
}

// SearchContext is Search under the caller's trace: when the context
// carries a span (the server's request middleware starts one), the
// query's four stages — blocking-key lookup, candidate accumulation,
// refinement-field scoring, and ranking — each record a child span with
// the sizes that drove their cost, so a slow search is attributable from
// GET /api/debug/traces or the slow-query log. A result-cache hit skips
// the stages and records cache_hit=1 on the search span.
func (e *Engine) SearchContext(ctx context.Context, q Query) []Result {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "search")

	var ckey string
	if e.Cache != nil {
		ckey = cacheKey(q, e.Weights, e.TopM)
		if res, ok := e.Cache.Get(e.Generation, ckey); ok {
			mSearches.Inc()
			mSearchSeconds.ObserveDuration(time.Since(start))
			sp.SetAttr("cache_hit", 1)
			sp.SetAttr("results", int64(len(res)))
			sp.End()
			return res
		}
		// Stale-while-revalidate: a previous-generation entry answers the
		// request immediately (the ranking is at most one flush old) and
		// a single background goroutine recomputes it under the current
		// generation. Without this, every snapshot swap turns the whole
		// hot set into synchronous misses at once — a self-inflicted
		// stampede exactly when the flush already loaded the machine.
		if e.StaleServe {
			if res, ok := e.Cache.GetStale(e.Generation, ckey); ok {
				if e.Cache.beginRefresh(e.Generation, ckey) {
					go func() {
						defer e.Cache.endRefresh(e.Generation, ckey)
						e.compute(context.Background(), q, ckey, time.Now(), nil)
						mCacheRefreshes.Inc()
					}()
				}
				mCacheStaleServes.Inc()
				mSearches.Inc()
				mSearchSeconds.ObserveDuration(time.Since(start))
				sp.SetAttr("cache_stale", 1)
				sp.SetAttr("results", int64(len(res)))
				sp.End()
				return res
			}
		}
	}

	return e.compute(ctx, q, ckey, start, sp)
}

// compute runs the four query stages without consulting the cache, records
// the engine metrics, stores the ranking under ckey (when caching is on),
// and finalises sp (nil for background refreshes, whose span methods
// no-op).
func (e *Engine) compute(ctx context.Context, q Query, ckey string, start time.Time, sp *obs.Span) []Result {
	// Blocking-key lookup: both query names resolve to their similar
	// indexed values through the similarity-aware index S.
	_, bsp := obs.StartSpan(ctx, "blocking")
	memoHits := int64(0)
	lookupName := func(f index.Field, value string) []index.SimilarValue {
		if value == "" {
			return nil
		}
		if e.Similar.Memoised(f, value) {
			memoHits++
		}
		return e.Similar.Similar(f, value)
	}
	firstVals := lookupName(index.FieldFirstName, q.FirstName)
	surVals := lookupName(index.FieldSurname, q.Surname)
	bsp.SetAttr("similar_first_names", int64(len(firstVals)))
	bsp.SetAttr("similar_surnames", int64(len(surVals)))
	bsp.SetAttr("memo_hits", memoHits)
	bsp.End()

	// Candidate accumulation: entities carrying any similar name value
	// enter the accumulator with their best weighted contribution.
	st := e.getState()
	weightSum := e.Weights.FirstName + e.Weights.Surname
	_, asp := obs.StartSpan(ctx, "accumulate")
	e.accumulate(st, index.FieldFirstName, q.FirstName, firstVals, e.Weights.FirstName)
	e.accumulate(st, index.FieldSurname, q.Surname, surVals, e.Weights.Surname)
	asp.SetAttr("candidates", int64(len(st.ids)))
	asp.End()

	// Refinement fields.
	_, ssp := obs.StartSpan(ctx, "score")
	if q.Gender != model.GenderUnknown {
		weightSum += e.Weights.Gender
		for i := range st.slab {
			a := &st.slab[i]
			if e.Graph.Node(st.ids[i]).Gender == q.Gender {
				a.contrib[index.FieldGender] = e.Weights.Gender
				a.matched[index.FieldGender] = true
				a.hasField[index.FieldGender] = true
			}
		}
	}
	if q.YearFrom != 0 || q.YearTo != 0 {
		weightSum += e.Weights.Year
		from, to := q.YearFrom, q.YearTo
		if from == 0 {
			from = -1 << 30
		}
		if to == 0 {
			to = 1 << 30
		}
		for i := range st.slab {
			a := &st.slab[i]
			n := e.Graph.Node(st.ids[i])
			if n.MinYear != 0 && n.MinYear <= to && n.MaxYear >= from {
				a.contrib[index.FieldYear] = e.Weights.Year
				a.matched[index.FieldYear] = true
				a.hasField[index.FieldYear] = true
			}
		}
	}
	if q.Location != "" {
		weightSum += e.Weights.Location
		for i := range st.slab {
			a := &st.slab[i]
			if sim, exact, ok := e.bestLocation(st.ids[i], q.Location); ok {
				a.contrib[index.FieldLocation] = e.Weights.Location * sim
				a.matched[index.FieldLocation] = exact
				a.hasField[index.FieldLocation] = true
			}
		}
	}
	if q.HasCertType {
		for i := range st.slab {
			if !e.hasCertType(st.ids[i], q.CertType) {
				st.slab[i].excluded = true
			}
		}
	}
	if q.RadiusKm > 0 {
		for i := range st.slab {
			n := e.Graph.Node(st.ids[i])
			if n.HasGeo && strsim.GeoDistanceKm(q.CenterLat, q.CenterLon, n.Lat, n.Lon) > q.RadiusKm {
				st.slab[i].excluded = true
			}
		}
	}
	ssp.End()

	// Ranking: normalise, select the top-m by bounded heap, and
	// materialise Result values (Matched maps included) only for the
	// selected entities.
	_, rsp := obs.StartSpan(ctx, "rank")
	results := e.rank(st, weightSum)
	rsp.SetAttr("results", int64(len(results)))
	rsp.End()

	mSearches.Inc()
	mCandidates.Observe(float64(len(st.ids)))
	mSearchSeconds.ObserveDuration(time.Since(start))
	sp.SetAttr("candidates", int64(len(st.ids)))
	sp.SetAttr("results", int64(len(results)))
	sp.End()

	if e.Cache != nil && ckey != "" {
		e.Cache.Put(e.Generation, ckey, results)
	}
	e.putState(st)
	return results
}

// rankEntry is one candidate in the top-m selection heap.
type rankEntry struct {
	id    pedigree.NodeID
	score float64 // normalised score, identical to Result.Score
}

// rankBetter is the total order of the result list: score descending,
// NodeID ascending on ties. Comparing normalised scores (not raw weighted
// sums) keeps the order bit-identical to the historical sort-based engine.
func rankBetter(a, b rankEntry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// rank selects the top-m candidates from the accumulator slab. With m > 0
// it keeps a bounded min-heap (root = worst kept entry) so a hot-name
// search does O(candidates · log m) work; m <= 0 returns every candidate,
// fully sorted.
func (e *Engine) rank(st *searchState, weightSum float64) []Result {
	m := e.TopM
	h := st.heap
	for i := range st.slab {
		a := &st.slab[i]
		if a.excluded {
			continue
		}
		ent := rankEntry{id: st.ids[i], score: 100 * a.score() / weightSum}
		if m <= 0 || len(h) < m {
			h = append(h, ent)
			if m > 0 && len(h) == m {
				// Heapify once the bound is reached.
				for j := len(h)/2 - 1; j >= 0; j-- {
					siftDown(h, j)
				}
			}
			continue
		}
		if rankBetter(ent, h[0]) {
			h[0] = ent
			siftDown(h, 0)
		}
	}
	st.heap = h // retain grown capacity for the next search
	// Within-heap order is partial; sort the (at most m) survivors into
	// the final ranking.
	sort.Slice(h, func(i, j int) bool { return rankBetter(h[i], h[j]) })
	results := make([]Result, 0, len(h))
	for _, ent := range h {
		a := &st.slab[st.slot[ent.id]]
		matched := map[index.Field]bool{}
		for f := index.Field(0); f < index.NumFields; f++ {
			if a.hasField[f] {
				matched[f] = a.matched[f]
			}
		}
		results = append(results, Result{Entity: ent.id, Score: ent.score, Matched: matched})
	}
	return results
}

// siftDown restores the min-heap property (root = worst entry under
// rankBetter) for the subtree rooted at i.
func siftDown(h []rankEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && rankBetter(h[worst], h[l]) {
			worst = l
		}
		if r < len(h) && rankBetter(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// accumulate adds entities matching any of the precomputed similar name
// values, weighting the contribution by string similarity. An entity
// matching several similar values keeps the best contribution.
func (e *Engine) accumulate(st *searchState, f index.Field, value string, similar []index.SimilarValue, weight float64) {
	if value == "" {
		return
	}
	for _, sv := range similar {
		exact := sv.Value == value
		contribution := weight * sv.Sim
		// Iterate the compressed postings in place: decoding to a slice
		// here would put one allocation per similar value back on the hot
		// path the pooled accumulators took off it.
		for it := e.Keyword.Postings(f, sv.Value); ; {
			id, ok := it.Next()
			if !ok {
				break
			}
			var a *accum
			if st.mark[id] == st.epoch {
				a = &st.slab[st.slot[id]]
			} else {
				st.mark[id] = st.epoch
				st.slot[id] = int32(len(st.slab))
				st.ids = append(st.ids, id)
				st.slab = append(st.slab, accum{})
				a = &st.slab[len(st.slab)-1]
			}
			if contribution > a.contrib[f] {
				a.contrib[f] = contribution
				a.matched[f] = exact
			}
			a.hasField[f] = true
		}
	}
}

// bestLocation returns the best similarity between the query location and
// the entity's locations.
func (e *Engine) bestLocation(id pedigree.NodeID, loc string) (sim float64, exact, ok bool) {
	n := e.Graph.Node(id)
	best := 0.0
	for _, l := range n.Locations {
		for _, sv := range e.Similar.Similar(index.FieldLocation, loc) {
			if sv.Value == l && sv.Sim > best {
				best = sv.Sim
				exact = l == loc
			}
		}
	}
	return best, exact, best > 0
}

// hasCertType reports whether the entity has a record from a certificate of
// the given type.
func (e *Engine) hasCertType(id pedigree.NodeID, t model.CertType) bool {
	n := e.Graph.Node(id)
	for _, rid := range n.Records {
		if e.Graph.Dataset.Record(rid).Role.CertType() == t {
			return true
		}
	}
	return false
}

// Explanation breaks a result's score down per query field, the data
// behind the interface's exact/approximate colour coding (Fig. 6).
type Explanation struct {
	// Fields holds one entry per query field that contributed.
	Fields []FieldExplanation
	// Score is the normalised total, identical to Result.Score.
	Score float64
}

// FieldExplanation is one field's contribution.
type FieldExplanation struct {
	Field index.Field
	// QueryValue and MatchedValue are the compared values; MatchedValue is
	// empty for non-string fields.
	QueryValue, MatchedValue string
	// Similarity of the value pair (1 for exact).
	Similarity float64
	// Weight of the field and the resulting weighted contribution.
	Weight, Contribution float64
	Exact                bool
}

// Explain recomputes the match between a query and one entity, reporting
// the per-field contributions. The entity need not have been returned by
// Search (its score may be zero).
func (e *Engine) Explain(q Query, id pedigree.NodeID) Explanation {
	n := e.Graph.Node(id)
	var out Explanation
	weightSum := e.Weights.FirstName + e.Weights.Surname

	explainName := func(f index.Field, qv string, values []string, weight float64) {
		if qv == "" {
			return
		}
		best, bestVal := 0.0, ""
		for _, sv := range e.Similar.Similar(f, qv) {
			for _, v := range values {
				if sv.Value == v && sv.Sim > best {
					best, bestVal = sv.Sim, v
				}
			}
		}
		if best > 0 {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: f, QueryValue: qv, MatchedValue: bestVal,
				Similarity: best, Weight: weight, Contribution: weight * best,
				Exact: bestVal == qv,
			})
		}
	}
	explainName(index.FieldFirstName, q.FirstName, n.FirstNames, e.Weights.FirstName)
	explainName(index.FieldSurname, q.Surname, n.Surnames, e.Weights.Surname)

	if q.Gender != model.GenderUnknown {
		weightSum += e.Weights.Gender
		if n.Gender == q.Gender {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: index.FieldGender, QueryValue: q.Gender.String(),
				MatchedValue: n.Gender.String(), Similarity: 1,
				Weight: e.Weights.Gender, Contribution: e.Weights.Gender, Exact: true,
			})
		}
	}
	if q.YearFrom != 0 || q.YearTo != 0 {
		weightSum += e.Weights.Year
		from, to := q.YearFrom, q.YearTo
		if from == 0 {
			from = -1 << 30
		}
		if to == 0 {
			to = 1 << 30
		}
		if n.MinYear != 0 && n.MinYear <= to && n.MaxYear >= from {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: index.FieldYear, Similarity: 1,
				Weight: e.Weights.Year, Contribution: e.Weights.Year, Exact: true,
			})
		}
	}
	if q.Location != "" {
		weightSum += e.Weights.Location
		if sim, exact, ok := e.bestLocation(id, q.Location); ok {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: index.FieldLocation, QueryValue: q.Location,
				Similarity: sim, Weight: e.Weights.Location,
				Contribution: e.Weights.Location * sim, Exact: exact,
			})
		}
	}
	total := 0.0
	for _, f := range out.Fields {
		total += f.Contribution
	}
	if weightSum > 0 {
		out.Score = 100 * total / weightSum
	}
	return out
}

// ParseYear converts a form year string to an int, 0 when empty or invalid.
func ParseYear(s string) int {
	if s == "" {
		return 0
	}
	y, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return y
}
