// Package query implements the online query processing and ranking of
// Sec. 7 of the paper: a query with a mandatory first name and surname, an
// optional gender, year (or year range), and location is matched against
// the keyword index (exactly and approximately through the similarity-aware
// index), scored into an accumulator, and the top-m entities are returned
// ranked by their normalised match scores.
package query

import (
	"context"
	"sort"
	"strconv"
	"time"

	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/pedigree"
	"github.com/snaps/snaps/internal/strsim"
)

// Engine metrics in the default registry, exposed at GET /metrics.
var (
	mSearches = obs.Default.Counter("snaps_query_searches_total",
		"Search queries answered by the ranking engine.")
	mSearchSeconds = obs.Default.Histogram("snaps_query_search_seconds",
		"End-to-end Search latency.", obs.DefBuckets)
	mCandidates = obs.Default.Histogram("snaps_query_candidates",
		"Entities entering the score accumulator per search.", obs.CountBuckets)
)

// Query is a user search request. FirstName and Surname are mandatory; the
// rest are optional (zero values mean "any").
type Query struct {
	FirstName string
	Surname   string
	Gender    model.Gender
	// YearFrom/YearTo bound the event year; zero means unbounded.
	YearFrom, YearTo int
	Location         string
	// CertType restricts results to entities with a record of this kind:
	// the web form's "search birth or death records" radio button.
	CertType model.CertType
	// HasCertType enables the CertType restriction.
	HasCertType bool

	// CenterLat, CenterLon, RadiusKm restrict results to entities whose
	// geocoded centroid lies within the radius — the geographic search
	// region of the paper's future work. RadiusKm <= 0 disables the
	// filter; entities without geocoded records are never excluded by it.
	CenterLat, CenterLon float64
	RadiusKm             float64
}

// Weights are the per-field match weights w_a of the ranking score s_r.
// Names dominate; year, gender, and location refine.
type Weights struct {
	FirstName, Surname, Gender, Year, Location float64
}

// DefaultWeights returns the weights used by the SNAPS web interface.
func DefaultWeights() Weights {
	return Weights{FirstName: 0.35, Surname: 0.35, Gender: 0.08, Year: 0.12, Location: 0.10}
}

// Result is one ranked entity.
type Result struct {
	Entity pedigree.NodeID
	// Score is the normalised match score in percent (100 = exact match on
	// every provided field).
	Score float64
	// Matched records which query fields matched exactly (true) or only
	// approximately (false); fields absent from the map did not match.
	Matched map[index.Field]bool
}

// Engine answers queries against the indexes and the pedigree graph.
type Engine struct {
	Graph   *pedigree.Graph
	Keyword *index.Keyword
	Similar *index.Similarity
	Weights Weights
	TopM    int
}

// NewEngine wires an engine with default weights and the paper's result
// list size.
func NewEngine(g *pedigree.Graph, k *index.Keyword, s *index.Similarity) *Engine {
	return &Engine{Graph: g, Keyword: k, Similar: s, Weights: DefaultWeights(), TopM: 20}
}

// accumulator entry per candidate entity: the best weighted contribution
// per query field, plus whether that contribution was an exact match.
type accum struct {
	contrib  [index.NumFields]float64
	matched  [index.NumFields]bool
	hasField [index.NumFields]bool
	excluded bool
}

func (a *accum) score() float64 {
	s := 0.0
	for _, c := range a.contrib {
		s += c
	}
	return s
}

// Search runs the query and returns the top-m ranked entities. Entities
// enter the accumulator only through a name match (exact or approximate, on
// first name and/or surname); gender, year, and location only adjust scores
// of accumulated entities, never add new ones (Sec. 7).
func (e *Engine) Search(q Query) []Result {
	return e.SearchContext(context.Background(), q)
}

// SearchContext is Search under the caller's trace: when the context
// carries a span (the server's request middleware starts one), the
// query's four stages — blocking-key lookup, candidate accumulation,
// refinement-field scoring, and ranking — each record a child span with
// the sizes that drove their cost, so a slow search is attributable from
// GET /api/debug/traces or the slow-query log.
func (e *Engine) SearchContext(ctx context.Context, q Query) []Result {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "search")

	// Blocking-key lookup: both query names resolve to their similar
	// indexed values through the similarity-aware index S.
	_, bsp := obs.StartSpan(ctx, "blocking")
	memoHits := int64(0)
	lookupName := func(f index.Field, value string) []index.SimilarValue {
		if value == "" {
			return nil
		}
		if e.Similar.Memoised(f, value) {
			memoHits++
		}
		return e.Similar.Similar(f, value)
	}
	firstVals := lookupName(index.FieldFirstName, q.FirstName)
	surVals := lookupName(index.FieldSurname, q.Surname)
	bsp.SetAttr("similar_first_names", int64(len(firstVals)))
	bsp.SetAttr("similar_surnames", int64(len(surVals)))
	bsp.SetAttr("memo_hits", memoHits)
	bsp.End()

	// Candidate accumulation: entities carrying any similar name value
	// enter the accumulator with their best weighted contribution.
	m := map[pedigree.NodeID]*accum{}
	weightSum := e.Weights.FirstName + e.Weights.Surname
	_, asp := obs.StartSpan(ctx, "accumulate")
	e.accumulate(m, index.FieldFirstName, q.FirstName, firstVals, e.Weights.FirstName)
	e.accumulate(m, index.FieldSurname, q.Surname, surVals, e.Weights.Surname)
	asp.SetAttr("candidates", int64(len(m)))
	asp.End()

	// Refinement fields.
	_, ssp := obs.StartSpan(ctx, "score")
	if q.Gender != model.GenderUnknown {
		weightSum += e.Weights.Gender
		for id, a := range m {
			if e.Graph.Node(id).Gender == q.Gender {
				a.contrib[index.FieldGender] = e.Weights.Gender
				a.matched[index.FieldGender] = true
				a.hasField[index.FieldGender] = true
			}
		}
	}
	if q.YearFrom != 0 || q.YearTo != 0 {
		weightSum += e.Weights.Year
		from, to := q.YearFrom, q.YearTo
		if from == 0 {
			from = -1 << 30
		}
		if to == 0 {
			to = 1 << 30
		}
		for id, a := range m {
			n := e.Graph.Node(id)
			if n.MinYear != 0 && n.MinYear <= to && n.MaxYear >= from {
				a.contrib[index.FieldYear] = e.Weights.Year
				a.matched[index.FieldYear] = true
				a.hasField[index.FieldYear] = true
			}
		}
	}
	if q.Location != "" {
		weightSum += e.Weights.Location
		for id, a := range m {
			if sim, exact, ok := e.bestLocation(id, q.Location); ok {
				a.contrib[index.FieldLocation] = e.Weights.Location * sim
				a.matched[index.FieldLocation] = exact
				a.hasField[index.FieldLocation] = true
			}
		}
	}
	if q.HasCertType {
		for id, a := range m {
			if !e.hasCertType(id, q.CertType) {
				a.excluded = true
			}
		}
	}
	if q.RadiusKm > 0 {
		for id, a := range m {
			n := e.Graph.Node(id)
			if n.HasGeo && strsim.GeoDistanceKm(q.CenterLat, q.CenterLon, n.Lat, n.Lon) > q.RadiusKm {
				a.excluded = true
			}
		}
	}
	ssp.End()

	// Ranking: normalise, sort, and trim to the top-m list.
	_, rsp := obs.StartSpan(ctx, "rank")
	results := make([]Result, 0, len(m))
	for id, a := range m {
		if a.excluded {
			continue
		}
		matched := map[index.Field]bool{}
		for f := index.Field(0); f < index.NumFields; f++ {
			if a.hasField[f] {
				matched[f] = a.matched[f]
			}
		}
		results = append(results, Result{
			Entity:  id,
			Score:   100 * a.score() / weightSum,
			Matched: matched,
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Entity < results[j].Entity
	})
	if e.TopM > 0 && len(results) > e.TopM {
		results = results[:e.TopM]
	}
	rsp.SetAttr("results", int64(len(results)))
	rsp.End()

	mSearches.Inc()
	mCandidates.Observe(float64(len(m)))
	mSearchSeconds.ObserveDuration(time.Since(start))
	sp.SetAttr("candidates", int64(len(m)))
	sp.SetAttr("results", int64(len(results)))
	sp.End()
	return results
}

// accumulate adds entities matching any of the precomputed similar name
// values, weighting the contribution by string similarity. An entity
// matching several similar values keeps the best contribution.
func (e *Engine) accumulate(m map[pedigree.NodeID]*accum, f index.Field, value string, similar []index.SimilarValue, weight float64) {
	if value == "" {
		return
	}
	for _, sv := range similar {
		exact := sv.Value == value
		contribution := weight * sv.Sim
		for _, id := range e.Keyword.Lookup(f, sv.Value) {
			a := m[id]
			if a == nil {
				a = &accum{}
				m[id] = a
			}
			if contribution > a.contrib[f] {
				a.contrib[f] = contribution
				a.matched[f] = exact
			}
			a.hasField[f] = true
		}
	}
}

// bestLocation returns the best similarity between the query location and
// the entity's locations.
func (e *Engine) bestLocation(id pedigree.NodeID, loc string) (sim float64, exact, ok bool) {
	n := e.Graph.Node(id)
	best := 0.0
	for _, l := range n.Locations {
		for _, sv := range e.Similar.Similar(index.FieldLocation, loc) {
			if sv.Value == l && sv.Sim > best {
				best = sv.Sim
				exact = l == loc
			}
		}
	}
	return best, exact, best > 0
}

// hasCertType reports whether the entity has a record from a certificate of
// the given type.
func (e *Engine) hasCertType(id pedigree.NodeID, t model.CertType) bool {
	n := e.Graph.Node(id)
	for _, rid := range n.Records {
		if e.Graph.Dataset.Record(rid).Role.CertType() == t {
			return true
		}
	}
	return false
}

// Explanation breaks a result's score down per query field, the data
// behind the interface's exact/approximate colour coding (Fig. 6).
type Explanation struct {
	// Fields holds one entry per query field that contributed.
	Fields []FieldExplanation
	// Score is the normalised total, identical to Result.Score.
	Score float64
}

// FieldExplanation is one field's contribution.
type FieldExplanation struct {
	Field index.Field
	// QueryValue and MatchedValue are the compared values; MatchedValue is
	// empty for non-string fields.
	QueryValue, MatchedValue string
	// Similarity of the value pair (1 for exact).
	Similarity float64
	// Weight of the field and the resulting weighted contribution.
	Weight, Contribution float64
	Exact                bool
}

// Explain recomputes the match between a query and one entity, reporting
// the per-field contributions. The entity need not have been returned by
// Search (its score may be zero).
func (e *Engine) Explain(q Query, id pedigree.NodeID) Explanation {
	n := e.Graph.Node(id)
	var out Explanation
	weightSum := e.Weights.FirstName + e.Weights.Surname

	explainName := func(f index.Field, qv string, values []string, weight float64) {
		if qv == "" {
			return
		}
		best, bestVal := 0.0, ""
		for _, sv := range e.Similar.Similar(f, qv) {
			for _, v := range values {
				if sv.Value == v && sv.Sim > best {
					best, bestVal = sv.Sim, v
				}
			}
		}
		if best > 0 {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: f, QueryValue: qv, MatchedValue: bestVal,
				Similarity: best, Weight: weight, Contribution: weight * best,
				Exact: bestVal == qv,
			})
		}
	}
	explainName(index.FieldFirstName, q.FirstName, n.FirstNames, e.Weights.FirstName)
	explainName(index.FieldSurname, q.Surname, n.Surnames, e.Weights.Surname)

	if q.Gender != model.GenderUnknown {
		weightSum += e.Weights.Gender
		if n.Gender == q.Gender {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: index.FieldGender, QueryValue: q.Gender.String(),
				MatchedValue: n.Gender.String(), Similarity: 1,
				Weight: e.Weights.Gender, Contribution: e.Weights.Gender, Exact: true,
			})
		}
	}
	if q.YearFrom != 0 || q.YearTo != 0 {
		weightSum += e.Weights.Year
		from, to := q.YearFrom, q.YearTo
		if from == 0 {
			from = -1 << 30
		}
		if to == 0 {
			to = 1 << 30
		}
		if n.MinYear != 0 && n.MinYear <= to && n.MaxYear >= from {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: index.FieldYear, Similarity: 1,
				Weight: e.Weights.Year, Contribution: e.Weights.Year, Exact: true,
			})
		}
	}
	if q.Location != "" {
		weightSum += e.Weights.Location
		if sim, exact, ok := e.bestLocation(id, q.Location); ok {
			out.Fields = append(out.Fields, FieldExplanation{
				Field: index.FieldLocation, QueryValue: q.Location,
				Similarity: sim, Weight: e.Weights.Location,
				Contribution: e.Weights.Location * sim, Exact: exact,
			})
		}
	}
	total := 0.0
	for _, f := range out.Fields {
		total += f.Contribution
	}
	if weightSum > 0 {
		out.Score = 100 * total / weightSum
	}
	return out
}

// ParseYear converts a form year string to an int, 0 when empty or invalid.
func ParseYear(s string) int {
	if s == "" {
		return 0
	}
	y, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return y
}
