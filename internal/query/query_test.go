package query

import (
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

func builtEngine(t *testing.T) *Engine {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.06))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	return NewEngine(g, k, s)
}

// pickEntity returns a node with both names present.
func pickEntity(e *Engine) *pedigree.Node {
	for i := range e.Graph.Nodes {
		n := &e.Graph.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 && n.Gender != model.GenderUnknown {
			return n
		}
	}
	return nil
}

func TestSearchExactMatchRanksFirst(t *testing.T) {
	e := builtEngine(t)
	n := pickEntity(e)
	if n == nil {
		t.Skip("no suitable entity")
	}
	results := e.Search(Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0]})
	if len(results) == 0 {
		t.Fatal("no results for an indexed name")
	}
	found := false
	for _, r := range results {
		if r.Entity == n.ID {
			found = true
			if r.Score < results[len(results)-1].Score {
				t.Error("exact entity scored below tail of result list")
			}
		}
	}
	if !found {
		t.Error("queried entity absent from results")
	}
	// Results must be sorted by score descending.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

func TestSearchRequiresNameMatch(t *testing.T) {
	e := builtEngine(t)
	results := e.Search(Query{FirstName: "qqqqqq", Surname: "xxxxxx"})
	if len(results) != 0 {
		t.Errorf("nonsense names returned %d results", len(results))
	}
}

func TestSearchApproximateNames(t *testing.T) {
	e := builtEngine(t)
	n := pickEntity(e)
	if n == nil || len(n.Surnames[0]) < 6 {
		t.Skip("no suitable entity")
	}
	// Misspell the surname by one character.
	sur := n.Surnames[0]
	misspelt := sur[:len(sur)-1] + "x"
	results := e.Search(Query{FirstName: n.FirstNames[0], Surname: misspelt})
	found := false
	for _, r := range results {
		if r.Entity == n.ID {
			found = true
			if r.Matched[index.FieldSurname] {
				t.Error("misspelt surname reported as exact match")
			}
		}
	}
	if !found {
		t.Error("approximate surname failed to retrieve entity")
	}
}

func TestSearchGenderRefinement(t *testing.T) {
	e := builtEngine(t)
	n := pickEntity(e)
	if n == nil {
		t.Skip("no suitable entity")
	}
	q := Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0], Gender: n.Gender}
	var matching, mismatched float64
	for _, r := range e.Search(q) {
		if r.Entity == n.ID {
			matching = r.Score
		}
	}
	if n.Gender == model.Male {
		q.Gender = model.Female
	} else {
		q.Gender = model.Male
	}
	for _, r := range e.Search(q) {
		if r.Entity == n.ID {
			mismatched = r.Score
		}
	}
	if matching <= mismatched {
		t.Errorf("mismatched gender should lower the normalised score: match=%v mismatch=%v", matching, mismatched)
	}
}

func TestSearchYearRange(t *testing.T) {
	e := builtEngine(t)
	n := pickEntity(e)
	if n == nil || n.MinYear == 0 {
		t.Skip("no suitable entity")
	}
	q := Query{
		FirstName: n.FirstNames[0], Surname: n.Surnames[0],
		YearFrom: n.MinYear, YearTo: n.MaxYear,
	}
	for _, r := range e.Search(q) {
		if r.Entity == n.ID && !r.Matched[index.FieldYear] {
			t.Error("entity inside queried year range not marked as year match")
		}
	}
	// A range entirely outside the entity's years must not mark the year.
	q.YearFrom, q.YearTo = n.MaxYear+50, n.MaxYear+60
	for _, r := range e.Search(q) {
		if r.Entity == n.ID && r.Matched[index.FieldYear] {
			t.Error("entity outside queried year range marked as year match")
		}
	}
}

func TestSearchCertTypeRestriction(t *testing.T) {
	e := builtEngine(t)
	// Find an entity with only birth-certificate records.
	var n *pedigree.Node
	for i := range e.Graph.Nodes {
		cand := &e.Graph.Nodes[i]
		if len(cand.FirstNames) == 0 || len(cand.Surnames) == 0 {
			continue
		}
		onlyBirth := true
		for _, rid := range cand.Records {
			if e.Graph.Dataset.Record(rid).Role.CertType() != model.Birth {
				onlyBirth = false
				break
			}
		}
		if onlyBirth {
			n = cand
			break
		}
	}
	if n == nil {
		t.Skip("no birth-only entity")
	}
	q := Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0],
		CertType: model.Death, HasCertType: true}
	for _, r := range e.Search(q) {
		if r.Entity == n.ID {
			t.Error("birth-only entity returned for a death-record search")
		}
	}
}

func TestSearchTopM(t *testing.T) {
	e := builtEngine(t)
	e.TopM = 3
	n := pickEntity(e)
	if n == nil {
		t.Skip("no suitable entity")
	}
	results := e.Search(Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0]})
	if len(results) > 3 {
		t.Errorf("TopM=3 returned %d results", len(results))
	}
}

func TestScoreNormalised(t *testing.T) {
	e := builtEngine(t)
	n := pickEntity(e)
	if n == nil {
		t.Skip("no suitable entity")
	}
	for _, r := range e.Search(Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0]}) {
		if r.Score < 0 || r.Score > 100+1e-9 {
			t.Fatalf("score %v out of [0,100]", r.Score)
		}
	}
}

func TestParseYear(t *testing.T) {
	if ParseYear("1884") != 1884 || ParseYear("") != 0 || ParseYear("abc") != 0 {
		t.Error("ParseYear misbehaves")
	}
}

func TestSearchGeoRadius(t *testing.T) {
	e := builtEngine(t)
	// Find a geocoded entity.
	var n *pedigree.Node
	for i := range e.Graph.Nodes {
		cand := &e.Graph.Nodes[i]
		if cand.HasGeo && len(cand.FirstNames) > 0 && len(cand.Surnames) > 0 {
			n = cand
			break
		}
	}
	if n == nil {
		t.Skip("no geocoded entity")
	}
	q := Query{
		FirstName: n.FirstNames[0], Surname: n.Surnames[0],
		CenterLat: n.Lat, CenterLon: n.Lon, RadiusKm: 5,
	}
	found := false
	for _, r := range e.Search(q) {
		if r.Entity == n.ID {
			found = true
		}
	}
	if !found {
		t.Error("entity at the centre excluded by its own radius")
	}
	// A tiny radius around a far-away point must exclude it.
	q.CenterLat, q.CenterLon = 40.0, -75.0
	q.RadiusKm = 1
	for _, r := range e.Search(q) {
		if r.Entity == n.ID {
			t.Error("geocoded entity survived a disjoint radius filter")
		}
	}
}

func TestExplainMatchesSearchScore(t *testing.T) {
	e := builtEngine(t)
	n := pickEntity(e)
	if n == nil {
		t.Skip("no suitable entity")
	}
	q := Query{FirstName: n.FirstNames[0], Surname: n.Surnames[0], Gender: n.Gender}
	var searchScore float64
	found := false
	for _, r := range e.Search(q) {
		if r.Entity == n.ID {
			searchScore = r.Score
			found = true
		}
	}
	if !found {
		t.Skip("entity not in result list")
	}
	ex := e.Explain(q, n.ID)
	if diff := ex.Score - searchScore; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Explain score %v != Search score %v", ex.Score, searchScore)
	}
	if len(ex.Fields) < 2 {
		t.Errorf("expected name field explanations, got %d", len(ex.Fields))
	}
	for _, f := range ex.Fields {
		if f.Contribution < 0 || f.Contribution > f.Weight+1e-12 {
			t.Errorf("field %v contribution %v out of [0, weight=%v]", f.Field, f.Contribution, f.Weight)
		}
		if f.Exact && f.Similarity != 1 {
			t.Errorf("exact match with similarity %v", f.Similarity)
		}
	}
}

func TestExplainNoMatch(t *testing.T) {
	e := builtEngine(t)
	ex := e.Explain(Query{FirstName: "qqqq", Surname: "zzzz"}, 0)
	if len(ex.Fields) != 0 || ex.Score != 0 {
		t.Errorf("nonsense query should explain to nothing: %+v", ex)
	}
}
