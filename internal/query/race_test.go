package query

import (
	"sync"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/index"
	"github.com/snaps/snaps/internal/model"
	"github.com/snaps/snaps/internal/pedigree"
)

// TestConcurrentSearchAndMemoisation hammers Engine.Search from many
// goroutines with probe values absent from the precomputed similarity
// index, so concurrent lookups race the index's query-time memoisation
// writes. Run under -race this guards the locking of index.Similarity and
// the read-only discipline of the serving bundle the live ingestion
// subsystem hot-swaps.
func TestConcurrentSearchAndMemoisation(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.04))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	g := pedigree.Build(p.Dataset, pr.Result.Store)
	k, s := index.Build(g, 0.5)
	engine := NewEngine(g, k, s)

	// Collect real names, then derive misspellings that force the
	// similarity index to memoise new values at query time.
	var names [][2]string
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			names = append(names, [2]string{n.FirstNames[0], n.Surnames[0]})
		}
		if len(names) >= 32 {
			break
		}
	}
	if len(names) == 0 {
		t.Fatal("no names in generated graph")
	}
	mangle := func(s string, salt int) string {
		if s == "" {
			return s
		}
		b := []byte(s)
		b[salt%len(b)] = byte('a' + (salt*7)%26)
		return string(b)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				nm := names[(gi+i)%len(names)]
				first, sur := nm[0], nm[1]
				switch i % 3 {
				case 1:
					// Unseen probe: races the memoisation write path.
					first = mangle(first, gi*61+i)
				case 2:
					sur = mangle(sur, gi*67+i)
				}
				q := Query{FirstName: first, Surname: sur}
				if i%5 == 0 {
					q.Gender = model.Female
					q.YearFrom, q.YearTo = 1860, 1900
				}
				engine.Search(q)
			}
		}(gi)
	}
	wg.Wait()

	// A second pass over the same probes hits the memoised entries.
	for i, nm := range names {
		engine.Search(Query{FirstName: mangle(nm[0], i*61), Surname: nm[1]})
	}
}
