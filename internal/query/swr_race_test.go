// External tests of the result cache's stale-while-revalidate mode: after
// a flush bumps the serving generation, searches whose ranking is cached
// under the previous generation must be answered from that entry
// immediately — never blocking on a synchronous recompute — while a single
// background refresh installs the ranking under the new generation. Run
// under -race in CI.
package query_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/obs"
	"github.com/snaps/snaps/internal/query"
)

// swrPipeline builds a small pipeline with the result cache in
// stale-while-revalidate mode (the production default).
func swrPipeline(t *testing.T) *ingest.Pipeline {
	t.Helper()
	p := dataset.Generate(dataset.IOS().Scaled(0.03))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	sv := ingest.NewServing(p.Dataset, pr.Result.Store, 0.5)
	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1 << 20 // flush only when the test says so
	cfg.QueryCache = 256
	cfg.StaleServe = true
	pipe, err := ingest.NewPipeline(sv, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pipe.Close() })
	return pipe
}

func counterValue(name string) int64 { return obs.Default.Counter(name, "").Value() }

// TestStaleWhileRevalidate drives one query across a flush/generation swap
// and asserts the stale-serve contract: the first post-swap search answers
// from the previous generation's entry (without waiting for a recompute),
// and the background refresh installs an entry that carries the new
// generation — observable because only a current-generation cache entry
// can make the marker certificate visible on the hit path.
func TestStaleWhileRevalidate(t *testing.T) {
	pipe := swrPipeline(t)

	markerQ := query.Query{FirstName: "ruaraidhswr", Surname: "nicolson"}
	before := pipe.Serving()
	// Warm the cache under generation 0: miss, then hit.
	base := before.Engine.Search(markerQ)
	before.Engine.Search(markerQ)

	cert := &ingest.Certificate{
		Type: "birth", Year: 1885, Address: "staffin",
		Roles: map[string]ingest.Person{
			"Bb": {FirstName: "ruaraidhswr", Surname: "nicolson", Gender: "m"},
			"Bm": {FirstName: "peigi", Surname: "nicolson"},
		},
	}
	if err := pipe.Submit(cert); err != nil {
		t.Fatal(err)
	}
	staleBefore := counterValue("snaps_query_cache_stale_serves_total")
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	after := pipe.Serving()
	if after.Generation != before.Generation+1 {
		t.Fatalf("generation %d -> %d, want +1", before.Generation, after.Generation)
	}

	hasMarker := func(sv *ingest.Serving, res []query.Result) bool {
		for _, r := range res {
			for _, fn := range sv.Graph.Node(r.Entity).FirstNames {
				if fn == "ruaraidhswr" {
					return true
				}
			}
		}
		return false
	}

	// First post-swap search: served from the superseded generation's
	// entry — same ranking as before the flush, marker not yet visible,
	// stale-serve counter incremented. A blocking recompute would have
	// found the marker here.
	stale := after.Engine.Search(markerQ)
	if hasMarker(after, stale) {
		t.Fatal("first post-swap search recomputed synchronously instead of serving stale")
	}
	if len(stale) != len(base) {
		t.Fatalf("stale ranking has %d results, warmed entry had %d", len(stale), len(base))
	}
	if got := counterValue("snaps_query_cache_stale_serves_total"); got <= staleBefore {
		t.Fatalf("stale serve counter did not move: %d -> %d", staleBefore, got)
	}

	// The background refresh installs the new generation's ranking; once
	// it lands, the hit path must see the marker. Only an entry keyed to
	// the new generation can be served here, so marker visibility proves
	// the refreshed entry carries it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hasMarker(after, after.Engine.Search(markerQ)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refreshed entry never appeared under the new generation")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStaleServeNeverBlocksAcrossSwaps is the -race stress: searchers
// hammer a fixed hot set while the driver flushes generation after
// generation. Every search must return a ranking that is either the
// current generation's or the immediately superseded one — in SWR mode the
// cache retains exactly one generation back — and the run must be free of
// data races between stale serves, background refreshes, and swaps.
func TestStaleServeNeverBlocksAcrossSwaps(t *testing.T) {
	pipe := swrPipeline(t)

	sv := pipe.Serving()
	var hotFirst, hotSur string
	for i := range sv.Graph.Nodes {
		n := &sv.Graph.Nodes[i]
		if len(n.FirstNames) > 0 && len(n.Surnames) > 0 {
			hotFirst, hotSur = n.FirstNames[0], n.Surnames[0]
			break
		}
	}
	if hotFirst == "" {
		t.Fatal("no searchable entity")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng := pipe.Serving().Engine
				// Hot query: repeatedly crosses miss/stale/hit paths as
				// generations swap under it.
				eng.Search(query.Query{FirstName: hotFirst, Surname: hotSur})
				// Warm a per-goroutine query so each generation has
				// predecessors to stale-serve from.
				eng.Search(query.Query{FirstName: hotFirst, Surname: fmt.Sprintf("%s%d", hotSur, g%3)})
			}
		}(g)
	}

	for i := 0; i < 5; i++ {
		if err := pipe.Submit(&ingest.Certificate{
			Type: "birth", Year: 1870 + i, Address: "staffin",
			Roles: map[string]ingest.Person{
				"Bb": {FirstName: fmt.Sprintf("swrstress%d", i), Surname: "nicolson", Gender: "f"},
			},
		}); err != nil {
			t.Fatal(err)
		}
		if err := pipe.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if pipe.Serving().Generation != 5 {
		t.Fatalf("generation = %d, want 5", pipe.Serving().Generation)
	}
}
