// Package report renders a complete linkage-quality report for one
// resolution run as Markdown: data-set profile, blocking quality, pairwise
// and cluster-level measures per role pair, cluster-size distribution, and
// the offline timing breakdown. Deployments attach the report to each
// linkage release; the evaluation harness uses it for eyeballing runs.
package report

import (
	"fmt"
	"io"
	"sort"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/eval"
	"github.com/snaps/snaps/internal/model"
)

// Input bundles everything a report covers. Truth-dependent sections are
// skipped when the data set has no ground truth.
type Input struct {
	Dataset  *model.Dataset
	Pipeline *er.PipelineResult
	// RolePairs to evaluate pairwise quality on; nil selects the paper's
	// Bp-Bp and Bp-Dp groups.
	RolePairs []model.RolePair
}

// defaultRolePairs are the evaluation role pairs of the paper.
func defaultRolePairs() []model.RolePair {
	return []model.RolePair{
		model.MakeRolePair(model.Bm, model.Bm),
		model.MakeRolePair(model.Bf, model.Bf),
		model.MakeRolePair(model.Bm, model.Dm),
		model.MakeRolePair(model.Bf, model.Df),
		model.MakeRolePair(model.Bb, model.Dd),
	}
}

// hasTruth reports whether any record carries ground truth.
func hasTruth(d *model.Dataset) bool {
	for i := range d.Records {
		if d.Records[i].Truth != model.NoPerson {
			return true
		}
	}
	return false
}

// Write renders the report.
func Write(w io.Writer, in Input) {
	d := in.Dataset
	pr := in.Pipeline
	fmt.Fprintf(w, "# Linkage report — %s\n\n", d.Name)

	// Data set profile.
	fmt.Fprintf(w, "## Data set\n\n")
	counts := map[model.CertType]int{}
	for i := range d.Certificates {
		counts[d.Certificates[i].Type]++
	}
	fmt.Fprintf(w, "- certificates: %d (births %d, deaths %d, marriages %d, censuses %d)\n",
		len(d.Certificates), counts[model.Birth], counts[model.Death],
		counts[model.Marriage], counts[model.Census])
	fmt.Fprintf(w, "- person records: %d\n", len(d.Records))
	st := dataset.ComputeStats(d, model.Dd)
	fmt.Fprintf(w, "- deceased-person records: %d (occupation missing for %d)\n\n",
		st.Records, st.PerAttr[model.Occupation].Missing)

	// Pipeline scale and timings.
	fmt.Fprintf(w, "## Offline pipeline\n\n")
	fmt.Fprintf(w, "| phase | value |\n|---|---|\n")
	fmt.Fprintf(w, "| blocking candidates | %d |\n", pr.Candidates)
	fmt.Fprintf(w, "| atomic nodes | %d |\n", len(pr.Graph.Atomics))
	fmt.Fprintf(w, "| relational nodes | %d |\n", len(pr.Graph.Nodes))
	fmt.Fprintf(w, "| node groups | %d |\n", len(pr.Graph.Groups))
	fmt.Fprintf(w, "| merged nodes | %d |\n", pr.Result.MergedNodes)
	fmt.Fprintf(w, "| refine removals / splits | %d / %d |\n", pr.Result.RefineRemoved, pr.Result.RefineSplits)
	fmt.Fprintf(w, "| blocking time | %v |\n", pr.Blocking)
	fmt.Fprintf(w, "| graph build time | %v |\n", pr.GenAtomic+pr.GenRelational)
	fmt.Fprintf(w, "| bootstrap time | %v |\n", pr.Result.Timings.Bootstrap)
	fmt.Fprintf(w, "| merge time | %v |\n", pr.Result.Timings.Merge)
	fmt.Fprintf(w, "| refine time | %v |\n", pr.Result.Timings.Refine)
	fmt.Fprintf(w, "| total | %v |\n\n", pr.Total())

	// Cluster size distribution.
	fmt.Fprintf(w, "## Clusters\n\n")
	sizes := pr.Result.Store.ClusterSizes()
	hist := map[int]int{}
	for _, s := range sizes {
		hist[bucket(s)]++
	}
	fmt.Fprintf(w, "- entities (non-singleton): %d\n", len(sizes))
	var buckets []int
	for b := range hist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Fprintf(w, "- size %s: %d\n", bucketLabel(b), hist[b])
	}
	if len(sizes) > 0 {
		fmt.Fprintf(w, "- largest cluster: %d records\n", sizes[0])
	}
	fmt.Fprintln(w)

	if !hasTruth(d) {
		fmt.Fprintf(w, "## Quality\n\n(no ground truth available)\n")
		return
	}

	// Pairwise quality per role pair.
	fmt.Fprintf(w, "## Pairwise quality\n\n")
	fmt.Fprintf(w, "| role pair | truth pairs | P | R | F* |\n|---|---|---|---|---|\n")
	rps := in.RolePairs
	if rps == nil {
		rps = defaultRolePairs()
	}
	for _, rp := range rps {
		truth := d.TruePairs(rp)
		if len(truth) == 0 {
			continue
		}
		q := eval.QualityOf(eval.Compare(pr.Result.Store.MatchPairs(rp), truth))
		fmt.Fprintf(w, "| %v | %d | %.2f | %.2f | %.2f |\n",
			rp, len(truth), q.Precision, q.Recall, q.FStar)
	}
	fmt.Fprintln(w)

	// Cluster-level quality.
	fmt.Fprintf(w, "## Cluster quality\n\n")
	var clusters [][]model.RecordID
	for _, e := range pr.Result.Store.Entities() {
		clusters = append(clusters, pr.Result.Store.Records(e))
	}
	cm := eval.CompareClusters(eval.PartitionFromClusters(clusters), eval.TruthPartition(d))
	fmt.Fprintf(w, "- closest-cluster F1: %.4f\n", cm.ClosestClusterF1)
	fmt.Fprintf(w, "- truth clusters reproduced exactly: %.1f%%\n", 100*cm.ExactMatchFraction)
	fmt.Fprintf(w, "- variation of information: %.3f bits\n", cm.VariationOfInformation)
	fmt.Fprintf(w, "- clusters produced / in truth: %d / %d\n", cm.ProducedClusters, cm.TruthClusters)
}

// bucket groups cluster sizes for the histogram: 2, 3-5, 6-10, 11-20, 21+.
func bucket(n int) int {
	switch {
	case n <= 2:
		return 0
	case n <= 5:
		return 1
	case n <= 10:
		return 2
	case n <= 20:
		return 3
	default:
		return 4
	}
}

func bucketLabel(b int) string {
	switch b {
	case 0:
		return "2"
	case 1:
		return "3-5"
	case 2:
		return "6-10"
	case 3:
		return "11-20"
	default:
		return "21+"
	}
}
