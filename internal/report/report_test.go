package report

import (
	"strings"
	"testing"

	"github.com/snaps/snaps/internal/dataset"
	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/model"
)

func TestWriteFullReport(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.06))
	pr := er.Run(p.Dataset, depgraph.DefaultConfig(), er.DefaultConfig())
	var sb strings.Builder
	Write(&sb, Input{Dataset: p.Dataset, Pipeline: pr})
	out := sb.String()
	for _, want := range []string{
		"# Linkage report — IOS",
		"## Data set",
		"## Offline pipeline",
		"## Clusters",
		"## Pairwise quality",
		"| Bm-Bm |",
		"## Cluster quality",
		"closest-cluster F1",
		"variation of information",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteWithoutTruth(t *testing.T) {
	p := dataset.Generate(dataset.IOS().Scaled(0.04))
	d := p.Dataset
	for i := range d.Records {
		d.Records[i].Truth = model.NoPerson
	}
	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	var sb strings.Builder
	Write(&sb, Input{Dataset: d, Pipeline: pr})
	out := sb.String()
	if !strings.Contains(out, "no ground truth available") {
		t.Error("truthless report should say so")
	}
	if strings.Contains(out, "## Pairwise quality") {
		t.Error("truthless report must not contain quality tables")
	}
}

func TestBuckets(t *testing.T) {
	cases := map[int]string{2: "2", 4: "3-5", 8: "6-10", 15: "11-20", 30: "21+"}
	for n, want := range cases {
		if got := bucketLabel(bucket(n)); got != want {
			t.Errorf("bucket(%d) = %s, want %s", n, got, want)
		}
	}
}
