package server

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/snaps/snaps/internal/admission"
)

// EnableAdmission fronts every request with the admission controller:
// requests are classified by their mux route pattern, charged against the
// weighted in-flight budget, rate-limited, and — for ingest — checked
// against the journal backlog, before any handler runs. Shed requests get
// 429 with a Retry-After hint; /metrics, /healthz, and the status/debug
// endpoints are exempt so the server stays observable exactly when it is
// shedding.
func (s *Server) EnableAdmission(c *admission.Controller) {
	s.admit = c
}

// Admission returns the controller wired by EnableAdmission, nil when
// admission is disabled. The health endpoint and tests read it.
func (s *Server) Admission() *admission.Controller { return s.admit }

// classifyRoute maps a mux route pattern to its admission class. Patterns
// come from the mux registrations (bounded set), never from client input.
// The ladder: pedigree renders (the expensive graph walks) shed first,
// ingest next, searches last; everything operational — metrics, health,
// status, feedback, debug — is exempt.
func classifyRoute(route string) admission.Class {
	switch route {
	case "/api/search", "/", "/api/explain":
		return admission.Search
	case "/api/pedigree", "/api/pedigree.dot", "/api/pedigree.ged", "/pedigree":
		return admission.Pedigree
	case "/api/ingest":
		return admission.Ingest
	}
	return admission.Exempt
}

// retryAfterSeconds renders a Retry-After hint as the whole seconds the
// header requires, rounding up and never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shed writes the 429 response for a rejected request and records the
// decision on the request span, so harness-induced degradation is
// verifiable from the shed counters and from /api/debug/traces alike.
func shed(w http.ResponseWriter, d admission.Decision) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.RetryAfter)))
	http.Error(w, "overloaded: "+d.Reason, http.StatusTooManyRequests)
}
