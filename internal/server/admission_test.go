package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/obs"
)

// do issues one request against the server and returns the recorder.
func do(s *Server, method, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(method, target, nil))
	return w
}

// wantRetryAfter asserts a 429 carries a Retry-After header that parses to
// a sane whole number of seconds (at least 1 — a zero or fractional hint
// would make clients hammer straight back).
func wantRetryAfter(t *testing.T, w *httptest.ResponseRecorder) {
	t.Helper()
	ra := w.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer seconds >= 1", ra)
	}
}

// TestShedOrderingUnderSaturation drives the degradation ladder through
// real HTTP: with the weighted budget partially occupied, pedigree renders
// (ceiling: half the budget) are rejected while searches (ceiling: full
// budget) still answer; with the budget exhausted searches are rejected
// too — and /metrics plus /healthz keep answering throughout. Occupancy is
// created by holding admissions directly on the controller rather than by
// timing a saturating burst, so the ordering assertions are deterministic.
func TestShedOrderingUnderSaturation(t *testing.T) {
	srv, g := testServer(t)
	first, sur := someName(g)
	searchURL := "/api/search?first_name=" + first + "&surname=" + sur

	cfg := admission.DefaultConfig()
	cfg.MaxConcurrency = 16 // ceilings: pedigree 8, ingest 12, search 16
	ctrl := admission.New(cfg)
	srv.EnableAdmission(ctrl)
	srv.EnableHealth(nil)

	pedShedBefore := obs.Default.Counter(
		"snaps_admission_shed_total{"+obs.Label("class", "pedigree")+","+obs.Label("reason", "concurrency")+"}", "").Value()
	searchShedBefore := obs.Default.Counter(
		"snaps_admission_shed_total{"+obs.Label("class", "search")+","+obs.Label("reason", "concurrency")+"}", "").Value()

	// Unloaded: everything answers.
	if w := do(srv, "GET", searchURL); w.Code != http.StatusOK {
		t.Fatalf("unloaded search: status %d", w.Code)
	}
	if w := do(srv, "GET", "/api/pedigree?id=0"); w.Code != http.StatusOK {
		t.Fatalf("unloaded pedigree: status %d", w.Code)
	}

	// Hold 6 of 16 weighted units: over the pedigree admission ceiling
	// (6+4 > 8), well under the search ceiling (6+1 <= 16).
	var releases []func()
	hold := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			rel, d := ctrl.Admit(admission.Search)
			if !d.Admitted {
				t.Fatalf("setup admission shed: %+v", d)
			}
			releases = append(releases, rel)
		}
	}
	hold(6)

	// The saturating burst: pedigree requests shed with 429 + Retry-After
	// while search traffic keeps flowing.
	for i := 0; i < 4; i++ {
		w := do(srv, "GET", "/api/pedigree?id=0")
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("pedigree burst %d: status %d, want 429", i, w.Code)
		}
		wantRetryAfter(t, w)
		if w := do(srv, "GET", searchURL); w.Code != http.StatusOK {
			t.Fatalf("search during pedigree shed: status %d, want 200", w.Code)
		}
	}

	// Exhaust the budget: now searches shed too, but the exempt routes
	// (metrics, health) still answer — health flips to 503/overloaded.
	hold(10)
	w := do(srv, "GET", searchURL)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("search at full budget: status %d, want 429", w.Code)
	}
	wantRetryAfter(t, w)
	if w := do(srv, "GET", "/metrics"); w.Code != http.StatusOK {
		t.Fatalf("/metrics during saturation: status %d", w.Code)
	}
	if w := do(srv, "GET", "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during saturation: status %d, want 503", w.Code)
	}

	// The shed counters prove the ordering: pedigree shed while search
	// was not, then search shed as well.
	samples := scrape(t, srv)
	pedShed := samples["snaps_admission_shed_total{"+obs.Label("class", "pedigree")+","+obs.Label("reason", "concurrency")+"}"] - float64(pedShedBefore)
	searchShed := samples["snaps_admission_shed_total{"+obs.Label("class", "search")+","+obs.Label("reason", "concurrency")+"}"] - float64(searchShedBefore)
	if pedShed < 4 {
		t.Fatalf("pedigree concurrency sheds = %v, want >= 4", pedShed)
	}
	if searchShed < 1 {
		t.Fatalf("search concurrency sheds = %v, want >= 1", searchShed)
	}
	if pedShed <= searchShed {
		t.Fatalf("shed ordering violated: pedigree %v sheds vs search %v — pedigree must shed first",
			pedShed, searchShed)
	}

	// Recovery: releasing the held admissions restores service and health.
	for _, rel := range releases {
		rel()
	}
	if n := ctrl.Inflight(); n != 0 {
		t.Fatalf("inflight after release = %d, want 0", n)
	}
	if w := do(srv, "GET", "/api/pedigree?id=0"); w.Code != http.StatusOK {
		t.Fatalf("pedigree after recovery: status %d", w.Code)
	}
	if w := do(srv, "GET", "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz after recovery: status %d", w.Code)
	}
}

// TestIngestBacklogBackpressureHTTP covers the memory-protection path: once
// the unflushed ingest backlog crosses the configured record bound, POST
// /api/ingest returns 429 with a Retry-After matching the flush horizon,
// and a flush reopens admission.
func TestIngestBacklogBackpressureHTTP(t *testing.T) {
	icfg := ingest.DefaultConfig()
	icfg.BatchSize = 1 << 20 // flush only when the test says so
	srv, pipe := ingestFamily(t, icfg)

	acfg := admission.DefaultConfig()
	acfg.MaxBacklogRecords = 2
	acfg.BacklogRetryAfter = 3 * time.Second
	acfg.Backlog = pipe.Backlog
	srv.EnableAdmission(admission.New(acfg))
	srv.EnableHealth(pipe)

	post := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/api/ingest",
			strings.NewReader(torquilDeathJSON))
		req.Header.Set("Content-Type", "application/json")
		srv.ServeHTTP(w, req)
		return w
	}

	// The first two submissions fill the backlog to the bound.
	for i := 0; i < 2; i++ {
		if w := post(); w.Code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	if rec, _ := pipe.Backlog(); rec != 2 {
		t.Fatalf("backlog records = %d, want 2", rec)
	}

	// At the bound: shed with the flush-horizon Retry-After, health 503.
	w := post()
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over backlog: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want %q (the flush horizon)", ra, "3")
	}
	if w := do(srv, "GET", "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz over backlog: status %d, want 503", w.Code)
	}

	// Search traffic is untouched by ingest backpressure.
	if w := do(srv, "GET", "/api/search?first_name=torquil&surname=macsween"); w.Code != http.StatusOK {
		t.Fatalf("search during ingest backpressure: status %d", w.Code)
	}

	// Draining the backlog reopens ingest admission.
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if w := post(); w.Code != http.StatusAccepted {
		t.Fatalf("submit after flush: status %d: %s", w.Code, w.Body.String())
	}
}

// TestHealthzReportsBacklog checks the readiness payload reflects the
// pipeline: generation and unflushed backlog counts.
func TestHealthzReportsBacklog(t *testing.T) {
	icfg := ingest.DefaultConfig()
	icfg.BatchSize = 1 << 20
	srv, pipe := ingestFamily(t, icfg)
	srv.EnableHealth(pipe)

	w := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/api/ingest", strings.NewReader(torquilDeathJSON))
	req.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", w.Code, w.Body.String())
	}

	w = do(srv, "GET", "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz: status %d", w.Code)
	}
	var resp HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Status != "ok" {
		t.Fatalf("status %q, want ok", resp.Status)
	}
	if resp.BacklogRecords != 1 || resp.BacklogBytes <= 0 {
		t.Fatalf("backlog = %d records / %d bytes, want 1 record and positive bytes",
			resp.BacklogRecords, resp.BacklogBytes)
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}

	w = do(srv, "GET", "/healthz")
	var after HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &after); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if after.Generation != resp.Generation+1 {
		t.Fatalf("generation %d -> %d, want +1 after flush", resp.Generation, after.Generation)
	}
	if after.BacklogRecords != 0 || after.BacklogBytes != 0 {
		t.Fatalf("backlog after flush = %d records / %d bytes, want 0/0",
			after.BacklogRecords, after.BacklogBytes)
	}
}
