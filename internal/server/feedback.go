package server

import (
	"net/http"
	"strconv"
	"sync"

	"github.com/snaps/snaps/internal/feedback"
	"github.com/snaps/snaps/internal/model"
)

// FeedbackHandler exposes the expert-feedback journal over HTTP:
//
//	POST /api/feedback?a=<record>&b=<record>&decision=confirm|reject
//	GET  /api/feedback            — journal summary and open violations
//
// Decisions are kept in memory; deployments persist them with
// feedback.Journal.Save on shutdown or via the CLI.
type FeedbackHandler struct {
	mu      sync.Mutex
	journal *feedback.Journal
	srv     *Server
}

// EnableFeedback mounts the feedback endpoints on the server and returns
// the handler for journal access.
func (s *Server) EnableFeedback() *FeedbackHandler {
	h := &FeedbackHandler{journal: feedback.NewJournal(), srv: s}
	s.mux.HandleFunc("/api/feedback", h.handle)
	return h
}

// Journal returns the underlying journal; callers must not mutate it
// concurrently with request handling.
func (h *FeedbackHandler) Journal() *feedback.Journal { return h.journal }

// feedbackStatus is the GET response.
type feedbackStatus struct {
	Decisions  int `json:"decisions"`
	MustLink   int `json:"must_link"`
	CannotLink int `json:"cannot_link"`
}

// handle keeps its critical sections narrow: the mutex guards journal
// access only, never request parsing or response encoding to the client (a
// slow reader must not serialise every other feedback request).
func (h *FeedbackHandler) handle(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		h.mu.Lock()
		st := feedbackStatus{
			Decisions:  h.journal.Len(),
			MustLink:   len(h.journal.MustLinks()),
			CannotLink: len(h.journal.CannotLinks()),
		}
		h.mu.Unlock()
		writeJSON(w, st)
	case http.MethodPost:
		a, err1 := strconv.Atoi(r.FormValue("a"))
		b, err2 := strconv.Atoi(r.FormValue("b"))
		n := len(h.srv.Graph().Dataset.Records)
		if err1 != nil || err2 != nil || a < 0 || b < 0 || a >= n || b >= n || a == b {
			http.Error(w, "invalid record ids", http.StatusBadRequest)
			return
		}
		var d feedback.Decision
		switch r.FormValue("decision") {
		case "confirm":
			d = feedback.Confirm
		case "reject":
			d = feedback.Reject
		default:
			http.Error(w, "decision must be confirm or reject", http.StatusBadRequest)
			return
		}
		h.mu.Lock()
		h.journal.Record(model.RecordID(a), model.RecordID(b), d)
		h.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// StatsResponse summarises the served data set for GET /api/stats.
type StatsResponse struct {
	Dataset      string `json:"dataset"`
	Records      int    `json:"records"`
	Certificates int    `json:"certificates"`
	Entities     int    `json:"entities"`
	Births       int    `json:"births"`
	Deaths       int    `json:"deaths"`
	Marriages    int    `json:"marriages"`
	Censuses     int    `json:"censuses"`
}

// EnableStats mounts GET /api/stats.
func (s *Server) EnableStats() {
	s.mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		g := s.Graph()
		d := g.Dataset
		resp := StatsResponse{
			Dataset:      d.Name,
			Records:      len(d.Records),
			Certificates: len(d.Certificates),
			Entities:     len(g.Nodes),
		}
		for i := range d.Certificates {
			switch d.Certificates[i].Type {
			case model.Birth:
				resp.Births++
			case model.Death:
				resp.Deaths++
			case model.Marriage:
				resp.Marriages++
			case model.Census:
				resp.Censuses++
			}
		}
		writeJSON(w, resp)
	})
}
