package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/obs"
)

// EnableFlightRecorder attaches a flight recorder: ServeHTTP writes one
// sampled record per admission-classified request (searches, pedigree
// renders, ingest — operational endpoints like /metrics and /healthz are
// neither recorded nor replayable), including shed requests, so a replayed
// log reproduces backpressure behaviour rather than just accepted traffic.
func (s *Server) EnableFlightRecorder(fr *obs.FlightRecorder) {
	s.flight = fr
}

// EnableSLO attaches an SLO tracker: ServeHTTP feeds it every response and
// /healthz reports the rolling 1m/5m error- and latency-budget burn rates.
func (s *Server) EnableSLO(t *obs.SLOTracker) {
	s.slo = t
}

// maxFlightBody caps the ingest request body a flight record may carry, so
// one oversized submission cannot bloat the log.
const maxFlightBody = 1 << 20

// flightCapture accumulates one request's flight record across the
// middleware: created before the handler runs (so the sampling decision is
// made exactly once and the ingest body can be teed), finished after.
type flightCapture struct {
	rec   obs.FlightRecord
	nowUs int64
	body  *bytes.Buffer // non-nil only for sampled ingest requests
}

// startFlight decides whether this request is recorded and, when it is,
// seeds the record with the replayable request identity. Returns nil when
// recording is off, the route is not admission-classified, or the sampler
// skipped the request.
func (s *Server) startFlight(route string, r *http.Request) *flightCapture {
	if s.flight == nil || classifyRoute(route) == admission.Exempt {
		return nil
	}
	if !s.flight.Sampled() {
		return nil
	}
	q := r.URL.Query()
	fc := &flightCapture{
		nowUs: time.Now().UnixMicro(),
		rec: obs.FlightRecord{
			Route:   route,
			First:   q.Get("first_name"),
			Surname: q.Get("surname"),
			Entity:  q.Get("id"),
		},
	}
	fc.rec.Key = obs.QueryKey(route, fc.rec.First, fc.rec.Surname, fc.rec.Entity)
	return fc
}

// teeBody returns the request with its body teed into the capture (capped
// at maxFlightBody), so an ingest submission can be replayed. No-op for
// bodyless requests.
func (fc *flightCapture) teeBody(r *http.Request) *http.Request {
	if fc == nil || r.Body == nil || r.Body == http.NoBody {
		return r
	}
	fc.body = &bytes.Buffer{}
	r.Body = &teeReadCloser{rc: r.Body, buf: fc.body}
	return r
}

type teeReadCloser struct {
	rc  io.ReadCloser
	buf *bytes.Buffer
}

func (t *teeReadCloser) Read(p []byte) (int, error) {
	n, err := t.rc.Read(p)
	if n > 0 && t.buf.Len() < maxFlightBody {
		room := maxFlightBody - t.buf.Len()
		if room > n {
			room = n
		}
		t.buf.Write(p[:room])
	}
	return n, err
}

func (t *teeReadCloser) Close() error { return t.rc.Close() }

// finishShed records an admission rejection: status 429 plus the shed
// reason, class, and the Retry-After hint the client was given.
func (fc *flightCapture) finishShed(s *Server, dec admission.Decision, d time.Duration, traceID string) {
	if fc == nil {
		return
	}
	fc.rec.Status = http.StatusTooManyRequests
	fc.rec.Shed = dec.Reason
	fc.rec.ShedClass = classifyRoute(fc.rec.Route).String()
	fc.rec.RetryAfter = dec.RetryAfter.Seconds()
	fc.rec.LatencyUs = d.Microseconds()
	fc.rec.TraceID = traceID
	s.flight.Record(fc.rec, fc.nowUs)
}

// finish records a served request: outcome, latency, the generation that
// answered it, and — for search routes — the result-cache outcome lifted
// from the finished "search" span.
func (fc *flightCapture) finish(s *Server, ctx context.Context, sw *statusWriter, d time.Duration, traceID string) {
	if fc == nil {
		return
	}
	fc.rec.Status = sw.status
	fc.rec.LatencyUs = d.Microseconds()
	fc.rec.TraceID = traceID
	if g := sw.Header().Get("X-Snaps-Generation"); g != "" {
		fc.rec.Generation, _ = strconv.ParseUint(g, 10, 64)
	}
	if fc.body != nil && fc.body.Len() > 0 {
		fc.rec.Body = fc.body.String()
	}
	if classifyRoute(fc.rec.Route) == admission.Search && fc.rec.First != "" {
		fc.rec.Cache = cacheOutcome(ctx)
	}
	s.flight.Record(fc.rec, fc.nowUs)
}

// cacheOutcome reads the result-cache outcome off the request's finished
// "search" span: the query engine stamps cache_hit=1 or cache_stale=1 on
// it, and their absence on a completed search means a miss.
func cacheOutcome(ctx context.Context) string {
	if v, ok := obs.FinishedSpanAttr(ctx, "search", "cache_hit"); ok && attrIsOne(v) {
		return "hit"
	}
	if v, ok := obs.FinishedSpanAttr(ctx, "search", "cache_stale"); ok && attrIsOne(v) {
		return "stale"
	}
	return "miss"
}

func attrIsOne(v any) bool {
	n, ok := v.(int64)
	return ok && n == 1
}
