package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/obs"
)

// flightLog wires a fresh recorder into the server and returns a reader
// for whatever the test recorded.
func flightLog(t *testing.T, s *Server, sample int) func() []obs.FlightRecord {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flight.log")
	fr, err := obs.NewFlightRecorder(path, sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableFlightRecorder(fr)
	return func() []obs.FlightRecord {
		if err := fr.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := obs.ReadFlightLog(path)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
}

// TestFlightMiddlewareRecordsRequests drives search and ingest traffic
// through a recording server and checks each record carries the replayable
// identity plus the outcome telemetry.
func TestFlightMiddlewareRecordsRequests(t *testing.T) {
	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1 << 20 // no background flush during the test
	cfg.MaxAge = time.Hour
	cfg.QueryCache = 64 // so the repeat search is a recorded cache hit
	srv, _ := ingestFamily(t, cfg)
	read := flightLog(t, srv, 1)

	search := "/api/search?first_name=torquil&surname=macsween"
	if w := do(srv, "GET", search); w.Code != http.StatusOK {
		t.Fatalf("search status %d", w.Code)
	}
	if w := do(srv, "GET", search); w.Code != http.StatusOK { // repeat: cache hit
		t.Fatalf("repeat search status %d", w.Code)
	}
	w := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/api/ingest", strings.NewReader(torquilDeathJSON))
	req.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
	// Operational endpoints are exempt from recording.
	if w := do(srv, "GET", "/metrics"); w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}

	recs := read()
	if len(recs) != 3 {
		t.Fatalf("recorded %d requests, want 3 (searches + ingest, not /metrics): %+v", len(recs), recs)
	}

	s0 := recs[0]
	if s0.Route != "/api/search" || s0.First != "torquil" || s0.Surname != "macsween" {
		t.Errorf("search record identity = %+v", s0)
	}
	if s0.Status != 200 || s0.LatencyUs <= 0 || s0.TraceID == "" || s0.Key == "" {
		t.Errorf("search record outcome = %+v", s0)
	}
	if s0.Cache != "miss" {
		t.Errorf("first search cache = %q, want miss", s0.Cache)
	}
	if recs[1].Cache != "hit" {
		t.Errorf("repeat search cache = %q, want hit", recs[1].Cache)
	}
	if recs[0].Key != recs[1].Key {
		t.Error("identical searches got different query keys")
	}

	ing := recs[2]
	if ing.Route != "/api/ingest" || ing.Status != http.StatusAccepted {
		t.Errorf("ingest record = %+v", ing)
	}
	if ing.Body != torquilDeathJSON {
		t.Errorf("ingest body did not round-trip: %q", ing.Body)
	}
}

// TestFlightMiddlewareRecordsShed pins that admission rejections land in
// the log with their class, reason, and Retry-After hint — satellite (b).
func TestFlightMiddlewareRecordsShed(t *testing.T) {
	srv, g := testServer(t)
	first, sur := someName(g)
	read := flightLog(t, srv, 1)

	cfg := admission.DefaultConfig()
	cfg.MaxConcurrency = 2
	cfg.RetryAfter = 2 * time.Second
	ctrl := admission.New(cfg)
	srv.EnableAdmission(ctrl)

	// Hold the whole budget so the next search is shed.
	rel1, d1 := ctrl.Admit(admission.Search)
	rel2, d2 := ctrl.Admit(admission.Search)
	if !d1.Admitted || !d2.Admitted {
		t.Fatal("setup admissions shed")
	}
	defer rel1()
	defer rel2()

	if w := do(srv, "GET", "/api/search?first_name="+first+"&surname="+sur); w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated search status %d, want 429", w.Code)
	}

	recs := read()
	if len(recs) != 1 {
		t.Fatalf("recorded %d requests, want 1", len(recs))
	}
	r := recs[0]
	if r.Status != http.StatusTooManyRequests || r.Shed != "concurrency" || r.ShedClass != "search" {
		t.Errorf("shed record = %+v", r)
	}
	if r.RetryAfter <= 0 {
		t.Errorf("shed record Retry-After = %v, want > 0", r.RetryAfter)
	}
}

func TestFlightMiddlewareSampling(t *testing.T) {
	srv, g := testServer(t)
	first, sur := someName(g)
	read := flightLog(t, srv, 2) // 1 in 2

	for i := 0; i < 4; i++ {
		if w := do(srv, "GET", "/api/search?first_name="+first+"&surname="+sur); w.Code != http.StatusOK {
			t.Fatalf("search %d status %d", i, w.Code)
		}
	}
	if recs := read(); len(recs) != 2 {
		t.Fatalf("sample=2 recorded %d of 4 requests, want 2", len(recs))
	}
}

// TestMetricsOpenMetricsNegotiation checks the Accept-header switch: the
// OpenMetrics rendition carries trace-ID exemplars and the # EOF
// terminator; the default 0.0.4 rendition carries neither.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	srv, g := testServer(t)
	first, sur := someName(g)
	if w := do(srv, "GET", "/api/search?first_name="+first+"&surname="+sur); w.Code != http.StatusOK {
		t.Fatalf("search status %d", w.Code)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("openmetrics scrape status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics content type %q", ct)
	}
	body := w.Body.String()
	if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
		t.Error("OpenMetrics body does not end with # EOF")
	}
	if !strings.Contains(body, `trace_id="`) {
		t.Error("OpenMetrics body has no trace-ID exemplars after a traced search")
	}
	// The request-latency histogram family carries an exemplar on a bucket
	// of the route that served the search.
	found := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "snaps_http_request_seconds_bucket") &&
			strings.Contains(line, `route="/api/search"`) && strings.Contains(line, " # {") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no exemplar on the /api/search latency buckets")
	}

	// Classic scrape: text/plain, no exemplars, no EOF marker.
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("classic content type %q", ct)
	}
	if strings.Contains(w.Body.String(), " # {") {
		t.Error("classic 0.0.4 body contains exemplars")
	}
	if strings.Contains(w.Body.String(), "# EOF") {
		t.Error("classic 0.0.4 body contains # EOF")
	}
}

// TestMetricsScrapeUnderConcurrentLoad is the acceptance race test: both
// exposition formats are scraped continuously while scatter-gather
// searches, pedigree renders, and ingest flushes run — with the flight
// recorder and SLO tracker attached. Run under -race in CI.
func TestMetricsScrapeUnderConcurrentLoad(t *testing.T) {
	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1 // flush on every certificate
	cfg.MaxAge = 10 * time.Millisecond
	srv, _ := shardedFamily(t, 4, cfg)
	read := flightLog(t, srv, 3)
	srv.EnableSLO(obs.NewSLOTracker(0, 0, 0))
	srv.EnableHealth(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	run := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}

	// Searchers: scatter-gather across all four shards.
	for i := 0; i < 4; i++ {
		run(func() {
			do(srv, "GET", "/api/search?first_name=torquil&surname=macsween")
		})
	}
	// Pedigree renders exercise the per-shard engines.
	run(func() { do(srv, "GET", "/api/pedigree?id=0") })
	// Ingest: every certificate triggers a flush and a snapshot swap.
	year := 1900
	run(func() {
		body := hotShardBirthJSON("racer", "clanrace", year)
		year++
		w := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/api/ingest", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		srv.ServeHTTP(w, req)
	})
	// Scrapers: classic and OpenMetrics, plus health (reads the SLO ring).
	run(func() {
		if w := do(srv, "GET", "/metrics"); w.Code != http.StatusOK {
			t.Error("classic scrape failed")
		}
	})
	run(func() {
		req := httptest.NewRequest("GET", "/metrics", nil)
		req.Header.Set("Accept", "application/openmetrics-text")
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Error("openmetrics scrape failed")
		}
	})
	run(func() { do(srv, "GET", "/healthz") })

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The sampled log must be readable and hold only classified routes.
	for _, r := range read() {
		switch r.Route {
		case "/api/search", "/api/pedigree", "/api/ingest":
		default:
			t.Fatalf("unclassified route %q in flight log", r.Route)
		}
	}
}

// TestHealthzReportsSLOBurn checks /healthz surfaces the burn windows and
// flips to "burning" when both windows page.
func TestHealthzReportsSLOBurn(t *testing.T) {
	srv, g := testServer(t)
	first, sur := someName(g)
	srv.EnableHealth(nil)
	srv.EnableSLO(obs.NewSLOTracker(time.Nanosecond, 0.001, 0.001)) // everything is slow

	if w := do(srv, "GET", "/api/search?first_name="+first+"&surname="+sur); w.Code != http.StatusOK {
		t.Fatalf("search status %d", w.Code)
	}

	w := do(srv, "GET", "/healthz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("burning /healthz status %d, want 503", w.Code)
	}
	body := w.Body.String()
	if !strings.Contains(body, `"burning"`) {
		t.Errorf("healthz did not report burning: %s", body)
	}
	if !strings.Contains(body, `"1m"`) || !strings.Contains(body, `"5m"`) {
		t.Errorf("healthz missing burn windows: %s", body)
	}
}
