package server

import (
	"encoding/json"
	"net/http"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/obs"
)

// HealthResponse is the readiness snapshot of GET /healthz: the served
// generation, the ingest backlog the admission thresholds watch, and the
// current shed state. Status is "ok" with HTTP 200, or "overloaded" with
// HTTP 503 while any class is being shed or the backlog is over a bound —
// a fronting load balancer (or the load harness) polls it to detect
// overload and recovery.
type HealthResponse struct {
	Status         string `json:"status"`
	Generation     uint64 `json:"generation"`
	JournalBytes   int64  `json:"journal_bytes,omitempty"`
	BacklogRecords int    `json:"backlog_records"`
	BacklogBytes   int64  `json:"backlog_bytes"`
	// Shards reports the per-shard backlog split of a sharded serving
	// tier (absent otherwise), so a load balancer sees the hot shard, not
	// just the global average it can hide behind.
	Shards   []ingest.ShardBacklog `json:"shards,omitempty"`
	Inflight int64                 `json:"inflight_weighted"`
	Shedding []string              `json:"shedding,omitempty"`
	// SLO reports the rolling error- and latency-budget burn rates over the
	// 1m and 5m windows (EnableSLO). A burn of 1.0 spends the budget at
	// exactly the sustainable rate; when BOTH windows burn above the
	// page-now threshold (14.4) on the same budget, Status degrades to
	// "burning" — the multi-window rule that reacts to a real spike within
	// a minute without flapping on a single slow request.
	SLO []obs.Burn `json:"slo,omitempty"`
}

// burnThreshold is the classic multi-window page-now burn rate: spending a
// 30-day budget in under 2 days.
const burnThreshold = 14.4

// EnableHealth mounts GET /healthz. Both arguments are optional: without a
// pipeline the generation comes from the served engine and the backlog
// reads zero; without admission the endpoint always reports "ok". The
// route is admission-exempt — health must answer precisely when the server
// is refusing work.
func (s *Server) EnableHealth(pipe *ingest.Pipeline) {
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		resp := HealthResponse{Status: "ok"}
		if pipe != nil {
			st := pipe.Status()
			resp.Generation = st.Generation
			resp.JournalBytes = st.JournalBytes
			resp.BacklogRecords, resp.BacklogBytes = pipe.Backlog()
			resp.Shards = pipe.ShardBacklog()
		} else {
			resp.Generation = s.view().generation()
		}
		if c := s.admit; c != nil {
			resp.Inflight = c.Inflight()
			for cl := admission.Search; cl < admission.NumClasses; cl++ {
				if c.Shedding(cl) {
					resp.Shedding = append(resp.Shedding, cl.String())
				}
			}
			if c.Overloaded() {
				resp.Status = "overloaded"
			}
		}
		if s.slo != nil {
			resp.SLO = s.slo.Windows()
			if len(resp.SLO) == 2 && resp.Status == "ok" {
				short, long := resp.SLO[0], resp.SLO[1]
				errorBurning := short.ErrorBurn > burnThreshold && long.ErrorBurn > burnThreshold
				latencyBurning := short.LatencyBurn > burnThreshold && long.LatencyBurn > burnThreshold
				if errorBurning || latencyBurning {
					resp.Status = "burning"
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if resp.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
