package server

import (
	"encoding/json"
	"net/http"

	"github.com/snaps/snaps/internal/admission"
	"github.com/snaps/snaps/internal/ingest"
)

// HealthResponse is the readiness snapshot of GET /healthz: the served
// generation, the ingest backlog the admission thresholds watch, and the
// current shed state. Status is "ok" with HTTP 200, or "overloaded" with
// HTTP 503 while any class is being shed or the backlog is over a bound —
// a fronting load balancer (or the load harness) polls it to detect
// overload and recovery.
type HealthResponse struct {
	Status         string `json:"status"`
	Generation     uint64 `json:"generation"`
	JournalBytes   int64  `json:"journal_bytes,omitempty"`
	BacklogRecords int    `json:"backlog_records"`
	BacklogBytes   int64  `json:"backlog_bytes"`
	// Shards reports the per-shard backlog split of a sharded serving
	// tier (absent otherwise), so a load balancer sees the hot shard, not
	// just the global average it can hide behind.
	Shards   []ingest.ShardBacklog `json:"shards,omitempty"`
	Inflight int64                 `json:"inflight_weighted"`
	Shedding []string              `json:"shedding,omitempty"`
}

// EnableHealth mounts GET /healthz. Both arguments are optional: without a
// pipeline the generation comes from the served engine and the backlog
// reads zero; without admission the endpoint always reports "ok". The
// route is admission-exempt — health must answer precisely when the server
// is refusing work.
func (s *Server) EnableHealth(pipe *ingest.Pipeline) {
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		resp := HealthResponse{Status: "ok"}
		if pipe != nil {
			st := pipe.Status()
			resp.Generation = st.Generation
			resp.JournalBytes = st.JournalBytes
			resp.BacklogRecords, resp.BacklogBytes = pipe.Backlog()
			resp.Shards = pipe.ShardBacklog()
		} else {
			resp.Generation = s.view().generation()
		}
		if c := s.admit; c != nil {
			resp.Inflight = c.Inflight()
			for cl := admission.Search; cl < admission.NumClasses; cl++ {
				if c.Shedding(cl) {
					resp.Shedding = append(resp.Shedding, cl.String())
				}
			}
			if c.Overloaded() {
				resp.Status = "overloaded"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if resp.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
