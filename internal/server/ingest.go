package server

import (
	"encoding/json"
	"net/http"

	"github.com/snaps/snaps/internal/ingest"
)

// EnableIngest mounts the live-ingestion endpoints:
//
//	POST /api/ingest        — submit one certificate (JSON body); 202 once
//	                          journalled. ?sync=1 additionally waits for the
//	                          batch flush, so the response reflects the new
//	                          generation.
//	GET  /api/ingest/status — pipeline counters and served generation size.
//
// The server's serving view (engine or shard coordinator) is retargeted on
// every snapshot swap, so queries pick up ingested certificates within one
// batch flush without any restart or request blocking.
func (s *Server) EnableIngest(p *ingest.Pipeline) {
	retarget := func(sv *ingest.Serving) {
		if sv.Shards != nil {
			s.SetCoordinator(sv.Shards)
		} else {
			s.SetEngine(sv.Engine)
		}
	}
	p.OnSwap(retarget)
	// Converge on the pipeline's current generation in case it replayed a
	// journal backlog before the callback was registered.
	retarget(p.Serving())

	s.mux.HandleFunc("/api/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var c ingest.Certificate
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&c); err != nil {
			http.Error(w, "bad certificate JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := p.SubmitContext(r.Context(), &c); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		status := http.StatusAccepted
		if r.URL.Query().Get("sync") != "" {
			if err := p.Flush(); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			status = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(p.Status())
	})

	s.mux.HandleFunc("/api/ingest/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, p.Status())
	})
}
