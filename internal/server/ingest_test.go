package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snaps/snaps/internal/depgraph"
	"github.com/snaps/snaps/internal/er"
	"github.com/snaps/snaps/internal/ingest"
	"github.com/snaps/snaps/internal/model"
)

// ingestFamily builds a deterministic two-birth family, resolves it, and
// wires a server with live ingestion enabled.
func ingestFamily(t *testing.T, cfg ingest.Config) (*Server, *ingest.Pipeline) {
	t.Helper()
	d := &model.Dataset{Name: "live"}
	add := func(role model.Role, cert model.CertID, first, sur string, year int, g model.Gender) model.RecordID {
		id := model.RecordID(len(d.Records))
		d.Records = append(d.Records, model.Record{
			ID: id, Cert: cert, Role: role, Gender: g,
			First: model.Intern(first), Sur: model.Intern(sur), Addr: model.Intern("5 uig"), Year: year,
			Truth: model.NoPerson,
		})
		return id
	}
	add(model.Bb, 0, "torquil", "macsween", 1870, model.Male)
	add(model.Bm, 0, "flora", "macsween", 1870, model.Female)
	add(model.Bf, 0, "ewen", "macsween", 1870, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 0, Type: model.Birth, Year: 1870, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 0, model.Bm: 1, model.Bf: 2},
	})
	add(model.Bb, 1, "una", "macsween", 1872, model.Female)
	add(model.Bm, 1, "flora", "macsween", 1872, model.Female)
	add(model.Bf, 1, "ewen", "macsween", 1872, model.Male)
	d.Certificates = append(d.Certificates, model.Certificate{
		ID: 1, Type: model.Birth, Year: 1872, Age: -1,
		Roles: map[model.Role]model.RecordID{model.Bb: 3, model.Bm: 4, model.Bf: 5},
	})

	pr := er.Run(d, depgraph.DefaultConfig(), er.DefaultConfig())
	sv := ingest.NewServing(d, pr.Result.Store, 0.5)
	srv := New(sv.Engine)
	pipe, err := ingest.NewPipeline(sv, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableIngest(pipe)
	t.Cleanup(func() { pipe.Close() })
	return srv, pipe
}

const torquilDeathJSON = `{
	"type": "death", "year": 1875, "age": 5, "cause": "measles",
	"address": "5 uig",
	"roles": {
		"Dd": {"first_name": "Torquil", "surname": "MacSween", "gender": "m"},
		"Dm": {"first_name": "Flora", "surname": "MacSween"},
		"Df": {"first_name": "Ewen", "surname": "MacSween"}
	}
}`

// searchTorquil returns the top search result and whether any was found.
func searchTorquil(t *testing.T, ts *httptest.Server) (SearchResult, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/search?first_name=torquil&surname=macsween")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		return SearchResult{}, false
	}
	return sr.Results[0], true
}

// deathYearOf extracts the focus member's death year from the pedigree of
// an entity.
func deathYearOf(t *testing.T, ts *httptest.Server, entity int32) int {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/pedigree?id=%d", ts.URL, entity))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ped PedigreeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ped); err != nil {
		t.Fatal(err)
	}
	for _, m := range ped.Members {
		if m.Entity == entity {
			return m.Death
		}
	}
	return 0
}

// TestIngestEndToEndLiveness is the acceptance test of the live ingestion
// subsystem: a server answering queries on a built data set accepts a new
// certificate that matches an existing entity, and within one batch flush a
// query returns the updated entity — while concurrent searches race the
// snapshot swap (run under -race).
func TestIngestEndToEndLiveness(t *testing.T) {
	cfg := ingest.DefaultConfig()
	cfg.BatchSize = 1 // flush on the first certificate
	cfg.MaxAge = 50 * time.Millisecond
	srv, _ := ingestFamily(t, cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Baseline: torquil exists with no death year.
	res, ok := searchTorquil(t, ts)
	if !ok {
		t.Fatal("baseline search found nothing")
	}
	if y := deathYearOf(t, ts, res.Entity); y != 0 {
		t.Fatalf("baseline death year %d, want 0", y)
	}

	// Hammer the search endpoint while the swap happens.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/api/search?first_name=torquil&surname=macsween")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	// POST the death certificate.
	resp, err := http.Post(ts.URL+"/api/ingest", "application/json",
		strings.NewReader(torquilDeathJSON))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}

	// Within one batch flush the served entity reflects the death record.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if res, ok := searchTorquil(t, ts); ok {
			if y := deathYearOf(t, ts, res.Entity); y == 1875 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("ingested certificate not served within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Status reflects the applied certificate.
	resp, err = http.Get(ts.URL + "/api/ingest/status")
	if err != nil {
		t.Fatal(err)
	}
	var st ingest.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Accepted != 1 || st.Applied != 1 || st.Records != 9 {
		t.Errorf("status %+v", st)
	}
}

// TestIngestSyncFlush covers the ?sync=1 path: the response only returns
// after the batch was resolved and swapped in.
func TestIngestSyncFlush(t *testing.T) {
	srv, pipe := ingestFamily(t, ingest.Config{BatchSize: 1 << 20, MaxAge: time.Hour})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/ingest?sync=1", "application/json",
		strings.NewReader(torquilDeathJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync ingest status %d", resp.StatusCode)
	}
	var st ingest.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.Pending != 0 {
		t.Errorf("sync status %+v", st)
	}
	res, ok := searchTorquil(t, ts)
	if !ok {
		t.Fatal("search found nothing after sync ingest")
	}
	if y := deathYearOf(t, ts, res.Entity); y != 1875 {
		t.Errorf("death year %d, want 1875 immediately after sync flush", y)
	}
	if pipe.Pending() != 0 {
		t.Errorf("pending %d after sync flush", pipe.Pending())
	}
}

func TestIngestRejectsInvalid(t *testing.T) {
	srv, _ := ingestFamily(t, ingest.Config{BatchSize: 1 << 20, MaxAge: time.Hour})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":        "not json at all",
		"unknown type":    `{"type":"baptism","year":1875,"roles":{"Bb":{"first_name":"a","surname":"b"}}}`,
		"no principal":    `{"type":"birth","year":1875,"roles":{"Bm":{"first_name":"a","surname":"b"}}}`,
		"unknown field":   `{"type":"birth","bogus":1,"roles":{"Bb":{"first_name":"a","surname":"b"}}}`,
		"wrong-type role": `{"type":"birth","year":1875,"roles":{"Dd":{"first_name":"a","surname":"b"}}}`,
	} {
		resp, err := http.Post(ts.URL+"/api/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// GET on the submit endpoint is not allowed.
	resp, err := http.Get(ts.URL + "/api/ingest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/ingest status %d, want 405", resp.StatusCode)
	}
}
