package server

import (
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/snaps/snaps/internal/obs"
)

// Request metrics, one series per registered route pattern. Pattern
// cardinality is bounded by the mux registrations, never by client input:
// unmatched paths all collapse into the "unmatched" series.
const (
	httpRequestsFamily = "snaps_http_requests_total"
	httpLatencyFamily  = "snaps_http_request_seconds"
)

// statusWriter captures the status code a handler writes, so the request
// counter can be labelled with its status class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code into 2xx/3xx/4xx/5xx.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// observeRequest records one served request into the default registry.
func observeRequest(route string, status int, d time.Duration) {
	if route == "" {
		route = "unmatched"
	}
	obs.Default.Counter(
		httpRequestsFamily+"{"+obs.Label("route", route)+","+obs.Label("code", statusClass(status))+"}",
		"Total HTTP requests served, by route pattern and status class.").Inc()
	obs.Default.Histogram(
		httpLatencyFamily+"{"+obs.Label("route", route)+"}",
		"HTTP request latency by route pattern.", obs.DefBuckets).ObserveDuration(d)
}

// handleMetrics serves the Prometheus text exposition of every metric in
// the default registry: request counts and latencies, ingest pipeline
// counters, query-engine and index statistics, and the offline stage
// timing histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// Refresh the Go runtime gauges (goroutines, heap, GC pause total,
	// build info) so every scrape reports current values.
	obs.SampleRuntime(obs.Default)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WriteText(w)
}

// EnableTraceDebug mounts GET /api/debug/traces, serving the tracer's ring
// buffer of completed traces (most recent first) as JSON. Off by default —
// cmd/snaps gates it behind -trace-debug, the same posture as -pprof —
// since span attributes expose query internals.
func (s *Server) EnableTraceDebug() {
	s.mux.HandleFunc("/api/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.tracer.Traces())
	})
}

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default — cmd/snaps gates it behind -pprof — since
// profile endpoints expose internals and can be made to burn CPU.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
