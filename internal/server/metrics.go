package server

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"github.com/snaps/snaps/internal/obs"
)

// Request metrics, one series per registered route pattern × status class.
// Pattern cardinality is bounded by the mux registrations, never by client
// input: unmatched paths all collapse into the "unmatched" series, and the
// vec's series cap backstops everything else.
const (
	httpRequestsFamily = "snaps_http_requests_total"
	httpLatencyFamily  = "snaps_http_request_seconds"
)

var (
	mHTTPRequests = obs.Default.CounterVec(httpRequestsFamily,
		"Total HTTP requests served, by route pattern and status class.",
		"route", "code")
	mHTTPLatency = obs.Default.HistogramVec(httpLatencyFamily,
		"HTTP request latency by route pattern and status class.",
		obs.LatencyBuckets, "route", "code")
)

// statusWriter captures the status code a handler writes, so the request
// counter can be labelled with its status class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code into 2xx/3xx/4xx/5xx.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// observeRequest records one served request into the default registry.
// traceID, when non-empty (the request was traced), becomes the latency
// bucket's exemplar so a tail bucket on /metrics links to its span tree in
// /api/debug/traces.
func observeRequest(route string, status int, d time.Duration, traceID string) {
	if route == "" {
		route = "unmatched"
	}
	code := statusClass(status)
	mHTTPRequests.With(route, code).Inc()
	mHTTPLatency.With(route, code).ObserveDurationExemplar(d, traceID)
}

// handleMetrics serves the text exposition of every metric in the default
// registry: request counts and latencies, ingest pipeline counters,
// query-engine and index statistics, and the offline stage timing
// histograms. Scrapers that Accept application/openmetrics-text get the
// OpenMetrics rendering, which additionally carries the trace-ID exemplars
// on histogram buckets; everyone else gets classic text 0.0.4, whose
// grammar has no exemplar clause.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// Refresh the Go runtime gauges (goroutines, heap, GC pause total,
	// build info) so every scrape reports current values.
	obs.SampleRuntime(obs.Default)
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		obs.Default.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WriteText(w)
}

// EnableTraceDebug mounts GET /api/debug/traces, serving the tracer's ring
// buffer of completed traces (most recent first) as JSON. Off by default —
// cmd/snaps gates it behind -trace-debug, the same posture as -pprof —
// since span attributes expose query internals.
func (s *Server) EnableTraceDebug() {
	s.mux.HandleFunc("/api/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.tracer.Traces())
	})
}

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default — cmd/snaps gates it behind -pprof — since
// profile endpoints expose internals and can be made to burn CPU.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
